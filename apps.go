package whisper

import (
	"time"

	"whisper/internal/broadcast"
	"whisper/internal/sizeest"
)

// Broadcast is confidential group-wide dissemination: a published
// message reaches every member epidemically through the private views,
// each hop travelling over an onion route, so neither the content nor
// the multicast tree is visible outside the group.
type Broadcast struct {
	b *broadcast.Broadcaster
}

// NewBroadcast attaches a dissemination endpoint to the group. Several
// gossip protocols (broadcast, DHT, size estimation) can share one
// group.
func (g *Group) NewBroadcast() *Broadcast {
	return &Broadcast{b: broadcast.New(g.inst, broadcast.Config{})}
}

// OnDeliver installs the handler invoked exactly once per unique
// message (including the member's own publications).
func (b *Broadcast) OnDeliver(fn func(origin NodeID, payload []byte)) {
	b.b.OnDeliver = fn
}

// Publish disseminates payload to the whole group.
func (b *Broadcast) Publish(payload []byte) { b.b.Publish(payload) }

// SizeEstimator estimates the group's membership size from within,
// without any roster, via gossip aggregation over confidential routes.
type SizeEstimator struct {
	e *sizeest.Estimator
}

// NewSizeEstimator starts the counting protocol on this member. The
// protocol is cooperative: every group member must run an estimator for
// the aggregation to converge (non-participants silently drop its
// messages). Estimates refresh roughly every refresh period (default
// ~10 minutes if zero) and track joins and departures.
func (g *Group) NewSizeEstimator(refresh time.Duration) *SizeEstimator {
	cfg := sizeest.Config{}
	if refresh > 0 {
		cfg.Epoch = refresh
		cfg.Cycle = refresh / 20
	}
	return &SizeEstimator{e: sizeest.New(g.inst, cfg)}
}

// Estimate returns the current group-size estimate; ok is false until
// the first epoch converges.
func (s *SizeEstimator) Estimate() (float64, bool) { return s.e.Estimate() }

// Stop halts the estimator.
func (s *SizeEstimator) Stop() { s.e.Stop() }
