// Top-level benchmarks: one per table and figure of the paper's
// evaluation (reduced scale; the whisper-exp command runs them at paper
// scale), plus ablation benches for the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem .
package whisper_test

import (
	"testing"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/exp"
	"whisper/internal/identity"
	"whisper/internal/nat"
	"whisper/internal/nylon"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/wcl"
)

// BenchmarkFig5BiasedPSS regenerates Figure 5 (biased PSS overlay
// quality) at reduced scale per iteration.
func BenchmarkFig5BiasedPSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig5(exp.Fig5Config{
			Seed: int64(100 + i), N: 200, Runtime: 5 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if bad := exp.Fig5ShapeCheck(res); len(bad) != 0 {
			b.Fatalf("shape violations: %v", bad)
		}
	}
}

// BenchmarkFig6KeySampling regenerates Figure 6 (public-key sampling
// bandwidth).
func BenchmarkFig6KeySampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig6(exp.Fig6Config{
			Seed: int64(200 + i), N: 200,
			Warmup: 4 * time.Minute, Measure: 4 * time.Minute,
			Ratios: []float64{0.7}, PiValues: []int{3}, KeyBlobSize: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
		if bad := exp.Fig6ShapeCheck(rows); len(bad) != 0 {
			b.Fatalf("shape violations: %v", bad)
		}
	}
}

// BenchmarkTable1RouteChurn regenerates Table I (WCL route availability
// under churn).
func BenchmarkTable1RouteChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(exp.Table1Config{
			Seed: int64(300 + i), N: 200, Groups: 4, Rates: []float64{0, 5},
			Warmup: 8 * time.Minute, Window: 6 * time.Minute,
			PPSS: ppss.Config{KeyBlobSize: 256}, KeyBlob: 256,
		})
		if err != nil {
			b.Fatal(err)
		}
		if bad := exp.Table1ShapeCheck(rows); len(bad) != 0 {
			b.Fatalf("shape violations: %v", bad)
		}
	}
}

// BenchmarkFig7RTTBreakdown regenerates Figure 7 (delay breakdown of
// anonymizing routes), cluster environment.
func BenchmarkFig7RTTBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig7(exp.Fig7Config{
			Seed: int64(400 + i), N: 150, Groups: 3, Exchanges: 150,
			Warmup: 8 * time.Minute, MaxRun: 12 * time.Minute,
			PPSS: ppss.Config{KeyBlobSize: 256}, KeyBlob: 256,
		}, exp.Cluster)
		if err != nil {
			b.Fatal(err)
		}
		if res.Samples == 0 {
			b.Fatal("no exchanges sampled")
		}
	}
}

// BenchmarkTable2CryptoCost regenerates Table II (CPU per PPSS cycle).
func BenchmarkTable2CryptoCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Table2(exp.Table2Config{
			Seed: int64(500 + i), N: 150, Groups: 3, Cycles: 2,
			Warmup: 8 * time.Minute,
			PPSS:   ppss.Config{KeyBlobSize: 256}, KeyBlob: 256,
		})
		if err != nil {
			b.Fatal(err)
		}
		if bad := exp.Table2ShapeCheck(res); len(bad) != 0 {
			b.Fatalf("shape violations: %v", bad)
		}
	}
}

// BenchmarkCircuitVsOneShot compares steady-state circuit sends with
// per-message onion routes: 0 RSA operations after establishment and
// at least 5x lower per-message source-side CPU at 100 messages per
// circuit.
func BenchmarkCircuitVsOneShot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Circuit(exp.CircuitConfig{
			Seed: int64(550 + i), N: 150, Messages: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		if bad := exp.CircuitShapeCheck(res); len(bad) != 0 {
			b.Fatalf("shape violations: %v", bad)
		}
	}
}

// BenchmarkFig8MultiGroup regenerates Figure 8 (bandwidth vs groups per
// node).
func BenchmarkFig8MultiGroup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig8(exp.Fig8Config{
			Seed: int64(600 + i), N: 100, Groups: 20, GroupsPerNode: []int{1, 4},
			Warmup: 6 * time.Minute, Measure: 5 * time.Minute,
			PPSS: ppss.Config{KeyBlobSize: 256}, KeyBlob: 256,
		})
		if err != nil {
			b.Fatal(err)
		}
		if bad := exp.Fig8ShapeCheck(rows); len(bad) != 0 {
			b.Fatalf("shape violations: %v", bad)
		}
	}
}

// BenchmarkFig9TChord regenerates Figure 9 (private T-Chord routing
// delays).
func BenchmarkFig9TChord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig9(exp.Fig9Config{
			Seed: int64(700 + i), N: 100, GroupSize: 14, Queries: 40,
			Warmup: 10 * time.Minute, RingTime: 8 * time.Minute,
			PPSS: ppss.Config{Cycle: 30 * time.Second, KeyBlobSize: 256}, KeyBlob: 256,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("no queries completed")
		}
	}
}

// --- Ablations -------------------------------------------------------

// benchWorld builds a PSS-only world and runs it to convergence,
// reporting total shuffles as the throughput proxy.
func benchWorld(b *testing.B, cfg nylon.Config, lease time.Duration) (completed, relayed uint64) {
	w, err := sim.NewWorld(sim.Options{
		Seed: 999, N: 200, NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		Nylon:    cfg,
		NATLease: lease,
	})
	if err != nil {
		b.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(8 * time.Minute)
	for _, n := range w.Live() {
		completed += n.Nylon.Stats().ShufflesCompleted
		relayed += n.Nylon.Stats().RelaysForwarded
	}
	return completed, relayed
}

// BenchmarkAblationUnbiasedPSS is the Π=0 baseline of Fig 5.
func BenchmarkAblationUnbiasedPSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if c, _ := benchWorld(b, nylon.Config{MinPublic: 0}, 0); c == 0 {
			b.Fatal("no shuffles")
		}
	}
}

// BenchmarkAblationBiasedPSS is the Π=3 variant.
func BenchmarkAblationBiasedPSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if c, _ := benchWorld(b, nylon.Config{MinPublic: 3}, 0); c == 0 {
			b.Fatal("no shuffles")
		}
	}
}

// BenchmarkAblationRelayOnly disables hole punching: all N↔N traffic
// rides relays (the Leitao et al. alternative discussed in §VI).
func BenchmarkAblationRelayOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, relayed := benchWorld(b, nylon.Config{DisablePunch: true}, 0)
		if c == 0 || relayed == 0 {
			b.Fatal("relay-only run did not relay")
		}
		b.ReportMetric(float64(relayed)/float64(c), "relays/shuffle")
	}
}

// BenchmarkAblationPunching is the default traversal mix.
func BenchmarkAblationPunching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, relayed := benchWorld(b, nylon.Config{}, 0)
		if c == 0 {
			b.Fatal("no shuffles")
		}
		b.ReportMetric(float64(relayed)/float64(c), "relays/shuffle")
	}
}

// BenchmarkAblationUDPLease runs the PSS with 5-minute UDP-style NAT
// association rules instead of the default TCP-style 24 h (the paper's
// setting); route warmth decays much faster.
func BenchmarkAblationUDPLease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if c, _ := benchWorld(b, nylon.Config{ContactTTL: 4 * time.Minute}, nat.UDPLease); c == 0 {
			b.Fatal("no shuffles")
		}
	}
}

// BenchmarkOnionPathLength measures layered encryption cost as the mix
// count grows (§III footnote 2: f mixes tolerate f−1 colluders).
func BenchmarkOnionPathLength(b *testing.B) {
	keys := identity.TestKeys(6)
	for _, hops := range []int{2, 3, 4, 5} {
		hops := hops
		b.Run(benchName("hops", hops), func(b *testing.B) {
			var hs []crypt.Hop
			for i := 0; i < hops; i++ {
				hs = append(hs, crypt.Hop{Pub: keys[i].Public(), Addr: []byte{byte(i)}})
			}
			k, _ := crypt.NewSymKey()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				onion, err := crypt.BuildOnion(nil, hs, k)
				if err != nil {
					b.Fatal(err)
				}
				blob := onion
				for h := 0; h < hops; h++ {
					_, inner, _, err := crypt.Peel(nil, keys[h], blob)
					if err != nil {
						b.Fatal(err)
					}
					blob = inner
				}
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + string(rune('0'+n))
}

// BenchmarkEndToEndConfidentialSend measures one full WCL send
// (onion build, three hops, content decryption, end-to-end ack) on a
// converged network, in virtual protocol terms per wall-clock second.
func BenchmarkEndToEndConfidentialSend(b *testing.B) {
	w, err := sim.NewWorld(sim.Options{
		Seed: 1234, N: 150, NATRatio: 0.7,
		KeyPool: identity.TestPool(64),
		WCL:     &wcl.Config{MinPublic: 3},
	})
	if err != nil {
		b.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)
	natted := w.LiveNatted()
	src, dst := natted[0], natted[1]
	dst.WCL.OnReceive = func([]byte) {}
	dest := wcl.Dest{ID: dst.ID(), Key: dst.Nylon.Identity().Public()}
	for _, e := range dst.WCL.Backlog().Publics() {
		h := w.Get(e.Desc.ID)
		if h == nil {
			continue
		}
		dest.Helpers = append(dest.Helpers, wcl.Helper{
			ID: h.ID(), Endpoint: h.Nylon.Addr(), Key: h.Nylon.Identity().Public(),
		})
		if len(dest.Helpers) == 3 {
			break
		}
	}
	if len(dest.Helpers) == 0 {
		b.Fatal("destination not ready")
	}
	payload := make([]byte, 1024)
	b.ResetTimer()
	b.ReportAllocs()
	ok := 0
	for i := 0; i < b.N; i++ {
		src.WCL.Send(dest, payload, func(r wcl.Result) {
			if r.Outcome != wcl.Failed {
				ok++
			}
		})
		w.Sim.RunFor(2 * time.Second)
	}
	w.Sim.RunFor(30 * time.Second)
	if ok == 0 {
		b.Fatal("no send succeeded")
	}
}
