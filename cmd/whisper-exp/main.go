// Command whisper-exp regenerates every table and figure of the
// paper's evaluation (§V) on the emulated substrate.
//
// Usage:
//
//	whisper-exp [flags] <experiment>
//
// Experiments: fig5, fig6, table1, fig7, table2, fig8, fig9, circuit,
// suites, transfer, pubsub, scale, all.
//
// The default parameters match the paper (1,000-node cluster runs,
// 400-node PlanetLab runs, 70% of nodes behind NATs, Π = 3, 1 KB keys).
// Use -scale to shrink every dimension proportionally for quick runs on
// modest hardware, e.g. -scale 0.25.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"whisper/internal/exp"
	"whisper/internal/obs"
)

func main() {
	var (
		seed     = flag.Int64("seed", 2011, "random seed for all experiments")
		scale    = flag.Float64("scale", 1.0, "scale factor for node counts and windows (1.0 = paper scale)")
		outRaw   = flag.String("out", "", "also write results to this file")
		check    = flag.Bool("check", true, "run shape checks against the paper's qualitative findings")
		par      = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulation runs per experiment (1 = sequential, matching the pre-harness output byte for byte)")
		benchOut = flag.String("benchjson", "", "write machine-readable per-run timings to this JSON file")
		metrics  = flag.String("metrics-out", "", "write the metrics registry as JSON to this file after the run")
		shards   = flag.Int("shards", 8, "event shards for the scale experiment (1 = classic single-heap engine)")
		nodes    = flag.Int("nodes", 0, "scale experiment population override (0 = 100k x -scale)")
		virtual  = flag.Duration("virtual", 0, "scale experiment virtual runtime override (0 = 2m x -scale, floor 30s)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: whisper-exp [flags] <fig5|fig6|table1|fig7|table2|fig8|fig9|circuit|suites|transfer|pubsub|ablate|scale|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var out io.Writer = os.Stdout
	if *outRaw != "" {
		f, err := os.Create(*outRaw)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	r := runner{seed: *seed, scale: *scale, out: out, check: *check, parallel: *par,
		shards: *shards, nodes: *nodes, virtual: *virtual}
	name := flag.Arg(0)
	if *benchOut != "" {
		exp.BenchSink = &exp.BenchLog{}
		exp.BenchSink.SetMeta(exp.BenchMeta{
			Experiment: name,
			Seed:       *seed,
			Scale:      *scale,
			Parallel:   *par,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		})
	}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		exp.ObsRoot = reg.Scope()
	}
	start := time.Now()
	if err := r.run(name); err != nil {
		fmt.Fprintln(os.Stderr, "whisper-exp:", err)
		os.Exit(1)
	}
	fmt.Fprintf(out, "\n[%s completed in %v]\n", name, time.Since(start).Round(time.Second))
	if exp.BenchSink != nil {
		exp.BenchSink.Record(exp.RunStat{
			Name:   "total/" + name,
			WallMS: float64(time.Since(start).Microseconds()) / 1000,
		})
		if err := exp.BenchSink.WriteJSON(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "whisper-exp: writing bench json:", err)
			os.Exit(1)
		}
	}
	if reg != nil {
		if err := reg.WriteJSON(*metrics); err != nil {
			fmt.Fprintln(os.Stderr, "whisper-exp: writing metrics json:", err)
			os.Exit(1)
		}
	}
	if r.violations > 0 {
		fmt.Fprintf(out, "%d shape violation(s) — see above\n", r.violations)
		os.Exit(3)
	}
}

type runner struct {
	seed       int64
	scale      float64
	out        io.Writer
	check      bool
	parallel   int
	shards     int
	nodes      int           // scale population override (0 = derive from -scale)
	virtual    time.Duration // scale virtual-runtime override (0 = derive from -scale)
	violations int
}

func (r *runner) n(paper int) int {
	n := int(float64(paper) * r.scale)
	if n < 40 {
		n = 40
	}
	return n
}

func (r *runner) dur(paper time.Duration) time.Duration {
	d := time.Duration(float64(paper) * r.scale)
	if d < 4*time.Minute {
		d = 4 * time.Minute
	}
	return d
}

func (r *runner) report(violations []string) {
	if !r.check {
		return
	}
	for _, v := range violations {
		fmt.Fprintln(r.out, "SHAPE VIOLATION:", v)
		r.violations++
	}
	if len(violations) == 0 {
		fmt.Fprintln(r.out, "shape check: OK (matches the paper's qualitative findings)")
	}
}

func (r *runner) run(name string) error {
	switch name {
	case "fig5":
		return r.fig5()
	case "fig6":
		return r.fig6()
	case "table1":
		return r.table1()
	case "fig7":
		return r.fig7()
	case "table2":
		return r.table2()
	case "fig8":
		return r.fig8()
	case "fig9":
		return r.fig9()
	case "circuit":
		return r.circuit()
	case "suites":
		return r.suites()
	case "transfer":
		return r.transfer()
	case "pubsub":
		return r.pubsub()
	case "ablate":
		return r.ablate()
	case "scale":
		return r.scaleExp()
	case "all":
		for _, f := range []func() error{r.fig5, r.fig6, r.table1, r.fig7, r.table2, r.fig8, r.fig9, r.circuit, r.suites, r.transfer, r.pubsub} {
			if err := f(); err != nil {
				return err
			}
			fmt.Fprintln(r.out)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func (r *runner) fig5() error {
	res, err := exp.Fig5(exp.Fig5Config{
		Seed:     r.seed,
		N:        r.n(1000),
		Runtime:  r.dur(10 * time.Minute),
		Parallel: r.parallel,
	})
	if err != nil {
		return err
	}
	exp.PrintFig5(r.out, res)
	r.report(exp.Fig5ShapeCheck(res))
	return nil
}

func (r *runner) fig6() error {
	rows, err := exp.Fig6(exp.Fig6Config{
		Seed:     r.seed,
		N:        r.n(1000),
		Warmup:   r.dur(5 * time.Minute),
		Measure:  r.dur(5 * time.Minute),
		Parallel: r.parallel,
	})
	if err != nil {
		return err
	}
	exp.PrintFig6(r.out, rows)
	r.report(exp.Fig6ShapeCheck(rows))
	return nil
}

func (r *runner) table1() error {
	rows, err := exp.Table1(exp.Table1Config{
		Seed:     r.seed,
		N:        r.n(1000),
		Groups:   r.n(1000) / 50,
		Warmup:   r.dur(10 * time.Minute),
		Window:   r.dur(15 * time.Minute),
		Parallel: r.parallel,
	})
	if err != nil {
		return err
	}
	exp.PrintTable1(r.out, rows)
	r.report(exp.Table1ShapeCheck(rows))
	return nil
}

func (r *runner) fig7() error {
	var cfgs []exp.Fig7Config
	for _, env := range []exp.Env{exp.PlanetLab, exp.Cluster} {
		base := 1000
		if env == exp.PlanetLab {
			base = 400
		}
		cfgs = append(cfgs, exp.Fig7Config{
			Seed:      r.seed,
			N:         r.n(base),
			Env:       env,
			Exchanges: int(1500 * r.scale),
			Warmup:    r.dur(10 * time.Minute),
			MaxRun:    r.dur(30 * time.Minute),
			Parallel:  r.parallel,
		})
	}
	results, err := exp.Fig7Runs(cfgs)
	if err != nil {
		return err
	}
	exp.PrintFig7(r.out, results)
	r.report(exp.Fig7ShapeCheck(results))
	return nil
}

func (r *runner) table2() error {
	res, err := exp.Table2(exp.Table2Config{
		Seed:   r.seed,
		N:      r.n(1000),
		Warmup: r.dur(10 * time.Minute),
	})
	if err != nil {
		return err
	}
	exp.PrintTable2(r.out, res)
	r.report(exp.Table2ShapeCheck(res))
	return nil
}

func (r *runner) fig8() error {
	groups := []int{1, 2, 4, 8, 16, 32}
	if r.scale < 0.5 {
		groups = []int{1, 2, 4, 8}
	}
	rows, err := exp.Fig8(exp.Fig8Config{
		Seed:          r.seed,
		N:             r.n(400),
		Groups:        r.n(120),
		GroupsPerNode: groups,
		Warmup:        r.dur(10 * time.Minute),
		Measure:       r.dur(10 * time.Minute),
		Parallel:      r.parallel,
	})
	if err != nil {
		return err
	}
	exp.PrintFig8(r.out, rows)
	r.report(exp.Fig8ShapeCheck(rows))
	return nil
}

func (r *runner) ablate() error {
	rows, err := exp.Ablations(exp.AblateConfig{
		Seed:     r.seed,
		N:        r.n(300),
		Warmup:   r.dur(10 * time.Minute),
		Measure:  r.dur(8 * time.Minute),
		Parallel: r.parallel,
	})
	if err != nil {
		return err
	}
	exp.PrintAblations(r.out, rows)
	r.report(exp.AblationShapeCheck(rows))
	return nil
}

func (r *runner) scaleExp() error {
	// The scale run sizes off its own 100k-node baseline (not the
	// 1,000-node paper figures) and skips the 4-minute duration floor:
	// small -scale values are how CI keeps the smoke run cheap. -nodes
	// and -virtual override either dimension directly, so CI can pin
	// an exact population (e.g. 250k smoke) without back-deriving a
	// scale factor.
	rt := r.virtual
	if rt == 0 {
		rt = time.Duration(float64(2*time.Minute) * r.scale)
		if rt < 30*time.Second {
			rt = 30 * time.Second
		}
	}
	n := r.nodes
	if n == 0 {
		n = r.n(100_000)
	}
	res, err := exp.Scale(exp.ScaleConfig{
		Seed:    r.seed,
		N:       n,
		Shards:  r.shards,
		Runtime: rt,
		Env:     exp.PlanetLab,
		Rollup: func(ru exp.ScaleRollup) {
			fmt.Fprintf(os.Stderr, "\rscale: %v / %v virtual, %d events in %d windows",
				ru.Now.Round(time.Second), ru.Total, ru.Events, ru.Windows)
		},
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		return err
	}
	exp.PrintScale(r.out, res)
	r.report(exp.ScaleShapeCheck(res))
	return nil
}

func (r *runner) circuit() error {
	res, err := exp.Circuit(exp.CircuitConfig{
		Seed: r.seed,
		N:    r.n(300),
	})
	if err != nil {
		return err
	}
	exp.PrintCircuit(r.out, res)
	r.report(exp.CircuitShapeCheck(res))
	return nil
}

func (r *runner) suites() error {
	res, err := exp.Suites(exp.SuitesConfig{
		Seed: r.seed,
		N:    r.n(300),
	})
	if err != nil {
		return err
	}
	exp.PrintSuites(r.out, res)
	r.report(exp.SuitesShapeCheck(res))
	return nil
}

func (r *runner) transfer() error {
	res, err := exp.Transfer(exp.TransferConfig{
		Seed: r.seed,
		N:    r.n(300),
	})
	if err != nil {
		return err
	}
	exp.PrintTransfer(r.out, res)
	r.report(exp.TransferShapeCheck(res))
	return nil
}

func (r *runner) pubsub() error {
	res, err := exp.PubSub(exp.PubSubConfig{
		Seed: r.seed,
		N:    r.n(160),
	})
	if err != nil {
		return err
	}
	exp.PrintPubSub(r.out, res)
	r.report(exp.PubSubShapeCheck(res))
	return nil
}

func (r *runner) fig9() error {
	res, err := exp.Fig9(exp.Fig9Config{
		Seed:      r.seed,
		N:         r.n(400),
		GroupSize: r.n(60),
		Queries:   int(350 * r.scale),
		Warmup:    r.dur(12 * time.Minute),
		RingTime:  r.dur(10 * time.Minute),
	})
	if err != nil {
		return err
	}
	exp.PrintFig9(r.out, res)
	r.report(exp.Fig9ShapeCheck(res))
	return nil
}
