// Command whisper-node runs one full WHISPER stack — Nylon peer
// sampling, the Whisper communication layer, and the PPSS private
// group router — on a real UDP socket, joining an overlay of other
// whisper-node processes. It is the deployment face of the same code
// the emulator drives: core.NewStack wired to transport/udp instead of
// transport/simnet.
//
// Overlay addressing: every node is named by a small overlay IP (its
// -id, by convention) and the transport maps overlay endpoints to real
// socket addresses — statically for the peers given on the command
// line, dynamically for everyone learned through gossip traffic.
//
// A three-node overlay on one machine:
//
//	whisper-node -id 1 -listen 127.0.0.1:9001
//	whisper-node -id 2 -listen 127.0.0.1:9002 -peer 1=127.0.0.1:9001
//	whisper-node -id 3 -listen 127.0.0.1:9003 -peer 1=127.0.0.1:9001 -peer 2=127.0.0.1:9002
//
// With -group the node founds a private group at startup (becoming its
// leader). Joining a group requires an accreditation delivered
// out-of-band (§IV-A of the paper); the library call for that is
// ppss.Router.Join — see the loopback integration test in
// internal/transport/udp for the full exchange.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"whisper/internal/core"
	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/nat"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/ppss"
	"whisper/internal/pubsub"
	"whisper/internal/transport"
	"whisper/internal/transport/udp"
	"whisper/internal/wcl"
)

// peerFlag accumulates repeated -peer id=host:port mappings.
type peerFlag struct {
	ids   []identity.NodeID
	addrs []string
}

func (p *peerFlag) String() string { return fmt.Sprint(p.addrs) }

func (p *peerFlag) Set(v string) error {
	idStr, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want id=host:port, got %q", v)
	}
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil || id == 0 {
		return fmt.Errorf("bad peer id %q", idStr)
	}
	p.ids = append(p.ids, identity.NodeID(id))
	p.addrs = append(p.addrs, addr)
	return nil
}

func main() {
	var peers peerFlag
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "UDP address to bind")
		id      = flag.Uint64("id", 0, "node ID (doubles as the overlay IP; 0 = derive from the identity key)")
		cycle   = flag.Duration("cycle", 10*time.Second, "Nylon gossip period")
		group   = flag.String("group", "", "found a private group with this name at startup")
		topics  = flag.String("subscribe", "", "comma-separated pub/sub topics to subscribe to in the founded group (requires -group)")
		keyBits = flag.Int("keybits", identity.DefaultKeyBits, "RSA modulus size (rsa2048 suite only)")
		suite   = flag.String("suite", "rsa2048", "crypto suite: rsa2048 or ecc")
		stats   = flag.Duration("stats", 30*time.Second, "stats logging period (0 = off)")
		seed    = flag.Int64("seed", 1, "protocol randomness seed")
		obsAddr = flag.String("obs-addr", "", "HTTP address serving /metrics, /debug/vars and /debug/pprof (empty = off)")
	)
	flag.Var(&peers, "peer", "bootstrap peer as id=host:port (repeatable)")
	flag.Parse()
	suiteID, err := crypt.ParseSuite(*suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "whisper-node: %v\n", err)
		os.Exit(2)
	}

	key, err := crypt.GenerateKey(suiteID, *keyBits)
	if err != nil {
		log.Fatalf("whisper-node: generating identity key: %v", err)
	}
	if *id == 0 {
		// No operator-assigned identifier: derive one from the key pair
		// (S/Kademlia style), so single-flag deployments still work.
		*id = uint64(identity.DeriveID(key.Public()))
		log.Printf("derived node ID %d from the identity key", *id)
	}
	ident := &identity.Identity{ID: identity.NodeID(*id), Key: key}

	tr, err := udp.New(*listen, *seed)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	var reg *obs.Registry
	var scope *obs.Scope
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		scope = reg.Scope("node", fmt.Sprint(*id))
	}

	self := transport.Endpoint{IP: transport.IP(*id), Port: 1}
	st, err := core.NewStack(tr, ident, nat.None, self, nil, core.Config{
		Nylon:  nylon.Config{Cycle: *cycle},
		WCL:    &wcl.Config{},
		PPSS:   &ppss.Config{},
		PubSub: &pubsub.Config{},
		Obs:    scope,
	})
	if err != nil {
		log.Fatalf("whisper-node: assembling stack: %v", err)
	}

	if reg != nil {
		srv := &http.Server{Addr: *obsAddr, Handler: obs.Handler(reg)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("whisper-node: obs server: %v", err)
			}
		}()
		log.Printf("observability endpoints on http://%s/{metrics,debug/vars,debug/pprof}", *obsAddr)
	}

	// Seed the address book and the gossip view from the -peer list
	// (the role a tracker or invitation plays in the paper).
	var boot []nylon.Descriptor
	for i, pid := range peers.ids {
		ep := transport.Endpoint{IP: transport.IP(pid), Port: 1}
		if err := tr.AddPeer(ep, peers.addrs[i]); err != nil {
			log.Fatal(err)
		}
		boot = append(boot, nylon.Descriptor{ID: pid, Public: true, Contact: ep})
	}
	st.Nylon.Bootstrap(boot)
	st.Start()
	tr.Start()
	log.Printf("whisper-node %d listening on %s (overlay %v), %d bootstrap peers",
		*id, tr.LocalAddr(), self, len(boot))

	if *group != "" {
		var inst *ppss.Instance
		var gerr error
		tr.Do(func() {
			inst, gerr = st.PPSS.CreateGroup(*group)
			if gerr == nil {
				inst.OnMessage = func(from ppss.Entry, payload []byte) {
					log.Printf("group %q: confidential message from %v: %s", *group, from.ID, payload)
				}
			}
		})
		if gerr != nil {
			log.Fatalf("whisper-node: founding group %q: %v", *group, gerr)
		}
		log.Printf("founded private group %q (this node is leader)", *group)

		if *topics != "" {
			tr.Do(func() {
				ps := st.PubSub(inst)
				ps.OnDeliver = func(topic string, payload []byte) {
					log.Printf("group %q topic %q: %s", *group, topic, payload)
				}
				for _, t := range strings.Split(*topics, ",") {
					if t = strings.TrimSpace(t); t != "" {
						ps.Subscribe(t)
					}
				}
				log.Printf("subscribed to topics %v in group %q", ps.Topics(), *group)
			})
		}
	} else if *topics != "" {
		log.Fatalf("whisper-node: -subscribe requires -group")
	}

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				tr.Do(func() {
					m := st.Nylon.Meter().Snapshot()
					log.Printf("view=%d backlog-publics=%d up=%.1fKB down=%.1fKB unrouted=%d",
						len(st.Nylon.ViewIDs()), len(st.WCL.Backlog().Publics()),
						m.UpKB(), m.DownKB(), tr.Unrouted())
				})
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("whisper-node %d shutting down", *id)
	tr.Do(st.Stop)
}
