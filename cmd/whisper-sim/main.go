// Command whisper-sim runs a configurable WHISPER scenario on the
// emulated substrate and reports overlay quality, confidential-route
// statistics and bandwidth, optionally under a SPLAY-style churn
// script (see internal/churn).
//
// Examples:
//
//	whisper-sim -n 500 -groups 10 -duration 30m
//	whisper-sim -n 1000 -churn "from 300s to 1200s const churn 1% each 60s" -duration 25m
//	whisper-sim -n 400 -env planetlab -pi 2 -duration 20m
//	whisper-sim -n 300 -runs 8 -parallel 4   # 8 replicas at seeds 1..8
//	whisper-sim -n 20000 -shards 8 -env planetlab -groups 0 -duration 10m
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"whisper/internal/churn"
	"whisper/internal/crypt"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/parallel"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

func main() {
	var (
		n        = flag.Int("n", 300, "number of nodes")
		natRatio = flag.Float64("nat", 0.7, "fraction of nodes behind NATs")
		pi       = flag.Int("pi", 3, "Π: P-node redundancy level")
		groups   = flag.Int("groups", 6, "number of private groups (0 = PSS only)")
		duration = flag.Duration("duration", 20*time.Minute, "virtual runtime")
		seed     = flag.Int64("seed", 1, "random seed")
		env      = flag.String("env", "cluster", "latency model: cluster | planetlab")
		script   = flag.String("churn", "", "inline churn script (SPLAY syntax)")
		file     = flag.String("churn-file", "", "churn script file")
		keyBlob  = flag.Int("keyblob", 1024, "on-wire key blob size (bytes)")
		suite    = flag.String("suite", "rsa2048", "crypto suite every node keys under: rsa2048 or ecc")
		runs     = flag.Int("runs", 1, "replicas to run at seeds seed..seed+runs-1")
		shards   = flag.Int("shards", 1, "event shards (1 = classic single-heap engine; >1 needs a latency-bounded env)")
		metrics  = flag.String("metrics-out", "", "dump the metrics registry as JSON to this file after the run (- = stdout)")
		rollup   = flag.String("metrics-rollup", "", "dump one cross-node rollup of the metrics registry (counters summed, histograms merged) as JSON to this file after the run (- = stdout)")
		par      = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent replicas (1 = sequential)")

		faultDup     = flag.Float64("fault-dup", 0, "per-datagram duplication probability")
		faultReorder = flag.Float64("fault-reorder", 0, "per-datagram reordering probability")
		faultJitter  = flag.Duration("fault-reorder-jitter", 100*time.Millisecond, "reordering extra-delay window")
		faultBurstP  = flag.Float64("fault-burst-p", 0, "Gilbert-Elliott P(Good→Bad); 0 disables burst loss")
		faultBurstR  = flag.Float64("fault-burst-r", 0.25, "Gilbert-Elliott P(Bad→Good)")
		faultBurstL  = flag.Float64("fault-burst-loss", 1, "drop probability in the Bad state")
	)
	flag.Parse()

	if *file != "" {
		raw, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		*script = string(raw)
	}

	suiteID, err := crypt.ParseSuite(*suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := scenario{
		n: *n, natRatio: *natRatio, pi: *pi, groups: *groups,
		duration: *duration, env: *env, script: *script, keyBlob: *keyBlob,
		suite: suiteID, metricsOut: *metrics, rollupOut: *rollup, shards: *shards,
	}
	if *faultDup > 0 || *faultReorder > 0 || *faultBurstP > 0 {
		cfg.faults = &netem.FaultModel{
			DupProb:       *faultDup,
			ReorderProb:   *faultReorder,
			ReorderJitter: *faultJitter,
		}
		if *faultBurstP > 0 {
			cfg.faults.Burst = &netem.GilbertElliott{
				PGoodBad: *faultBurstP, PBadGood: *faultBurstR, LossBad: *faultBurstL,
			}
		}
	}
	if *runs <= 1 {
		// Single scenario: stream to stdout as it runs, exactly like the
		// pre-replica harness.
		if err := cfg.run(os.Stdout, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	// Replicas are independent sims; buffer each run's output and print
	// them in seed order once all workers join.
	outs, err := parallel.Map(parallel.Workers(*par), *runs, func(i int) ([]byte, error) {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "=== replica %d (seed %d) ===\n", i, *seed+int64(i))
		if err := cfg.run(&buf, *seed+int64(i)); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, out := range outs {
		os.Stdout.Write(out)
	}
}

// scenario is one whisper-sim configuration, runnable at any seed.
type scenario struct {
	n          int
	natRatio   float64
	pi         int
	groups     int
	duration   time.Duration
	env        string
	script     string
	keyBlob    int
	suite      crypt.SuiteID
	faults     *netem.FaultModel
	metricsOut string
	rollupOut  string
	shards     int
}

func (c scenario) run(out io.Writer, seed int64) error {
	var model netem.LatencyModel = netem.Cluster{}
	if c.env == "planetlab" {
		model = netem.DefaultPlanetLab()
	}
	var reg *obs.Registry
	if c.metricsOut != "" || c.rollupOut != "" {
		reg = obs.NewRegistry()
	}
	opts := sim.Options{
		Seed:     seed,
		N:        c.n,
		NATRatio: c.natRatio,
		Shards:   c.shards,
		Model:    model,
		Faults:   c.faults,
		Nylon:    nylon.Config{MinPublic: c.pi, KeyBlobSize: c.keyBlob},
		Suite:    c.suite,
		Obs:      reg.Scope("seed", fmt.Sprint(seed)),
	}
	if c.groups > 0 {
		opts.WCL = &wcl.Config{MinPublic: c.pi}
		opts.PPSS = &ppss.Config{MinHelpers: c.pi, KeyBlobSize: c.keyBlob}
	}
	fmt.Fprintf(out, "building %d nodes (%.0f%% NATted, Π=%d, %s)...\n", c.n, c.natRatio*100, c.pi, c.env)
	w, err := sim.NewWorld(opts)
	if err != nil {
		return err
	}
	w.StartAll()
	w.RunUntil(4 * time.Minute)

	var leaders []*ppss.Instance
	if c.groups > 0 {
		pubs := w.LivePublics()
		for i := 0; i < c.groups && i < len(pubs); i++ {
			inst, err := pubs[i].PPSS.CreateGroup(fmt.Sprintf("group-%d", i))
			if err == nil {
				leaders = append(leaders, inst)
			}
		}
		gi := 0
		for _, node := range w.Live() {
			if len(node.PPSS.Instances()) > 0 {
				continue
			}
			inst := leaders[gi%len(leaders)]
			gi++
			accr, entry, err := inst.Invite(node.ID())
			if err != nil {
				continue
			}
			node.PPSS.Join(fmt.Sprintf("group-%d", (gi-1)%len(leaders)), accr, entry, nil2)
			w.RunFor(time.Second)
		}
		fmt.Fprintf(out, "%d private groups formed\n", len(leaders))
	}

	if c.script != "" {
		plan, err := churn.Parse(c.script)
		if err != nil {
			return err
		}
		rng := w.Rand()
		plan.RunOn(w, churn.Actions{
			Population: func() int { return len(w.Live()) },
			Leave: func(count int) {
				w.KillRandom(count)
			},
			Join: func(count int) {
				for i := 0; i < count; i++ {
					node := w.Spawn()
					node.Nylon.Start()
					if len(leaders) > 0 {
						inst := leaders[rng.Intn(len(leaders))]
						nd := node
						w.Schedule(w.Now()+30*time.Second, func() {
							if nd.Nylon.Stopped() {
								return
							}
							if accr, entry, err := inst.Invite(nd.ID()); err == nil {
								nd.PPSS.Join(fmt.Sprintf("group-%d", 0), accr, entry, nil2)
							}
						})
					}
				}
			},
			Stop: func() { fmt.Fprintln(out, "[churn script: stop]") },
		})
		fmt.Fprintln(out, "churn script scheduled")
	}

	w.RunUntil(c.duration)
	report(out, w)
	if c.metricsOut != "" {
		if err := dumpMetrics(reg, c.metricsOut, seed); err != nil {
			return err
		}
	}
	if c.rollupOut != "" {
		if err := dumpRollup(reg, c.rollupOut, seed); err != nil {
			return err
		}
	}
	return nil
}

// dumpMetrics writes the registry JSON to path ("-" = stdout). With
// replicas, each seed gets its own file suffix so runs don't clobber
// one another.
func dumpMetrics(reg *obs.Registry, path string, seed int64) error {
	if path == "-" {
		return reg.WriteJSONTo(os.Stdout)
	}
	return reg.WriteJSON(fmt.Sprintf("%s.seed%d", path, seed))
}

// dumpRollup writes one cross-node rollup document: the per-node
// dimension is collapsed (counters summed, histograms merged), leaving
// one series per instrument per seed.
func dumpRollup(reg *obs.Registry, path string, seed int64) error {
	if path == "-" {
		return reg.WriteRollupJSONTo(os.Stdout, "node")
	}
	return reg.WriteRollupJSON(fmt.Sprintf("%s.seed%d", path, seed), "node")
}

func nil2(*ppss.Instance, error) {}

func report(out io.Writer, w *sim.World) {
	fmt.Fprintf(out, "\n=== report at t=%v ===\n", w.Now())
	live := w.Live()
	fmt.Fprintf(out, "live nodes: %d (%d public, %d NATted)\n", len(live), len(w.LivePublics()), len(w.LiveNatted()))

	g := w.GraphStream()
	cc := g.ClusteringCoefficients()
	var ccVals []float64
	for _, v := range cc {
		ccVals = append(ccVals, v)
	}
	fmt.Fprintf(out, "overlay: connected=%v, avg clustering=%.4f\n", g.WeaklyConnected(), stats.Summarize(ccVals).Mean)

	var nyl nylon.Stats
	for _, node := range live {
		s := node.Nylon.Stats()
		nyl.ShufflesCompleted += s.ShufflesCompleted
		nyl.ShufflesTimedOut += s.ShufflesTimedOut
		nyl.RelaysForwarded += s.RelaysForwarded
		nyl.PunchSuccesses += s.PunchSuccesses
	}
	fmt.Fprintf(out, "PSS: %d shuffles completed, %d timed out, %d relayed forwards, %d punches\n",
		nyl.ShufflesCompleted, nyl.ShufflesTimedOut, nyl.RelaysForwarded, nyl.PunchSuccesses)

	var wst wcl.Stats
	haveWCL := false
	for _, node := range live {
		if node.WCL == nil {
			continue
		}
		haveWCL = true
		s := node.WCL.Stats()
		wst.Sent += s.Sent
		wst.FirstTrySuccess += s.FirstTrySuccess
		wst.AltSuccess += s.AltSuccess
		wst.Failed += s.Failed
		wst.Delivered += s.Delivered
	}
	if haveWCL {
		total := wst.FirstTrySuccess + wst.AltSuccess + wst.Failed
		if total > 0 {
			fmt.Fprintf(out, "WCL: %d routes (%.1f%% first try, %.1f%% via alternative, %.1f%% failed), %d deliveries\n",
				total,
				100*float64(wst.FirstTrySuccess)/float64(total),
				100*float64(wst.AltSuccess)/float64(total),
				100*float64(wst.Failed)/float64(total),
				wst.Delivered)
		}
	}

	var up, down []float64
	mins := w.Now().Minutes()
	for _, node := range live {
		m := node.Nylon.Meter()
		up = append(up, m.UpKB()/mins)
		down = append(down, m.DownKB()/mins)
	}
	fmt.Fprintf(out, "bandwidth per node: up %s KB/min, down %s KB/min\n",
		stats.StackOf(up).String(), stats.StackOf(down).String())

	if w.Opts.Faults != nil {
		fs := w.NetFaultStats()
		fmt.Fprintf(out, "faults injected: %d duplicated, %d reordered, %d burst-dropped, %d partitioned\n",
			fs.Duplicated, fs.Reordered, fs.BurstDropped, fs.Partitioned)
	}
}
