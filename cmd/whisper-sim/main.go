// Command whisper-sim runs a configurable WHISPER scenario on the
// emulated substrate and reports overlay quality, confidential-route
// statistics and bandwidth, optionally under a SPLAY-style churn
// script (see internal/churn).
//
// Examples:
//
//	whisper-sim -n 500 -groups 10 -duration 30m
//	whisper-sim -n 1000 -churn "from 300s to 1200s const churn 1% each 60s" -duration 25m
//	whisper-sim -n 400 -env planetlab -pi 2 -duration 20m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"whisper/internal/churn"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

func main() {
	var (
		n        = flag.Int("n", 300, "number of nodes")
		natRatio = flag.Float64("nat", 0.7, "fraction of nodes behind NATs")
		pi       = flag.Int("pi", 3, "Π: P-node redundancy level")
		groups   = flag.Int("groups", 6, "number of private groups (0 = PSS only)")
		duration = flag.Duration("duration", 20*time.Minute, "virtual runtime")
		seed     = flag.Int64("seed", 1, "random seed")
		env      = flag.String("env", "cluster", "latency model: cluster | planetlab")
		script   = flag.String("churn", "", "inline churn script (SPLAY syntax)")
		file     = flag.String("churn-file", "", "churn script file")
		keyBlob  = flag.Int("keyblob", 1024, "on-wire key blob size (bytes)")
	)
	flag.Parse()

	var model netem.LatencyModel = netem.Cluster{}
	if *env == "planetlab" {
		model = netem.DefaultPlanetLab()
	}
	opts := sim.Options{
		Seed:     *seed,
		N:        *n,
		NATRatio: *natRatio,
		Model:    model,
		Nylon:    nylon.Config{MinPublic: *pi, KeyBlobSize: *keyBlob},
	}
	if *groups > 0 {
		opts.WCL = &wcl.Config{MinPublic: *pi}
		opts.PPSS = &ppss.Config{MinHelpers: *pi, KeyBlobSize: *keyBlob}
	}
	fmt.Printf("building %d nodes (%.0f%% NATted, Π=%d, %s)...\n", *n, *natRatio*100, *pi, *env)
	w, err := sim.NewWorld(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)

	var leaders []*ppss.Instance
	if *groups > 0 {
		pubs := w.LivePublics()
		for i := 0; i < *groups && i < len(pubs); i++ {
			inst, err := pubs[i].PPSS.CreateGroup(fmt.Sprintf("group-%d", i))
			if err == nil {
				leaders = append(leaders, inst)
			}
		}
		gi := 0
		for _, node := range w.Live() {
			if len(node.PPSS.Instances()) > 0 {
				continue
			}
			inst := leaders[gi%len(leaders)]
			gi++
			accr, entry, err := inst.Invite(node.ID())
			if err != nil {
				continue
			}
			node.PPSS.Join(fmt.Sprintf("group-%d", (gi-1)%len(leaders)), accr, entry, nil2)
			w.Sim.RunFor(time.Second)
		}
		fmt.Printf("%d private groups formed\n", len(leaders))
	}

	if *file != "" {
		raw, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		*script = string(raw)
	}
	if *script != "" {
		plan, err := churn.Parse(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rng := w.Sim.Rand()
		plan.Run(w.Sim, churn.Actions{
			Population: func() int { return len(w.Live()) },
			Leave: func(count int) {
				w.KillRandom(count)
			},
			Join: func(count int) {
				for i := 0; i < count; i++ {
					node := w.Spawn()
					node.Nylon.Start()
					if len(leaders) > 0 {
						inst := leaders[rng.Intn(len(leaders))]
						nd := node
						w.Sim.After(30*time.Second, func() {
							if nd.Nylon.Stopped() {
								return
							}
							if accr, entry, err := inst.Invite(nd.ID()); err == nil {
								nd.PPSS.Join(fmt.Sprintf("group-%d", 0), accr, entry, nil2)
							}
						})
					}
				}
			},
			Stop: func() { fmt.Println("[churn script: stop]") },
		})
		fmt.Println("churn script scheduled")
	}

	w.Sim.RunUntil(*duration)
	report(w)
}

func nil2(*ppss.Instance, error) {}

func report(w *sim.World) {
	fmt.Printf("\n=== report at t=%v ===\n", w.Sim.Now())
	live := w.Live()
	fmt.Printf("live nodes: %d (%d public, %d NATted)\n", len(live), len(w.LivePublics()), len(w.LiveNatted()))

	g := w.Graph()
	cc := g.ClusteringCoefficients()
	var ccVals []float64
	for _, v := range cc {
		ccVals = append(ccVals, v)
	}
	fmt.Printf("overlay: connected=%v, avg clustering=%.4f\n", g.WeaklyConnected(), stats.Summarize(ccVals).Mean)

	var nyl nylon.Stats
	for _, node := range live {
		s := node.Nylon.Stats
		nyl.ShufflesCompleted += s.ShufflesCompleted
		nyl.ShufflesTimedOut += s.ShufflesTimedOut
		nyl.RelaysForwarded += s.RelaysForwarded
		nyl.PunchSuccesses += s.PunchSuccesses
	}
	fmt.Printf("PSS: %d shuffles completed, %d timed out, %d relayed forwards, %d punches\n",
		nyl.ShufflesCompleted, nyl.ShufflesTimedOut, nyl.RelaysForwarded, nyl.PunchSuccesses)

	var wst wcl.Stats
	haveWCL := false
	for _, node := range live {
		if node.WCL == nil {
			continue
		}
		haveWCL = true
		s := node.WCL.Stats
		wst.Sent += s.Sent
		wst.FirstTrySuccess += s.FirstTrySuccess
		wst.AltSuccess += s.AltSuccess
		wst.Failed += s.Failed
		wst.Delivered += s.Delivered
	}
	if haveWCL {
		total := wst.FirstTrySuccess + wst.AltSuccess + wst.Failed
		if total > 0 {
			fmt.Printf("WCL: %d routes (%.1f%% first try, %.1f%% via alternative, %.1f%% failed), %d deliveries\n",
				total,
				100*float64(wst.FirstTrySuccess)/float64(total),
				100*float64(wst.AltSuccess)/float64(total),
				100*float64(wst.Failed)/float64(total),
				wst.Delivered)
		}
	}

	var up, down []float64
	mins := w.Sim.Now().Minutes()
	for _, node := range live {
		m := node.Nylon.Meter()
		up = append(up, m.UpKB()/mins)
		down = append(down, m.DownKB()/mins)
	}
	fmt.Printf("bandwidth per node: up %s KB/min, down %s KB/min\n",
		stats.StackOf(up).String(), stats.StackOf(down).String())
}
