package whisper

import (
	"errors"
	"time"

	"whisper/internal/tchord"
)

// DHT is a private distributed index running inside a group: a Chord
// ring built with T-Chord over the PPSS (§V-G). Keys and values are
// visible only to group members; queries and replies travel over
// confidential WCL routes.
type DHT struct {
	node *tchord.Node
}

// NewDHT starts the T-Chord layer on this member's group instance. It
// takes over the group's message handler, so a group either runs a DHT
// or application messaging, not both (run two groups otherwise).
func (g *Group) NewDHT() *DHT {
	n := tchord.New(g.inst, tchord.Config{PinRing: true})
	n.Start()
	return &DHT{node: n}
}

// LookupResult reports a resolved query.
type LookupResult struct {
	Owner NodeID
	Hops  int
	Value []byte
	Found bool
}

// ErrLookupFailed is returned when routing could not complete.
var ErrLookupFailed = errors.New("whisper: dht lookup failed")

// Put stores value under key on the owning ring member.
func (d *DHT) Put(key string, value []byte, done func(LookupResult, error)) {
	d.node.Put(key, value, adapt(done))
}

// Get retrieves the value stored under key.
func (d *DHT) Get(key string, done func(LookupResult, error)) {
	d.node.Get(key, adapt(done))
}

func adapt(done func(LookupResult, error)) func(tchord.LookupResult) {
	if done == nil {
		return nil
	}
	return func(r tchord.LookupResult) {
		if r.Err != nil {
			done(LookupResult{}, ErrLookupFailed)
			return
		}
		done(LookupResult{Owner: r.Owner.ID, Hops: r.Hops, Value: r.Value, Found: r.Found}, nil)
	}
}

// Ready reports whether the ring has converged enough to route: the
// node knows a successor distinct from itself.
func (d *DHT) Ready() bool {
	_, ok := d.node.Successor()
	return ok
}

// Stop halts the DHT layer.
func (d *DHT) Stop() { d.node.Stop() }

// ConvergenceHint suggests how long to run the network before the ring
// is usable (a few T-Chord cycles).
const ConvergenceHint = 5 * time.Minute
