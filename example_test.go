package whisper_test

import (
	"fmt"
	"time"

	"whisper"
)

// Example shows the minimal confidential-group workflow: build an
// emulated network, create a group, invite a member through an
// out-of-band token, and verify the membership relation — all without
// any trusted third party.
func Example() {
	net, err := whisper.NewNetwork(whisper.Options{Nodes: 60, Seed: 42})
	if err != nil {
		panic(err)
	}
	net.Run(4 * time.Minute) // let the peer sampling service converge

	nodes := net.Nodes()
	alice, bob := nodes[0], nodes[1]

	room, err := alice.CreateGroup("ops-room")
	if err != nil {
		panic(err)
	}
	inv, err := room.Invite(bob.ID())
	if err != nil {
		panic(err)
	}
	// The token travels out of band (chat, e-mail, QR code).
	parsed, err := whisper.ParseInvitation(inv.String())
	if err != nil {
		panic(err)
	}

	joined := false
	bob.Join(parsed, func(g *whisper.Group, err error) { joined = err == nil })
	net.Run(2 * time.Minute)

	fmt.Println("group:", room.Name())
	fmt.Println("alice leads:", room.IsLeader())
	fmt.Println("bob joined:", joined)
	// Output:
	// group: ops-room
	// alice leads: true
	// bob joined: true
}
