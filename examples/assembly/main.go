// Assembly: confidential group-wide dissemination and self-counting.
// An organizer broadcasts announcements that reach every member
// epidemically over onion routes (the pay-per-view / free-speech
// scenarios of the paper's introduction), while the group continuously
// estimates its own size via gossip aggregation — with no roster, and
// nothing visible to the other 140 nodes of the network.
//
// Run with: go run ./examples/assembly
package main

import (
	"fmt"
	"log"
	"time"

	"whisper"
)

func main() {
	net, err := whisper.NewNetwork(whisper.Options{
		Nodes:      160,
		Seed:       23,
		GroupCycle: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	net.Run(4 * time.Minute)

	nodes := net.Nodes()
	organizer := nodes[0]
	assembly, err := organizer.CreateGroup("general-assembly")
	if err != nil {
		log.Fatal(err)
	}

	// Twenty members join by invitation.
	groups := []*whisper.Group{assembly}
	for _, m := range nodes[1:21] {
		inv, err := assembly.Invite(m.ID())
		if err != nil {
			log.Fatal(err)
		}
		m.Join(inv, func(g *whisper.Group, err error) {
			if err == nil {
				groups = append(groups, g)
			}
		})
		net.Run(8 * time.Second)
	}
	net.Run(6 * time.Minute)
	fmt.Printf("assembly formed: %d members\n", len(groups))

	// Every member runs the dissemination endpoint and the counting
	// protocol.
	heard := map[int]int{}
	var casts []*whisper.Broadcast
	var ests []*whisper.SizeEstimator
	for i, g := range groups {
		i := i
		b := g.NewBroadcast()
		b.OnDeliver(func(origin whisper.NodeID, payload []byte) {
			heard[i]++
			if i == len(groups)-1 { // narrate one member's view
				fmt.Printf("  member hears %v: %s\n", origin, payload)
			}
		})
		casts = append(casts, b)
		ests = append(ests, g.NewSizeEstimator(8*time.Minute))
	}

	// Announcements from different members.
	announcements := []string{
		"agenda: mutual aid fund",
		"vote opens in five minutes",
		"motion carried 18-3",
	}
	for k, a := range announcements {
		casts[k*7%len(casts)].Publish([]byte(a))
		net.Run(90 * time.Second)
	}

	reachedAll := 0
	for _, c := range heard {
		if c == len(announcements) {
			reachedAll++
		}
	}
	fmt.Printf("%d/%d members received all %d announcements\n",
		reachedAll, len(groups), len(announcements))
	if reachedAll < len(groups)*8/10 {
		log.Fatal("dissemination failed")
	}

	// Let the counting protocol pass an epoch boundary, then read the
	// estimate from an arbitrary member.
	net.Run(12 * time.Minute)
	size, ok := ests[5].Estimate()
	if !ok {
		log.Fatal("no size estimate converged")
	}
	fmt.Printf("member-estimated assembly size: %.1f (actual %d) — no roster was ever shared\n",
		size, len(groups))
}
