// Multi-group: one node participating in several private groups at
// once (the Fig 8 scenario at example scale). Each group runs its own
// isolated PPSS instance: members of one group never learn about the
// node's other memberships, and bandwidth grows linearly with the
// number of subscriptions.
//
// Run with: go run ./examples/multigroup
package main

import (
	"fmt"
	"log"
	"time"

	"whisper"
)

func main() {
	net, err := whisper.NewNetwork(whisper.Options{
		Nodes:      120,
		Seed:       17,
		GroupCycle: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	net.Run(4 * time.Minute)

	nodes := net.Nodes()
	// Four disjoint communities, each with its own founder and members.
	groupNames := []string{"chess-club", "union-organizers", "film-archive", "mesh-operators"}
	founders := nodes[:4]
	var rooms []*whisper.Group
	for i, name := range groupNames {
		g, err := founders[i].CreateGroup(name)
		if err != nil {
			log.Fatal(err)
		}
		rooms = append(rooms, g)
		// Six dedicated members per group.
		for _, m := range nodes[4+i*6 : 10+i*6] {
			inv, _ := g.Invite(m.ID())
			m.Join(inv, func(*whisper.Group, error) {})
			net.Run(5 * time.Second)
		}
	}

	// The hub node joins ALL four groups.
	hub := nodes[60]
	upBefore, downBefore := hub.Bandwidth()
	hubGroups := map[string]*whisper.Group{}
	for i, g := range rooms {
		inv, err := g.Invite(hub.ID())
		if err != nil {
			log.Fatal(err)
		}
		name := groupNames[i]
		hub.Join(inv, func(hg *whisper.Group, err error) {
			if err == nil {
				hubGroups[name] = hg
			}
		})
		net.Run(10 * time.Second)
	}
	net.Run(8 * time.Minute)
	fmt.Printf("hub %v is now a member of %d groups\n", hub.ID(), len(hubGroups))
	if len(hubGroups) != len(groupNames) {
		log.Fatal("hub failed to join all groups")
	}

	// Isolation: the members visible in each of the hub's private views
	// belong to that community only (plus the hub itself).
	community := map[whisper.NodeID]string{}
	for i, name := range groupNames {
		community[founders[i].ID()] = name
		for _, m := range nodes[4+i*6 : 10+i*6] {
			community[m.ID()] = name
		}
	}
	for name, g := range hubGroups {
		for _, m := range g.Members() {
			if m.ID == hub.ID() {
				continue
			}
			if c, known := community[m.ID]; known && c != name {
				log.Fatalf("isolation breach: %v of %q appeared in the %q view", m.ID, c, name)
			}
		}
		fmt.Printf("  %-18s view: %d members, all from the right community\n", name, len(g.Members()))
	}

	// Bandwidth grows with subscriptions but stays modest.
	upAfter, downAfter := hub.Bandwidth()
	mins := 10.0
	fmt.Printf("hub bandwidth while serving 4 groups: %.2f KB/min up, %.2f KB/min down\n",
		float64(upAfter-upBefore)/1024/mins, float64(downAfter-downBefore)/1024/mins)

	// The hub can message peers in each group independently.
	delivered := 0
	for name, g := range hubGroups {
		if peer, ok := g.GetPeer(); ok {
			g.Send(peer, []byte("hello "+name), func(err error) {
				if err == nil {
					delivered++
				}
			})
		}
	}
	net.Run(time.Minute)
	fmt.Printf("hub delivered confidential messages in %d/%d groups\n", delivered, len(hubGroups))
	if delivered == 0 {
		log.Fatal("hub could not message any group")
	}
}
