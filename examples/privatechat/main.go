// Private chat: a rolling chat room among a dozen members of a private
// group, surviving churn (members crashing and new ones being invited)
// while every message stays confidential. This is the "private chat
// rooms in social networks" scenario the paper's introduction motivates.
//
// Run with: go run ./examples/privatechat
package main

import (
	"fmt"
	"log"
	"time"

	"whisper"
)

const roomName = "free-speech-corner"

func main() {
	net, err := whisper.NewNetwork(whisper.Options{
		Nodes:      150,
		Seed:       11,
		GroupCycle: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	net.Run(4 * time.Minute)

	nodes := net.Nodes()
	founder := nodes[0]
	room, err := founder.CreateGroup(roomName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v founded %q\n", founder.ID(), roomName)

	// Membership state for this demo (each member's group handle).
	chat := map[whisper.NodeID]*whisper.Group{founder.ID(): room}
	received := 0
	listen := func(id whisper.NodeID, g *whisper.Group) {
		g.OnMessage(func(from whisper.Member, payload []byte) {
			received++
			if received%5 == 0 {
				fmt.Printf("  [%v] %v says: %s\n", id, from.ID, payload)
			}
		})
	}
	listen(founder.ID(), room)

	invite := func(n *whisper.Node) {
		inv, err := room.Invite(n.ID())
		if err != nil {
			return
		}
		n.Join(inv, func(g *whisper.Group, err error) {
			if err != nil {
				return
			}
			chat[n.ID()] = g
			listen(n.ID(), g)
		})
	}
	for _, n := range nodes[1:12] {
		invite(n)
		net.Run(10 * time.Second)
	}
	net.Run(6 * time.Minute)
	fmt.Printf("room has %d members\n", len(chat))

	// Chat for a while: every member periodically messages a random
	// peer from its private view.
	say := func(round int) {
		for id, g := range chat {
			if net.Node(id) == nil {
				continue
			}
			peer, ok := g.GetPeer()
			if !ok {
				continue
			}
			msg := fmt.Sprintf("hello #%d from %v", round, id)
			g.Send(peer, []byte(msg), nil)
		}
	}
	for round := 1; round <= 3; round++ {
		say(round)
		net.Run(time.Minute)
	}
	fmt.Printf("after 3 rounds: %d confidential messages delivered\n", received)

	// Churn: two members crash, one new member is invited.
	var crashed []whisper.NodeID
	count := 0
	for id := range chat {
		if id == founder.ID() || count == 2 {
			continue
		}
		net.Node(id).Leave()
		crashed = append(crashed, id)
		delete(chat, id)
		count++
	}
	fmt.Printf("members %v crashed\n", crashed)
	newcomer := nodes[20]
	invite(newcomer)
	net.Run(5 * time.Minute)

	before := received
	for round := 4; round <= 6; round++ {
		say(round)
		net.Run(time.Minute)
	}
	fmt.Printf("after churn: %d more messages delivered; room still alive\n", received-before)
	if received-before == 0 {
		log.Fatal("chat died after churn")
	}
}
