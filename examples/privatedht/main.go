// Private DHT: the paper's flagship application (§V-G). Sixty members
// of a private group bootstrap a Chord ring with T-Chord on top of the
// private peer sampling service and operate a distributed index whose
// keys, values, queries and membership are all hidden from the rest of
// the 200-node network — "a private index to share the location of
// sensitive data".
//
// Run with: go run ./examples/privatedht
package main

import (
	"fmt"
	"log"
	"time"

	"whisper"
)

func main() {
	net, err := whisper.NewNetwork(whisper.Options{
		Nodes:      200,
		Seed:       13,
		GroupCycle: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converging the public underlay...")
	net.Run(4 * time.Minute)

	nodes := net.Nodes()
	members := nodes[:24]
	indexGroup, err := members[0].CreateGroup("dissidents-index")
	if err != nil {
		log.Fatal(err)
	}
	groups := []*whisper.Group{indexGroup}
	for _, m := range members[1:] {
		inv, err := indexGroup.Invite(m.ID())
		if err != nil {
			log.Fatal(err)
		}
		m.Join(inv, func(g *whisper.Group, err error) {
			if err == nil {
				groups = append(groups, g)
			}
		})
		net.Run(5 * time.Second)
	}
	net.Run(6 * time.Minute)
	fmt.Printf("%d members joined the private group\n", len(groups))

	fmt.Println("bootstrapping the T-Chord ring inside the group...")
	var dhts []*whisper.DHT
	for _, g := range groups {
		dhts = append(dhts, g.NewDHT())
	}
	net.Run(10 * time.Minute)
	ready := 0
	for _, d := range dhts {
		if d.Ready() {
			ready++
		}
	}
	fmt.Printf("ring converged: %d/%d members routing\n", ready, len(dhts))

	// Publish a few sensitive records.
	records := map[string]string{
		"safehouse/geneva":   "Rue du Stand 42, ring twice",
		"drop/printing":      "locker 17, station west",
		"contact/journalist": "keybase:whistler",
	}
	done := 0
	for k, v := range records {
		dhts[0].Put(k, []byte(v), func(r whisper.LookupResult, err error) {
			if err == nil {
				fmt.Printf("  stored %-20s on member %v (%d hops)\n", k, r.Owner, r.Hops)
				done++
			}
		})
		net.Run(time.Minute)
	}
	if done != len(records) {
		log.Fatalf("only %d/%d records stored", done, len(records))
	}

	// Any member can retrieve them; the reply comes back over a single
	// confidential WCL path to the querier.
	fmt.Println("querying from another member...")
	hits := 0
	for k, want := range records {
		k, want := k, want
		dhts[9].Get(k, func(r whisper.LookupResult, err error) {
			if err != nil || !r.Found {
				fmt.Printf("  MISS %s\n", k)
				return
			}
			if string(r.Value) != want {
				log.Fatalf("value corrupted for %s", k)
			}
			fmt.Printf("  found %-20s = %q (%d hops)\n", k, r.Value, r.Hops)
			hits++
		})
		net.Run(time.Minute)
	}
	fmt.Printf("%d/%d records retrieved through the private index\n", hits, len(records))
	if hits != len(records) {
		log.Fatal("private index lookups failed")
	}
}
