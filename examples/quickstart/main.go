// Quickstart: create a confidential group on an emulated WHISPER
// network, invite members with an out-of-band token, and exchange a
// message that no third party — relay, mix, or passive observer — can
// read or attribute.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"whisper"
)

func main() {
	fmt.Println("Building a 100-node network (70% behind NATs)...")
	net, err := whisper.NewNetwork(whisper.Options{
		Nodes:      100,
		Seed:       7,
		GroupCycle: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Let the NAT-resilient peer sampling service converge: nodes
	// discover each other, open NAT-traversal routes, and sample keys.
	net.Run(4 * time.Minute)

	nodes := net.Nodes()
	alice, bob := nodes[0], nodes[1]
	fmt.Printf("alice = %v (%s), bob = %v (%s)\n",
		alice.ID(), alice.NATType(), bob.ID(), bob.NATType())

	// Alice founds a private group. She becomes its leader: she holds
	// the group private key and can admit members.
	room, err := alice.CreateGroup("ops-room")
	if err != nil {
		log.Fatal(err)
	}

	// She invites Bob. The invitation is a token to be delivered out of
	// band — paste it into a chat, an e-mail, a QR code.
	inv, err := room.Invite(bob.ID())
	if err != nil {
		log.Fatal(err)
	}
	token := inv.String()
	fmt.Printf("invitation token (%d chars): %.60s...\n", len(token), token)

	// Bob redeems the token. The join handshake itself already travels
	// over a confidential onion route.
	parsed, err := whisper.ParseInvitation(token)
	if err != nil {
		log.Fatal(err)
	}
	var bobRoom *whisper.Group
	bob.Join(parsed, func(g *whisper.Group, err error) {
		if err != nil {
			log.Fatal("join failed: ", err)
		}
		bobRoom = g
	})
	net.Run(time.Minute)
	fmt.Println("bob joined:", bobRoom.Name())

	// A few private gossip cycles populate the members' private views.
	net.Run(5 * time.Minute)

	// Bob listens; Alice sends. The payload is AES-encrypted under a
	// fresh key, and the message travels S → A → B → D through two
	// mixes, so no single node or link observer ever sees both
	// endpoints together.
	bobRoom.OnMessage(func(from whisper.Member, payload []byte) {
		fmt.Printf("bob received %q from %v\n", payload, from.ID)
	})
	var target whisper.Member
	for _, m := range room.Members() {
		if m.ID == bob.ID() {
			target = m
		}
	}
	if target.ID == 0 {
		// Bob not in Alice's current view sample; pin him via GetPeer
		// rotation by running a little longer.
		net.Run(3 * time.Minute)
		for _, m := range room.Members() {
			if m.ID == bob.ID() {
				target = m
			}
		}
	}
	if target.ID == 0 {
		log.Fatal("bob never appeared in alice's private view")
	}
	room.Send(target, []byte("the eagle lands at midnight"), func(err error) {
		if err != nil {
			log.Fatal("send failed: ", err)
		}
		fmt.Println("alice's message was acknowledged end-to-end")
	})
	net.Run(time.Minute)

	up, down := alice.Bandwidth()
	fmt.Printf("alice's total traffic: %.1f KB up / %.1f KB down\n",
		float64(up)/1024, float64(down)/1024)
	fmt.Println("done: content privacy and membership privacy held throughout.")
}
