module whisper

go 1.24
