package whisper

import (
	"encoding/base64"
	"errors"
	"fmt"

	"whisper/internal/ppss"
	"whisper/internal/wcl"
	"whisper/internal/wire"
)

// Group is one node's membership in a private group. All communication
// through it is confidential: content is end-to-end encrypted and the
// traffic travels over onion routes, so third parties (including the
// NAT relays carrying it) learn neither the payloads nor the fact that
// the two endpoints share a group.
type Group struct {
	node *Node
	name string
	inst *ppss.Instance
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// IsLeader reports whether this member holds the group private key and
// can admit new members.
func (g *Group) IsLeader() bool { return g.inst.IsLeader() }

// Member is a group member as seen through the private view.
type Member struct {
	ID     NodeID
	Public bool

	entry ppss.Entry
}

// Members returns the members currently in this node's private view —
// a continuously refreshed random sample of the group, NOT the full
// roster (no node ever holds the full roster; that is the point).
func (g *Group) Members() []Member {
	var out []Member
	for _, e := range g.inst.View() {
		out = append(out, Member{ID: e.Val.ID, Public: e.Val.IsPub, entry: e.Val})
	}
	return out
}

// GetPeer returns one uniformly random member from the private view
// (the PPSS getPeer() API). ok is false while the view is still empty.
func (g *Group) GetPeer() (Member, bool) {
	e, ok := g.inst.GetPeer()
	return Member{ID: e.ID, Public: e.IsPub, entry: e}, ok
}

// Invite issues a signed invitation for the given node (leaders only).
// Deliver it out of band — e-mail, instant messaging, a web page — as
// the paper suggests; Invitation.String() is a compact base64 token.
func (g *Group) Invite(who NodeID) (Invitation, error) {
	accr, entry, err := g.inst.Invite(who)
	if err != nil {
		return Invitation{}, err
	}
	return Invitation{group: g.name, accr: accr, entry: entry}, nil
}

// OnMessage installs the handler for application payloads sent to this
// member over the group.
func (g *Group) OnMessage(fn func(from Member, payload []byte)) {
	if fn == nil {
		g.inst.OnMessage = nil
		return
	}
	g.inst.OnMessage = func(from ppss.Entry, payload []byte) {
		fn(Member{ID: from.ID, Public: from.IsPub, entry: from}, payload)
	}
}

// Send delivers payload confidentially to the member. done (optional)
// reports whether a route was established (wcl semantics: first-try,
// via an alternative path, or failed).
func (g *Group) Send(to Member, payload []byte, done func(error)) {
	g.inst.Send(to.entry, payload, func(r wcl.Result) {
		if done == nil {
			return
		}
		if r.Outcome == wcl.Failed {
			done(fmt.Errorf("whisper: no confidential route to %v", to.ID))
			return
		}
		done(nil)
	})
}

// SendTo is Send to a member addressed by ID, resolved through the
// persistent pool or the current private view.
func (g *Group) SendTo(id NodeID, payload []byte, done func(error)) error {
	e, ok := g.inst.Lookup(id)
	if !ok {
		return fmt.Errorf("whisper: member %v not in view; use MakePersistent to pin members", id)
	}
	g.Send(Member{ID: e.ID, Public: e.IsPub, entry: e}, payload, done)
	return nil
}

// MakePersistent pins the member in the private connection pool: the
// middleware keeps its route warm so SendTo keeps working after the
// member rotates out of the view (§IV-C).
func (g *Group) MakePersistent(m Member) { g.inst.MakePersistent(m.entry) }

// Leave abandons the group.
func (g *Group) Leave() { g.node.sn.PPSS.Leave(g.inst.Group()) }

// Invitation is the out-of-band token a leader hands to an invitee: a
// temporary signed accreditation plus the entry point's coordinates
// (§IV-A).
type Invitation struct {
	group string
	accr  ppss.Accreditation
	entry ppss.Entry
}

// invitationKeyBlob bounds key encoding inside tokens.
const invitationKeyBlob = 1024

// String encodes the invitation as a compact base64 token suitable for
// pasting into a chat or e-mail.
func (inv Invitation) String() string {
	w := wire.NewWriter(512)
	w.String(inv.group)
	w.U64(uint64(inv.accr.Group))
	w.U64(uint64(inv.accr.Invitee))
	w.U32(inv.accr.Epoch)
	w.Bytes16(inv.accr.Sig)
	inv.entry.Encode(w, invitationKeyBlob)
	return base64.StdEncoding.EncodeToString(w.Bytes())
}

// ParseInvitation decodes a token produced by Invitation.String.
func ParseInvitation(token string) (Invitation, error) {
	raw, err := base64.StdEncoding.DecodeString(token)
	if err != nil {
		return Invitation{}, fmt.Errorf("whisper: bad invitation encoding: %w", err)
	}
	r := wire.NewReader(raw)
	var inv Invitation
	inv.group = r.String()
	inv.accr.Group = ppss.GroupID(r.U64())
	inv.accr.Invitee = NodeID(r.U64())
	inv.accr.Epoch = r.U32()
	inv.accr.Sig = append([]byte(nil), r.Bytes16()...)
	inv.entry = ppss.DecodeEntry(r, invitationKeyBlob)
	if r.Err() != nil {
		return Invitation{}, errors.New("whisper: malformed invitation token")
	}
	return inv, nil
}

// For returns the node the invitation admits.
func (inv Invitation) For() NodeID { return inv.accr.Invitee }

// GroupName returns the group the invitation opens.
func (inv Invitation) GroupName() string { return inv.group }
