// Package aggregate implements gossip-based aggregation (Jelasity,
// Montresor and Babaoglu, the paper's [8]): each pairwise exchange
// replaces both participants' values with a combination (average,
// maximum, minimum), and the whole network converges to the aggregate
// in O(log n) cycles. WHISPER uses the maximum aggregation for leader
// election (§IV-A); the average form also yields network size
// estimation (count), cited as a standard PSS application (§II-B).
package aggregate

import "math"

// Kind selects the combination function.
type Kind int

const (
	// Average converges every node to the mean of the initial values.
	Average Kind = iota
	// Max converges every node to the maximum.
	Max
	// Min converges every node to the minimum.
	Min
)

// State is one node's aggregation state. Create with New; exchange with
// peers by sending Value() and calling Absorb on what the peer sent
// (the peer does the same with our value — the push-pull exchange of
// the protocol).
type State struct {
	kind  Kind
	value float64
}

// New creates aggregation state with an initial local value.
func New(kind Kind, initial float64) *State {
	return &State{kind: kind, value: initial}
}

// Value returns the current estimate; this is also what a node sends to
// its exchange partner.
func (s *State) Value() float64 { return s.value }

// Absorb merges the partner's value. For Average both sides converge to
// the pairwise mean, preserving the global sum; for Max/Min the extreme
// value spreads epidemically.
func (s *State) Absorb(peer float64) {
	switch s.kind {
	case Average:
		s.value = (s.value + peer) / 2
	case Max:
		s.value = math.Max(s.value, peer)
	case Min:
		s.value = math.Min(s.value, peer)
	}
}

// Reset restarts an epoch with a fresh local value (periodic restarts
// are how the protocol tracks a changing input).
func (s *State) Reset(value float64) { s.value = value }

// SizeEstimate converts a converged Average value into a network size
// estimate for the counting protocol, where exactly one node starts at
// 1 and all others at 0: the average converges to 1/n.
func SizeEstimate(avg float64) float64 {
	if avg <= 0 {
		return math.Inf(1)
	}
	return 1 / avg
}
