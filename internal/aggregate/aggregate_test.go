package aggregate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// runRounds performs r rounds of random pairwise push-pull exchanges.
func runRounds(states []*State, r int, rng *rand.Rand) {
	n := len(states)
	for round := 0; round < r; round++ {
		order := rng.Perm(n)
		for _, i := range order {
			j := rng.Intn(n)
			if i == j {
				continue
			}
			vi, vj := states[i].Value(), states[j].Value()
			states[i].Absorb(vj)
			states[j].Absorb(vi)
		}
	}
}

func TestAverageConvergesAndPreservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200
	states := make([]*State, n)
	sum := 0.0
	for i := range states {
		v := rng.Float64() * 100
		sum += v
		states[i] = New(Average, v)
	}
	mean := sum / n
	runRounds(states, 30, rng)

	newSum := 0.0
	for _, s := range states {
		newSum += s.Value()
		if math.Abs(s.Value()-mean) > 0.5 {
			t.Fatalf("node value %.3f far from mean %.3f after 30 rounds", s.Value(), mean)
		}
	}
	// Mass conservation: pairwise averaging never changes the sum.
	if math.Abs(newSum-sum) > 1e-6 {
		t.Fatalf("mass not conserved: %.9f vs %.9f", newSum, sum)
	}
}

func TestMaxSpreadsFast(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 500
	states := make([]*State, n)
	for i := range states {
		states[i] = New(Max, float64(i))
	}
	// O(log n) rounds suffice for the max to reach everyone.
	runRounds(states, 15, rng)
	for i, s := range states {
		if s.Value() != float64(n-1) {
			t.Fatalf("node %d did not learn the max: %.1f", i, s.Value())
		}
	}
}

func TestMin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	states := []*State{New(Min, 5), New(Min, 2), New(Min, 9)}
	runRounds(states, 10, rng)
	for _, s := range states {
		if s.Value() != 2 {
			t.Fatalf("min = %v", s.Value())
		}
	}
}

func TestSizeEstimation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 300
	states := make([]*State, n)
	for i := range states {
		v := 0.0
		if i == 0 {
			v = 1.0 // exactly one initiator
		}
		states[i] = New(Average, v)
	}
	runRounds(states, 40, rng)
	est := SizeEstimate(states[n/2].Value())
	if est < n*0.9 || est > n*1.1 {
		t.Fatalf("size estimate %.1f, want ~%d", est, n)
	}
	if !math.IsInf(SizeEstimate(0), 1) {
		t.Fatal("zero average should estimate infinite size")
	}
}

func TestReset(t *testing.T) {
	s := New(Average, 5)
	s.Absorb(1)
	s.Reset(10)
	if s.Value() != 10 {
		t.Fatalf("Reset: %v", s.Value())
	}
}

// Property: max aggregation is monotone non-decreasing at each node and
// bounded by the true maximum.
func TestPropertyMaxMonotoneBounded(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		if len(raw) < 2 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		states := make([]*State, len(raw))
		trueMax := 0.0
		for i, v := range raw {
			states[i] = New(Max, float64(v))
			if float64(v) > trueMax {
				trueMax = float64(v)
			}
		}
		prev := make([]float64, len(states))
		for i, s := range states {
			prev[i] = s.Value()
		}
		runRounds(states, 5, rng)
		for i, s := range states {
			if s.Value() < prev[i] || s.Value() > trueMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}
