// Package broadcast implements gossip-based dissemination inside a
// private group: application-level multicast, the first PSS application
// the paper lists (§II-B, citing lpbcast [5]) and the machinery behind
// its pay-per-view streaming motivation (§I). A message published by
// any member reaches the whole group epidemically through the private
// views, every hop travelling over a confidential WCL route — so the
// multicast tree, like the membership, is invisible to outsiders.
//
// The protocol is infect-and-die with a bounded relay count: each
// member forwards a freshly seen message to Fanout random private-view
// peers and decrements a hop budget; duplicate receptions are dropped
// via a bounded seen-cache.
package broadcast

import (
	"time"

	"whisper/internal/identity"
	"whisper/internal/obs"
	"whisper/internal/ppss"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// Tag is the PPSS payload tag of broadcast messages.
const Tag uint8 = 0x60

// Config parameterizes the dissemination.
type Config struct {
	// Fanout is the number of peers each member forwards a fresh
	// message to (default 4 ≈ ln(group size) + margin).
	Fanout int
	// Hops bounds the relay depth (default 8; log-diameter groups need
	// far fewer).
	Hops int
	// CacheSize bounds the duplicate-suppression cache (default 1024).
	CacheSize int
	// Obs is the scope broadcast instruments register under. Nil
	// defaults to the instance's group scope.
	Obs *obs.Scope
}

func (c Config) withDefaults() Config {
	if c.Fanout == 0 {
		c.Fanout = 4
	}
	if c.Hops == 0 {
		c.Hops = 8
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	return c
}

// Stats is a snapshot of dissemination events, read through
// Broadcaster.Stats.
type Stats struct {
	Published  uint64
	Delivered  uint64
	Duplicates uint64
	Forwards   uint64
	// ForwardBytes is the encoded bytes of all forwards — the relay
	// bandwidth the full-group flood costs, which the pub/sub
	// experiment compares its filtered routing against.
	ForwardBytes uint64
}

// met holds the broadcaster's metric instruments.
type met struct {
	published    *obs.Counter
	delivered    *obs.Counter
	duplicates   *obs.Counter
	forwards     *obs.Counter
	forwardBytes *obs.Counter
}

func newMet(sc *obs.Scope) met {
	return met{
		published:    sc.Counter("broadcast_published_total"),
		delivered:    sc.Counter("broadcast_delivered_total"),
		duplicates:   sc.Counter("broadcast_duplicates_total"),
		forwards:     sc.Counter("broadcast_forwards_total"),
		forwardBytes: sc.Counter("broadcast_forward_bytes_total"),
	}
}

// Broadcaster is the per-member dissemination endpoint of one group.
type Broadcaster struct {
	inst *ppss.Instance
	rt   transport.Transport
	cfg  Config

	seen  map[uint64]struct{}
	order []uint64 // FIFO for cache eviction

	// OnDeliver receives each unique message exactly once, including
	// the member's own publications.
	OnDeliver func(origin identity.NodeID, payload []byte)

	met met
}

// New attaches a broadcaster to a group instance (subscribing to Tag).
func New(inst *ppss.Instance, cfg Config) *Broadcaster {
	cfg = cfg.withDefaults()
	if cfg.Obs == nil {
		cfg.Obs = inst.Obs()
	}
	b := &Broadcaster{
		inst: inst,
		rt:   inst.Runtime(),
		cfg:  cfg,
		seen: make(map[uint64]struct{}),
		met:  newMet(cfg.Obs),
	}
	inst.Subscribe(Tag, b.handle)
	return b
}

// Stats returns a snapshot of the broadcaster's counters.
func (b *Broadcaster) Stats() Stats {
	return Stats{
		Published:    b.met.published.Value(),
		Delivered:    b.met.delivered.Value(),
		Duplicates:   b.met.duplicates.Value(),
		Forwards:     b.met.forwards.Value(),
		ForwardBytes: b.met.forwardBytes.Value(),
	}
}

// Publish disseminates payload to the whole group. The publisher
// delivers to itself immediately.
func (b *Broadcaster) Publish(payload []byte) {
	id := b.rt.Rand().Uint64()
	b.met.published.Inc()
	b.remember(id)
	b.met.delivered.Inc()
	if b.OnDeliver != nil {
		b.OnDeliver(b.inst.SelfEntry().ID, payload)
	}
	b.forward(message{ID: id, Origin: b.inst.SelfEntry().ID, Hops: uint8(b.cfg.Hops), Payload: payload})
}

type message struct {
	ID      uint64
	Origin  identity.NodeID
	Hops    uint8
	Payload []byte
}

func (m message) encode() []byte {
	w := wire.NewWriter(20 + len(m.Payload))
	w.U8(Tag)
	w.U64(m.ID)
	w.U64(uint64(m.Origin))
	w.U8(m.Hops)
	w.Bytes32(m.Payload)
	return w.Bytes()
}

func decode(payload []byte) (message, bool) {
	r := wire.NewReader(payload)
	if r.U8() != Tag {
		return message{}, false
	}
	var m message
	m.ID = r.U64()
	m.Origin = identity.NodeID(r.U64())
	m.Hops = r.U8()
	m.Payload = r.Bytes32()
	return m, r.Err() == nil
}

func (b *Broadcaster) handle(_ ppss.Entry, payload []byte) {
	m, ok := decode(payload)
	if !ok {
		return
	}
	if _, dup := b.seen[m.ID]; dup {
		b.met.duplicates.Inc()
		return
	}
	b.remember(m.ID)
	b.met.delivered.Inc()
	if b.OnDeliver != nil {
		b.OnDeliver(m.Origin, m.Payload)
	}
	if m.Hops > 0 {
		m.Hops--
		b.forward(m)
	}
}

// forward infects Fanout random private-view peers. Sends go out in
// selection order (not map order) so simulated runs stay deterministic.
func (b *Broadcaster) forward(m message) {
	var peers []ppss.Entry
	picked := map[identity.NodeID]bool{}
	for tries := 0; tries < b.cfg.Fanout*3 && len(peers) < b.cfg.Fanout; tries++ {
		e, ok := b.inst.GetPeer()
		if !ok {
			break
		}
		if e.ID == m.Origin || picked[e.ID] {
			continue
		}
		picked[e.ID] = true
		peers = append(peers, e)
	}
	enc := m.encode()
	for _, e := range peers {
		b.met.forwards.Inc()
		b.met.forwardBytes.Add(uint64(len(enc)))
		b.inst.Send(e, enc, nil)
	}
}

func (b *Broadcaster) remember(id uint64) {
	b.seen[id] = struct{}{}
	b.order = append(b.order, id)
	for len(b.order) > b.cfg.CacheSize {
		delete(b.seen, b.order[0])
		b.order = b.order[1:]
	}
}

// ExpectedLatency estimates dissemination time for a group of size n:
// O(log n) forwarding waves, each one WCL route deep.
func ExpectedLatency(n int, hopRTT time.Duration) time.Duration {
	waves := 1
	for c := 1; c < n; c *= 2 {
		waves++
	}
	return time.Duration(waves) * hopRTT
}
