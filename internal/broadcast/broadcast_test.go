package broadcast_test

import (
	"testing"
	"time"

	"whisper/internal/broadcast"
	"whisper/internal/identity"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/sizeest"
)

// buildGroup converges a world and forms one private group, returning
// the member nodes and their instances.
func buildGroup(t testing.TB, seed int64, worldN, groupN int) (*sim.World, []*ppss.Instance) {
	t.Helper()
	w, err := sim.NewWorld(sim.Options{
		Seed:     seed,
		N:        worldN,
		NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		PPSS: &ppss.Config{
			Cycle:       30 * time.Second,
			RespTimeout: 15 * time.Second,
			JoinTimeout: 20 * time.Second,
			KeyBlobSize: 256,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)

	members := w.Live()[:groupN]
	leader, err := members[0].PPSS.CreateGroup("bcast")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range members[1:] {
		m := m
		var try func(attempt int)
		try = func(attempt int) {
			accr, entry, err := leader.Invite(m.ID())
			if err != nil {
				t.Fatal(err)
			}
			m.PPSS.Join("bcast", accr, entry, func(_ *ppss.Instance, err error) {
				if err != nil && attempt < 3 {
					try(attempt + 1)
				}
			})
		}
		try(1)
		w.Sim.RunFor(5 * time.Second)
	}
	w.Sim.RunFor(8 * time.Minute)

	g := ppss.GroupIDFromName("bcast")
	var insts []*ppss.Instance
	for _, m := range members {
		if inst := m.PPSS.Instance(g); inst != nil {
			insts = append(insts, inst)
		}
	}
	if len(insts) != groupN {
		t.Fatalf("only %d/%d joined", len(insts), groupN)
	}
	return w, insts
}

func TestBroadcastReachesWholeGroup(t *testing.T) {
	w, insts := buildGroup(t, 71, 100, 16)
	received := map[int]int{}
	var bs []*broadcast.Broadcaster
	for i, inst := range insts {
		i := i
		b := broadcast.New(inst, broadcast.Config{})
		b.OnDeliver = func(origin identity.NodeID, payload []byte) {
			if string(payload) == "assembly at dawn" {
				received[i]++
			}
		}
		bs = append(bs, b)
	}
	bs[3].Publish([]byte("assembly at dawn"))
	w.Sim.RunFor(3 * time.Minute)

	delivered := len(received)
	if delivered < len(insts)*9/10 {
		t.Fatalf("broadcast reached %d/%d members", delivered, len(insts))
	}
	// Exactly-once delivery.
	for i, c := range received {
		if c != 1 {
			t.Fatalf("member %d delivered %d times", i, c)
		}
	}
	// Duplicates were suppressed, not delivered.
	var dups uint64
	for _, b := range bs {
		dups += b.Stats().Duplicates
	}
	if dups == 0 {
		t.Log("note: no duplicate arrived at all (small group)")
	}
}

func TestBroadcastManyMessages(t *testing.T) {
	w, insts := buildGroup(t, 72, 100, 12)
	var bs []*broadcast.Broadcaster
	counts := make([]int, len(insts))
	for i, inst := range insts {
		i := i
		b := broadcast.New(inst, broadcast.Config{})
		b.OnDeliver = func(identity.NodeID, []byte) { counts[i]++ }
		bs = append(bs, b)
	}
	const msgs = 10
	for k := 0; k < msgs; k++ {
		bs[k%len(bs)].Publish([]byte{byte(k)})
		w.Sim.RunFor(30 * time.Second)
	}
	w.Sim.RunFor(2 * time.Minute)
	full := 0
	for _, c := range counts {
		if c >= msgs*9/10 {
			full++
		}
	}
	if full < len(insts)*9/10 {
		t.Fatalf("only %d/%d members got (almost) all %d messages: %v", full, len(insts), msgs, counts)
	}
}

func TestSizeEstimationInsideGroup(t *testing.T) {
	w, insts := buildGroup(t, 73, 100, 20)
	var ests []*sizeest.Estimator
	for _, inst := range insts {
		ests = append(ests, sizeest.New(inst, sizeest.Config{Cycle: 20 * time.Second}))
	}
	// Two full epochs.
	w.Sim.RunFor(25 * time.Minute)

	good := 0
	for _, e := range ests {
		if est, ok := e.Estimate(); ok && est > 10 && est < 40 {
			good++
		}
	}
	if good < len(ests)*7/10 {
		vals := make([]float64, 0, len(ests))
		for _, e := range ests {
			v, _ := e.Estimate()
			vals = append(vals, v)
		}
		t.Fatalf("only %d/%d members estimate ~20 members: %.1f", good, len(ests), vals)
	}
	for _, e := range ests {
		e.Stop()
	}
}

func TestBroadcastAndDHTShareAGroup(t *testing.T) {
	// The Subscribe mux lets several gossip protocols coexist on one
	// instance; verify broadcast still delivers with an estimator
	// subscribed alongside.
	w, insts := buildGroup(t, 74, 80, 10)
	got := 0
	var bs []*broadcast.Broadcaster
	for _, inst := range insts {
		b := broadcast.New(inst, broadcast.Config{})
		b.OnDeliver = func(identity.NodeID, []byte) { got++ }
		bs = append(bs, b)
		sizeest.New(inst, sizeest.Config{})
	}
	bs[0].Publish([]byte("shared"))
	w.Sim.RunFor(3 * time.Minute)
	if got < len(insts)*8/10 {
		t.Fatalf("coexisting protocols broke broadcast: %d/%d", got, len(insts))
	}
}
