// Package churn reproduces the SPLAY churn module the paper's Table I
// uses: a small scripting language that schedules node arrivals and
// departures over virtual time, with a configurable replacement ratio.
//
// The exact script at the bottom of Table I —
//
//	from 0s to 30s join 1000
//	at 300s set replacement ratio to 100%
//	from 300s to 1200s const churn X% each 60s
//	at 1200s stop
//
// can be expressed programmatically (Plan) or parsed from text (Parse).
package churn

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"time"

	"whisper/internal/simnet"
)

// Scheduler is the scheduling plane a churn plan drives. The plain
// simulator implements it directly; the sharded engine implements it on
// its control plane, so churn scripts run single-threaded at exact
// window barriers with every shard parked.
type Scheduler interface {
	// Schedule runs fn at absolute virtual time at (or as soon after as
	// the engine's semantics allow, never before).
	Schedule(at time.Duration, fn func())
}

var _ Scheduler = (*simnet.Sim)(nil)
var _ Scheduler = (*simnet.Sharded)(nil)

// Actions is what a churn plan drives: the harness wires these to node
// creation and destruction.
type Actions struct {
	// Join spawns count new nodes.
	Join func(count int)
	// Leave kills count random live nodes.
	Leave func(count int)
	// Population returns the current live node count (used by
	// percentage-based steps).
	Population func() int
	// Stop ends the experiment.
	Stop func()
}

// Step is one scripted churn behaviour.
type Step interface {
	schedule(s Scheduler, a Actions)
}

// JoinBurst joins Count nodes spread evenly over [From, To].
type JoinBurst struct {
	From, To time.Duration
	Count    int
}

func (j JoinBurst) schedule(s Scheduler, a Actions) {
	if j.Count <= 0 {
		return
	}
	span := j.To - j.From
	for i := 0; i < j.Count; i++ {
		at := j.From
		if j.Count > 1 && span > 0 {
			at += span * time.Duration(i) / time.Duration(j.Count-1)
		}
		s.Schedule(at, func() { a.Join(1) })
	}
}

// SetReplacement changes the fraction of departures that are replaced
// by fresh arrivals (1.0 = stable population, the paper's setting).
type SetReplacement struct {
	At    time.Duration
	Ratio float64
}

func (r SetReplacement) schedule(s Scheduler, a Actions) {} // handled by ConstChurn via plan state

// ConstChurn makes RatePct percent of the population leave per minute
// between From and To, batched every Interval, with departures replaced
// according to the current replacement ratio.
type ConstChurn struct {
	From, To time.Duration
	// RatePct is the percentage of the population leaving per minute
	// (Table I's X).
	RatePct float64
	// Interval batches the churn (Table I: each 60 s).
	Interval time.Duration
}

func (c ConstChurn) schedule(s Scheduler, a Actions) {} // handled by Plan.RunOn

// StopAt ends the run.
type StopAt struct {
	At time.Duration
}

func (st StopAt) schedule(s Scheduler, a Actions) {
	s.Schedule(st.At, func() {
		if a.Stop != nil {
			a.Stop()
		}
	})
}

// Plan is an ordered churn script.
type Plan struct {
	Steps []Step
}

// Run schedules the whole plan on the simulator. It returns immediately;
// the events fire as virtual time advances.
func (p Plan) Run(s *simnet.Sim, a Actions) { p.RunOn(s, a) }

// RunOn schedules the whole plan on any scheduling plane — the plain
// simulator, or a sharded engine's barrier-synchronized control plane.
func (p Plan) RunOn(s Scheduler, a Actions) {
	replacement := 1.0
	for _, step := range p.Steps {
		switch st := step.(type) {
		case SetReplacement:
			ratio := st.Ratio
			s.Schedule(st.At, func() { replacement = ratio })
		case ConstChurn:
			interval := st.Interval
			if interval <= 0 {
				interval = time.Minute
			}
			var tick func(at time.Duration)
			tick = func(at time.Duration) {
				if at > st.To {
					return
				}
				s.Schedule(at, func() {
					pop := a.Population()
					leave := int(float64(pop) * st.RatePct / 100 * interval.Minutes())
					if leave > 0 {
						a.Leave(leave)
						if join := int(float64(leave) * replacement); join > 0 {
							a.Join(join)
						}
					}
					tick(at + interval)
				})
			}
			tick(st.From + interval)
		default:
			step.schedule(s, a)
		}
	}
}

// Parse reads the SPLAY-like script syntax of Table I. Supported lines
// (case-insensitive, '#' comments):
//
//	from 0s to 30s join 1000
//	at 300s set replacement ratio to 100%
//	from 300s to 1200s const churn 1% each 60s
//	at 1200s stop
func Parse(script string) (Plan, error) {
	var plan Plan
	sc := bufio.NewScanner(strings.NewReader(script))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(strings.ToLower(sc.Text()))
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		step, err := parseLine(line)
		if err != nil {
			return Plan{}, fmt.Errorf("churn: line %d: %w", lineNo, err)
		}
		plan.Steps = append(plan.Steps, step)
	}
	return plan, nil
}

func parseLine(line string) (Step, error) {
	f := strings.Fields(line)
	switch {
	case len(f) == 6 && f[0] == "from" && f[2] == "to" && f[4] == "join":
		from, err1 := parseDur(f[1])
		to, err2 := parseDur(f[3])
		n, err3 := strconv.Atoi(f[5])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return JoinBurst{From: from, To: to, Count: n}, nil
	case len(f) == 7 && f[0] == "at" && f[2] == "set" && f[3] == "replacement" && f[4] == "ratio" && f[5] == "to":
		at, err1 := parseDur(f[1])
		pct, err2 := parsePct(f[6])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return SetReplacement{At: at, Ratio: pct / 100}, nil
	case len(f) == 9 && f[0] == "from" && f[2] == "to" && f[4] == "const" && f[5] == "churn" && f[7] == "each":
		from, err1 := parseDur(f[1])
		to, err2 := parseDur(f[3])
		pct, err3 := parsePct(f[6])
		each, err4 := parseDur(f[8])
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return nil, err
		}
		// The script rate is per minute regardless of the batching
		// interval, as in Table I ("X% / minute ... each 60s").
		return ConstChurn{From: from, To: to, RatePct: pct, Interval: each}, nil
	case len(f) == 3 && f[0] == "at" && f[2] == "stop":
		at, err := parseDur(f[1])
		if err != nil {
			return nil, err
		}
		return StopAt{At: at}, nil
	default:
		return nil, fmt.Errorf("unrecognized statement %q", line)
	}
}

func parseDur(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", s, err)
	}
	return d, nil
}

func parsePct(s string) (float64, error) {
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad percentage %q: %w", s, err)
	}
	return v, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// TableIScript returns the exact script of Table I for churn rate x
// (percent per minute), with the initial join burst scaled to n nodes.
func TableIScript(n int, x float64) string {
	return fmt.Sprintf(`from 0s to 30s join %d
at 300s set replacement ratio to 100%%
from 300s to 1200s const churn %g%% each 60s
at 1200s stop
`, n, x)
}
