package churn

import (
	"testing"
	"time"

	"whisper/internal/simnet"
)

type recorder struct {
	pop     int
	joins   int
	leaves  int
	stopped bool
}

func (r *recorder) actions() Actions {
	return Actions{
		Join:       func(n int) { r.pop += n; r.joins += n },
		Leave:      func(n int) { r.pop -= n; r.leaves += n },
		Population: func() int { return r.pop },
		Stop:       func() { r.stopped = true },
	}
}

func TestParseTableIScript(t *testing.T) {
	plan, err := Parse(TableIScript(1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(plan.Steps))
	}
	jb, ok := plan.Steps[0].(JoinBurst)
	if !ok || jb.Count != 1000 || jb.To != 30*time.Second {
		t.Fatalf("step 0 = %+v", plan.Steps[0])
	}
	sr, ok := plan.Steps[1].(SetReplacement)
	if !ok || sr.Ratio != 1.0 || sr.At != 5*time.Minute {
		t.Fatalf("step 1 = %+v", plan.Steps[1])
	}
	cc, ok := plan.Steps[2].(ConstChurn)
	if !ok || cc.RatePct != 1 || cc.Interval != time.Minute || cc.To != 20*time.Minute {
		t.Fatalf("step 2 = %+v", plan.Steps[2])
	}
	st, ok := plan.Steps[3].(StopAt)
	if !ok || st.At != 20*time.Minute {
		t.Fatalf("step 3 = %+v", plan.Steps[3])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"frobnicate the network",
		"from 0s to 30s join many",
		"at noon stop",
		"from 0s to 10s const churn banana% each 60s",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// Comments and blanks are fine.
	plan, err := Parse("# comment\n\nat 10s stop # trailing\n")
	if err != nil || len(plan.Steps) != 1 {
		t.Fatalf("comment handling: %v %v", plan, err)
	}
}

func TestJoinBurstSpreadsEvenly(t *testing.T) {
	s := simnet.New(1)
	rec := &recorder{}
	Plan{Steps: []Step{JoinBurst{From: 0, To: 30 * time.Second, Count: 100}}}.Run(s, rec.actions())
	s.RunUntil(10 * time.Second)
	if rec.joins < 30 || rec.joins > 40 {
		t.Fatalf("joins after 10s = %d, want ~34", rec.joins)
	}
	s.RunUntil(30 * time.Second)
	if rec.joins != 100 {
		t.Fatalf("joins = %d, want 100", rec.joins)
	}
}

func TestConstChurnRateAndReplacement(t *testing.T) {
	s := simnet.New(1)
	rec := &recorder{pop: 1000}
	plan, err := Parse(TableIScript(0, 5)) // 5%/min, no initial joins
	if err != nil {
		t.Fatal(err)
	}
	plan.Run(s, rec.actions())
	s.RunUntil(21 * time.Minute)

	// 5%/min over 15 minutes of churn (300s..1200s) with 100%
	// replacement: ~50 leaves per batch, 15 batches.
	if rec.leaves < 700 || rec.leaves > 800 {
		t.Fatalf("leaves = %d, want ~750", rec.leaves)
	}
	if rec.joins != rec.leaves {
		t.Fatalf("replacement ratio broken: joins=%d leaves=%d", rec.joins, rec.leaves)
	}
	if rec.pop != 1000 {
		t.Fatalf("population drifted to %d", rec.pop)
	}
	if !rec.stopped {
		t.Fatal("stop never fired")
	}
}

func TestReplacementRatioZero(t *testing.T) {
	s := simnet.New(1)
	rec := &recorder{pop: 100}
	plan := Plan{Steps: []Step{
		SetReplacement{At: 0, Ratio: 0},
		ConstChurn{From: 0, To: 10 * time.Minute, RatePct: 10, Interval: time.Minute},
	}}
	plan.Run(s, rec.actions())
	s.RunUntil(11 * time.Minute)
	if rec.joins != 0 {
		t.Fatalf("joins = %d despite 0%% replacement", rec.joins)
	}
	if rec.pop >= 100 {
		t.Fatal("population did not shrink")
	}
}

func TestNoChurnScript(t *testing.T) {
	s := simnet.New(1)
	rec := &recorder{}
	plan, err := Parse("from 0s to 30s join 50\nat 100s stop\n")
	if err != nil {
		t.Fatal(err)
	}
	plan.Run(s, rec.actions())
	s.RunUntil(2 * time.Minute)
	if rec.joins != 50 || rec.leaves != 0 || !rec.stopped {
		t.Fatalf("rec = %+v", rec)
	}
}
