// Package core assembles the full WHISPER protocol stack of Fig 1 on
// one network endpoint: the NAT-resilient peer sampling service
// (Nylon), the Whisper communication layer (WCL) with its connection
// backlog and key sampling, and the private peer sampling service
// (PPSS) router managing group instances.
package core

import (
	"fmt"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/nat"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/ppss"
	"whisper/internal/pubsub"
	"whisper/internal/transport"
	"whisper/internal/wcl"
)

// Config selects which layers to run and how to parameterize them.
type Config struct {
	// Suite is the crypto suite layers that generate keys (PPSS group
	// keys) use. The zero value follows the node's identity-key suite,
	// which is what deployments want: one -suite flag governs the whole
	// stack.
	Suite crypt.SuiteID
	// Nylon configures the base PSS (always on).
	Nylon nylon.Config
	// WCL, when non-nil, attaches the communication layer (this forces
	// key sampling on at the Nylon level, which the WCL requires).
	WCL *wcl.Config
	// PPSS, when non-nil, attaches the private peer sampling router
	// (requires WCL; a default WCL config is implied if WCL is nil).
	PPSS *ppss.Config
	// PubSub, when non-nil, enables the topic pub/sub application layer
	// on top of private groups (requires PPSS; a default PPSS config is
	// implied if PPSS is nil). Endpoints attach per group through
	// Stack.PubSub and stay zero-behavior until the first Subscribe or
	// Publish.
	PubSub *pubsub.Config
	// Obs is the observability scope every layer registers its
	// instruments under (typically already carrying a node label). Nil
	// runs the stack unobserved at zero behavioral cost.
	Obs *obs.Scope
}

// Stack is the per-node protocol stack.
type Stack struct {
	Nylon *nylon.Node
	WCL   *wcl.WCL     // nil if not configured
	PPSS  *ppss.Router // nil if not configured

	pubsubCfg *pubsub.Config
	pubsubs   map[ppss.GroupID]*pubsub.PubSub
}

// NewStack builds and wires the stack on the given attachment point.
// The transport may be either substrate (emulated or real UDP). For
// NATted nodes (emulated substrate only) pass the device and a private
// address; for public nodes pass dev nil and a public address.
func NewStack(rt transport.Transport, ident *identity.Identity, typ nat.Type, addr transport.Endpoint, dev *nat.Device, cfg Config) (*Stack, error) {
	if cfg.Suite == crypt.SuiteRSA2048 {
		cfg.Suite = ident.Key.Suite()
	}
	if cfg.PubSub != nil && cfg.PPSS == nil {
		cfg.PPSS = &ppss.Config{}
	}
	if cfg.PPSS != nil && cfg.WCL == nil {
		cfg.WCL = &wcl.Config{}
	}
	if cfg.WCL != nil {
		cfg.Nylon.KeySampling = true
	}
	cfg.Nylon.Obs = cfg.Obs
	st := &Stack{Nylon: nylon.NewNode(rt, ident, typ, addr, dev, cfg.Nylon)}
	if cfg.WCL != nil {
		// Copy before mutating: callers (the simulator in particular)
		// share one sub-config across many stacks.
		wcfg := *cfg.WCL
		wcfg.Obs = cfg.Obs
		layer, err := wcl.New(st.Nylon, wcfg)
		if err != nil {
			return nil, fmt.Errorf("core: attaching WCL: %w", err)
		}
		st.WCL = layer
	}
	if cfg.PPSS != nil {
		pcfg := *cfg.PPSS
		pcfg.Obs = cfg.Obs
		if pcfg.Suite == crypt.SuiteRSA2048 {
			pcfg.Suite = cfg.Suite
		}
		st.PPSS = ppss.NewRouter(st.WCL, pcfg)
	}
	if cfg.PubSub != nil {
		pscfg := *cfg.PubSub
		if pscfg.Obs == nil {
			pscfg.Obs = cfg.Obs
		}
		st.pubsubCfg = &pscfg
	}
	return st, nil
}

// PubSub returns (creating on first use) the topic pub/sub endpoint
// for one of this node's group instances. It returns nil when the
// stack was built without a PubSub config — the application-level
// Subscribe/Publish API is then simply absent, and no pub/sub state
// exists anywhere in the stack.
func (s *Stack) PubSub(inst *ppss.Instance) *pubsub.PubSub {
	if s.pubsubCfg == nil || inst == nil {
		return nil
	}
	if s.pubsubs == nil {
		s.pubsubs = make(map[ppss.GroupID]*pubsub.PubSub)
	}
	if p, ok := s.pubsubs[inst.Group()]; ok {
		return p
	}
	p := pubsub.New(inst, *s.pubsubCfg)
	s.pubsubs[inst.Group()] = p
	return p
}

// Start begins gossip on the base PSS (upper layers start with group
// membership).
func (s *Stack) Start() { s.Nylon.Start() }

// Stop shuts the whole stack down (crash-stop semantics).
func (s *Stack) Stop() {
	if s.PPSS != nil {
		s.PPSS.Close()
	}
	s.Nylon.Stop()
}

// ID returns the node identifier.
func (s *Stack) ID() identity.NodeID { return s.Nylon.ID() }
