package core

import (
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/nat"
	"whisper/internal/netem"
	"whisper/internal/ppss"
	"whisper/internal/simnet"
	"whisper/internal/wcl"
)

func testEnv() (*simnet.Sim, *netem.Network) {
	s := simnet.New(1)
	return s, netem.New(s, netem.Fixed{})
}

func TestStackPSSOnly(t *testing.T) {
	_, nw := testEnv()
	ident := identity.TestPool(4).Identity(1)
	st, err := NewStack(nw, ident, nat.None, netem.Endpoint{IP: 5, Port: 1}, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.WCL != nil || st.PPSS != nil {
		t.Fatal("upper layers attached without being configured")
	}
	if st.ID() != 1 {
		t.Fatalf("ID = %v", st.ID())
	}
	st.Start()
	st.Stop()
	if !st.Nylon.Stopped() {
		t.Fatal("Stop did not stop the node")
	}
}

func TestStackWCLImpliesKeySampling(t *testing.T) {
	_, nw := testEnv()
	ident := identity.TestPool(4).Identity(2)
	st, err := NewStack(nw, ident, nat.None, netem.Endpoint{IP: 6, Port: 1}, nil,
		Config{WCL: &wcl.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if st.WCL == nil {
		t.Fatal("WCL not attached")
	}
	if !st.Nylon.Config().KeySampling {
		t.Fatal("key sampling not forced on for WCL")
	}
}

func TestStackPPSSImpliesWCL(t *testing.T) {
	_, nw := testEnv()
	ident := identity.TestPool(4).Identity(3)
	st, err := NewStack(nw, ident, nat.None, netem.Endpoint{IP: 7, Port: 1}, nil,
		Config{PPSS: &ppss.Config{KeyBlobSize: 128}})
	if err != nil {
		t.Fatal(err)
	}
	if st.WCL == nil || st.PPSS == nil {
		t.Fatal("PPSS config must imply the WCL layer")
	}
	// Stopping also closes group instances.
	if _, err := st.PPSS.CreateGroup("g"); err != nil {
		t.Fatal(err)
	}
	st.Stop()
	if len(st.PPSS.Instances()) != 0 {
		t.Fatal("Stop left group instances running")
	}
}

func TestStackNATtedNode(t *testing.T) {
	sim, nw := testEnv()
	ident := identity.TestPool(4).Identity(4)
	dev := nat.NewDevice(nw, nat.FullCone, 8, 0)
	st, err := NewStack(nw, ident, nat.FullCone,
		netem.Endpoint{IP: netem.PrivateBase + 1, Port: 1}, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Nylon.Public() {
		t.Fatal("NATted node claims to be public")
	}
	st.Start()
	sim.RunUntil(time.Minute)
	st.Stop()
}
