package core

import (
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/nat"
	"whisper/internal/netem"
	"whisper/internal/ppss"
	"whisper/internal/simnet"
	simtr "whisper/internal/transport/simnet"
	"whisper/internal/transport/udp"
	"whisper/internal/wcl"
)

func testEnv() (*simnet.Sim, *netem.Network, *simtr.Transport) {
	s := simnet.New(1)
	nw := netem.New(s, netem.Fixed{})
	return s, nw, simtr.New(s, nw)
}

func TestStackPSSOnly(t *testing.T) {
	_, _, rt := testEnv()
	ident := identity.TestPool(4).Identity(1)
	st, err := NewStack(rt, ident, nat.None, netem.Endpoint{IP: 5, Port: 1}, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.WCL != nil || st.PPSS != nil {
		t.Fatal("upper layers attached without being configured")
	}
	if st.ID() != 1 {
		t.Fatalf("ID = %v", st.ID())
	}
	st.Start()
	st.Stop()
	if !st.Nylon.Stopped() {
		t.Fatal("Stop did not stop the node")
	}
}

func TestStackWCLImpliesKeySampling(t *testing.T) {
	_, _, rt := testEnv()
	ident := identity.TestPool(4).Identity(2)
	st, err := NewStack(rt, ident, nat.None, netem.Endpoint{IP: 6, Port: 1}, nil,
		Config{WCL: &wcl.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if st.WCL == nil {
		t.Fatal("WCL not attached")
	}
	if !st.Nylon.Config().KeySampling {
		t.Fatal("key sampling not forced on for WCL")
	}
}

func TestStackPPSSImpliesWCL(t *testing.T) {
	_, _, rt := testEnv()
	ident := identity.TestPool(4).Identity(3)
	st, err := NewStack(rt, ident, nat.None, netem.Endpoint{IP: 7, Port: 1}, nil,
		Config{PPSS: &ppss.Config{KeyBlobSize: 128}})
	if err != nil {
		t.Fatal(err)
	}
	if st.WCL == nil || st.PPSS == nil {
		t.Fatal("PPSS config must imply the WCL layer")
	}
	// Stopping also closes group instances.
	if _, err := st.PPSS.CreateGroup("g"); err != nil {
		t.Fatal(err)
	}
	st.Stop()
	if len(st.PPSS.Instances()) != 0 {
		t.Fatal("Stop left group instances running")
	}
}

func TestStackNATtedNode(t *testing.T) {
	sim, nw, rt := testEnv()
	ident := identity.TestPool(4).Identity(4)
	dev := nat.NewDevice(nw, nat.FullCone, 8, 0)
	st, err := NewStack(rt, ident, nat.FullCone,
		netem.Endpoint{IP: netem.PrivateBase + 1, Port: 1}, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Nylon.Public() {
		t.Fatal("NATted node claims to be public")
	}
	st.Start()
	sim.RunUntil(time.Minute)
	st.Stop()
}

// The config-validation rules are transport-independent; run them over
// the real-UDP transport too, proving stack assembly is not bound to
// the emulator.

func testUDP(t *testing.T) *udp.Transport {
	t.Helper()
	tr, err := udp.New("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

func TestStackPPSSImpliesWCLOverUDP(t *testing.T) {
	tr := testUDP(t)
	ident := identity.TestPool(4).Identity(3)
	st, err := NewStack(tr, ident, nat.None, netem.Endpoint{IP: 7, Port: 1}, nil,
		Config{PPSS: &ppss.Config{KeyBlobSize: 128}})
	if err != nil {
		t.Fatal(err)
	}
	if st.WCL == nil || st.PPSS == nil {
		t.Fatal("PPSS config must imply the WCL layer")
	}
	if !st.Nylon.Config().KeySampling {
		t.Fatal("key sampling not forced on under the UDP transport")
	}
	st.Stop()
}

func TestStackWCLImpliesKeySamplingOverUDP(t *testing.T) {
	tr := testUDP(t)
	ident := identity.TestPool(4).Identity(2)
	st, err := NewStack(tr, ident, nat.None, netem.Endpoint{IP: 6, Port: 1}, nil,
		Config{WCL: &wcl.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if st.WCL == nil {
		t.Fatal("WCL not attached")
	}
	if !st.Nylon.Config().KeySampling {
		t.Fatal("key sampling not forced on for WCL")
	}
	st.Stop()
}

func TestStackPSSOnlyOverUDP(t *testing.T) {
	tr := testUDP(t)
	ident := identity.TestPool(4).Identity(1)
	st, err := NewStack(tr, ident, nat.None, netem.Endpoint{IP: 5, Port: 1}, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.WCL != nil || st.PPSS != nil {
		t.Fatal("upper layers attached without being configured")
	}
	tr.Start()
	tr.Do(st.Start)
	tr.Do(st.Stop)
	if !st.Nylon.Stopped() {
		t.Fatal("Stop did not stop the node")
	}
}
