package crypt

import "testing"

// TestSymAllocs pins the allocation behavior of symmetric seal/open
// with a cached AEAD: one allocation per operation (the output buffer).
// Rebuilding the AES cipher schedule and GCM tables per call — the
// pre-cache behavior — costs several additional allocations and shows
// up immediately here.
func TestSymAllocs(t *testing.T) {
	key, err := NewSymKey()
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 512)
	ct, err := SealSym(nil, key, pt) // warm the AEAD cache
	if err != nil {
		t.Fatal(err)
	}
	if sealAllocs := testing.AllocsPerRun(200, func() {
		if _, err := SealSym(nil, key, pt); err != nil {
			t.Fatal(err)
		}
	}); sealAllocs > 2 {
		t.Errorf("SealSym allocates %.1f times per op, want <= 2", sealAllocs)
	}
	if openAllocs := testing.AllocsPerRun(200, func() {
		if _, err := OpenSym(nil, key, ct); err != nil {
			t.Fatal(err)
		}
	}); openAllocs > 2 {
		t.Errorf("OpenSym allocates %.1f times per op, want <= 2", openAllocs)
	}
}

// TestKeyCacheAllocs pins the memoized key plumbing: marshaling and
// fingerprinting a key already seen must not re-derive the DER.
func TestKeyCacheAllocs(t *testing.T) {
	k := keys(1)[0]
	pub := k.Public()
	MarshalPublicKey(pub)
	KeyFingerprint(pub)
	if allocs := testing.AllocsPerRun(100, func() {
		MarshalPublicKey(pub)
		KeyFingerprint(pub)
	}); allocs > 0 {
		t.Errorf("cached marshal+fingerprint allocates %.1f times per op, want 0", allocs)
	}
}

// TestUnmarshalInterning verifies that parsing the same DER twice
// returns one shared key instance (which is what makes the
// pointer-keyed fingerprint cache effective on the receive path).
func TestUnmarshalInterning(t *testing.T) {
	k := keys(1)[0]
	der := MarshalPublicKey(k.Public())
	a, err := UnmarshalPublicKey(der)
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnmarshalPublicKey(der)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical DER parsed to distinct instances")
	}
}
