package crypt

import (
	"crypto/cipher"
	"crypto/sha256"
	"sync"
)

// The caches below exist because the same few objects recur enormously
// often in a run: content keys are reused across every message of a
// group stream (each SealSym/OpenSym used to rebuild the AES cipher
// schedule and GCM tables from scratch), and the node population shares
// a small set of RSA keys that are re-marshaled, re-parsed and
// re-fingerprinted on every gossip exchange. All caches are guarded by
// mutexes so the parallel experiment harness can run simulations
// concurrently, and all are bounded: on overflow a cache is dropped
// wholesale, which is O(1), amortizes to nothing for the steady-state
// working sets seen in practice, and keeps hostile or degenerate
// workloads from growing memory without limit.
const (
	aeadCacheMax = 1 << 12
	keyCacheMax  = 1 << 12
)

var aeadCache = struct {
	sync.Mutex
	m map[[SymKeySize]byte]cipher.AEAD
}{m: make(map[[SymKeySize]byte]cipher.AEAD, 64)}

// cachedGCM returns a memoized AEAD for a (reused) symmetric key.
// One-shot keys — the fresh key sealed into every hybrid onion layer —
// must not go through here; they would only churn the cache (see Seal).
// Non-standard key sizes bypass the cache.
func cachedGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != SymKeySize {
		return newGCM(key)
	}
	var k [SymKeySize]byte
	copy(k[:], key)
	aeadCache.Lock()
	gcm := aeadCache.m[k]
	aeadCache.Unlock()
	if gcm != nil {
		return gcm, nil
	}
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	aeadCache.Lock()
	if len(aeadCache.m) >= aeadCacheMax {
		aeadCache.m = make(map[[SymKeySize]byte]cipher.AEAD, 64)
	}
	aeadCache.m[k] = gcm
	aeadCache.Unlock()
	return gcm, nil
}

// derCache memoizes MarshalPublicKey per key instance (keys are the
// suites' pointer wrapper types, so interface equality is pointer
// equality).
var derCache = struct {
	sync.Mutex
	m map[PublicKey][]byte
}{m: make(map[PublicKey][]byte, 64)}

// parseCache interns UnmarshalPublicKey results by blob bytes, so that
// repeated parses of the same key (every received gossip descriptor)
// return one shared instance instead of allocating a new one — which in
// turn makes the pointer-keyed derCache and fpCache effective on the
// receive path.
var parseCache = struct {
	sync.Mutex
	m map[string]PublicKey
}{m: make(map[string]PublicKey, 64)}

// fpCache memoizes KeyFingerprint per key instance.
var fpCache = struct {
	sync.Mutex
	m map[PublicKey][8]byte
}{m: make(map[PublicKey][8]byte, 64)}

// sha256Pool recycles hash states for OAEP; rsa.EncryptOAEP and
// DecryptOAEP reset the hash before use, so recycled state never leaks
// between operations.
var sha256Pool = sync.Pool{New: func() any { return sha256.New() }}
