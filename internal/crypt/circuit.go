package crypt

import (
	"crypto/hkdf"
	"crypto/rand"
	"crypto/sha256"
	"fmt"

	"whisper/internal/wire"
)

// Circuit cryptography: the key schedule and cell sealing behind the
// WCL circuit layer. A circuit amortizes the onion cost of §III-A over
// a stream of messages: one setup onion (RSA per hop, exactly like a
// one-shot send) distributes a per-hop symmetric key derived from a
// fresh session secret, after which every data cell costs one AEAD
// seal/open per hop and zero RSA operations.

// CircuitSecretSize is the session secret length in bytes. The secret
// is drawn fresh per circuit and never leaves the source; hops only
// ever see their own derived key.
const CircuitSecretSize = 32

// NewCircuitSecret draws a fresh circuit session secret.
func NewCircuitSecret() ([]byte, error) {
	s := make([]byte, CircuitSecretSize)
	if _, err := rand.Read(s); err != nil {
		return nil, fmt.Errorf("crypt: drawing circuit secret: %w", err)
	}
	return s, nil
}

// DeriveCircuitKeys expands the session secret into one AES-256 key per
// hop with HKDF-Expand (the secret is uniformly random, so the extract
// step is unnecessary). The per-hop info string domain-separates the
// keys: compromising hop i's key reveals nothing about any other hop's.
func DeriveCircuitKeys(secret []byte, hops int) ([][]byte, error) {
	if len(secret) != CircuitSecretSize {
		return nil, fmt.Errorf("crypt: circuit secret must be %d bytes, got %d", CircuitSecretSize, len(secret))
	}
	if hops <= 0 {
		return nil, fmt.Errorf("crypt: circuit needs at least one hop")
	}
	keys := make([][]byte, hops)
	for i := range keys {
		k, err := hkdf.Expand(sha256.New, secret, fmt.Sprintf("whisper/circuit/hop/%d", i), SymKeySize)
		if err != nil {
			return nil, fmt.Errorf("crypt: deriving circuit key %d: %w", i, err)
		}
		keys[i] = k
	}
	return keys, nil
}

// CircuitHop describes one node on a circuit setup path: its public
// key, the addressing blob the previous hop needs to forward to it
// (same convention as Hop), and the symmetric key the setup onion
// delivers to it.
type CircuitHop struct {
	Pub  PublicKey
	Addr []byte
	Key  []byte
}

// BuildCircuitOnion constructs the circuit setup onion. It is the
// BuildOnion layering with one extra field per layer: hop i's layer
// decrypts to (key_i, address of hop i+1, remaining onion), and the
// destination's layer to (key_n, ⊥, final). As with one-shot onions a
// hop learns only its successor — and additionally its own cell key,
// never a neighbour's.
func BuildCircuitOnion(m *CPUMeter, hops []CircuitHop, final []byte) ([]byte, error) {
	if len(hops) == 0 {
		return nil, fmt.Errorf("crypt: empty circuit path")
	}
	last := hops[len(hops)-1]
	seal := newLayerSealer(m)
	w := wire.NewWriter(256 + len(final))
	w.Bytes16(last.Key)
	w.Bytes16(nil) // ⊥: this hop is the exit
	w.Bytes32(final)
	blob, err := seal(last.Pub, w.Bytes())
	if err != nil {
		return nil, fmt.Errorf("crypt: sealing circuit exit layer: %w", err)
	}
	for i := len(hops) - 2; i >= 0; i-- {
		w.Reset()
		w.Bytes16(hops[i].Key)
		w.Bytes16(hops[i+1].Addr)
		w.Bytes32(blob)
		blob, err = seal(hops[i].Pub, w.Bytes())
		if err != nil {
			return nil, fmt.Errorf("crypt: sealing circuit layer %d: %w", i, err)
		}
	}
	return blob, nil
}

// PeelCircuit removes one circuit setup layer with the hop's private
// key, returning the hop's cell key alongside the usual Peel results.
func PeelCircuit(m *CPUMeter, priv PrivateKey, onion []byte) (key, next, inner []byte, exit bool, err error) {
	pt, err := Open(m, priv, onion)
	if err != nil {
		return nil, nil, nil, false, err
	}
	r := wire.NewReader(pt)
	key = r.Bytes16()
	next = r.Bytes16()
	inner = r.Bytes32()
	if err := r.Close(); err != nil {
		return nil, nil, nil, false, fmt.Errorf("crypt: malformed circuit layer: %w", err)
	}
	if len(key) != SymKeySize {
		return nil, nil, nil, false, fmt.Errorf("crypt: circuit layer key is %d bytes, want %d", len(key), SymKeySize)
	}
	return key, next, inner, len(next) == 0, nil
}

// SealCell seals a data cell for a circuit: the payload is wrapped in
// one AEAD layer per hop, innermost for the exit (keys[len-1]),
// outermost for the first mix (keys[0]). Each hop opens exactly one
// layer with OpenSym under its own key. Hop keys recur across the
// cells of a circuit, so the per-key AEAD cache makes the steady state
// allocation-light and — the point of circuits — entirely RSA-free.
func SealCell(m *CPUMeter, keys [][]byte, payload []byte) ([]byte, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("crypt: sealing cell for empty circuit")
	}
	cell := payload
	for i := len(keys) - 1; i >= 0; i-- {
		var err error
		cell, err = SealSym(m, keys[i], cell)
		if err != nil {
			return nil, fmt.Errorf("crypt: sealing cell layer %d: %w", i, err)
		}
	}
	return cell, nil
}
