package crypt

import (
	"bytes"
	"testing"
)

func TestDeriveCircuitKeysDeterministicAndDistinct(t *testing.T) {
	secret, err := NewCircuitSecret()
	if err != nil {
		t.Fatal(err)
	}
	ks1, err := DeriveCircuitKeys(secret, 4)
	if err != nil {
		t.Fatal(err)
	}
	ks2, err := DeriveCircuitKeys(secret, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range ks1 {
		if len(ks1[i]) != SymKeySize {
			t.Fatalf("key %d is %d bytes", i, len(ks1[i]))
		}
		if !bytes.Equal(ks1[i], ks2[i]) {
			t.Fatalf("key %d not deterministic", i)
		}
		if seen[string(ks1[i])] {
			t.Fatalf("key %d repeats an earlier hop key", i)
		}
		seen[string(ks1[i])] = true
	}
	other, _ := NewCircuitSecret()
	ks3, err := DeriveCircuitKeys(other, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ks1[0], ks3[0]) {
		t.Fatal("different secrets derived the same key")
	}
	if _, err := DeriveCircuitKeys(secret[:16], 2); err == nil {
		t.Fatal("short secret accepted")
	}
	if _, err := DeriveCircuitKeys(secret, 0); err == nil {
		t.Fatal("zero hops accepted")
	}
}

func TestCircuitOnionRoundTrip(t *testing.T) {
	privs := keys(3)
	secret, _ := NewCircuitSecret()
	hopKeys, err := DeriveCircuitKeys(secret, len(privs))
	if err != nil {
		t.Fatal(err)
	}
	hops := make([]CircuitHop, len(privs))
	for i, p := range privs {
		hops[i] = CircuitHop{Pub: p.Public(), Addr: []byte{byte(i)}, Key: hopKeys[i]}
	}
	final := []byte("circuit-established")
	var m CPUMeter
	onion, err := BuildCircuitOnion(&m, hops, final)
	if err != nil {
		t.Fatal(err)
	}
	if m.RSAEncs != uint64(len(privs)) {
		t.Fatalf("setup cost %d RSA encryptions, want %d", m.RSAEncs, len(privs))
	}
	blob := onion
	for i, p := range privs {
		key, next, inner, exit, err := PeelCircuit(&m, p, blob)
		if err != nil {
			t.Fatalf("peeling layer %d: %v", i, err)
		}
		if !bytes.Equal(key, hopKeys[i]) {
			t.Fatalf("layer %d recovered wrong hop key", i)
		}
		last := i == len(privs)-1
		if exit != last {
			t.Fatalf("layer %d exit=%v, want %v", i, exit, last)
		}
		if last {
			if !bytes.Equal(inner, final) {
				t.Fatalf("exit payload = %q, want %q", inner, final)
			}
		} else {
			if !bytes.Equal(next, []byte{byte(i + 1)}) {
				t.Fatalf("layer %d next addr = %v", i, next)
			}
			blob = inner
		}
	}
	// A non-participant cannot peel any layer.
	stranger := keys(4)[3]
	if _, _, _, _, err := PeelCircuit(nil, stranger, onion); err == nil {
		t.Fatal("stranger peeled a circuit layer")
	}
}

// TestCellRoundTripZeroRSA pins the whole point of circuits: once the
// hop keys are distributed, sealing and opening data cells performs no
// RSA operations at all — only one AEAD per hop.
func TestCellRoundTripZeroRSA(t *testing.T) {
	secret, _ := NewCircuitSecret()
	hopKeys, err := DeriveCircuitKeys(secret, 3)
	if err != nil {
		t.Fatal(err)
	}
	var m CPUMeter
	const cells = 100
	for c := 0; c < cells; c++ {
		payload := bytes.Repeat([]byte{byte(c)}, 64)
		cell, err := SealCell(&m, hopKeys, payload)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(cell, payload[:8]) {
			t.Fatal("payload visible in sealed cell")
		}
		for i := range hopKeys {
			cell, err = OpenSym(&m, hopKeys[i], cell)
			if err != nil {
				t.Fatalf("cell %d, hop %d: %v", c, i, err)
			}
		}
		if !bytes.Equal(cell, payload) {
			t.Fatalf("cell %d round trip mismatch", c)
		}
	}
	if m.RSAEncs != 0 || m.RSADecs != 0 || m.Signs != 0 || m.Verifys != 0 || m.RSA != 0 {
		t.Fatalf("steady-state cell path used RSA: %+v", m)
	}
	if m.AESOps != cells*2*3 {
		t.Fatalf("AESOps = %d, want %d", m.AESOps, cells*2*3)
	}
}

func TestCellWrongHopOrderFails(t *testing.T) {
	secret, _ := NewCircuitSecret()
	hopKeys, _ := DeriveCircuitKeys(secret, 3)
	cell, err := SealCell(nil, hopKeys, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// Opening with the exit key first (outermost layer belongs to the
	// first mix) must fail uniformly.
	if _, err := OpenSym(nil, hopKeys[2], cell); err == nil {
		t.Fatal("out-of-order open succeeded")
	}
	if _, err := SealCell(nil, nil, []byte("payload")); err == nil {
		t.Fatal("empty circuit accepted")
	}
}

// BenchmarkSealCell pins the steady-state source cost of a 3-hop cell:
// purely symmetric work, a handful of allocations (one ciphertext per
// layer), zero RSA.
func BenchmarkSealCell(b *testing.B) {
	secret, _ := NewCircuitSecret()
	hopKeys, _ := DeriveCircuitKeys(secret, 3)
	payload := bytes.Repeat([]byte("x"), 256)
	var m CPUMeter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SealCell(&m, hopKeys, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if m.RSAEncs != 0 || m.RSADecs != 0 {
		b.Fatalf("cell sealing used RSA: %+v", m)
	}
}
