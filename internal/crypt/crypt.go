// Package crypt provides the cryptographic operations of WHISPER: the
// hybrid sealing used for onion layers, the symmetric content
// encryption under the per-message key k, onion construction and
// peeling (§III-A), and signatures for passports and accreditations
// (§IV-A).
//
// The asymmetric primitives are pluggable (see Suite): the default
// rsa2048 suite reproduces the paper's RSA-OAEP + AES-GCM and PKCS#1
// v1.5 exactly, while the ecc suite replaces them with X25519 ECIES
// and Ed25519 for an order-of-magnitude cheaper hot path.
//
// Every operation optionally charges its wall-clock cost to a CPUMeter,
// which is how the harness reproduces Table II (CPU time per PPSS cycle
// split into symmetric and per-suite asymmetric work).
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"time"
)

// SymKeySize is the AES key size in bytes (AES-256).
const SymKeySize = 32

var (
	// ErrDecrypt is returned when a ciphertext fails to open; callers
	// must not learn more than that (uniform decryption failure).
	ErrDecrypt = errors.New("crypt: decryption failed")
	// ErrBadSignature is returned on signature verification failure.
	ErrBadSignature = errors.New("crypt: bad signature")
)

// CPUMeter accumulates processor time spent in cryptographic
// operations, split the way Table II reports it: symmetric (AES) work
// versus asymmetric work, the latter attributed per suite (RSA for
// rsa2048, ECC for ecc).
type CPUMeter struct {
	AES time.Duration
	RSA time.Duration
	ECC time.Duration

	AESOps  uint64
	RSAEncs uint64
	RSADecs uint64
	Signs   uint64
	Verifys uint64

	ECCEncs    uint64
	ECCDecs    uint64
	ECCSigns   uint64
	ECCVerifys uint64
}

// Add merges other into m.
func (m *CPUMeter) Add(other CPUMeter) {
	m.AES += other.AES
	m.RSA += other.RSA
	m.ECC += other.ECC
	m.AESOps += other.AESOps
	m.RSAEncs += other.RSAEncs
	m.RSADecs += other.RSADecs
	m.Signs += other.Signs
	m.Verifys += other.Verifys
	m.ECCEncs += other.ECCEncs
	m.ECCDecs += other.ECCDecs
	m.ECCSigns += other.ECCSigns
	m.ECCVerifys += other.ECCVerifys
}

// Total returns the combined symmetric and asymmetric processor time.
func (m *CPUMeter) Total() time.Duration { return m.AES + m.RSA + m.ECC }

// Asym returns the asymmetric processor time across all suites.
func (m *CPUMeter) Asym() time.Duration { return m.RSA + m.ECC }

// Reset zeroes the meter.
func (m *CPUMeter) Reset() { *m = CPUMeter{} }

func (m *CPUMeter) chargeAES(start time.Time) {
	if m == nil {
		return
	}
	m.AES += time.Since(start)
	m.AESOps++
}

// NewSymKey draws a fresh AES-256 key.
func NewSymKey() ([]byte, error) {
	k := make([]byte, SymKeySize)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("crypt: drawing key: %w", err)
	}
	return k, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypt: %w", err)
	}
	return cipher.NewGCM(block)
}

// SealSym encrypts plaintext under the symmetric key (nonce || AES-GCM
// ciphertext). This implements the content encryption with the random
// key k of §III-A. Content keys recur across the messages of a stream,
// so the AEAD instance is cached per key.
func SealSym(m *CPUMeter, key, plaintext []byte) ([]byte, error) {
	defer m.chargeAES(time.Now())
	gcm, err := cachedGCM(key)
	if err != nil {
		return nil, err
	}
	return sealWith(gcm, plaintext)
}

// sealWith seals plaintext with a single output allocation sized for
// nonce, ciphertext and tag.
func sealWith(gcm cipher.AEAD, plaintext []byte) ([]byte, error) {
	n := gcm.NonceSize()
	buf := make([]byte, n, n+len(plaintext)+gcm.Overhead())
	if _, err := rand.Read(buf); err != nil {
		return nil, fmt.Errorf("crypt: nonce: %w", err)
	}
	return gcm.Seal(buf, buf, plaintext, nil), nil
}

// OpenSym decrypts a SealSym ciphertext.
func OpenSym(m *CPUMeter, key, ct []byte) ([]byte, error) {
	defer m.chargeAES(time.Now())
	gcm, err := cachedGCM(key)
	if err != nil {
		return nil, err
	}
	return openWith(gcm, ct)
}

func openWith(gcm cipher.AEAD, ct []byte) ([]byte, error) {
	if len(ct) < gcm.NonceSize() {
		return nil, ErrDecrypt
	}
	pt, err := gcm.Open(nil, ct[:gcm.NonceSize()], ct[gcm.NonceSize():], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// fingerprintBlob hashes a marshaled public key down to the 8-byte
// fingerprint format.
func fingerprintBlob(blob []byte) (fp [8]byte) {
	h := sha256.Sum256(blob)
	copy(fp[:], h[:8])
	return fp
}
