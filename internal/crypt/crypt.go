// Package crypt provides the cryptographic operations of WHISPER: the
// hybrid RSA-OAEP + AES-GCM sealing used for onion layers, the
// symmetric content encryption under the per-message key k, onion
// construction and peeling (§III-A), and PKCS#1 v1.5 signatures for
// passports and accreditations (§IV-A).
//
// Every operation optionally charges its wall-clock cost to a CPUMeter,
// which is how the harness reproduces Table II (CPU time per PPSS cycle
// split into AES and RSA work).
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"hash"
	"time"

	"whisper/internal/wire"
)

// SymKeySize is the AES key size in bytes (AES-256).
const SymKeySize = 32

var (
	// ErrDecrypt is returned when a ciphertext fails to open; callers
	// must not learn more than that (uniform decryption failure).
	ErrDecrypt = errors.New("crypt: decryption failed")
	// ErrBadSignature is returned on signature verification failure.
	ErrBadSignature = errors.New("crypt: bad signature")
)

// CPUMeter accumulates processor time spent in cryptographic
// operations, split the way Table II reports it.
type CPUMeter struct {
	AES     time.Duration
	RSA     time.Duration
	AESOps  uint64
	RSAEncs uint64
	RSADecs uint64
	Signs   uint64
	Verifys uint64
}

// Add merges other into m.
func (m *CPUMeter) Add(other CPUMeter) {
	m.AES += other.AES
	m.RSA += other.RSA
	m.AESOps += other.AESOps
	m.RSAEncs += other.RSAEncs
	m.RSADecs += other.RSADecs
	m.Signs += other.Signs
	m.Verifys += other.Verifys
}

// Total returns the combined AES+RSA processor time.
func (m *CPUMeter) Total() time.Duration { return m.AES + m.RSA }

// Reset zeroes the meter.
func (m *CPUMeter) Reset() { *m = CPUMeter{} }

func (m *CPUMeter) chargeAES(start time.Time) {
	if m == nil {
		return
	}
	m.AES += time.Since(start)
	m.AESOps++
}

// NewSymKey draws a fresh AES-256 key.
func NewSymKey() ([]byte, error) {
	k := make([]byte, SymKeySize)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("crypt: drawing key: %w", err)
	}
	return k, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypt: %w", err)
	}
	return cipher.NewGCM(block)
}

// SealSym encrypts plaintext under the symmetric key (nonce || AES-GCM
// ciphertext). This implements the content encryption with the random
// key k of §III-A. Content keys recur across the messages of a stream,
// so the AEAD instance is cached per key.
func SealSym(m *CPUMeter, key, plaintext []byte) ([]byte, error) {
	defer m.chargeAES(time.Now())
	gcm, err := cachedGCM(key)
	if err != nil {
		return nil, err
	}
	return sealWith(gcm, plaintext)
}

// sealWith seals plaintext with a single output allocation sized for
// nonce, ciphertext and tag.
func sealWith(gcm cipher.AEAD, plaintext []byte) ([]byte, error) {
	n := gcm.NonceSize()
	buf := make([]byte, n, n+len(plaintext)+gcm.Overhead())
	if _, err := rand.Read(buf); err != nil {
		return nil, fmt.Errorf("crypt: nonce: %w", err)
	}
	return gcm.Seal(buf, buf, plaintext, nil), nil
}

// OpenSym decrypts a SealSym ciphertext.
func OpenSym(m *CPUMeter, key, ct []byte) ([]byte, error) {
	defer m.chargeAES(time.Now())
	gcm, err := cachedGCM(key)
	if err != nil {
		return nil, err
	}
	return openWith(gcm, ct)
}

func openWith(gcm cipher.AEAD, ct []byte) ([]byte, error) {
	if len(ct) < gcm.NonceSize() {
		return nil, ErrDecrypt
	}
	pt, err := gcm.Open(nil, ct[:gcm.NonceSize()], ct[gcm.NonceSize():], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// Seal hybrid-encrypts plaintext to pub: an RSA-OAEP-encrypted fresh
// AES key followed by the AES-GCM ciphertext. This is the per-layer
// encryption of the onion path.
func Seal(m *CPUMeter, pub *rsa.PublicKey, plaintext []byte) ([]byte, error) {
	key, err := NewSymKey()
	if err != nil {
		return nil, err
	}
	h := sha256Pool.Get().(hash.Hash)
	start := time.Now()
	wrapped, err := rsa.EncryptOAEP(h, rand.Reader, pub, key, nil)
	sha256Pool.Put(h)
	if m != nil {
		m.RSA += time.Since(start)
		m.RSAEncs++
	}
	if err != nil {
		return nil, fmt.Errorf("crypt: OAEP encrypt: %w", err)
	}
	// The key is fresh and sealed exactly once: bypass the AEAD cache.
	aesStart := time.Now()
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	body, err := sealWith(gcm, plaintext)
	m.chargeAES(aesStart)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(2 + len(wrapped) + len(body))
	w.Bytes16(wrapped)
	w.Raw(body)
	return w.Bytes(), nil
}

// Open decrypts a Seal ciphertext with the private key.
func Open(m *CPUMeter, priv *rsa.PrivateKey, ct []byte) ([]byte, error) {
	r := wire.NewReader(ct)
	wrapped := r.Bytes16()
	body := r.Rest()
	if r.Err() != nil || len(wrapped) == 0 {
		return nil, ErrDecrypt
	}
	h := sha256Pool.Get().(hash.Hash)
	start := time.Now()
	key, err := rsa.DecryptOAEP(h, rand.Reader, priv, wrapped, nil)
	sha256Pool.Put(h)
	if m != nil {
		m.RSA += time.Since(start)
		m.RSADecs++
	}
	if err != nil {
		return nil, ErrDecrypt
	}
	// One-shot layer key: bypass the AEAD cache (see Seal).
	aesStart := time.Now()
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	pt, err := openWith(gcm, body)
	m.chargeAES(aesStart)
	return pt, err
}

// Sign produces a PKCS#1 v1.5 signature over SHA-256(msg).
func Sign(m *CPUMeter, priv *rsa.PrivateKey, msg []byte) ([]byte, error) {
	start := time.Now()
	defer func() {
		if m != nil {
			m.RSA += time.Since(start)
			m.Signs++
		}
	}()
	h := sha256.Sum256(msg)
	sig, err := rsa.SignPKCS1v15(rand.Reader, priv, 0, h[:])
	if err != nil {
		return nil, fmt.Errorf("crypt: sign: %w", err)
	}
	return sig, nil
}

// Verify checks a Sign signature.
func Verify(m *CPUMeter, pub *rsa.PublicKey, msg, sig []byte) error {
	start := time.Now()
	defer func() {
		if m != nil {
			m.RSA += time.Since(start)
			m.Verifys++
		}
	}()
	h := sha256.Sum256(msg)
	if rsa.VerifyPKCS1v15(pub, 0, h[:], sig) != nil {
		return ErrBadSignature
	}
	return nil
}

// MarshalPublicKey serializes a public key to PKIX DER. Results are
// memoized per key instance; the returned slice is shared and must be
// treated as read-only.
func MarshalPublicKey(pub *rsa.PublicKey) []byte {
	derCache.Lock()
	der, ok := derCache.m[pub]
	derCache.Unlock()
	if ok {
		return der
	}
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		// Only possible for malformed in-memory keys: programmer error.
		panic(fmt.Sprintf("crypt: marshaling public key: %v", err))
	}
	derCache.Lock()
	if len(derCache.m) >= keyCacheMax {
		derCache.m = make(map[*rsa.PublicKey][]byte, 64)
	}
	derCache.m[pub] = der
	derCache.Unlock()
	return der
}

// UnmarshalPublicKey parses a PKIX DER RSA public key. Identical DER
// inputs return one shared, interned key instance; callers must not
// modify it.
func UnmarshalPublicKey(der []byte) (*rsa.PublicKey, error) {
	parseCache.Lock()
	pub, ok := parseCache.m[string(der)]
	parseCache.Unlock()
	if ok {
		return pub, nil
	}
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("crypt: parsing public key: %w", err)
	}
	pub, ok = k.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("crypt: not an RSA public key: %T", k)
	}
	parseCache.Lock()
	if len(parseCache.m) >= keyCacheMax {
		parseCache.m = make(map[string]*rsa.PublicKey, 64)
	}
	parseCache.m[string(der)] = pub
	parseCache.Unlock()
	return pub, nil
}

// KeyFingerprint returns a short stable digest of a public key, used as
// a map key and in logs. Fingerprints are memoized per key instance
// (the old implementation re-marshaled the key to PKIX DER and hashed
// it on every call).
func KeyFingerprint(pub *rsa.PublicKey) [8]byte {
	fpCache.Lock()
	fp, ok := fpCache.m[pub]
	fpCache.Unlock()
	if ok {
		return fp
	}
	h := sha256.Sum256(MarshalPublicKey(pub))
	copy(fp[:], h[:8])
	fpCache.Lock()
	if len(fpCache.m) >= keyCacheMax {
		fpCache.m = make(map[*rsa.PublicKey][8]byte, 64)
	}
	fpCache.m[pub] = fp
	fpCache.Unlock()
	return fp
}
