package crypt

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymRoundTrip(t *testing.T) {
	key, err := NewSymKey()
	if err != nil {
		t.Fatal(err)
	}
	var m CPUMeter
	ct, err := SealSym(&m, key, []byte("attack at dawn"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, []byte("attack")) {
		t.Fatal("plaintext visible in ciphertext")
	}
	pt, err := OpenSym(&m, key, ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "attack at dawn" {
		t.Fatalf("round trip = %q", pt)
	}
	if m.AESOps != 2 || m.AES <= 0 {
		t.Fatalf("AES metering: %+v", m)
	}
}

func TestSymWrongKeyFails(t *testing.T) {
	k1, _ := NewSymKey()
	k2, _ := NewSymKey()
	ct, _ := SealSym(nil, k1, []byte("secret"))
	if _, err := OpenSym(nil, k2, ct); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("wrong key: err = %v, want ErrDecrypt", err)
	}
}

func TestSymTamperDetected(t *testing.T) {
	k, _ := NewSymKey()
	ct, _ := SealSym(nil, k, []byte("secret"))
	ct[len(ct)-1] ^= 1
	if _, err := OpenSym(nil, k, ct); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("tampered: err = %v, want ErrDecrypt", err)
	}
	if _, err := OpenSym(nil, k, ct[:4]); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("truncated: err = %v, want ErrDecrypt", err)
	}
}

func TestHybridRoundTrip(t *testing.T) {
	k := keys(1)[0]
	var m CPUMeter
	msg := bytes.Repeat([]byte("confidential "), 100)
	ct, err := Seal(&m, k.Public(), msg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Open(&m, k, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("hybrid round trip mismatch")
	}
	if m.RSAEncs != 1 || m.RSADecs != 1 || m.RSA <= 0 {
		t.Fatalf("RSA metering: %+v", m)
	}
}

func TestHybridWrongKeyFails(t *testing.T) {
	ks := keys(2)
	ct, _ := Seal(nil, ks[0].Public(), []byte("x"))
	if _, err := Open(nil, ks[1], ct); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("err = %v, want ErrDecrypt", err)
	}
}

func TestHybridGarbageFails(t *testing.T) {
	k := keys(1)[0]
	for _, ct := range [][]byte{nil, {1}, bytes.Repeat([]byte{7}, 300)} {
		if _, err := Open(nil, k, ct); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("garbage %d bytes: err = %v, want ErrDecrypt", len(ct), err)
		}
	}
}

func TestSignVerify(t *testing.T) {
	ks := keys(2)
	var m CPUMeter
	sig, err := Sign(&m, ks[0], []byte("passport for N42"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(&m, ks[0].Public(), []byte("passport for N42"), sig); err != nil {
		t.Fatal(err)
	}
	if err := Verify(&m, ks[0].Public(), []byte("passport for N43"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("altered message: %v", err)
	}
	if err := Verify(&m, ks[1].Public(), []byte("passport for N42"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong key: %v", err)
	}
	if m.Signs != 1 || m.Verifys != 3 {
		t.Fatalf("sign metering: %+v", m)
	}
}

func TestPublicKeyMarshal(t *testing.T) {
	k := keys(1)[0]
	der := MarshalPublicKey(k.Public())
	pub, err := UnmarshalPublicKey(der)
	if err != nil {
		t.Fatal(err)
	}
	rp, ok := pub.(*RSAPublicKey)
	if !ok {
		t.Fatalf("round trip yielded %T, want *RSAPublicKey", pub)
	}
	orig := k.(*RSAPrivateKey).K.PublicKey
	if rp.K.N.Cmp(orig.N) != 0 || rp.K.E != orig.E {
		t.Fatal("key round trip mismatch")
	}
	if _, err := UnmarshalPublicKey([]byte("junk")); err == nil {
		t.Fatal("junk DER accepted")
	}
	if KeyFingerprint(k.Public()) != KeyFingerprint(pub) {
		t.Fatal("fingerprint unstable across marshal")
	}
	if KeyFingerprint(k.Public()) == KeyFingerprint(keys(2)[1].Public()) {
		t.Fatal("distinct keys share a fingerprint")
	}
}

func TestOnionFourNodePath(t *testing.T) {
	// The paper's canonical path: S → A → B → D with mixes A, B.
	ks := keys(3) // A, B, D
	addrB := []byte("addr-of-B")
	addrD := []byte("addr-of-D")
	contentKey, _ := NewSymKey()

	var m CPUMeter
	onion, err := BuildOnion(&m, []Hop{
		{Pub: ks[0].Public(), Addr: []byte("addr-of-A")},
		{Pub: ks[1].Public(), Addr: addrB},
		{Pub: ks[2].Public(), Addr: addrD},
	}, contentKey)
	if err != nil {
		t.Fatal(err)
	}
	if m.RSAEncs != 3 {
		t.Fatalf("onion build used %d RSA encryptions, want 3", m.RSAEncs)
	}

	// A peels: learns B's address, nothing else.
	next, inner, exit, err := Peel(&m, ks[0], onion)
	if err != nil || exit {
		t.Fatalf("A peel: exit=%v err=%v", exit, err)
	}
	if !bytes.Equal(next, addrB) {
		t.Fatalf("A learned next=%q, want addr-of-B", next)
	}
	if bytes.Contains(inner, addrD) || bytes.Contains(inner, contentKey) {
		t.Fatal("A's view leaks inner-layer data")
	}

	// B peels: learns D's address.
	next, inner, exit, err = Peel(&m, ks[1], inner)
	if err != nil || exit {
		t.Fatalf("B peel: exit=%v err=%v", exit, err)
	}
	if !bytes.Equal(next, addrD) {
		t.Fatalf("B learned next=%q, want addr-of-D", next)
	}

	// D peels: exit layer with the content key.
	next, inner, exit, err = Peel(&m, ks[2], inner)
	if err != nil || !exit {
		t.Fatalf("D peel: exit=%v err=%v", exit, err)
	}
	if len(next) != 0 {
		t.Fatalf("destination saw non-⊥ next hop %q", next)
	}
	if !bytes.Equal(inner, contentKey) {
		t.Fatal("content key corrupted through the onion")
	}
}

func TestOnionWrongHopCannotPeel(t *testing.T) {
	ks := keys(3)
	onion, err := BuildOnion(nil, []Hop{
		{Pub: ks[0].Public()},
		{Pub: ks[1].Public(), Addr: []byte("b")},
	}, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	// B (or anyone but A) cannot peel the outer layer.
	if _, _, _, err := Peel(nil, ks[1], onion); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("wrong hop peel: %v", err)
	}
	if _, _, _, err := Peel(nil, ks[2], onion); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("outsider peel: %v", err)
	}
}

func TestOnionEmptyPath(t *testing.T) {
	if _, err := BuildOnion(nil, nil, []byte("k")); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestOnionSingleHop(t *testing.T) {
	k := keys(1)[0]
	onion, err := BuildOnion(nil, []Hop{{Pub: k.Public()}}, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	next, inner, exit, err := Peel(nil, k, onion)
	if err != nil || !exit || len(next) != 0 || string(inner) != "payload" {
		t.Fatalf("single hop: next=%q inner=%q exit=%v err=%v", next, inner, exit, err)
	}
}

// Property: onions of any length 1..5 peel hop by hop in order, each
// hop seeing exactly its successor's address, and the final payload
// survives.
func TestPropertyOnionPeeling(t *testing.T) {
	ks := keys(5)
	f := func(nHops uint8, payload []byte) bool {
		n := int(nHops%5) + 1
		hops := make([]Hop, n)
		for i := range hops {
			hops[i] = Hop{Pub: ks[i].Public(), Addr: []byte{byte(i), 0xEE}}
		}
		onion, err := BuildOnion(nil, hops, payload)
		if err != nil {
			return false
		}
		blob := onion
		for i := 0; i < n; i++ {
			next, inner, exit, err := Peel(nil, ks[i], blob)
			if err != nil {
				return false
			}
			last := i == n-1
			if exit != last {
				return false
			}
			if !last && !bytes.Equal(next, hops[i+1].Addr) {
				return false
			}
			if last && !bytes.Equal(inner, payload) {
				return false
			}
			blob = inner
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestCPUMeterAdd(t *testing.T) {
	a := CPUMeter{AES: 1, RSA: 2, ECC: 3, AESOps: 3, RSAEncs: 4, RSADecs: 5, Signs: 6, Verifys: 7,
		ECCEncs: 8, ECCDecs: 9, ECCSigns: 10, ECCVerifys: 11}
	var b CPUMeter
	b.Add(a)
	b.Add(a)
	if b.AES != 2 || b.RSA != 4 || b.ECC != 6 || b.AESOps != 6 || b.RSAEncs != 8 || b.RSADecs != 10 || b.Signs != 12 || b.Verifys != 14 {
		t.Fatalf("Add: %+v", b)
	}
	if b.ECCEncs != 16 || b.ECCDecs != 18 || b.ECCSigns != 20 || b.ECCVerifys != 22 {
		t.Fatalf("Add (ecc ops): %+v", b)
	}
	if b.Total() != 12 {
		t.Fatalf("Total = %v", b.Total())
	}
	if b.Asym() != 10 {
		t.Fatalf("Asym = %v", b.Asym())
	}
	b.Reset()
	if b != (CPUMeter{}) {
		t.Fatal("Reset incomplete")
	}
}

func BenchmarkSealSym1KB(b *testing.B) {
	key, _ := NewSymKey()
	msg := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SealSym(nil, key, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnionBuild3Hops(b *testing.B) {
	ks := keys(3)
	hops := []Hop{
		{Pub: ks[0].Public(), Addr: []byte("a")},
		{Pub: ks[1].Public(), Addr: []byte("b")},
		{Pub: ks[2].Public(), Addr: []byte("d")},
	}
	k, _ := NewSymKey()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildOnion(nil, hops, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnionPeel(b *testing.B) {
	ks := keys(3)
	hops := []Hop{
		{Pub: ks[0].Public(), Addr: []byte("a")},
		{Pub: ks[1].Public(), Addr: []byte("b")},
		{Pub: ks[2].Public(), Addr: []byte("d")},
	}
	k, _ := NewSymKey()
	onion, _ := BuildOnion(nil, hops, k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Peel(nil, ks[0], onion); err != nil {
			b.Fatal(err)
		}
	}
}
