package crypt

import (
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hkdf"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"time"
)

// The ecc suite: modern elliptic-curve primitives that remove RSA from
// the hot path. Hybrid sealing is ephemeral-static ECIES on X25519 —
// a fresh ephemeral key pair per layer, an ECDH shared secret with the
// recipient's static key, and an HKDF-derived AEAD key — and
// signatures are Ed25519. Layer operations are two orders of magnitude
// cheaper than RSA-2048-OAEP and the 65-byte keys shrink onions and
// gossip descriptors several-fold.
//
// The layer AEAD is AES-256-GCM rather than the ChaCha20-Poly1305 the
// design calls for: golang.org/x/crypto is not vendored and this build
// environment is offline, so the suite is gated to the stdlib AEAD.
// Swapping ciphers is a one-line change in eccAEAD once x/crypto is
// available; the wire layout (ephemeral key ‖ nonce ‖ ciphertext) is
// AEAD-agnostic.

// eccKeyTag is the first byte of a marshaled ecc public key. 0xEC
// cannot collide with PKIX DER, which always starts with 0x30.
const eccKeyTag = 0xEC

// ECCKeyBlobSize is the marshaled ecc public key size: the tag byte,
// the 32-byte Ed25519 signing key, the 32-byte X25519 box key.
// Configurations sizing key-blob fields (keyss.EncodeKey) can shrink
// them to this bound on all-ecc deployments.
const ECCKeyBlobSize = 1 + ed25519.PublicKeySize + 32

const eccKeyBlobSize = ECCKeyBlobSize

// eccEphSize is the size of the ephemeral X25519 public key prefixed
// to every ECIES ciphertext.
const eccEphSize = 32

// eccInfo domain-separates the ECIES key derivation.
const eccInfo = "whisper/ecies/v1"

// ECCPublicKey is an ecc suite public key: an Ed25519 verification key
// and an X25519 key-agreement key.
type ECCPublicKey struct {
	SignKey ed25519.PublicKey
	BoxKey  *ecdh.PublicKey
}

// Suite identifies the key as ecc.
func (p *ECCPublicKey) Suite() SuiteID { return SuiteECC }

// ECCPrivateKey is an ecc suite private key.
type ECCPrivateKey struct {
	signKey ed25519.PrivateKey
	boxKey  *ecdh.PrivateKey
	pub     *ECCPublicKey
}

// Suite identifies the key as ecc.
func (p *ECCPrivateKey) Suite() SuiteID { return SuiteECC }

// Public returns the public half (stable across calls).
func (p *ECCPrivateKey) Public() PublicKey { return p.pub }

type eccSuite struct{}

var eccSuiteInst Suite = eccSuite{}

func (eccSuite) ID() SuiteID  { return SuiteECC }
func (eccSuite) Name() string { return "ecc" }

// Generate creates a fresh Ed25519 + X25519 key pair; bits is ignored
// (curve sizes are fixed).
func (eccSuite) Generate(int) (PrivateKey, error) {
	signPub, signPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("crypt: generating ed25519 key: %w", err)
	}
	boxPriv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("crypt: generating x25519 key: %w", err)
	}
	return &ECCPrivateKey{
		signKey: signPriv,
		boxKey:  boxPriv,
		pub:     &ECCPublicKey{SignKey: signPub, BoxKey: boxPriv.PublicKey()},
	}, nil
}

func eccPub(pub PublicKey) (*ECCPublicKey, error) {
	p, ok := pub.(*ECCPublicKey)
	if !ok {
		return nil, fmt.Errorf("crypt: ecc suite got %T public key", pub)
	}
	return p, nil
}

// eccAEAD builds the layer AEAD for a derived key. Gated to
// AES-256-GCM (see the package comment above) until ChaCha20-Poly1305
// is available offline.
func eccAEAD(key []byte) (cipher.AEAD, error) {
	return newGCM(key)
}

// eccDeriveKey turns an ECDH shared secret into the layer AEAD key,
// binding both public values so a transplanted ephemeral cannot be
// replayed against another recipient.
func eccDeriveKey(shared, ephPub, recipPub []byte) ([]byte, error) {
	salt := make([]byte, 0, len(ephPub)+len(recipPub))
	salt = append(salt, ephPub...)
	salt = append(salt, recipPub...)
	return hkdf.Key(sha256.New, shared, salt, eccInfo, SymKeySize)
}

// eccSealWith performs the ECIES seal under a caller-provided
// ephemeral key. Seal draws a fresh one per call; the onion fast path
// (beginOnion) shares one across the layers of a single onion.
func eccSealWith(m *CPUMeter, eph *ecdh.PrivateKey, ephPub []byte, p *ECCPublicKey, plaintext []byte) ([]byte, error) {
	start := time.Now()
	shared, err := eph.ECDH(p.BoxKey)
	if err != nil {
		return nil, fmt.Errorf("crypt: ecies ecdh: %w", err)
	}
	key, err := eccDeriveKey(shared, ephPub, p.BoxKey.Bytes())
	if err != nil {
		return nil, fmt.Errorf("crypt: ecies kdf: %w", err)
	}
	if m != nil {
		m.ECC += time.Since(start)
		m.ECCEncs++
	}
	aesStart := time.Now()
	aead, err := eccAEAD(key)
	if err != nil {
		return nil, err
	}
	n := aead.NonceSize()
	buf := make([]byte, eccEphSize+n, eccEphSize+n+len(plaintext)+aead.Overhead())
	copy(buf, ephPub)
	if _, err := rand.Read(buf[eccEphSize:]); err != nil {
		return nil, fmt.Errorf("crypt: nonce: %w", err)
	}
	out := aead.Seal(buf, buf[eccEphSize:], plaintext, nil)
	m.chargeAES(aesStart)
	return out, nil
}

// eccEphemeral draws a fresh X25519 ephemeral pair, charging the base
// multiplication to the meter.
func eccEphemeral(m *CPUMeter) (*ecdh.PrivateKey, []byte, error) {
	start := time.Now()
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("crypt: ecies ephemeral: %w", err)
	}
	ephPub := eph.PublicKey().Bytes()
	if m != nil {
		m.ECC += time.Since(start)
	}
	return eph, ephPub, nil
}

// Seal performs ephemeral-static ECIES: output is the 32-byte
// ephemeral X25519 public key followed by nonce ‖ AEAD ciphertext.
func (eccSuite) Seal(m *CPUMeter, pub PublicKey, plaintext []byte) ([]byte, error) {
	p, err := eccPub(pub)
	if err != nil {
		return nil, err
	}
	eph, ephPub, err := eccEphemeral(m)
	if err != nil {
		return nil, err
	}
	return eccSealWith(m, eph, ephPub, p, plaintext)
}

// beginOnion implements the shared-ephemeral onion fast path: one
// ephemeral key pair serves every ecc layer of one onion, replacing a
// base multiplication per layer with a single one per onion (the
// dominant cost of an X25519 seal on this stdlib, which has no
// precomputed base tables for the Montgomery ladder). Layer keys stay
// independent — each HKDF binds the recipient's distinct static key —
// and nonces stay fresh. The repeated ephemeral public key does link
// the layers of one onion to each other, but the WCL already forwards
// the cleartext path identifier to every hop for acknowledgement
// routing, so colluding relays gain nothing they did not have.
func (eccSuite) beginOnion(m *CPUMeter) (sealLayer, error) {
	eph, ephPub, err := eccEphemeral(m)
	if err != nil {
		return nil, err
	}
	return func(pub PublicKey, plaintext []byte) ([]byte, error) {
		p, err := eccPub(pub)
		if err != nil {
			return nil, err
		}
		return eccSealWith(m, eph, ephPub, p, plaintext)
	}, nil
}

// Open decrypts an ECIES ciphertext. Every failure mode — truncated
// blob, invalid curve point, wrong key, tampered ciphertext, an
// rsa2048 blob delivered to an ecc node — collapses to ErrDecrypt.
func (eccSuite) Open(m *CPUMeter, priv PrivateKey, ct []byte) ([]byte, error) {
	p, ok := priv.(*ECCPrivateKey)
	if !ok {
		return nil, ErrDecrypt
	}
	if len(ct) < eccEphSize {
		return nil, ErrDecrypt
	}
	start := time.Now()
	ephPub, err := ecdh.X25519().NewPublicKey(ct[:eccEphSize])
	if err != nil {
		return nil, ErrDecrypt
	}
	shared, err := p.boxKey.ECDH(ephPub)
	if err != nil {
		return nil, ErrDecrypt
	}
	key, err := eccDeriveKey(shared, ct[:eccEphSize], p.boxKey.PublicKey().Bytes())
	if err != nil {
		return nil, ErrDecrypt
	}
	if m != nil {
		m.ECC += time.Since(start)
		m.ECCDecs++
	}
	aesStart := time.Now()
	aead, err := eccAEAD(key)
	if err != nil {
		return nil, ErrDecrypt
	}
	pt, err := openWith(aead, ct[eccEphSize:])
	m.chargeAES(aesStart)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

func (eccSuite) Sign(m *CPUMeter, priv PrivateKey, msg []byte) ([]byte, error) {
	p, ok := priv.(*ECCPrivateKey)
	if !ok {
		return nil, fmt.Errorf("crypt: ecc suite got %T private key", priv)
	}
	start := time.Now()
	sig := ed25519.Sign(p.signKey, msg)
	if m != nil {
		m.ECC += time.Since(start)
		m.ECCSigns++
	}
	return sig, nil
}

func (eccSuite) Verify(m *CPUMeter, pub PublicKey, msg, sig []byte) error {
	p, err := eccPub(pub)
	if err != nil {
		return ErrBadSignature
	}
	start := time.Now()
	ok := len(sig) == ed25519.SignatureSize && ed25519.Verify(p.SignKey, msg, sig)
	if m != nil {
		m.ECC += time.Since(start)
		m.ECCVerifys++
	}
	if !ok {
		return ErrBadSignature
	}
	return nil
}

func (eccSuite) MarshalPublicKey(pub PublicKey) []byte {
	p, err := eccPub(pub)
	if err != nil {
		panic(err.Error())
	}
	blob := make([]byte, 0, eccKeyBlobSize)
	blob = append(blob, eccKeyTag)
	blob = append(blob, p.SignKey...)
	blob = append(blob, p.BoxKey.Bytes()...)
	if len(blob) != eccKeyBlobSize {
		panic(fmt.Sprintf("crypt: ecc key blob is %d bytes, want %d", len(blob), eccKeyBlobSize))
	}
	return blob
}

func (eccSuite) UnmarshalPublicKey(blob []byte) (PublicKey, error) {
	if len(blob) != eccKeyBlobSize || blob[0] != eccKeyTag {
		return nil, fmt.Errorf("crypt: malformed ecc public key (%d bytes)", len(blob))
	}
	signKey := ed25519.PublicKey(append([]byte(nil), blob[1:1+ed25519.PublicKeySize]...))
	boxKey, err := ecdh.X25519().NewPublicKey(blob[1+ed25519.PublicKeySize:])
	if err != nil {
		return nil, fmt.Errorf("crypt: malformed ecc box key: %w", err)
	}
	return &ECCPublicKey{SignKey: signKey, BoxKey: boxKey}, nil
}
