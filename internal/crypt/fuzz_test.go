package crypt

import (
	"bytes"
	"testing"
)

// Fuzz targets for the suite-tagged codecs: whatever bytes arrive off
// the wire, parsing a key blob or peeling an onion layer must fail
// cleanly (never panic), and anything that does parse must round-trip
// stably. CI runs these as short smoke passes; `go test -fuzz` digs
// deeper locally.

func FuzzUnmarshalPublicKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("junk"))
	f.Add([]byte{derSequenceTag, 0x00})
	f.Add([]byte{eccKeyTag})
	f.Add(bytes.Repeat([]byte{eccKeyTag}, eccKeyBlobSize))
	f.Add(MarshalPublicKey(keys(1)[0].Public()))
	f.Add(MarshalPublicKey(suiteKeys(SuiteECC, 1)[0].Public()))
	f.Fuzz(func(t *testing.T, blob []byte) {
		pub, err := UnmarshalPublicKey(blob)
		if err != nil {
			return
		}
		// A parsed key must re-marshal to a blob that parses back to
		// the same fingerprint (the identity the rest of the stack
		// hangs off the key).
		again, err := UnmarshalPublicKey(MarshalPublicKey(pub))
		if err != nil {
			t.Fatalf("re-parse of marshaled key failed: %v", err)
		}
		if KeyFingerprint(again) != KeyFingerprint(pub) {
			t.Fatal("fingerprint unstable across re-marshal")
		}
	})
}

func FuzzPeel(f *testing.F) {
	rsaK := keys(1)[0]
	eccK := suiteKeys(SuiteECC, 1)[0]
	onion, err := BuildOnion(nil, []Hop{{Pub: rsaK.Public()}}, []byte("k"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(onion, false)
	f.Add(onion, true)
	f.Add([]byte{}, false)
	f.Add(bytes.Repeat([]byte{0xA5}, 300), true)
	f.Fuzz(func(t *testing.T, data []byte, ecc bool) {
		var priv PrivateKey = rsaK
		if ecc {
			priv = eccK
		}
		// Must never panic; any failure must be the uniform ErrDecrypt
		// (the AEAD makes a post-decrypt framing error unreachable).
		if _, _, _, err := Peel(nil, priv, data); err != nil && err != ErrDecrypt {
			t.Fatalf("non-uniform peel error: %v", err)
		}
	})
}

func FuzzPeelCircuit(f *testing.F) {
	rsaK := keys(1)[0]
	eccK := suiteKeys(SuiteECC, 1)[0]
	secret, _ := NewCircuitSecret()
	hopKeys, _ := DeriveCircuitKeys(secret, 1)
	circ, err := BuildCircuitOnion(nil, []CircuitHop{{Pub: eccK.Public(), Key: hopKeys[0]}}, []byte("est"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(circ, true)
	f.Add(circ, false)
	f.Add([]byte{}, false)
	f.Fuzz(func(t *testing.T, data []byte, ecc bool) {
		var priv PrivateKey = rsaK
		if ecc {
			priv = eccK
		}
		if _, _, _, _, err := PeelCircuit(nil, priv, data); err != nil && err != ErrDecrypt {
			t.Fatalf("non-uniform circuit peel error: %v", err)
		}
	})
}
