package crypt

import (
	"fmt"

	"whisper/internal/wire"
)

// Hop describes one node on an onion path: its public key and the
// opaque addressing blob the *previous* hop needs to forward to it
// (typically a wire-encoded node descriptor with endpoint and route).
// The first hop's Addr is used directly by the source and is never
// embedded in the onion. Each layer is sealed under the hop key's own
// suite, so a path may mix suites.
type Hop struct {
	Pub  PublicKey
	Addr []byte
}

// BuildOnion constructs the layered ciphertext of §III-A for the given
// path (first mix first, destination last). final is the innermost
// payload delivered to the destination — in WHISPER the content key k.
//
// Layer i decrypts, under hop i's private key, to the pair
// (address of hop i+1, remaining onion); the destination's layer holds
// (⊥, final). A hop therefore learns only its successor, which is what
// gives relationship anonymity: no mix can tell whether its successor
// or predecessor are endpoints or further mixes.
func BuildOnion(m *CPUMeter, hops []Hop, final []byte) ([]byte, error) {
	if len(hops) == 0 {
		return nil, fmt.Errorf("crypt: empty onion path")
	}
	last := hops[len(hops)-1]
	seal := newLayerSealer(m)
	// One scratch writer assembles every layer: Seal consumes the
	// plaintext before returning, so the buffer can be reset and reused
	// as the onion grows instead of allocating per layer.
	w := wire.NewWriter(256 + len(final))
	w.Bytes16(nil) // ⊥: this hop is the destination
	w.Bytes32(final)
	blob, err := seal(last.Pub, w.Bytes())
	if err != nil {
		return nil, fmt.Errorf("crypt: sealing destination layer: %w", err)
	}
	for i := len(hops) - 2; i >= 0; i-- {
		w.Reset()
		w.Bytes16(hops[i+1].Addr)
		w.Bytes32(blob)
		blob, err = seal(hops[i].Pub, w.Bytes())
		if err != nil {
			return nil, fmt.Errorf("crypt: sealing layer %d: %w", i, err)
		}
	}
	return blob, nil
}

// Peel removes one onion layer with the hop's private key. If the hop
// is the destination, exit is true and inner holds the final payload;
// otherwise next holds the successor's addressing blob and inner the
// remaining onion.
func Peel(m *CPUMeter, priv PrivateKey, onion []byte) (next, inner []byte, exit bool, err error) {
	pt, err := Open(m, priv, onion)
	if err != nil {
		return nil, nil, false, err
	}
	r := wire.NewReader(pt)
	next = r.Bytes16()
	inner = r.Bytes32()
	if err := r.Close(); err != nil {
		return nil, nil, false, fmt.Errorf("crypt: malformed onion layer: %w", err)
	}
	return next, inner, len(next) == 0, nil
}
