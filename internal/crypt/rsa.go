package crypt

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"fmt"
	"hash"
	"time"

	"whisper/internal/wire"
)

// The rsa2048 suite: the paper-era primitives WHISPER was evaluated
// with. Hybrid sealing is RSA-OAEP (SHA-256) over a fresh AES-256 key
// followed by AES-GCM; signatures are PKCS#1 v1.5 over SHA-256; keys
// travel as PKIX DER. Everything here is a verbatim move of the
// pre-suite implementation — same primitives, same randomness
// consumption, same wire bytes — so the fig5 golden is unchanged.

// derSequenceTag is the first byte of every PKIX DER blob (an ASN.1
// SEQUENCE), which is what lets the key parser dispatch rsa2048 blobs
// without an explicit suite tag.
const derSequenceTag = 0x30

// RSAPublicKey wraps an *rsa.PublicKey as a suite-tagged PublicKey.
type RSAPublicKey struct{ K *rsa.PublicKey }

// Suite identifies the key as rsa2048.
func (p *RSAPublicKey) Suite() SuiteID { return SuiteRSA2048 }

// RSAPrivateKey wraps an *rsa.PrivateKey as a suite-tagged PrivateKey.
// Build instances with NewRSAPrivateKey so Public() is stable.
type RSAPrivateKey struct {
	K   *rsa.PrivateKey
	pub *RSAPublicKey
}

// NewRSAPrivateKey wraps an existing RSA private key.
func NewRSAPrivateKey(k *rsa.PrivateKey) *RSAPrivateKey {
	return &RSAPrivateKey{K: k, pub: &RSAPublicKey{K: &k.PublicKey}}
}

// Suite identifies the key as rsa2048.
func (p *RSAPrivateKey) Suite() SuiteID { return SuiteRSA2048 }

// Public returns the wrapped public half (stable across calls).
func (p *RSAPrivateKey) Public() PublicKey {
	if p.pub == nil {
		p.pub = &RSAPublicKey{K: &p.K.PublicKey}
	}
	return p.pub
}

type rsaSuite struct{}

var rsaSuiteInst Suite = rsaSuite{}

func (rsaSuite) ID() SuiteID  { return SuiteRSA2048 }
func (rsaSuite) Name() string { return "rsa2048" }

// rsaDefaultBits sizes generated RSA keys when the caller passes zero
// (1024, as in the paper's era; see identity.DefaultKeyBits).
const rsaDefaultBits = 1024

func (rsaSuite) Generate(bits int) (PrivateKey, error) {
	if bits == 0 {
		bits = rsaDefaultBits
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("crypt: generating rsa key: %w", err)
	}
	key.Precompute()
	return NewRSAPrivateKey(key), nil
}

func rsaPub(pub PublicKey) (*rsa.PublicKey, error) {
	p, ok := pub.(*RSAPublicKey)
	if !ok {
		return nil, fmt.Errorf("crypt: rsa2048 suite got %T public key", pub)
	}
	return p.K, nil
}

func (rsaSuite) Seal(m *CPUMeter, pub PublicKey, plaintext []byte) ([]byte, error) {
	p, err := rsaPub(pub)
	if err != nil {
		return nil, err
	}
	return rsaSeal(m, p, plaintext)
}

func (rsaSuite) Open(m *CPUMeter, priv PrivateKey, ct []byte) ([]byte, error) {
	p, ok := priv.(*RSAPrivateKey)
	if !ok {
		return nil, ErrDecrypt
	}
	return rsaOpen(m, p.K, ct)
}

func (rsaSuite) Sign(m *CPUMeter, priv PrivateKey, msg []byte) ([]byte, error) {
	p, ok := priv.(*RSAPrivateKey)
	if !ok {
		return nil, fmt.Errorf("crypt: rsa2048 suite got %T private key", priv)
	}
	start := time.Now()
	defer func() {
		if m != nil {
			m.RSA += time.Since(start)
			m.Signs++
		}
	}()
	h := sha256.Sum256(msg)
	sig, err := rsa.SignPKCS1v15(rand.Reader, p.K, 0, h[:])
	if err != nil {
		return nil, fmt.Errorf("crypt: sign: %w", err)
	}
	return sig, nil
}

func (rsaSuite) Verify(m *CPUMeter, pub PublicKey, msg, sig []byte) error {
	p, err := rsaPub(pub)
	if err != nil {
		return ErrBadSignature
	}
	start := time.Now()
	defer func() {
		if m != nil {
			m.RSA += time.Since(start)
			m.Verifys++
		}
	}()
	h := sha256.Sum256(msg)
	if rsa.VerifyPKCS1v15(p, 0, h[:], sig) != nil {
		return ErrBadSignature
	}
	return nil
}

func (rsaSuite) MarshalPublicKey(pub PublicKey) []byte {
	p, err := rsaPub(pub)
	if err != nil {
		panic(err.Error())
	}
	der, err := x509.MarshalPKIXPublicKey(p)
	if err != nil {
		// Only possible for malformed in-memory keys: programmer error.
		panic(fmt.Sprintf("crypt: marshaling public key: %v", err))
	}
	return der
}

func (rsaSuite) UnmarshalPublicKey(blob []byte) (PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(blob)
	if err != nil {
		return nil, fmt.Errorf("crypt: parsing public key: %w", err)
	}
	pub, ok := k.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("crypt: not an RSA public key: %T", k)
	}
	return &RSAPublicKey{K: pub}, nil
}

// rsaSeal hybrid-encrypts plaintext to pub: an RSA-OAEP-encrypted
// fresh AES key followed by the AES-GCM ciphertext.
func rsaSeal(m *CPUMeter, pub *rsa.PublicKey, plaintext []byte) ([]byte, error) {
	key, err := NewSymKey()
	if err != nil {
		return nil, err
	}
	h := sha256Pool.Get().(hash.Hash)
	start := time.Now()
	wrapped, err := rsa.EncryptOAEP(h, rand.Reader, pub, key, nil)
	sha256Pool.Put(h)
	if m != nil {
		m.RSA += time.Since(start)
		m.RSAEncs++
	}
	if err != nil {
		return nil, fmt.Errorf("crypt: OAEP encrypt: %w", err)
	}
	// The key is fresh and sealed exactly once: bypass the AEAD cache.
	aesStart := time.Now()
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	body, err := sealWith(gcm, plaintext)
	m.chargeAES(aesStart)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(2 + len(wrapped) + len(body))
	w.Bytes16(wrapped)
	w.Raw(body)
	return w.Bytes(), nil
}

// rsaOpen decrypts an rsaSeal ciphertext with the private key.
func rsaOpen(m *CPUMeter, priv *rsa.PrivateKey, ct []byte) ([]byte, error) {
	r := wire.NewReader(ct)
	wrapped := r.Bytes16()
	body := r.Rest()
	if r.Err() != nil || len(wrapped) == 0 {
		return nil, ErrDecrypt
	}
	h := sha256Pool.Get().(hash.Hash)
	start := time.Now()
	key, err := rsa.DecryptOAEP(h, rand.Reader, priv, wrapped, nil)
	sha256Pool.Put(h)
	if m != nil {
		m.RSA += time.Since(start)
		m.RSADecs++
	}
	if err != nil {
		return nil, ErrDecrypt
	}
	// One-shot layer key: bypass the AEAD cache (see rsaSeal).
	aesStart := time.Now()
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	pt, err := openWith(gcm, body)
	m.chargeAES(aesStart)
	return pt, err
}
