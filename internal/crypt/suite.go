package crypt

import "fmt"

// Pluggable crypto suites. A Suite bundles the asymmetric primitives a
// node's identity key commits it to — hybrid seal/open for onion
// layers, signatures for passports and accreditations, and the public
// key wire codec. The onion layering (BuildOnion/Peel), the circuit key
// schedule (DeriveCircuitKeys) and cell sealing are generic over the
// suite: they call the per-hop Seal/Open through the key's suite, so a
// path may even mix hops of different suites.
//
// Wire-level suite tagging rides on the first byte of the marshaled
// public key: PKIX DER (the rsa2048 format) always starts with 0x30
// (an ASN.1 SEQUENCE), while the ecc format starts with the reserved
// tag byte 0xEC. Existing rsa2048 key blobs therefore remain
// byte-identical, and a parser can dispatch without a version field.

// SuiteID identifies a crypto suite. The zero value is SuiteRSA2048,
// so zero-valued configs keep the historical default.
type SuiteID uint8

const (
	// SuiteRSA2048 is the paper-era suite: RSA-OAEP + AES-256-GCM
	// hybrid layers, PKCS#1 v1.5 signatures, PKIX DER keys.
	SuiteRSA2048 SuiteID = iota
	// SuiteECC is the modern suite: X25519 ephemeral-static ECIES +
	// AEAD layers and Ed25519 signatures, with 65-byte tagged keys.
	SuiteECC
)

// String returns the canonical suite name ("rsa2048", "ecc").
func (id SuiteID) String() string {
	switch id {
	case SuiteRSA2048:
		return "rsa2048"
	case SuiteECC:
		return "ecc"
	}
	return fmt.Sprintf("suite(%d)", uint8(id))
}

// ParseSuite maps a canonical suite name (the -suite flag values) to
// its identifier.
func ParseSuite(name string) (SuiteID, error) {
	switch name {
	case "", "rsa2048":
		return SuiteRSA2048, nil
	case "ecc":
		return SuiteECC, nil
	}
	return 0, fmt.Errorf("crypt: unknown suite %q (want rsa2048 or ecc)", name)
}

// PublicKey is a suite-tagged public key. Concrete values are always
// pointers to a suite's own wrapper type, which keeps them usable as
// map keys with the interning semantics callers rely on: unmarshaling
// identical key blobs yields one shared instance.
type PublicKey interface {
	// Suite identifies the suite the key belongs to.
	Suite() SuiteID
}

// PrivateKey is a suite-tagged private key.
type PrivateKey interface {
	// Suite identifies the suite the key belongs to.
	Suite() SuiteID
	// Public returns the corresponding public key. The result is
	// stable: every call returns the same instance.
	Public() PublicKey
}

// Suite implements one crypto suite's asymmetric operations. All
// methods charge the supplied CPUMeter (which may be nil) under the
// suite's own accounting fields.
type Suite interface {
	ID() SuiteID
	Name() string
	// Generate creates a fresh key pair. bits sizes RSA moduli and is
	// ignored by fixed-size suites.
	Generate(bits int) (PrivateKey, error)
	// Seal hybrid-encrypts plaintext to pub (one onion layer).
	Seal(m *CPUMeter, pub PublicKey, plaintext []byte) ([]byte, error)
	// Open decrypts a Seal ciphertext. Any failure is reported as
	// ErrDecrypt so a receiver is not a format oracle.
	Open(m *CPUMeter, priv PrivateKey, ct []byte) ([]byte, error)
	// Sign produces a signature over msg.
	Sign(m *CPUMeter, priv PrivateKey, msg []byte) ([]byte, error)
	// Verify checks a Sign signature (ErrBadSignature on failure).
	Verify(m *CPUMeter, pub PublicKey, msg, sig []byte) error
	// MarshalPublicKey serializes pub to its suite-tagged wire blob.
	// The result is shared and must be treated as read-only.
	MarshalPublicKey(pub PublicKey) []byte
	// UnmarshalPublicKey parses a blob this suite produced.
	UnmarshalPublicKey(blob []byte) (PublicKey, error)
}

var suiteRegistry = map[SuiteID]Suite{
	SuiteRSA2048: rsaSuiteInst,
	SuiteECC:     eccSuiteInst,
}

// GetSuite returns the Suite registered under id, or nil.
func GetSuite(id SuiteID) Suite { return suiteRegistry[id] }

// Suites lists the registered suite identifiers in a fixed order.
func Suites() []SuiteID { return []SuiteID{SuiteRSA2048, SuiteECC} }

func suiteOfKey(suite SuiteID) (Suite, error) {
	s := suiteRegistry[suite]
	if s == nil {
		return nil, fmt.Errorf("crypt: no suite registered for %v", suite)
	}
	return s, nil
}

// GenerateKey creates a fresh key pair for the suite. bits sizes RSA
// moduli (DefaultKeyBits-style defaults are the caller's concern) and
// is ignored by fixed-size suites.
func GenerateKey(suite SuiteID, bits int) (PrivateKey, error) {
	s, err := suiteOfKey(suite)
	if err != nil {
		return nil, err
	}
	return s.Generate(bits)
}

// Seal hybrid-encrypts plaintext to pub under the key's own suite.
// This is the per-layer encryption of the onion path.
func Seal(m *CPUMeter, pub PublicKey, plaintext []byte) ([]byte, error) {
	if pub == nil {
		return nil, fmt.Errorf("crypt: sealing to nil public key")
	}
	s, err := suiteOfKey(pub.Suite())
	if err != nil {
		return nil, err
	}
	return s.Seal(m, pub, plaintext)
}

// sealLayer seals one onion layer; see onionSealerSuite.
type sealLayer func(pub PublicKey, plaintext []byte) ([]byte, error)

// onionSealerSuite is an optional Suite extension: a suite that can
// amortize asymmetric work across the layers of one onion implements
// it. beginOnion returns a layer sealer holding per-onion shared state
// (the ecc suite's single ephemeral key); suites without the extension
// fall back to an independent Seal per layer.
type onionSealerSuite interface {
	beginOnion(m *CPUMeter) (sealLayer, error)
}

// newLayerSealer returns the seal function the onion builders use: for
// suites implementing onionSealerSuite it lazily opens one shared-state
// sealer per suite (so mixed-suite paths compose), everything else
// routes through plain Seal.
func newLayerSealer(m *CPUMeter) sealLayer {
	var shared map[SuiteID]sealLayer
	return func(pub PublicKey, plaintext []byte) ([]byte, error) {
		if pub == nil {
			return nil, fmt.Errorf("crypt: sealing to nil public key")
		}
		os, ok := suiteRegistry[pub.Suite()].(onionSealerSuite)
		if !ok {
			return Seal(m, pub, plaintext)
		}
		if f := shared[pub.Suite()]; f != nil {
			return f(pub, plaintext)
		}
		f, err := os.beginOnion(m)
		if err != nil {
			return nil, err
		}
		if shared == nil {
			shared = make(map[SuiteID]sealLayer, 1)
		}
		shared[pub.Suite()] = f
		return f(pub, plaintext)
	}
}

// Open decrypts a Seal ciphertext with the private key. Failures are
// uniform: whatever went wrong (wrong key, wrong suite, truncated or
// tampered ciphertext), the caller sees ErrDecrypt.
func Open(m *CPUMeter, priv PrivateKey, ct []byte) ([]byte, error) {
	if priv == nil {
		return nil, ErrDecrypt
	}
	s, err := suiteOfKey(priv.Suite())
	if err != nil {
		return nil, ErrDecrypt
	}
	return s.Open(m, priv, ct)
}

// Sign produces a signature over msg under the key's own suite.
func Sign(m *CPUMeter, priv PrivateKey, msg []byte) ([]byte, error) {
	if priv == nil {
		return nil, fmt.Errorf("crypt: signing with nil private key")
	}
	s, err := suiteOfKey(priv.Suite())
	if err != nil {
		return nil, err
	}
	return s.Sign(m, priv, msg)
}

// Verify checks a Sign signature. Cross-suite or malformed signatures
// fail with the same ErrBadSignature as a forged one.
func Verify(m *CPUMeter, pub PublicKey, msg, sig []byte) error {
	if pub == nil {
		return ErrBadSignature
	}
	s, err := suiteOfKey(pub.Suite())
	if err != nil {
		return ErrBadSignature
	}
	return s.Verify(m, pub, msg, sig)
}

// MarshalPublicKey serializes a public key to its suite-tagged wire
// blob. Results are memoized per key instance; the returned slice is
// shared and must be treated as read-only.
func MarshalPublicKey(pub PublicKey) []byte {
	derCache.Lock()
	der, ok := derCache.m[pub]
	derCache.Unlock()
	if ok {
		return der
	}
	s := suiteRegistry[pub.Suite()]
	if s == nil {
		panic(fmt.Sprintf("crypt: marshaling key of unregistered suite %v", pub.Suite()))
	}
	der = s.MarshalPublicKey(pub)
	derCache.Lock()
	if len(derCache.m) >= keyCacheMax {
		derCache.m = make(map[PublicKey][]byte, 64)
	}
	derCache.m[pub] = der
	derCache.Unlock()
	return der
}

// UnmarshalPublicKey parses a suite-tagged public key blob,
// dispatching on the leading byte (0x30 = PKIX DER = rsa2048,
// 0xEC = ecc). Identical blobs return one shared, interned key
// instance; callers must not modify it.
func UnmarshalPublicKey(blob []byte) (PublicKey, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("crypt: empty public key blob")
	}
	parseCache.Lock()
	pub, ok := parseCache.m[string(blob)]
	parseCache.Unlock()
	if ok {
		return pub, nil
	}
	var s Suite
	switch blob[0] {
	case derSequenceTag:
		s = rsaSuiteInst
	case eccKeyTag:
		s = eccSuiteInst
	default:
		return nil, fmt.Errorf("crypt: unknown public key format (tag 0x%02x)", blob[0])
	}
	pub, err := s.UnmarshalPublicKey(blob)
	if err != nil {
		return nil, err
	}
	parseCache.Lock()
	if len(parseCache.m) >= keyCacheMax {
		parseCache.m = make(map[string]PublicKey, 64)
	}
	parseCache.m[string(blob)] = pub
	parseCache.Unlock()
	return pub, nil
}

// KeyFingerprint returns a short stable digest of a public key, used
// as a map key and in logs: the first 8 bytes of SHA-256 over the
// marshaled key. Fingerprints are memoized per key instance.
func KeyFingerprint(pub PublicKey) [8]byte {
	fpCache.Lock()
	fp, ok := fpCache.m[pub]
	fpCache.Unlock()
	if ok {
		return fp
	}
	fp = fingerprintBlob(MarshalPublicKey(pub))
	fpCache.Lock()
	if len(fpCache.m) >= keyCacheMax {
		fpCache.m = make(map[PublicKey][8]byte, 64)
	}
	fpCache.m[pub] = fp
	fpCache.Unlock()
	return fp
}
