package crypt

import (
	"bytes"
	"errors"
	"testing"
)

func TestParseSuite(t *testing.T) {
	for _, tc := range []struct {
		name string
		want SuiteID
	}{{"", SuiteRSA2048}, {"rsa2048", SuiteRSA2048}, {"ecc", SuiteECC}} {
		got, err := ParseSuite(tc.name)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSuite(%q) = %v, %v", tc.name, got, err)
		}
	}
	if _, err := ParseSuite("rot13"); err == nil {
		t.Fatal("unknown suite name accepted")
	}
	if SuiteRSA2048.String() != "rsa2048" || SuiteECC.String() != "ecc" {
		t.Fatal("suite names changed")
	}
	for _, id := range Suites() {
		s := GetSuite(id)
		if s == nil || s.ID() != id || s.Name() != id.String() {
			t.Fatalf("registry broken for %v", id)
		}
	}
}

func TestECCRoundTrip(t *testing.T) {
	k := suiteKeys(SuiteECC, 1)[0]
	var m CPUMeter
	msg := bytes.Repeat([]byte("confidential "), 100)
	ct, err := Seal(&m, k.Public(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, msg[:13]) {
		t.Fatal("plaintext visible in ciphertext")
	}
	pt, err := Open(&m, k, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("ecc hybrid round trip mismatch")
	}
	if m.ECCEncs != 1 || m.ECCDecs != 1 || m.ECC <= 0 {
		t.Fatalf("ECC metering: %+v", m)
	}
	if m.RSAEncs != 0 || m.RSADecs != 0 || m.RSA != 0 {
		t.Fatalf("ecc ops booked RSA time: %+v", m)
	}
	// Tampering anywhere — ephemeral key, nonce, ciphertext, tag —
	// fails uniformly.
	for _, i := range []int{0, 16, eccEphSize, eccEphSize + 5, len(ct) - 1} {
		mut := append([]byte(nil), ct...)
		mut[i] ^= 1
		if _, err := Open(nil, k, mut); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("tamper at %d: err = %v, want ErrDecrypt", i, err)
		}
	}
	if _, err := Open(nil, k, ct[:eccEphSize-1]); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("truncated: err = %v, want ErrDecrypt", err)
	}
}

func TestECCSignVerify(t *testing.T) {
	ks := suiteKeys(SuiteECC, 2)
	var m CPUMeter
	sig, err := Sign(&m, ks[0], []byte("passport for N42"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(&m, ks[0].Public(), []byte("passport for N42"), sig); err != nil {
		t.Fatal(err)
	}
	if err := Verify(&m, ks[0].Public(), []byte("passport for N43"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("altered message: %v", err)
	}
	if err := Verify(&m, ks[1].Public(), []byte("passport for N42"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong key: %v", err)
	}
	if err := Verify(&m, ks[0].Public(), []byte("passport for N42"), sig[:10]); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("truncated signature: %v", err)
	}
	if m.ECCSigns != 1 || m.ECCVerifys != 4 {
		t.Fatalf("ecc sign metering: %+v", m)
	}
}

func TestECCKeyMarshal(t *testing.T) {
	k := suiteKeys(SuiteECC, 1)[0]
	blob := MarshalPublicKey(k.Public())
	if len(blob) != eccKeyBlobSize || blob[0] != eccKeyTag {
		t.Fatalf("ecc key blob: %d bytes, tag 0x%02x", len(blob), blob[0])
	}
	pub, err := UnmarshalPublicKey(blob)
	if err != nil {
		t.Fatal(err)
	}
	if pub.Suite() != SuiteECC {
		t.Fatalf("parsed suite = %v", pub.Suite())
	}
	if KeyFingerprint(pub) != KeyFingerprint(k.Public()) {
		t.Fatal("ecc fingerprint unstable across marshal")
	}
	again, err := UnmarshalPublicKey(blob)
	if err != nil {
		t.Fatal(err)
	}
	if pub != again {
		t.Fatal("identical ecc blobs parsed to distinct instances")
	}
	// Truncated, padded and mistagged blobs are rejected.
	for _, bad := range [][]byte{blob[:10], append(append([]byte(nil), blob...), 0), {eccKeyTag}} {
		if _, err := UnmarshalPublicKey(bad); err == nil {
			t.Fatalf("malformed ecc blob of %d bytes accepted", len(bad))
		}
	}
	if _, err := UnmarshalPublicKey([]byte{0x99, 1, 2, 3}); err == nil {
		t.Fatal("unknown tag byte accepted")
	}
}

// TestCrossSuiteOpenFails pins the negative path of suite mixing: a
// node on one suite receiving a layer sealed for the other suite's key
// fails with the same uniform ErrDecrypt as any wrong-key failure — no
// panic, and no error distinction an observer could use as an oracle.
func TestCrossSuiteOpenFails(t *testing.T) {
	rsaK := keys(2)
	eccK := suiteKeys(SuiteECC, 2)
	ctRSA, err := Seal(nil, rsaK[0].Public(), []byte("layer"))
	if err != nil {
		t.Fatal(err)
	}
	ctECC, err := Seal(nil, eccK[0].Public(), []byte("layer"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		priv PrivateKey
		ct   []byte
	}{
		{"ecc-opens-rsa2048", eccK[0], ctRSA},
		{"rsa2048-opens-ecc", rsaK[0], ctECC},
		{"rsa2048-wrong-key", rsaK[1], ctRSA},
		{"ecc-wrong-key", eccK[1], ctECC},
	}
	for _, tc := range cases {
		if _, err := Open(nil, tc.priv, tc.ct); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("%s: err = %v, want ErrDecrypt", tc.name, err)
		}
	}
}

// TestCrossSuitePeelFails is the onion-level version: an entire onion
// built for rsa2048 hops delivered to an ecc node (and vice versa)
// peels to ErrDecrypt.
func TestCrossSuitePeelFails(t *testing.T) {
	rsaK := keys(2)
	eccK := suiteKeys(SuiteECC, 2)
	rsaOnion, err := BuildOnion(nil, []Hop{
		{Pub: rsaK[0].Public()},
		{Pub: rsaK[1].Public(), Addr: []byte("b")},
	}, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	eccOnion, err := BuildOnion(nil, []Hop{
		{Pub: eccK[0].Public()},
		{Pub: eccK[1].Public(), Addr: []byte("b")},
	}, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Peel(nil, eccK[0], rsaOnion); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("ecc peel of rsa onion: %v", err)
	}
	if _, _, _, err := Peel(nil, rsaK[0], eccOnion); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("rsa peel of ecc onion: %v", err)
	}
	// Circuit setup onions fail the same way.
	secret, _ := NewCircuitSecret()
	hopKeys, _ := DeriveCircuitKeys(secret, 2)
	circ, err := BuildCircuitOnion(nil, []CircuitHop{
		{Pub: rsaK[0].Public(), Key: hopKeys[0]},
		{Pub: rsaK[1].Public(), Addr: []byte("b"), Key: hopKeys[1]},
	}, []byte("est"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := PeelCircuit(nil, eccK[0], circ); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("ecc peel of rsa circuit onion: %v", err)
	}
}

// TestCrossSuiteVerifyFails: signatures never verify across suites,
// and fail with the same ErrBadSignature as a forgery.
func TestCrossSuiteVerifyFails(t *testing.T) {
	rsaK := keys(1)[0]
	eccK := suiteKeys(SuiteECC, 1)[0]
	msg := []byte("accreditation")
	rsaSig, err := Sign(nil, rsaK, msg)
	if err != nil {
		t.Fatal(err)
	}
	eccSig, err := Sign(nil, eccK, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(nil, eccK.Public(), msg, rsaSig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("ecc verify of rsa sig: %v", err)
	}
	if err := Verify(nil, rsaK.Public(), msg, eccSig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("rsa verify of ecc sig: %v", err)
	}
}

// TestMixedSuiteOnion: the onion layering dispatches per hop key, so a
// path whose mixes run different suites still builds and peels.
func TestMixedSuiteOnion(t *testing.T) {
	rsaK := keys(1)[0]
	eccK := suiteKeys(SuiteECC, 1)[0]
	payload := []byte("content-key")
	var m CPUMeter
	onion, err := BuildOnion(&m, []Hop{
		{Pub: rsaK.Public()},
		{Pub: eccK.Public(), Addr: []byte("addr-ecc")},
	}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if m.RSAEncs != 1 || m.ECCEncs != 1 {
		t.Fatalf("mixed onion metering: %+v", m)
	}
	next, inner, exit, err := Peel(&m, rsaK, onion)
	if err != nil || exit || !bytes.Equal(next, []byte("addr-ecc")) {
		t.Fatalf("rsa hop peel: next=%q exit=%v err=%v", next, exit, err)
	}
	_, inner, exit, err = Peel(&m, eccK, inner)
	if err != nil || !exit || !bytes.Equal(inner, payload) {
		t.Fatalf("ecc exit peel: inner=%q exit=%v err=%v", inner, exit, err)
	}
}

func TestGenerateKeyUnknownSuite(t *testing.T) {
	if _, err := GenerateKey(SuiteID(0x7F), 0); err == nil {
		t.Fatal("unknown suite generated a key")
	}
}
