package crypt

import (
	"fmt"
	"testing"
)

// BenchmarkSuiteOps compares the asymmetric primitives across suites:
// per-layer seal/open (the onion hot path), sign/verify (passports),
// and a full 3-hop onion build. This is the microbenchmark behind the
// whisper-exp suites experiment, and CI runs it with -benchmem as a
// regression reference.
func BenchmarkSuiteOps(b *testing.B) {
	payload := make([]byte, 256)
	for _, id := range Suites() {
		ks := suiteKeys(id, 3)
		k := ks[0]
		ct, err := Seal(nil, k.Public(), payload)
		if err != nil {
			b.Fatal(err)
		}
		sig, err := Sign(nil, k, payload)
		if err != nil {
			b.Fatal(err)
		}
		hops := []Hop{
			{Pub: ks[0].Public(), Addr: []byte("a")},
			{Pub: ks[1].Public(), Addr: []byte("b")},
			{Pub: ks[2].Public(), Addr: []byte("d")},
		}
		b.Run(fmt.Sprintf("%v/seal", id), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Seal(nil, k.Public(), payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%v/open", id), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Open(nil, k, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%v/sign", id), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Sign(nil, k, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%v/verify", id), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := Verify(nil, k.Public(), payload, sig); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%v/onion3build", id), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildOnion(nil, hops, payload[:SymKeySize]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestSuiteOpsAllocBudget is the benchmark-regression guard CI runs
// alongside BenchmarkSuiteOps: each primitive must stay within 2× of
// the allocation counts measured when the suites landed. A blown
// budget means a regression on the order of re-deriving cached state
// per op, which is exactly what the caches exist to prevent.
func TestSuiteOpsAllocBudget(t *testing.T) {
	payload := make([]byte, 256)
	// Baselines measured at introduction (allocs/op), already doubled.
	budgets := map[string]float64{
		"rsa2048/seal":   2 * 24,
		"rsa2048/open":   2 * 18,
		"rsa2048/sign":   2 * 16,
		"rsa2048/verify": 2 * 8,
		"ecc/seal":       2 * 24,
		"ecc/open":       2 * 16,
		"ecc/sign":       2 * 5,
		"ecc/verify":     2 * 4,
	}
	for _, id := range Suites() {
		k := suiteKeys(id, 1)[0]
		ct, err := Seal(nil, k.Public(), payload)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := Sign(nil, k, payload)
		if err != nil {
			t.Fatal(err)
		}
		ops := map[string]func(){
			"seal":   func() { Seal(nil, k.Public(), payload) },
			"open":   func() { Open(nil, k, ct) },
			"sign":   func() { Sign(nil, k, payload) },
			"verify": func() { Verify(nil, k.Public(), payload, sig) },
		}
		for name, op := range ops {
			key := fmt.Sprintf("%v/%s", id, name)
			got := testing.AllocsPerRun(20, op)
			if budget := budgets[key]; got > budget {
				t.Errorf("%s allocates %.1f times per op, budget %.0f", key, got, budget)
			}
		}
	}
}
