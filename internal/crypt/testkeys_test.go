package crypt

import "sync"

// Test keys are generated in-package: the shared identity.TestKeys
// pool now lives above crypt in the dependency graph, so crypt's own
// tests keep a small lazily-grown cache per suite instead.
var testKeys struct {
	sync.Mutex
	bySuite map[SuiteID][]PrivateKey
}

func keys(n int) []PrivateKey { return suiteKeys(SuiteRSA2048, n) }

func suiteKeys(suite SuiteID, n int) []PrivateKey {
	testKeys.Lock()
	defer testKeys.Unlock()
	if testKeys.bySuite == nil {
		testKeys.bySuite = make(map[SuiteID][]PrivateKey)
	}
	cache := testKeys.bySuite[suite]
	for len(cache) < n {
		k, err := GenerateKey(suite, 0)
		if err != nil {
			panic(err)
		}
		cache = append(cache, k)
	}
	testKeys.bySuite[suite] = cache
	return cache[:n:n]
}
