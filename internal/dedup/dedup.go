// Package dedup provides a small bounded seen-set with LRU eviction,
// used by protocol layers to make message handling idempotent under
// network duplication and replay: the WCL remembers recently seen
// forwards and delivered path IDs, the PPSS remembers served exchange
// sequence numbers. The bound keeps memory constant under adversarial
// traffic; eviction of old entries is safe because a duplicate older
// than the window is indistinguishable from a fresh message anyway
// (exactly-once within the window, at-most-window-late otherwise).
package dedup

import "container/list"

// Seen is a bounded set of comparable keys with least-recently-used
// eviction. The zero value is not usable; construct with New. Not safe
// for concurrent use — callers run on a serialized dispatch context,
// per the transport execution contract.
type Seen[K comparable] struct {
	cap int
	ll  *list.List // front = most recently seen
	m   map[K]*list.Element
}

// New creates a seen-set bounded to cap entries.
func New[K comparable](cap int) *Seen[K] {
	if cap <= 0 {
		panic("dedup: capacity must be positive")
	}
	return &Seen[K]{cap: cap, ll: list.New(), m: make(map[K]*list.Element, cap)}
}

// Len returns the current number of remembered keys.
func (s *Seen[K]) Len() int { return len(s.m) }

// Cap returns the bound.
func (s *Seen[K]) Cap() int { return s.cap }

// Contains reports whether k was seen within the window, refreshing its
// recency when present.
func (s *Seen[K]) Contains(k K) bool {
	e, ok := s.m[k]
	if ok {
		s.ll.MoveToFront(e)
	}
	return ok
}

// Add remembers k, reporting whether it was already present (a
// duplicate). The least recently seen key is evicted when the bound is
// exceeded.
func (s *Seen[K]) Add(k K) bool {
	if e, ok := s.m[k]; ok {
		s.ll.MoveToFront(e)
		return true
	}
	s.m[k] = s.ll.PushFront(k)
	if len(s.m) > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(K))
	}
	return false
}
