package dedup

import "testing"

func TestAddAndContains(t *testing.T) {
	s := New[uint64](4)
	if s.Add(1) {
		t.Fatal("fresh key reported as duplicate")
	}
	if !s.Add(1) {
		t.Fatal("repeated key not reported as duplicate")
	}
	if !s.Contains(1) || s.Contains(2) {
		t.Fatal("membership wrong")
	}
	if s.Len() != 1 || s.Cap() != 4 {
		t.Fatalf("Len=%d Cap=%d", s.Len(), s.Cap())
	}
}

func TestEvictsLeastRecent(t *testing.T) {
	s := New[int](3)
	s.Add(1)
	s.Add(2)
	s.Add(3)
	s.Contains(1) // refresh 1: the LRU is now 2
	s.Add(4)      // evicts 2
	if s.Contains(2) {
		t.Fatal("least-recently-seen key survived eviction")
	}
	for _, k := range []int{1, 3, 4} {
		if !s.Contains(k) {
			t.Fatalf("key %d wrongly evicted", k)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestAddRefreshesRecency(t *testing.T) {
	s := New[int](2)
	s.Add(1)
	s.Add(2)
	s.Add(1) // duplicate: refresh, making 2 the LRU
	s.Add(3) // evicts 2
	if s.Contains(2) || !s.Contains(1) || !s.Contains(3) {
		t.Fatal("Add did not refresh recency of a duplicate")
	}
}

func TestBoundHolds(t *testing.T) {
	s := New[int](16)
	for i := 0; i < 1000; i++ {
		s.Add(i)
	}
	if s.Len() != 16 {
		t.Fatalf("Len = %d, want 16", s.Len())
	}
}
