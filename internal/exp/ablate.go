package exp

import (
	"fmt"
	"io"
	"time"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/parallel"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

// AblateConfig parameterizes the ablation studies of the design choices
// DESIGN.md calls out: NAT lease style, hole punching, the second view
// bias, and mix-path length.
type AblateConfig struct {
	Seed    int64
	N       int
	Groups  int
	Warmup  time.Duration
	Measure time.Duration
	KeyBlob int
	// Parallel bounds the worker pool running the independent variant
	// runs (<= 0: one worker per CPU; 1: sequential).
	Parallel int
}

func (c AblateConfig) withDefaults() AblateConfig {
	if c.N == 0 {
		c.N = 300
	}
	if c.Groups == 0 {
		c.Groups = 6
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * time.Minute
	}
	if c.Measure == 0 {
		c.Measure = 8 * time.Minute
	}
	if c.KeyBlob == 0 {
		c.KeyBlob = 512
	}
	return c
}

// AblationRow summarizes one variant.
type AblationRow struct {
	Study   string
	Variant string
	Metrics map[string]float64
	Order   []string // metric print order
}

// Ablations runs all five studies — flattened into one job per variant
// so the worker pool sees every independent run — and returns one row
// per variant in the sequential harness's order (lease tcp/udp,
// punching default/relay-only, bias quota/cap, mixes 2/3, faults
// none/dup+reorder/burst). New variants append at the end so existing
// jobs keep their key-pool view indices and results stay reproducible
// across versions.
func Ablations(cfg AblateConfig) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	type job func(AblateConfig, *identity.Pool) (AblationRow, error)
	jobs := []job{
		func(c AblateConfig, p *identity.Pool) (AblationRow, error) { return ablateLease(c, p, 0) },
		func(c AblateConfig, p *identity.Pool) (AblationRow, error) { return ablateLease(c, p, 1) },
		func(c AblateConfig, p *identity.Pool) (AblationRow, error) { return ablatePunching(c, p, 0) },
		func(c AblateConfig, p *identity.Pool) (AblationRow, error) { return ablatePunching(c, p, 1) },
		func(c AblateConfig, p *identity.Pool) (AblationRow, error) { return ablateBiasCap(c, p, 0) },
		func(c AblateConfig, p *identity.Pool) (AblationRow, error) { return ablateBiasCap(c, p, 1) },
		func(c AblateConfig, p *identity.Pool) (AblationRow, error) { return ablateMixCount(c, p, 0) },
		func(c AblateConfig, p *identity.Pool) (AblationRow, error) { return ablateMixCount(c, p, 1) },
		func(c AblateConfig, p *identity.Pool) (AblationRow, error) { return ablateFaults(c, p, 0) },
		func(c AblateConfig, p *identity.Pool) (AblationRow, error) { return ablateFaults(c, p, 1) },
		func(c AblateConfig, p *identity.Pool) (AblationRow, error) { return ablateFaults(c, p, 2) },
	}
	workers := parallel.Workers(cfg.Parallel)
	return parallel.Map(workers, len(jobs), func(i int) (AblationRow, error) {
		return jobs[i](cfg, runPool(workers, i))
	})
}

// ablateLease compares TCP-style 24 h NAT association rules (the
// paper's RFC 5382 setting, our default) with UDP-style 5-minute rules:
// warm routes decay before view entries rotate, so first-try route
// success collapses.
func ablateLease(cfg AblateConfig, pool *identity.Pool, vi int) (AblationRow, error) {
	v := []struct {
		name  string
		lease time.Duration
		ttl   time.Duration
	}{
		{"tcp-24h (default)", 0, 0},
		{"udp-5min", 5 * time.Minute, 4 * time.Minute},
	}[vi]
	start := time.Now()
	w, err := sim.NewWorld(sim.Options{
		Seed: cfg.Seed, N: cfg.N, NATRatio: 0.7, KeyPool: pool,
		NATLease: v.lease,
		Nylon:    nylon.Config{ContactTTL: v.ttl},
		WCL:      &wcl.Config{MinPublic: 3},
		PPSS:     &ppss.Config{KeyBlobSize: cfg.KeyBlob, MinHelpers: 3},
		Obs:      worldObs("ablate/nat-lease/" + v.name),
	})
	if err != nil {
		return AblationRow{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)
	formGroups(w, cfg.Groups, 1)
	w.Sim.RunUntil(cfg.Warmup)
	before := aggregateWCL(w)
	w.Sim.RunFor(cfg.Measure)
	after := aggregateWCL(w)
	routes := float64(after.FirstTrySuccess + after.AltSuccess + after.Failed -
		before.FirstTrySuccess - before.AltSuccess - before.Failed)
	first := float64(after.FirstTrySuccess - before.FirstTrySuccess)
	recordRun("ablate/nat-lease/"+v.name, start, w)
	return AblationRow{
		Study: "nat-lease", Variant: v.name,
		Metrics: map[string]float64{"first-try %": pct(first, routes), "routes": routes},
		Order:   []string{"first-try %", "routes"},
	}, nil
}

// ablatePunching compares the default traversal (hole punching where
// the NAT pair allows it) with relay-only forwarding (the Leitao et al.
// alternative surveyed in §VI). One-shot gossip exchanges route through
// relays either way (the first contact with a fresh partner always
// does), so the discriminating effect of punching is the pool of direct
// N↔N associations it leaves behind — the warm routes that the WCL's
// backlog and persistent paths then reuse.
func ablatePunching(cfg AblateConfig, pool *identity.Pool, vi int) (AblationRow, error) {
	v := []struct {
		name    string
		disable bool
	}{
		{"punching (default)", false},
		{"relay-only", true},
	}[vi]
	start := time.Now()
	w, err := sim.NewWorld(sim.Options{
		Seed: cfg.Seed, N: cfg.N, NATRatio: 0.7, KeyPool: pool,
		Nylon: nylon.Config{DisablePunch: v.disable, MinPublic: 3},
		Obs:   worldObs("ablate/nat-traversal/" + v.name),
	})
	if err != nil {
		return AblationRow{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(cfg.Warmup)
	var punches uint64
	var contacts, nnContacts []float64
	for _, n := range w.Live() {
		punches += n.Nylon.Stats().PunchSuccesses
		ids := n.Nylon.ContactIDs()
		contacts = append(contacts, float64(len(ids)))
		nn := 0
		if !n.Public() {
			for _, id := range ids {
				if peer := w.Get(id); peer != nil && !peer.Public() {
					nn++
				}
			}
			nnContacts = append(nnContacts, float64(nn))
		}
	}
	recordRun("ablate/nat-traversal/"+v.name, start, w)
	return AblationRow{
		Study: "nat-traversal", Variant: v.name,
		Metrics: map[string]float64{
			"punches":          float64(punches),
			"contacts/node":    stats.Summarize(contacts).Mean,
			"N-N directs/node": stats.Summarize(nnContacts).Mean,
		},
		Order: []string{"punches", "contacts/node", "N-N directs/node"},
	}, nil
}

// ablateBiasCap exercises the paper's second bias in its intended
// regime — Π higher than the network's P-node share (§III-B-1's example
// of Π=3 with only 10% P-nodes) — with and without discarding excess
// P-nodes first.
func ablateBiasCap(cfg AblateConfig, pool *identity.Pool, vi int) (AblationRow, error) {
	v := []struct {
		name string
		cap  bool
	}{
		{"min-quota only", false},
		{"min-quota + cap", true},
	}[vi]
	start := time.Now()
	w, err := sim.NewWorld(sim.Options{
		Seed: cfg.Seed, N: cfg.N, NATRatio: 0.9, KeyPool: pool,
		Nylon: nylon.Config{MinPublic: 3, CapExcessPublic: v.cap},
		Obs:   worldObs("ablate/view-bias/" + v.name),
	})
	if err != nil {
		return AblationRow{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(cfg.Warmup)
	in := w.GraphStream().InDegrees()
	var pIn []float64
	quotaOK := 0
	for _, n := range w.Live() {
		if n.Public() {
			pIn = append(pIn, float64(in[n.ID()]))
		}
		pubs := 0
		for _, e := range n.Nylon.View() {
			if e.Val.Public {
				pubs++
			}
		}
		if pubs >= 3 {
			quotaOK++
		}
	}
	s := stats.Summarize(pIn)
	recordRun("ablate/view-bias/"+v.name, start, w)
	return AblationRow{
		Study: "view-bias", Variant: v.name,
		Metrics: map[string]float64{
			"P in-deg mean": s.Mean,
			"P in-deg max":  s.Max,
			"quota-ok %":    pct(float64(quotaOK), float64(len(w.Live()))),
		},
		Order: []string{"P in-deg mean", "P in-deg max", "quota-ok %"},
	}, nil
}

// ablateMixCount compares 2-mix paths (the paper's default) with 3-mix
// paths (collusion resistance per footnote 2): success stays high, the
// cost is one more RSA layer and hop of latency.
func ablateMixCount(cfg AblateConfig, pool *identity.Pool, vi int) (AblationRow, error) {
	mixes := []int{2, 3}[vi]
	start := time.Now()
	w, err := sim.NewWorld(sim.Options{
		Seed: cfg.Seed, N: cfg.N, NATRatio: 0.7, KeyPool: pool,
		WCL:  &wcl.Config{MinPublic: 3, Mixes: mixes},
		PPSS: &ppss.Config{KeyBlobSize: cfg.KeyBlob, MinHelpers: 3},
		Obs:  worldObs(fmt.Sprintf("ablate/mix-count/%d mixes", mixes)),
	})
	if err != nil {
		return AblationRow{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)
	formGroups(w, cfg.Groups, 1)
	w.Sim.RunUntil(cfg.Warmup)

	var rtts []time.Duration
	for _, n := range w.Live() {
		for _, inst := range n.PPSS.Instances() {
			inst.OnExchangeRTT = func(rtt time.Duration) { rtts = append(rtts, rtt) }
		}
	}
	before := aggregateWCL(w)
	w.Sim.RunFor(cfg.Measure)
	after := aggregateWCL(w)
	routes := float64(after.FirstTrySuccess + after.AltSuccess + after.Failed -
		before.FirstTrySuccess - before.AltSuccess - before.Failed)
	first := float64(after.FirstTrySuccess - before.FirstTrySuccess)
	rtt := stats.Percentile(durationsToSeconds(rtts), 50)
	recordRun(fmt.Sprintf("ablate/mix-count/%d mixes", mixes), start, w)
	return AblationRow{
		Study: "mix-count", Variant: fmt.Sprintf("%d mixes", mixes),
		Metrics: map[string]float64{
			"first-try %":  pct(first, routes),
			"rtt p50 (ms)": rtt * 1000,
		},
		Order: []string{"first-try %", "rtt p50 (ms)"},
	}, nil
}

// deliveryCounter detects duplicate deliveries: a deliver event must
// fire at most once per path, whatever the network does. Counting per
// path needs the correlation key, so this is an obs.Correlator — the
// omniscient-observer role only the simulator may take.
type deliveryCounter struct {
	counts map[uint64]int
	dups   int
}

func (d *deliveryCounter) Record(node uint64, ev obs.Event) { d.RecordCorrelated(node, ev, 0) }

func (d *deliveryCounter) RecordCorrelated(_ uint64, ev obs.Event, corr uint64) {
	if ev.Kind != obs.KindDeliver {
		return
	}
	d.counts[corr]++
	if d.counts[corr] > 1 {
		d.dups++
	}
}

// ablateFaults measures confidential-route success under the netem
// fault layer: duplication plus reordering (middlebox pathologies) and
// Gilbert-Elliott burst loss. The claim under test is graceful
// degradation — the retry machinery absorbs the faults, success does
// not collapse — with strictly exactly-once delivery: a duplicated
// forward must never reach the application twice.
func ablateFaults(cfg AblateConfig, pool *identity.Pool, vi int) (AblationRow, error) {
	v := []struct {
		name   string
		faults *netem.FaultModel
	}{
		{"none (baseline)", nil},
		{"dup 5% + reorder", &netem.FaultModel{
			DupProb: 0.05, ReorderProb: 0.25, ReorderJitter: 200 * time.Millisecond,
		}},
		{"burst loss", &netem.FaultModel{
			Burst: &netem.GilbertElliott{PGoodBad: 0.02, PBadGood: 0.3, LossBad: 0.6},
		}},
	}[vi]
	start := time.Now()
	w, err := sim.NewWorld(sim.Options{
		Seed: cfg.Seed, N: cfg.N, NATRatio: 0.7, KeyPool: pool,
		Faults: v.faults,
		WCL:    &wcl.Config{MinPublic: 3},
		PPSS:   &ppss.Config{KeyBlobSize: cfg.KeyBlob, MinHelpers: 3},
		Obs:    worldObs("ablate/faults/" + v.name),
	})
	if err != nil {
		return AblationRow{}, err
	}
	tracer := &deliveryCounter{counts: map[uint64]int{}}
	for _, n := range w.Nodes {
		n.WCL.Trace = obs.NewTracer(uint64(n.Nylon.ID()), tracer)
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)
	formGroups(w, cfg.Groups, 1)
	w.Sim.RunUntil(cfg.Warmup)
	before := aggregateWCL(w)
	w.Sim.RunFor(cfg.Measure)
	after := aggregateWCL(w)
	routes := float64(after.FirstTrySuccess + after.AltSuccess + after.Failed -
		before.FirstTrySuccess - before.AltSuccess - before.Failed)
	ok := float64(after.FirstTrySuccess + after.AltSuccess -
		before.FirstTrySuccess - before.AltSuccess)
	first := float64(after.FirstTrySuccess - before.FirstTrySuccess)
	suppressed := float64(after.DupForwards + after.DupDeliveries -
		before.DupForwards - before.DupDeliveries)
	recordRun("ablate/faults/"+v.name, start, w)
	return AblationRow{
		Study: "faults", Variant: v.name,
		Metrics: map[string]float64{
			"ok %":            pct(ok, routes),
			"first-try %":     pct(first, routes),
			"routes":          routes,
			"dup deliveries":  float64(tracer.dups),
			"dups suppressed": suppressed,
		},
		Order: []string{"ok %", "first-try %", "routes", "dup deliveries", "dups suppressed"},
	}, nil
}

// PrintAblations renders the ablation table.
func PrintAblations(out io.Writer, rows []AblationRow) {
	fmt.Fprintln(out, "== Ablations: design-choice studies ==")
	tb := stats.NewTable("study", "variant", "metrics")
	for _, r := range rows {
		m := ""
		for i, k := range r.Order {
			if i > 0 {
				m += "  "
			}
			m += fmt.Sprintf("%s=%.2f", k, r.Metrics[k])
		}
		tb.Row(r.Study, r.Variant, m)
	}
	fmt.Fprint(out, tb.String())
}

// AblationShapeCheck verifies the expected directional effects.
func AblationShapeCheck(rows []AblationRow) []string {
	byKey := map[string]AblationRow{}
	for _, r := range rows {
		byKey[r.Study+"/"+r.Variant] = r
	}
	var bad []string
	if tcp, udp := byKey["nat-lease/tcp-24h (default)"], byKey["nat-lease/udp-5min"]; tcp.Metrics != nil && udp.Metrics != nil {
		if udp.Metrics["first-try %"] >= tcp.Metrics["first-try %"] {
			bad = append(bad, "UDP-lease routes not worse than TCP-lease")
		}
	}
	if p, r := byKey["nat-traversal/punching (default)"], byKey["nat-traversal/relay-only"]; p.Metrics != nil && r.Metrics != nil {
		if p.Metrics["N-N directs/node"] <= r.Metrics["N-N directs/node"] {
			bad = append(bad, "punching does not create more direct N↔N associations")
		}
		if p.Metrics["punches"] == 0 || r.Metrics["punches"] != 0 {
			bad = append(bad, "punch accounting inconsistent across variants")
		}
	}
	if plain, capped := byKey["view-bias/min-quota only"], byKey["view-bias/min-quota + cap"]; plain.Metrics != nil && capped.Metrics != nil {
		if capped.Metrics["quota-ok %"] < 50 {
			bad = append(bad, "cap variant fails the quota outright")
		}
	}
	if m2, m3 := byKey["mix-count/2 mixes"], byKey["mix-count/3 mixes"]; m2.Metrics != nil && m3.Metrics != nil {
		if m3.Metrics["first-try %"] < 50 {
			bad = append(bad, "3-mix paths mostly fail")
		}
	}
	base := byKey["faults/none (baseline)"]
	dup := byKey["faults/dup 5% + reorder"]
	burst := byKey["faults/burst loss"]
	if base.Metrics != nil && dup.Metrics != nil && burst.Metrics != nil {
		for _, r := range []AblationRow{base, dup, burst} {
			if r.Metrics["dup deliveries"] != 0 {
				bad = append(bad, "duplicate application delivery under faults/"+r.Variant)
			}
		}
		if dup.Metrics["ok %"] < 60 {
			bad = append(bad, "route success collapses under duplication+reordering")
		}
		if burst.Metrics["ok %"] < 50 {
			bad = append(bad, "route success collapses under burst loss")
		}
		if dup.Metrics["dups suppressed"] == 0 {
			bad = append(bad, "duplication variant suppressed no duplicate forwards")
		}
		if base.Metrics["dups suppressed"] != 0 {
			bad = append(bad, "baseline reports suppressed duplicates without a fault model")
		}
	}
	return bad
}

func pct(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}
