package exp

import (
	"encoding/json"
	"os"
	"sort"
	"sync"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/sim"
)

// RunStat is one machine-readable timing record: a single simulation
// run (or an experiment total) with its wall-clock cost, event
// throughput, and merged crypto CPU meters. The whisper-exp -benchjson
// flag writes these so successive PRs have a performance trajectory to
// compare against (BENCH_whisper.json in the repository root).
type RunStat struct {
	Name         string  `json:"name"`
	Faults       string  `json:"faults,omitempty"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	VirtualSec   float64 `json:"virtual_sec,omitempty"`
	AESms        float64 `json:"cpu_aes_ms,omitempty"`
	RSAms        float64 `json:"cpu_rsa_ms,omitempty"`
	ECCms        float64 `json:"cpu_ecc_ms,omitempty"`
	AESOps       uint64  `json:"aes_ops,omitempty"`
	RSAEncs      uint64  `json:"rsa_encs,omitempty"`
	RSADecs      uint64  `json:"rsa_decs,omitempty"`
	Signs        uint64  `json:"signs,omitempty"`
	Verifys      uint64  `json:"verifys,omitempty"`
	ECCEncs      uint64  `json:"ecc_encs,omitempty"`
	ECCDecs      uint64  `json:"ecc_decs,omitempty"`
	ECCSigns     uint64  `json:"ecc_signs,omitempty"`
	ECCVerifys   uint64  `json:"ecc_verifys,omitempty"`

	// Transfer-run fields (whisper-exp transfer): payload bytes moved
	// and virtual-time throughput per transport leg.
	Bytes    uint64  `json:"bytes,omitempty"`
	KBPerSec float64 `json:"kb_per_sec,omitempty"`

	// Scale-run fields (whisper-exp scale).
	Nodes           int     `json:"nodes,omitempty"`
	Shards          int     `json:"shards,omitempty"`
	Windows         uint64  `json:"windows,omitempty"`
	BytesPerNode    float64 `json:"bytes_per_node,omitempty"`
	MemBytesPerNode float64 `json:"mem_bytes_per_node,omitempty"`
}

// BenchMeta describes how a whisper-exp invocation was configured, so
// a whisper-bench/v1 blob is self-describing: two blobs are comparable
// only when their metadata matches.
type BenchMeta struct {
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Parallel   int     `json:"parallel"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Faults     string  `json:"faults,omitempty"`
}

// BenchLog collects RunStats from concurrent experiment runs. The
// zero value is ready to use; all methods are safe for concurrent use.
type BenchLog struct {
	mu   sync.Mutex
	meta BenchMeta
	runs []RunStat
}

// SetMeta records the invocation metadata embedded in the JSON output.
func (b *BenchLog) SetMeta(m BenchMeta) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.meta = m
	b.mu.Unlock()
}

// Record appends one stat.
func (b *BenchLog) Record(st RunStat) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.runs = append(b.runs, st)
	b.mu.Unlock()
}

// Runs returns a copy of the recorded stats sorted by name, so the
// JSON output is stable regardless of worker scheduling.
func (b *BenchLog) Runs() []RunStat {
	b.mu.Lock()
	out := make([]RunStat, len(b.runs))
	copy(out, b.runs)
	b.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON writes the log to path as an indented JSON document.
func (b *BenchLog) WriteJSON(path string) error {
	b.mu.Lock()
	meta := b.meta
	b.mu.Unlock()
	doc := struct {
		Schema string    `json:"schema"`
		Meta   BenchMeta `json:"meta"`
		Runs   []RunStat `json:"runs"`
	}{Schema: "whisper-bench/v1", Meta: meta, Runs: b.Runs()}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BenchSink, when non-nil, receives a RunStat for every simulation run
// the experiments execute. whisper-exp points it at a BenchLog when
// -benchjson is set; it is nil (and recording free) otherwise.
var BenchSink *BenchLog

// recordRun merges one finished run's meters into the bench sink.
func recordRun(name string, start time.Time, w *sim.World) {
	if BenchSink == nil {
		return
	}
	wall := time.Since(start)
	cpu := w.CPUTotal()
	st := RunStat{
		Name:       name,
		Faults:     w.Opts.Faults.String(),
		WallMS:     float64(wall.Microseconds()) / 1000,
		Events:     w.Executed(),
		VirtualSec: w.Now().Seconds(),
		AESms:      float64(cpu.AES.Microseconds()) / 1000,
		RSAms:      float64(cpu.RSA.Microseconds()) / 1000,
		ECCms:      float64(cpu.ECC.Microseconds()) / 1000,
		AESOps:     cpu.AESOps,
		RSAEncs:    cpu.RSAEncs,
		RSADecs:    cpu.RSADecs,
		Signs:      cpu.Signs,
		Verifys:    cpu.Verifys,
		ECCEncs:    cpu.ECCEncs,
		ECCDecs:    cpu.ECCDecs,
		ECCSigns:   cpu.ECCSigns,
		ECCVerifys: cpu.ECCVerifys,
	}
	if secs := wall.Seconds(); secs > 0 {
		st.EventsPerSec = float64(st.Events) / secs
	}
	BenchSink.Record(st)
}

// mergeCPU is a convenience for tests: the summed meters of runs.
func mergeCPU(ms []crypt.CPUMeter) crypt.CPUMeter {
	var out crypt.CPUMeter
	for _, m := range ms {
		out.Add(m)
	}
	return out
}
