package exp

import (
	"fmt"
	"io"
	"time"

	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

// CircuitConfig parameterizes the circuit-vs-one-shot comparison: the
// same confidential stream sent once over per-message onion routes
// (the paper's WCL) and once over an established circuit, measuring
// source-side crypto CPU. The circuit leg includes its setup cost, so
// the reported per-message figure is the amortized one at
// Messages messages per circuit.
type CircuitConfig struct {
	Seed     int64
	N        int // default 300
	Messages int // messages per leg (default 100, one rotation budget)
	Env      Env
}

func (c CircuitConfig) withDefaults() CircuitConfig {
	if c.N == 0 {
		c.N = 300
	}
	if c.Messages == 0 {
		c.Messages = 100
	}
	return c
}

// CircuitLeg is the measured cost of one leg of the comparison.
type CircuitLeg struct {
	Label     string
	Delivered int
	SourceCPU time.Duration // total source-side crypto CPU over the leg
	PerMsg    time.Duration // amortized per message
	RSAEncs   uint64        // source-side RSA encryptions over the leg
	AESOps    uint64        // source-side symmetric operations
}

// CircuitResult is the full comparison plus the steady-state claim:
// once established, Circuit.Send performs zero RSA operations.
type CircuitResult struct {
	Messages  int
	OneShot   CircuitLeg
	Circuit   CircuitLeg
	CPURatio  float64 // one-shot / circuit per-message source CPU
	SteadyRSA uint64  // source RSA ops after establishment (want 0)
}

// expDest assembles WCL destination info for target the way the PPSS
// would: the target's key plus helper P-nodes from its backlog.
func expDest(w *sim.World, target *sim.Node, maxHelpers int) wcl.Dest {
	d := wcl.Dest{ID: target.ID(), Key: target.Nylon.Identity().Public()}
	for _, e := range target.WCL.Backlog().Publics() {
		h := w.Get(e.Desc.ID)
		if h == nil {
			continue
		}
		d.Helpers = append(d.Helpers, wcl.Helper{
			ID:       h.ID(),
			Endpoint: h.Nylon.Addr(),
			Key:      h.Nylon.Identity().Public(),
		})
		if len(d.Helpers) >= maxHelpers {
			break
		}
	}
	return d
}

// Circuit runs both legs on one converged world: a NATted source
// streams Messages confidential payloads to a NATted destination,
// first as independent one-shot onion routes, then over a WCL circuit.
// Only the source's own CPU meter is read, and the world runs without
// PPSS gossip, so the deltas isolate exactly the send-path crypto.
func Circuit(cfg CircuitConfig) (CircuitResult, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	w, err := sim.NewWorld(sim.Options{
		Seed:     cfg.Seed,
		N:        cfg.N,
		NATRatio: 0.7,
		Model:    cfg.Env.Model(),
		KeyPool:  keyPool,
		WCL:      &wcl.Config{MinPublic: 3},
		Obs:      worldObs("circuit"),
	})
	if err != nil {
		return CircuitResult{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)

	natted := w.LiveNatted()
	if len(natted) < 2 {
		return CircuitResult{}, fmt.Errorf("only %d NATted nodes converged", len(natted))
	}
	src, dst := natted[0], natted[1]
	payload := []byte("circuit-vs-oneshot-probe-payload")

	res := CircuitResult{Messages: cfg.Messages}

	leg := func(label string, send func(wcl.Dest, []byte, func(wcl.Result))) CircuitLeg {
		l := CircuitLeg{Label: label}
		before := *src.WCL.CPU()
		for i := 0; i < cfg.Messages; i++ {
			send(expDest(w, dst, 3), payload, func(r wcl.Result) {
				if r.Outcome != wcl.Failed {
					l.Delivered++
				}
			})
			w.Sim.RunFor(2 * time.Second)
		}
		w.Sim.RunFor(30 * time.Second) // drain acknowledgements
		cur := *src.WCL.CPU()
		l.SourceCPU = (cur.AES - before.AES) + (cur.RSA - before.RSA)
		l.PerMsg = l.SourceCPU / time.Duration(cfg.Messages)
		l.RSAEncs = cur.RSAEncs - before.RSAEncs
		l.AESOps = cur.AESOps - before.AESOps
		return l
	}

	res.OneShot = leg("one-shot onion", src.WCL.Send)

	// The circuit leg: the first send carries the setup onion (that RSA
	// cost is inside the leg total and therefore amortized); after it
	// completes, every further cell must be RSA-free on the source.
	circLeg := CircuitLeg{Label: "circuit"}
	before := *src.WCL.CPU()
	send := func() {
		src.WCL.SendCircuit(expDest(w, dst, 3), payload, func(r wcl.Result) {
			if r.Outcome != wcl.Failed {
				circLeg.Delivered++
			}
		})
	}
	send()
	w.Sim.RunFor(10 * time.Second) // setup + first cell round trip
	established := src.WCL.HasCircuit(dst.ID())
	steady := *src.WCL.CPU()
	for i := 1; i < cfg.Messages; i++ {
		send()
		w.Sim.RunFor(2 * time.Second)
	}
	w.Sim.RunFor(30 * time.Second)
	cur := *src.WCL.CPU()
	circLeg.SourceCPU = (cur.AES - before.AES) + (cur.RSA - before.RSA)
	circLeg.PerMsg = circLeg.SourceCPU / time.Duration(cfg.Messages)
	circLeg.RSAEncs = cur.RSAEncs - before.RSAEncs
	circLeg.AESOps = cur.AESOps - before.AESOps
	res.Circuit = circLeg
	if established {
		res.SteadyRSA = (cur.RSAEncs - steady.RSAEncs) + (cur.RSADecs - steady.RSADecs) +
			(cur.Signs - steady.Signs) + (cur.Verifys - steady.Verifys)
	} else {
		res.SteadyRSA = ^uint64(0) // establishment failed; shape check reports it
	}

	if res.Circuit.PerMsg > 0 {
		res.CPURatio = float64(res.OneShot.PerMsg) / float64(res.Circuit.PerMsg)
	}
	recordRun("circuit", start, w)
	return res, nil
}

// PrintCircuit renders the comparison.
func PrintCircuit(out io.Writer, res CircuitResult) {
	fmt.Fprintf(out, "== Circuits: steady-state cost vs one-shot onion routes (%d messages) ==\n", res.Messages)
	tb := stats.NewTable("leg", "delivered", "source CPU", "per message", "RSA encs", "sym ops")
	for _, l := range []CircuitLeg{res.OneShot, res.Circuit} {
		tb.Row(l.Label,
			fmt.Sprintf("%d/%d", l.Delivered, res.Messages),
			fmt.Sprintf("%.2f ms", float64(l.SourceCPU.Microseconds())/1000),
			fmt.Sprintf("%.1f µs", float64(l.PerMsg.Nanoseconds())/1000),
			fmt.Sprint(l.RSAEncs),
			fmt.Sprint(l.AESOps))
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintf(out, "per-message source CPU ratio (one-shot / circuit): %.1fx\n", res.CPURatio)
	fmt.Fprintf(out, "source RSA operations after establishment: %d (want 0)\n", res.SteadyRSA)
}

// CircuitShapeCheck verifies the tentpole claims: circuits deliver,
// steady state is RSA-free, and the amortized per-message source CPU
// is at least 5x below the one-shot path.
func CircuitShapeCheck(res CircuitResult) []string {
	var bad []string
	if res.OneShot.Delivered < res.Messages*9/10 {
		bad = append(bad, fmt.Sprintf("one-shot leg delivered %d/%d", res.OneShot.Delivered, res.Messages))
	}
	if res.Circuit.Delivered < res.Messages*9/10 {
		bad = append(bad, fmt.Sprintf("circuit leg delivered %d/%d", res.Circuit.Delivered, res.Messages))
	}
	if res.SteadyRSA != 0 {
		bad = append(bad, fmt.Sprintf("steady-state circuit sends performed %d RSA operations, want 0", res.SteadyRSA))
	}
	if res.CPURatio < 5 {
		bad = append(bad, fmt.Sprintf("circuit per-message source CPU only %.1fx below one-shot, want >= 5x", res.CPURatio))
	}
	if res.Circuit.RSAEncs >= res.OneShot.RSAEncs {
		bad = append(bad, fmt.Sprintf("circuit leg paid %d RSA encryptions vs %d one-shot — setup not amortized",
			res.Circuit.RSAEncs, res.OneShot.RSAEncs))
	}
	return bad
}
