// Package exp reproduces every table and figure of the paper's
// evaluation (§V). Each experiment has a Config with the paper's
// parameters as defaults, a Run function returning structured results,
// and a Print function emitting the same rows/series the paper reports.
// The whisper-exp command drives them at paper scale; bench_test.go at
// reduced scale.
package exp

import (
	"fmt"
	"io"
	"time"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/obs"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

// Env selects the emulated testbed of §V-A.
type Env int

const (
	// Cluster is the 1 Gbps switched LAN testbed.
	Cluster Env = iota
	// PlanetLab is the global-scale, loaded testbed.
	PlanetLab
)

func (e Env) String() string {
	if e == PlanetLab {
		return "planetlab"
	}
	return "cluster"
}

// Model returns the latency model for the environment.
func (e Env) Model() netem.LatencyModel {
	if e == PlanetLab {
		return netem.DefaultPlanetLab()
	}
	return netem.Cluster{}
}

// keyPool caches a process-wide pool so repeated experiments do not pay
// RSA key generation each time.
var keyPool = identity.TestPool(64)

// ObsRoot, when non-nil, parents the metric instruments of every
// experiment world; whisper-exp points it at a registry scope when
// -metrics-out is set. Nil (the default) runs experiments unobserved,
// which the fig5 golden test pins as byte-identical.
var ObsRoot *obs.Scope

// worldObs derives the scope for one named run (nil when observability
// is off). The registry is concurrency-safe, so parallel runs share it;
// the run label keeps their node instruments apart.
func worldObs(run string) *obs.Scope { return ObsRoot.With("run", run) }

// runPool returns the key pool for run i of an experiment executing
// with the given worker count. The sequential path keeps the shared
// pool and its historical cursor (so -parallel 1 output is
// byte-identical to the sequential harness); concurrent runs each take
// an independent view whose draws depend only on the run index, never
// on sibling runs or scheduling. Key assignment does not influence
// protocol behavior — the pool deals shared moduli round-robin either
// way — so per-run results are identical across worker counts.
func runPool(workers, i int) *identity.Pool {
	if workers <= 1 {
		return keyPool
	}
	return keyPool.View(i)
}

// groupSet tracks the private groups of an experiment world.
type groupSet struct {
	w       *sim.World
	names   []string
	leaders []*ppss.Instance
	members map[ppss.GroupID][]*sim.Node
}

// formGroups creates count groups led by distinct nodes (preferring
// P-nodes, like the paper's Fig 8 setup) and subscribes each remaining
// node to groupsPerNode random groups. Joins are retried, as a user
// re-requesting an invitation would.
func formGroups(w *sim.World, count, groupsPerNode int) *groupSet {
	gs := &groupSet{w: w, members: make(map[ppss.GroupID][]*sim.Node)}
	leaders := w.LivePublics()
	if len(leaders) < count {
		leaders = w.Live()
	}
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("group-%d", i)
		inst, err := leaders[i%len(leaders)].PPSS.CreateGroup(name)
		if err != nil {
			continue
		}
		gs.names = append(gs.names, name)
		gs.leaders = append(gs.leaders, inst)
		gs.members[inst.Group()] = append(gs.members[inst.Group()], leaders[i%len(leaders)])
	}
	if len(gs.names) == 0 {
		return gs // zero groups requested (tiny -scale runs)
	}
	rng := w.Sim.Rand()
	for _, n := range w.Live() {
		if n.PPSS == nil || len(n.PPSS.Instances()) > 0 {
			continue // leaders already belong to their group
		}
		for g := 0; g < groupsPerNode; g++ {
			gi := rng.Intn(len(gs.names))
			gs.join(n, gi, 1)
			w.Sim.RunFor(time.Second)
		}
	}
	return gs
}

// join subscribes node to group gi with retries.
func (gs *groupSet) join(node *sim.Node, gi, attempt int) {
	leader := gs.leaders[gi]
	name := gs.names[gi]
	accr, entry, err := leader.Invite(node.ID())
	if err != nil {
		return
	}
	node.PPSS.Join(name, accr, entry, func(inst *ppss.Instance, err error) {
		if err != nil {
			if attempt < 3 && !node.Nylon.Stopped() {
				gs.join(node, gi, attempt+1)
			}
			return
		}
		g := inst.Group()
		gs.members[g] = append(gs.members[g], node)
	})
}

// JoinRandom subscribes a (churn-arrived) node to one random group.
func (gs *groupSet) JoinRandom(node *sim.Node) {
	if len(gs.names) == 0 {
		return
	}
	gs.join(node, gs.w.Sim.Rand().Intn(len(gs.names)), 1)
}

// aggregateWCL sums WCL statistics across live nodes.
func aggregateWCL(w *sim.World) wcl.Stats {
	var out wcl.Stats
	for _, n := range w.Live() {
		if n.WCL == nil {
			continue
		}
		s := n.WCL.Stats()
		out.Sent += s.Sent
		out.FirstTrySuccess += s.FirstTrySuccess
		out.AltSuccess += s.AltSuccess
		out.Failed += s.Failed
		out.NoAltFailed += s.NoAltFailed
		out.MixesTriedSum += s.MixesTriedSum
		out.HelpersTriedSum += s.HelpersTriedSum
		out.Delivered += s.Delivered
		out.ForwardsPeeled += s.ForwardsPeeled
		out.PeelErrors += s.PeelErrors
		out.DropNoContact += s.DropNoContact
		out.DupForwards += s.DupForwards
		out.DupDeliveries += s.DupDeliveries
	}
	return out
}

// printCDF emits a sampled CDF as "value fraction" rows.
func printCDF(w io.Writer, label string, cdf []stats.CDFPoint, points int, format string) {
	fmt.Fprintf(w, "# CDF: %s\n", label)
	for _, p := range stats.SampleCDF(cdf, points) {
		fmt.Fprintf(w, format+" %.4f\n", p.Value, p.Fraction)
	}
}

// durationsToSeconds converts a duration sample to float seconds.
func durationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}
