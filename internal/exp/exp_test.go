package exp

import (
	"io"
	"strings"
	"testing"
	"time"

	"whisper/internal/ppss"
)

// The experiment tests run every figure/table at reduced scale and
// assert the paper's qualitative findings (the shape checks) hold.
// They are the cross-module integration tests of the whole repository.

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(Fig5Config{Seed: 61, N: 250, Runtime: 6 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	for _, v := range Fig5ShapeCheck(res) {
		t.Error(v)
	}
	// Print must produce the CDF series without panicking.
	var sb strings.Builder
	PrintFig5(&sb, res)
	if !strings.Contains(sb.String(), "in-degree P-nodes (Pi=3)") {
		t.Error("missing CDF series in output")
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6(Fig6Config{
		Seed: 62, N: 250,
		Warmup: 4 * time.Minute, Measure: 4 * time.Minute,
		Ratios: []float64{0.7}, PiValues: []int{1, 3}, KeyBlobSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // unbiased, unbiased+KS, Pi=1+KS, Pi=3+KS
		t.Fatalf("rows = %d", len(rows))
	}
	for _, v := range Fig6ShapeCheck(rows) {
		t.Error(v)
	}
	PrintFig6(io.Discard, rows)
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(Table1Config{
		Seed: 63, N: 250, Groups: 5, Rates: []float64{0, 5},
		Warmup: 8 * time.Minute, Window: 8 * time.Minute,
		PPSS: ppss.Config{KeyBlobSize: 256}, KeyBlob: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Table1ShapeCheck(rows) {
		t.Error(v)
	}
	if rows[0].SuccessPct < 99 {
		t.Errorf("no-churn success %.1f%%, paper reports 100%%", rows[0].SuccessPct)
	}
	if rows[1].SuccessPct >= rows[0].SuccessPct {
		t.Error("churn did not reduce first-try success")
	}
	PrintTable1(io.Discard, rows)
}

func TestFig7Shape(t *testing.T) {
	var results []Fig7Result
	for _, env := range []Env{Cluster, PlanetLab} {
		res, err := Fig7(Fig7Config{
			Seed: 64, N: 150, Groups: 3, Exchanges: 200,
			Warmup: 8 * time.Minute, MaxRun: 15 * time.Minute,
			PPSS: ppss.Config{KeyBlobSize: 256}, KeyBlob: 256,
		}, env)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for _, v := range Fig7ShapeCheck(results) {
		t.Error(v)
	}
	// Environment separation: the cluster is much faster.
	if results[0].RTTMedian*10 > results[1].RTTMedian {
		t.Errorf("cluster rtt %.4fs not ≪ planetlab rtt %.4fs",
			results[0].RTTMedian, results[1].RTTMedian)
	}
	PrintFig7(io.Discard, results)
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(Table2Config{
		Seed: 65, N: 200, Groups: 4, Cycles: 3,
		Warmup: 8 * time.Minute,
		PPSS:   ppss.Config{KeyBlobSize: 256}, KeyBlob: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Table2ShapeCheck(res) {
		t.Error(v)
	}
	PrintTable2(io.Discard, res)
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8(Fig8Config{
		Seed: 66, N: 100, Groups: 24, GroupsPerNode: []int{1, 4},
		Warmup: 6 * time.Minute, Measure: 6 * time.Minute,
		PPSS: ppss.Config{KeyBlobSize: 256}, KeyBlob: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Fig8ShapeCheck(rows) {
		t.Error(v)
	}
	// Roughly linear growth: 4 groups should cost noticeably more than 1.
	if rows[1].NUp.P50 < rows[0].NUp.P50*2 {
		t.Errorf("4 groups/node upload (%.3f) not ≫ 1 group/node (%.3f)",
			rows[1].NUp.P50, rows[0].NUp.P50)
	}
	PrintFig8(io.Discard, rows)
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(Fig9Config{
		Seed: 67, N: 120, GroupSize: 16, Queries: 60,
		Warmup: 10 * time.Minute, RingTime: 8 * time.Minute,
		PPSS: ppss.Config{Cycle: 30 * time.Second, KeyBlobSize: 256}, KeyBlob: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Fig9ShapeCheck(res) {
		t.Error(v)
	}
	PrintFig9(io.Discard, res)
}

func TestCircuitShape(t *testing.T) {
	res, err := Circuit(CircuitConfig{Seed: 69, N: 150, Messages: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range CircuitShapeCheck(res) {
		t.Error(v)
	}
	if res.SteadyRSA != 0 {
		t.Errorf("steady-state RSA ops = %d, want 0", res.SteadyRSA)
	}
	var sb strings.Builder
	PrintCircuit(&sb, res)
	if !strings.Contains(sb.String(), "per-message source CPU ratio") {
		t.Error("missing ratio line in output")
	}
}

func TestTransferShape(t *testing.T) {
	cfg := TransferConfig{Seed: 69, N: 150, Messages: 4, MessageKB: 16}
	res, err := Transfer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range TransferShapeCheck(res) {
		t.Error(v)
	}
	// Same seed, same config: the fingerprint must reproduce exactly.
	again, err := Transfer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != again.Fingerprint {
		t.Errorf("fingerprint not deterministic: %016x != %016x", res.Fingerprint, again.Fingerprint)
	}
	var sb strings.Builder
	PrintTransfer(&sb, res)
	if !strings.Contains(sb.String(), "fingerprint:") {
		t.Error("missing fingerprint line in output")
	}
	if !strings.Contains(sb.String(), "stream throughput vs one-shot") {
		t.Error("missing throughput ratio line in output")
	}
}

func TestAblationsShape(t *testing.T) {
	rows, err := Ablations(AblateConfig{
		Seed: 68, N: 200, Groups: 4,
		Warmup: 8 * time.Minute, Measure: 6 * time.Minute, KeyBlob: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 { // 4 studies × 2 variants + faults × 3
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	for _, v := range AblationShapeCheck(rows) {
		t.Error(v)
	}
	PrintAblations(io.Discard, rows)
}

func TestSuitesShape(t *testing.T) {
	res, err := Suites(SuitesConfig{Seed: 69, N: 150, Messages: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range SuitesShapeCheck(res) {
		t.Error(v)
	}
	var sb strings.Builder
	PrintSuites(&sb, res)
	if !strings.Contains(sb.String(), "rsa2048 / ecc") {
		t.Error("missing ratio line in output")
	}
}
