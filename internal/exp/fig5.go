package exp

import (
	"fmt"
	"io"
	"time"

	"whisper/internal/nylon"
	"whisper/internal/parallel"
	"whisper/internal/sim"
	"whisper/internal/stats"
)

// Fig5Config parameterizes the biased-PSS experiment (§V-B): the impact
// of enforcing Π P-nodes per view on clustering and in-degrees.
type Fig5Config struct {
	Seed     int64
	N        int           // paper: 1,000
	ViewSize int           // paper: 10
	NATRatio float64       // paper: 0.7
	Runtime  time.Duration // settling time before the snapshot
	PiValues []int         // paper: 0..3
	Env      Env
	// CapExcessPublic exercises the second bias (ablation).
	CapExcessPublic bool
	// Parallel bounds the worker pool running the independent Π runs
	// (<= 0: one worker per CPU; 1: sequential).
	Parallel int
}

func (c Fig5Config) withDefaults() Fig5Config {
	if c.N == 0 {
		c.N = 1000
	}
	if c.ViewSize == 0 {
		c.ViewSize = 10
	}
	if c.NATRatio == 0 {
		c.NATRatio = 0.7
	}
	if c.Runtime == 0 {
		c.Runtime = 10 * time.Minute // 60 PSS cycles
	}
	if c.PiValues == nil {
		c.PiValues = []int{0, 1, 2, 3}
	}
	return c
}

// Fig5Result is the overlay quality snapshot for one Π.
type Fig5Result struct {
	Pi            int
	ClusteringCDF []stats.CDFPoint
	InDegreeNCDF  []stats.CDFPoint
	InDegreePCDF  []stats.CDFPoint
	AvgClustering float64
	AvgInDegreeN  float64
	AvgInDegreeP  float64
	QuotaViolated int // views below Π at snapshot time
	Nodes         int
}

// Fig5 runs the biased PSS for each Π — the runs are independent, so
// they execute on the worker pool — and snapshots overlay quality.
func Fig5(cfg Fig5Config) ([]Fig5Result, error) {
	cfg = cfg.withDefaults()
	workers := parallel.Workers(cfg.Parallel)
	return parallel.Map(workers, len(cfg.PiValues), func(i int) (Fig5Result, error) {
		pi := cfg.PiValues[i]
		start := time.Now()
		w, err := sim.NewWorld(sim.Options{
			Seed:     cfg.Seed + int64(pi),
			N:        cfg.N,
			NATRatio: cfg.NATRatio,
			Model:    cfg.Env.Model(),
			KeyPool:  runPool(workers, i),
			Nylon: nylon.Config{
				ViewSize:        cfg.ViewSize,
				MinPublic:       pi,
				CapExcessPublic: cfg.CapExcessPublic,
			},
			Obs: worldObs(fmt.Sprintf("fig5/pi=%d", pi)),
		})
		if err != nil {
			return Fig5Result{}, err
		}
		w.StartAll()
		w.Sim.RunUntil(cfg.Runtime)
		res := snapshotFig5(w, pi)
		recordRun(fmt.Sprintf("fig5/pi=%d", pi), start, w)
		return res, nil
	})
}

func snapshotFig5(w *sim.World, pi int) Fig5Result {
	// The lazy stream feeds the same metric code as the eager snapshot
	// (value-identical — the fig5 golden pins it) without materializing
	// the adjacency map.
	g := w.GraphStream()
	cc := g.ClusteringCoefficients()
	in := g.InDegrees()

	res := Fig5Result{Pi: pi, Nodes: len(w.Live())}
	var ccVals, inN, inP []float64
	for _, n := range w.Live() {
		ccVals = append(ccVals, cc[n.ID()])
		if n.Public() {
			inP = append(inP, float64(in[n.ID()]))
		} else {
			inN = append(inN, float64(in[n.ID()]))
		}
		pubs := 0
		for _, e := range n.Nylon.View() {
			if e.Val.Public {
				pubs++
			}
		}
		if pubs < pi {
			res.QuotaViolated++
		}
	}
	res.ClusteringCDF = stats.CDF(ccVals)
	res.InDegreeNCDF = stats.CDF(inN)
	res.InDegreePCDF = stats.CDF(inP)
	res.AvgClustering = stats.Summarize(ccVals).Mean
	res.AvgInDegreeN = stats.Summarize(inN).Mean
	res.AvgInDegreeP = stats.Summarize(inP).Mean
	return res
}

// PrintFig5 renders the figure data: summary table plus CDF series.
func PrintFig5(out io.Writer, results []Fig5Result) {
	fmt.Fprintln(out, "== Figure 5: Biased PSS — impact on clustering and in-degree distribution ==")
	tb := stats.NewTable("Pi", "avg clustering", "avg in-deg N", "avg in-deg P", "views<Pi", "nodes")
	for _, r := range results {
		tb.Row(r.Pi, fmt.Sprintf("%.4f", r.AvgClustering), r.AvgInDegreeN, r.AvgInDegreeP, r.QuotaViolated, r.Nodes)
	}
	fmt.Fprint(out, tb.String())
	for _, r := range results {
		printCDF(out, fmt.Sprintf("local clustering coefficient (Pi=%d)", r.Pi), r.ClusteringCDF, 12, "%.4f")
	}
	for _, r := range results {
		printCDF(out, fmt.Sprintf("in-degree N-nodes (Pi=%d)", r.Pi), r.InDegreeNCDF, 12, "%.0f")
	}
	for _, r := range results {
		printCDF(out, fmt.Sprintf("in-degree P-nodes (Pi=%d)", r.Pi), r.InDegreePCDF, 12, "%.0f")
	}
}

// Fig5ShapeCheck verifies the paper's qualitative findings: the bias
// leaves clustering essentially unchanged while raising P-node
// in-degree monotonically with Π, and the quota holds. It returns a
// list of violated expectations (empty = shape reproduced).
func Fig5ShapeCheck(results []Fig5Result) []string {
	var bad []string
	if len(results) < 2 {
		return []string{"need at least two Π values"}
	}
	base := results[0]
	for _, r := range results[1:] {
		if r.AvgClustering > base.AvgClustering*2+0.05 {
			bad = append(bad, fmt.Sprintf("clustering at Pi=%d (%.3f) far above baseline (%.3f)", r.Pi, r.AvgClustering, base.AvgClustering))
		}
		// With a 30%% P-node population and c=10, views satisfy Π≤3
		// mostly organically (as the paper's own modest CDF shifts
		// show); the bias must never *reduce* P-node in-degree though.
		if r.AvgInDegreeP < base.AvgInDegreeP*0.9 {
			bad = append(bad, fmt.Sprintf("P-node in-degree at Pi=%d dropped below baseline", r.Pi))
		}
		if r.QuotaViolated > r.Nodes/20 {
			bad = append(bad, fmt.Sprintf("Pi=%d quota violated in %d/%d views", r.Pi, r.QuotaViolated, r.Nodes))
		}
	}
	return bad
}
