package exp

import (
	"fmt"
	"io"
	"time"

	"whisper/internal/nylon"
	"whisper/internal/parallel"
	"whisper/internal/sim"
	"whisper/internal/stats"
)

// Fig6Config parameterizes the public-key sampling cost experiment
// (§V-C): average bandwidth per PSS cycle under various Π and P:N
// ratios, with and without key exchange.
type Fig6Config struct {
	Seed    int64
	N       int           // paper: 1,000
	Warmup  time.Duration // settling time before measuring
	Measure time.Duration // measurement window
	Cycle   time.Duration // PSS cycle (paper: 10 s)
	// Ratios are the N-node fractions to test (paper: 0.8, 0.7, 0.5).
	Ratios []float64
	// PiValues with key sampling enabled (paper: 1, 2, 3); Π=0 runs
	// both without keys (pure baseline) and with key sampling.
	PiValues    []int
	KeyBlobSize int // paper: 1 KB keys
	Env         Env
	// Parallel bounds the worker pool running the independent
	// ratio×setup runs (<= 0: one worker per CPU; 1: sequential).
	Parallel int
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.N == 0 {
		c.N = 1000
	}
	if c.Warmup == 0 {
		c.Warmup = 5 * time.Minute
	}
	if c.Measure == 0 {
		c.Measure = 5 * time.Minute
	}
	if c.Cycle == 0 {
		c.Cycle = 10 * time.Second
	}
	if c.Ratios == nil {
		c.Ratios = []float64{0.8, 0.7, 0.5}
	}
	if c.PiValues == nil {
		c.PiValues = []int{1, 2, 3}
	}
	if c.KeyBlobSize == 0 {
		c.KeyBlobSize = 1024
	}
	return c
}

// Fig6Row is one bar group of the figure: bandwidth per cycle for N-
// and P-nodes under one configuration.
type Fig6Row struct {
	Config   string  // "unbiased", "unbiased+KS", "Pi=1+KS", ...
	NATRatio float64 // N-node fraction
	// KB per PSS cycle, averaged per node over the window.
	NUpKB, NDownKB float64
	PUpKB, PDownKB float64
}

// Fig6 measures PSS+key-sampling bandwidth for every configuration.
func Fig6(cfg Fig6Config) ([]Fig6Row, error) {
	cfg = cfg.withDefaults()
	type setup struct {
		label string
		pi    int
		keys  bool
	}
	setups := []setup{{"unbiased", 0, false}, {"unbiased+KS", 0, true}}
	for _, pi := range cfg.PiValues {
		setups = append(setups, setup{fmt.Sprintf("Pi=%d+KS", pi), pi, true})
	}
	// Flatten ratio×setup into one job list (ratio outer, setup inner —
	// the sequential harness's nesting order) so the worker pool sees
	// every independent run.
	type job struct {
		ratio float64
		st    setup
	}
	var jobs []job
	for _, ratio := range cfg.Ratios {
		for _, st := range setups {
			jobs = append(jobs, job{ratio, st})
		}
	}
	workers := parallel.Workers(cfg.Parallel)
	return parallel.Map(workers, len(jobs), func(i int) (Fig6Row, error) {
		ratio, st := jobs[i].ratio, jobs[i].st
		start := time.Now()
		w, err := sim.NewWorld(sim.Options{
			Seed:     cfg.Seed,
			N:        cfg.N,
			NATRatio: ratio,
			Model:    cfg.Env.Model(),
			KeyPool:  runPool(workers, i),
			Nylon: nylon.Config{
				Cycle:       cfg.Cycle,
				MinPublic:   st.pi,
				KeySampling: st.keys,
				KeyBlobSize: cfg.KeyBlobSize,
			},
			Obs: worldObs(fmt.Sprintf("fig6/ratio=%.1f/%s", ratio, st.label)),
		})
		if err != nil {
			return Fig6Row{}, err
		}
		w.StartAll()
		w.Sim.RunUntil(cfg.Warmup)
		w.ResetMeters()
		w.Sim.RunFor(cfg.Measure)

		cycles := float64(cfg.Measure) / float64(cfg.Cycle)
		var nUp, nDown, pUp, pDown []float64
		for _, n := range w.Live() {
			m := n.Nylon.Meter()
			up, down := m.UpKB()/cycles, m.DownKB()/cycles
			if n.Public() {
				pUp = append(pUp, up)
				pDown = append(pDown, down)
			} else {
				nUp = append(nUp, up)
				nDown = append(nDown, down)
			}
		}
		recordRun(fmt.Sprintf("fig6/ratio=%.1f/%s", ratio, st.label), start, w)
		return Fig6Row{
			Config:   st.label,
			NATRatio: ratio,
			NUpKB:    stats.Summarize(nUp).Mean,
			NDownKB:  stats.Summarize(nDown).Mean,
			PUpKB:    stats.Summarize(pUp).Mean,
			PDownKB:  stats.Summarize(pDown).Mean,
		}, nil
	})
}

// PrintFig6 renders the bandwidth table.
func PrintFig6(out io.Writer, rows []Fig6Row) {
	fmt.Fprintln(out, "== Figure 6: Public Key Sampling Service — bandwidth costs (KB/cycle per node) ==")
	tb := stats.NewTable("N:P ratio", "config", "N up", "N down", "P up", "P down")
	for _, r := range rows {
		tb.Row(fmt.Sprintf("N:%.0f%%-P:%.0f%%", r.NATRatio*100, (1-r.NATRatio)*100),
			r.Config, r.NUpKB, r.NDownKB, r.PUpKB, r.PDownKB)
	}
	fmt.Fprint(out, tb.String())
}

// Fig6ShapeCheck verifies the paper's qualitative findings: key
// sampling adds visible cost over the bare PSS, cost grows with Π,
// P-nodes pay more than N-nodes under bias, and everything stays within
// the "very reasonable margins" regime (a few KB per cycle).
func Fig6ShapeCheck(rows []Fig6Row) []string {
	var bad []string
	byConfig := map[string]map[float64]Fig6Row{}
	for _, r := range rows {
		if byConfig[r.Config] == nil {
			byConfig[r.Config] = map[float64]Fig6Row{}
		}
		byConfig[r.Config][r.NATRatio] = r
	}
	for ratio, base := range byConfig["unbiased"] {
		ks, ok := byConfig["unbiased+KS"][ratio]
		if !ok {
			continue
		}
		if ks.NUpKB <= base.NUpKB {
			bad = append(bad, fmt.Sprintf("ratio %.1f: key sampling did not increase N-node upload", ratio))
		}
	}
	for _, r := range rows {
		if r.Config == "Pi=3+KS" && r.PUpKB+r.PDownKB < r.NUpKB+r.NDownKB {
			bad = append(bad, fmt.Sprintf("ratio %.1f: P-nodes cheaper than N-nodes at Pi=3", r.NATRatio))
		}
		if r.PUpKB > 40 || r.NUpKB > 40 {
			bad = append(bad, fmt.Sprintf("%s at ratio %.1f: bandwidth out of the reasonable regime", r.Config, r.NATRatio))
		}
	}
	return bad
}
