package exp

import (
	"fmt"
	"io"
	"time"

	"whisper/internal/identity"
	"whisper/internal/obs"
	"whisper/internal/parallel"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

// Fig7Config parameterizes the anonymizing-route delay experiment
// (§V-E): the breakdown of PPSS view-exchange round-trip times over WCL
// channels into network routing and cryptographic costs.
type Fig7Config struct {
	Seed   int64
	N      int // cluster: 1,000; PlanetLab: 400
	Groups int
	Env    Env
	// Exchanges is the number of round-trips to sample (paper: 1,500).
	Exchanges int
	Warmup    time.Duration
	MaxRun    time.Duration // budget after warmup
	PPSS      ppss.Config
	KeyBlob   int
	// Parallel bounds the worker pool when several configs run through
	// Fig7Runs (<= 0: one worker per CPU; 1: sequential).
	Parallel int
}

func (c Fig7Config) withDefaults(env Env) Fig7Config {
	c.Env = env
	if c.N == 0 {
		if env == PlanetLab {
			c.N = 400
		} else {
			c.N = 1000
		}
	}
	if c.Groups == 0 {
		c.Groups = c.N / 50
	}
	if c.Exchanges == 0 {
		c.Exchanges = 1500
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * time.Minute
	}
	if c.MaxRun == 0 {
		c.MaxRun = 30 * time.Minute
	}
	if c.KeyBlob == 0 {
		c.KeyBlob = 1024
	}
	return c
}

// Fig7Result holds the delay breakdown distributions for one testbed.
type Fig7Result struct {
	Env       Env
	RTTCDF    []stats.CDFPoint // seconds: full private view exchange RTT
	BuildCDF  []stats.CDFPoint // seconds: onion path construction (request & response)
	PeelCDF   []stats.CDFPoint // seconds: per-hop RSA decrypt (request & response)
	RTTMedian float64
	Samples   int
}

// tracer collects WCL path-construction and peeling costs across all
// nodes of a run. It is a plain obs.Collector: it sees durations only,
// never path identifiers.
type tracer struct {
	builds []time.Duration
	peels  []time.Duration
}

func (t *tracer) Record(_ uint64, ev obs.Event) {
	switch ev.Kind {
	case obs.KindSend:
		t.builds = append(t.builds, ev.Dur)
	case obs.KindPeel:
		t.peels = append(t.peels, ev.Dur)
	}
}

// Fig7 measures the breakdown on one environment (sequentially, on the
// shared key pool). Fig7Runs fans several environments out to the
// worker pool.
func Fig7(cfg Fig7Config, env Env) (Fig7Result, error) {
	return fig7Run(cfg, env, keyPool)
}

// Fig7Runs measures the breakdown for every config concurrently; the
// worker count comes from the first config's Parallel field.
func Fig7Runs(cfgs []Fig7Config) ([]Fig7Result, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	workers := parallel.Workers(cfgs[0].Parallel)
	return parallel.Map(workers, len(cfgs), func(i int) (Fig7Result, error) {
		return fig7Run(cfgs[i], cfgs[i].Env, runPool(workers, i))
	})
}

func fig7Run(cfg Fig7Config, env Env, pool *identity.Pool) (Fig7Result, error) {
	cfg = cfg.withDefaults(env)
	start := time.Now()
	pcfg := cfg.PPSS
	if pcfg.KeyBlobSize == 0 {
		pcfg.KeyBlobSize = cfg.KeyBlob
	}
	w, err := sim.NewWorld(sim.Options{
		Seed:     cfg.Seed,
		N:        cfg.N,
		NATRatio: 0.7,
		Model:    env.Model(),
		KeyPool:  pool,
		WCL:      &wcl.Config{MinPublic: 3},
		PPSS:     &pcfg,
		Obs:      worldObs("fig7/" + env.String()),
	})
	if err != nil {
		return Fig7Result{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)
	formGroups(w, cfg.Groups, 1)
	w.Sim.RunUntil(cfg.Warmup)

	tr := &tracer{}
	var rtts []time.Duration
	for _, n := range w.Live() {
		if n.WCL == nil {
			continue
		}
		n.WCL.Trace = obs.NewTracer(uint64(n.Nylon.ID()), tr)
		for _, inst := range n.PPSS.Instances() {
			inst.OnExchangeRTT = func(rtt time.Duration) {
				rtts = append(rtts, rtt)
			}
		}
	}
	deadline := w.Sim.Now() + cfg.MaxRun
	for len(rtts) < cfg.Exchanges && w.Sim.Now() < deadline {
		w.Sim.RunFor(30 * time.Second)
	}

	res := Fig7Result{Env: env, Samples: len(rtts)}
	rttS := durationsToSeconds(rtts)
	res.RTTCDF = stats.CDF(rttS)
	res.BuildCDF = stats.CDF(durationsToSeconds(tr.builds))
	res.PeelCDF = stats.CDF(durationsToSeconds(tr.peels))
	res.RTTMedian = stats.Percentile(rttS, 50)
	recordRun(fmt.Sprintf("fig7/%s", env), start, w)
	return res, nil
}

// PrintFig7 renders the breakdown distributions.
func PrintFig7(out io.Writer, results []Fig7Result) {
	fmt.Fprintln(out, "== Figure 7: breakdown of PPSS view-exchange round-trip times over WCL ==")
	for _, r := range results {
		fmt.Fprintf(out, "-- %s (%d exchanges sampled) --\n", r.Env, r.Samples)
		tb := stats.NewTable("component", "p50 (s)", "p90 (s)", "p99 (s)")
		row := func(name string, cdf []stats.CDFPoint) {
			vals := make([]float64, 0, len(cdf))
			for _, p := range cdf {
				vals = append(vals, p.Value)
			}
			ps := stats.Percentiles(vals, 50, 90, 99)
			tb.Row(name, fmt.Sprintf("%.6f", ps[0]), fmt.Sprintf("%.6f", ps[1]), fmt.Sprintf("%.6f", ps[2]))
		}
		row("total rtt", r.RTTCDF)
		row("build WCL path (req+resp)", r.BuildCDF)
		row("RSA decrypt per hop (req+resp)", r.PeelCDF)
		fmt.Fprint(out, tb.String())
		printCDF(out, fmt.Sprintf("%s total rtt (s)", r.Env), r.RTTCDF, 12, "%.4f")
		printCDF(out, fmt.Sprintf("%s path build (s)", r.Env), r.BuildCDF, 12, "%.6f")
		printCDF(out, fmt.Sprintf("%s peel (s)", r.Env), r.PeelCDF, 12, "%.6f")
	}
}

// Fig7ShapeCheck verifies the paper's qualitative findings: network
// delay dominates — crypto is roughly two orders of magnitude below the
// RTT — and the absolute RTT regimes hold (cluster well under a second,
// PlanetLab mostly within a couple of seconds).
func Fig7ShapeCheck(results []Fig7Result) []string {
	var bad []string
	for _, r := range results {
		if r.Samples == 0 {
			bad = append(bad, fmt.Sprintf("%s: no exchanges sampled", r.Env))
			continue
		}
		buildP50 := cdfPercentile(r.BuildCDF, 50)
		if buildP50*10 > r.RTTMedian {
			bad = append(bad, fmt.Sprintf("%s: onion build (%.4fs) not ≪ rtt (%.4fs)", r.Env, buildP50, r.RTTMedian))
		}
		switch r.Env {
		case Cluster:
			if frac := stats.CDFAt(r.RTTCDF, 0.5); frac < 0.95 {
				bad = append(bad, fmt.Sprintf("cluster: only %.0f%% of exchanges under 500 ms", frac*100))
			}
		case PlanetLab:
			if frac := stats.CDFAt(r.RTTCDF, 2.0); frac < 0.8 {
				bad = append(bad, fmt.Sprintf("planetlab: only %.0f%% of exchanges under 2 s (paper: >80%%)", frac*100))
			}
		}
	}
	return bad
}

func cdfPercentile(cdf []stats.CDFPoint, p float64) float64 {
	for _, pt := range cdf {
		if pt.Fraction*100 >= p {
			return pt.Value
		}
	}
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1].Value
}
