package exp

import (
	"fmt"
	"io"
	"time"

	"whisper/internal/identity"
	"whisper/internal/parallel"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

// Fig8Config parameterizes the multi-group bandwidth experiment (§V-F):
// 400 nodes on the PlanetLab model, 120 private groups (each P-node
// creates and leads one), with the number of subscriptions per node
// swept logarithmically from 1 to 32.
type Fig8Config struct {
	Seed          int64
	N             int   // paper: 400
	Groups        int   // paper: 120
	GroupsPerNode []int // paper: 1,2,4,8,16,32
	Warmup        time.Duration
	Measure       time.Duration
	PPSS          ppss.Config
	KeyBlob       int
	// Parallel bounds the worker pool running the independent
	// subscriptions-per-node runs (<= 0: one worker per CPU; 1:
	// sequential).
	Parallel int
}

func (c Fig8Config) withDefaults() Fig8Config {
	if c.N == 0 {
		c.N = 400
	}
	if c.Groups == 0 {
		c.Groups = 120
	}
	if c.GroupsPerNode == nil {
		c.GroupsPerNode = []int{1, 2, 4, 8, 16, 32}
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * time.Minute
	}
	if c.Measure == 0 {
		c.Measure = 10 * time.Minute
	}
	if c.KeyBlob == 0 {
		c.KeyBlob = 1024
	}
	return c
}

// Fig8Row is one x-position of the figure: the stacked percentiles of
// per-node bandwidth for one subscription count.
type Fig8Row struct {
	GroupsPerNode  int
	PUp, PDown     stats.Stack // KB/s per P-node
	NUp, NDown     stats.Stack // KB/s per N-node
	MeanSubscribed float64     // achieved subscriptions per node
}

// Fig8 sweeps the number of groups per node, one worker per count.
func Fig8(cfg Fig8Config) ([]Fig8Row, error) {
	cfg = cfg.withDefaults()
	workers := parallel.Workers(cfg.Parallel)
	return parallel.Map(workers, len(cfg.GroupsPerNode), func(i int) (Fig8Row, error) {
		return fig8Run(cfg, cfg.GroupsPerNode[i], runPool(workers, i))
	})
}

func fig8Run(cfg Fig8Config, groupsPerNode int, pool *identity.Pool) (Fig8Row, error) {
	start := time.Now()
	pcfg := cfg.PPSS
	if pcfg.KeyBlobSize == 0 {
		pcfg.KeyBlobSize = cfg.KeyBlob
	}
	w, err := sim.NewWorld(sim.Options{
		Seed:     cfg.Seed,
		N:        cfg.N,
		NATRatio: 0.7,
		Model:    PlanetLab.Model(),
		KeyPool:  pool,
		WCL:      &wcl.Config{MinPublic: 3},
		PPSS:     &pcfg,
		Obs:      worldObs(fmt.Sprintf("fig8/groups=%d", groupsPerNode)),
	})
	if err != nil {
		return Fig8Row{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)
	formGroups(w, cfg.Groups, groupsPerNode)
	w.Sim.RunUntil(cfg.Warmup)
	w.ResetMeters()
	w.Sim.RunFor(cfg.Measure)

	secs := cfg.Measure.Seconds()
	var pUp, pDown, nUp, nDown []float64
	subs := 0
	for _, n := range w.Live() {
		m := n.Nylon.Meter()
		up, down := m.UpKB()/secs, m.DownKB()/secs
		if n.Public() {
			pUp = append(pUp, up)
			pDown = append(pDown, down)
		} else {
			nUp = append(nUp, up)
			nDown = append(nDown, down)
		}
		if n.PPSS != nil {
			subs += len(n.PPSS.Instances())
		}
	}
	recordRun(fmt.Sprintf("fig8/groups=%d", groupsPerNode), start, w)
	return Fig8Row{
		GroupsPerNode:  groupsPerNode,
		PUp:            stats.StackOf(pUp),
		PDown:          stats.StackOf(pDown),
		NUp:            stats.StackOf(nUp),
		NDown:          stats.StackOf(nDown),
		MeanSubscribed: float64(subs) / float64(len(w.Live())),
	}, nil
}

// PrintFig8 renders the stacked-percentile series.
func PrintFig8(out io.Writer, rows []Fig8Row) {
	fmt.Fprintln(out, "== Figure 8: bandwidth vs. number of private groups per node (KB/s, stacked percentiles) ==")
	tb := stats.NewTable("groups/node", "class dir", "p5", "p25", "p50", "p75", "p90")
	for _, r := range rows {
		add := func(label string, s stats.Stack) {
			tb.Row(r.GroupsPerNode, label,
				fmt.Sprintf("%.3f", s.P5), fmt.Sprintf("%.3f", s.P25), fmt.Sprintf("%.3f", s.P50),
				fmt.Sprintf("%.3f", s.P75), fmt.Sprintf("%.3f", s.P90))
		}
		add("P-up", r.PUp)
		add("P-down", r.PDown)
		add("N-up", r.NUp)
		add("N-down", r.NDown)
	}
	fmt.Fprint(out, tb.String())
}

// Fig8ShapeCheck verifies the qualitative claims: bandwidth grows
// roughly linearly with subscriptions and P-nodes carry more load than
// N-nodes.
func Fig8ShapeCheck(rows []Fig8Row) []string {
	var bad []string
	if len(rows) < 2 {
		return []string{"need at least two subscription counts"}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].NUp.P50 < rows[i-1].NUp.P50 {
			bad = append(bad, fmt.Sprintf("N-node upload median decreased from %d to %d groups/node",
				rows[i-1].GroupsPerNode, rows[i].GroupsPerNode))
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	factor := float64(last.GroupsPerNode) / float64(first.GroupsPerNode)
	if last.NUp.P50 < first.NUp.P50*factor/4 {
		bad = append(bad, "growth with subscriptions is far from linear")
	}
	for _, r := range rows {
		if r.PUp.P50+r.PDown.P50 < r.NUp.P50+r.NDown.P50 {
			bad = append(bad, fmt.Sprintf("%d groups/node: P-nodes carry less than N-nodes", r.GroupsPerNode))
		}
	}
	return bad
}
