package exp

import (
	"fmt"
	"io"
	"time"

	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/tchord"
	"whisper/internal/wcl"
)

// Fig9Config parameterizes the private T-Chord experiment (§V-G): a
// 60-node private group inside a 400-node cluster network bootstraps a
// Chord ring with T-Chord, then routes 350 random queries; the figure
// is the CDF of their end-to-end delays.
type Fig9Config struct {
	Seed      int64
	N         int // paper: 400
	GroupSize int // paper: 60
	Queries   int // paper: 350
	Env       Env
	Warmup    time.Duration // PPSS convergence before T-Chord starts
	RingTime  time.Duration // T-Chord convergence time
	PPSS      ppss.Config
	TChord    tchord.Config
	KeyBlob   int
}

func (c Fig9Config) withDefaults() Fig9Config {
	if c.N == 0 {
		c.N = 400
	}
	if c.GroupSize == 0 {
		c.GroupSize = 60
	}
	if c.Queries == 0 {
		c.Queries = 350
	}
	if c.Warmup == 0 {
		c.Warmup = 12 * time.Minute
	}
	if c.RingTime == 0 {
		c.RingTime = 10 * time.Minute
	}
	if c.KeyBlob == 0 {
		c.KeyBlob = 1024
	}
	return c
}

// Fig9Result holds the routing-delay distribution.
type Fig9Result struct {
	DelayCDF    []stats.CDFPoint // seconds
	Completed   int
	Failed      int
	MedianDelay float64
	MaxHops     int
	RingCorrect int // nodes with the true successor
	RingSize    int
}

// Fig9 builds the private index and routes the queries.
func Fig9(cfg Fig9Config) (Fig9Result, error) {
	cfg = cfg.withDefaults()
	wallStart := time.Now()
	pcfg := cfg.PPSS
	if pcfg.KeyBlobSize == 0 {
		pcfg.KeyBlobSize = cfg.KeyBlob
	}
	pcfg = pcfgWithDefaults(pcfg)
	w, err := sim.NewWorld(sim.Options{
		Seed:     cfg.Seed,
		N:        cfg.N,
		NATRatio: 0.7,
		Model:    cfg.Env.Model(),
		KeyPool:  keyPool,
		WCL:      &wcl.Config{MinPublic: 3},
		PPSS:     &pcfg,
		Obs:      worldObs("fig9"),
	})
	if err != nil {
		return Fig9Result{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)

	// One private group of GroupSize members.
	members := w.Live()[:cfg.GroupSize]
	leader, err := members[0].PPSS.CreateGroup("private-index")
	if err != nil {
		return Fig9Result{}, err
	}
	g := ppss.GroupIDFromName("private-index")
	var joinFn func(n *sim.Node, attempt int)
	joinFn = func(n *sim.Node, attempt int) {
		accr, entry, err := leader.Invite(n.ID())
		if err != nil {
			return
		}
		n.PPSS.Join("private-index", accr, entry, func(_ *ppss.Instance, err error) {
			if err != nil && attempt < 3 {
				joinFn(n, attempt+1)
			}
		})
	}
	for _, m := range members[1:] {
		joinFn(m, 1)
		w.Sim.RunFor(2 * time.Second)
	}
	w.Sim.RunUntil(cfg.Warmup)

	tcfg := cfg.TChord
	tcfg.PinRing = true
	var ring []*tchord.Node
	for _, m := range members {
		inst := m.PPSS.Instance(g)
		if inst == nil {
			continue
		}
		node := tchord.New(inst, tcfg)
		node.Start()
		ring = append(ring, node)
	}
	w.Sim.RunFor(cfg.RingTime)

	// Route the queries from random members to random keys.
	var res Fig9Result
	res.RingSize = len(ring)
	var delays []float64
	rng := w.Sim.Rand()
	for i := 0; i < cfg.Queries; i++ {
		src := ring[rng.Intn(len(ring))]
		key := tchord.KeyID(fmt.Sprintf("query-%d", i))
		start := w.Sim.Now()
		src.Lookup(key, func(r tchord.LookupResult) {
			if r.Err != nil {
				res.Failed++
				return
			}
			res.Completed++
			delays = append(delays, (w.Sim.Now() - start).Seconds())
			if r.Hops > res.MaxHops {
				res.MaxHops = r.Hops
			}
		})
		w.Sim.RunFor(2 * time.Second)
	}
	w.Sim.RunFor(2 * time.Minute)

	res.DelayCDF = stats.CDF(delays)
	res.MedianDelay = stats.Percentile(delays, 50)
	res.RingCorrect = ringCorrectness(ring)
	recordRun("fig9", wallStart, w)
	return res, nil
}

// ringCorrectness counts nodes whose successor matches the true ring.
func ringCorrectness(ring []*tchord.Node) int {
	ids := make([]tchord.ChordID, len(ring))
	for i, n := range ring {
		ids[i] = n.ID()
	}
	// Successor of x = smallest id > x (wrapping).
	trueSucc := func(x tchord.ChordID) tchord.ChordID {
		var best tchord.ChordID
		found := false
		var min tchord.ChordID
		minSet := false
		for _, id := range ids {
			if !minSet || id < min {
				min, minSet = id, true
			}
			if id > x && (!found || id < best) {
				best, found = id, true
			}
		}
		if !found {
			return min
		}
		return best
	}
	correct := 0
	for _, n := range ring {
		succ, ok := n.Successor()
		if ok && tchord.IDOf(succ.ID) == trueSucc(n.ID()) {
			correct++
		}
	}
	return correct
}

// PrintFig9 renders the delay distribution.
func PrintFig9(out io.Writer, res Fig9Result) {
	fmt.Fprintln(out, "== Figure 9: T-Chord routing delays in a private group ==")
	tb := stats.NewTable("metric", "value")
	tb.Row("ring size", res.RingSize)
	tb.Row("correct successors", fmt.Sprintf("%d/%d", res.RingCorrect, res.RingSize))
	tb.Row("queries completed", res.Completed)
	tb.Row("queries failed", res.Failed)
	tb.Row("median delay (s)", fmt.Sprintf("%.3f", res.MedianDelay))
	tb.Row("max hops", res.MaxHops)
	fmt.Fprint(out, tb.String())
	printCDF(out, "T-Chord routing delay (s)", res.DelayCDF, 14, "%.3f")
}

// Fig9ShapeCheck verifies the qualitative claims: queries overwhelmingly
// complete, the ring is (nearly) perfect, and the delay range spans from
// sub-second short routes to a small number of seconds for long ones.
func Fig9ShapeCheck(res Fig9Result) []string {
	var bad []string
	total := res.Completed + res.Failed
	if total == 0 {
		return []string{"no queries ran"}
	}
	if float64(res.Completed) < 0.9*float64(total) {
		bad = append(bad, fmt.Sprintf("only %d/%d queries completed", res.Completed, total))
	}
	if res.RingCorrect < res.RingSize*8/10 {
		bad = append(bad, fmt.Sprintf("ring only %d/%d correct", res.RingCorrect, res.RingSize))
	}
	if res.MedianDelay > 3 {
		bad = append(bad, fmt.Sprintf("median delay %.2fs outside the paper's regime (≤1.5s)", res.MedianDelay))
	}
	return bad
}
