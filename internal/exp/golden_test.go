package exp

import (
	"flag"
	"os"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata golden files with current output")

// TestFig5Golden pins the exact output of a small Figure 5 run at a
// fixed seed against a golden file generated before the transport
// refactor. The simulated substrate promises event-for-event
// determinism; any change to protocol logic, the scheduler, RNG
// consumption order, or the transport/simnet adapter that shifts even
// one event shows up here as a byte-level diff.
//
// Regenerate (only after an intentional behavior change) with:
//
//	go test ./internal/exp -run TestFig5Golden -update-golden
func TestFig5Golden(t *testing.T) {
	res, err := Fig5(Fig5Config{
		Seed:     42,
		N:        60,
		NATRatio: 0.7,
		Runtime:  2 * time.Minute,
		PiValues: []int{0, 2},
		Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintFig5(&sb, res)
	got := sb.String()

	const path = "testdata/fig5_seed42.golden"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("fig5 output diverged from golden at line %d:\n got: %q\nwant: %q", i+1, g, w)
		}
	}
	t.Fatal("fig5 output diverged from golden (length mismatch)")
}
