package exp

import (
	"reflect"
	"testing"
	"time"
)

// fig5TestConfig is a small Fig5 setup used by the determinism test and
// the harness benchmark: four independent runs, enough nodes to exercise
// the full stack.
func fig5TestConfig(parallel int) Fig5Config {
	return Fig5Config{
		Seed:     71,
		N:        120,
		Runtime:  4 * time.Minute,
		PiValues: []int{0, 1, 2, 3},
		Parallel: parallel,
	}
}

// TestParallelMatchesSequential is the harness's core guarantee: each
// (config, seed) run owns a private Sim and a scheduling-independent
// key-pool view, so running the same experiment with 1 worker and with
// several workers must produce identical per-run results, in the same
// order.
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := Fig5(fig5TestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig5(fig5TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("sequential %d results, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		// The sequential path draws keys from the shared process-wide
		// pool (whose cursor depends on test order), the parallel path
		// from per-run views — but key assignment must not influence
		// results, so everything measured has to match exactly.
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("run %d (Pi=%d): parallel result differs from sequential", i, seq[i].Pi)
		}
	}
}

// TestBenchSinkRecordsEveryRun checks the bench log sees one stat per
// simulation run with merged CPU meters, regardless of worker count.
func TestBenchSinkRecordsEveryRun(t *testing.T) {
	old := BenchSink
	defer func() { BenchSink = old }()
	BenchSink = &BenchLog{}

	cfg := fig5TestConfig(2)
	cfg.PiValues = []int{0, 2}
	if _, err := Fig5(cfg); err != nil {
		t.Fatal(err)
	}
	runs := BenchSink.Runs()
	if len(runs) != 2 {
		t.Fatalf("recorded %d runs, want 2", len(runs))
	}
	// Runs() sorts by name, so the order is pi=0, pi=2.
	for i, want := range []string{"fig5/pi=0", "fig5/pi=2"} {
		if runs[i].Name != want {
			t.Errorf("run %d name = %q, want %q", i, runs[i].Name, want)
		}
		if runs[i].Events == 0 {
			t.Errorf("%s: no events recorded", want)
		}
		if runs[i].VirtualSec == 0 {
			t.Errorf("%s: no virtual time recorded", want)
		}
	}
}

// BenchmarkParallelExpHarness times a full Fig5 sweep through the
// worker pool at GOMAXPROCS workers. Compare with -parallel 1 via
// BenchmarkSequentialExpHarness to see the multi-core speedup; on a
// single-core machine the two are expected to tie.
func BenchmarkParallelExpHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig5(fig5TestConfig(0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialExpHarness is the -parallel 1 baseline.
func BenchmarkSequentialExpHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig5(fig5TestConfig(1)); err != nil {
			b.Fatal(err)
		}
	}
}
