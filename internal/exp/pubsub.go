package exp

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"time"

	"whisper/internal/broadcast"
	"whisper/internal/identity"
	"whisper/internal/ppss"
	"whisper/internal/pubsub"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

// PubSubConfig parameterizes the topic pub/sub experiment: one private
// group whose members subscribe to overlapping topic sets, a fixed
// publication schedule driven through the bloom-filter-routed pub/sub
// layer, and the identical schedule replayed over the naive full-group
// broadcast — comparing delivery ratio and relay bandwidth. A final
// offline sweep measures the filter false-positive rate across filter
// sizes, the plausible-deniability dial.
type PubSubConfig struct {
	Seed            int64
	N               int // overlay size (default 160)
	Members         int // group size (default 24)
	Topics          int // distinct topics (default 8)
	TopicsPerMember int // subscriptions per member (default 2)
	Rounds          int // publish rounds; each round publishes once per topic (default 6)
	PayloadBytes    int // plaintext bytes per publication (default 64)
	FilterBits      int // live filter size m (default pubsub.DefaultFilterBits)
	Env             Env
}

func (c PubSubConfig) withDefaults() PubSubConfig {
	if c.N == 0 {
		c.N = 160
	}
	if c.Members == 0 {
		c.Members = 24
	}
	if c.Topics == 0 {
		c.Topics = 8
	}
	if c.TopicsPerMember == 0 {
		c.TopicsPerMember = 2
	}
	if c.Rounds == 0 {
		c.Rounds = 6
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 64
	}
	if c.FilterBits == 0 {
		c.FilterBits = pubsub.DefaultFilterBits
	}
	return c
}

// PubSubLeg is the measured outcome of one dissemination strategy over
// the same publication schedule.
type PubSubLeg struct {
	Label      string
	Delivered  uint64 // subscriber deliveries (deduplicated)
	Expected   uint64 // publications x subscribers of that topic
	Ratio      float64
	RelayBytes uint64 // encoded bytes relays put on the wire
	Forwards   uint64
}

// FPPoint is one measured false-positive rate of the offline filter
// sweep.
type FPPoint struct {
	Bits int
	Rate float64
}

// PubSubResult is the full comparison plus a determinism fingerprint
// (CI runs the experiment twice with one seed and diffs the
// fingerprint lines).
type PubSubResult struct {
	Members int // members that actually joined
	Topics  int
	Rounds  int

	PubSub PubSubLeg
	Naive  PubSubLeg

	BytesRatio float64 // pub/sub relay bytes over naive relay bytes

	Duplicates     uint64 // duplicate envelope receptions suppressed
	FalsePositives uint64 // own-filter matches on unsubscribed topics (live traffic)
	Undecryptable  uint64 // must stay 0: every subscriber holds the topic key

	FPSweep []FPPoint

	Fingerprint uint64
}

// PubSub runs the experiment: converge an overlay, form one private
// group, subscribe members to overlapping topics, let subscription
// digests gossip, then publish the schedule twice — once through the
// filter-routed pub/sub, once through the full-group broadcast — and
// compare what the relays paid.
func PubSub(cfg PubSubConfig) (PubSubResult, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	w, err := sim.NewWorld(sim.Options{
		Seed:     cfg.Seed,
		N:        cfg.N,
		NATRatio: 0.7,
		Model:    cfg.Env.Model(),
		KeyPool:  keyPool,
		WCL:      &wcl.Config{MinPublic: 3},
		PPSS:     &ppss.Config{Cycle: 20 * time.Second, KeyBlobSize: 256, MinHelpers: 3},
		Obs:      worldObs("pubsub"),
	})
	if err != nil {
		return PubSubResult{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)

	live := w.Live()
	publics := w.LivePublics()
	if len(publics) == 0 || len(live) < 4 {
		return PubSubResult{}, fmt.Errorf("world did not converge: %d live, %d public", len(live), len(publics))
	}
	if cfg.Members > len(live) {
		cfg.Members = len(live)
	}

	// One private group, onboarded the way the paper's PPSS does:
	// a public leader creates it and invites the members, joins
	// retried as a user re-requesting an invitation would.
	leader, err := publics[0].PPSS.CreateGroup("pubsub")
	if err != nil {
		return PubSubResult{}, fmt.Errorf("create group: %w", err)
	}
	candidates := make([]*sim.Node, 0, cfg.Members-1)
	for _, n := range live {
		if n != publics[0] && len(candidates) < cfg.Members-1 {
			candidates = append(candidates, n)
		}
	}
	var tryJoin func(n *sim.Node, attempt int)
	tryJoin = func(n *sim.Node, attempt int) {
		accr, entry, err := leader.Invite(n.ID())
		if err != nil {
			return
		}
		n.PPSS.Join("pubsub", accr, entry, func(_ *ppss.Instance, err error) {
			if err != nil && attempt < 3 && !n.Nylon.Stopped() {
				tryJoin(n, attempt+1)
			}
		})
	}
	for i, n := range candidates {
		tryJoin(n, 1)
		if i%4 == 3 {
			w.RunFor(5 * time.Second)
		}
	}
	w.RunFor(3 * time.Minute)

	g := leader.Group()
	nodes := append([]*sim.Node{publics[0]}, candidates...)
	var insts []*ppss.Instance
	for _, n := range nodes {
		if inst := n.PPSS.Instance(g); inst != nil {
			insts = append(insts, inst)
		}
	}
	res := PubSubResult{Members: len(insts), Topics: cfg.Topics, Rounds: cfg.Rounds}
	if len(insts) < 4 {
		return res, fmt.Errorf("only %d/%d members joined the group", len(insts), cfg.Members)
	}

	topics := make([]string, cfg.Topics)
	for t := range topics {
		topics[t] = fmt.Sprintf("topic-%d", t)
	}

	// Overlapping subscriptions: member i takes TopicsPerMember
	// consecutive topics starting at i*TopicsPerMember (mod Topics), so
	// every topic ends up with Members*TopicsPerMember/Topics
	// subscribers.
	endpoints := make([]*pubsub.PubSub, len(insts))
	subs := make([]map[string]bool, len(insts))
	subscribers := make(map[string]uint64, cfg.Topics)
	for i, inst := range insts {
		endpoints[i] = pubsub.New(inst, pubsub.Config{FilterBits: cfg.FilterBits})
		subs[i] = make(map[string]bool, cfg.TopicsPerMember)
		for j := 0; j < cfg.TopicsPerMember; j++ {
			topic := topics[(i*cfg.TopicsPerMember+j)%cfg.Topics]
			if subs[i][topic] {
				continue
			}
			subs[i][topic] = true
			if err := endpoints[i].Subscribe(topic); err != nil {
				return res, err
			}
			subscribers[topic]++
		}
	}

	// Let the subscription digests piggyback through the group shuffles
	// until every member holds (close to) the full digest table.
	w.RunFor(6 * time.Minute)

	// Deterministic payloads from the experiment seed, independent of
	// the world's rng so protocol scheduling is untouched.
	prng := rand.New(rand.NewSource(cfg.Seed ^ 0x707562737562)) // "pubsub"
	payload := func() []byte {
		b := make([]byte, cfg.PayloadBytes)
		prng.Read(b)
		return b
	}

	// Leg 1: the filter-routed pub/sub.
	for round := 0; round < cfg.Rounds; round++ {
		for t, topic := range topics {
			pub := endpoints[(round+t)%len(endpoints)]
			if err := pub.Publish(topic, payload()); err != nil {
				return res, err
			}
			res.PubSub.Expected += subscribers[topic]
		}
		w.RunFor(20 * time.Second)
	}
	w.RunFor(2 * time.Minute)

	res.PubSub.Label = "pubsub"
	for _, ep := range endpoints {
		s := ep.Stats()
		res.PubSub.Delivered += s.Delivered
		res.PubSub.RelayBytes += s.BytesForwarded
		res.PubSub.Forwards += s.Forwards
		res.Duplicates += s.Duplicates
		res.FalsePositives += s.FalsePositives
		res.Undecryptable += s.Undecryptable
	}
	if res.PubSub.Expected > 0 {
		res.PubSub.Ratio = float64(res.PubSub.Delivered) / float64(res.PubSub.Expected)
	}

	// Leg 2: the same schedule over the naive full-group broadcast —
	// every member receives every message and discards the ones it has
	// no interest in. The payload carries the topic tag in clear within
	// the group (the broadcast layer encrypts hop-by-hop), so receivers
	// can count subscriber-relevant deliveries.
	bcs := make([]*broadcast.Broadcaster, len(insts))
	naiveDelivered := uint64(0)
	for i, inst := range insts {
		i := i
		bcs[i] = broadcast.New(inst, broadcast.Config{})
		bcs[i].OnDeliver = func(_ identity.NodeID, p []byte) {
			if len(p) < 4 {
				return
			}
			var tag pubsub.TopicTag
			copy(tag[:], p[:4])
			for topic := range subs[i] {
				if pubsub.HashTopic(topic) == tag {
					naiveDelivered++
					return
				}
			}
		}
	}
	for round := 0; round < cfg.Rounds; round++ {
		for t, topic := range topics {
			tag := pubsub.HashTopic(topic)
			bcs[(round+t)%len(bcs)].Publish(append(tag[:], payload()...))
			res.Naive.Expected += subscribers[topic]
		}
		w.RunFor(20 * time.Second)
	}
	w.RunFor(2 * time.Minute)

	res.Naive.Label = "naive-broadcast"
	res.Naive.Delivered = naiveDelivered
	for _, bc := range bcs {
		s := bc.Stats()
		res.Naive.RelayBytes += s.ForwardBytes
		res.Naive.Forwards += s.Forwards
	}
	if res.Naive.Expected > 0 {
		res.Naive.Ratio = float64(res.Naive.Delivered) / float64(res.Naive.Expected)
	}
	if res.Naive.RelayBytes > 0 {
		res.BytesRatio = float64(res.PubSub.RelayBytes) / float64(res.Naive.RelayBytes)
	}

	// Offline false-positive sweep: rebuild each member's filter at
	// several sizes and probe with topics nobody publishes. The rates
	// are the plausible-deniability dial of §IV: smaller filters hide
	// interests better at the cost of wasted forwards.
	res.FPSweep = fpSweep(subs, topics, []int{16, 32, 64, 256})

	h := fnv.New64a()
	for _, leg := range []PubSubLeg{res.PubSub, res.Naive} {
		fmt.Fprintf(h, "%s|%d|%d|%d|%d;", leg.Label, leg.Delivered, leg.Expected, leg.RelayBytes, leg.Forwards)
	}
	fmt.Fprintf(h, "dup=%d;fp=%d;undec=%d;members=%d", res.Duplicates, res.FalsePositives, res.Undecryptable, res.Members)
	for _, p := range res.FPSweep {
		fmt.Fprintf(h, ";m%d=%.6f", p.Bits, p.Rate)
	}
	res.Fingerprint = h.Sum64()

	if BenchSink != nil {
		virtual := w.Now().Seconds()
		BenchSink.Record(RunStat{Name: "pubsub/deliver", VirtualSec: virtual, Bytes: res.PubSub.RelayBytes})
		BenchSink.Record(RunStat{Name: "pubsub/naive", VirtualSec: virtual, Bytes: res.Naive.RelayBytes})
	}
	recordRun("pubsub", start, w)
	return res, nil
}

// fpSweep measures, for each filter size m, the fraction of probes for
// unsubscribed topics that a member's filter (k = default hashes)
// wrongly matches. Probes are the real topics the member skipped plus
// 56 topics nobody subscribes to.
func fpSweep(subs []map[string]bool, topics []string, sizes []int) []FPPoint {
	probes := make([]pubsub.TopicTag, 0, len(topics)+56)
	probeSub := make([]string, 0, len(topics)+56)
	for _, t := range topics {
		probes = append(probes, pubsub.HashTopic(t))
		probeSub = append(probeSub, t)
	}
	for i := 0; i < 56; i++ {
		probes = append(probes, pubsub.HashTopic(fmt.Sprintf("probe-%d", i)))
		probeSub = append(probeSub, "")
	}
	out := make([]FPPoint, 0, len(sizes))
	for _, m := range sizes {
		hits, trials := 0, 0
		for _, sub := range subs {
			f := pubsub.NewFilter(m, pubsub.DefaultFilterHashes)
			for t := range sub {
				f.Add(pubsub.HashTopic(t))
			}
			for i, tag := range probes {
				if probeSub[i] != "" && sub[probeSub[i]] {
					continue // true positive, not a trial
				}
				trials++
				if f.Test(tag) {
					hits++
				}
			}
		}
		rate := 0.0
		if trials > 0 {
			rate = float64(hits) / float64(trials)
		}
		out = append(out, FPPoint{Bits: m, Rate: rate})
	}
	return out
}

// PrintPubSub renders the comparison.
func PrintPubSub(out io.Writer, res PubSubResult) {
	fmt.Fprintf(out, "== Topic pub/sub over a private group: %d members, %d topics, %d rounds ==\n",
		res.Members, res.Topics, res.Rounds)
	tb := stats.NewTable("leg", "delivered", "ratio", "relay bytes", "forwards")
	for _, l := range []PubSubLeg{res.PubSub, res.Naive} {
		tb.Row(l.Label,
			fmt.Sprintf("%d/%d", l.Delivered, l.Expected),
			fmt.Sprintf("%.3f", l.Ratio),
			fmt.Sprint(l.RelayBytes),
			fmt.Sprint(l.Forwards))
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintf(out, "relay bandwidth vs naive broadcast: %.2fx\n", res.BytesRatio)
	fmt.Fprintf(out, "duplicates suppressed: %d   live false positives: %d   undecryptable: %d\n",
		res.Duplicates, res.FalsePositives, res.Undecryptable)
	fmt.Fprintln(out, "# measured filter false-positive rate (k=4, probes on unsubscribed topics)")
	for _, p := range res.FPSweep {
		fmt.Fprintf(out, "m=%-4d %.4f\n", p.Bits, p.Rate)
	}
	fmt.Fprintf(out, "fingerprint: %016x\n", res.Fingerprint)
}

// PubSubShapeCheck verifies the tentpole claims: near-total delivery
// through the filters, relay bandwidth strictly below the naive flood,
// no undecryptable envelopes, and a false-positive rate that falls as
// the filter grows.
func PubSubShapeCheck(res PubSubResult) []string {
	var bad []string
	if res.PubSub.Ratio < 0.99 {
		bad = append(bad, fmt.Sprintf("pub/sub delivery ratio %.3f, want >= 0.99", res.PubSub.Ratio))
	}
	if res.Topics >= 4 && res.Naive.RelayBytes > 0 && res.PubSub.RelayBytes >= res.Naive.RelayBytes {
		bad = append(bad, fmt.Sprintf("pub/sub relay bytes %d not below naive broadcast %d", res.PubSub.RelayBytes, res.Naive.RelayBytes))
	}
	if res.Undecryptable != 0 {
		bad = append(bad, fmt.Sprintf("%d undecryptable envelopes at subscribers, want 0", res.Undecryptable))
	}
	if n := len(res.FPSweep); n >= 2 {
		first, last := res.FPSweep[0], res.FPSweep[n-1]
		if first.Rate <= 0 {
			bad = append(bad, fmt.Sprintf("m=%d false-positive rate is 0, expected measurable", first.Bits))
		}
		if last.Rate >= first.Rate && first.Rate > 0 {
			bad = append(bad, fmt.Sprintf("false-positive rate did not fall from m=%d (%.4f) to m=%d (%.4f)",
				first.Bits, first.Rate, last.Bits, last.Rate))
		}
		for i := 1; i < n; i++ {
			if res.FPSweep[i].Rate > res.FPSweep[i-1].Rate+0.01 {
				bad = append(bad, fmt.Sprintf("false-positive rate rose from m=%d to m=%d", res.FPSweep[i-1].Bits, res.FPSweep[i].Bits))
			}
		}
	}
	return bad
}
