package exp

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"whisper/internal/sim"
)

// ScaleConfig drives the large-population throughput run of the sharded
// engine. Unlike the paper figures it reproduces no published plot; it
// exists to measure how far the simulator itself scales (events/sec,
// bytes and resident memory per node) and to pin determinism of the
// sharded schedule in CI.
type ScaleConfig struct {
	Seed int64
	// N is the population; the acceptance floor for the full run is
	// 100k nodes (default).
	N int
	// Shards is the number of event shards (default 8).
	Shards int
	// Runtime is the virtual time simulated (default 2 minutes — enough
	// for every node to complete several shuffle rounds).
	Runtime time.Duration
	// Env selects the latency model. The harness runs PlanetLab: its
	// 20ms latency floor gives the conservative synchronizer a wide
	// lookahead window, so barriers stay rare relative to events.
	Env Env
	// NATRatio is the fraction of NATted nodes (default 0.7, §V-A).
	NATRatio float64
	// Rollup, when non-nil, receives streamed per-window rollups as
	// virtual time advances (at most once per simulated second). The
	// rollup carries only O(1) engine counters, so long runs can show
	// liveness and throughput without any per-node scan until the run
	// ends.
	Rollup func(ScaleRollup)
}

// ScaleRollup is one streamed progress rollup, emitted from the
// engine's window hook while the run is in flight.
type ScaleRollup struct {
	Now     time.Duration // virtual time reached
	Total   time.Duration // virtual time target
	Events  uint64        // events executed so far
	Windows uint64        // windows completed so far
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.N == 0 {
		c.N = 100_000
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Runtime == 0 {
		c.Runtime = 2 * time.Minute
	}
	if c.NATRatio == 0 {
		c.NATRatio = 0.7
	}
	return c
}

// settledHeap returns HeapAlloc after a double-GC settle: the first
// collection frees ordinary garbage, the second reclaims objects whose
// finalizers (or sync.Pool slots) the first pass only queued. Without
// it the heap delta swings by whatever transient garbage the last
// window produced.
func settledHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// ScaleResult is one completed scale run.
type ScaleResult struct {
	Nodes   int
	Shards  int
	Runtime time.Duration // virtual
	Wall    time.Duration

	Events       uint64
	EventsPerSec float64
	Windows      uint64
	Sent         uint64
	Dropped      uint64
	Live         int
	ZeroShuffles int // live nodes that completed no shuffle at all

	BytesPerNode    float64 // gossip traffic (up+down) per node
	MemBytesPerNode float64 // heap growth attributable to the world
}

// Scale builds a sharded world of cfg.N Nylon nodes and runs it for
// cfg.Runtime of virtual time, measuring simulator throughput. The
// stack is PSS-only: at this population the point is the event engine,
// not the crypto layers, and a pure-Nylon node keeps per-node cost low
// enough that a single process holds 100k+ of them.
func Scale(cfg ScaleConfig) (ScaleResult, error) {
	cfg = cfg.withDefaults()

	before := settledHeap()

	w, err := sim.NewWorld(sim.Options{
		Seed:     cfg.Seed,
		N:        cfg.N,
		Shards:   cfg.Shards,
		NATRatio: cfg.NATRatio,
		Model:    cfg.Env.Model(),
		KeyPool:  keyPool,
		Obs:      worldObs("scale"),
	})
	if err != nil {
		return ScaleResult{}, err
	}

	if cfg.Rollup != nil && w.Sharded() {
		// The hook runs single-threaded at window barriers (workers
		// joined), so the engine counters it reads are settled; each
		// rollup is O(1), never a node scan.
		eng := w.Engine()
		var last time.Duration
		eng.SetWindowHook(func(_, end time.Duration) {
			if end-last >= time.Second {
				last = end
				cfg.Rollup(ScaleRollup{
					Now:     end,
					Total:   cfg.Runtime,
					Events:  eng.Executed(),
					Windows: eng.Windows(),
				})
			}
		})
	}

	w.StartAll()
	start := time.Now()
	w.RunUntil(cfg.Runtime)
	wall := time.Since(start)

	res := ScaleResult{
		Nodes:   cfg.N,
		Shards:  cfg.Shards,
		Runtime: cfg.Runtime,
		Wall:    wall,
		Events:  w.Executed(),
		Live:    w.LiveCount(),
	}
	if w.Sharded() {
		res.Windows = w.Engine().Windows()
	}
	res.Sent, res.Dropped = w.NetStats()
	if secs := wall.Seconds(); secs > 0 {
		res.EventsPerSec = float64(res.Events) / secs
	}
	var bytes uint64
	for _, n := range w.Live() {
		s := n.Nylon.Meter().Snapshot()
		bytes += s.UpBytes + s.DownBytes
		if n.Nylon.Stats().ShufflesCompleted == 0 {
			res.ZeroShuffles++
		}
	}
	res.BytesPerNode = float64(bytes) / float64(cfg.N)
	// Heap growth from before the world existed to end-of-run (world
	// still reachable), amortized per node. Both sides settle with a
	// double GC so the delta measures retained state, not transient
	// garbage awaiting finalizer-driven collection.
	after := settledHeap()
	if after > before {
		res.MemBytesPerNode = float64(after-before) / float64(cfg.N)
	}
	runtime.KeepAlive(w)

	if BenchSink != nil {
		st := RunStat{
			Name:            "scale",
			WallMS:          float64(wall.Microseconds()) / 1000,
			Events:          res.Events,
			EventsPerSec:    res.EventsPerSec,
			VirtualSec:      cfg.Runtime.Seconds(),
			Nodes:           res.Nodes,
			Shards:          res.Shards,
			Windows:         res.Windows,
			BytesPerNode:    res.BytesPerNode,
			MemBytesPerNode: res.MemBytesPerNode,
		}
		BenchSink.Record(st)
	}
	return res, nil
}

// PrintScale writes the human-readable report plus a deterministic
// fingerprint line. The fingerprint carries only schedule-derived
// counters (never wall-clock), so two runs with the same (seed, config,
// shards) must print identical fingerprints — CI diffs exactly that.
func PrintScale(out io.Writer, r ScaleResult) {
	fmt.Fprintln(out, "== Scale: sharded engine throughput ==")
	fmt.Fprintf(out, "nodes=%d shards=%d virtual=%v\n", r.Nodes, r.Shards, r.Runtime)
	fmt.Fprintf(out, "wall=%.2fs events=%d events/sec=%.0f windows=%d\n",
		r.Wall.Seconds(), r.Events, r.EventsPerSec, r.Windows)
	fmt.Fprintf(out, "sent=%d dropped=%d live=%d zero-shuffle-nodes=%d\n",
		r.Sent, r.Dropped, r.Live, r.ZeroShuffles)
	fmt.Fprintf(out, "bytes/node=%.0f mem-bytes/node=%.0f\n",
		r.BytesPerNode, r.MemBytesPerNode)
	fmt.Fprintf(out, "fingerprint: n=%d shards=%d events=%d sent=%d dropped=%d live=%d windows=%d\n",
		r.Nodes, r.Shards, r.Events, r.Sent, r.Dropped, r.Live, r.Windows)
}

// ScaleShapeCheck flags runs where the engine plainly misbehaved.
func ScaleShapeCheck(r ScaleResult) []string {
	var bad []string
	if r.Events == 0 {
		bad = append(bad, "no events executed")
	}
	if r.Sent == 0 {
		bad = append(bad, "no datagrams sent")
	}
	if r.Live != r.Nodes {
		bad = append(bad, fmt.Sprintf("live=%d, want %d (no churn in this run)", r.Live, r.Nodes))
	}
	// Short smoke runs legitimately leave stragglers (NAT registration
	// plus start jitter eats most of a 30s horizon). A full-length run
	// tolerates a thin tail — at 100k nodes under PlanetLab loss a few
	// NATted nodes lose every shuffle of a 2-minute horizon — but not a
	// systemic failure to gossip.
	if r.Runtime >= 2*time.Minute && r.ZeroShuffles > r.Nodes/100 {
		bad = append(bad, fmt.Sprintf("%d of %d nodes completed zero shuffles", r.ZeroShuffles, r.Nodes))
	}
	if r.Windows == 0 && r.Shards > 1 {
		bad = append(bad, "sharded run executed zero windows")
	}
	return bad
}
