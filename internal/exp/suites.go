package exp

import (
	"fmt"
	"io"
	"sync"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/nylon"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

// SuitesConfig parameterizes the crypto-suite comparison (the Table II
// style row the suite abstraction exists for): the same confidential
// request/response workload run once per suite, at each suite's nominal
// strength — rsa2048 with true 2048-bit moduli (the repo-wide 1024-bit
// default reproduces the paper's 2011 setting and stays untouched) and
// ecc with X25519/Ed25519. Round trips make the source pay both sides
// of its asymmetric bill: the onion build (public-key operations, where
// RSA is cheap) and the reply delivery (a private-key operation, where
// RSA is ~50x the ECC cost).
type SuitesConfig struct {
	Seed     int64
	N        int // default 300
	Messages int // round trips per leg (default 100)
	Env      Env
}

func (c SuitesConfig) withDefaults() SuitesConfig {
	if c.N == 0 {
		c.N = 300
	}
	if c.Messages == 0 {
		c.Messages = 100
	}
	return c
}

// SuiteLeg is the measured cost of one suite's leg.
type SuiteLeg struct {
	Suite      string
	RoundTrips int           // completed request/response round trips
	SourceCPU  time.Duration // source-side crypto CPU over the leg
	PerMsg     time.Duration // source share, amortized per round trip
	PathCPU    time.Duration // whole-path crypto CPU (source, relays, destination)
	PerMsgPath time.Duration // whole-path share per round trip
	AsymOps    uint64        // source-side asymmetric operations
	OnionBytes int           // one 3-hop onion for a SymKeySize payload
	Establish  time.Duration // virtual time to establish a circuit (0 = failed)
}

// SuitesResult is the per-suite comparison.
type SuitesResult struct {
	Messages int
	Legs     []SuiteLeg
	// CPURatio is rsa2048 / ecc whole-path crypto CPU per round trip:
	// the middleware's per-message bill, dominated by the RSA peel every
	// relay pays. (The source-only ratio is milder — a source mostly
	// performs the cheap RSA public-key operation — and is reported per
	// leg rather than gated on.)
	CPURatio float64
	// SourceRatio is rsa2048 / ecc source-side CPU per round trip.
	SourceRatio float64
}

// suitePools lazily builds and caches the per-suite experiment pools so
// repeated runs (and the "all" harness) pay key generation once. The
// rsa2048 leg runs at true 2048-bit moduli, which is why it cannot
// share the repo-wide 1024-bit test pool.
var suitePools struct {
	sync.Mutex
	m map[crypt.SuiteID]*identity.Pool
}

func suitePool(suite crypt.SuiteID) (*identity.Pool, error) {
	suitePools.Lock()
	defer suitePools.Unlock()
	if p := suitePools.m[suite]; p != nil {
		return p, nil
	}
	bits := identity.DefaultKeyBits
	size := 64
	if suite == crypt.SuiteRSA2048 {
		bits = 2048
		size = 24 // 2048-bit generation is slow; sims share keys round-robin
	}
	p, err := identity.NewSuitePool(size, suite, bits)
	if err != nil {
		return nil, err
	}
	if suitePools.m == nil {
		suitePools.m = make(map[crypt.SuiteID]*identity.Pool)
	}
	suitePools.m[suite] = p
	return p, nil
}

// suiteOnionBytes sizes one 3-hop onion carrying a SymKeySize payload
// under the given keys, the per-message wire overhead Table II compares.
func suiteOnionBytes(pool *identity.Pool, payload []byte) (int, error) {
	v := pool.View(0)
	hops := make([]crypt.Hop, 3)
	for i := range hops {
		hops[i] = crypt.Hop{Pub: v.Next().Public(), Addr: []byte{10, 0, 0, byte(i), 0, 1}}
	}
	onion, err := crypt.BuildOnion(nil, hops, payload)
	if err != nil {
		return 0, err
	}
	return len(onion), nil
}

// suiteLeg runs one suite's world and workload.
func suiteLeg(cfg SuitesConfig, suite crypt.SuiteID) (SuiteLeg, error) {
	l := SuiteLeg{Suite: suite.String()}
	pool, err := suitePool(suite)
	if err != nil {
		return l, err
	}
	start := time.Now()
	keyBlob := 0 // default 1 KB blobs, the paper's accounting
	if suite == crypt.SuiteECC {
		keyBlob = 2 * crypt.ECCKeyBlobSize // 65-byte keys need no kilobyte padding
	}
	w, err := sim.NewWorld(sim.Options{
		Seed:     cfg.Seed,
		N:        cfg.N,
		NATRatio: 0.7,
		Model:    cfg.Env.Model(),
		KeyPool:  pool,
		Nylon:    nylon.Config{KeyBlobSize: keyBlob},
		WCL:      &wcl.Config{MinPublic: 3},
		Obs:      worldObs("suites-" + l.Suite),
	})
	if err != nil {
		return l, err
	}
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)

	natted := w.LiveNatted()
	if len(natted) < 3 {
		return l, fmt.Errorf("only %d NATted nodes converged", len(natted))
	}
	src, dst := natted[0], natted[1]
	payload := []byte("suite-comparison-request-payload")

	// Echo responder: every delivered request triggers a reply, so one
	// completed round trip costs the source an onion build plus a
	// final-layer open.
	dst.WCL.OnReceive = func(p []byte) {
		dst.WCL.Send(expDest(w, src, 3), p, func(wcl.Result) {})
	}
	src.WCL.OnReceive = func([]byte) { l.RoundTrips++ }

	before := *src.WCL.CPU()
	beforePath := w.CPUTotal()
	for i := 0; i < cfg.Messages; i++ {
		src.WCL.Send(expDest(w, dst, 3), payload, func(wcl.Result) {})
		w.Sim.RunFor(2 * time.Second)
	}
	w.Sim.RunFor(30 * time.Second) // drain replies and acknowledgements
	cur := *src.WCL.CPU()
	curPath := w.CPUTotal()
	l.SourceCPU = cur.Total() - before.Total()
	l.PerMsg = l.SourceCPU / time.Duration(cfg.Messages)
	l.PathCPU = curPath.Total() - beforePath.Total()
	l.PerMsgPath = l.PathCPU / time.Duration(cfg.Messages)
	l.AsymOps = (cur.RSAEncs - before.RSAEncs) + (cur.RSADecs - before.RSADecs) +
		(cur.ECCEncs - before.ECCEncs) + (cur.ECCDecs - before.ECCDecs)

	// Circuit establishment latency under this suite (a fresh partner,
	// so the echo traffic above cannot have pre-warmed anything).
	dst2 := natted[2]
	t0 := w.Sim.Now()
	src.WCL.SendCircuit(expDest(w, dst2, 3), payload, func(wcl.Result) {})
	for w.Sim.Now()-t0 < time.Minute && !src.WCL.HasCircuit(dst2.ID()) {
		w.Sim.RunFor(100 * time.Millisecond)
	}
	if src.WCL.HasCircuit(dst2.ID()) {
		l.Establish = w.Sim.Now() - t0
	}

	if l.OnionBytes, err = suiteOnionBytes(pool, payload[:crypt.SymKeySize]); err != nil {
		return l, err
	}
	recordRun("suites/"+l.Suite, start, w)
	return l, nil
}

// Suites runs the same confidential round-trip workload once per
// registered crypto suite and compares source CPU, onion size and
// circuit establishment latency.
func Suites(cfg SuitesConfig) (SuitesResult, error) {
	cfg = cfg.withDefaults()
	res := SuitesResult{Messages: cfg.Messages}
	legs := make(map[string]SuiteLeg)
	for _, suite := range crypt.Suites() {
		leg, err := suiteLeg(cfg, suite)
		if err != nil {
			return res, fmt.Errorf("suites: %v leg: %w", suite, err)
		}
		res.Legs = append(res.Legs, leg)
		legs[leg.Suite] = leg
	}
	if ecc := legs["ecc"]; ecc.PerMsgPath > 0 {
		res.CPURatio = float64(legs["rsa2048"].PerMsgPath) / float64(ecc.PerMsgPath)
	}
	if ecc := legs["ecc"]; ecc.PerMsg > 0 {
		res.SourceRatio = float64(legs["rsa2048"].PerMsg) / float64(ecc.PerMsg)
	}
	return res, nil
}

// PrintSuites renders the comparison.
func PrintSuites(out io.Writer, res SuitesResult) {
	fmt.Fprintf(out, "== Crypto suites: source cost per confidential round trip (%d round trips) ==\n", res.Messages)
	tb := stats.NewTable("suite", "round trips", "source CPU/msg", "path CPU/msg", "asym ops", "3-hop onion", "circuit est.")
	for _, l := range res.Legs {
		est := "failed"
		if l.Establish > 0 {
			est = fmt.Sprintf("%.0f ms", l.Establish.Seconds()*1000)
		}
		tb.Row(l.Suite,
			fmt.Sprintf("%d/%d", l.RoundTrips, res.Messages),
			fmt.Sprintf("%.1f µs", float64(l.PerMsg.Nanoseconds())/1000),
			fmt.Sprintf("%.1f µs", float64(l.PerMsgPath.Nanoseconds())/1000),
			fmt.Sprint(l.AsymOps),
			fmt.Sprintf("%d B", l.OnionBytes),
			est)
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintf(out, "per-message whole-path CPU ratio (rsa2048 / ecc): %.1fx\n", res.CPURatio)
	fmt.Fprintf(out, "per-message source-only CPU ratio (rsa2048 / ecc): %.1fx\n", res.SourceRatio)
}

// SuitesShapeCheck verifies the comparison's claims: both legs deliver,
// the ecc onion is smaller, ecc cuts the middleware's per-message CPU
// by at least 5x against nominal-strength RSA, and the source side
// still comes out at least 2x ahead (sources mostly perform the
// public-key operation, where RSA is cheap — the decisive difference
// is the private-key peel every relay and destination pays).
func SuitesShapeCheck(res SuitesResult) []string {
	var bad []string
	legs := make(map[string]SuiteLeg, len(res.Legs))
	for _, l := range res.Legs {
		legs[l.Suite] = l
		if l.RoundTrips < res.Messages*9/10 {
			bad = append(bad, fmt.Sprintf("%s leg completed %d/%d round trips", l.Suite, l.RoundTrips, res.Messages))
		}
		if l.Establish == 0 {
			bad = append(bad, fmt.Sprintf("%s leg failed to establish a circuit", l.Suite))
		}
	}
	if legs["ecc"].OnionBytes >= legs["rsa2048"].OnionBytes {
		bad = append(bad, fmt.Sprintf("ecc onion is %d B vs %d B rsa2048 — not smaller",
			legs["ecc"].OnionBytes, legs["rsa2048"].OnionBytes))
	}
	if res.CPURatio < 5 {
		bad = append(bad, fmt.Sprintf("ecc per-message whole-path CPU only %.1fx below rsa2048, want >= 5x", res.CPURatio))
	}
	if res.SourceRatio < 2 {
		bad = append(bad, fmt.Sprintf("ecc per-message source CPU only %.1fx below rsa2048, want >= 2x", res.SourceRatio))
	}
	return bad
}
