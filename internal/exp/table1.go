package exp

import (
	"fmt"
	"io"
	"time"

	"whisper/internal/churn"
	"whisper/internal/identity"
	"whisper/internal/parallel"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

// Table1Config parameterizes the WCL-route availability experiment
// under churn (§V-D): 1,000 nodes, 20 private groups, Π = 3, and the
// churn script of Table I with varying rates.
type Table1Config struct {
	Seed    int64
	N       int // paper: 1,000
	Groups  int // paper: 20
	Pi      int // paper: 3
	Rates   []float64
	Warmup  time.Duration // group formation + convergence
	Window  time.Duration // churn + measurement window (paper: 15 min)
	Env     Env
	PPSS    ppss.Config
	KeyBlob int
	// Parallel bounds the worker pool running the independent per-rate
	// runs (<= 0: one worker per CPU; 1: sequential).
	Parallel int
}

func (c Table1Config) withDefaults() Table1Config {
	if c.N == 0 {
		c.N = 1000
	}
	if c.Groups == 0 {
		c.Groups = 20
	}
	if c.Pi == 0 {
		c.Pi = 3
	}
	if c.Rates == nil {
		c.Rates = []float64{0, 0.2, 1, 5, 10}
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * time.Minute
	}
	if c.Window == 0 {
		c.Window = 15 * time.Minute
	}
	if c.KeyBlob == 0 {
		c.KeyBlob = 1024
	}
	return c
}

// Table1Row is one line of Table I.
type Table1Row struct {
	RatePct    float64
	SuccessPct float64 // first-attempt success
	AltPct     float64 // needed (and generally found) an alternative
	NoAltPct   float64 // no alternative route existed
	// Average distinct first/second mixes tried per route (§V-D text).
	AvgMixes   float64
	AvgHelpers float64
	Routes     uint64
}

// Table1 runs the churn experiment for each rate, one worker per rate.
func Table1(cfg Table1Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	workers := parallel.Workers(cfg.Parallel)
	return parallel.Map(workers, len(cfg.Rates), func(i int) (Table1Row, error) {
		return table1Run(cfg, cfg.Rates[i], runPool(workers, i))
	})
}

func table1Run(cfg Table1Config, rate float64, pool *identity.Pool) (Table1Row, error) {
	start := time.Now()
	pcfg := cfg.PPSS
	if pcfg.KeyBlobSize == 0 {
		pcfg.KeyBlobSize = cfg.KeyBlob
	}
	if pcfg.MinHelpers == 0 {
		pcfg.MinHelpers = cfg.Pi
	}
	w, err := sim.NewWorld(sim.Options{
		Seed:     cfg.Seed,
		N:        cfg.N,
		NATRatio: 0.7,
		Model:    cfg.Env.Model(),
		KeyPool:  pool,
		WCL:      &wcl.Config{MinPublic: cfg.Pi},
		PPSS:     &pcfg,
		Obs:      worldObs(fmt.Sprintf("table1/rate=%.1f", rate)),
	})
	if err != nil {
		return Table1Row{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute) // public underlay
	gs := formGroups(w, cfg.Groups, 1)
	w.Sim.RunUntil(cfg.Warmup)

	// Leaders are pinned (not killed) so admissions stay possible; the
	// measured quantity is WCL route construction, not leader liveness.
	leaders := map[identity.NodeID]bool{}
	for _, n := range w.Live() {
		if n.PPSS == nil {
			continue
		}
		for _, inst := range n.PPSS.Instances() {
			if inst.IsLeader() {
				leaders[n.ID()] = true
			}
		}
	}

	// Per-route accounting with the paper's footnote-3 rule: routes
	// whose destination itself has failed are not WCL route failures
	// (the PPSS treats them as destination failures and removes the
	// node from the private view).
	var tally struct {
		first, alt, failed, noAlt uint64
		mixes, helpers            uint64
		routes                    uint64
	}
	measuring := false
	hook := func(n *sim.Node) {
		if n.WCL == nil {
			return
		}
		n.WCL.OnResult = func(dest identity.NodeID, r wcl.Result) {
			if !measuring {
				return
			}
			if r.Outcome != wcl.Success && w.Get(dest) == nil {
				return // destination died: not a route failure
			}
			tally.routes++
			tally.mixes += uint64(r.MixesTried)
			tally.helpers += uint64(r.HelpersTried)
			switch r.Outcome {
			case wcl.Success:
				tally.first++
			case wcl.AltSuccess:
				tally.alt++
			default:
				tally.failed++
				if r.NoAlternative {
					tally.noAlt++
				}
			}
		}
	}
	for _, n := range w.Live() {
		hook(n)
	}
	rng := w.Sim.Rand()
	actions := churn.Actions{
		Population: func() int { return len(w.Live()) },
		Leave: func(count int) {
			live := w.Live()
			rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
			killed := 0
			for _, n := range live {
				if killed >= count {
					break
				}
				if leaders[n.ID()] {
					continue
				}
				w.Kill(n)
				killed++
			}
		},
		Join: func(count int) {
			for i := 0; i < count; i++ {
				n := w.Spawn()
				hook(n)
				n.Nylon.Start()
				// Subscribe to one random group once the underlay has
				// bootstrapped (the paper's nodes do the same on arrival).
				node := n
				w.Sim.After(30*time.Second, func() {
					if !node.Nylon.Stopped() {
						gs.JoinRandom(node)
					}
				})
			}
		},
	}

	measuring = true
	if rate > 0 {
		plan := churn.Plan{Steps: []churn.Step{
			churn.SetReplacement{At: w.Sim.Now(), Ratio: 1.0},
			churn.ConstChurn{From: w.Sim.Now(), To: w.Sim.Now() + cfg.Window, RatePct: rate, Interval: time.Minute},
		}}
		plan.Run(w.Sim, actions)
	}
	w.Sim.RunFor(cfg.Window)
	measuring = false

	recordRun(fmt.Sprintf("table1/rate=%.1f", rate), start, w)
	if tally.routes == 0 {
		return Table1Row{RatePct: rate}, nil
	}
	routes := float64(tally.routes)
	row := Table1Row{
		RatePct:    rate,
		SuccessPct: 100 * float64(tally.first) / routes,
		AltPct:     100 * float64(tally.alt+tally.failed-tally.noAlt) / routes,
		NoAltPct:   100 * float64(tally.noAlt) / routes,
		AvgMixes:   float64(tally.mixes) / routes,
		AvgHelpers: float64(tally.helpers) / routes,
		Routes:     tally.routes,
	}
	return row, nil
}

// PrintTable1 renders Table I.
func PrintTable1(out io.Writer, rows []Table1Row) {
	fmt.Fprintln(out, "== Table I: WCL route construction under churn ==")
	tb := stats.NewTable("churn %/min", "Success", "Alt.", "No alt.", "avg mixes", "avg helpers", "routes")
	for _, r := range rows {
		tb.Row(r.RatePct,
			fmt.Sprintf("%.1f%%", r.SuccessPct),
			fmt.Sprintf("%.2f%%", r.AltPct),
			fmt.Sprintf("%.2f%%", r.NoAltPct),
			fmt.Sprintf("%.2f", r.AvgMixes),
			fmt.Sprintf("%.2f", r.AvgHelpers),
			r.Routes)
	}
	fmt.Fprint(out, tb.String())
}

// Table1ShapeCheck verifies the qualitative claims: success stays very
// high (paper: ≥ 90.9% even at 10%/min), decreases with churn, and
// most recoveries find an alternative.
func Table1ShapeCheck(rows []Table1Row) []string {
	var bad []string
	for i, r := range rows {
		if r.Routes == 0 {
			bad = append(bad, fmt.Sprintf("rate %.1f: no routes constructed", r.RatePct))
			continue
		}
		if r.RatePct == 0 && r.SuccessPct < 97 {
			bad = append(bad, fmt.Sprintf("no-churn success only %.1f%%", r.SuccessPct))
		}
		if r.SuccessPct < 80 {
			bad = append(bad, fmt.Sprintf("rate %.1f: success %.1f%% below the paper's regime", r.RatePct, r.SuccessPct))
		}
		if i > 0 && r.SuccessPct > rows[0].SuccessPct+1 {
			bad = append(bad, fmt.Sprintf("rate %.1f: success above the no-churn baseline", r.RatePct))
		}
		if r.NoAltPct > r.AltPct && r.NoAltPct > 3 {
			bad = append(bad, fmt.Sprintf("rate %.1f: NoAlt (%.2f%%) dominates Alt (%.2f%%)", r.RatePct, r.NoAltPct, r.AltPct))
		}
	}
	return bad
}
