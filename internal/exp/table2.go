package exp

import (
	"fmt"
	"io"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

// Table2Config parameterizes the crypto CPU-cost experiment (§V-E,
// Table II): average processor time per PPSS cycle spent on AES and RSA
// by N- and P-nodes.
type Table2Config struct {
	Seed    int64
	N       int // paper: 1,000
	Groups  int // one group per ~50 nodes
	Cycles  int // measured PPSS cycles (paper: one full network cycle)
	Warmup  time.Duration
	Env     Env
	PPSS    ppss.Config
	KeyBlob int
}

func (c Table2Config) withDefaults() Table2Config {
	if c.N == 0 {
		c.N = 1000
	}
	if c.Groups == 0 {
		c.Groups = c.N / 50
	}
	if c.Cycles == 0 {
		c.Cycles = 5
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * time.Minute
	}
	if c.KeyBlob == 0 {
		c.KeyBlob = 1024
	}
	return c
}

// Table2Row is one class row of Table II.
type Table2Row struct {
	Class    string // "N-node" | "P-node"
	AES      time.Duration
	RSA      time.Duration
	Total    time.Duration
	AESPct   float64 // of one PPSS cycle
	RSAPct   float64
	TotalPct float64
	RSADecs  float64 // average RSA decryptions per cycle
}

// Table2Result is the full table plus the derived ratios the paper
// quotes (P ≈ 2.13× N total cost, ≈ 4.12× RSA decryptions).
type Table2Result struct {
	Rows         []Table2Row
	Cycle        time.Duration
	TotalRatio   float64
	RSADecsRatio float64
}

// Table2 runs the PPSS on the cluster testbed and accounts real
// wall-clock crypto cost per node per cycle.
func Table2(cfg Table2Config) (Table2Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	pcfg := cfg.PPSS
	if pcfg.KeyBlobSize == 0 {
		pcfg.KeyBlobSize = cfg.KeyBlob
	}
	pcfg = pcfgWithDefaults(pcfg)
	w, err := sim.NewWorld(sim.Options{
		Seed:     cfg.Seed,
		N:        cfg.N,
		NATRatio: 0.7,
		Model:    cfg.Env.Model(),
		KeyPool:  keyPool,
		WCL:      &wcl.Config{MinPublic: 3},
		PPSS:     &pcfg,
		Obs:      worldObs("table2"),
	})
	if err != nil {
		return Table2Result{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)
	formGroups(w, cfg.Groups, 1)
	w.Sim.RunUntil(cfg.Warmup)

	// Snapshot CPU meters, run the measurement window, subtract.
	before := map[*sim.Node]crypt.CPUMeter{}
	for _, n := range w.Live() {
		if n.WCL != nil {
			before[n] = *n.WCL.CPU()
		}
	}
	window := time.Duration(cfg.Cycles) * pcfg.Cycle
	w.Sim.RunFor(window)

	var res Table2Result
	res.Cycle = pcfg.Cycle
	classes := map[bool][]crypt.CPUMeter{}
	for n, b := range before {
		if n.Nylon.Stopped() {
			continue
		}
		cur := *n.WCL.CPU()
		d := crypt.CPUMeter{
			AES:     cur.AES - b.AES,
			RSA:     cur.RSA - b.RSA,
			AESOps:  cur.AESOps - b.AESOps,
			RSADecs: cur.RSADecs - b.RSADecs,
		}
		classes[n.Public()] = append(classes[n.Public()], d)
	}
	row := func(public bool, label string) Table2Row {
		ms := classes[public]
		var aes, rsa time.Duration
		var decs uint64
		for _, m := range ms {
			aes += m.AES
			rsa += m.RSA
			decs += m.RSADecs
		}
		n := float64(len(ms)) * float64(cfg.Cycles)
		if n == 0 {
			n = 1
		}
		r := Table2Row{
			Class:   label,
			AES:     time.Duration(float64(aes) / n),
			RSA:     time.Duration(float64(rsa) / n),
			RSADecs: float64(decs) / n,
		}
		r.Total = r.AES + r.RSA
		cyc := float64(pcfg.Cycle)
		r.AESPct = 100 * float64(r.AES) / cyc
		r.RSAPct = 100 * float64(r.RSA) / cyc
		r.TotalPct = 100 * float64(r.Total) / cyc
		return r
	}
	nRow := row(false, "N-node")
	pRow := row(true, "P-node")
	res.Rows = []Table2Row{nRow, pRow}
	if nRow.Total > 0 {
		res.TotalRatio = float64(pRow.Total) / float64(nRow.Total)
	}
	if nRow.RSADecs > 0 {
		res.RSADecsRatio = pRow.RSADecs / nRow.RSADecs
	}
	recordRun("table2", start, w)
	return res, nil
}

func pcfgWithDefaults(c ppss.Config) ppss.Config {
	if c.Cycle == 0 {
		c.Cycle = time.Minute
	}
	return c
}

// PrintTable2 renders Table II.
func PrintTable2(out io.Writer, res Table2Result) {
	fmt.Fprintln(out, "== Table II: CPU time per PPSS cycle for AES and RSA ==")
	tb := stats.NewTable("class", "AES", "RSA", "Total", "% of cycle", "RSA decs/cycle")
	for _, r := range res.Rows {
		tb.Row(r.Class,
			fmt.Sprintf("%.1f µs (%.4f%%)", float64(r.AES.Microseconds()), r.AESPct),
			fmt.Sprintf("%.2f ms (%.3f%%)", float64(r.RSA.Microseconds())/1000, r.RSAPct),
			fmt.Sprintf("%.2f ms", float64(r.Total.Microseconds())/1000),
			fmt.Sprintf("%.3f%%", r.TotalPct),
			fmt.Sprintf("%.1f", r.RSADecs))
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintf(out, "P/N total CPU ratio: %.2fx (paper: 2.13x)\n", res.TotalRatio)
	fmt.Fprintf(out, "P/N RSA decryptions ratio: %.2fx (paper: 4.12x)\n", res.RSADecsRatio)
}

// Table2ShapeCheck verifies the qualitative claims: RSA dominates AES
// by orders of magnitude, total cost is a small fraction of the cycle,
// and P-nodes work harder than N-nodes (they are mixes more often).
func Table2ShapeCheck(res Table2Result) []string {
	var bad []string
	for _, r := range res.Rows {
		if r.RSA < 10*r.AES {
			bad = append(bad, fmt.Sprintf("%s: RSA (%v) does not dominate AES (%v)", r.Class, r.RSA, r.AES))
		}
		if r.TotalPct > 5 {
			bad = append(bad, fmt.Sprintf("%s: crypto consumes %.1f%% of a cycle (paper: <1%%)", r.Class, r.TotalPct))
		}
	}
	if res.TotalRatio < 1.1 {
		bad = append(bad, fmt.Sprintf("P/N total ratio %.2f: P-nodes not busier than N-nodes", res.TotalRatio))
	}
	if res.RSADecsRatio < 1.2 {
		bad = append(bad, fmt.Sprintf("P/N RSA-decrypt ratio %.2f: P-nodes not acting as mixes more often", res.RSADecsRatio))
	}
	return bad
}
