package exp

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"time"

	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/stats"
	"whisper/internal/wcl"
)

// TransferConfig parameterizes the bulk-transfer comparison: the same
// confidential byte stream moved between two members of a private
// group three ways — chunked one-shot onion sends, single-cell circuit
// sends, and the windowed stream layer — measuring virtual-time
// throughput. Chunks are StreamFragSize bytes in every leg, so the
// comparison isolates the transport (stop-and-wait vs pipelined
// window), not the framing.
type TransferConfig struct {
	Seed      int64
	N         int // default 300
	Messages  int // messages per leg (default 8)
	MessageKB int // payload KiB per message (default 32, one full window)
	Env       Env
}

func (c TransferConfig) withDefaults() TransferConfig {
	if c.N == 0 {
		c.N = 300
	}
	if c.Messages == 0 {
		c.Messages = 8
	}
	if c.MessageKB == 0 {
		c.MessageKB = 32
	}
	return c
}

// TransferLeg is the measured throughput of one transport.
type TransferLeg struct {
	Label     string
	Delivered int           // messages fully acknowledged at the source
	Bytes     uint64        // payload bytes handed to the destination app
	Virtual   time.Duration // virtual time, first launch to last delivery
	KBPerSec  float64       // Bytes over Virtual
}

// TransferResult is the full comparison plus the stream-layer health
// counters and a determinism fingerprint (CI runs the experiment twice
// with one seed and diffs the fingerprint lines).
type TransferResult struct {
	Messages     int
	MessageBytes int
	GroupJoined  bool // src and dst both joined the private group

	OneShot TransferLeg
	Cells   TransferLeg
	Stream  TransferLeg

	StreamVsOneShot float64 // stream KB/s over one-shot KB/s
	StreamVsCells   float64 // stream KB/s over single-cell KB/s

	Retransmits uint64 // source stream retransmits over the stream leg
	Fallbacks   uint64 // stream messages that fell back to one-shots
	Fingerprint uint64
}

// Transfer runs all three legs on one converged world: a NATted source
// bulk-ships Messages payloads of MessageKB KiB to a NATted
// destination inside a private group. The one-shot and cell legs are
// strict stop-and-wait — chunk n+1 launches in chunk n's completion
// callback, message m+1 after message m — which is exactly what an
// application could build before streams existed. The stream leg hands
// whole messages to SendStream and lets the window pipeline fragments.
func Transfer(cfg TransferConfig) (TransferResult, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	w, err := sim.NewWorld(sim.Options{
		Seed:     cfg.Seed,
		N:        cfg.N,
		NATRatio: 0.7,
		Model:    cfg.Env.Model(),
		KeyPool:  keyPool,
		WCL:      &wcl.Config{MinPublic: 3},
		PPSS:     &ppss.Config{KeyBlobSize: 256, MinHelpers: 3},
		Obs:      worldObs("transfer"),
	})
	if err != nil {
		return TransferResult{}, err
	}
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)

	natted := w.LiveNatted()
	publics := w.LivePublics()
	if len(natted) < 2 || len(publics) == 0 {
		return TransferResult{}, fmt.Errorf("world did not converge: %d NATted, %d public", len(natted), len(publics))
	}
	src, dst := natted[0], natted[1]

	msgBytes := cfg.MessageKB * 1024
	res := TransferResult{Messages: cfg.Messages, MessageBytes: msgBytes}

	// The private group: a public leader creates it and invites both
	// endpoints, the way the paper's PPSS onboards members.
	inst, err := publics[0].PPSS.CreateGroup("transfer")
	if err != nil {
		return TransferResult{}, fmt.Errorf("create group: %w", err)
	}
	joined := 0
	for _, n := range []*sim.Node{src, dst} {
		accr, entry, err := inst.Invite(n.ID())
		if err != nil {
			continue
		}
		n.PPSS.Join("transfer", accr, entry, func(_ *ppss.Instance, err error) {
			if err == nil {
				joined++
			}
		})
	}
	w.RunFor(30 * time.Second)
	res.GroupJoined = joined == 2

	// Deterministic payloads from the experiment seed, independent of
	// the world's rng so protocol scheduling is untouched.
	prng := rand.New(rand.NewSource(cfg.Seed ^ 0x7472616e73666572))
	payloads := make([][]byte, cfg.Messages)
	for m := range payloads {
		payloads[m] = make([]byte, msgBytes)
		prng.Read(payloads[m])
	}
	fragSize := wcl.DefaultStreamFragSize

	// Establish the circuit before any timed leg so setup cost (one
	// RSA onion round trip) is outside all three windows; the one-shot
	// leg never touches it, and the cell and stream legs both get the
	// same warm state.
	src.WCL.SendCircuit(expDest(w, dst, 3), []byte("transfer-warmup"), func(wcl.Result) {})
	w.RunFor(15 * time.Second)

	var recvBytes uint64
	dst.WCL.OnReceive = func(p []byte) { recvBytes += uint64(len(p)) }

	// pump drives the simulator until stop reports true (bounded, so a
	// wedged leg fails the shape check instead of hanging the harness).
	pump := func(stop func() bool) {
		deadline := w.Now() + 30*time.Minute
		for !stop() && w.Now() < deadline {
			w.RunFor(time.Second)
		}
	}

	// chunkedLeg is the strict stop-and-wait driver shared by the
	// one-shot and cell transports.
	chunkedLeg := func(label string, send func(wcl.Dest, []byte, func(wcl.Result))) TransferLeg {
		l := TransferLeg{Label: label}
		recvBytes = 0
		t0 := w.Now()
		tEnd := t0
		finished := false
		var nextMsg func(m int)
		nextMsg = func(m int) {
			if m == cfg.Messages {
				finished = true
				tEnd = w.Now()
				return
			}
			payload := payloads[m]
			var sendChunk func(off int)
			sendChunk = func(off int) {
				end := off + fragSize
				if end > len(payload) {
					end = len(payload)
				}
				send(expDest(w, dst, 3), payload[off:end], func(r wcl.Result) {
					if r.Outcome == wcl.Failed {
						nextMsg(m + 1) // abandon this message, move on
						return
					}
					if end < len(payload) {
						sendChunk(end)
						return
					}
					l.Delivered++
					nextMsg(m + 1)
				})
			}
			sendChunk(0)
		}
		nextMsg(0)
		pump(func() bool { return finished })
		l.Bytes = recvBytes
		l.Virtual = tEnd - t0
		if s := l.Virtual.Seconds(); s > 0 {
			l.KBPerSec = float64(l.Bytes) / 1024 / s
		}
		return l
	}

	res.OneShot = chunkedLeg("one-shot", src.WCL.Send)
	res.Cells = chunkedLeg("cells", src.WCL.SendCircuit)

	// The stream leg: whole messages go to SendStream up front; the
	// circuit runs them serially (one active stream, the rest queued),
	// matching the serial message order of the stop-and-wait legs.
	streamStats := src.WCL.Stats()
	l := TransferLeg{Label: "stream"}
	recvBytes = 0
	t0 := w.Now()
	tEnd := t0
	completed := 0
	for m := range payloads {
		src.WCL.SendStream(expDest(w, dst, 3), payloads[m], func(r wcl.Result) {
			completed++
			if r.Outcome != wcl.Failed {
				l.Delivered++
			}
			tEnd = w.Now()
		})
	}
	pump(func() bool { return completed == cfg.Messages })
	l.Bytes = recvBytes
	l.Virtual = tEnd - t0
	if s := l.Virtual.Seconds(); s > 0 {
		l.KBPerSec = float64(l.Bytes) / 1024 / s
	}
	res.Stream = l
	after := src.WCL.Stats()
	res.Retransmits = after.StreamRetransmits - streamStats.StreamRetransmits
	res.Fallbacks = after.StreamFallbacks - streamStats.StreamFallbacks
	dst.WCL.OnReceive = nil

	if res.OneShot.KBPerSec > 0 {
		res.StreamVsOneShot = res.Stream.KBPerSec / res.OneShot.KBPerSec
	}
	if res.Cells.KBPerSec > 0 {
		res.StreamVsCells = res.Stream.KBPerSec / res.Cells.KBPerSec
	}

	h := fnv.New64a()
	for _, leg := range []TransferLeg{res.OneShot, res.Cells, res.Stream} {
		fmt.Fprintf(h, "%s|%d|%d|%d;", leg.Label, leg.Delivered, leg.Bytes, leg.Virtual.Nanoseconds())
	}
	fmt.Fprintf(h, "group=%v;retx=%d;fb=%d", res.GroupJoined, res.Retransmits, res.Fallbacks)
	res.Fingerprint = h.Sum64()

	if BenchSink != nil {
		for _, leg := range []TransferLeg{res.OneShot, res.Cells, res.Stream} {
			BenchSink.Record(RunStat{
				Name:       "transfer/" + leg.Label,
				VirtualSec: leg.Virtual.Seconds(),
				Bytes:      leg.Bytes,
				KBPerSec:   leg.KBPerSec,
			})
		}
	}
	recordRun("transfer", start, w)
	return res, nil
}

// PrintTransfer renders the comparison.
func PrintTransfer(out io.Writer, res TransferResult) {
	fmt.Fprintf(out, "== Bulk transfer in a private group: %d messages x %d KiB ==\n",
		res.Messages, res.MessageBytes/1024)
	fmt.Fprintf(out, "group membership established: %v\n", res.GroupJoined)
	tb := stats.NewTable("leg", "delivered", "bytes", "virtual time", "KB/s")
	for _, l := range []TransferLeg{res.OneShot, res.Cells, res.Stream} {
		tb.Row(l.Label,
			fmt.Sprintf("%d/%d", l.Delivered, res.Messages),
			fmt.Sprint(l.Bytes),
			fmt.Sprintf("%.2f s", l.Virtual.Seconds()),
			fmt.Sprintf("%.1f", l.KBPerSec))
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintf(out, "stream throughput vs one-shot: %.1fx   vs single cells: %.1fx\n",
		res.StreamVsOneShot, res.StreamVsCells)
	fmt.Fprintf(out, "stream retransmits: %d   fallbacks: %d\n", res.Retransmits, res.Fallbacks)
	fmt.Fprintf(out, "fingerprint: %016x\n", res.Fingerprint)
}

// TransferShapeCheck verifies the tentpole claims: every leg delivers
// every byte, the group forms, streams never fall back on a healthy
// cluster, and the windowed stream is at least 2x the stop-and-wait
// transports.
func TransferShapeCheck(res TransferResult) []string {
	var bad []string
	if !res.GroupJoined {
		bad = append(bad, "private group membership did not form")
	}
	want := uint64(res.Messages) * uint64(res.MessageBytes)
	for _, l := range []TransferLeg{res.OneShot, res.Cells, res.Stream} {
		if l.Delivered != res.Messages {
			bad = append(bad, fmt.Sprintf("%s leg delivered %d/%d messages", l.Label, l.Delivered, res.Messages))
		}
		if l.Bytes != want {
			bad = append(bad, fmt.Sprintf("%s leg delivered %d bytes, want %d", l.Label, l.Bytes, want))
		}
	}
	if res.StreamVsOneShot < 2 {
		bad = append(bad, fmt.Sprintf("stream only %.1fx one-shot throughput, want >= 2x", res.StreamVsOneShot))
	}
	if res.StreamVsCells < 2 {
		bad = append(bad, fmt.Sprintf("stream only %.1fx single-cell throughput, want >= 2x", res.StreamVsCells))
	}
	if res.Fallbacks != 0 {
		bad = append(bad, fmt.Sprintf("%d stream fallbacks on a healthy cluster, want 0", res.Fallbacks))
	}
	return bad
}
