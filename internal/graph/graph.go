// Package graph analyses the overlay induced by peer-sampling views:
// local clustering coefficients and in-degree distributions, the two
// metrics the paper uses to characterize PSS quality (§II-B, Fig 5).
package graph

import (
	"whisper/internal/identity"
)

// Directed is an overlay snapshot: for each node, the IDs currently in
// its view (out-edges).
type Directed map[identity.NodeID][]identity.NodeID

// InDegrees returns the number of views each node appears in. Nodes
// with no in-edges are present with degree 0.
func (g Directed) InDegrees() map[identity.NodeID]int {
	in := make(map[identity.NodeID]int, len(g))
	for id := range g {
		in[id] = 0
	}
	for _, outs := range g {
		for _, to := range outs {
			in[to]++
		}
	}
	return in
}

// OutDegrees returns each node's view size.
func (g Directed) OutDegrees() map[identity.NodeID]int {
	out := make(map[identity.NodeID]int, len(g))
	for id, outs := range g {
		out[id] = len(outs)
	}
	return out
}

// undirected builds the undirected neighbour sets (union of in- and
// out-edges), which is the projection on which the paper's clustering
// coefficient is computed.
func (g Directed) undirected() map[identity.NodeID]map[identity.NodeID]bool {
	u := make(map[identity.NodeID]map[identity.NodeID]bool, len(g))
	add := func(a, b identity.NodeID) {
		if a == b {
			return
		}
		if u[a] == nil {
			u[a] = make(map[identity.NodeID]bool)
		}
		u[a][b] = true
	}
	for id := range g {
		if u[id] == nil {
			u[id] = make(map[identity.NodeID]bool)
		}
	}
	for from, outs := range g {
		for _, to := range outs {
			add(from, to)
			add(to, from)
		}
	}
	return u
}

// ClusteringCoefficients returns the local clustering coefficient of
// every node: the fraction of existing links among its (undirected)
// neighbours. Nodes with fewer than two neighbours have coefficient 0.
func (g Directed) ClusteringCoefficients() map[identity.NodeID]float64 {
	return clusteringOf(g.undirected())
}

// WeaklyConnected reports whether the overlay forms a single weakly
// connected component — the liveness property a healthy PSS maintains
// under churn.
func (g Directed) WeaklyConnected() bool {
	if len(g) == 0 {
		return true
	}
	u := g.undirected()
	var start identity.NodeID
	for id := range u {
		start = id
		break
	}
	seen := map[identity.NodeID]bool{start: true}
	stack := []identity.NodeID{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for n := range u[v] {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return len(seen) == len(u)
}
