// Package graph analyses the overlay induced by peer-sampling views:
// local clustering coefficients and in-degree distributions, the two
// metrics the paper uses to characterize PSS quality (§II-B, Fig 5).
//
// The metric implementations live on Stream (see stream.go), which is
// what large-world reports consume; Directed is the eager snapshot
// form used by small analyses and tests, and its methods delegate to
// the stream path so the two can never diverge.
package graph

import (
	"whisper/internal/identity"
)

// Directed is an overlay snapshot: for each node, the IDs currently in
// its view (out-edges).
type Directed map[identity.NodeID][]identity.NodeID

// InDegrees returns the number of views each node appears in. Nodes
// with no in-edges are present with degree 0.
func (g Directed) InDegrees() map[identity.NodeID]int { return g.Stream().InDegrees() }

// OutDegrees returns each node's view size.
func (g Directed) OutDegrees() map[identity.NodeID]int { return g.Stream().OutDegrees() }

// ClusteringCoefficients returns the local clustering coefficient of
// every node: the fraction of existing links among its (undirected)
// neighbours. Nodes with fewer than two neighbours have coefficient 0.
func (g Directed) ClusteringCoefficients() map[identity.NodeID]float64 {
	return g.Stream().ClusteringCoefficients()
}

// WeaklyConnected reports whether the overlay forms a single weakly
// connected component — the liveness property a healthy PSS maintains
// under churn.
func (g Directed) WeaklyConnected() bool { return g.Stream().WeaklyConnected() }
