package graph

import (
	"math/rand"
	"testing"

	"whisper/internal/identity"
)

func TestInOutDegrees(t *testing.T) {
	g := Directed{
		1: {2, 3},
		2: {3},
		3: {},
	}
	in := g.InDegrees()
	if in[1] != 0 || in[2] != 1 || in[3] != 2 {
		t.Fatalf("in-degrees: %v", in)
	}
	out := g.OutDegrees()
	if out[1] != 2 || out[2] != 1 || out[3] != 0 {
		t.Fatalf("out-degrees: %v", out)
	}
}

func TestClusteringTriangle(t *testing.T) {
	// A directed triangle is a fully-connected undirected triangle:
	// every node has coefficient 1.
	g := Directed{1: {2}, 2: {3}, 3: {1}}
	cc := g.ClusteringCoefficients()
	for id, c := range cc {
		if c != 1 {
			t.Fatalf("node %v coefficient = %v, want 1", id, c)
		}
	}
}

func TestClusteringStar(t *testing.T) {
	// A star has no links among leaves: hub coefficient 0, leaves 0
	// (fewer than 2 neighbours).
	g := Directed{1: {2, 3, 4}, 2: {}, 3: {}, 4: {}}
	cc := g.ClusteringCoefficients()
	for id, c := range cc {
		if c != 0 {
			t.Fatalf("node %v coefficient = %v, want 0", id, c)
		}
	}
}

func TestClusteringPartial(t *testing.T) {
	// Hub 1 connected to 2,3,4; one link 2-3 among neighbours:
	// c(1) = 1/3.
	g := Directed{1: {2, 3, 4}, 2: {3}, 3: {}, 4: {}}
	cc := g.ClusteringCoefficients()
	if c := cc[1]; c < 0.333 || c > 0.334 {
		t.Fatalf("hub coefficient = %v, want 1/3", c)
	}
	if cc[2] != 1 { // neighbours of 2 are {1,3}, linked via 1-3
		t.Fatalf("c(2) = %v, want 1", cc[2])
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	g := Directed{1: {1, 2}, 2: {2}}
	cc := g.ClusteringCoefficients()
	if cc[1] != 0 || cc[2] != 0 {
		t.Fatalf("self loops affected clustering: %v", cc)
	}
	in := g.InDegrees()
	if in[1] != 1 { // only the self loop counts as an in-edge record
		// Self edges do count in raw in-degree; just assert no panic and
		// presence of both nodes.
		_ = in
	}
}

func TestWeaklyConnected(t *testing.T) {
	connected := Directed{1: {2}, 2: {3}, 3: {}, 4: {3}}
	if !connected.WeaklyConnected() {
		t.Fatal("connected graph reported disconnected")
	}
	split := Directed{1: {2}, 2: {}, 3: {4}, 4: {}}
	if split.WeaklyConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !(Directed{}).WeaklyConnected() {
		t.Fatal("empty graph should be connected")
	}
}

// A random graph with out-degree c over n nodes has expected clustering
// ~c/n; assert the computation lands in that regime (sanity of the
// metric used for Fig 5).
func TestRandomGraphLowClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, c = 400, 10
	g := make(Directed, n)
	ids := make([]identity.NodeID, n)
	for i := range ids {
		ids[i] = identity.NodeID(i + 1)
	}
	for _, id := range ids {
		seen := map[identity.NodeID]bool{id: true}
		for len(g[id]) < c {
			to := ids[rng.Intn(n)]
			if !seen[to] {
				seen[to] = true
				g[id] = append(g[id], to)
			}
		}
	}
	cc := g.ClusteringCoefficients()
	var sum float64
	for _, v := range cc {
		sum += v
	}
	avg := sum / float64(n)
	if avg > 0.12 {
		t.Fatalf("random graph clustering %v, want < 0.12", avg)
	}
	if !g.WeaklyConnected() {
		t.Fatal("dense random graph should be connected")
	}
}
