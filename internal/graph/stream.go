package graph

import (
	"whisper/internal/identity"
)

// Stream is a lazily produced overlay adjacency: calling it walks the
// graph one node at a time, invoking yield with each node's out-edges.
// Reports over very large simulated overlays (the 100k–1M-node scale
// runs) use it to compute metrics without first materializing a
// Directed map of every view — the producer hands out each node's
// existing view slice and the consumers keep only what the metric
// itself needs (degree counters, a union-find, neighbour sets).
//
// A Stream may be consumed multiple times; each consumption re-walks
// the producer. yield returning false stops the walk early.
type Stream func(yield func(id identity.NodeID, outs []identity.NodeID) bool)

// Stream adapts an eager snapshot to the lazy interface (iteration
// order is map order; no metric below is order-sensitive).
func (g Directed) Stream() Stream {
	return func(yield func(identity.NodeID, []identity.NodeID) bool) {
		for id, outs := range g {
			if !yield(id, outs) {
				return
			}
		}
	}
}

// Collect materializes the stream into an eager snapshot.
func (s Stream) Collect() Directed {
	g := make(Directed)
	s(func(id identity.NodeID, outs []identity.NodeID) bool {
		g[id] = outs
		return true
	})
	return g
}

// InDegrees returns the number of views each node appears in, without
// materializing adjacency: only the degree counters are kept.
func (s Stream) InDegrees() map[identity.NodeID]int {
	in := make(map[identity.NodeID]int)
	s(func(id identity.NodeID, outs []identity.NodeID) bool {
		if _, ok := in[id]; !ok {
			in[id] = 0
		}
		for _, to := range outs {
			in[to]++
		}
		return true
	})
	return in
}

// OutDegrees returns each node's view size.
func (s Stream) OutDegrees() map[identity.NodeID]int {
	out := make(map[identity.NodeID]int)
	s(func(id identity.NodeID, outs []identity.NodeID) bool {
		out[id] = len(outs)
		return true
	})
	return out
}

// undirectedFrom accumulates the undirected neighbour sets from a
// stream — the projection the clustering coefficient is computed on.
// This is the one metric that inherently needs neighbour sets; the
// stream path still skips the intermediate Directed map.
func undirectedFrom(s Stream) map[identity.NodeID]map[identity.NodeID]bool {
	u := make(map[identity.NodeID]map[identity.NodeID]bool)
	add := func(a, b identity.NodeID) {
		if a == b {
			return
		}
		if u[a] == nil {
			u[a] = make(map[identity.NodeID]bool)
		}
		u[a][b] = true
	}
	s(func(id identity.NodeID, outs []identity.NodeID) bool {
		if u[id] == nil {
			u[id] = make(map[identity.NodeID]bool)
		}
		for _, to := range outs {
			add(id, to)
			add(to, id)
		}
		return true
	})
	return u
}

// clusteringOf computes local clustering coefficients from undirected
// neighbour sets (shared by the eager and lazy paths, so the two are
// value-identical by construction).
func clusteringOf(u map[identity.NodeID]map[identity.NodeID]bool) map[identity.NodeID]float64 {
	out := make(map[identity.NodeID]float64, len(u))
	for id, nbrs := range u {
		k := len(nbrs)
		if k < 2 {
			out[id] = 0
			continue
		}
		links := 0
		list := make([]identity.NodeID, 0, k)
		for n := range nbrs {
			list = append(list, n)
		}
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				if u[list[i]][list[j]] {
					links++
				}
			}
		}
		out[id] = float64(2*links) / float64(k*(k-1))
	}
	return out
}

// ClusteringCoefficients returns each node's local clustering
// coefficient, computed from one pass over the stream.
func (s Stream) ClusteringCoefficients() map[identity.NodeID]float64 {
	return clusteringOf(undirectedFrom(s))
}

// WeaklyConnected reports whether the overlay forms a single weakly
// connected component, via a union-find over the edge stream — O(nodes)
// memory for the parent table, no adjacency retained.
func (s Stream) WeaklyConnected() bool {
	parent := make(map[identity.NodeID]identity.NodeID)
	var find func(x identity.NodeID) identity.NodeID
	find = func(x identity.NodeID) identity.NodeID {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root // path compression
		return root
	}
	union := func(a, b identity.NodeID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	s(func(id identity.NodeID, outs []identity.NodeID) bool {
		find(id)
		for _, to := range outs {
			union(id, to)
		}
		return true
	})
	if len(parent) == 0 {
		return true
	}
	roots := make(map[identity.NodeID]bool)
	for x := range parent {
		roots[find(x)] = true
	}
	return len(roots) == 1
}
