package graph

import (
	"math/rand"
	"reflect"
	"testing"

	"whisper/internal/identity"
)

// randomDirected builds an arbitrary overlay for equivalence checks.
func randomDirected(rng *rand.Rand, n, deg int) Directed {
	g := make(Directed, n)
	for i := 1; i <= n; i++ {
		id := identity.NodeID(i)
		var outs []identity.NodeID
		for j := 0; j < deg; j++ {
			to := identity.NodeID(1 + rng.Intn(n))
			if to != id {
				outs = append(outs, to)
			}
		}
		g[id] = outs
	}
	return g
}

// TestStreamMatchesEager pins the lazy report path to the eager one:
// every metric must be value-identical whether computed from the
// materialized adjacency or the stream (the fig5 golden depends on it).
func TestStreamMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randomDirected(rng, 40+trial*10, 5)
		s := g.Stream()
		if got, want := s.InDegrees(), g.InDegrees(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: InDegrees diverged\nstream: %v\neager:  %v", trial, got, want)
		}
		if got, want := s.OutDegrees(), g.OutDegrees(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: OutDegrees diverged", trial)
		}
		if got, want := s.ClusteringCoefficients(), g.ClusteringCoefficients(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: ClusteringCoefficients diverged", trial)
		}
		if got, want := s.WeaklyConnected(), g.WeaklyConnected(); got != want {
			t.Fatalf("trial %d: WeaklyConnected diverged: stream %v, eager %v", trial, got, want)
		}
		if got := s.Collect(); !reflect.DeepEqual(got, g) {
			t.Fatalf("trial %d: Collect did not round-trip", trial)
		}
	}
}

func TestStreamWeaklyConnected(t *testing.T) {
	connected := Directed{1: {2}, 2: {3}, 3: {}, 4: {1}}
	if !connected.Stream().WeaklyConnected() {
		t.Error("connected graph reported disconnected")
	}
	split := Directed{1: {2}, 2: {}, 3: {4}, 4: {}}
	if split.Stream().WeaklyConnected() {
		t.Error("two components reported connected")
	}
	// Empty graphs are trivially connected in both the eager and the
	// lazy implementation.
	if !(Directed{}).Stream().WeaklyConnected() {
		t.Error("empty graph semantics diverged from the eager path")
	}
}

// TestStreamEarlyStop pins the lazy contract: a consumer returning
// false stops the walk immediately.
func TestStreamEarlyStop(t *testing.T) {
	g := randomDirected(rand.New(rand.NewSource(3)), 50, 4)
	visited := 0
	g.Stream()(func(identity.NodeID, []identity.NodeID) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Errorf("walk visited %d nodes after stop at 5", visited)
	}
}
