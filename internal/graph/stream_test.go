package graph

import (
	"math/rand"
	"reflect"
	"testing"

	"whisper/internal/identity"
)

// randomDirected builds an arbitrary overlay for equivalence checks.
func randomDirected(rng *rand.Rand, n, deg int) Directed {
	g := make(Directed, n)
	for i := 1; i <= n; i++ {
		id := identity.NodeID(i)
		var outs []identity.NodeID
		for j := 0; j < deg; j++ {
			to := identity.NodeID(1 + rng.Intn(n))
			if to != id {
				outs = append(outs, to)
			}
		}
		g[id] = outs
	}
	return g
}

// naiveInDegrees is an independent reference: count appearances of
// each node across all views, seeding every node at zero.
func naiveInDegrees(g Directed) map[identity.NodeID]int {
	in := make(map[identity.NodeID]int, len(g))
	for id := range g {
		in[id] = 0
	}
	for _, outs := range g {
		for _, to := range outs {
			in[to]++
		}
	}
	return in
}

// naiveUndirected is the reference undirected projection (union of
// in- and out-edges, no self-loops, isolated nodes kept).
func naiveUndirected(g Directed) map[identity.NodeID]map[identity.NodeID]bool {
	u := make(map[identity.NodeID]map[identity.NodeID]bool, len(g))
	add := func(a, b identity.NodeID) {
		if a == b {
			return
		}
		if u[a] == nil {
			u[a] = make(map[identity.NodeID]bool)
		}
		u[a][b] = true
	}
	for id := range g {
		if u[id] == nil {
			u[id] = make(map[identity.NodeID]bool)
		}
	}
	for from, outs := range g {
		for _, to := range outs {
			add(from, to)
			add(to, from)
		}
	}
	return u
}

// naiveClustering computes local clustering by direct triangle
// counting over the reference projection.
func naiveClustering(g Directed) map[identity.NodeID]float64 {
	u := naiveUndirected(g)
	out := make(map[identity.NodeID]float64, len(u))
	for id, nbrs := range u {
		k := len(nbrs)
		if k < 2 {
			out[id] = 0
			continue
		}
		links := 0
		for a := range nbrs {
			for b := range nbrs {
				if a < b && u[a][b] {
					links++
				}
			}
		}
		out[id] = float64(2*links) / float64(k*(k-1))
	}
	return out
}

// naiveConnected checks weak connectivity by BFS over the reference
// projection.
func naiveConnected(g Directed) bool {
	u := naiveUndirected(g)
	if len(u) == 0 {
		return true
	}
	var start identity.NodeID
	for id := range u {
		start = id
		break
	}
	seen := map[identity.NodeID]bool{start: true}
	queue := []identity.NodeID{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for n := range u[v] {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return len(seen) == len(u)
}

// TestStreamMatchesReference pins the stream metrics — the single
// implementation all reports (and Directed's methods) run on — against
// independent brute-force references (the fig5 golden depends on it).
func TestStreamMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randomDirected(rng, 40+trial*10, 5)
		s := g.Stream()
		if got, want := s.InDegrees(), naiveInDegrees(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: InDegrees diverged\nstream:    %v\nreference: %v", trial, got, want)
		}
		out := s.OutDegrees()
		for id, outs := range g {
			if out[id] != len(outs) {
				t.Fatalf("trial %d: OutDegrees[%v] = %d, want %d", trial, id, out[id], len(outs))
			}
		}
		if len(out) != len(g) {
			t.Fatalf("trial %d: OutDegrees has %d nodes, want %d", trial, len(out), len(g))
		}
		if got, want := s.ClusteringCoefficients(), naiveClustering(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: ClusteringCoefficients diverged", trial)
		}
		if got, want := s.WeaklyConnected(), naiveConnected(g); got != want {
			t.Fatalf("trial %d: WeaklyConnected diverged: stream %v, reference %v", trial, got, want)
		}
		if got := s.Collect(); !reflect.DeepEqual(got, g) {
			t.Fatalf("trial %d: Collect did not round-trip", trial)
		}
	}
}

func TestStreamWeaklyConnected(t *testing.T) {
	connected := Directed{1: {2}, 2: {3}, 3: {}, 4: {1}}
	if !connected.Stream().WeaklyConnected() {
		t.Error("connected graph reported disconnected")
	}
	split := Directed{1: {2}, 2: {}, 3: {4}, 4: {}}
	if split.Stream().WeaklyConnected() {
		t.Error("two components reported connected")
	}
	// Empty graphs are trivially connected in both the eager and the
	// lazy implementation.
	if !(Directed{}).Stream().WeaklyConnected() {
		t.Error("empty graph semantics diverged from the eager path")
	}
}

// TestStreamEarlyStop pins the lazy contract: a consumer returning
// false stops the walk immediately.
func TestStreamEarlyStop(t *testing.T) {
	g := randomDirected(rand.New(rand.NewSource(3)), 50, 4)
	visited := 0
	g.Stream()(func(identity.NodeID, []identity.NodeID) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Errorf("walk visited %d nodes after stop at 5", visited)
	}
}
