// Package identity defines node identifiers and their key pairs, plus
// a pre-generated key pool that makes thousand-node simulations
// affordable on one core. The key pair's crypto suite (rsa2048 by
// default, ecc for the modern path; see crypt.Suite) determines every
// asymmetric primitive the node uses.
package identity

import (
	"encoding/binary"
	"fmt"
	mrand "math/rand"

	"whisper/internal/crypt"
)

// NodeID uniquely identifies a node in the system.
type NodeID uint64

// Nil is the zero NodeID, used as "no node" (the paper's ⊥).
const Nil NodeID = 0

func (id NodeID) String() string {
	if id == Nil {
		return "⊥"
	}
	return fmt.Sprintf("N%d", uint64(id))
}

// DefaultKeyBits is the default RSA modulus size. The paper used
// RSA with ~1 KB serialized public keys; 1024-bit keys match the 2011
// setting. Tests use smaller keys via the key pool for speed. The ecc
// suite ignores bit sizes (its curves are fixed).
const DefaultKeyBits = 1024

// Identity is a node's long-term identity: its ID and key pair.
type Identity struct {
	ID  NodeID
	Key crypt.PrivateKey
}

// New generates a fresh rsa2048-suite identity with a key of the given
// modulus size.
func New(id NodeID, bits int) (*Identity, error) {
	return NewSuite(id, crypt.SuiteRSA2048, bits)
}

// NewSuite generates a fresh identity on the given crypto suite. bits
// sizes RSA moduli (DefaultKeyBits if zero) and is ignored by
// fixed-size suites.
func NewSuite(id NodeID, suite crypt.SuiteID, bits int) (*Identity, error) {
	if id == Nil {
		return nil, fmt.Errorf("identity: NodeID 0 is reserved")
	}
	if bits == 0 {
		bits = DefaultKeyBits
	}
	key, err := crypt.GenerateKey(suite, bits)
	if err != nil {
		return nil, fmt.Errorf("identity: generating %v key: %w", suite, err)
	}
	return &Identity{ID: id, Key: key}, nil
}

// Public returns the identity's public key.
func (id *Identity) Public() crypt.PublicKey { return id.Key.Public() }

// DeriveID maps a public key to the node identifier bound to it: the
// first 8 bytes of the key fingerprint, never Nil. Nodes that boot
// without an operator-assigned identifier (whisper-node -id 0) use
// this, which ties the identifier to the key pair the way S/Kademlia
// derives node IDs from identity keys.
func DeriveID(pub crypt.PublicKey) NodeID {
	fp := crypt.KeyFingerprint(pub)
	id := NodeID(binary.BigEndian.Uint64(fp[:]))
	if id == Nil {
		id = 1
	}
	return id
}

// Pool hands out keys from a pre-generated set. Large simulations deal
// keys round-robin: two nodes may then share a key pair, which does not
// affect protocol correctness (every ciphertext is AEAD-authenticated
// and peeled only by the addressed hop) but cuts setup from minutes to
// milliseconds. Experiments that need unique keys per node simply size
// the pool to the node count.
type Pool struct {
	keys []crypt.PrivateKey
	next int
}

// NewPool generates n rsa2048-suite keys of the given modulus size
// (DefaultKeyBits if bits is zero).
func NewPool(n, bits int) (*Pool, error) {
	return NewSuitePool(n, crypt.SuiteRSA2048, bits)
}

// NewSuitePool generates n keys on the given crypto suite. bits sizes
// RSA moduli (DefaultKeyBits if zero) and is ignored by fixed-size
// suites.
func NewSuitePool(n int, suite crypt.SuiteID, bits int) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("identity: pool size %d", n)
	}
	if bits == 0 {
		bits = DefaultKeyBits
	}
	p := &Pool{keys: make([]crypt.PrivateKey, n)}
	for i := range p.keys {
		k, err := crypt.GenerateKey(suite, bits)
		if err != nil {
			return nil, fmt.Errorf("identity: pool key %d: %w", i, err)
		}
		p.keys[i] = k
	}
	return p, nil
}

// Size returns the number of distinct keys in the pool.
func (p *Pool) Size() int { return len(p.keys) }

// Suite returns the crypto suite of the pool's keys.
func (p *Pool) Suite() crypt.SuiteID { return p.keys[0].Suite() }

// Next deals the next key round-robin.
func (p *Pool) Next() crypt.PrivateKey {
	k := p.keys[p.next%len(p.keys)]
	p.next++
	return k
}

// Identity builds an identity for id using the next pooled key.
func (p *Pool) Identity(id NodeID) *Identity {
	return &Identity{ID: id, Key: p.Next()}
}

// View returns an independent cursor over the same keys, starting at
// the given offset. Concurrent simulation runs each take a view so that
// key dealing stays deterministic per run (a run's draws depend only on
// its own offset, never on sibling runs) and involves no shared state.
func (p *Pool) View(offset int) *Pool {
	if offset < 0 {
		offset = 0
	}
	return &Pool{keys: p.keys, next: offset % len(p.keys)}
}

// RandomID draws a non-nil NodeID from rng.
func RandomID(rng *mrand.Rand) NodeID {
	for {
		if id := NodeID(rng.Uint64()); id != Nil {
			return id
		}
	}
}
