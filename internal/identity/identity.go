// Package identity defines node identifiers and their RSA key pairs,
// plus a pre-generated key pool that makes thousand-node simulations
// affordable on one core.
package identity

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	mrand "math/rand"
)

// NodeID uniquely identifies a node in the system.
type NodeID uint64

// Nil is the zero NodeID, used as "no node" (the paper's ⊥).
const Nil NodeID = 0

func (id NodeID) String() string {
	if id == Nil {
		return "⊥"
	}
	return fmt.Sprintf("N%d", uint64(id))
}

// DefaultKeyBits is the default RSA modulus size. The paper used
// RSA with ~1 KB serialized public keys; 1024-bit keys match the 2011
// setting. Tests use smaller keys via the key pool for speed.
const DefaultKeyBits = 1024

// Identity is a node's long-term identity: its ID and RSA key pair.
type Identity struct {
	ID  NodeID
	Key *rsa.PrivateKey
}

// New generates a fresh identity with a key of the given modulus size.
func New(id NodeID, bits int) (*Identity, error) {
	if id == Nil {
		return nil, fmt.Errorf("identity: NodeID 0 is reserved")
	}
	if bits == 0 {
		bits = DefaultKeyBits
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("identity: generating %d-bit key: %w", bits, err)
	}
	// CRT precomputation makes every private-key operation (the RSA
	// decryptions that dominate Table II) several times faster; do it
	// once at generation rather than lazily on first use.
	key.Precompute()
	return &Identity{ID: id, Key: key}, nil
}

// Public returns the identity's public key.
func (id *Identity) Public() *rsa.PublicKey { return &id.Key.PublicKey }

// Pool hands out keys from a pre-generated set. Large simulations deal
// keys round-robin: two nodes may then share a modulus, which does not
// affect protocol correctness (every ciphertext is AEAD-authenticated
// and peeled only by the addressed hop) but cuts setup from minutes to
// milliseconds. Experiments that need unique keys per node simply size
// the pool to the node count.
type Pool struct {
	keys []*rsa.PrivateKey
	next int
}

// NewPool generates n keys of the given modulus size (DefaultKeyBits
// if bits is zero).
func NewPool(n, bits int) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("identity: pool size %d", n)
	}
	if bits == 0 {
		bits = DefaultKeyBits
	}
	p := &Pool{keys: make([]*rsa.PrivateKey, n)}
	for i := range p.keys {
		k, err := rsa.GenerateKey(rand.Reader, bits)
		if err != nil {
			return nil, fmt.Errorf("identity: pool key %d: %w", i, err)
		}
		k.Precompute()
		p.keys[i] = k
	}
	return p, nil
}

// Size returns the number of distinct keys in the pool.
func (p *Pool) Size() int { return len(p.keys) }

// Next deals the next key round-robin.
func (p *Pool) Next() *rsa.PrivateKey {
	k := p.keys[p.next%len(p.keys)]
	p.next++
	return k
}

// Identity builds an identity for id using the next pooled key.
func (p *Pool) Identity(id NodeID) *Identity {
	return &Identity{ID: id, Key: p.Next()}
}

// View returns an independent cursor over the same keys, starting at
// the given offset. Concurrent simulation runs each take a view so that
// key dealing stays deterministic per run (a run's draws depend only on
// its own offset, never on sibling runs) and involves no shared state.
func (p *Pool) View(offset int) *Pool {
	if offset < 0 {
		offset = 0
	}
	return &Pool{keys: p.keys, next: offset % len(p.keys)}
}

// RandomID draws a non-nil NodeID from rng.
func RandomID(rng *mrand.Rand) NodeID {
	for {
		if id := NodeID(rng.Uint64()); id != Nil {
			return id
		}
	}
}
