// Package identity defines node identifiers and their key pairs, plus
// a pre-generated key pool that makes thousand-node simulations
// affordable on one core. The key pair's crypto suite (rsa2048 by
// default, ecc for the modern path; see crypt.Suite) determines every
// asymmetric primitive the node uses.
package identity

import (
	"encoding/binary"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"

	"whisper/internal/crypt"
)

// NodeID uniquely identifies a node in the system.
type NodeID uint64

// Nil is the zero NodeID, used as "no node" (the paper's ⊥).
const Nil NodeID = 0

func (id NodeID) String() string {
	if id == Nil {
		return "⊥"
	}
	return fmt.Sprintf("N%d", uint64(id))
}

// DefaultKeyBits is the default RSA modulus size. The paper used
// RSA with ~1 KB serialized public keys; 1024-bit keys match the 2011
// setting. Tests use smaller keys via the key pool for speed. The ecc
// suite ignores bit sizes (its curves are fixed).
const DefaultKeyBits = 1024

// Identity is a node's long-term identity: its ID and key pair.
type Identity struct {
	ID  NodeID
	Key crypt.PrivateKey
}

// New generates a fresh rsa2048-suite identity with a key of the given
// modulus size.
func New(id NodeID, bits int) (*Identity, error) {
	return NewSuite(id, crypt.SuiteRSA2048, bits)
}

// NewSuite generates a fresh identity on the given crypto suite. bits
// sizes RSA moduli (DefaultKeyBits if zero) and is ignored by
// fixed-size suites.
func NewSuite(id NodeID, suite crypt.SuiteID, bits int) (*Identity, error) {
	if id == Nil {
		return nil, fmt.Errorf("identity: NodeID 0 is reserved")
	}
	if bits == 0 {
		bits = DefaultKeyBits
	}
	key, err := crypt.GenerateKey(suite, bits)
	if err != nil {
		return nil, fmt.Errorf("identity: generating %v key: %w", suite, err)
	}
	return &Identity{ID: id, Key: key}, nil
}

// Public returns the identity's public key.
func (id *Identity) Public() crypt.PublicKey { return id.Key.Public() }

// DeriveID maps a public key to the node identifier bound to it: the
// first 8 bytes of the key fingerprint, never Nil. Nodes that boot
// without an operator-assigned identifier (whisper-node -id 0) use
// this, which ties the identifier to the key pair the way S/Kademlia
// derives node IDs from identity keys.
func DeriveID(pub crypt.PublicKey) NodeID {
	fp := crypt.KeyFingerprint(pub)
	id := NodeID(binary.BigEndian.Uint64(fp[:]))
	if id == Nil {
		id = 1
	}
	return id
}

// Pool hands out keys from a bounded set, generated lazily on first
// use. Large simulations deal keys round-robin: two nodes may then
// share a key pair, which does not affect protocol correctness (every
// ciphertext is AEAD-authenticated and peeled only by the addressed
// hop) but cuts setup from minutes to milliseconds. Experiments that
// need unique keys per node simply size the pool to the node count.
//
// Laziness decouples setup cost from the declared size: a million-node
// world can declare a million-key pool and only pay keygen for the keys
// its nodes actually draw, and a pool sized far above the node count
// behaves identically to one sized exactly (slot i is generated the
// first time any cursor lands on it). Prefill generates ahead of time,
// in parallel, when keygen latency inside the run is unwanted.
type Pool struct {
	b    *poolBacking
	next int
}

// poolBacking is the key store shared by a pool and all its views: a
// fixed-size slot table deduplicating generation (each slot's key is
// generated at most once, no matter how many cursors pass over it).
type poolBacking struct {
	suite crypt.SuiteID
	bits  int

	mu   sync.Mutex
	keys []crypt.PrivateKey // slot table, nil = not yet generated
	gen  int                // slots filled so far
}

// key returns slot i, generating it on first access.
func (b *poolBacking) key(i int) crypt.PrivateKey {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.keys[i] == nil {
		k, err := crypt.GenerateKey(b.suite, b.bits)
		if err != nil {
			// Key generation fails only when the process's entropy
			// source does; there is no meaningful recovery.
			panic(fmt.Sprintf("identity: pool key %d: %v", i, err))
		}
		b.keys[i] = k
		b.gen++
	}
	return b.keys[i]
}

// NewPool creates a pool of n rsa2048-suite keys of the given modulus
// size (DefaultKeyBits if bits is zero), generated lazily as dealt.
func NewPool(n, bits int) (*Pool, error) {
	return NewSuitePool(n, crypt.SuiteRSA2048, bits)
}

// NewSuitePool creates a pool of n keys on the given crypto suite,
// generated lazily as dealt. bits sizes RSA moduli (DefaultKeyBits if
// zero) and is ignored by fixed-size suites.
func NewSuitePool(n int, suite crypt.SuiteID, bits int) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("identity: pool size %d", n)
	}
	if bits == 0 {
		bits = DefaultKeyBits
	}
	return &Pool{b: &poolBacking{
		suite: suite,
		bits:  bits,
		keys:  make([]crypt.PrivateKey, n),
	}}, nil
}

// poolFromKeys wraps pre-generated keys (the test-key cache path).
func poolFromKeys(suite crypt.SuiteID, keys []crypt.PrivateKey) *Pool {
	return &Pool{b: &poolBacking{
		suite: suite,
		bits:  DefaultKeyBits,
		keys:  append([]crypt.PrivateKey(nil), keys...),
		gen:   len(keys),
	}}
}

// Size returns the number of distinct key slots in the pool.
func (p *Pool) Size() int { return len(p.b.keys) }

// Generated returns how many slots hold a generated key so far.
func (p *Pool) Generated() int {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	return p.b.gen
}

// Suite returns the crypto suite of the pool's keys.
func (p *Pool) Suite() crypt.SuiteID { return p.b.suite }

// Next deals the next key round-robin.
func (p *Pool) Next() crypt.PrivateKey {
	k := p.b.key(p.next % len(p.b.keys))
	p.next++
	return k
}

// Identity builds an identity for id using the next pooled key.
func (p *Pool) Identity(id NodeID) *Identity {
	return &Identity{ID: id, Key: p.Next()}
}

// Prefill generates the first n key slots (the whole pool if n <= 0 or
// above Size) using up to workers parallel generators, so that a run
// measuring steady-state behaviour does not absorb keygen latency on
// its setup path. It is safe concurrently with Next; generation of each
// slot still happens at most once. Returns the number of keys newly
// generated.
func (p *Pool) Prefill(n, workers int) int {
	b := p.b
	if n <= 0 || n > len(b.keys) {
		n = len(b.keys)
	}
	if workers < 1 {
		workers = 1
	}
	// Collect the slots that still need keys.
	b.mu.Lock()
	var missing []int
	for i := 0; i < n; i++ {
		if b.keys[i] == nil {
			missing = append(missing, i)
		}
	}
	b.mu.Unlock()
	if len(missing) == 0 {
		return 0
	}
	if workers > len(missing) {
		workers = len(missing)
	}
	type gen struct {
		slot int
		key  crypt.PrivateKey
	}
	var cursor atomic.Int64
	out := make(chan gen, len(missing))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(missing) {
					return
				}
				k, err := crypt.GenerateKey(b.suite, b.bits)
				if err != nil {
					panic(fmt.Sprintf("identity: pool prefill: %v", err))
				}
				out <- gen{slot: missing[i], key: k}
			}
		}()
	}
	wg.Wait()
	close(out)
	filled := 0
	b.mu.Lock()
	for g := range out {
		if b.keys[g.slot] == nil { // a racing Next may have won the slot
			b.keys[g.slot] = g.key
			b.gen++
			filled++
		}
	}
	b.mu.Unlock()
	return filled
}

// View returns an independent cursor over the same key slots, starting
// at the given offset. Concurrent simulation runs each take a view so
// that key dealing stays deterministic per run (a run's draws depend
// only on its own offset, never on sibling runs); the shared backing
// synchronizes generation, so views are safe to drive concurrently.
func (p *Pool) View(offset int) *Pool {
	if offset < 0 {
		offset = 0
	}
	return &Pool{b: p.b, next: offset % len(p.b.keys)}
}

// RandomID draws a non-nil NodeID from rng.
func RandomID(rng *mrand.Rand) NodeID {
	for {
		if id := NodeID(rng.Uint64()); id != Nil {
			return id
		}
	}
}
