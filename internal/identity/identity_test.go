package identity

import (
	"crypto/rsa"
	"math/rand"
	"testing"

	"whisper/internal/crypt"
)

// rsaKey unwraps a pooled key's concrete RSA private key.
func rsaKey(t *testing.T, k crypt.PrivateKey) *rsa.PrivateKey {
	t.Helper()
	w, ok := k.(*crypt.RSAPrivateKey)
	if !ok {
		t.Fatalf("key is %T, want *crypt.RSAPrivateKey", k)
	}
	return w.K
}

func TestNewIdentity(t *testing.T) {
	id, err := New(7, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if id.ID != 7 || id.Key == nil {
		t.Fatalf("identity: %+v", id)
	}
	if id.Public() != id.Key.Public() {
		t.Fatal("Public() does not alias the key pair")
	}
	if id.Key.Suite() != crypt.SuiteRSA2048 {
		t.Fatalf("default suite = %v", id.Key.Suite())
	}
	if rsaKey(t, id.Key).PublicKey.N.BitLen() != 1024 {
		t.Fatal("modulus size mismatch")
	}
}

func TestNewSuiteECC(t *testing.T) {
	id, err := NewSuite(8, crypt.SuiteECC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if id.Key.Suite() != crypt.SuiteECC || id.Public().Suite() != crypt.SuiteECC {
		t.Fatalf("suite: %v/%v", id.Key.Suite(), id.Public().Suite())
	}
}

func TestNewRejectsNilID(t *testing.T) {
	if _, err := New(Nil, 1024); err == nil {
		t.Fatal("NodeID 0 accepted")
	}
	if _, err := NewSuite(Nil, crypt.SuiteECC, 0); err == nil {
		t.Fatal("NodeID 0 accepted by NewSuite")
	}
}

func TestNodeIDString(t *testing.T) {
	if Nil.String() != "⊥" {
		t.Fatalf("Nil.String() = %q", Nil.String())
	}
	if NodeID(42).String() != "N42" {
		t.Fatalf("String = %q", NodeID(42).String())
	}
}

func TestDeriveID(t *testing.T) {
	for _, suite := range []crypt.SuiteID{crypt.SuiteRSA2048, crypt.SuiteECC} {
		ks := TestSuiteKeys(suite, 2)
		a, b := DeriveID(ks[0].Public()), DeriveID(ks[1].Public())
		if a == Nil || b == Nil {
			t.Fatalf("%v: derived Nil ID", suite)
		}
		if a == b {
			t.Fatalf("%v: distinct keys derived the same ID", suite)
		}
		if DeriveID(ks[0].Public()) != a {
			t.Fatalf("%v: DeriveID not stable", suite)
		}
	}
}

func TestPoolRoundRobin(t *testing.T) {
	p := TestPool(3)
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	k0, k1, k2, k3 := p.Next(), p.Next(), p.Next(), p.Next()
	if k0 == k1 || k1 == k2 {
		t.Fatal("pool repeated a key early")
	}
	if k3 != k0 {
		t.Fatal("pool did not wrap round-robin")
	}
	id := p.Identity(9)
	if id.ID != 9 || id.Key == nil {
		t.Fatalf("pool identity: %+v", id)
	}
	if p.Suite() != crypt.SuiteRSA2048 {
		t.Fatalf("pool suite = %v", p.Suite())
	}
}

func TestSuitePoolECC(t *testing.T) {
	p := TestSuitePool(crypt.SuiteECC, 2)
	if p.Suite() != crypt.SuiteECC {
		t.Fatalf("pool suite = %v", p.Suite())
	}
	if p.Next().Suite() != crypt.SuiteECC {
		t.Fatal("pooled key has wrong suite")
	}
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 1024); err == nil {
		t.Fatal("zero-size pool accepted")
	}
}

func TestTestKeysCacheGrowsAndReuses(t *testing.T) {
	a := TestKeys(2)
	b := TestKeys(4)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("cache regenerated existing keys")
	}
	if len(b) != 4 {
		t.Fatalf("len = %d", len(b))
	}
}

// precomputed reports whether the CRT acceleration values of a private
// key are populated (Precompute ran at generation).
func precomputed(k *rsa.PrivateKey) bool {
	return k.Precomputed.Dp != nil && k.Precomputed.Dq != nil && k.Precomputed.Qinv != nil
}

func TestKeysArePrecomputed(t *testing.T) {
	id, err := New(11, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !precomputed(rsaKey(t, id.Key)) {
		t.Error("New: CRT values not precomputed")
	}
	p, err := NewPool(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !precomputed(rsaKey(t, p.Next())) {
		t.Error("NewPool: CRT values not precomputed")
	}
	for i, k := range TestKeys(2) {
		if !precomputed(rsaKey(t, k)) {
			t.Errorf("TestKeys[%d]: CRT values not precomputed", i)
		}
	}
}

func TestPoolViewIndependentCursor(t *testing.T) {
	p := TestPool(3)
	if got := p.View(1).Next(); got != p.b.keys[1] {
		t.Fatal("view did not start at its offset")
	}
	before := p.next
	v := p.View(0)
	v.Next()
	v.Next()
	if p.next != before {
		t.Fatal("view draws advanced the parent cursor")
	}
	if v.b != p.b {
		t.Fatal("view copied the key backing")
	}
	if got := p.View(7).next; got != 7%3 {
		t.Fatalf("View(7).next = %d, want %d", got, 7%3)
	}
	if got := p.View(-2).next; got != 0 {
		t.Fatalf("View(-2).next = %d, want 0", got)
	}
}

func TestPoolLazyGeneration(t *testing.T) {
	p, err := NewSuitePool(8, crypt.SuiteECC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Generated(); got != 0 {
		t.Fatalf("fresh pool generated %d keys, want 0", got)
	}
	a := p.Next()
	if got := p.Generated(); got != 1 {
		t.Fatalf("after one draw generated = %d, want 1", got)
	}
	// A view over the same slot must deal the same key, not regenerate.
	if got := p.View(0).Next(); got != a {
		t.Fatal("view regenerated an existing slot")
	}
	if got := p.Generated(); got != 1 {
		t.Fatalf("view draw generated a duplicate: %d", got)
	}
	// Wrapping the cursor reuses slots without generating more.
	for i := 0; i < 20; i++ {
		p.Next()
	}
	if got := p.Generated(); got != 8 {
		t.Fatalf("after wrap generated = %d, want 8", got)
	}
}

func TestPoolPrefillParallel(t *testing.T) {
	p, err := NewSuitePool(9, crypt.SuiteECC, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Next() // slot 0 generated on demand
	if filled := p.Prefill(0, 4); filled != 8 {
		t.Fatalf("Prefill generated %d keys, want 8", filled)
	}
	if got := p.Generated(); got != 9 {
		t.Fatalf("after prefill generated = %d, want 9", got)
	}
	if filled := p.Prefill(0, 4); filled != 0 {
		t.Fatalf("second Prefill regenerated %d keys", filled)
	}
	// Every slot distinct: round-robin over a full cycle repeats nothing.
	seen := map[crypt.PrivateKey]bool{}
	v := p.View(0)
	for i := 0; i < 9; i++ {
		k := v.Next()
		if seen[k] {
			t.Fatal("prefilled pool dealt a duplicate inside one cycle")
		}
		seen[k] = true
	}
}

func TestRandomIDNeverNil(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[NodeID]bool{}
	for i := 0; i < 1000; i++ {
		id := RandomID(rng)
		if id == Nil {
			t.Fatal("RandomID returned Nil")
		}
		seen[id] = true
	}
	if len(seen) < 990 {
		t.Fatalf("suspicious collision rate: %d unique of 1000", len(seen))
	}
}

func TestNewDefaultsBits(t *testing.T) {
	id, err := New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rsaKey(t, id.Key).PublicKey.N.BitLen(); got != DefaultKeyBits {
		t.Fatalf("default modulus %d bits, want %d", got, DefaultKeyBits)
	}
}

func TestNewPoolGeneratesRealKeys(t *testing.T) {
	p, err := NewPool(2, 0) // default bits
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2 {
		t.Fatalf("Size = %d", p.Size())
	}
	a, b := p.Next(), p.Next()
	if a == b || rsaKey(t, a).PublicKey.N.Cmp(rsaKey(t, b).PublicKey.N) == 0 {
		t.Fatal("pool keys not distinct")
	}
	if rsaKey(t, a).PublicKey.N.BitLen() != DefaultKeyBits {
		t.Fatal("pool modulus size mismatch")
	}
}
