package identity

import (
	"crypto/rsa"
	"math/rand"
	"testing"
)

func TestNewIdentity(t *testing.T) {
	id, err := New(7, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if id.ID != 7 || id.Key == nil {
		t.Fatalf("identity: %+v", id)
	}
	if id.Public() != &id.Key.PublicKey {
		t.Fatal("Public() does not alias the key pair")
	}
	if id.Key.PublicKey.N.BitLen() != 1024 {
		t.Fatalf("modulus %d bits, want 1024", id.Key.PublicKey.N.BitLen())
	}
}

func TestNewRejectsNilID(t *testing.T) {
	if _, err := New(Nil, 1024); err == nil {
		t.Fatal("NodeID 0 accepted")
	}
}

func TestNodeIDString(t *testing.T) {
	if Nil.String() != "⊥" {
		t.Fatalf("Nil.String() = %q", Nil.String())
	}
	if NodeID(42).String() != "N42" {
		t.Fatalf("String = %q", NodeID(42).String())
	}
}

func TestPoolRoundRobin(t *testing.T) {
	p := TestPool(3)
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	k0, k1, k2, k3 := p.Next(), p.Next(), p.Next(), p.Next()
	if k0 == k1 || k1 == k2 {
		t.Fatal("pool repeated a key early")
	}
	if k3 != k0 {
		t.Fatal("pool did not wrap round-robin")
	}
	id := p.Identity(9)
	if id.ID != 9 || id.Key == nil {
		t.Fatalf("pool identity: %+v", id)
	}
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 1024); err == nil {
		t.Fatal("zero-size pool accepted")
	}
}

func TestTestKeysCacheGrowsAndReuses(t *testing.T) {
	a := TestKeys(2)
	b := TestKeys(4)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("cache regenerated existing keys")
	}
	if len(b) != 4 {
		t.Fatalf("len = %d", len(b))
	}
}

// precomputed reports whether the CRT acceleration values of a private
// key are populated (Precompute ran).
func precomputed(k *rsa.PrivateKey) bool {
	return k.Precomputed.Dp != nil && k.Precomputed.Dq != nil && k.Precomputed.Qinv != nil
}

func TestKeysArePrecomputed(t *testing.T) {
	id, err := New(11, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !precomputed(id.Key) {
		t.Error("New: CRT values not precomputed")
	}
	p, err := NewPool(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !precomputed(p.Next()) {
		t.Error("NewPool: CRT values not precomputed")
	}
	for i, k := range TestKeys(2) {
		if !precomputed(k) {
			t.Errorf("TestKeys[%d]: CRT values not precomputed", i)
		}
	}
}

func TestPoolViewIndependentCursor(t *testing.T) {
	p := TestPool(3)
	if got := p.View(1).Next(); got != p.keys[1] {
		t.Fatal("view did not start at its offset")
	}
	before := p.next
	v := p.View(0)
	v.Next()
	v.Next()
	if p.next != before {
		t.Fatal("view draws advanced the parent cursor")
	}
	if &v.keys[0] != &p.keys[0] {
		t.Fatal("view copied the key slice")
	}
	if got := p.View(7).next; got != 7%3 {
		t.Fatalf("View(7).next = %d, want %d", got, 7%3)
	}
	if got := p.View(-2).next; got != 0 {
		t.Fatalf("View(-2).next = %d, want 0", got)
	}
}

func TestRandomIDNeverNil(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[NodeID]bool{}
	for i := 0; i < 1000; i++ {
		id := RandomID(rng)
		if id == Nil {
			t.Fatal("RandomID returned Nil")
		}
		seen[id] = true
	}
	if len(seen) < 990 {
		t.Fatalf("suspicious collision rate: %d unique of 1000", len(seen))
	}
}

func TestNewDefaultsBits(t *testing.T) {
	id, err := New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := id.Key.PublicKey.N.BitLen(); got != DefaultKeyBits {
		t.Fatalf("default modulus %d bits, want %d", got, DefaultKeyBits)
	}
}

func TestNewPoolGeneratesRealKeys(t *testing.T) {
	p, err := NewPool(2, 0) // default bits
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2 {
		t.Fatalf("Size = %d", p.Size())
	}
	a, b := p.Next(), p.Next()
	if a == b || a.PublicKey.N.Cmp(b.PublicKey.N) == 0 {
		t.Fatal("pool keys not distinct")
	}
	if a.PublicKey.N.BitLen() != DefaultKeyBits {
		t.Fatalf("pool modulus %d bits", a.PublicKey.N.BitLen())
	}
}
