package identity

import (
	"crypto/rand"
	"crypto/rsa"
	"sync"
)

// testKeyCache holds lazily generated 1024-bit keys shared by tests and
// benchmarks across the repository. RSA key generation costs ~20 ms per
// key; reusing a process-wide cache keeps thousand-node test networks
// fast while preserving protocol semantics (see Pool).
var testKeyCache struct {
	mu   sync.Mutex
	keys []*rsa.PrivateKey
}

// TestKeys returns n cached 1024-bit private keys, generating any that
// do not exist yet. Intended for tests and benchmarks only.
func TestKeys(n int) []*rsa.PrivateKey {
	testKeyCache.mu.Lock()
	defer testKeyCache.mu.Unlock()
	for len(testKeyCache.keys) < n {
		k, err := rsa.GenerateKey(rand.Reader, DefaultKeyBits)
		if err != nil {
			panic("identity: test key generation failed: " + err.Error())
		}
		k.Precompute()
		testKeyCache.keys = append(testKeyCache.keys, k)
	}
	return testKeyCache.keys[:n]
}

// TestPool wraps TestKeys in a Pool of size n.
func TestPool(n int) *Pool {
	return &Pool{keys: TestKeys(n)}
}
