package identity

import (
	"sync"

	"whisper/internal/crypt"
)

// testKeyCache holds lazily generated keys shared by tests and
// benchmarks across the repository, one cache per crypto suite. RSA
// key generation costs ~20 ms per key; reusing a process-wide cache
// keeps thousand-node test networks fast while preserving protocol
// semantics (see Pool).
var testKeyCache struct {
	mu   sync.Mutex
	keys map[crypt.SuiteID][]crypt.PrivateKey
}

// TestKeys returns n cached default-bits rsa2048 private keys,
// generating any that do not exist yet. Intended for tests and
// benchmarks only.
func TestKeys(n int) []crypt.PrivateKey { return TestSuiteKeys(crypt.SuiteRSA2048, n) }

// TestSuiteKeys is TestKeys for an arbitrary suite.
func TestSuiteKeys(suite crypt.SuiteID, n int) []crypt.PrivateKey {
	testKeyCache.mu.Lock()
	defer testKeyCache.mu.Unlock()
	if testKeyCache.keys == nil {
		testKeyCache.keys = make(map[crypt.SuiteID][]crypt.PrivateKey)
	}
	cached := testKeyCache.keys[suite]
	for len(cached) < n {
		k, err := crypt.GenerateKey(suite, DefaultKeyBits)
		if err != nil {
			panic("identity: test key generation failed: " + err.Error())
		}
		cached = append(cached, k)
	}
	testKeyCache.keys[suite] = cached
	return cached[:n:n]
}

// TestPool wraps TestKeys in a Pool of size n.
func TestPool(n int) *Pool {
	return poolFromKeys(crypt.SuiteRSA2048, TestKeys(n))
}

// TestSuitePool wraps TestSuiteKeys in a Pool of size n.
func TestSuitePool(suite crypt.SuiteID, n int) *Pool {
	return poolFromKeys(suite, TestSuiteKeys(suite, n))
}
