// Package keyss implements the decentralized public-key sampling
// service of §III-B-2: nodes piggyback their public key on gossip
// exchanges so that every node knows the key of each entry in its
// connection backlog, which is what the WCL needs to build onion
// layers. The store itself is a plain keyed cache; the piggybacking is
// done by the Nylon layer, and the bandwidth it costs is what Fig 6
// measures.
package keyss

import (
	"fmt"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/wire"
)

// DefaultKeyBlobSize is the on-the-wire size of one serialized public
// key. The paper's prototype shipped 1 KB keys; padding the DER
// encoding to a fixed blob reproduces that accounting regardless of the
// RSA modulus chosen for a run.
const DefaultKeyBlobSize = 1024

// Store caches public keys learned through gossip. The map is
// allocated on first Put: stacks running with key sampling disabled
// (the large-population scale runs) never pay for it.
type Store struct {
	keys map[identity.NodeID]crypt.PublicKey
}

// NewStore returns an empty key store.
func NewStore() *Store {
	return &Store{}
}

// Put records the key for id, overwriting any previous one.
func (s *Store) Put(id identity.NodeID, pub crypt.PublicKey) {
	if pub == nil {
		return
	}
	if s.keys == nil {
		s.keys = make(map[identity.NodeID]crypt.PublicKey)
	}
	s.keys[id] = pub
}

// Get returns the key for id, or nil if unknown.
func (s *Store) Get(id identity.NodeID) crypt.PublicKey { return s.keys[id] }

// Has reports whether a key is known for id.
func (s *Store) Has(id identity.NodeID) bool { return s.keys[id] != nil }

// Len returns the number of cached keys.
func (s *Store) Len() int { return len(s.keys) }

// Forget drops the key for id (e.g. after the node is declared dead).
func (s *Store) Forget(id identity.NodeID) { delete(s.keys, id) }

// EncodeKey writes pub as a fixed-size padded blob of its suite-tagged
// serialization. A nil key writes an empty blob of the same size, so
// message sizes stay deterministic. blobSize must be at least the
// serialized key size (a 1024-bit RSA key is 162 bytes of DER, an ecc
// key 65 bytes); an undersized configuration is a programmer error and
// panics with a diagnosis.
func EncodeKey(w *wire.Writer, pub crypt.PublicKey, blobSize int) {
	if pub == nil {
		w.Padded(nil, blobSize)
		return
	}
	der := crypt.MarshalPublicKey(pub)
	if len(der) > blobSize {
		panic(fmt.Sprintf("keyss: KeyBlobSize %d is smaller than the %d-byte serialized key; raise the config", blobSize, len(der)))
	}
	w.Padded(der, blobSize)
}

// DecodeKey reads a key written by EncodeKey. It returns nil (and no
// error) for an empty blob; a malformed non-empty blob is an error
// surfaced through the reader's sticky error by returning nil as well —
// callers treat an unparsable key as absent, per the robustness
// principle for gossip input.
func DecodeKey(r *wire.Reader, blobSize int) crypt.PublicKey {
	der := r.Padded(blobSize)
	if len(der) == 0 {
		return nil
	}
	pub, err := crypt.UnmarshalPublicKey(der)
	if err != nil {
		return nil
	}
	return pub
}
