package keyss

import (
	"testing"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/wire"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 || s.Has(1) || s.Get(1) != nil {
		t.Fatal("empty store misbehaves")
	}
	keys := identity.TestKeys(2)
	s.Put(1, keys[0].Public())
	s.Put(2, keys[1].Public())
	if s.Len() != 2 || !s.Has(1) {
		t.Fatal("Put failed")
	}
	if s.Get(1) != keys[0].Public() {
		t.Fatal("Get returned wrong key")
	}
	// Overwrite keeps the newest key (re-keyed identity).
	s.Put(1, keys[1].Public())
	if s.Get(1) != keys[1].Public() || s.Len() != 2 {
		t.Fatal("overwrite failed")
	}
	s.Forget(1)
	if s.Has(1) || s.Len() != 1 {
		t.Fatal("Forget failed")
	}
	// Nil keys are ignored.
	s.Put(9, nil)
	if s.Has(9) {
		t.Fatal("nil key stored")
	}
}

func TestKeyBlobRoundTrip(t *testing.T) {
	key := identity.TestKeys(1)[0]
	w := wire.NewWriter(0)
	EncodeKey(w, key.Public(), 512)
	if w.Len() != 2+512 {
		t.Fatalf("blob size = %d, want deterministic 514", w.Len())
	}
	r := wire.NewReader(w.Bytes())
	got := DecodeKey(r, 512)
	if got == nil || crypt.KeyFingerprint(got) != crypt.KeyFingerprint(key.Public()) {
		t.Fatal("key did not round trip")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNilKeyBlob(t *testing.T) {
	w := wire.NewWriter(0)
	EncodeKey(w, nil, 256)
	if w.Len() != 2+256 {
		t.Fatalf("nil blob size = %d (sizes must stay deterministic)", w.Len())
	}
	r := wire.NewReader(w.Bytes())
	if DecodeKey(r, 256) != nil {
		t.Fatal("nil key decoded as non-nil")
	}
}

func TestGarbageKeyBlobIsAbsent(t *testing.T) {
	w := wire.NewWriter(0)
	w.Padded([]byte("not a DER key"), 256)
	r := wire.NewReader(w.Bytes())
	if DecodeKey(r, 256) != nil {
		t.Fatal("garbage DER produced a key")
	}
	if r.Err() != nil {
		t.Fatal("garbage key must be treated as absent, not a wire error")
	}
}

func TestECCKeyBlobRoundTrip(t *testing.T) {
	key := identity.TestSuiteKeys(crypt.SuiteECC, 1)[0]
	w := wire.NewWriter(0)
	EncodeKey(w, key.Public(), 128)
	if w.Len() != 2+128 {
		t.Fatalf("blob size = %d, want deterministic 130", w.Len())
	}
	r := wire.NewReader(w.Bytes())
	got := DecodeKey(r, 128)
	if got == nil || got.Suite() != crypt.SuiteECC {
		t.Fatalf("ecc key did not round trip: %v", got)
	}
	if crypt.KeyFingerprint(got) != crypt.KeyFingerprint(key.Public()) {
		t.Fatal("ecc fingerprint mismatch after round trip")
	}
}
