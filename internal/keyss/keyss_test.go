package keyss

import (
	"testing"

	"whisper/internal/identity"
	"whisper/internal/wire"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 || s.Has(1) || s.Get(1) != nil {
		t.Fatal("empty store misbehaves")
	}
	keys := identity.TestKeys(2)
	s.Put(1, &keys[0].PublicKey)
	s.Put(2, &keys[1].PublicKey)
	if s.Len() != 2 || !s.Has(1) {
		t.Fatal("Put failed")
	}
	if s.Get(1) != &keys[0].PublicKey {
		t.Fatal("Get returned wrong key")
	}
	// Overwrite keeps the newest key (re-keyed identity).
	s.Put(1, &keys[1].PublicKey)
	if s.Get(1) != &keys[1].PublicKey || s.Len() != 2 {
		t.Fatal("overwrite failed")
	}
	s.Forget(1)
	if s.Has(1) || s.Len() != 1 {
		t.Fatal("Forget failed")
	}
	// Nil keys are ignored.
	s.Put(9, nil)
	if s.Has(9) {
		t.Fatal("nil key stored")
	}
}

func TestKeyBlobRoundTrip(t *testing.T) {
	key := identity.TestKeys(1)[0]
	w := wire.NewWriter(0)
	EncodeKey(w, &key.PublicKey, 512)
	if w.Len() != 2+512 {
		t.Fatalf("blob size = %d, want deterministic 514", w.Len())
	}
	r := wire.NewReader(w.Bytes())
	got := DecodeKey(r, 512)
	if got == nil || got.N.Cmp(key.PublicKey.N) != 0 {
		t.Fatal("key did not round trip")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNilKeyBlob(t *testing.T) {
	w := wire.NewWriter(0)
	EncodeKey(w, nil, 256)
	if w.Len() != 2+256 {
		t.Fatalf("nil blob size = %d (sizes must stay deterministic)", w.Len())
	}
	r := wire.NewReader(w.Bytes())
	if DecodeKey(r, 256) != nil {
		t.Fatal("nil key decoded as non-nil")
	}
}

func TestGarbageKeyBlobIsAbsent(t *testing.T) {
	w := wire.NewWriter(0)
	w.Padded([]byte("not a DER key"), 256)
	r := wire.NewReader(w.Bytes())
	if DecodeKey(r, 256) != nil {
		t.Fatal("garbage DER produced a key")
	}
	if r.Err() != nil {
		t.Fatal("garbage key must be treated as absent, not a wire error")
	}
}
