// Package nat emulates network address translation devices at the
// datagram level. The four device types of the paper's evaluation are
// supported (full cone, restricted cone, port-restricted cone and
// symmetric), with RFC 4787-style mapping and filtering semantics and
// virtual-time association-rule leases.
//
// Traversal outcomes (whether hole punching works for a NAT-type pair)
// are not hard-coded: they emerge from the mapping/filtering rules when
// the traversal handshake of package nylon runs over the emulation. The
// CanPunch matrix below documents the expected results per Ford et al.
// ("Peer-to-peer communication across network address translators") and
// is property-tested against the emulation.
package nat

import (
	"fmt"
	"time"

	"whisper/internal/netem"
	"whisper/internal/simnet"
)

// Type enumerates NAT behaviours. The names mirror the paper's
// experimental settings (§V-A).
type Type int

const (
	// None marks a public host with no NAT (a P-node).
	None Type = iota
	// FullCone uses endpoint-independent mapping and filtering.
	FullCone
	// RestrictedCone uses endpoint-independent mapping and
	// address-dependent filtering.
	RestrictedCone
	// PortRestrictedCone uses endpoint-independent mapping and
	// address-and-port-dependent filtering.
	PortRestrictedCone
	// Symmetric uses address-and-port-dependent mapping (a fresh
	// external port per destination) and address-and-port-dependent
	// filtering. Hole punching through it generally fails and relays
	// must be used, as the paper notes.
	Symmetric
)

// EmulatedTypes lists the four emulated NAT device types, i.e. every
// Type except None.
var EmulatedTypes = []Type{FullCone, RestrictedCone, PortRestrictedCone, Symmetric}

func (t Type) String() string {
	switch t {
	case None:
		return "public"
	case FullCone:
		return "full_cone"
	case RestrictedCone:
		return "restricted_cone"
	case PortRestrictedCone:
		return "port_restricted_cone"
	case Symmetric:
		return "sym"
	default:
		return fmt.Sprintf("nat.Type(%d)", int(t))
	}
}

// CanPunch reports whether UDP hole punching is expected to succeed
// between two hosts behind NATs of types a and b, assisted by a
// rendezvous that has observed both external endpoints. A public side
// (None) always works. Per Ford et al., punching fails only when a
// symmetric NAT faces a symmetric or port-restricted one: the symmetric
// side's fresh per-destination port cannot be predicted by a peer that
// filters on exact (address, port).
func CanPunch(a, b Type) bool {
	if a == None || b == None {
		return true
	}
	aSym, bSym := a == Symmetric, b == Symmetric
	if aSym && bSym {
		return false
	}
	if aSym && b == PortRestrictedCone || bSym && a == PortRestrictedCone {
		return false
	}
	return true
}

// NeedsRelay reports whether content between NAT types a and b must be
// forwarded by a relay node because traversal cannot be established.
func NeedsRelay(a, b Type) bool { return !CanPunch(a, b) }

// UDPLease is the association-rule lifetime for UDP-style per-packet
// rules: the 5-minute value from the Cisco specification the paper
// cites.
const UDPLease = 5 * time.Minute

// TCPLease is the lifetime of TCP-style per-connection rules (Cisco:
// 24 hours). The paper's NAT emulation follows the TCP-friendly RFC
// 5382, so warm routes persist far beyond view residence times — the
// property §III-A relies on.
const TCPLease = 24 * time.Hour

// DefaultLease is the association-rule lifetime used when none is
// configured. The stack defaults to TCP-style connections, as the
// paper's prototype does.
const DefaultLease = TCPLease

type filterKey struct {
	ip   netem.IP
	port uint16 // 0 = address-only entry
}

type mapping struct {
	intEP   netem.Endpoint
	extPort uint16
	remote  netem.Endpoint // non-zero only for symmetric mappings
	lastOut time.Duration
	filters map[filterKey]time.Duration
}

type symKey struct {
	intEP  netem.Endpoint
	remote netem.Endpoint
}

// Device is one emulated NAT box serving one or more internal hosts.
// It implements netem.Handler on its external (public) interface and
// netem.Uplink on its internal interface.
type Device struct {
	sim   *simnet.Sim
	net   *netem.Network
	typ   Type
	ext   netem.IP
	lease time.Duration

	inside   map[netem.IP]netem.Handler
	cone     map[netem.Endpoint]*mapping
	sym      map[symKey]*mapping
	byPort   map[uint16]*mapping
	nextPort uint16

	// Diagnostics.
	DroppedInbound uint64 // inbound datagrams rejected by filtering
	Mapped         uint64 // mappings created
}

// NewDevice creates a NAT device of the given type with external
// address ext, attaches it to the network, and uses lease for
// association rules (DefaultLease if zero).
func NewDevice(n *netem.Network, typ Type, ext netem.IP, lease time.Duration) *Device {
	if typ == None {
		panic("nat: NewDevice with Type None; public hosts attach directly")
	}
	if !ext.Public() {
		panic("nat: device external address must be public")
	}
	if lease <= 0 {
		lease = DefaultLease
	}
	d := &Device{
		sim:      n.Sim(),
		net:      n,
		typ:      typ,
		ext:      ext,
		lease:    lease,
		inside:   make(map[netem.IP]netem.Handler),
		cone:     make(map[netem.Endpoint]*mapping),
		sym:      make(map[symKey]*mapping),
		byPort:   make(map[uint16]*mapping),
		nextPort: 1024,
	}
	n.Attach(ext, d)
	return d
}

// Type returns the device's NAT behaviour.
func (d *Device) Type() Type { return d.typ }

// External returns the device's public address.
func (d *Device) External() netem.IP { return d.ext }

// Lease returns the association-rule lifetime.
func (d *Device) Lease() time.Duration { return d.lease }

// AttachInside registers a host on the private side of the device.
func (d *Device) AttachInside(ip netem.IP, h netem.Handler) {
	if ip.Public() {
		panic("nat: internal host must use a private address")
	}
	d.inside[ip] = h
}

// DetachInside removes a private host (e.g. on churn departure). Its
// mappings are left to expire naturally, as on a real device.
func (d *Device) DetachInside(ip netem.IP) { delete(d.inside, ip) }

// Close detaches the device from the network.
func (d *Device) Close() { d.net.Detach(d.ext) }

func (d *Device) alive(m *mapping) bool {
	return d.sim.Now()-m.lastOut <= d.lease
}

func (d *Device) allocPort() uint16 {
	for {
		p := d.nextPort
		d.nextPort++
		if d.nextPort == 0 {
			d.nextPort = 1024
		}
		if m, ok := d.byPort[p]; !ok || !d.alive(m) {
			delete(d.byPort, p)
			return p
		}
	}
}

// outboundMapping finds or creates the mapping used when intEP sends to
// remote, refreshing the lease and filter entries.
func (d *Device) outboundMapping(intEP, remote netem.Endpoint) *mapping {
	now := d.sim.Now()
	var m *mapping
	if d.typ == Symmetric {
		k := symKey{intEP, remote}
		m = d.sym[k]
		if m == nil || !d.alive(m) {
			m = &mapping{intEP: intEP, extPort: d.allocPort(), remote: remote,
				filters: make(map[filterKey]time.Duration)}
			d.sym[k] = m
			d.byPort[m.extPort] = m
			d.Mapped++
		}
	} else {
		m = d.cone[intEP]
		if m == nil || !d.alive(m) {
			m = &mapping{intEP: intEP, extPort: d.allocPort(),
				filters: make(map[filterKey]time.Duration)}
			d.cone[intEP] = m
			d.byPort[m.extPort] = m
			d.Mapped++
		}
	}
	m.lastOut = now
	// Record filter permissions opened by this outbound packet.
	m.filters[filterKey{remote.IP, 0}] = now
	m.filters[filterKey{remote.IP, remote.Port}] = now
	return m
}

// Send implements netem.Uplink for internal hosts: translate the source
// endpoint and forward to the public network.
func (d *Device) Send(dg netem.Datagram) {
	m := d.outboundMapping(dg.Src, dg.Dst)
	dg.Src = netem.Endpoint{IP: d.ext, Port: m.extPort}
	d.net.Send(dg)
}

// allowInbound applies the device's filtering policy to an inbound
// datagram from src on mapping m.
func (d *Device) allowInbound(m *mapping, src netem.Endpoint) bool {
	now := d.sim.Now()
	fresh := func(k filterKey) bool {
		t, ok := m.filters[k]
		return ok && now-t <= d.lease
	}
	switch d.typ {
	case FullCone:
		return true
	case RestrictedCone:
		return fresh(filterKey{src.IP, 0})
	case PortRestrictedCone, Symmetric:
		return fresh(filterKey{src.IP, src.Port})
	default:
		return false
	}
}

// HandleDatagram implements netem.Handler on the external interface:
// look up the mapping by destination port, filter, rewrite, deliver.
func (d *Device) HandleDatagram(dg netem.Datagram) {
	m, ok := d.byPort[dg.Dst.Port]
	if !ok || !d.alive(m) {
		d.DroppedInbound++
		return
	}
	if !d.allowInbound(m, dg.Src) {
		d.DroppedInbound++
		return
	}
	h, ok := d.inside[m.intEP.IP]
	if !ok {
		d.DroppedInbound++
		return
	}
	dg.Dst = m.intEP
	h.HandleDatagram(dg)
}

// ExternalEndpoint returns the live external endpoint currently mapped
// for intEP (cone types only; symmetric NATs have no stable mapping).
// ok is false if no live mapping exists or the device is symmetric.
func (d *Device) ExternalEndpoint(intEP netem.Endpoint) (ep netem.Endpoint, ok bool) {
	if d.typ == Symmetric {
		return netem.Endpoint{}, false
	}
	m := d.cone[intEP]
	if m == nil || !d.alive(m) {
		return netem.Endpoint{}, false
	}
	return netem.Endpoint{IP: d.ext, Port: m.extPort}, true
}
