// Package nat emulates network address translation devices at the
// datagram level. The four device types of the paper's evaluation are
// supported (full cone, restricted cone, port-restricted cone and
// symmetric), with RFC 4787-style mapping and filtering semantics and
// virtual-time association-rule leases.
//
// Traversal outcomes (whether hole punching works for a NAT-type pair)
// are not hard-coded: they emerge from the mapping/filtering rules when
// the traversal handshake of package nylon runs over the emulation. The
// CanPunch matrix below documents the expected results per Ford et al.
// ("Peer-to-peer communication across network address translators") and
// is property-tested against the emulation.
package nat

import (
	"fmt"
	"time"

	"whisper/internal/netem"
	"whisper/internal/simnet"
)

// Type enumerates NAT behaviours. The names mirror the paper's
// experimental settings (§V-A).
type Type int

const (
	// None marks a public host with no NAT (a P-node).
	None Type = iota
	// FullCone uses endpoint-independent mapping and filtering.
	FullCone
	// RestrictedCone uses endpoint-independent mapping and
	// address-dependent filtering.
	RestrictedCone
	// PortRestrictedCone uses endpoint-independent mapping and
	// address-and-port-dependent filtering.
	PortRestrictedCone
	// Symmetric uses address-and-port-dependent mapping (a fresh
	// external port per destination) and address-and-port-dependent
	// filtering. Hole punching through it generally fails and relays
	// must be used, as the paper notes.
	Symmetric
)

// EmulatedTypes lists the four emulated NAT device types, i.e. every
// Type except None.
var EmulatedTypes = []Type{FullCone, RestrictedCone, PortRestrictedCone, Symmetric}

func (t Type) String() string {
	switch t {
	case None:
		return "public"
	case FullCone:
		return "full_cone"
	case RestrictedCone:
		return "restricted_cone"
	case PortRestrictedCone:
		return "port_restricted_cone"
	case Symmetric:
		return "sym"
	default:
		return fmt.Sprintf("nat.Type(%d)", int(t))
	}
}

// CanPunch reports whether UDP hole punching is expected to succeed
// between two hosts behind NATs of types a and b, assisted by a
// rendezvous that has observed both external endpoints. A public side
// (None) always works. Per Ford et al., punching fails only when a
// symmetric NAT faces a symmetric or port-restricted one: the symmetric
// side's fresh per-destination port cannot be predicted by a peer that
// filters on exact (address, port).
func CanPunch(a, b Type) bool {
	if a == None || b == None {
		return true
	}
	aSym, bSym := a == Symmetric, b == Symmetric
	if aSym && bSym {
		return false
	}
	if aSym && b == PortRestrictedCone || bSym && a == PortRestrictedCone {
		return false
	}
	return true
}

// NeedsRelay reports whether content between NAT types a and b must be
// forwarded by a relay node because traversal cannot be established.
func NeedsRelay(a, b Type) bool { return !CanPunch(a, b) }

// UDPLease is the association-rule lifetime for UDP-style per-packet
// rules: the 5-minute value from the Cisco specification the paper
// cites.
const UDPLease = 5 * time.Minute

// TCPLease is the lifetime of TCP-style per-connection rules (Cisco:
// 24 hours). The paper's NAT emulation follows the TCP-friendly RFC
// 5382, so warm routes persist far beyond view residence times — the
// property §III-A relies on.
const TCPLease = 24 * time.Hour

// DefaultLease is the association-rule lifetime used when none is
// configured. The stack defaults to TCP-style connections, as the
// paper's prototype does.
const DefaultLease = TCPLease

// filterEntry is one association-rule permission: traffic from ip (and
// port, when non-zero — zero marks the address-only entry) was allowed
// by an outbound packet at time at.
type filterEntry struct {
	ip   netem.IP
	port uint16 // 0 = address-only entry
	at   time.Duration
}

type mapping struct {
	intEP   netem.Endpoint
	remote  netem.Endpoint // non-zero only for symmetric mappings
	extPort uint16
	lastOut time.Duration
	// filters is the packed filter table: linear-scanned (a mapping
	// accumulates at most a couple of entries per distinct remote), with
	// expired entries swept as it grows. It replaces a per-mapping map
	// whose buckets dominated device memory at large populations.
	filters []filterEntry
}

// touchFilter records (or refreshes) the permission opened by an
// outbound packet. Entries past the lease are unobservable (allowInbound
// checks freshness), so the periodic sweep below cannot change behavior.
func (m *mapping) touchFilter(ip netem.IP, port uint16, now, lease time.Duration) {
	for i := range m.filters {
		if m.filters[i].ip == ip && m.filters[i].port == port {
			m.filters[i].at = now
			return
		}
	}
	if len(m.filters) > 0 && len(m.filters)%64 == 0 {
		keep := m.filters[:0]
		for _, f := range m.filters {
			if now-f.at <= lease {
				keep = append(keep, f)
			}
		}
		m.filters = keep
	}
	if len(m.filters) == cap(m.filters) {
		// Double while small (a symmetric mapping holds 2-3 entries,
		// ever), then fixed +8 steps (see nylon.contactTable.upsert): a
		// cone mapping accumulates a couple of entries per distinct
		// remote, and append's doubling parked most devices on arrays
		// half empty.
		step := len(m.filters)
		if step < 2 {
			step = 2
		} else if step > 8 {
			step = 8
		}
		grown := make([]filterEntry, len(m.filters), len(m.filters)+step)
		copy(grown, m.filters)
		m.filters = grown
	}
	m.filters = append(m.filters, filterEntry{ip: ip, port: port, at: now})
}

func (m *mapping) filterFresh(ip netem.IP, port uint16, now, lease time.Duration) bool {
	for i := range m.filters {
		if m.filters[i].ip == ip && m.filters[i].port == port {
			return now-m.filters[i].at <= lease
		}
	}
	return false
}

type insideHost struct {
	ip netem.IP
	h  netem.Handler
}

// Device is one emulated NAT box serving one or more internal hosts.
// It implements netem.Handler on its external (public) interface and
// netem.Uplink on its internal interface.
//
// All tables are packed slices scanned linearly: a device serves one or
// two internal hosts and one mapping per host (cone types) or per
// (host, remote) pair (symmetric), so scans stay short while the maps
// they replace cost ~100 heap bytes per entry at million-device scale.
type Device struct {
	sim   *simnet.Sim
	net   *netem.Network
	typ   Type
	ext   netem.IP
	lease time.Duration

	inside   []insideHost
	maps     []mapping
	nextPort uint16

	// Diagnostics.
	DroppedInbound uint64 // inbound datagrams rejected by filtering
	Mapped         uint64 // mappings created
}

// NewDevice creates a NAT device of the given type with external
// address ext, attaches it to the network, and uses lease for
// association rules (DefaultLease if zero).
func NewDevice(n *netem.Network, typ Type, ext netem.IP, lease time.Duration) *Device {
	if typ == None {
		panic("nat: NewDevice with Type None; public hosts attach directly")
	}
	if !ext.Public() {
		panic("nat: device external address must be public")
	}
	if lease <= 0 {
		lease = DefaultLease
	}
	d := &Device{
		sim:      n.Sim(),
		net:      n,
		typ:      typ,
		ext:      ext,
		lease:    lease,
		nextPort: 1024,
	}
	n.Attach(ext, d)
	return d
}

// Type returns the device's NAT behaviour.
func (d *Device) Type() Type { return d.typ }

// External returns the device's public address.
func (d *Device) External() netem.IP { return d.ext }

// Lease returns the association-rule lifetime.
func (d *Device) Lease() time.Duration { return d.lease }

// AttachInside registers a host on the private side of the device.
func (d *Device) AttachInside(ip netem.IP, h netem.Handler) {
	if ip.Public() {
		panic("nat: internal host must use a private address")
	}
	for i := range d.inside {
		if d.inside[i].ip == ip {
			d.inside[i].h = h
			return
		}
	}
	d.inside = append(d.inside, insideHost{ip: ip, h: h})
}

// DetachInside removes a private host (e.g. on churn departure). Its
// mappings are left to expire naturally, as on a real device.
func (d *Device) DetachInside(ip netem.IP) {
	for i := range d.inside {
		if d.inside[i].ip == ip {
			d.inside = append(d.inside[:i], d.inside[i+1:]...)
			return
		}
	}
}

func (d *Device) insideHandler(ip netem.IP) (netem.Handler, bool) {
	for i := range d.inside {
		if d.inside[i].ip == ip {
			return d.inside[i].h, true
		}
	}
	return nil, false
}

// Close detaches the device from the network.
func (d *Device) Close() { d.net.Detach(d.ext) }

func (d *Device) alive(m *mapping) bool {
	return d.sim.Now()-m.lastOut <= d.lease
}

// livePortIndex returns the index of the live mapping holding external
// port p, or -1. At most one live mapping holds any port (allocPort
// only hands out ports no live mapping uses).
func (d *Device) livePortIndex(p uint16) int {
	for i := range d.maps {
		if d.maps[i].extPort == p && d.alive(&d.maps[i]) {
			return i
		}
	}
	return -1
}

func (d *Device) allocPort() uint16 {
	for {
		p := d.nextPort
		d.nextPort++
		if d.nextPort == 0 {
			d.nextPort = 1024
		}
		if d.livePortIndex(p) < 0 {
			return p
		}
	}
}

// mappingIndex finds the mapping slot for (intEP, remote) under the
// device's mapping policy: endpoint-independent for cone types (remote
// ignored), address-and-port-dependent for symmetric.
func (d *Device) mappingIndex(intEP, remote netem.Endpoint) int {
	for i := range d.maps {
		if d.maps[i].intEP != intEP {
			continue
		}
		if d.typ == Symmetric && d.maps[i].remote != remote {
			continue
		}
		return i
	}
	return -1
}

// outboundMapping finds or creates the mapping used when intEP sends to
// remote, refreshing the lease and filter entries. The returned pointer
// is into the device's mapping array — valid only until the next
// outbound packet.
func (d *Device) outboundMapping(intEP, remote netem.Endpoint) *mapping {
	now := d.sim.Now()
	idx := d.mappingIndex(intEP, remote)
	if idx < 0 || !d.alive(&d.maps[idx]) {
		m := mapping{intEP: intEP, extPort: d.allocPort()}
		if d.typ == Symmetric {
			m.remote = remote
		}
		if idx >= 0 {
			// Reuse the dead slot (and its filter-table capacity). The
			// dead mapping was already invisible: every inbound lookup
			// checks liveness before use.
			m.filters = d.maps[idx].filters[:0]
			d.maps[idx] = m
		} else {
			if len(d.maps) == cap(d.maps) {
				// Double while small, then +2 steps, as for the filter
				// table: a cone device holds one mapping forever, a
				// symmetric one grows per distinct destination.
				step := len(d.maps)
				if step < 1 {
					step = 1
				} else if step > 2 {
					step = 2
				}
				grown := make([]mapping, len(d.maps), len(d.maps)+step)
				copy(grown, d.maps)
				d.maps = grown
			}
			d.maps = append(d.maps, m)
			idx = len(d.maps) - 1
		}
		d.Mapped++
	}
	m := &d.maps[idx]
	m.lastOut = now
	// Record filter permissions opened by this outbound packet.
	m.touchFilter(remote.IP, 0, now, d.lease)
	m.touchFilter(remote.IP, remote.Port, now, d.lease)
	return m
}

// Send implements netem.Uplink for internal hosts: translate the source
// endpoint and forward to the public network.
func (d *Device) Send(dg netem.Datagram) {
	m := d.outboundMapping(dg.Src, dg.Dst)
	dg.Src = netem.Endpoint{IP: d.ext, Port: m.extPort}
	d.net.Send(dg)
}

// allowInbound applies the device's filtering policy to an inbound
// datagram from src on mapping m.
func (d *Device) allowInbound(m *mapping, src netem.Endpoint) bool {
	now := d.sim.Now()
	switch d.typ {
	case FullCone:
		return true
	case RestrictedCone:
		return m.filterFresh(src.IP, 0, now, d.lease)
	case PortRestrictedCone, Symmetric:
		return m.filterFresh(src.IP, src.Port, now, d.lease)
	default:
		return false
	}
}

// HandleDatagram implements netem.Handler on the external interface:
// look up the mapping by destination port, filter, rewrite, deliver.
func (d *Device) HandleDatagram(dg netem.Datagram) {
	i := d.livePortIndex(dg.Dst.Port)
	if i < 0 {
		d.DroppedInbound++
		return
	}
	m := &d.maps[i]
	if !d.allowInbound(m, dg.Src) {
		d.DroppedInbound++
		return
	}
	h, ok := d.insideHandler(m.intEP.IP)
	if !ok {
		d.DroppedInbound++
		return
	}
	dg.Dst = m.intEP
	h.HandleDatagram(dg)
}

// ExternalEndpoint returns the live external endpoint currently mapped
// for intEP (cone types only; symmetric NATs have no stable mapping).
// ok is false if no live mapping exists or the device is symmetric.
func (d *Device) ExternalEndpoint(intEP netem.Endpoint) (ep netem.Endpoint, ok bool) {
	if d.typ == Symmetric {
		return netem.Endpoint{}, false
	}
	i := d.mappingIndex(intEP, netem.Endpoint{})
	if i < 0 || !d.alive(&d.maps[i]) {
		return netem.Endpoint{}, false
	}
	return netem.Endpoint{IP: d.ext, Port: d.maps[i].extPort}, true
}
