package nat

import (
	"testing"
	"time"

	"whisper/internal/netem"
	"whisper/internal/simnet"
)

// testHost is a scripted internal host for driving NAT scenarios.
type testHost struct {
	ep   netem.Endpoint
	port *netem.Port
	got  []netem.Datagram
}

func newHost(n *netem.Network, ep netem.Endpoint, up netem.Uplink) *testHost {
	h := &testHost{ep: ep}
	h.port = netem.NewPort(ep, up, &netem.Meter{})
	h.port.SetHandler(func(dg netem.Datagram) { h.got = append(h.got, dg) })
	return h
}

func TestOutboundTranslationAndReply(t *testing.T) {
	s := simnet.New(1)
	n := netem.New(s, netem.Fixed{D: time.Millisecond})
	dev := NewDevice(n, PortRestrictedCone, 2, 0)

	inside := newHost(n, netem.Endpoint{IP: netem.PrivateBase + 1, Port: 9}, dev)
	dev.AttachInside(inside.ep.IP, inside.port)

	var serverSaw []netem.Datagram
	server := netem.NewPort(netem.Endpoint{IP: 3, Port: 7}, netem.DirectUplink{Net: n}, nil)
	server.SetHandler(func(dg netem.Datagram) {
		serverSaw = append(serverSaw, dg)
		server.Send(dg.Src, []byte("pong"))
	})
	n.Attach(3, server)

	inside.port.Send(netem.Endpoint{IP: 3, Port: 7}, []byte("ping"))
	s.Run()

	if len(serverSaw) != 1 {
		t.Fatalf("server saw %d datagrams, want 1", len(serverSaw))
	}
	if serverSaw[0].Src.IP != 2 {
		t.Fatalf("source not translated: %v", serverSaw[0].Src)
	}
	if serverSaw[0].Src.Port == 9 {
		t.Fatal("external port equals internal port (no translation?)")
	}
	if len(inside.got) != 1 || string(inside.got[0].Payload) != "pong" {
		t.Fatalf("reply not delivered inside: %v", inside.got)
	}
	if inside.got[0].Dst != inside.ep {
		t.Fatalf("reply dst not rewritten to internal endpoint: %v", inside.got[0].Dst)
	}
}

func TestUnsolicitedInboundFiltered(t *testing.T) {
	for _, typ := range []Type{RestrictedCone, PortRestrictedCone, Symmetric} {
		t.Run(typ.String(), func(t *testing.T) {
			s := simnet.New(1)
			n := netem.New(s, netem.Fixed{})
			dev := NewDevice(n, typ, 2, 0)
			inside := newHost(n, netem.Endpoint{IP: netem.PrivateBase + 1, Port: 9}, dev)
			dev.AttachInside(inside.ep.IP, inside.port)

			// Open a mapping by talking to server 3.
			inside.port.Send(netem.Endpoint{IP: 3, Port: 7}, []byte("x"))
			s.Run()
			extPort := uint16(1024)

			// A stranger (IP 4) probes the mapped port.
			n.Send(netem.Datagram{Src: netem.Endpoint{IP: 4, Port: 1}, Dst: netem.Endpoint{IP: 2, Port: extPort}})
			s.Run()
			if len(inside.got) != 0 {
				t.Fatalf("%v let a stranger through", typ)
			}
			if dev.DroppedInbound == 0 {
				t.Fatal("drop not recorded")
			}
		})
	}
}

func TestFullConeAcceptsAnyoneOnLiveMapping(t *testing.T) {
	s := simnet.New(1)
	n := netem.New(s, netem.Fixed{})
	dev := NewDevice(n, FullCone, 2, 0)
	inside := newHost(n, netem.Endpoint{IP: netem.PrivateBase + 1, Port: 9}, dev)
	dev.AttachInside(inside.ep.IP, inside.port)

	inside.port.Send(netem.Endpoint{IP: 3, Port: 7}, []byte("x")) // open mapping
	s.Run()
	n.Send(netem.Datagram{Src: netem.Endpoint{IP: 4, Port: 1}, Dst: netem.Endpoint{IP: 2, Port: 1024}, Payload: []byte("hi")})
	s.Run()
	if len(inside.got) != 1 {
		t.Fatalf("full cone blocked inbound from stranger: %d", len(inside.got))
	}
}

func TestRestrictedConeAddressOnlyFilter(t *testing.T) {
	s := simnet.New(1)
	n := netem.New(s, netem.Fixed{})
	dev := NewDevice(n, RestrictedCone, 2, 0)
	inside := newHost(n, netem.Endpoint{IP: netem.PrivateBase + 1, Port: 9}, dev)
	dev.AttachInside(inside.ep.IP, inside.port)

	inside.port.Send(netem.Endpoint{IP: 3, Port: 7}, []byte("x"))
	s.Run()
	// Same IP, different port: allowed by address-dependent filtering.
	n.Send(netem.Datagram{Src: netem.Endpoint{IP: 3, Port: 99}, Dst: netem.Endpoint{IP: 2, Port: 1024}})
	s.Run()
	if len(inside.got) != 1 {
		t.Fatal("restricted cone should filter on address only")
	}
	// Port-restricted would have blocked it.
	s2 := simnet.New(1)
	n2 := netem.New(s2, netem.Fixed{})
	dev2 := NewDevice(n2, PortRestrictedCone, 2, 0)
	inside2 := newHost(n2, netem.Endpoint{IP: netem.PrivateBase + 1, Port: 9}, dev2)
	dev2.AttachInside(inside2.ep.IP, inside2.port)
	inside2.port.Send(netem.Endpoint{IP: 3, Port: 7}, []byte("x"))
	s2.Run()
	n2.Send(netem.Datagram{Src: netem.Endpoint{IP: 3, Port: 99}, Dst: netem.Endpoint{IP: 2, Port: 1024}})
	s2.Run()
	if len(inside2.got) != 0 {
		t.Fatal("port-restricted cone must filter on (address, port)")
	}
}

func TestSymmetricMappingPerDestination(t *testing.T) {
	s := simnet.New(1)
	n := netem.New(s, netem.Fixed{})
	dev := NewDevice(n, Symmetric, 2, 0)
	inside := newHost(n, netem.Endpoint{IP: netem.PrivateBase + 1, Port: 9}, dev)
	dev.AttachInside(inside.ep.IP, inside.port)

	seen := map[uint16]bool{}
	for _, dst := range []netem.Endpoint{{IP: 3, Port: 1}, {IP: 3, Port: 2}, {IP: 4, Port: 1}} {
		dst := dst
		collect := netem.HandlerFunc(func(dg netem.Datagram) { seen[dg.Src.Port] = true })
		n.Attach(dst.IP, collect)
		inside.port.Send(dst, []byte("x"))
		s.Run()
	}
	if len(seen) != 3 {
		t.Fatalf("symmetric NAT reused ports across destinations: %v", seen)
	}

	// Cone NAT keeps a single external port for all destinations.
	s2 := simnet.New(1)
	n2 := netem.New(s2, netem.Fixed{})
	dev2 := NewDevice(n2, FullCone, 2, 0)
	inside2 := newHost(n2, netem.Endpoint{IP: netem.PrivateBase + 1, Port: 9}, dev2)
	dev2.AttachInside(inside2.ep.IP, inside2.port)
	seen2 := map[uint16]bool{}
	for _, dst := range []netem.Endpoint{{IP: 3, Port: 1}, {IP: 4, Port: 1}} {
		n2.Attach(dst.IP, netem.HandlerFunc(func(dg netem.Datagram) { seen2[dg.Src.Port] = true }))
		inside2.port.Send(dst, []byte("x"))
		s2.Run()
	}
	if len(seen2) != 1 {
		t.Fatalf("cone NAT should use endpoint-independent mapping: %v", seen2)
	}
}

func TestLeaseExpiry(t *testing.T) {
	s := simnet.New(1)
	n := netem.New(s, netem.Fixed{})
	dev := NewDevice(n, FullCone, 2, time.Minute)
	inside := newHost(n, netem.Endpoint{IP: netem.PrivateBase + 1, Port: 9}, dev)
	dev.AttachInside(inside.ep.IP, inside.port)

	inside.port.Send(netem.Endpoint{IP: 3, Port: 7}, []byte("x"))
	s.Run()
	if _, ok := dev.ExternalEndpoint(inside.ep); !ok {
		t.Fatal("live mapping not reported")
	}

	// Within the lease: inbound passes.
	s.RunUntil(30 * time.Second)
	n.Send(netem.Datagram{Src: netem.Endpoint{IP: 5, Port: 5}, Dst: netem.Endpoint{IP: 2, Port: 1024}})
	s.Run()
	if len(inside.got) != 1 {
		t.Fatal("inbound blocked within lease")
	}

	// After the lease: mapping dead, inbound dropped.
	s.RunUntil(2 * time.Minute)
	n.Send(netem.Datagram{Src: netem.Endpoint{IP: 5, Port: 5}, Dst: netem.Endpoint{IP: 2, Port: 1024}})
	s.Run()
	if len(inside.got) != 1 {
		t.Fatal("inbound passed after lease expiry")
	}
	if _, ok := dev.ExternalEndpoint(inside.ep); ok {
		t.Fatal("expired mapping still reported")
	}

	// Outbound traffic re-creates a mapping (port may be reallocated).
	inside.port.Send(netem.Endpoint{IP: 3, Port: 7}, []byte("x"))
	s.Run()
	if _, ok := dev.ExternalEndpoint(inside.ep); !ok {
		t.Fatal("mapping not re-created after expiry")
	}
}

func TestOutboundRefreshesLease(t *testing.T) {
	s := simnet.New(1)
	n := netem.New(s, netem.Fixed{})
	dev := NewDevice(n, PortRestrictedCone, 2, time.Minute)
	inside := newHost(n, netem.Endpoint{IP: netem.PrivateBase + 1, Port: 9}, dev)
	dev.AttachInside(inside.ep.IP, inside.port)

	server := netem.Endpoint{IP: 3, Port: 7}
	n.Attach(3, netem.HandlerFunc(func(netem.Datagram) {}))
	// Keep-alive every 40s < 60s lease for 5 minutes.
	tk := s.Every(40*time.Second, func() { inside.port.Send(server, []byte("ka")) })
	s.RunUntil(5 * time.Minute)
	tk.Stop()
	// Mapping must still be alive and accept the server.
	n.Send(netem.Datagram{Src: server, Dst: netem.Endpoint{IP: 2, Port: 1024}})
	s.Run()
	if len(inside.got) != 1 {
		t.Fatal("refreshed mapping did not survive")
	}
}

func TestExternalEndpointSymmetricUnstable(t *testing.T) {
	s := simnet.New(1)
	n := netem.New(s, netem.Fixed{})
	dev := NewDevice(n, Symmetric, 2, 0)
	inside := newHost(n, netem.Endpoint{IP: netem.PrivateBase + 1, Port: 9}, dev)
	dev.AttachInside(inside.ep.IP, inside.port)
	inside.port.Send(netem.Endpoint{IP: 3, Port: 7}, []byte("x"))
	s.Run()
	if _, ok := dev.ExternalEndpoint(inside.ep); ok {
		t.Fatal("symmetric NAT must not report a stable external endpoint")
	}
}

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{
		None: "public", FullCone: "full_cone", RestrictedCone: "restricted_cone",
		PortRestrictedCone: "port_restricted_cone", Symmetric: "sym",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(typ), typ.String(), s)
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type should still stringify")
	}
}

func TestCanPunchMatrix(t *testing.T) {
	// Expected matrix per Ford et al.
	cases := []struct {
		a, b Type
		want bool
	}{
		{None, Symmetric, true},
		{FullCone, FullCone, true},
		{FullCone, Symmetric, true},
		{RestrictedCone, Symmetric, true},
		{PortRestrictedCone, PortRestrictedCone, true},
		{PortRestrictedCone, Symmetric, false},
		{Symmetric, PortRestrictedCone, false},
		{Symmetric, Symmetric, false},
	}
	for _, c := range cases {
		if got := CanPunch(c.a, c.b); got != c.want {
			t.Errorf("CanPunch(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := CanPunch(c.b, c.a); got != c.want {
			t.Errorf("CanPunch not symmetric for (%v,%v)", c.a, c.b)
		}
		if NeedsRelay(c.a, c.b) == c.want {
			t.Errorf("NeedsRelay(%v,%v) inconsistent with CanPunch", c.a, c.b)
		}
	}
}
