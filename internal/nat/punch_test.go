package nat

import (
	"fmt"
	"testing"
	"time"

	"whisper/internal/netem"
	"whisper/internal/simnet"
)

// punchPeer is a minimal STUN+hole-punch state machine used to validate
// that traversal outcomes emerge from the emulation itself.
type punchPeer struct {
	name      string
	port      *netem.Port
	rv        netem.Endpoint
	peerEP    netem.Endpoint // last known peer endpoint (advertised, then observed)
	gotDirect bool
	pings     int
}

func (p *punchPeer) start(s *simnet.Sim) {
	p.port.SetHandler(func(dg netem.Datagram) {
		switch string(dg.Payload[:4]) {
		case "peer":
			// RV told us the peer's (advertised) endpoint.
			var ip uint32
			var port uint16
			fmt.Sscanf(string(dg.Payload), "peer %d %d", &ip, &port)
			p.peerEP = netem.Endpoint{IP: netem.IP(ip), Port: port}
			p.pingLoop(s)
		case "ping":
			p.gotDirect = true
			p.peerEP = dg.Src // port learning: reply to the observed source
			p.port.Send(dg.Src, []byte("pong"))
		case "pong":
			p.gotDirect = true
			p.peerEP = dg.Src
		}
	})
	p.port.Send(p.rv, []byte("reg."))
}

func (p *punchPeer) pingLoop(s *simnet.Sim) {
	if p.pings >= 10 || p.gotDirect && p.pings >= 3 {
		return
	}
	p.pings++
	p.port.Send(p.peerEP, []byte("ping"))
	s.After(10*time.Millisecond, func() { p.pingLoop(s) })
}

// runPunch executes the rendezvous-assisted hole-punch handshake between
// hosts behind NATs of types ta and tb, and reports whether both sides
// ended up exchanging datagrams directly.
func runPunch(t *testing.T, ta, tb Type) bool {
	t.Helper()
	s := simnet.New(99)
	n := netem.New(s, netem.Fixed{D: 2 * time.Millisecond})
	rvEP := netem.Endpoint{IP: 1, Port: 1}

	makePeer := func(name string, typ Type, extIP netem.IP, privOff netem.IP) *punchPeer {
		var up netem.Uplink
		var local netem.Endpoint
		if typ == None {
			local = netem.Endpoint{IP: extIP, Port: 100}
			up = netem.DirectUplink{Net: n}
		} else {
			dev := NewDevice(n, typ, extIP, 0)
			local = netem.Endpoint{IP: netem.PrivateBase + privOff, Port: 100}
			up = dev
			p := &punchPeer{name: name, rv: rvEP}
			p.port = netem.NewPort(local, up, nil)
			dev.AttachInside(local.IP, p.port)
			return p
		}
		p := &punchPeer{name: name, rv: rvEP}
		p.port = netem.NewPort(local, up, nil)
		n.Attach(local.IP, p.port)
		return p
	}

	a := makePeer("a", ta, 2, 1)
	b := makePeer("b", tb, 3, 2)

	// Rendezvous: records observed endpoints, then introduces the peers.
	var seen []netem.Endpoint
	rvPort := netem.NewPort(rvEP, netem.DirectUplink{Net: n}, nil)
	rvPort.SetHandler(func(dg netem.Datagram) {
		seen = append(seen, dg.Src)
		if len(seen) == 2 {
			intro := func(to, peer netem.Endpoint) {
				rvPort.Send(to, []byte(fmt.Sprintf("peer %d %d", uint32(peer.IP), peer.Port)))
			}
			intro(seen[0], seen[1])
			intro(seen[1], seen[0])
		}
	})
	n.Attach(rvEP.IP, rvPort)

	a.start(s)
	s.After(time.Millisecond, func() { b.start(s) })
	s.RunUntil(2 * time.Second)
	return a.gotDirect && b.gotDirect
}

// TestPunchMatchesMatrix drives the real handshake over the emulated
// devices for every NAT type pair and checks the outcome against the
// documented CanPunch matrix. This is the central validation that the
// emulation reproduces real-world traversal behaviour.
func TestPunchMatchesMatrix(t *testing.T) {
	all := append([]Type{None}, EmulatedTypes...)
	for _, ta := range all {
		for _, tb := range all {
			ta, tb := ta, tb
			t.Run(fmt.Sprintf("%v_vs_%v", ta, tb), func(t *testing.T) {
				got := runPunch(t, ta, tb)
				want := CanPunch(ta, tb)
				if got != want {
					t.Fatalf("emulated punch %v vs %v = %v, matrix says %v", ta, tb, got, want)
				}
			})
		}
	}
}
