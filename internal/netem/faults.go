package netem

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// FaultModel composes adversarial-network pathologies on top of a
// LatencyModel: per-datagram duplication, a reordering window (extra
// jitter applied to a random subset of datagrams), Gilbert-Elliott
// burst loss, and one-way partitions between IP sets. The paper's
// evaluation assumes only independent loss; real UDP paths through
// middleboxes also duplicate, reorder and lose in bursts, and the
// protocol claims must survive that (cf. the NAT-constrained overlays
// of Wolinsky et al.).
//
// All randomness is drawn from the simulation's seeded RNG at Send
// time, so runs stay fully deterministic. A nil FaultModel (the
// default) is strictly zero-behavior: Network.Send consumes exactly the
// same random draws and schedules exactly the same events as before the
// fault layer existed.
type FaultModel struct {
	// DupProb is the per-datagram probability that a second, identical
	// copy is injected with an independently drawn delay.
	DupProb float64
	// ReorderProb is the per-copy probability of adding extra delay
	// drawn uniformly from [0, ReorderJitter), pushing the datagram
	// behind later traffic on the same link.
	ReorderProb float64
	// ReorderJitter is the width of the extra-delay window (default
	// 100ms when ReorderProb > 0).
	ReorderJitter time.Duration
	// Burst, when non-nil, runs a per-directed-link Gilbert-Elliott
	// chain in front of the latency model's independent loss.
	Burst *GilbertElliott
	// Partitions lists one-way cuts: a datagram whose source is in
	// From and destination in To of any partition is dropped.
	Partitions []Partition
}

// String renders the active fault knobs compactly ("" for nil), the
// form the bench log embeds so timing records say what network they ran
// on.
func (f *FaultModel) String() string {
	if f == nil {
		return ""
	}
	var parts []string
	if f.DupProb > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", f.DupProb))
	}
	if f.ReorderProb > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%g/%v", f.ReorderProb, f.reorderJitter()))
	}
	if f.Burst != nil {
		parts = append(parts, fmt.Sprintf("burst=%g/%g/%g", f.Burst.PGoodBad, f.Burst.PBadGood, f.Burst.LossBad))
	}
	if len(f.Partitions) > 0 {
		parts = append(parts, fmt.Sprintf("partitions=%d", len(f.Partitions)))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// reorderJitter returns the effective window width.
func (f *FaultModel) reorderJitter() time.Duration {
	if f.ReorderJitter > 0 {
		return f.ReorderJitter
	}
	return 100 * time.Millisecond
}

// GilbertElliott parameterizes the classic two-state burst-loss chain:
// each directed link is either Good or Bad, transitions are evaluated
// once per datagram, and the drop probability depends on the state.
// Steady-state time in Bad is PGoodBad/(PGoodBad+PBadGood); mean burst
// length is 1/PBadGood datagrams.
type GilbertElliott struct {
	// PGoodBad is P(Good→Bad) per datagram.
	PGoodBad float64
	// PBadGood is P(Bad→Good) per datagram.
	PBadGood float64
	// LossGood is the drop probability in the Good state (usually 0).
	LossGood float64
	// LossBad is the drop probability in the Bad state (default 1).
	LossBad float64
}

func (g *GilbertElliott) lossBad() float64 {
	if g.LossBad > 0 {
		return g.LossBad
	}
	return 1
}

// Partition is a one-way cut between two IP sets. Traffic from From to
// To is dropped; the reverse direction is untouched, modeling the
// asymmetric reachability real middleboxes produce.
type Partition struct {
	From map[IP]bool
	To   map[IP]bool
}

// NewPartition builds a one-way partition from explicit IP lists.
func NewPartition(from, to []IP) Partition {
	p := Partition{From: make(map[IP]bool, len(from)), To: make(map[IP]bool, len(to))}
	for _, ip := range from {
		p.From[ip] = true
	}
	for _, ip := range to {
		p.To[ip] = true
	}
	return p
}

// blocks reports whether the partition cuts src→dst.
func (p Partition) blocks(src, dst IP) bool { return p.From[src] && p.To[dst] }

// FaultStats counts fault injections since SetFaults.
type FaultStats struct {
	Duplicated   uint64 // extra copies injected
	Reordered    uint64 // copies given extra jitter
	BurstDropped uint64 // drops by the Gilbert-Elliott chain
	Partitioned  uint64 // drops by one-way partitions
}

// SetFaults installs (or, with nil, removes) a fault-injection model.
// Burst-chain state and fault counters are reset. Must be called from
// simulation-event context or before the simulation runs.
func (n *Network) SetFaults(fm *FaultModel) {
	n.faults = fm
	n.fstats = FaultStats{}
	if fm != nil && fm.Burst != nil {
		n.burst = make(map[[2]IP]bool)
	} else {
		n.burst = nil
	}
}

// Faults returns the installed fault model, or nil.
func (n *Network) Faults() *FaultModel { return n.faults }

// FaultStats reports fault-injection totals since SetFaults.
func (n *Network) FaultStats() FaultStats { return n.fstats }

// faultDrop applies partitions and the burst-loss chain; it reports
// whether the datagram dies before the latency model ever sees it.
func (n *Network) faultDrop(rng *rand.Rand, src, dst IP) bool {
	f := n.faults
	for _, p := range f.Partitions {
		if p.blocks(src, dst) {
			n.fstats.Partitioned++
			return true
		}
	}
	if ge := f.Burst; ge != nil {
		key := [2]IP{src, dst}
		bad := n.burst[key]
		if bad {
			if rng.Float64() < ge.PBadGood {
				bad = false
			}
		} else {
			if rng.Float64() < ge.PGoodBad {
				bad = true
			}
		}
		n.burst[key] = bad
		loss := ge.LossGood
		if bad {
			loss = ge.lossBad()
		}
		if loss > 0 && rng.Float64() < loss {
			n.fstats.BurstDropped++
			return true
		}
	}
	return false
}
