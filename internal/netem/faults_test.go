package netem

import (
	"fmt"
	"testing"
	"time"

	"whisper/internal/simnet"
)

func faultNet(seed int64, fm *FaultModel) (*simnet.Sim, *Network) {
	s := simnet.New(seed)
	n := New(s, Fixed{D: time.Millisecond})
	n.SetFaults(fm)
	return s, n
}

func TestDuplicationRate(t *testing.T) {
	s, n := faultNet(3, &FaultModel{DupProb: 0.25})
	received := 0
	n.Attach(2, HandlerFunc(func(Datagram) { received++ }))
	const total = 4000
	for i := 0; i < total; i++ {
		n.Send(Datagram{Src: Endpoint{IP: 1, Port: 1}, Dst: Endpoint{IP: 2, Port: 1}, Payload: []byte("p")})
	}
	s.Run()
	extra := received - total
	if extra < total/4-150 || extra > total/4+150 {
		t.Fatalf("%d extra copies of %d sends at 25%% duplication, want ~%d", extra, total, total/4)
	}
	if got := n.FaultStats().Duplicated; got != uint64(extra) {
		t.Fatalf("Duplicated = %d, delivered extras = %d", got, extra)
	}
}

func TestDuplicateCopyOwnsItsPayload(t *testing.T) {
	s, n := faultNet(5, &FaultModel{DupProb: 1})
	var payloads [][]byte
	n.Attach(2, HandlerFunc(func(dg Datagram) { payloads = append(payloads, dg.Payload) }))
	n.Send(Datagram{Src: Endpoint{IP: 1, Port: 1}, Dst: Endpoint{IP: 2, Port: 1}, Payload: []byte("abc")})
	s.Run()
	if len(payloads) != 2 {
		t.Fatalf("got %d copies, want 2", len(payloads))
	}
	payloads[0][0] = 'X' // a receiver mutating one copy must not corrupt the other
	if string(payloads[1]) != "abc" {
		t.Fatal("duplicate shares the original payload slice")
	}
}

func TestReorderingInvertsDeliveryOrder(t *testing.T) {
	// With a reordering window far wider than the base latency and
	// consecutive sends, some later-sent datagrams must arrive before
	// earlier-sent ones.
	s, n := faultNet(7, &FaultModel{ReorderProb: 0.5, ReorderJitter: 200 * time.Millisecond})
	var order []int
	n.Attach(2, HandlerFunc(func(dg Datagram) { order = append(order, int(dg.Payload[0])) }))
	for i := 0; i < 200; i++ {
		n.Send(Datagram{Src: Endpoint{IP: 1, Port: 1}, Dst: Endpoint{IP: 2, Port: 1}, Payload: []byte{byte(i)}})
	}
	s.Run()
	if len(order) != 200 {
		t.Fatalf("delivered %d, want 200 (reordering must not lose datagrams)", len(order))
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no delivery-order inversion despite 50% reordering")
	}
	if n.FaultStats().Reordered == 0 {
		t.Fatal("Reordered counter never advanced")
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// p=0.02, r=0.2 → steady-state bad fraction p/(p+r) ≈ 9%, mean
	// burst length 1/r = 5. With LossBad=1 the observed loss should sit
	// near 9% and losses should clump into runs.
	s, n := faultNet(11, &FaultModel{Burst: &GilbertElliott{PGoodBad: 0.02, PBadGood: 0.2}})
	received := map[int]bool{}
	n.Attach(2, HandlerFunc(func(dg Datagram) {
		received[int(dg.Payload[0])<<8|int(dg.Payload[1])] = true
	}))
	const total = 8000
	for i := 0; i < total; i++ {
		n.Send(Datagram{Src: Endpoint{IP: 1, Port: 1}, Dst: Endpoint{IP: 2, Port: 1},
			Payload: []byte{byte(i >> 8), byte(i)}})
	}
	s.Run()
	lost := total - len(received)
	if lost < total*5/100 || lost > total*14/100 {
		t.Fatalf("lost %d/%d (%.1f%%), want near the 9%% steady state", lost, total, 100*float64(lost)/total)
	}
	// Burstiness: count maximal runs of consecutive losses; their mean
	// length must exceed what independent loss at the same rate gives
	// (mean run length 1/(1-p) ≈ 1.1).
	runs, runLen, inRun := 0, 0, false
	for i := 0; i < total; i++ {
		if !received[i] {
			runLen++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if mean := float64(runLen) / float64(runs); mean < 2 {
		t.Fatalf("mean loss-run length %.2f, want ≥ 2 (losses not bursty)", mean)
	}
	if n.FaultStats().BurstDropped != uint64(lost) {
		t.Fatalf("BurstDropped = %d, observed %d", n.FaultStats().BurstDropped, lost)
	}
}

func TestOneWayPartition(t *testing.T) {
	s, n := faultNet(13, &FaultModel{Partitions: []Partition{NewPartition([]IP{1}, []IP{2})}})
	got12, got21 := 0, 0
	n.Attach(1, HandlerFunc(func(Datagram) { got21++ }))
	n.Attach(2, HandlerFunc(func(Datagram) { got12++ }))
	for i := 0; i < 10; i++ {
		n.Send(Datagram{Src: Endpoint{IP: 1, Port: 1}, Dst: Endpoint{IP: 2, Port: 1}})
		n.Send(Datagram{Src: Endpoint{IP: 2, Port: 1}, Dst: Endpoint{IP: 1, Port: 1}})
	}
	s.Run()
	if got12 != 0 {
		t.Fatalf("%d datagrams crossed the cut direction", got12)
	}
	if got21 != 10 {
		t.Fatalf("reverse direction delivered %d/10 (partition must be one-way)", got21)
	}
	if n.FaultStats().Partitioned != 10 {
		t.Fatalf("Partitioned = %d, want 10", n.FaultStats().Partitioned)
	}
}

// TestNoFaultsIsZeroBehavior holds the determinism contract the fig5
// golden test depends on: a network with no fault model consumes the
// same random draws and delivers the same sequence, at the same times,
// as one where SetFaults was never called — and a zero-probability
// fault model changes delivery times of nothing either.
func TestNoFaultsIsZeroBehavior(t *testing.T) {
	type event struct {
		at  time.Duration
		tag byte
	}
	trace := func(install func(*Network)) []event {
		s := simnet.New(99)
		n := New(s, Cluster{})
		if install != nil {
			install(n)
		}
		var events []event
		n.Attach(2, HandlerFunc(func(dg Datagram) {
			events = append(events, event{at: s.Now(), tag: dg.Payload[0]})
		}))
		for i := 0; i < 500; i++ {
			n.Send(Datagram{Src: Endpoint{IP: 1, Port: 1}, Dst: Endpoint{IP: 2, Port: 1}, Payload: []byte{byte(i)}})
		}
		s.Run()
		return events
	}
	base := trace(nil)
	nilModel := trace(func(n *Network) { n.SetFaults(nil) })
	if fmt.Sprint(base) != fmt.Sprint(nilModel) {
		t.Fatal("SetFaults(nil) perturbed the event sequence")
	}
}

// TestFaultDeterminism: two runs at the same seed inject the exact same
// faults at the exact same times.
func TestFaultDeterminism(t *testing.T) {
	run := func() ([]int, FaultStats) {
		s, n := faultNet(17, &FaultModel{
			DupProb: 0.1, ReorderProb: 0.3, ReorderJitter: 50 * time.Millisecond,
			Burst: &GilbertElliott{PGoodBad: 0.05, PBadGood: 0.3, LossBad: 0.8},
		})
		var order []int
		n.Attach(2, HandlerFunc(func(dg Datagram) { order = append(order, int(dg.Payload[0])) }))
		for i := 0; i < 300; i++ {
			n.Send(Datagram{Src: Endpoint{IP: 1, Port: 1}, Dst: Endpoint{IP: 2, Port: 1}, Payload: []byte{byte(i)}})
		}
		s.Run()
		return order, n.FaultStats()
	}
	o1, s1 := run()
	o2, s2 := run()
	if fmt.Sprint(o1) != fmt.Sprint(o2) || s1 != s2 {
		t.Fatal("same seed produced different fault injections")
	}
}
