package netem

import (
	"math/rand"
	"time"
)

// Cluster models the paper's first testbed: 22 machines on a 1 Gbps
// switched LAN. One-way latency is sub-millisecond with small jitter and
// a bandwidth-proportional serialization term; no loss.
type Cluster struct {
	// Base is the minimum one-way latency. Defaults to 100µs if zero.
	Base time.Duration
	// Jitter is the width of the uniform jitter window. Defaults to
	// 200µs if zero.
	Jitter time.Duration
}

// Delay implements LatencyModel.
func (c Cluster) Delay(rng *rand.Rand, _, _ IP, size int) time.Duration {
	base := c.Base
	if base == 0 {
		base = 100 * time.Microsecond
	}
	jitter := c.Jitter
	if jitter == 0 {
		jitter = 200 * time.Microsecond
	}
	// 1 Gbps serialization: 8 ns per byte.
	ser := time.Duration(size) * 8 * time.Nanosecond
	return base + time.Duration(rng.Int63n(int64(jitter))) + ser
}

// LossProb implements LatencyModel. Cluster links are lossless.
func (Cluster) LossProb(_, _ IP) float64 { return 0 }

// MinDelay implements MinDelayModel: the base latency bounds every
// delay from below (jitter and serialization only add).
func (c Cluster) MinDelay() time.Duration {
	if c.Base == 0 {
		return 100 * time.Microsecond
	}
	return c.Base
}

// PlanetLab models the paper's second testbed: a 400-node global slice
// with heterogeneous, often heavily loaded machines. Properties modeled:
//
//   - per-pair base RTT: a deterministic function of the two addresses,
//     one-way in [MinBase, MaxBase) — geography is stable over a run;
//   - exponential queueing jitter with mean Jitter;
//   - occasional long stalls (SpikeProb chance of an extra delay up to
//     SpikeMax), reflecting overloaded hosts;
//   - per-node "slowness": a fraction of nodes add a processing delay to
//     everything they send, as observed on loaded PlanetLab machines;
//   - datagram loss with probability Loss;
//   - 10 Mbps-class serialization (880 ns per byte).
type PlanetLab struct {
	MinBase   time.Duration // default 20ms
	MaxBase   time.Duration // default 150ms
	Jitter    time.Duration // default 15ms (exponential mean)
	SpikeProb float64       // default 0.03
	SpikeMax  time.Duration // default 800ms
	SlowFrac  float64       // default 0.15 of nodes are slow
	SlowDelay time.Duration // default 60ms extra (mean, exponential)
	Loss      float64       // default 0.02
}

// DefaultPlanetLab returns the model parameterization used by the
// experiment harness for "PlanetLab" figures.
func DefaultPlanetLab() PlanetLab {
	return PlanetLab{
		MinBase:   20 * time.Millisecond,
		MaxBase:   150 * time.Millisecond,
		Jitter:    15 * time.Millisecond,
		SpikeProb: 0.03,
		SpikeMax:  800 * time.Millisecond,
		SlowFrac:  0.15,
		SlowDelay: 60 * time.Millisecond,
		Loss:      0.02,
	}
}

// pairHash mixes two addresses into a stable 64-bit value, symmetric in
// its arguments so that A→B and B→A share a base latency.
func pairHash(a, b IP) uint64 {
	x, y := uint64(a), uint64(b)
	if x > y {
		x, y = y, x
	}
	h := x*0x9e3779b97f4a7c15 ^ y*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

func ipHash(a IP) uint64 {
	h := uint64(a) * 0x9e3779b97f4a7c15
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	return h
}

// Delay implements LatencyModel.
func (p PlanetLab) Delay(rng *rand.Rand, src, dst IP, size int) time.Duration {
	minB, maxB := p.MinBase, p.MaxBase
	if minB == 0 {
		minB = 20 * time.Millisecond
	}
	if maxB == 0 {
		maxB = 150 * time.Millisecond
	}
	jit := p.Jitter
	if jit == 0 {
		jit = 15 * time.Millisecond
	}
	span := int64(maxB - minB)
	if span <= 0 {
		span = 1
	}
	base := minB + time.Duration(int64(pairHash(src, dst)%uint64(span)))
	d := base + time.Duration(rng.ExpFloat64()*float64(jit))
	if p.SpikeProb > 0 && rng.Float64() < p.SpikeProb {
		max := p.SpikeMax
		if max == 0 {
			max = 800 * time.Millisecond
		}
		d += time.Duration(rng.Int63n(int64(max)))
	}
	if p.SlowFrac > 0 && p.slowNode(src) {
		sd := p.SlowDelay
		if sd == 0 {
			sd = 60 * time.Millisecond
		}
		d += time.Duration(rng.ExpFloat64() * float64(sd))
	}
	// ~10 Mbps serialization.
	d += time.Duration(size) * 880 * time.Nanosecond
	return d
}

func (p PlanetLab) slowNode(ip IP) bool {
	return float64(ipHash(ip)%10000)/10000 < p.SlowFrac
}

// LossProb implements LatencyModel.
func (p PlanetLab) LossProb(_, _ IP) float64 { return p.Loss }

// MinDelay implements MinDelayModel: the per-pair base RTT is at least
// MinBase and every other term is additive.
func (p PlanetLab) MinDelay() time.Duration {
	if p.MinBase == 0 {
		return 20 * time.Millisecond
	}
	return p.MinBase
}

// Fixed is a trivial model with constant delay and no loss, useful in
// unit tests that assert exact timings.
type Fixed struct {
	D time.Duration
}

// Delay implements LatencyModel.
func (f Fixed) Delay(_ *rand.Rand, _, _ IP, _ int) time.Duration { return f.D }

// LossProb implements LatencyModel.
func (Fixed) LossProb(_, _ IP) float64 { return 0 }

// MinDelay implements MinDelayModel.
func (f Fixed) MinDelay() time.Duration { return f.D }

// Lossy wraps another model, overriding loss with probability P.
type Lossy struct {
	Model LatencyModel
	P     float64
}

// Delay implements LatencyModel.
func (l Lossy) Delay(rng *rand.Rand, src, dst IP, size int) time.Duration {
	return l.Model.Delay(rng, src, dst, size)
}

// LossProb implements LatencyModel.
func (l Lossy) LossProb(_, _ IP) float64 { return l.P }

// MinDelay implements MinDelayModel when the wrapped model does.
func (l Lossy) MinDelay() time.Duration { return MinDelay(l.Model) }
