// Package netem emulates a wide-area datagram network on top of the
// simnet virtual clock: addressed endpoints, configurable latency and
// loss models (cluster and PlanetLab-like), and per-node bandwidth
// metering.
//
// The unit moved around is a Datagram. Entities attach a Handler to an
// IP; a NAT device (package nat) attaches at its external IP and relays
// to hosts on private IPs behind it. Bandwidth is metered at the Port
// boundary — the interface a protocol stack uses — so relay traffic is
// charged to the relay node, mirroring how the paper accounts load.
package netem

import (
	"fmt"
	"math/rand"
	"time"

	"whisper/internal/simnet"
)

// IP is a compact network address. Addresses below PrivateBase are
// public; addresses at or above it are private (behind a NAT).
type IP uint32

// PrivateBase is the first private IP. The split lets assertions and
// debug output distinguish P-node interfaces from N-node interfaces.
const PrivateBase IP = 1 << 24

// Public reports whether the address is publicly routable.
func (ip IP) Public() bool { return ip < PrivateBase }

func (ip IP) String() string {
	if ip.Public() {
		return fmt.Sprintf("P%d", uint32(ip))
	}
	return fmt.Sprintf("n%d", uint32(ip-PrivateBase))
}

// Endpoint is an (IP, port) pair, the address of a datagram socket.
type Endpoint struct {
	IP   IP
	Port uint16
}

func (e Endpoint) String() string { return fmt.Sprintf("%v:%d", e.IP, e.Port) }

// IsZero reports whether the endpoint is unset.
func (e Endpoint) IsZero() bool { return e == Endpoint{} }

// Datagram is a single unreliable message.
type Datagram struct {
	Src     Endpoint
	Dst     Endpoint
	Payload []byte
}

// WireSize returns the bytes the datagram occupies on the wire,
// including the emulated IP+UDP header overhead.
func (d Datagram) WireSize() int { return len(d.Payload) + HeaderOverhead }

// HeaderOverhead is the per-datagram header cost (IPv4 20 + UDP 8).
const HeaderOverhead = 28

// Handler receives datagrams addressed to an attached IP.
type Handler interface {
	HandleDatagram(dg Datagram)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(Datagram)

// HandleDatagram calls f(dg).
func (f HandlerFunc) HandleDatagram(dg Datagram) { f(dg) }

// LatencyModel determines one-way delay and loss probability between two
// public interfaces.
type LatencyModel interface {
	// Delay returns the one-way latency for a datagram of size bytes.
	Delay(rng *rand.Rand, src, dst IP, size int) time.Duration
	// LossProb returns the probability in [0,1] that the datagram is
	// dropped in transit.
	LossProb(src, dst IP) float64
}

// Network routes datagrams between attached handlers with model-driven
// latency and loss. All methods must be called from simulation events.
type Network struct {
	sim     *simnet.Sim
	model   LatencyModel
	hosts   map[IP]Handler
	tap     func(Datagram)
	dropped uint64
	sent    uint64
}

// New creates a network using the given latency model.
func New(sim *simnet.Sim, model LatencyModel) *Network {
	return &Network{sim: sim, model: model, hosts: make(map[IP]Handler)}
}

// Sim returns the simulator driving this network.
func (n *Network) Sim() *simnet.Sim { return n.sim }

// Attach registers h to receive datagrams addressed to ip, replacing
// any previous handler.
func (n *Network) Attach(ip IP, h Handler) {
	if h == nil {
		panic("netem: attach nil handler")
	}
	n.hosts[ip] = h
}

// Detach removes the handler for ip. In-flight datagrams to ip are
// silently dropped at delivery time.
func (n *Network) Detach(ip IP) { delete(n.hosts, ip) }

// Attached reports whether some handler is attached at ip.
func (n *Network) Attached(ip IP) bool {
	_, ok := n.hosts[ip]
	return ok
}

// Stats reports totals of datagrams sent and dropped (loss + dead
// destination) since creation.
func (n *Network) Stats() (sent, dropped uint64) { return n.sent, n.dropped }

// SetTap installs an observer invoked for every datagram accepted for
// transmission (before loss). Tests use it to play the paper's passive
// attacker, who can capture traffic on links.
func (n *Network) SetTap(tap func(Datagram)) { n.tap = tap }

// Send routes dg through the emulated network. The datagram is
// delivered asynchronously after the model's latency, or dropped per the
// model's loss probability. Payload ownership passes to the network.
func (n *Network) Send(dg Datagram) {
	n.sent++
	if n.tap != nil {
		n.tap(dg)
	}
	rng := n.sim.Rand()
	if p := n.model.LossProb(dg.Src.IP, dg.Dst.IP); p > 0 && rng.Float64() < p {
		n.dropped++
		return
	}
	delay := n.model.Delay(rng, dg.Src.IP, dg.Dst.IP, dg.WireSize())
	n.sim.After(delay, func() {
		h, ok := n.hosts[dg.Dst.IP]
		if !ok {
			n.dropped++
			return
		}
		h.HandleDatagram(dg)
	})
}
