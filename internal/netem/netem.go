// Package netem emulates a wide-area datagram network on top of the
// simnet virtual clock: addressed endpoints, configurable latency and
// loss models (cluster and PlanetLab-like), and per-node bandwidth
// metering.
//
// The unit moved around is a Datagram. Entities attach a Handler to an
// IP; a NAT device (package nat) attaches at its external IP and relays
// to hosts on private IPs behind it. Bandwidth is metered at the Port
// boundary — the interface a protocol stack uses — so relay traffic is
// charged to the relay node, mirroring how the paper accounts load.
//
// The address, datagram, metering and port primitives are owned by
// package transport (they are substrate-independent); this package
// re-exports them under their historical names and adds what is
// genuinely emulation-specific: the latency/loss models, the
// fault-injection layer (FaultModel), and the Network router driven by
// the virtual clock. Network implements the datagram
// plane of transport.Transport; transport/simnet completes it with the
// simnet scheduling plane.
package netem

import (
	"math/rand"
	"time"

	"whisper/internal/simnet"
	"whisper/internal/transport"
)

// IP is a compact network address; see transport.IP.
type IP = transport.IP

// PrivateBase is the first private IP.
const PrivateBase = transport.PrivateBase

// Endpoint is an (IP, port) pair, the address of a datagram socket.
type Endpoint = transport.Endpoint

// Datagram is a single unreliable message.
type Datagram = transport.Datagram

// HeaderOverhead is the per-datagram header cost (IPv4 20 + UDP 8).
const HeaderOverhead = transport.HeaderOverhead

// Handler receives datagrams addressed to an attached IP.
type Handler = transport.Handler

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc = transport.HandlerFunc

// Meter accumulates bandwidth usage at a node's network boundary.
type Meter = transport.Meter

// Uplink is the sending side of a node's attachment to the network.
type Uplink = transport.Uplink

// Port is the datagram socket a protocol stack uses.
type Port = transport.Port

// NewPort creates a port bound to local, sending through uplink.
func NewPort(local Endpoint, uplink Uplink, meter *Meter) *Port {
	return transport.NewPort(local, uplink, meter)
}

// LatencyModel determines one-way delay and loss probability between two
// public interfaces.
type LatencyModel interface {
	// Delay returns the one-way latency for a datagram of size bytes.
	Delay(rng *rand.Rand, src, dst IP, size int) time.Duration
	// LossProb returns the probability in [0,1] that the datagram is
	// dropped in transit.
	LossProb(src, dst IP) float64
}

// MinDelayModel is implemented by latency models that can state a lower
// bound on every delay they will ever return. The sharded engine uses
// the bound as its synchronization lookahead: cross-shard traffic can
// never arrive sooner than MinDelay, so windows of that width are safe.
type MinDelayModel interface {
	MinDelay() time.Duration
}

// MinDelay returns the model's delay lower bound, or zero when the
// model cannot state one (in which case sharded execution must not be
// used with it).
func MinDelay(m LatencyModel) time.Duration {
	if b, ok := m.(MinDelayModel); ok {
		return b.MinDelay()
	}
	return 0
}

// Network routes datagrams between attached handlers with model-driven
// latency and loss, optionally composed with a FaultModel (duplication,
// reordering, burst loss, partitions — see faults.go). All methods must
// be called from simulation events.
type Network struct {
	sim     *simnet.Sim
	model   LatencyModel
	hosts   map[IP]Handler
	tap     func(Datagram)
	dropped uint64
	sent    uint64

	faults *FaultModel
	burst  map[[2]IP]bool // Gilbert-Elliott per-directed-link state
	fstats FaultStats

	// Shard plane (nil/zero on unsharded networks). route maps a public
	// IP to its owning shard; cross hands a datagram bound for another
	// shard to the coordinator for barrier exchange.
	shard int
	route func(IP) (int, bool)
	cross func(dstShard int, at time.Duration, dg Datagram)
}

// New creates a network using the given latency model.
func New(sim *simnet.Sim, model LatencyModel) *Network {
	return &Network{sim: sim, model: model, hosts: make(map[IP]Handler)}
}

// Sim returns the simulator driving this network.
func (n *Network) Sim() *simnet.Sim { return n.sim }

// Attach registers h to receive datagrams addressed to ip, replacing
// any previous handler.
func (n *Network) Attach(ip IP, h Handler) {
	if h == nil {
		panic("netem: attach nil handler")
	}
	n.hosts[ip] = h
}

// Detach removes the handler for ip. In-flight datagrams to ip are
// silently dropped at delivery time.
func (n *Network) Detach(ip IP) { delete(n.hosts, ip) }

// Attached reports whether some handler is attached at ip.
func (n *Network) Attached(ip IP) bool {
	_, ok := n.hosts[ip]
	return ok
}

// Stats reports totals of datagrams sent and dropped (loss + dead
// destination) since creation.
func (n *Network) Stats() (sent, dropped uint64) { return n.sent, n.dropped }

// SetTap installs an observer invoked for every datagram accepted for
// transmission (before loss). Tests use it to play the paper's passive
// attacker, who can capture traffic on links.
func (n *Network) SetTap(tap func(Datagram)) { n.tap = tap }

// Send routes dg through the emulated network. The datagram is
// delivered asynchronously after the model's latency, or dropped per the
// model's loss probability; an installed FaultModel may additionally
// drop it (partition, burst loss), duplicate it, or delay one copy past
// later traffic. Payload ownership passes to the network. With no fault
// model installed the random-draw sequence and event schedule are
// identical to the pre-fault-layer network.
func (n *Network) Send(dg Datagram) {
	n.sent++
	if n.tap != nil {
		n.tap(dg)
	}
	rng := n.sim.Rand()
	if n.faults != nil && n.faultDrop(rng, dg.Src.IP, dg.Dst.IP) {
		n.dropped++
		return
	}
	if p := n.model.LossProb(dg.Src.IP, dg.Dst.IP); p > 0 && rng.Float64() < p {
		n.dropped++
		return
	}
	n.deliver(rng, dg)
	if f := n.faults; f != nil && f.DupProb > 0 && rng.Float64() < f.DupProb {
		n.fstats.Duplicated++
		dup := dg
		dup.Payload = append([]byte(nil), dg.Payload...)
		n.deliver(rng, dup)
	}
}

// deliver schedules one copy of dg after the model's latency, plus the
// fault model's reordering jitter for an unlucky subset. On a sharded
// network a datagram whose destination lives on another shard is handed
// to the coordinator instead of the local clock; the latency model's
// MinDelay bound guarantees it lands in a later window.
func (n *Network) deliver(rng *rand.Rand, dg Datagram) {
	delay := n.model.Delay(rng, dg.Src.IP, dg.Dst.IP, dg.WireSize())
	if f := n.faults; f != nil && f.ReorderProb > 0 && rng.Float64() < f.ReorderProb {
		n.fstats.Reordered++
		delay += time.Duration(rng.Int63n(int64(f.reorderJitter())))
	}
	if n.route != nil {
		if s, ok := n.route(dg.Dst.IP); ok && s != n.shard {
			n.cross(s, n.sim.Now()+delay, dg)
			return
		}
	}
	n.sim.After(delay, func() {
		n.Inject(dg)
	})
}

// SetShardPlane wires this network into a sharded run: shard is the
// network's own shard index, route maps public IPs to shards (IPs it
// does not know stay local — private addresses never cross shards), and
// cross forwards a datagram due at virtual time at on another shard.
func (n *Network) SetShardPlane(shard int, route func(IP) (int, bool), cross func(dstShard int, at time.Duration, dg Datagram)) {
	n.shard = shard
	n.route = route
	n.cross = cross
}

// Inject delivers dg to the locally attached handler right now, with no
// latency draw. The cross-shard exchange path uses it at the barrier:
// latency was already applied on the sending shard.
func (n *Network) Inject(dg Datagram) {
	h, ok := n.hosts[dg.Dst.IP]
	if !ok {
		n.dropped++
		return
	}
	h.HandleDatagram(dg)
}
