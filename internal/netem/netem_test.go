package netem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"whisper/internal/simnet"
)

func TestSendDeliversWithDelay(t *testing.T) {
	s := simnet.New(1)
	n := New(s, Fixed{D: 5 * time.Millisecond})
	var gotAt time.Duration
	var got Datagram
	n.Attach(2, HandlerFunc(func(dg Datagram) {
		gotAt = s.Now()
		got = dg
	}))
	n.Send(Datagram{Src: Endpoint{IP: 1, Port: 10}, Dst: Endpoint{IP: 2, Port: 20}, Payload: []byte("hi")})
	s.Run()
	if gotAt != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", gotAt)
	}
	if string(got.Payload) != "hi" || got.Src != (Endpoint{IP: 1, Port: 10}) {
		t.Fatalf("wrong datagram: %+v", got)
	}
}

func TestSendToDetachedIsDropped(t *testing.T) {
	s := simnet.New(1)
	n := New(s, Fixed{})
	n.Send(Datagram{Src: Endpoint{IP: 1, Port: 1}, Dst: Endpoint{IP: 9, Port: 9}})
	s.Run()
	sent, dropped := n.Stats()
	if sent != 1 || dropped != 1 {
		t.Fatalf("sent=%d dropped=%d, want 1,1", sent, dropped)
	}
}

func TestDetachMidFlight(t *testing.T) {
	s := simnet.New(1)
	n := New(s, Fixed{D: time.Second})
	delivered := false
	n.Attach(2, HandlerFunc(func(Datagram) { delivered = true }))
	n.Send(Datagram{Src: Endpoint{IP: 1, Port: 1}, Dst: Endpoint{IP: 2, Port: 1}})
	s.After(500*time.Millisecond, func() { n.Detach(2) })
	s.Run()
	if delivered {
		t.Fatal("datagram delivered to detached host")
	}
}

func TestLossyModelDropsApproximately(t *testing.T) {
	s := simnet.New(7)
	n := New(s, Lossy{Model: Fixed{}, P: 0.5})
	received := 0
	n.Attach(2, HandlerFunc(func(Datagram) { received++ }))
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send(Datagram{Src: Endpoint{IP: 1, Port: 1}, Dst: Endpoint{IP: 2, Port: 1}})
	}
	s.Run()
	if received < total/2-150 || received > total/2+150 {
		t.Fatalf("received %d of %d with 50%% loss, want ~%d", received, total, total/2)
	}
}

func TestIPPublicSplit(t *testing.T) {
	if !IP(5).Public() {
		t.Fatal("IP(5) should be public")
	}
	if (PrivateBase + 3).Public() {
		t.Fatal("private IP reported public")
	}
	if IP(5).String() != "P5" {
		t.Fatalf("String = %q", IP(5).String())
	}
	if (PrivateBase + 3).String() != "n3" {
		t.Fatalf("String = %q", (PrivateBase + 3).String())
	}
}

func TestClusterDelayBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Cluster{}
	for i := 0; i < 1000; i++ {
		d := m.Delay(rng, 1, 2, 100)
		if d < 100*time.Microsecond || d > 2*time.Millisecond {
			t.Fatalf("cluster delay %v out of expected range", d)
		}
	}
	if m.LossProb(1, 2) != 0 {
		t.Fatal("cluster should be lossless")
	}
}

func TestPlanetLabDelayProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := DefaultPlanetLab()
	// Base latency is symmetric and stable per pair.
	var min1, min2 time.Duration = time.Hour, time.Hour
	for i := 0; i < 300; i++ {
		if d := m.Delay(rng, 3, 4, 0); d < min1 {
			min1 = d
		}
		if d := m.Delay(rng, 4, 3, 0); d < min2 {
			min2 = d
		}
	}
	diff := min1 - min2
	if diff < 0 {
		diff = -diff
	}
	if diff > 20*time.Millisecond {
		t.Fatalf("asymmetric base latency: %v vs %v", min1, min2)
	}
	if min1 < 20*time.Millisecond {
		t.Fatalf("one-way base %v below MinBase", min1)
	}
	// Larger datagrams take longer on average (serialization term).
	small := m.Delay(rng, 3, 4, 0)
	_ = small
	var sumSmall, sumBig time.Duration
	for i := 0; i < 500; i++ {
		sumSmall += m.Delay(rng, 3, 4, 100)
		sumBig += m.Delay(rng, 3, 4, 20000)
	}
	if sumBig <= sumSmall {
		t.Fatal("serialization term missing: big datagrams not slower")
	}
}

// Property: pairHash is symmetric, so base latency never depends on
// direction for any address pair.
func TestPropertyPairHashSymmetric(t *testing.T) {
	f := func(a, b uint32) bool {
		return pairHash(IP(a), IP(b)) == pairHash(IP(b), IP(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPortMetering(t *testing.T) {
	s := simnet.New(1)
	n := New(s, Fixed{})
	var ma, mb Meter
	pa := NewPort(Endpoint{IP: 1, Port: 1}, DirectUplink{n}, &ma)
	pb := NewPort(Endpoint{IP: 2, Port: 1}, DirectUplink{n}, &mb)
	n.Attach(1, pa)
	n.Attach(2, pb)
	var received []byte
	pb.SetHandler(func(dg Datagram) { received = dg.Payload })
	payload := make([]byte, 100)
	pa.Send(Endpoint{IP: 2, Port: 1}, payload)
	s.Run()
	if received == nil {
		t.Fatal("payload not delivered")
	}
	wantWire := uint64(100 + HeaderOverhead)
	sa, sb := ma.Snapshot(), mb.Snapshot()
	if sa.UpBytes != wantWire || sa.UpMsgs != 1 {
		t.Fatalf("sender meter %+v, want %d up bytes", sa, wantWire)
	}
	if sb.DownBytes != wantWire || sb.DownMsgs != 1 {
		t.Fatalf("receiver meter %+v, want %d down bytes", sb, wantWire)
	}
	if ma.UpKB() != float64(wantWire)/1024 {
		t.Fatalf("UpKB = %v", ma.UpKB())
	}
	ma.Reset()
	if sa := ma.Snapshot(); sa.UpBytes != 0 || sa.UpMsgs != 0 {
		t.Fatal("Reset did not zero meter")
	}
}

func TestPortClose(t *testing.T) {
	s := simnet.New(1)
	n := New(s, Fixed{})
	var m Meter
	p := NewPort(Endpoint{IP: 1, Port: 1}, DirectUplink{n}, &m)
	n.Attach(1, p)
	got := 0
	p.SetHandler(func(Datagram) { got++ })
	p.Close()
	p.Send(Endpoint{IP: 2, Port: 1}, []byte("x"))
	p.HandleDatagram(Datagram{Src: Endpoint{IP: 2, Port: 1}, Dst: Endpoint{IP: 1, Port: 1}})
	s.Run()
	if s := m.Snapshot(); got != 0 || s.UpBytes != 0 || s.DownBytes != 0 {
		t.Fatalf("closed port still active: got=%d meter=%+v", got, s)
	}
	if !p.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

func TestNilMeterSafe(t *testing.T) {
	var m *Meter
	m.AddUp(10) // must not panic
	m.AddDown(10)
}

func BenchmarkNetworkSendDeliver(b *testing.B) {
	s := simnet.New(1)
	n := New(s, Cluster{})
	n.Attach(2, HandlerFunc(func(Datagram) {}))
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Send(Datagram{Src: Endpoint{IP: 1, Port: 1}, Dst: Endpoint{IP: 2, Port: 1}, Payload: payload})
		if s.Pending() > 8192 {
			s.Run()
		}
	}
	s.Run()
}
