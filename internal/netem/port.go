package netem

// DirectUplink sends straight into the network; used by public nodes
// attached to the emulator without going through the transport/simnet
// adapter (NAT tests, infrastructure endpoints).
type DirectUplink struct {
	Net *Network
}

// Send implements Uplink.
func (u DirectUplink) Send(dg Datagram) { u.Net.Send(dg) }
