// Package nylon implements the NAT-resilient peer sampling service the
// WHISPER stack runs on (Kermarrec et al., "NAT-resilient gossip peer
// sampling", the paper's [21]): a Cyclon-style gossip PSS whose view
// entries carry, for NATted nodes, a chain of rendezvous relays through
// which the node can be reached. The layer maintains the invariant the
// paper relies on: for any node B in the view of a node A there exists
// a way, known to Nylon, to open a communication channel from A to B.
//
// On top of the basic PSS the package provides: UDP hole punching to
// shorten relay routes to direct contacts when the NAT-type pair allows
// it, relay forwarding for the pairs where it does not, STUN-style
// external-endpoint discovery against P-nodes, the Π-biased view
// truncation of WHISPER §III-B-1, and public-key piggybacking for the
// key sampling service of §III-B-2.
package nylon

import (
	"whisper/internal/identity"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// MaxRoute bounds relay chains; descriptors with longer routes are not
// merged into views. Short routes are the common case because entries
// are refreshed every cycle with fresh (shorter) paths.
const MaxRoute = 4

// Descriptor identifies a node and how to reach it.
type Descriptor struct {
	ID     identity.NodeID
	Public bool
	// Contact is the endpoint to send to: the node's own address for
	// P-nodes, its NAT's external endpoint for N-nodes (meaningful only
	// to peers the NAT will let through; relays are the general path).
	Contact transport.Endpoint
	// Route is the rendezvous chain to traverse for N-nodes: the local
	// node must have a live contact for Route[0], Route[0] for Route[1],
	// and so on; the last relay has a live contact for ID. Empty means
	// direct contact is expected to work.
	Route []identity.NodeID
}

// Key implements pss.Item.
func (d Descriptor) Key() identity.NodeID { return d.ID }

// IsPublic implements pss.Item.
func (d Descriptor) IsPublic() bool { return d.Public }

// WithRoute returns a copy of d with the given relay chain.
func (d Descriptor) WithRoute(route []identity.NodeID) Descriptor {
	d.Route = append([]identity.NodeID(nil), route...)
	return d
}

func (d Descriptor) encode(w *wire.Writer) {
	w.U64(uint64(d.ID))
	w.Bool(d.Public)
	w.U32(uint32(d.Contact.IP))
	w.U16(d.Contact.Port)
	w.U8(uint8(len(d.Route)))
	for _, r := range d.Route {
		w.U64(uint64(r))
	}
}

func decodeDescriptor(r *wire.Reader) Descriptor {
	var d Descriptor
	d.ID = identity.NodeID(r.U64())
	d.Public = r.Bool()
	d.Contact = transport.Endpoint{IP: transport.IP(r.U32()), Port: r.U16()}
	n := int(r.U8())
	if n > 16 { // hostile input guard; genuine routes are ≤ MaxRoute
		n = 16
	}
	for i := 0; i < n; i++ {
		d.Route = append(d.Route, identity.NodeID(r.U64()))
	}
	return d
}
