package nylon

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/simnet"
	simtr "whisper/internal/transport/simnet"
	"whisper/internal/wire"
)

// newBareNode builds a minimal public node for white-box input testing.
func newBareNode(t testing.TB) *Node {
	t.Helper()
	s := simnet.New(1)
	nw := netem.New(s, netem.Fixed{})
	ident := &identity.Identity{ID: 1, Key: identity.TestKeys(1)[0]}
	return NewNode(simtr.New(s, nw), ident, 0, netem.Endpoint{IP: 5, Port: 1}, nil, Config{KeySampling: true, KeyBlobSize: 256})
}

// TestDispatchNeverPanicsOnGarbage feeds arbitrary datagrams into the
// protocol dispatcher: hostile or corrupted traffic must be dropped,
// never crash a node.
func TestDispatchNeverPanicsOnGarbage(t *testing.T) {
	n := newBareNode(t)
	f := func(payload []byte, srcIP uint32, srcPort uint16) bool {
		n.dispatch(netem.Datagram{
			Src:     netem.Endpoint{IP: netem.IP(srcIP), Port: srcPort},
			Dst:     n.Addr(),
			Payload: payload,
		})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// TestDispatchTypedGarbage prefixes random bodies with every valid
// message tag, exercising each decoder's error paths.
func TestDispatchTypedGarbage(t *testing.T) {
	n := newBareNode(t)
	rng := rand.New(rand.NewSource(43))
	tags := []uint8{msgShuffleReq, msgShuffleResp, msgRelay, msgEchoReq, msgEchoResp,
		msgPunchReq, msgPunchProbe, msgProbeAck, msgKeyReq, msgKeyResp, MsgApp, 0, 0xFF}
	for _, tag := range tags {
		for i := 0; i < 200; i++ {
			body := make([]byte, rng.Intn(200))
			rng.Read(body)
			n.dispatch(netem.Datagram{
				Src:     netem.Endpoint{IP: 9, Port: 9},
				Dst:     n.Addr(),
				Payload: append([]byte{tag}, body...),
			})
		}
	}
	// The node is still functional afterwards.
	if n.Stopped() {
		t.Fatal("garbage stopped the node")
	}
}

// TestHostileRouteLengths ensures oversized relay chains in descriptors
// and paths are bounded by the decoders.
func TestHostileRouteLengths(t *testing.T) {
	// A descriptor claiming a 255-hop route must decode bounded.
	w := wire.NewWriter(0)
	w.U64(7)
	w.Bool(false)
	w.U32(1)
	w.U16(1)
	w.U8(255)
	for i := 0; i < 255; i++ {
		w.U64(uint64(i))
	}
	d := decodeDescriptor(wire.NewReader(w.Bytes()))
	if len(d.Route) > 16 {
		t.Fatalf("hostile route length %d not bounded", len(d.Route))
	}
}

// TestRouteOnlyContactHasNoEndpoint is a regression test: learnRoute
// creates contact entries that carry only a relay chain. Such entries
// must never be reported as direct-send targets — an earlier version
// returned their zero endpoint and datagrams vanished into the void.
func TestRouteOnlyContactHasNoEndpoint(t *testing.T) {
	n := newBareNode(t)
	n.learnRoute(42, []identity.NodeID{7})
	if _, ok := n.contactEndpoint(42); ok {
		t.Fatal("route-only contact reported a (zero) direct endpoint")
	}
	if n.usableContact(42) {
		t.Fatal("route-only contact considered directly usable")
	}
	// The stored route itself is unusable too until relay 7 is a live
	// contact.
	if _, ok := n.storedRoute(42); ok {
		t.Fatal("stored route usable without a live first relay")
	}
	n.learnContact(7, netem.Endpoint{IP: 9, Port: 9}, true)
	route, ok := n.storedRoute(42)
	if !ok || len(route) != 1 || route[0] != 7 {
		t.Fatalf("stored route = %v, %v", route, ok)
	}
}

// TestContactTTLExpiry verifies contacts age out with virtual time and
// that public contacts get the longer liveness window.
func TestContactTTLExpiry(t *testing.T) {
	s := simnet.New(1)
	nw := netem.New(s, netem.Fixed{})
	ident := &identity.Identity{ID: 1, Key: identity.TestKeys(1)[0]}
	n := NewNode(simtr.New(s, nw), ident, 0, netem.Endpoint{IP: 5, Port: 1}, nil,
		Config{ContactTTL: time.Minute})
	n.learnContact(2, netem.Endpoint{IP: 9, Port: 9}, false) // NATted peer
	n.learnContact(3, netem.Endpoint{IP: 8, Port: 8}, true)  // public peer
	if !n.usableContact(2) || !n.usableContact(3) {
		t.Fatal("fresh contacts unusable")
	}
	s.RunUntil(2 * time.Minute)
	if n.usableContact(2) {
		t.Fatal("NATted contact survived past its TTL")
	}
	if !n.usableContact(3) {
		t.Fatal("public contact expired too early (should get 4x TTL)")
	}
	s.RunUntil(10 * time.Minute)
	if n.usableContact(3) {
		t.Fatal("public contact never expires")
	}
}
