package nylon

import (
	"fmt"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/keyss"
	"whisper/internal/pss"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// Message type tags. App is reserved for payloads of the layers above
// (the WCL rides on it).
const (
	msgShuffleReq uint8 = iota + 1
	msgShuffleResp
	msgRelay
	msgEchoReq
	msgEchoResp
	msgPunchReq
	msgPunchProbe
	msgProbeAck
	msgKeyReq
	msgKeyResp
	// MsgApp carries an opaque payload for the layer above.
	MsgApp
)

type entryWire struct {
	D   Descriptor
	Age uint16
}

func encodeEntries(w *wire.Writer, entries []pss.Entry[Descriptor]) {
	w.U8(uint8(len(entries)))
	for _, e := range entries {
		e.Val.encode(w)
		w.U16(e.Age)
	}
}

func decodeEntries(r *wire.Reader) []pss.Entry[Descriptor] {
	n := int(r.U8())
	if n > 64 {
		n = 64
	}
	out := make([]pss.Entry[Descriptor], 0, n)
	for i := 0; i < n; i++ {
		d := decodeDescriptor(r)
		age := r.U16()
		if r.Err() != nil {
			return nil
		}
		out = append(out, pss.Entry[Descriptor]{Val: d, Age: age})
	}
	return out
}

func encodePath(w *wire.Writer, path []identity.NodeID) {
	w.U8(uint8(len(path)))
	for _, id := range path {
		w.U64(uint64(id))
	}
}

func decodePath(r *wire.Reader) []identity.NodeID {
	n := int(r.U8())
	if n > 16 {
		n = 16
	}
	out := make([]identity.NodeID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, identity.NodeID(r.U64()))
	}
	return out
}

// shuffleMsg is both the request and the response of one PSS exchange.
// It carries the sender's descriptor, the relay path the request
// travelled (so the response can retrace it and receivers can adjust
// entry routes), the shuffle buffer, and — when key sampling is on —
// the sender's public key (§III-B-2).
type shuffleMsg struct {
	Seq     uint32
	From    Descriptor
	Path    []identity.NodeID // request: relays used requester→partner
	Entries []pss.Entry[Descriptor]
	Key     crypt.PublicKey
}

func (m *shuffleMsg) encode(typ uint8, blobSize int, withKey bool) []byte {
	w := wire.NewWriter(64 + len(m.Entries)*40 + blobSize)
	w.U8(typ)
	w.U32(m.Seq)
	m.From.encode(w)
	encodePath(w, m.Path)
	encodeEntries(w, m.Entries)
	if withKey {
		w.Bool(true)
		keyss.EncodeKey(w, m.Key, blobSize)
	} else {
		w.Bool(false)
	}
	return w.Bytes()
}

func decodeShuffle(r *wire.Reader, blobSize int) (*shuffleMsg, error) {
	m := &shuffleMsg{}
	m.Seq = r.U32()
	m.From = decodeDescriptor(r)
	m.Path = decodePath(r)
	m.Entries = decodeEntries(r)
	if r.Bool() {
		m.Key = keyss.DecodeKey(r, blobSize)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("nylon: decoding shuffle: %w", err)
	}
	return m, nil
}

// relayMsg forwards an inner message along a chain of rendezvous nodes.
type relayMsg struct {
	Path  []identity.NodeID // remaining relays to traverse
	Final identity.NodeID
	Inner []byte
}

func (m *relayMsg) encode() []byte {
	w := wire.NewWriter(16 + len(m.Inner))
	w.U8(msgRelay)
	encodePath(w, m.Path)
	w.U64(uint64(m.Final))
	w.Bytes32(m.Inner)
	return w.Bytes()
}

func decodeRelay(r *wire.Reader) (*relayMsg, error) {
	m := &relayMsg{}
	m.Path = decodePath(r)
	m.Final = identity.NodeID(r.U64())
	m.Inner = r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("nylon: decoding relay: %w", err)
	}
	return m, nil
}

// echoResp carries the externally observed endpoint back to an N-node
// (STUN-style discovery against a P-node).
func encodeEchoResp(observed transport.Endpoint) []byte {
	w := wire.NewWriter(8)
	w.U8(msgEchoResp)
	w.U32(uint32(observed.IP))
	w.U16(observed.Port)
	return w.Bytes()
}

// punchReq asks a peer (over relays) to start probing the sender's
// advertised external endpoint.
type punchReq struct {
	From identity.NodeID
	Ext  transport.Endpoint
	Path []identity.NodeID // path for the reverse punch request, if any
}

func (m *punchReq) encode() []byte {
	w := wire.NewWriter(24)
	w.U8(msgPunchReq)
	w.U64(uint64(m.From))
	w.U32(uint32(m.Ext.IP))
	w.U16(m.Ext.Port)
	encodePath(w, m.Path)
	return w.Bytes()
}

func decodePunchReq(r *wire.Reader) (*punchReq, error) {
	m := &punchReq{}
	m.From = identity.NodeID(r.U64())
	m.Ext = transport.Endpoint{IP: transport.IP(r.U32()), Port: r.U16()}
	m.Path = decodePath(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("nylon: decoding punch request: %w", err)
	}
	return m, nil
}

// keyMsg is the explicit key exchange used when a P-node is inserted
// into the connection backlog outside a regular shuffle (§III-A: "send
// it an empty message to ensure that a valid path exists").
type keyMsg struct {
	From Descriptor
	Key  crypt.PublicKey
}

func (m *keyMsg) encode(typ uint8, blobSize int) []byte {
	w := wire.NewWriter(32 + blobSize)
	w.U8(typ)
	m.From.encode(w)
	keyss.EncodeKey(w, m.Key, blobSize)
	return w.Bytes()
}

func decodeKeyMsg(r *wire.Reader, blobSize int) (*keyMsg, error) {
	m := &keyMsg{}
	m.From = decodeDescriptor(r)
	m.Key = keyss.DecodeKey(r, blobSize)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("nylon: decoding key message: %w", err)
	}
	return m, nil
}

func encodeIDMsg(typ uint8, id identity.NodeID) []byte {
	w := wire.NewWriter(9)
	w.U8(typ)
	w.U64(uint64(id))
	return w.Bytes()
}

// encodeApp frames an application payload for the layer above.
func encodeApp(payload []byte) []byte {
	w := wire.NewWriter(1 + len(payload))
	w.U8(MsgApp)
	w.Raw(payload)
	return w.Bytes()
}
