package nylon

import (
	"sync/atomic"
	"time"

	"whisper/internal/identity"
	"whisper/internal/keyss"
	"whisper/internal/nat"
	"whisper/internal/obs"
	"whisper/internal/pss"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// Config parameterizes a Nylon node. The zero value is completed with
// the paper's defaults by withDefaults.
type Config struct {
	// ViewSize is c, the partial view bound (paper: 10).
	ViewSize int
	// ExchangeSize is the number of entries per shuffle buffer
	// (self included; paper exchanges subsets of the view).
	ExchangeSize int
	// Cycle is the PSS period (paper: 10 s).
	Cycle time.Duration
	// Jitter desynchronizes node cycles (default Cycle/2).
	Jitter time.Duration
	// MinPublic is Π, the minimum number of P-nodes kept per view
	// (§III-B-1). Zero = unbiased baseline.
	MinPublic int
	// CapExcessPublic enables the second bias that sheds P-nodes above
	// the Π threshold (ablation option, see pss.SelectOpts).
	CapExcessPublic bool
	// KeySampling piggybacks public keys on shuffles (§III-B-2).
	KeySampling bool
	// KeyBlobSize is the on-wire size of one key (default 1 KB).
	KeyBlobSize int
	// ShuffleTimeout bounds how long an initiator waits for a response.
	ShuffleTimeout time.Duration
	// Punch enables hole punching to shorten relay routes (default on;
	// DisablePunch turns it off for ablations).
	DisablePunch bool
	// ContactTTL is how long a direct contact is considered usable
	// after the last inbound datagram; it must stay below the NAT lease.
	ContactTTL time.Duration
	// Obs is the observability scope the node's instruments register
	// under (typically carrying a node label). Nil runs unobserved:
	// counters still count (Stats stays accurate) but nothing is
	// exported.
	Obs *obs.Scope
}

func (c Config) withDefaults() Config {
	if c.ViewSize == 0 {
		c.ViewSize = 10
	}
	if c.ExchangeSize == 0 {
		c.ExchangeSize = 5
	}
	if c.Cycle == 0 {
		c.Cycle = 10 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = c.Cycle / 2
	}
	if c.KeyBlobSize == 0 {
		c.KeyBlobSize = keyss.DefaultKeyBlobSize
	}
	if c.ShuffleTimeout == 0 {
		c.ShuffleTimeout = 3 * time.Second
	}
	if c.ContactTTL == 0 {
		c.ContactTTL = 30 * time.Minute
	}
	return c
}

// Stats is a snapshot of the node's protocol counters, read through
// Node.Stats for the evaluation harness.
type Stats struct {
	ShufflesInitiated uint64
	// ShufflesViaRelays counts initiated shuffles whose request had to
	// travel through a rendezvous chain (no direct association existed).
	ShufflesViaRelays uint64
	ShufflesCompleted uint64
	ShufflesTimedOut  uint64
	ShufflesServed    uint64
	RouteFailures     uint64
	RelaysForwarded   uint64
	RelayDrops        uint64
	PunchAttempts     uint64
	PunchSuccesses    uint64
	EchoUpdates       uint64
}

// met holds the node's metric instruments (registered when Config.Obs
// is set, standalone otherwise — they count either way).
type met struct {
	shufflesInitiated *obs.Counter
	shufflesViaRelays *obs.Counter
	shufflesCompleted *obs.Counter
	shufflesTimedOut  *obs.Counter
	shufflesServed    *obs.Counter
	routeFailures     *obs.Counter
	relaysForwarded   *obs.Counter
	relayDrops        *obs.Counter
	punchAttempts     *obs.Counter
	punchSuccesses    *obs.Counter
	echoUpdates       *obs.Counter
	punchRTT          *obs.Histogram
}

// sharedPunchRTT absorbs punch RTT observations for nodes running
// without a metrics scope: the per-node histogram is write-only then
// (Stats does not expose it), so unobserved nodes share one sink
// instead of each retaining a bucket array. Histogram writes are
// atomic, so the shared sink is safe from every node.
var sharedPunchRTT = obs.NewHistogram()

func newMet(sc *obs.Scope) met {
	if sc == nil {
		// Unobserved node: the counters still back Stats, so they stay
		// per-node — but carved from one block instead of eleven heap
		// objects each.
		blk := new([11]obs.Counter)
		return met{
			shufflesInitiated: &blk[0],
			shufflesViaRelays: &blk[1],
			shufflesCompleted: &blk[2],
			shufflesTimedOut:  &blk[3],
			shufflesServed:    &blk[4],
			routeFailures:     &blk[5],
			relaysForwarded:   &blk[6],
			relayDrops:        &blk[7],
			punchAttempts:     &blk[8],
			punchSuccesses:    &blk[9],
			echoUpdates:       &blk[10],
			punchRTT:          sharedPunchRTT,
		}
	}
	return met{
		shufflesInitiated: sc.Counter("nylon_shuffles_initiated_total"),
		shufflesViaRelays: sc.Counter("nylon_shuffles_via_relays_total"),
		shufflesCompleted: sc.Counter("nylon_shuffles_completed_total"),
		shufflesTimedOut:  sc.Counter("nylon_shuffles_timed_out_total"),
		shufflesServed:    sc.Counter("nylon_shuffles_served_total"),
		routeFailures:     sc.Counter("nylon_route_failures_total"),
		relaysForwarded:   sc.Counter("nylon_relays_forwarded_total"),
		relayDrops:        sc.Counter("nylon_relay_drops_total"),
		punchAttempts:     sc.Counter("nylon_punch_attempts_total"),
		punchSuccesses:    sc.Counter("nylon_punch_successes_total"),
		echoUpdates:       sc.Counter("nylon_echo_updates_total"),
		punchRTT:          sc.Histogram("nylon_punch_rtt_ms"),
	}
}

// ExchangeEvent notifies the layer above (the WCL's connection backlog)
// of a completed bidirectional gossip exchange (§III-A: only successful
// gossip exchanges feed the CB).
type ExchangeEvent struct {
	// Peer describes the partner, with a Route usable from this node.
	Peer Descriptor
	// Path is the relay chain used ([] for a direct exchange).
	Path []identity.NodeID
	// Initiated is true on the requester side.
	Initiated bool
}

type pendingShuffle struct {
	partner Descriptor
	path    []identity.NodeID
	sent    []pss.Entry[Descriptor]
	timer   transport.Timer
}

// pendingRef indexes an in-flight shuffle by sequence number. A node
// has at most a couple of shuffles in flight, so a packed slice with
// linear scans replaces the historical map[uint32]*pendingShuffle,
// whose buckets outweighed the payload at large populations.
type pendingRef struct {
	seq uint32
	p   *pendingShuffle
}

// findPending returns the in-flight shuffle with the given sequence
// number, or nil.
func (n *Node) findPending(seq uint32) *pendingShuffle {
	for i := range n.pending {
		if n.pending[i].seq == seq {
			return n.pending[i].p
		}
	}
	return nil
}

// removePending drops the in-flight shuffle with the given sequence
// number, reporting whether it existed.
func (n *Node) removePending(seq uint32) bool {
	for i := range n.pending {
		if n.pending[i].seq == seq {
			last := len(n.pending) - 1
			n.pending[i] = n.pending[last]
			n.pending[last] = pendingRef{}
			n.pending = n.pending[:last]
			return true
		}
	}
	return false
}

// Node is one Nylon PSS participant.
type Node struct {
	cfg   *Config // shared across nodes built with an identical config
	rt    transport.Transport
	ident *identity.Identity
	port  *transport.Port
	typ   nat.Type
	dev   *nat.Device

	view     *pss.View[Descriptor]
	keys     *keyss.Store
	contacts contactTable
	pending  []pendingRef
	seq      uint32

	selfExt   transport.Endpoint
	selfExtAt time.Duration
	ticker    transport.Ticker
	stopped   bool

	// OnExchange, if set, is invoked after every successful exchange.
	OnExchange func(ev ExchangeEvent)
	// OnKeyExchange, if set, is invoked when an explicit key exchange
	// with a P-node completes (the WCL inserts it into the CB then).
	OnKeyExchange func(peer Descriptor)
	// AppHandler receives MsgApp payloads for the layer above.
	AppHandler func(src transport.Endpoint, payload []byte)

	met met
	// punchSent remembers when a punch request left for a peer, to
	// derive the punch RTT when the peer's probe (or ack) arrives. A
	// node has at most a handful of punches outstanding, so a packed
	// slice (empty until the first punch) replaces the historical map.
	punchSent []punchSentEntry
}

// punchSentEntry records an outstanding punch request's start time.
type punchSentEntry struct {
	id identity.NodeID
	at time.Duration
}

// cfgCache deduplicates the per-node Config copy: a world builds every
// node with the same effective config, so all of them can point at one
// shared value instead of embedding ~100 bytes each. Lock-free — a
// racing store at worst wastes one copy.
var cfgCache atomic.Pointer[Config]

func sharedConfig(c Config) *Config {
	if p := cfgCache.Load(); p != nil && *p == c {
		return p
	}
	p := &c
	cfgCache.Store(p)
	return p
}

// NewNode wires a node to a transport (the emulated substrate or real
// UDP sockets — the node never knows which). For N-nodes pass the NAT
// device and a private addr; for P-nodes pass dev nil and a public
// addr. NAT devices exist only on the emulated substrate: the device
// must be attached to the same underlying network as rt. The node
// registers itself with the transport (or device) immediately but
// gossips only after Start.
func NewNode(rt transport.Transport, ident *identity.Identity, typ nat.Type, addr transport.Endpoint, dev *nat.Device, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:   sharedConfig(cfg),
		rt:    rt,
		ident: ident,
		typ:   typ,
		dev:   dev,
		view:  pss.NewView[Descriptor](cfg.ViewSize),
		keys:  keyss.NewStore(),
		met:   newMet(cfg.Obs),
	}
	meter := &transport.Meter{}
	// Bandwidth gauges read the (atomic) meter at scrape time.
	cfg.Obs.GaugeFunc("transport_up_bytes", func() float64 { return float64(meter.UpBytes()) })
	cfg.Obs.GaugeFunc("transport_down_bytes", func() float64 { return float64(meter.DownBytes()) })
	cfg.Obs.GaugeFunc("transport_up_msgs", func() float64 { return float64(meter.Snapshot().UpMsgs) })
	cfg.Obs.GaugeFunc("transport_down_msgs", func() float64 { return float64(meter.Snapshot().DownMsgs) })
	if typ == nat.None {
		if dev != nil {
			panic("nylon: public node with a NAT device")
		}
		if !addr.IP.Public() {
			panic("nylon: public node with private address")
		}
		n.port = transport.NewPort(addr, rt, meter)
		rt.Attach(addr.IP, n.port)
		n.selfExt = addr
	} else {
		if dev == nil {
			panic("nylon: NATted node without a device")
		}
		if addr.IP.Public() {
			panic("nylon: NATted node with public address")
		}
		n.port = transport.NewPort(addr, dev, meter)
		dev.AttachInside(addr.IP, n.port)
	}
	n.port.SetHandler(n.dispatch)
	return n
}

// ID returns the node identifier.
func (n *Node) ID() identity.NodeID { return n.ident.ID }

// Identity returns the node's identity (keys included).
func (n *Node) Identity() *identity.Identity { return n.ident }

// NATType returns the node's NAT type (None for P-nodes).
func (n *Node) NATType() nat.Type { return n.typ }

// Public reports whether the node is a P-node.
func (n *Node) Public() bool { return n.typ == nat.None }

// Addr returns the node's own (possibly private) bound endpoint.
func (n *Node) Addr() transport.Endpoint { return n.port.Local() }

// Meter returns the node's bandwidth meter.
func (n *Node) Meter() *transport.Meter { return n.port.Meter() }

// Stats returns a snapshot of the node's protocol counters.
func (n *Node) Stats() Stats {
	return Stats{
		ShufflesInitiated: n.met.shufflesInitiated.Value(),
		ShufflesViaRelays: n.met.shufflesViaRelays.Value(),
		ShufflesCompleted: n.met.shufflesCompleted.Value(),
		ShufflesTimedOut:  n.met.shufflesTimedOut.Value(),
		ShufflesServed:    n.met.shufflesServed.Value(),
		RouteFailures:     n.met.routeFailures.Value(),
		RelaysForwarded:   n.met.relaysForwarded.Value(),
		RelayDrops:        n.met.relayDrops.Value(),
		PunchAttempts:     n.met.punchAttempts.Value(),
		PunchSuccesses:    n.met.punchSuccesses.Value(),
		EchoUpdates:       n.met.echoUpdates.Value(),
	}
}

// Keys returns the public-key sampling store.
func (n *Node) Keys() *keyss.Store { return n.keys }

// View returns the current view entries.
func (n *Node) View() []pss.Entry[Descriptor] { return n.view.Entries() }

// ViewIDs returns the IDs in the current view.
func (n *Node) ViewIDs() []identity.NodeID { return n.view.IDs() }

// Config returns the node's effective configuration.
func (n *Node) Config() Config { return *n.cfg }

// GetPeer returns one uniformly random peer from the view — the
// getPeer() of the PSS API (Fig 1). ok is false if the view is empty.
func (n *Node) GetPeer() (Descriptor, bool) {
	e, ok := n.view.Random(n.rt.Rand())
	return e.Val, ok
}

// SelfDescriptor returns the descriptor the node gossips about itself.
func (n *Node) SelfDescriptor() Descriptor {
	return Descriptor{
		ID:      n.ident.ID,
		Public:  n.Public(),
		Contact: n.selfExt, // zero until STUN discovery for N-nodes
	}
}

// Bootstrap seeds the view, as a tracker or invitation would.
func (n *Node) Bootstrap(ds []Descriptor) {
	for _, d := range ds {
		if d.ID != n.ident.ID {
			n.view.Insert(d, 0)
		}
	}
}

// Start begins periodic gossip.
func (n *Node) Start() {
	if n.ticker != nil || n.stopped {
		return
	}
	n.ticker = n.rt.EveryJitter(n.cfg.Cycle, n.cfg.Jitter, n.cycle)
}

// Stop halts the node abruptly (crash-stop, as the churn model
// assumes): the port closes and all timers are cancelled. Peers detect
// the departure through shuffle timeouts and view aging.
func (n *Node) Stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	if n.ticker != nil {
		n.ticker.Stop()
	}
	for i := range n.pending {
		n.pending[i].p.timer.Cancel()
	}
	n.port.Close()
	if n.typ == nat.None {
		n.rt.Detach(n.port.Local().IP)
	} else {
		n.dev.DetachInside(n.port.Local().IP)
		n.dev.Close()
	}
}

// Stopped reports whether the node was stopped.
func (n *Node) Stopped() bool { return n.stopped }

// cycle runs one active PSS round.
func (n *Node) cycle() {
	if n.stopped {
		return
	}
	n.contacts.sweep(n.rt.Now(), n.cfg.ContactTTL)
	n.maybeDiscoverExternal()
	n.view.AgeAll()
	partner, ok := n.view.Oldest()
	if !ok {
		return
	}
	// Cyclon: the partner's slot is freed and refilled by the response.
	n.view.Remove(partner.Val.Key())
	path, ok := n.routeTo(partner.Val)
	if !ok {
		n.met.routeFailures.Inc()
		return
	}
	sent := n.makeBuffer(partner.Val.Key())
	n.seq++
	seq := n.seq
	msg := shuffleMsg{Seq: seq, From: n.SelfDescriptor(), Path: path, Entries: n.shipEntries(sent)}
	if n.cfg.KeySampling {
		msg.Key = n.ident.Public()
	}
	n.met.shufflesInitiated.Inc()
	if len(path) > 0 {
		n.met.shufflesViaRelays.Inc()
	}
	p := &pendingShuffle{partner: partner.Val, path: path, sent: sent}
	p.timer = n.rt.After(n.cfg.ShuffleTimeout, func() {
		if n.removePending(seq) {
			n.met.shufflesTimedOut.Inc()
		}
	})
	n.pending = append(n.pending, pendingRef{seq: seq, p: p})
	n.send(msg.encode(msgShuffleReq, n.cfg.KeyBlobSize, n.cfg.KeySampling), partner.Val, path)
}

// makeBuffer assembles the shuffle buffer: self (age 0) plus a random
// sample, excluding the partner.
func (n *Node) makeBuffer(partner identity.NodeID) []pss.Entry[Descriptor] {
	buf := []pss.Entry[Descriptor]{{Val: n.SelfDescriptor()}}
	buf = append(buf, n.view.Sample(n.rt.Rand(), n.cfg.ExchangeSize-1, partner)...)
	return buf
}

// shipEntries rewrites entry routes from the sender's perspective: for
// each N-node entry, the sender becomes the first rendezvous (it can
// reach the node either directly or through its own stored route). The
// receiver completes the route with its own path to the sender.
func (n *Node) shipEntries(entries []pss.Entry[Descriptor]) []pss.Entry[Descriptor] {
	out := make([]pss.Entry[Descriptor], 0, len(entries))
	for _, e := range entries {
		d := e.Val
		switch {
		case d.ID == n.ident.ID:
			// Self: the receiver's path to us is the whole route.
			d.Route = nil
		case d.Public:
			d.Route = nil
		case n.usableContact(d.ID):
			d = d.WithRoute([]identity.NodeID{n.ident.ID})
		default:
			d = d.WithRoute(append([]identity.NodeID{n.ident.ID}, d.Route...))
		}
		out = append(out, pss.Entry[Descriptor]{Val: d, Age: e.Age})
	}
	return out
}

// adjustReceived completes received entry routes with the local path to
// the exchange partner and drops entries whose route grew beyond
// MaxRoute.
func (n *Node) adjustReceived(entries []pss.Entry[Descriptor], pathToSender []identity.NodeID) []pss.Entry[Descriptor] {
	out := make([]pss.Entry[Descriptor], 0, len(entries))
	for _, e := range entries {
		d := e.Val
		if !d.Public && d.ID != n.ident.ID {
			if n.usableContact(d.ID) {
				d.Route = nil
			} else {
				route := append(append([]identity.NodeID(nil), pathToSender...), d.Route...)
				if len(route) > MaxRoute {
					continue
				}
				d.Route = route
			}
		}
		out = append(out, pss.Entry[Descriptor]{Val: d, Age: e.Age})
	}
	return out
}

func (n *Node) selectOpts() pss.SelectOpts {
	return pss.SelectOpts{
		Capacity:        n.cfg.ViewSize,
		Self:            n.ident.ID,
		MinPublic:       n.cfg.MinPublic,
		CapExcessPublic: n.cfg.CapExcessPublic,
	}
}

// dispatch routes one inbound datagram to its handler.
func (n *Node) dispatch(dg transport.Datagram) {
	if n.stopped || len(dg.Payload) == 0 {
		return
	}
	r := wire.NewReader(dg.Payload)
	typ := r.U8()
	switch typ {
	case msgShuffleReq:
		n.handleShuffleReq(dg.Src, r)
	case msgShuffleResp:
		n.handleShuffleResp(dg.Src, r)
	case msgRelay:
		n.handleRelay(dg.Src, r)
	case msgEchoReq:
		n.port.Send(dg.Src, encodeEchoResp(dg.Src))
	case msgEchoResp:
		n.handleEchoResp(r)
	case msgPunchReq:
		n.handlePunchReq(r)
	case msgPunchProbe:
		n.handlePunchProbe(dg.Src, r)
	case msgProbeAck:
		n.handleProbeAck(dg.Src, r)
	case msgKeyReq:
		n.handleKeyMsg(dg.Src, r, true)
	case msgKeyResp:
		n.handleKeyMsg(dg.Src, r, false)
	case MsgApp:
		if n.AppHandler != nil {
			n.AppHandler(dg.Src, dg.Payload[1:])
		}
	}
}

func (n *Node) handleShuffleReq(src transport.Endpoint, r *wire.Reader) {
	req, err := decodeShuffle(r, n.cfg.KeyBlobSize)
	if err != nil {
		return
	}
	direct := len(req.Path) == 0
	if direct {
		n.learnContact(req.From.ID, src, req.From.Public)
	}
	reverse := reversePath(req.Path)
	// The requester's own entry arrives with an empty route; the
	// reverse of the request path is how we reach it.
	received := n.adjustReceived(req.Entries, reverse)

	// Reply with our own buffer before merging (Cyclon).
	sent := n.view.Sample(n.rt.Rand(), n.cfg.ExchangeSize, req.From.ID)
	resp := shuffleMsg{Seq: req.Seq, From: n.SelfDescriptor(), Path: req.Path, Entries: n.shipEntries(sent)}
	if n.cfg.KeySampling {
		resp.Key = n.ident.Public()
	}
	peer := req.From.WithRoute(reverse)
	n.learnRoute(req.From.ID, reverse)
	n.send(resp.encode(msgShuffleResp, n.cfg.KeyBlobSize, n.cfg.KeySampling), peer, reverse)

	pss.MergeCyclon(n.view, sent, received, n.selectOpts())
	if n.cfg.KeySampling && req.Key != nil {
		n.keys.Put(req.From.ID, req.Key)
	}
	n.met.shufflesServed.Inc()
	if n.OnExchange != nil {
		n.OnExchange(ExchangeEvent{Peer: peer, Path: reverse, Initiated: false})
	}
	n.maybePunch(peer, reverse)
}

func (n *Node) handleShuffleResp(src transport.Endpoint, r *wire.Reader) {
	resp, err := decodeShuffle(r, n.cfg.KeyBlobSize)
	if err != nil {
		return
	}
	p := n.findPending(resp.Seq)
	if p == nil || p.partner.ID != resp.From.ID {
		return
	}
	n.removePending(resp.Seq)
	p.timer.Cancel()
	if len(p.path) == 0 {
		n.learnContact(resp.From.ID, src, resp.From.Public)
	}
	received := n.adjustReceived(resp.Entries, p.path)
	pss.MergeCyclon(n.view, p.sent, received, n.selectOpts())
	if n.cfg.KeySampling && resp.Key != nil {
		n.keys.Put(resp.From.ID, resp.Key)
	}
	n.met.shufflesCompleted.Inc()
	n.learnRoute(resp.From.ID, p.path)
	peer := resp.From.WithRoute(p.path)
	if n.OnExchange != nil {
		n.OnExchange(ExchangeEvent{Peer: peer, Path: p.path, Initiated: true})
	}
	n.maybePunch(peer, p.path)
}

func reversePath(path []identity.NodeID) []identity.NodeID {
	if len(path) == 0 {
		return nil
	}
	out := make([]identity.NodeID, len(path))
	for i, id := range path {
		out[len(path)-1-i] = id
	}
	return out
}

// Runtime returns the transport driving this node, for layers that
// need timers and randomness.
func (n *Node) Runtime() transport.Transport { return n.rt }
