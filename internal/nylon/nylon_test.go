package nylon_test

import (
	"testing"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/sim"
)

// buildWorld creates a converged test network.
func buildWorld(t testing.TB, opts sim.Options) *sim.World {
	t.Helper()
	if opts.KeyPool == nil {
		opts.KeyPool = identity.TestPool(32)
	}
	w, err := sim.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestOverlayConvergesWithNATs(t *testing.T) {
	w := buildWorld(t, sim.Options{Seed: 1, N: 200, NATRatio: 0.7})
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)

	g := w.GraphStream()
	if !g.WeaklyConnected() {
		t.Fatal("overlay disconnected after 30 cycles")
	}
	// Views should be full and include N-nodes (NAT resilience: NATted
	// nodes are reachable and thus gossiped).
	nattedSeen := 0
	for _, n := range w.Live() {
		view := n.Nylon.View()
		if len(view) < 8 {
			t.Fatalf("node %v view has only %d entries", n.ID(), len(view))
		}
		for _, e := range view {
			if !e.Val.Public {
				nattedSeen++
			}
		}
	}
	if nattedSeen == 0 {
		t.Fatal("no N-node ever appears in a view: NAT traversal broken")
	}
	// With 70% N-nodes, they should be well represented, not marginal.
	total := 0
	for _, n := range w.Live() {
		total += len(n.Nylon.View())
	}
	if frac := float64(nattedSeen) / float64(total); frac < 0.4 {
		t.Fatalf("N-nodes are only %.0f%% of view entries, want ≥ 40%%", frac*100)
	}
}

func TestViewEntriesAreRoutable(t *testing.T) {
	// The Nylon invariant: every view entry can be contacted. Exercise
	// it by sending an app payload to every entry of a sample of nodes.
	w := buildWorld(t, sim.Options{Seed: 2, N: 150, NATRatio: 0.7})
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)

	received := make(map[identity.NodeID]int)
	for _, n := range w.Live() {
		id := n.ID()
		n.Nylon.AppHandler = func(_ netem.Endpoint, payload []byte) {
			received[id]++
		}
	}
	sent := 0
	for _, n := range w.Live()[:50] {
		for _, e := range n.Nylon.View() {
			if err := n.Nylon.SendApp(e.Val, []byte("ping")); err == nil {
				sent++
			}
		}
	}
	w.Sim.RunFor(10 * time.Second)
	got := 0
	for _, c := range received {
		got += c
	}
	if sent == 0 {
		t.Fatal("no sendable view entries at all")
	}
	if frac := float64(got) / float64(sent); frac < 0.9 {
		t.Fatalf("only %.0f%% of view entries were actually reachable (%d/%d)", frac*100, got, sent)
	}
}

func TestBiasedViewsKeepPublicQuota(t *testing.T) {
	w := buildWorld(t, sim.Options{Seed: 3, N: 200, NATRatio: 0.7,
		Nylon: nylon.Config{MinPublic: 3}})
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)

	below := 0
	for _, n := range w.Live() {
		pubs := 0
		for _, e := range n.Nylon.View() {
			if e.Val.Public {
				pubs++
			}
		}
		if pubs < 3 {
			below++
		}
	}
	if below > len(w.Live())/20 {
		t.Fatalf("%d/%d views below Π=3", below, len(w.Live()))
	}
}

func TestKeySamplingPopulatesStores(t *testing.T) {
	w := buildWorld(t, sim.Options{Seed: 4, N: 100, NATRatio: 0.7,
		Nylon: nylon.Config{KeySampling: true, KeyBlobSize: 256}})
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)

	for _, n := range w.Live() {
		if n.Nylon.Keys().Len() < 3 {
			t.Fatalf("node %v knows only %d keys after 24 cycles", n.ID(), n.Nylon.Keys().Len())
		}
	}
	// Keys must be correct: pick a node, check a sampled key matches the
	// actual identity of its owner.
	n := w.Live()[0]
	checked := 0
	for _, e := range n.Nylon.View() {
		owner := w.Get(e.Val.ID)
		if owner == nil {
			continue
		}
		if k := n.Nylon.Keys().Get(e.Val.ID); k != nil {
			if crypt.KeyFingerprint(k) != crypt.KeyFingerprint(owner.Nylon.Identity().Public()) {
				t.Fatalf("sampled key for %v does not match its identity", e.Val.ID)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no view entry had a sampled key to verify")
	}
}

func TestRelaysAndPunchingOccur(t *testing.T) {
	w := buildWorld(t, sim.Options{Seed: 5, N: 200, NATRatio: 0.7})
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)

	var relays, punches, timeouts, completed uint64
	for _, n := range w.Live() {
		st := n.Nylon.Stats()
		relays += st.RelaysForwarded
		punches += st.PunchSuccesses
		completed += st.ShufflesCompleted
		timeouts += st.ShufflesTimedOut
	}
	if relays == 0 {
		t.Fatal("no message was ever relayed in a 70%-NAT network")
	}
	if punches == 0 {
		t.Fatal("hole punching never succeeded")
	}
	if completed == 0 {
		t.Fatal("no shuffle ever completed")
	}
	// In a stable network, most initiated shuffles should complete.
	if timeouts*5 > completed {
		t.Fatalf("too many shuffle timeouts: %d timeouts vs %d completed", timeouts, completed)
	}
}

func TestPunchingDisabledStillConverges(t *testing.T) {
	w := buildWorld(t, sim.Options{Seed: 6, N: 120, NATRatio: 0.7,
		Nylon: nylon.Config{DisablePunch: true}})
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)
	if !w.GraphStream().WeaklyConnected() {
		t.Fatal("relay-only network disconnected")
	}
	var punches uint64
	for _, n := range w.Live() {
		punches += n.Nylon.Stats().PunchSuccesses
	}
	if punches != 0 {
		t.Fatalf("punching happened despite being disabled: %d", punches)
	}
}

func TestChurnHealing(t *testing.T) {
	w := buildWorld(t, sim.Options{Seed: 7, N: 200, NATRatio: 0.7})
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)

	killed := w.KillRandom(40)
	dead := make(map[identity.NodeID]bool, len(killed))
	for _, n := range killed {
		dead[n.ID()] = true
	}
	// Replacement arrivals, as in the churn model (100% replacement).
	for i := 0; i < 40; i++ {
		w.Spawn()
	}
	w.StartAll()
	w.Sim.RunFor(6 * time.Minute)

	staleRefs, totalRefs := 0, 0
	for _, n := range w.Live() {
		for _, id := range n.Nylon.ViewIDs() {
			totalRefs++
			if dead[id] {
				staleRefs++
			}
		}
	}
	if frac := float64(staleRefs) / float64(totalRefs); frac > 0.02 {
		t.Fatalf("%.1f%% of view entries still point to dead nodes after 36 cycles", frac*100)
	}
	if !w.GraphStream().WeaklyConnected() {
		t.Fatal("overlay disconnected after churn")
	}
	// New arrivals are integrated: they appear in other nodes' views.
	newSeen := 0
	for _, n := range w.Live() {
		for _, id := range n.Nylon.ViewIDs() {
			if uint64(id) > 200 {
				newSeen++
			}
		}
	}
	if newSeen == 0 {
		t.Fatal("no new arrival ever entered a view")
	}
}

func TestStoppedNodeGoesSilent(t *testing.T) {
	w := buildWorld(t, sim.Options{Seed: 8, N: 50, NATRatio: 0.5})
	w.StartAll()
	w.Sim.RunUntil(time.Minute)
	victim := w.Live()[0]
	before := victim.Nylon.Meter().Snapshot()
	w.Kill(victim)
	w.Sim.RunFor(2 * time.Minute)
	after := victim.Nylon.Meter().Snapshot()
	if after.UpBytes != before.UpBytes {
		t.Fatal("stopped node kept sending")
	}
	if after.DownBytes != before.DownBytes {
		t.Fatal("stopped node kept receiving")
	}
	if !victim.Nylon.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestGetPeerIsFromView(t *testing.T) {
	w := buildWorld(t, sim.Options{Seed: 9, N: 60, NATRatio: 0.7})
	w.StartAll()
	w.Sim.RunUntil(2 * time.Minute)
	n := w.Live()[0]
	ids := map[identity.NodeID]bool{}
	for _, id := range n.Nylon.ViewIDs() {
		ids[id] = true
	}
	for i := 0; i < 10; i++ {
		d, ok := n.Nylon.GetPeer()
		if !ok {
			t.Fatal("GetPeer failed on a converged node")
		}
		if !ids[d.ID] {
			// The view may rotate between calls; re-check liveness only.
			if w.Get(d.ID) == nil {
				t.Fatalf("GetPeer returned unknown dead node %v", d.ID)
			}
		}
	}
}

func TestEchoDiscovery(t *testing.T) {
	w := buildWorld(t, sim.Options{Seed: 10, N: 60, NATRatio: 0.7})
	w.StartAll()
	w.Sim.RunUntil(2 * time.Minute)
	withExt := 0
	natted := w.LiveNatted()
	for _, n := range natted {
		if !n.Nylon.SelfDescriptor().Contact.IsZero() {
			withExt++
		}
	}
	if withExt*2 < len(natted) {
		t.Fatalf("only %d/%d N-nodes discovered their external endpoint", withExt, len(natted))
	}
}

func TestInDegreeBalance(t *testing.T) {
	w := buildWorld(t, sim.Options{Seed: 11, N: 200, NATRatio: 0.7})
	w.StartAll()
	w.Sim.RunUntil(5 * time.Minute)
	in := w.GraphStream().InDegrees()
	max, zero := 0, 0
	for _, d := range in {
		if d > max {
			max = d
		}
		if d == 0 {
			zero++
		}
	}
	if max > 60 {
		t.Fatalf("max in-degree %d: overlay is hub-dominated", max)
	}
	if zero > 10 {
		t.Fatalf("%d nodes have in-degree 0: poorly integrated", zero)
	}
}

func BenchmarkNetwork200NodesOneCycle(b *testing.B) {
	w := buildWorld(b, sim.Options{Seed: 12, N: 200, NATRatio: 0.7})
	w.StartAll()
	w.Sim.RunUntil(2 * time.Minute) // warm up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Sim.RunFor(10 * time.Second)
	}
}

func TestConvergesOnLossyWAN(t *testing.T) {
	// The PlanetLab model adds heavy-tailed latency, 2% datagram loss
	// and slow nodes; the PSS must still converge (§V deploys there).
	w := buildWorld(t, sim.Options{Seed: 13, N: 150, NATRatio: 0.7,
		Model: netem.DefaultPlanetLab()})
	w.StartAll()
	w.Sim.RunUntil(8 * time.Minute)

	g := w.GraphStream()
	if !g.WeaklyConnected() {
		t.Fatal("overlay disconnected under WAN loss")
	}
	full := 0
	var timeouts, completed uint64
	for _, n := range w.Live() {
		if len(n.Nylon.View()) >= 8 {
			full++
		}
		timeouts += n.Nylon.Stats().ShufflesTimedOut
		completed += n.Nylon.Stats().ShufflesCompleted
	}
	if full < len(w.Live())*9/10 {
		t.Fatalf("only %d/%d views full under loss", full, len(w.Live()))
	}
	if timeouts == 0 {
		t.Fatal("no shuffle ever timed out despite 2% loss — loss path untested")
	}
	if completed < timeouts*3 {
		t.Fatalf("loss overwhelmed gossip: %d completed vs %d timeouts", completed, timeouts)
	}
}
