package nylon

import (
	"sort"
	"time"

	"whisper/internal/identity"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// probeCount is how many staggered probe datagrams each side sends
// during a hole-punch attempt; more than one tolerates the transient
// drops that occur before the peer's filter opens.
const probeCount = 3

// probeSpacing separates successive probes.
const probeSpacing = 50 * time.Millisecond

// maybeDiscoverExternal runs the STUN-style discovery of the node's
// external endpoint against a P-node, once per cycle while the cached
// value is stale. Cone NATs report a stable endpoint; symmetric NATs
// report one that is only valid towards the echo server, which is
// exactly why punching through them fails (§II-C).
func (n *Node) maybeDiscoverExternal() {
	if n.Public() {
		return
	}
	if !n.selfExt.IsZero() && n.rt.Now()-n.selfExtAt < n.cfg.ContactTTL/2 {
		return
	}
	target, ok := n.randomPublicPeer()
	if !ok {
		return
	}
	w := wire.NewWriter(1)
	w.U8(msgEchoReq)
	n.port.Send(target, w.Bytes())
}

// randomPublicPeer picks the endpoint of a usable P-node: preferably a
// live contact, otherwise a P-node from the view. Contact candidates
// are ordered by node ID before the random pick — the table stores them
// in insertion order, and letting that order reach the draw would make
// the RNG stream depend on arrival history in ways the historical
// (sorted) implementation pinned down.
func (n *Node) randomPublicPeer() (transport.Endpoint, bool) {
	var pubIDs []identity.NodeID
	for i := range n.contacts.entries {
		if c := &n.contacts.entries[i]; c.public {
			pubIDs = append(pubIDs, c.id)
		}
	}
	sort.Slice(pubIDs, func(i, j int) bool { return pubIDs[i] < pubIDs[j] })
	var candidates []transport.Endpoint
	for _, id := range pubIDs {
		if ep, ok := n.contactEndpoint(id); ok {
			candidates = append(candidates, ep)
		}
	}
	if len(candidates) == 0 {
		for _, e := range n.view.Publics() {
			if !e.Val.Contact.IsZero() {
				candidates = append(candidates, e.Val.Contact)
			}
		}
	}
	if len(candidates) == 0 {
		return transport.Endpoint{}, false
	}
	return candidates[n.rt.Rand().Intn(len(candidates))], true
}

func (n *Node) handleEchoResp(r *wire.Reader) {
	ep := transport.Endpoint{IP: transport.IP(r.U32()), Port: r.U16()}
	if r.Err() != nil {
		return
	}
	n.selfExt = ep
	n.selfExtAt = n.rt.Now()
	n.met.echoUpdates.Inc()
}

// maybePunch starts a hole-punch attempt towards peer after a relayed
// exchange, so that future traffic can flow directly. It is a no-op
// when punching is disabled, the exchange was already direct, or the
// node does not yet know its own external endpoint.
func (n *Node) maybePunch(peer Descriptor, path []identity.NodeID) {
	if n.cfg.DisablePunch || len(path) == 0 || n.usableContact(peer.ID) {
		return
	}
	ext := n.selfExt
	if ext.IsZero() {
		return // discovery not completed yet; a later exchange will punch
	}
	n.met.punchAttempts.Inc()
	now := n.rt.Now()
	found := false
	for i := range n.punchSent {
		if n.punchSent[i].id == peer.ID {
			n.punchSent[i].at = now
			found = true
			break
		}
	}
	if !found {
		n.punchSent = append(n.punchSent, punchSentEntry{id: peer.ID, at: now})
	}
	req := punchReq{From: n.ident.ID, Ext: ext, Path: path}
	n.send(req.encode(), peer, path)
}

// handlePunchReq reacts to a peer's punch request: probe its advertised
// external endpoint several times. The first probe also opens our own
// NAT filter towards the peer, so its probes (or replies) can reach us.
func (n *Node) handlePunchReq(r *wire.Reader) {
	m, err := decodePunchReq(r)
	if err != nil || m.Ext.IsZero() {
		return
	}
	for i := 0; i < probeCount; i++ {
		delay := time.Duration(i) * probeSpacing
		ext := m.Ext
		from := m.From
		n.rt.After(delay, func() {
			if n.stopped || n.usableContact(from) {
				return
			}
			n.port.Send(ext, encodeIDMsg(msgPunchProbe, n.ident.ID))
		})
	}
}

func (n *Node) handlePunchProbe(src transport.Endpoint, r *wire.Reader) {
	from := identity.NodeID(r.U64())
	if r.Err() != nil || from == identity.Nil {
		return
	}
	// A probe that reached us is proof of a working direct path from
	// the peer; replying from our port completes the other direction.
	if !n.usableContact(from) {
		n.met.punchSuccesses.Inc()
		n.observePunchRTT(from)
	}
	n.learnContact(from, src, false)
	n.port.Send(src, encodeIDMsg(msgProbeAck, n.ident.ID))
}

func (n *Node) handleProbeAck(src transport.Endpoint, r *wire.Reader) {
	from := identity.NodeID(r.U64())
	if r.Err() != nil || from == identity.Nil {
		return
	}
	if !n.usableContact(from) {
		n.met.punchSuccesses.Inc()
		n.observePunchRTT(from)
	}
	n.learnContact(from, src, false)
}

// observePunchRTT records the time from our punch request to the first
// evidence of a working direct path (the peer's probe or ack). Only the
// initiating side has a start time on record.
func (n *Node) observePunchRTT(from identity.NodeID) {
	for i := range n.punchSent {
		if n.punchSent[i].id == from {
			t0 := n.punchSent[i].at
			last := len(n.punchSent) - 1
			n.punchSent[i] = n.punchSent[last]
			n.punchSent = n.punchSent[:last]
			n.met.punchRTT.ObserveDuration(n.rt.Now() - t0)
			return
		}
	}
}
