package nylon

import (
	"errors"
	"fmt"
	"time"

	"whisper/internal/identity"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// ErrNoRoute is returned when neither a direct contact nor a usable
// relay chain exists towards a destination.
var ErrNoRoute = errors.New("nylon: no usable route")

// contact is a live direct-communication association with another node:
// the endpoint datagrams to it must target, and the last time we heard
// from it (which bounds how long its NAT association rules keep our
// traffic flowing).
type contact struct {
	id     identity.NodeID
	lastIn time.Duration // virtual time of last direct inbound datagram
	ep     transport.Endpoint
	public bool
}

// routeEntry is the last known relay chain to a node, for peers whose
// exchanges were relayed (no direct association exists). It embodies
// the Nylon property that a channel can be opened to any recent
// partner even without hole punching. Routes are kept in a side table
// because only a small minority of contacts ever carry one: folding
// the slice header and timestamp into every contact would nearly
// triple the 24-byte entry for state that is almost always empty.
type routeEntry struct {
	id      identity.NodeID
	routeAt time.Duration
	route   []identity.NodeID
}

// contactTable stores contacts packed by value in insertion order,
// replacing the historical map[NodeID]*contact. Every node carries one
// of these for its whole life, so at large populations the map's bucket
// overhead and one heap object per contact dominated the table's own
// payload. Lookups scan linearly — a node accumulates tens of contacts,
// and the dense walk is cache-friendly at that size.
type contactTable struct {
	entries []contact
	routes  []routeEntry
}

func (t *contactTable) find(id identity.NodeID) int {
	for i := range t.entries {
		if t.entries[i].id == id {
			return i
		}
	}
	return -1
}

// upsert returns the entry for id, creating it if absent. The returned
// pointer is invalidated by the next upsert or sweep — use immediately.
func (t *contactTable) upsert(id identity.NodeID) *contact {
	if i := t.find(id); i >= 0 {
		return &t.entries[i]
	}
	if len(t.entries) == cap(t.entries) {
		// Double while small, then grow in fixed +4 steps instead of
		// append's doubling: every node carries this table for its
		// whole life, and at large populations the doubled tail (a
		// 9-contact NATted node parked on a 16-slot array, a 35-contact
		// P-node on a 64-slot one) was a measurable share of per-node
		// heap. Growth is rare — a node meets a few dozen distinct
		// peers — so the extra copies are noise.
		step := len(t.entries)
		if step < 2 {
			step = 2
		} else if step > 4 {
			step = 4
		}
		grown := make([]contact, len(t.entries), len(t.entries)+step)
		copy(grown, t.entries)
		t.entries = grown
	}
	t.entries = append(t.entries, contact{id: id})
	return &t.entries[len(t.entries)-1]
}

func (t *contactTable) routeFind(id identity.NodeID) int {
	for i := range t.routes {
		if t.routes[i].id == id {
			return i
		}
	}
	return -1
}

// routeUpsert returns the route entry for id, creating it if absent.
// Same pointer-validity and growth policy as upsert.
func (t *contactTable) routeUpsert(id identity.NodeID) *routeEntry {
	if i := t.routeFind(id); i >= 0 {
		return &t.routes[i]
	}
	if len(t.routes) == cap(t.routes) {
		step := len(t.routes)
		if step < 2 {
			step = 2
		} else if step > 4 {
			step = 4
		}
		grown := make([]routeEntry, len(t.routes), len(t.routes)+step)
		copy(grown, t.routes)
		t.routes = grown
	}
	t.routes = append(t.routes, routeEntry{id: id})
	return &t.routes[len(t.routes)-1]
}

// sweep drops entries no reader can see anymore: direct associations
// past their liveness window, and routes past the contact TTL. The
// conditions mirror the freshness checks in contactEndpoint and
// storedRoute, so removal is observationally identical to keeping the
// stale state around.
func (t *contactTable) sweep(now, ttl time.Duration) {
	keep := t.entries[:0]
	for i := range t.entries {
		c := &t.entries[i]
		directTTL := ttl
		if c.public {
			directTTL *= 4
		}
		if now-c.lastIn <= directTTL {
			keep = append(keep, *c)
		}
	}
	for i := len(keep); i < len(t.entries); i++ {
		t.entries[i] = contact{}
	}
	t.entries = keep

	keepR := t.routes[:0]
	for i := range t.routes {
		if now-t.routes[i].routeAt <= ttl {
			keepR = append(keepR, t.routes[i])
		}
	}
	for i := len(keepR); i < len(t.routes); i++ {
		t.routes[i] = routeEntry{}
	}
	t.routes = keepR
}

// learnContact records that a datagram arrived directly from id via ep.
func (n *Node) learnContact(id identity.NodeID, ep transport.Endpoint, public bool) {
	if id == n.ident.ID || ep.IsZero() {
		return
	}
	c := n.contacts.upsert(id)
	c.ep = ep
	c.public = public
	c.lastIn = n.rt.Now()
}

// learnRoute records a working relay chain to id, learned from a
// relayed gossip exchange.
func (n *Node) learnRoute(id identity.NodeID, route []identity.NodeID) {
	if id == n.ident.ID || len(route) == 0 {
		return
	}
	r := n.contacts.routeUpsert(id)
	r.route = append(r.route[:0], route...)
	r.routeAt = n.rt.Now()
}

// storedRoute returns a remembered relay chain to id whose first relay
// is still reachable.
func (n *Node) storedRoute(id identity.NodeID) ([]identity.NodeID, bool) {
	i := n.contacts.routeFind(id)
	if i < 0 {
		return nil, false
	}
	c := &n.contacts.routes[i]
	if len(c.route) == 0 {
		return nil, false
	}
	if n.rt.Now()-c.routeAt > n.cfg.ContactTTL {
		return nil, false
	}
	if !n.usableContact(c.route[0]) {
		return nil, false
	}
	return c.route, true
}

// usableContact reports whether a direct send to id is expected to
// work: P-node contacts are always usable while fresh enough to assume
// liveness; N-node contacts are usable while inside the contact TTL
// (below the NAT association lease).
func (n *Node) usableContact(id identity.NodeID) bool {
	_, ok := n.contactEndpoint(id)
	return ok
}

func (n *Node) contactEndpoint(id identity.NodeID) (transport.Endpoint, bool) {
	i := n.contacts.find(id)
	if i < 0 {
		return transport.Endpoint{}, false
	}
	c := &n.contacts.entries[i]
	age := n.rt.Now() - c.lastIn
	ttl := n.cfg.ContactTTL
	if c.public {
		// No NAT on their side; allow a longer liveness window.
		ttl *= 4
	}
	if age > ttl {
		return transport.Endpoint{}, false
	}
	return c.ep, true
}

// ContactIDs lists the nodes with currently usable direct contacts
// (diagnostic).
func (n *Node) ContactIDs() []identity.NodeID {
	var out []identity.NodeID
	for i := range n.contacts.entries {
		if id := n.contacts.entries[i].id; n.usableContact(id) {
			out = append(out, id)
		}
	}
	return out
}

// HasContact reports whether a usable direct contact to id exists.
func (n *Node) HasContact(id identity.NodeID) bool { return n.usableContact(id) }

// routeTo picks the relay chain for reaching d: empty for a direct
// send (live contact, or a P-node with a known address), d.Route when
// its first relay is reachable.
func (n *Node) routeTo(d Descriptor) ([]identity.NodeID, bool) {
	if n.usableContact(d.ID) {
		return nil, true
	}
	if d.Public && !d.Contact.IsZero() {
		return nil, true
	}
	if len(d.Route) > 0 && n.usableContact(d.Route[0]) {
		return d.Route, true
	}
	if route, ok := n.storedRoute(d.ID); ok {
		return route, true
	}
	return nil, false
}

// send transmits an encoded message to d along path ([] = direct).
func (n *Node) send(msg []byte, d Descriptor, path []identity.NodeID) {
	if len(path) == 0 {
		ep, ok := n.contactEndpoint(d.ID)
		if !ok {
			if d.Public && !d.Contact.IsZero() {
				ep = d.Contact
			} else {
				n.met.routeFailures.Inc()
				return
			}
		}
		n.port.Send(ep, msg)
		return
	}
	first, ok := n.contactEndpoint(path[0])
	if !ok {
		n.met.routeFailures.Inc()
		return
	}
	rm := relayMsg{Path: path[1:], Final: d.ID, Inner: msg}
	n.port.Send(first, rm.encode())
}

// handleRelay forwards (or delivers) a relayed message. Relays learn
// nothing about the content: at the WCL layer the inner payload is an
// onion-encrypted blob.
func (n *Node) handleRelay(src transport.Endpoint, r *wire.Reader) {
	m, err := decodeRelay(r)
	if err != nil {
		return
	}
	if len(m.Path) == 0 && m.Final == n.ident.ID {
		// Terminal delivery to self: dispatch the inner message as if it
		// had arrived directly (src stays the last relay's endpoint).
		n.dispatch(transport.Datagram{Src: src, Dst: n.port.Local(), Payload: m.Inner})
		return
	}
	n.met.relaysForwarded.Inc()
	var nextID identity.NodeID
	var rest []identity.NodeID
	if len(m.Path) > 0 {
		nextID, rest = m.Path[0], m.Path[1:]
	} else {
		nextID, rest = m.Final, nil
	}
	ep, ok := n.contactEndpoint(nextID)
	if !ok {
		n.met.relayDrops.Inc()
		return
	}
	if nextID == m.Final {
		// Last hop: deliver the inner message unwrapped.
		n.port.Send(ep, m.Inner)
	} else {
		fwd := relayMsg{Path: rest, Final: m.Final, Inner: m.Inner}
		n.port.Send(ep, fwd.encode())
	}
}

// SendApp delivers an opaque application payload to d, using a direct
// contact when available or d's relay route otherwise. This is the
// primitive the WCL builds onion hops on.
func (n *Node) SendApp(d Descriptor, payload []byte) error {
	path, ok := n.routeTo(d)
	if !ok {
		n.met.routeFailures.Inc()
		return fmt.Errorf("%w to %v", ErrNoRoute, d.ID)
	}
	n.send(encodeApp(payload), d, path)
	return nil
}

// SendAppDirect sends an application payload straight to an endpoint.
// Mixes use it for the A→B hop, whose target is a P-node addressed
// inside the onion layer.
func (n *Node) SendAppDirect(ep transport.Endpoint, payload []byte) {
	n.port.Send(ep, encodeApp(payload))
}

// RequestKey performs the explicit key exchange with a P-node that the
// WCL uses before inserting it into the connection backlog: an
// (almost) empty round trip that both verifies the path and carries the
// public keys (§III-A, §III-B-2). Completion is signalled via
// OnKeyExchange.
func (n *Node) RequestKey(d Descriptor) error {
	path, ok := n.routeTo(d)
	if !ok {
		return fmt.Errorf("%w to %v", ErrNoRoute, d.ID)
	}
	m := keyMsg{From: n.SelfDescriptor(), Key: n.ident.Public()}
	n.send(m.encode(msgKeyReq, n.cfg.KeyBlobSize), d, path)
	return nil
}

func (n *Node) handleKeyMsg(src transport.Endpoint, r *wire.Reader, isReq bool) {
	m, err := decodeKeyMsg(r, n.cfg.KeyBlobSize)
	if err != nil {
		return
	}
	n.learnContact(m.From.ID, src, m.From.Public)
	if m.Key != nil {
		n.keys.Put(m.From.ID, m.Key)
	}
	if isReq {
		resp := keyMsg{From: n.SelfDescriptor(), Key: n.ident.Public()}
		n.port.Send(src, resp.encode(msgKeyResp, n.cfg.KeyBlobSize))
		return
	}
	if n.OnKeyExchange != nil {
		n.OnKeyExchange(m.From)
	}
}

// RouteTo exposes the routing decision for d to the layers above: the
// relay chain to use (empty = direct send) and whether any usable route
// exists. The WCL uses it to pre-compute the reverse path for
// acknowledgements.
func (n *Node) RouteTo(d Descriptor) ([]identity.NodeID, bool) { return n.routeTo(d) }

// SendAppVia sends an application payload along a pre-computed path
// (as returned by RouteTo).
func (n *Node) SendAppVia(d Descriptor, path []identity.NodeID, payload []byte) {
	n.send(encodeApp(payload), d, path)
}

// ViewDescriptor returns the current view entry for id, if any. Mixes
// use it as a fallback to resolve the final onion hop through a relay
// route when no direct contact is warm.
func (n *Node) ViewDescriptor(id identity.NodeID) (Descriptor, bool) {
	e, ok := n.view.Get(id)
	return e.Val, ok
}
