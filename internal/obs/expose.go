package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricPoint is one exported instrument value, the unit of the JSON
// dump (-metrics-out) and of the expvar view.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	// Value is the counter/gauge value (absent for histograms).
	Value *float64 `json:"value,omitempty"`
	// Histogram payload.
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
	// Quantile upper-bound estimates (see HistogramSnapshot.Quantile),
	// populated on rolled-up histograms so a /metrics/rollup reader gets
	// network-wide latency percentiles without re-deriving them from the
	// buckets. Omitted when not finite: an empty histogram has no
	// quantiles and a tail past the last finite bound estimates to +Inf,
	// neither of which JSON can carry.
	P50 *float64 `json:"p50,omitempty"`
	P95 *float64 `json:"p95,omitempty"`
	P99 *float64 `json:"p99,omitempty"`
}

// setQuantiles fills the point's quantile fields from a snapshot,
// skipping non-finite estimates.
func (p *MetricPoint) setQuantiles(s HistogramSnapshot) {
	for _, t := range []struct {
		q   float64
		dst **float64
	}{{0.50, &p.P50}, {0.95, &p.P95}, {0.99, &p.P99}} {
		if v := s.Quantile(t.q); !math.IsNaN(v) && !math.IsInf(v, 0) {
			v := v
			*t.dst = &v
		}
	}
}

// Export snapshots every registered instrument, sorted by name then
// labels. Safe to call concurrently with updates.
func (r *Registry) Export() []MetricPoint {
	if r == nil {
		return nil
	}
	var out []MetricPoint
	for _, m := range r.sorted() {
		p := MetricPoint{Name: m.name, Kind: m.kind.String()}
		if len(m.labels) > 0 {
			p.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				p.Labels[l.Key] = l.Value
			}
		}
		switch m.kind {
		case kindCounter:
			v := float64(m.c.Value())
			p.Value = &v
		case kindGauge:
			v := float64(m.g.Value())
			p.Value = &v
		case kindGaugeFunc:
			v := m.fval()
			p.Value = &v
		case kindHistogram:
			s := m.h.Snapshot()
			p.Count, p.Sum, p.Bounds, p.Buckets = s.Count, s.Sum, s.Bounds, s.Counts
		}
		out = append(out, p)
	}
	return out
}

// Rollup aggregates same-named instruments across scopes into one
// point per remaining label set, with the given label keys dropped —
// typically Rollup("node") to collapse the per-node dimension into a
// network-wide view. Counters, gauges and gauge funcs sum; histograms
// merge bucket-wise (same-named histograms must share a bucket layout,
// which registration fixes per instrument). Output order follows the
// export order of the first instrument of each group, so it is stable
// across calls.
func (r *Registry) Rollup(drop ...string) []MetricPoint {
	if r == nil {
		return nil
	}
	dropped := make(map[string]bool, len(drop))
	for _, k := range drop {
		dropped[k] = true
	}
	type group struct {
		name   string
		labels []Label
		kind   metricKind
		value  float64
		hist   HistogramSnapshot
	}
	byKey := map[string]*group{}
	var order []string
	for _, m := range r.sorted() {
		var labels []Label
		for _, l := range m.labels {
			if !dropped[l.Key] {
				labels = append(labels, l)
			}
		}
		key := metricKey(m.name, labels)
		g, ok := byKey[key]
		if !ok {
			g = &group{name: m.name, labels: labels, kind: m.kind}
			byKey[key] = g
			order = append(order, key)
		}
		if (g.kind == kindHistogram) != (m.kind == kindHistogram) {
			panic(fmt.Sprintf("obs: rollup of %s mixes histogram and scalar instruments", m.name))
		}
		switch m.kind {
		case kindCounter:
			g.value += float64(m.c.Value())
		case kindGauge:
			g.value += float64(m.g.Value())
		case kindGaugeFunc:
			g.value += m.fval()
		case kindHistogram:
			g.hist = g.hist.Merge(m.h.Snapshot())
		}
	}
	out := make([]MetricPoint, 0, len(order))
	for _, key := range order {
		g := byKey[key]
		p := MetricPoint{Name: g.name, Kind: g.kind.String()}
		if len(g.labels) > 0 {
			p.Labels = make(map[string]string, len(g.labels))
			for _, l := range g.labels {
				p.Labels[l.Key] = l.Value
			}
		}
		if g.kind == kindHistogram {
			p.Count, p.Sum, p.Bounds, p.Buckets = g.hist.Count, g.hist.Sum, g.hist.Bounds, g.hist.Counts
			p.setQuantiles(g.hist)
		} else {
			v := g.value
			p.Value = &v
		}
		out = append(out, p)
	}
	return out
}

// WriteRollupJSON writes the rollup (see Rollup) as an indented
// whisper-metrics-rollup/v1 JSON document to path.
func (r *Registry) WriteRollupJSON(path string, drop ...string) error {
	var buf strings.Builder
	if err := r.WriteRollupJSONTo(&buf, drop...); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

// WriteRollupJSONTo writes the same whisper-metrics-rollup/v1 document
// to a stream. The dropped label keys are recorded in the document so
// a reader knows which dimensions were collapsed.
func (r *Registry) WriteRollupJSONTo(w io.Writer, drop ...string) error {
	doc := struct {
		Schema  string        `json:"schema"`
		Dropped []string      `json:"dropped,omitempty"`
		Metrics []MetricPoint `json:"metrics"`
	}{Schema: "whisper-metrics-rollup/v1", Dropped: drop, Metrics: r.Rollup(drop...)}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteJSON writes the registry as an indented whisper-metrics/v1 JSON
// document to path (the -metrics-out format of whisper-sim and
// whisper-exp, a sibling of the whisper-bench/v1 timing blob).
func (r *Registry) WriteJSON(path string) error {
	var buf strings.Builder
	if err := r.WriteJSONTo(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

// WriteJSONTo writes the same whisper-metrics/v1 document to a stream.
func (r *Registry) WriteJSONTo(w io.Writer) error {
	doc := struct {
		Schema  string        `json:"schema"`
		Metrics []MetricPoint `json:"metrics"`
	}{Schema: "whisper-metrics/v1", Metrics: r.Export()}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (hand-rolled on purpose: no new dependencies).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	lastType := ""
	for _, m := range r.sorted() {
		if m.name != lastType {
			fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind)
			lastType = m.name
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", m.name, promLabels(m.labels, "", ""), m.c.Value())
		case kindGauge:
			fmt.Fprintf(w, "%s%s %d\n", m.name, promLabels(m.labels, "", ""), m.g.Value())
		case kindGaugeFunc:
			fmt.Fprintf(w, "%s%s %s\n", m.name, promLabels(m.labels, "", ""), promFloat(m.fval()))
		case kindHistogram:
			s := m.h.Snapshot()
			var cum uint64
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, promLabels(m.labels, "le", promFloat(b)), cum)
			}
			cum += s.Counts[len(s.Counts)-1]
			fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, promLabels(m.labels, "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", m.name, promLabels(m.labels, "", ""), promFloat(s.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", m.name, promLabels(m.labels, "", ""), s.Count)
		}
	}
}

// promLabels renders a label set (plus an optional extra pair) in
// exposition syntax, or "" when empty.
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", extraKey, extraVal)
	}
	sb.WriteByte('}')
	return sb.String()
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// expvarReg is the registry the "whisper_metrics" expvar reflects.
// Publishing is process-global (expvar has one namespace), so the last
// Handler call wins — in practice a process exposes one registry.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// Handler returns the observability endpoint whisper-node serves on
// -obs-addr: /metrics (Prometheus text), /metrics/rollup (JSON rollup
// across scopes; ?drop=<label> selects the collapsed dimensions,
// default node), /debug/vars (expvar, with the registry published as
// whisper_metrics), and the net/http/pprof suite under /debug/pprof/. The handler uses its own mux — nothing is
// registered on http.DefaultServeMux.
func Handler(r *Registry) http.Handler {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("whisper_metrics", expvar.Func(func() any {
			return expvarReg.Load().Export()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics/rollup", func(w http.ResponseWriter, req *http.Request) {
		drop := req.URL.Query()["drop"]
		if len(drop) == 0 {
			drop = []string{"node"}
		}
		w.Header().Set("Content-Type", "application/json")
		r.WriteRollupJSONTo(w, drop...)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
