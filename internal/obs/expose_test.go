package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExportAndWriteJSON(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("node", "3")
	sc.Counter("wcl_sends_total").Add(2)
	sc.Histogram("wcl_peel_ms", 1, 10).Observe(5)

	points := reg.Export()
	if len(points) != 2 {
		t.Fatalf("exported %d points, want 2", len(points))
	}
	byName := map[string]MetricPoint{}
	for _, p := range points {
		byName[p.Name] = p
	}
	if c := byName["wcl_sends_total"]; c.Value == nil || *c.Value != 2 || c.Labels["node"] != "3" {
		t.Fatalf("counter point wrong: %+v", c)
	}
	if h := byName["wcl_peel_ms"]; h.Count != 1 || h.Sum != 5 || len(h.Buckets) != 3 {
		t.Fatalf("histogram point wrong: %+v", h)
	}

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := reg.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string        `json:"schema"`
		Metrics []MetricPoint `json:"metrics"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "whisper-metrics/v1" || len(doc.Metrics) != 2 {
		t.Fatalf("JSON dump wrong: schema=%q n=%d", doc.Schema, len(doc.Metrics))
	}

	if (*Registry)(nil).Export() != nil {
		t.Fatal("nil registry must export nil")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("node", "1").Counter("nylon_shuffles_initiated_total").Add(7)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, `nylon_shuffles_initiated_total{node="1"} 7`) {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}

	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["whisper_metrics"]; !ok {
		t.Fatal("/debug/vars missing whisper_metrics")
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}
