package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultBuckets is the default histogram bucket layout: upper bounds
// in roughly 1-2.5-5 decades. The unit is whatever the instrument
// observes — the stack's convention is milliseconds for durations
// (nylon_punch_rtt_ms, wcl_peel_ms), so the default span covers 50 µs
// to one minute.
var DefaultBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50,
	100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000,
}

// Histogram accumulates observations into fixed buckets. Observation
// is an atomic add (allocation-free once the bucket array exists);
// merging and quantile estimation happen on snapshots. Safe on a nil
// receiver.
//
// The bucket array is allocated lazily on the first Observe: every
// simulated node registers duration histograms it may never feed (a
// node that never punches never observes a punch RTT), and with the
// default 19-bound layout each eager array cost 160 bytes across the
// whole population.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds
	// counts holds len(bounds)+1 counters (the last is the +Inf
	// overflow), nil until the first observation.
	counts atomic.Pointer[[]Counter]
	count  Counter
	sum    atomicFloat
}

// NewHistogram creates a histogram with the given bucket upper bounds
// (DefaultBuckets if none). Bounds must be strictly increasing. The
// bounds slice is retained, not copied — callers must not mutate it
// (the common DefaultBuckets case shares one package-level array across
// every histogram in the process).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: bounds}
}

// buckets returns the counter array, allocating it on first use. The
// CAS makes a racing first Observe from two goroutines converge on one
// array; the loser's allocation is garbage.
func (h *Histogram) buckets() []Counter {
	if p := h.counts.Load(); p != nil {
		return *p
	}
	fresh := make([]Counter, len(h.bounds)+1)
	if h.counts.CompareAndSwap(nil, &fresh) {
		return fresh
	}
	return *h.counts.Load()
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; equal values land in the
	// bucket they bound (Prometheus "le" semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets()[i].Inc()
	h.count.Inc()
	h.sum.add(v)
}

// ObserveDuration records d in milliseconds, the stack's duration unit.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Snapshot returns a consistent-enough copy for export and analysis.
// (Bucket counts and the total are read without a global lock; a
// concurrent Observe may be visible in one and not the other, which is
// harmless for monitoring output.)
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
		Sum:    h.sum.load(),
	}
	if p := h.counts.Load(); p != nil {
		for i := range *p {
			s.Counts[i] = (*p)[i].Value()
			s.Count += s.Counts[i]
		}
	}
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Value() }

// Quantile estimates the q-quantile; see HistogramSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistogramSnapshot is an immutable histogram state. Counts has one
// entry per bound plus a final +Inf overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Merge combines two snapshots with identical bounds into a new one.
// Merging is associative and commutative on bucket counts and totals
// (the float Sum is associative up to rounding).
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	if len(s.Counts) != len(o.Counts) {
		panic("obs: merging histograms with different bucket layouts")
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]): the
// smallest bucket bound b such that at least ceil(q·n) observations are
// ≤ b. Observations beyond the last finite bound yield +Inf. An empty
// histogram yields NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Mean returns the mean observation (NaN when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}
