package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"whisper/internal/stats"
)

// observeAll records values into a fresh default-bucket histogram and
// returns its snapshot.
func observeAll(values []float64) HistogramSnapshot {
	h := NewHistogram()
	for _, v := range values {
		h.Observe(v)
	}
	return h.Snapshot()
}

// clampSample maps arbitrary quick-generated floats into the positive
// range histograms are used for (durations in ms).
func clampSample(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Mod(math.Abs(v), 100000))
	}
	return out
}

// TestMergeAssociativeAndCommutative: (a⊕b)⊕c == a⊕(b⊕c) and a⊕b == b⊕a
// exactly on bucket counts and totals; Sum within float tolerance.
func TestMergeAssociativeAndCommutative(t *testing.T) {
	prop := func(ra, rb, rc []float64) bool {
		a := observeAll(clampSample(ra))
		b := observeAll(clampSample(rb))
		c := observeAll(clampSample(rc))
		left := a.Merge(b).Merge(c)
		right := a.Merge(b.Merge(c))
		ab, ba := a.Merge(b), b.Merge(a)
		return snapshotsEqual(t, left, right) && snapshotsEqual(t, ab, ba)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func snapshotsEqual(t *testing.T, x, y HistogramSnapshot) bool {
	t.Helper()
	if x.Count != y.Count {
		t.Logf("count %d != %d", x.Count, y.Count)
		return false
	}
	if x.Count == 0 {
		return true
	}
	if len(x.Counts) != len(y.Counts) {
		t.Logf("bucket layout %d != %d", len(x.Counts), len(y.Counts))
		return false
	}
	for i := range x.Counts {
		if x.Counts[i] != y.Counts[i] {
			t.Logf("bucket %d: %d != %d", i, x.Counts[i], y.Counts[i])
			return false
		}
	}
	// Float addition is associative only up to rounding.
	tol := 1e-9 * (1 + math.Abs(x.Sum))
	if math.Abs(x.Sum-y.Sum) > tol {
		t.Logf("sum %v != %v", x.Sum, y.Sum)
		return false
	}
	return true
}

// TestQuantileBounds checks the estimator against the exact order
// statistics of the same sample: the reported quantile is a valid upper
// bound (orderStat ≤ Quantile) and is the tightest bucket bound (the
// next-lower bound is strictly below the order statistic). Count and
// Sum must agree with internal/stats.Summarize on the same data.
func TestQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(raw []float64) bool {
		sample := clampSample(raw)
		// quick tends to generate tiny slices; pad with exponentially
		// distributed latencies to exercise many buckets.
		for len(sample) < 32 {
			sample = append(sample, rng.ExpFloat64()*200)
		}
		snap := observeAll(sample)
		sum := stats.Summarize(sample)
		if snap.Count != uint64(sum.N) {
			t.Logf("count %d != %d", snap.Count, sum.N)
			return false
		}
		if math.Abs(snap.Sum-sum.Sum) > 1e-6*(1+math.Abs(sum.Sum)) {
			t.Logf("sum %v != %v", snap.Sum, sum.Sum)
			return false
		}
		sorted := append([]float64(nil), sample...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1.0} {
			rank := int(math.Ceil(q * float64(len(sorted))))
			if rank < 1 {
				rank = 1
			}
			exact := sorted[rank-1]
			got := snap.Quantile(q)
			if exact > got {
				t.Logf("q=%v: order stat %v above estimate %v", q, exact, got)
				return false
			}
			// Tightness: the bucket below the answer must not contain
			// the order statistic.
			i := sort.SearchFloat64s(snap.Bounds, got)
			if i > 0 && exact <= snap.Bounds[i-1] && got != snap.Bounds[i-1] {
				t.Logf("q=%v: estimate %v not tight (order stat %v <= %v)", q, got, exact, snap.Bounds[i-1])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if !math.IsNaN(empty.Quantile(0.5)) || !math.IsNaN(empty.Mean()) {
		t.Fatal("empty histogram must yield NaN")
	}
	h := NewHistogram(1, 2)
	h.Observe(100) // beyond last bound → overflow bucket
	if !math.IsInf(h.Quantile(0.5), 1) {
		t.Fatal("overflow observations must quantile to +Inf")
	}
	h2 := NewHistogram(1, 2)
	h2.Observe(1) // exactly on a bound → that bucket (le semantics)
	if got := h2.Quantile(1.0); got != 1 {
		t.Fatalf("le semantics broken: %v", got)
	}
	if got := h2.Snapshot().Mean(); got != 1 {
		t.Fatalf("mean = %v", got)
	}
	s := h2.Snapshot()
	if m := s.Merge(HistogramSnapshot{}); m.Count != 1 {
		t.Fatal("merging with empty must be identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched layouts must panic")
		}
	}()
	bad := NewHistogram(1, 2, 3).Snapshot()
	bad.Counts[0] = 1
	bad.Count = 1
	s.Merge(bad)
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(250 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 250 {
		t.Fatalf("duration observed as %v ms (count %d), want 250", s.Sum, s.Count)
	}
}

func TestNewHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds must panic")
		}
	}()
	NewHistogram(1, 1)
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Scope("node", "1").Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Scope("node", "1").Histogram("bench_ms")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}
