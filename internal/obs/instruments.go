package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. All methods are
// atomic, allocation-free, and safe on a nil receiver (no-op / zero).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. All methods are atomic,
// allocation-free, and safe on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the value by d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// atomicFloat accumulates a float64 sum with a CAS loop (no mutex, no
// allocation).
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }
