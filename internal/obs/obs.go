// Package obs is the observability layer of the WHISPER stack: a typed
// metrics registry (counters, gauges, histograms), hop-level tracing,
// and export plumbing (Prometheus text, JSON, expvar, pprof) shared by
// the emulated experiments and the real whisper-node daemon.
//
// Three rules shape the design:
//
//  1. Disabled is free and zero-behavior. Every constructor is nil-safe:
//     a nil *Scope hands out standalone instruments that still count but
//     are registered nowhere, and a nil *Tracer drops events. Nothing in
//     this package touches a transport, an RNG, or a clock, so attaching
//     or detaching observability can never shift a simulated event — the
//     fig5 golden test pins that property.
//
//  2. Hot paths do not allocate. Counter and gauge updates are single
//     atomic operations; histogram observation is an atomic add into a
//     pre-sized bucket slice. A regression test asserts 0 allocs/op.
//
//  3. Instrumentation only records what a node can locally observe.
//     Metrics are per-node (the Scope carries the node label); trace
//     events carry node-local span IDs, never end-to-end path IDs — see
//     trace.go for the relay-visibility rule and the simulator-only
//     CorrelatingCollector that is allowed to join spans across nodes.
//
// Instrument naming follows Prometheus conventions:
// <layer>_<event>_total for counters (wcl_forwards_peeled_total),
// <layer>_<quantity>_<unit> for gauges and histograms
// (transport_up_bytes, nylon_punch_rtt_ms).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. node="42").
type Label struct {
	Key   string
	Value string
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered instrument with its identity.
type metric struct {
	name   string
	labels []Label
	kind   metricKind

	c *Counter
	g *Gauge
	h *Histogram

	// fns holds the functions behind a kindGaugeFunc metric; duplicate
	// registrations under one key accumulate here and the exported value
	// is their sum (shared per-shard scopes register one function per
	// node). Copy-on-write behind Registry.mu so export-time readers
	// need no lock.
	fns atomic.Pointer[[]func() float64]
}

// fval sums the registered gauge functions. Only valid on
// kindGaugeFunc metrics.
func (m *metric) fval() float64 {
	var sum float64
	for _, fn := range *m.fns.Load() {
		sum += fn()
	}
	return sum
}

// key renders the unique registry key: name plus sorted labels.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte('{')
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte('}')
	}
	return sb.String()
}

// Registry holds named instruments. Registration (the Scope methods)
// is safe for concurrent use; the instruments themselves are atomic,
// so updates and export can race freely with protocol goroutines.
//
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*metric
	metrics []*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// Scope returns a scope on r carrying the given label pairs
// (key, value, key, value, ...). Typically one scope per node:
// reg.Scope("node", "42").
func (r *Registry) Scope(kv ...string) *Scope {
	if r == nil {
		return nil
	}
	return (&Scope{reg: r}).With(kv...)
}

// getOrCreate returns the instrument registered under (name, labels),
// creating it with mk if absent. Kind mismatches on the same key are
// programming errors and panic.
func (r *Registry) getOrCreate(name string, labels []Label, kind metricKind, mk func() *metric) *metric {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %v (was %v)", key, kind, m.kind))
		}
		return m
	}
	m := mk()
	m.name = name
	m.labels = labels
	m.kind = kind
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// sorted returns the metrics ordered by name then label key, for
// stable export output.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return metricKey("", out[i].labels) < metricKey("", out[j].labels)
	})
	return out
}

// Scope is a view of a registry with a fixed label set — the handle a
// node (or a layer of a node) instruments itself through. A nil Scope
// is fully functional: it hands out standalone instruments that count
// normally but are not registered or exported anywhere, so protocol
// code reads its own statistics identically whether observability is
// enabled or not.
type Scope struct {
	reg    *Registry
	labels []Label
}

// With derives a scope with additional label pairs. Nil-safe.
func (s *Scope) With(kv ...string) *Scope {
	if s == nil {
		return nil
	}
	if len(kv)%2 != 0 {
		panic("obs: With needs key/value pairs")
	}
	labels := append([]Label(nil), s.labels...)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.SliceStable(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return &Scope{reg: s.reg, labels: labels}
}

// Counter returns the counter registered under name in this scope,
// creating it on first use. On a nil scope it returns a fresh
// standalone counter.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return new(Counter)
	}
	m := s.reg.getOrCreate(name, s.labels, kindCounter, func() *metric {
		return &metric{c: new(Counter)}
	})
	return m.c
}

// Gauge returns the gauge registered under name in this scope.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return new(Gauge)
	}
	m := s.reg.getOrCreate(name, s.labels, kindGauge, func() *metric {
		return &metric{g: new(Gauge)}
	})
	return m.g
}

// GaugeFunc registers a gauge whose value is computed by fn at export
// time (e.g. reading an externally maintained atomic meter). fn must be
// safe to call from any goroutine. Registering the same key again adds
// another function and the gauge exports the sum of all of them — many
// nodes sharing one scope therefore roll up at read time. No-op on a
// nil scope.
func (s *Scope) GaugeFunc(name string, fn func() float64) {
	if s == nil {
		return
	}
	m := s.reg.getOrCreate(name, s.labels, kindGaugeFunc, func() *metric {
		return &metric{}
	})
	s.reg.mu.Lock()
	var fns []func() float64
	if old := m.fns.Load(); old != nil {
		fns = append(fns, *old...)
	}
	fns = append(fns, fn)
	m.fns.Store(&fns)
	s.reg.mu.Unlock()
}

// Histogram returns the histogram registered under name in this scope.
// bounds are the bucket upper bounds (DefaultBuckets if empty); they
// are fixed at first registration.
func (s *Scope) Histogram(name string, bounds ...float64) *Histogram {
	if s == nil {
		return NewHistogram(bounds...)
	}
	m := s.reg.getOrCreate(name, s.labels, kindHistogram, func() *metric {
		return &metric{h: NewHistogram(bounds...)}
	})
	return m.h
}
