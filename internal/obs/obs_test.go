package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestScopeGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("node", "1")
	c1 := sc.Counter("wcl_sends_total")
	c2 := sc.Counter("wcl_sends_total")
	if c1 != c2 {
		t.Fatal("same name+labels must return the same counter")
	}
	other := reg.Scope("node", "2").Counter("wcl_sends_total")
	if other == c1 {
		t.Fatal("different labels must return distinct counters")
	}
	c1.Inc()
	c1.Add(2)
	if c1.Value() != 3 || other.Value() != 0 {
		t.Fatalf("counter isolation broken: %d / %d", c1.Value(), other.Value())
	}

	g := sc.Gauge("tchord_stores_held")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestNilScopeHandsOutWorkingInstruments(t *testing.T) {
	var sc *Scope
	if sc.With("node", "1") != nil {
		t.Fatal("nil scope With must stay nil")
	}
	c := sc.Counter("x_total")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("standalone counter must count")
	}
	h := sc.Histogram("y_ms")
	h.Observe(3)
	if h.Count() != 1 {
		t.Fatal("standalone histogram must count")
	}
	sc.GaugeFunc("z", func() float64 { return 1 }) // must not panic
	var nilC *Counter
	nilC.Inc()
	var nilG *Gauge
	nilG.Set(3)
	var nilH *Histogram
	nilH.Observe(1)
	var reg *Registry
	if reg.Scope("a", "b") != nil {
		t.Fatal("nil registry scope must be nil")
	}
}

// TestCounterIncDoesNotAllocate locks the hot-path contract: metric
// updates are allocation-free, registered or not.
func TestCounterIncDoesNotAllocate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Scope("node", "1").Counter("hot_total")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("registered Counter.Inc allocates %v/op, want 0", n)
	}
	standalone := (*Scope)(nil).Counter("hot_total")
	if n := testing.AllocsPerRun(1000, func() { standalone.Add(3) }); n != 0 {
		t.Fatalf("standalone Counter.Add allocates %v/op, want 0", n)
	}
	g := reg.Scope("node", "1").Gauge("hot_gauge")
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v/op, want 0", n)
	}
	h := reg.Scope("node", "1").Histogram("hot_ms")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3.7) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op, want 0", n)
	}
}

// TestRegistryConcurrent hammers registration, updates, and export from
// many goroutines; run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for n := 0; n < 8; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			sc := reg.Scope("node", fmt.Sprint(n%4))
			for i := 0; i < 500; i++ {
				sc.Counter("conc_total").Inc()
				sc.Gauge("conc_gauge").Set(int64(i))
				sc.Histogram("conc_ms").Observe(float64(i % 50))
				sc.GaugeFunc("conc_fn", func() float64 { return 1 })
			}
		}(n)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			reg.Export()
			var sb strings.Builder
			reg.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	var total uint64
	for _, p := range reg.Export() {
		if p.Name == "conc_total" {
			total += uint64(*p.Value)
		}
	}
	if total != 8*500 {
		t.Fatalf("lost increments: %d, want %d", total, 8*500)
	}
}

func TestPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("node", "1")
	sc.Counter("wcl_sends_total").Add(4)
	sc.Gauge("tchord_stores_held").Set(2)
	sc.GaugeFunc("transport_up_bytes", func() float64 { return 1536 })
	h := sc.Histogram("wcl_peel_ms", 1, 10, 100)
	h.Observe(0.5)
	h.Observe(50)
	h.Observe(5000)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE wcl_sends_total counter",
		`wcl_sends_total{node="1"} 4`,
		`tchord_stores_held{node="1"} 2`,
		`transport_up_bytes{node="1"} 1536`,
		`wcl_peel_ms_bucket{node="1",le="1"} 1`,
		`wcl_peel_ms_bucket{node="1",le="100"} 2`,
		`wcl_peel_ms_bucket{node="1",le="+Inf"} 3`,
		`wcl_peel_ms_count{node="1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestTracerSpansAreNodeLocal(t *testing.T) {
	col := &CorrelatingCollector{}
	t1 := NewTracer(1, col)
	t2 := NewTracer(2, col)
	t1.Emit(KindSend, 0, 0, 10, 77)
	t1.Emit(KindRetry, time.Second, 0, 10, 77)
	t2.Emit(KindPeel, 2*time.Second, time.Millisecond, 20, 77)
	evs := col.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Span != 1 || evs[1].Span != 2 || evs[2].Span != 1 {
		t.Fatalf("span IDs must restart per node: %+v", evs)
	}
	tl := col.Timeline(77)
	if len(tl) != 3 || tl[0].Kind != KindSend || tl[2].Kind != KindPeel {
		t.Fatalf("timeline wrong: %+v", tl)
	}
	if s := col.FormatTimeline(77); !strings.Contains(s, "peel") {
		t.Fatalf("FormatTimeline: %s", s)
	}
	var nilT *Tracer
	if nilT.Emit(KindSend, 0, 0, 0, 1) != 0 {
		t.Fatal("nil tracer must drop events")
	}
}

// plainSink is a non-correlating collector: the only view a real node
// may have.
type plainSink struct {
	events []Event
	nodes  []uint64
}

func (p *plainSink) Record(node uint64, ev Event) {
	p.nodes = append(p.nodes, node)
	p.events = append(p.events, ev)
}

func TestPlainCollectorNeverSeesCorrelation(t *testing.T) {
	sink := &plainSink{}
	tr := NewTracer(9, sink)
	if tr.corr != nil {
		t.Fatal("plain collector must not be treated as a correlator")
	}
	tr.Emit(KindDeliver, time.Second, 0, 32, 0xdeadbeef)
	if len(sink.events) != 1 {
		t.Fatal("event lost")
	}
	// The correlation key is dropped at the Tracer; Event has no field
	// that could carry it (pinned by TestEventFieldAllowlist in the wcl
	// privacy test).
}
