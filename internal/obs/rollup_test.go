package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRollupMergesAcrossNodes: same-named instruments registered under
// different node scopes collapse into one point each when the node
// dimension is dropped — counters and gauges sum, histograms merge
// bucket-wise, and labels other than the dropped ones survive.
func TestRollupMergesAcrossNodes(t *testing.T) {
	reg := NewRegistry()
	seed := reg.Scope("seed", "7")
	for i, add := range []int64{2, 3, 5} {
		sc := seed.With("node", string(rune('a'+i)))
		sc.Counter("wcl_sends_total").Add(uint64(add))
		sc.Gauge("wcl_circuits_open").Set(add)
		sc.Histogram("wcl_peel_ms", 1, 10).Observe(float64(add))
		v := float64(add)
		sc.GaugeFunc("wcl_cpu_ms", func() float64 { return v })
	}

	points := reg.Rollup("node")
	if len(points) != 4 {
		t.Fatalf("rollup has %d points, want 4: %+v", len(points), points)
	}
	byName := map[string]MetricPoint{}
	for _, p := range points {
		byName[p.Name] = p
	}
	for _, name := range []string{"wcl_sends_total", "wcl_circuits_open", "wcl_cpu_ms"} {
		p := byName[name]
		if p.Value == nil || *p.Value != 10 {
			t.Fatalf("%s rolled up to %+v, want value 10", name, p)
		}
		if p.Labels["seed"] != "7" || p.Labels["node"] != "" {
			t.Fatalf("%s labels = %v, want seed kept and node dropped", name, p.Labels)
		}
	}
	h := byName["wcl_peel_ms"]
	if h.Count != 3 || h.Sum != 10 {
		t.Fatalf("histogram rollup count=%d sum=%g, want 3 and 10", h.Count, h.Sum)
	}
	// Observations 2 and 3 land in the le=10 bucket, 5 too: bounds are
	// (1, 10, +Inf) so buckets must be [0, 3, 0].
	if len(h.Buckets) != 3 || h.Buckets[0] != 0 || h.Buckets[1] != 3 || h.Buckets[2] != 0 {
		t.Fatalf("histogram rollup buckets = %v", h.Buckets)
	}
	// All three observations sit in the le=10 bucket, so every quantile
	// estimate is that bucket's upper bound.
	for q, v := range map[string]*float64{"p50": h.P50, "p95": h.P95, "p99": h.P99} {
		if v == nil || *v != 10 {
			t.Fatalf("merged histogram %s = %v, want 10", q, v)
		}
	}

	// Dropping nothing is the identity grouping: every per-node series
	// stays separate.
	if got := len(reg.Rollup()); got != 12 {
		t.Fatalf("no-drop rollup has %d points, want 12", got)
	}
	// Dropping every dimension gives the global network view.
	all := reg.Rollup("node", "seed")
	for _, p := range all {
		if len(p.Labels) != 0 {
			t.Fatalf("full rollup kept labels: %+v", p)
		}
	}
	if (*Registry)(nil).Rollup("node") != nil {
		t.Fatal("nil registry must roll up to nil")
	}
}

// TestRollupQuantilesFiniteOnly: non-finite quantile estimates never
// reach the JSON document — an empty histogram has none, and a
// distribution with its tail past the last finite bound omits the
// quantiles that estimate to +Inf. The finite ones still serialize.
func TestRollupQuantilesFiniteOnly(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("node", "1").Histogram("empty_ms", 1, 10)
	tail := reg.Scope("node", "1").Histogram("tail_ms", 1, 10)
	for i := 0; i < 94; i++ {
		tail.Observe(2) // 94% within le=10 ...
	}
	for i := 0; i < 6; i++ {
		tail.Observe(99) // ... 6% past the last finite bound
	}

	var buf strings.Builder
	if err := reg.WriteRollupJSONTo(&buf, "node"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []MetricPoint `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatal(err)
	}
	byName := map[string]MetricPoint{}
	for _, p := range doc.Metrics {
		byName[p.Name] = p
	}
	if e := byName["empty_ms"]; e.P50 != nil || e.P95 != nil || e.P99 != nil {
		t.Fatalf("empty histogram grew quantiles: %+v", e)
	}
	tl := byName["tail_ms"]
	if tl.P50 == nil || *tl.P50 != 10 {
		t.Fatalf("tail histogram p50 = %v, want 10", tl.P50)
	}
	if tl.P95 != nil || tl.P99 != nil {
		t.Fatalf("quantiles past the last bound must be omitted: p95=%v p99=%v", tl.P95, tl.P99)
	}
}

// TestRollupOrderStable: rollup output order is deterministic (export
// order of the first member of each group).
func TestRollupOrderStable(t *testing.T) {
	reg := NewRegistry()
	for _, node := range []string{"2", "1", "3"} {
		sc := reg.Scope("node", node)
		sc.Counter("b_total").Inc()
		sc.Counter("a_total").Inc()
	}
	first := reg.Rollup("node")
	for i := 0; i < 10; i++ {
		again := reg.Rollup("node")
		for j := range first {
			if again[j].Name != first[j].Name {
				t.Fatalf("rollup order unstable: %v vs %v", again, first)
			}
		}
	}
	if first[0].Name != "a_total" || first[1].Name != "b_total" {
		t.Fatalf("rollup not in export order: %+v", first)
	}
}

// TestWriteRollupJSON: the rollup document carries its own schema tag
// and records which dimensions were collapsed.
func TestWriteRollupJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("node", "1").Counter("wcl_sends_total").Add(4)
	reg.Scope("node", "2").Counter("wcl_sends_total").Add(6)

	var buf strings.Builder
	if err := reg.WriteRollupJSONTo(&buf, "node"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string        `json:"schema"`
		Dropped []string      `json:"dropped"`
		Metrics []MetricPoint `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "whisper-metrics-rollup/v1" {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Dropped) != 1 || doc.Dropped[0] != "node" {
		t.Fatalf("dropped = %v", doc.Dropped)
	}
	if len(doc.Metrics) != 1 || doc.Metrics[0].Value == nil || *doc.Metrics[0].Value != 10 {
		t.Fatalf("metrics = %+v", doc.Metrics)
	}
}

// TestHandlerRollupEndpoint: /metrics/rollup serves the rollup JSON,
// collapsing the node dimension by default and honoring ?drop=.
func TestHandlerRollupEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("node", "1").Counter("wcl_sends_total").Add(4)
	reg.Scope("node", "2").Counter("wcl_sends_total").Add(6)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics/rollup")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var doc struct {
		Schema  string        `json:"schema"`
		Metrics []MetricPoint `json:"metrics"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "whisper-metrics-rollup/v1" || len(doc.Metrics) != 1 || *doc.Metrics[0].Value != 10 {
		t.Fatalf("rollup endpoint wrong: %s", body)
	}

	// ?drop=none-such keeps per-node series separate.
	resp2, err := srv.Client().Get(srv.URL + "/metrics/rollup?drop=nothing")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if err := json.Unmarshal(body2, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("?drop=nothing rolled up anyway: %s", body2)
	}
}

// captureCollector is a plain collector recording kinds in order.
type captureCollector struct{ events []Event }

func (c *captureCollector) Record(_ uint64, ev Event) { c.events = append(c.events, ev) }

// TestHeadSamplingDropsAtSourceOnly: the coin is flipped once per
// correlation key and only source-side kinds (send, retry, cell send)
// are ever dropped; relay-side kinds always emit. No field is added to
// Event (the wcl allowlist test pins that) and the sequence of span IDs
// stays gapless — a relay reading spans cannot tell sampling happened.
func TestHeadSamplingDropsAtSourceOnly(t *testing.T) {
	sink := &captureCollector{}
	tr := NewTracer(1, sink)
	flips := 0
	// Deterministic coin: path 1 loses (0.9 ≥ rate), path 2 wins (0.1 < rate).
	coin := func() float64 {
		flips++
		if flips%2 == 1 {
			return 0.9
		}
		return 0.1
	}
	tr.SetHeadSampling(0.5, coin)

	// Path 100: sampled out. All source kinds drop, every relay kind emits.
	for _, k := range []Kind{KindSend, KindRetry, KindCellSend} {
		if span := tr.Emit(k, 0, 0, 10, 100); span != 0 {
			t.Fatalf("sampled-out %v got span %d, want 0", k, span)
		}
	}
	relayKinds := []Kind{KindForward, KindPeel, KindDeliver, KindAck, KindCellForward, KindCellDeliver}
	for _, k := range relayKinds {
		if span := tr.Emit(k, 0, 0, 10, 100); span == 0 {
			t.Fatalf("relay kind %v dropped by head sampling", k)
		}
	}
	// Path 200: kept. One coin flip covers all its source events.
	for _, k := range []Kind{KindSend, KindCellSend, KindCellSend, KindRetry} {
		if span := tr.Emit(k, 0, 0, 10, 200); span == 0 {
			t.Fatalf("kept-path %v dropped", k)
		}
	}
	if flips != 2 {
		t.Fatalf("coin flipped %d times, want once per path (2)", flips)
	}
	// Re-emitting on path 100 reuses the cached decision: still dropped,
	// no third flip.
	if tr.Emit(KindSend, 0, 0, 10, 100) != 0 || flips != 2 {
		t.Fatal("sampling decision not cached per path")
	}

	// Emitted spans are a gapless node-local sequence: a relay cannot
	// infer sampling from span numbering.
	for i, ev := range sink.events {
		if ev.Span != SpanID(i+1) {
			t.Fatalf("span sequence has gaps: event %d has span %d", i, ev.Span)
		}
	}
}

// TestHeadSamplingDisabledKeepsEverything: rate ≥ 1, a nil coin, or
// never calling SetHeadSampling all emit every event.
func TestHeadSamplingDisabledKeepsEverything(t *testing.T) {
	for _, setup := range []func(*Tracer){
		func(*Tracer) {},
		func(tr *Tracer) { tr.SetHeadSampling(1, func() float64 { return 0.999 }) },
		func(tr *Tracer) { tr.SetHeadSampling(0, nil) },
	} {
		sink := &captureCollector{}
		tr := NewTracer(1, sink)
		setup(tr)
		for i := 0; i < 10; i++ {
			if tr.Emit(KindSend, 0, 0, 1, uint64(i)) == 0 {
				t.Fatal("event dropped with sampling disabled")
			}
		}
		if len(sink.events) != 10 {
			t.Fatalf("recorded %d events, want 10", len(sink.events))
		}
	}
	// Nil tracer stays inert.
	(*Tracer)(nil).SetHeadSampling(0.5, func() float64 { return 0 })
}
