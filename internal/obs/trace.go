package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Hop-level tracing records what happens to confidential traffic as it
// crosses a node: sends, forwards, onion peels, deliveries, retries,
// acknowledgements.
//
// The relay-visibility rule. A WHISPER relay must not be able to link a
// route's source to its destination, and neither may its telemetry: a
// trace event therefore carries only fields the node can locally
// observe — a node-local span ID (a per-node monotonic counter, so the
// same small integers recur on every node), the event kind, the local
// clock, a duration, and a byte size. End-to-end path identifiers never
// appear in an Event, and the plain Collector interface has no way to
// receive one. The one exception is the simulator: it is the omniscient
// observer by construction (it already delivers every datagram), so a
// collector that implements Correlator — the sim-only
// CorrelatingCollector — additionally receives a correlation key and
// can reconstruct full onion-path timelines for debugging. Real nodes
// must only ever be handed plain Collectors.
type SpanID uint64

// Kind classifies a trace event.
type Kind uint8

const (
	// KindSend: a source launched one onion-path attempt. Dur is the
	// onion construction cost.
	KindSend Kind = 1 + iota
	// KindForward: a relay re-emitted a peeled onion towards the next
	// hop.
	KindForward
	// KindPeel: a node stripped one onion layer. Dur is the RSA
	// decryption cost.
	KindPeel
	// KindDeliver: the exit hop decrypted and delivered the payload.
	KindDeliver
	// KindRetry: a source abandoned an attempt and tried an
	// alternative path.
	KindRetry
	// KindAck: a node originated or forwarded a backward
	// acknowledgement.
	KindAck
	// KindCellSend: a circuit source sealed and launched one data (or
	// keepalive) cell. Dur is the symmetric sealing cost.
	KindCellSend
	// KindCellForward: a circuit relay opened one cell layer and passed
	// the cell to the next hop. Dur is the AEAD open cost.
	KindCellForward
	// KindCellDeliver: a circuit exit decrypted and delivered a data
	// cell payload.
	KindCellDeliver
)

func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindForward:
		return "forward"
	case KindPeel:
		return "peel"
	case KindDeliver:
		return "deliver"
	case KindRetry:
		return "retry"
	case KindAck:
		return "ack"
	case KindCellSend:
		return "cell_send"
	case KindCellForward:
		return "cell_forward"
	case KindCellDeliver:
		return "cell_deliver"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one locally-observable trace record. Adding a field here
// widens what every relay's telemetry exposes — the relay-unlinkability
// test pins the exact field set, so extensions must argue their
// privacy case there.
type Event struct {
	// Span is the node-local span ID. Span numbering restarts on every
	// node, so a span value is meaningless outside its node.
	Span SpanID
	// Kind is the event class.
	Kind Kind
	// At is the node's local clock when the event happened.
	At time.Duration
	// Dur is the local processing cost, when the kind has one.
	Dur time.Duration
	// Bytes is the local message size involved, when meaningful.
	Bytes int
}

// Collector receives trace events. Implementations must be safe for
// the caller's concurrency regime (the emulator calls from one
// goroutine; a UDP node calls from its dispatch goroutine).
type Collector interface {
	Record(node uint64, ev Event)
}

// Correlator is the omniscient-observer extension: a collector that
// additionally receives the correlation key (the WCL path ID) with
// every event. Only the simulator may implement it — handing a
// Correlator to a real node's tracer would put an end-to-end
// identifier into relay telemetry.
type Correlator interface {
	Collector
	RecordCorrelated(node uint64, ev Event, corr uint64)
}

// Tracer emits trace events for one node. A nil Tracer drops
// everything; Emit never allocates beyond what the collector does.
type Tracer struct {
	node uint64
	next uint64
	col  Collector
	corr Correlator

	// Head-based sampling state (SetHeadSampling).
	rate      float64
	coin      func() float64
	decisions map[uint64]bool
}

// NewTracer creates a tracer for the node with the given identifier.
// If col implements Correlator, events are delivered with their
// correlation key (sim-only; see Correlator).
func NewTracer(node uint64, col Collector) *Tracer {
	if col == nil {
		return nil
	}
	t := &Tracer{node: node, col: col}
	if c, ok := col.(Correlator); ok {
		t.corr = c
	}
	return t
}

// SetHeadSampling enables head-based trace sampling: the source of a
// path flips one coin per path and drops that path's source-side
// events (KindSend, KindRetry, KindCellSend) when it loses. The
// decision exists only in the source's memory — relays emit
// unconditionally, no sampling marker crosses the wire, and no
// sampling field is added to Event, so telemetry volume drops at the
// place that generates the most spans without widening what any relay
// can observe. rate is the keep probability in [0, 1]; coin must
// return uniform values in [0, 1) (inject a deterministic one in
// tests). A rate ≥ 1 or nil coin keeps everything.
func (t *Tracer) SetHeadSampling(rate float64, coin func() float64) {
	if t == nil {
		return
	}
	t.rate = rate
	t.coin = coin
	t.decisions = make(map[uint64]bool)
}

// sampledOut reports whether head sampling drops this event. Only
// source-originated kinds are ever dropped, and all source events of
// one path share the same fate. The decision cache is cleared when it
// grows past a bound: a path whose decision was evicted just gets a
// fresh coin flip, which only perturbs sampling of paths still
// emitting across the eviction — acceptable for a volume knob.
func (t *Tracer) sampledOut(kind Kind, corr uint64) bool {
	if t.coin == nil || t.rate >= 1 {
		return false
	}
	switch kind {
	case KindSend, KindRetry, KindCellSend:
	default:
		return false
	}
	keep, ok := t.decisions[corr]
	if !ok {
		keep = t.coin() < t.rate
		if len(t.decisions) >= 4096 {
			t.decisions = make(map[uint64]bool)
		}
		t.decisions[corr] = keep
	}
	return !keep
}

// Emit records one event at local time at. corr is the correlation key
// (the path ID); it is dropped unless the collector is a Correlator.
// Returns the span ID assigned.
func (t *Tracer) Emit(kind Kind, at, dur time.Duration, bytes int, corr uint64) SpanID {
	if t == nil {
		return 0
	}
	if t.sampledOut(kind, corr) {
		return 0
	}
	t.next++
	ev := Event{Span: SpanID(t.next), Kind: kind, At: at, Dur: dur, Bytes: bytes}
	if t.corr != nil {
		t.corr.RecordCorrelated(t.node, ev, corr)
	} else {
		t.col.Record(t.node, ev)
	}
	return ev.Span
}

// CorrEvent is one correlated trace record: an Event plus the node it
// happened on and the correlation key joining it to its path.
type CorrEvent struct {
	Node uint64
	Corr uint64
	Event
}

// CorrelatingCollector joins trace events across nodes by correlation
// key. It is the simulator-side debugging aid: only the emulator (or a
// test) may attach it, because it sees exactly what the
// relay-visibility rule forbids real telemetry to record. Safe for
// concurrent use.
type CorrelatingCollector struct {
	mu     sync.Mutex
	events []CorrEvent
}

// Record accepts an uncorrelated event (corr 0).
func (c *CorrelatingCollector) Record(node uint64, ev Event) {
	c.RecordCorrelated(node, ev, 0)
}

// RecordCorrelated accepts an event with its path key.
func (c *CorrelatingCollector) RecordCorrelated(node uint64, ev Event, corr uint64) {
	c.mu.Lock()
	c.events = append(c.events, CorrEvent{Node: node, Corr: corr, Event: ev})
	c.mu.Unlock()
}

// Events returns a copy of everything recorded, in arrival order.
func (c *CorrelatingCollector) Events() []CorrEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CorrEvent(nil), c.events...)
}

// Paths returns the distinct correlation keys seen, ascending.
func (c *CorrelatingCollector) Paths() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, ev := range c.Events() {
		if ev.Corr != 0 && !seen[ev.Corr] {
			seen[ev.Corr] = true
			out = append(out, ev.Corr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Timeline returns the events of one path ordered by local time (then
// arrival order — local clocks across simulated nodes share the
// emulator's virtual clock, so this is the true event order there).
func (c *CorrelatingCollector) Timeline(corr uint64) []CorrEvent {
	var out []CorrEvent
	for _, ev := range c.Events() {
		if ev.Corr == corr {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// FormatTimeline renders one path's timeline for debugging.
func (c *CorrelatingCollector) FormatTimeline(corr uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "path %016x:\n", corr)
	for _, ev := range c.Timeline(corr) {
		fmt.Fprintf(&sb, "  %12v node=%d %-8s span=%d", ev.At, ev.Node, ev.Kind, ev.Span)
		if ev.Dur > 0 {
			fmt.Fprintf(&sb, " dur=%v", ev.Dur)
		}
		if ev.Bytes > 0 {
			fmt.Fprintf(&sb, " bytes=%d", ev.Bytes)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
