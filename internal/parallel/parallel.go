// Package parallel provides a bounded worker pool for running
// independent (config, seed) simulation runs concurrently. Each
// experiment run owns a private simnet.Sim, so per-run determinism is
// untouched by concurrency; output ordering is made stable by
// collecting results by index.
//
// Map's single-worker path executes runs sequentially in the caller's
// goroutine, in index order, which keeps `-parallel 1` byte-identical
// to the historical sequential harness.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values <= 0 mean "one per
// available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) using at most workers concurrent
// goroutines and returns the results collected by index. With
// workers <= 1 (or n < 2) the calls happen sequentially in the caller's
// goroutine, in order, and the first error aborts the remaining runs.
// With more workers, every run is attempted and the error of the
// lowest-indexed failing run is returned alongside the partial results.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	if workers = Workers(workers); workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return out[:i], err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ForEach is Map without per-run results.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
