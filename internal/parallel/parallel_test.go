package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestMapCollectsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		got, err := Map(workers, 10, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 10 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(_, 0) = %v, %v", got, err)
	}
}

func TestMapSequentialAbortsOnError(t *testing.T) {
	var calls int32
	boom := errors.New("boom")
	_, err := Map(1, 10, func(i int) (int, error) {
		atomic.AddInt32(&calls, 1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("sequential Map ran %d calls after error, want 4", calls)
	}
}

func TestMapParallelReportsLowestIndexedError(t *testing.T) {
	_, err := Map(4, 8, func(i int) (int, error) {
		if i == 2 || i == 6 {
			return 0, fmt.Errorf("run %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "run 2 failed" {
		t.Fatalf("err = %v, want run 2's error", err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int32
	_, err := Map(workers, 50, func(i int) (int, error) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		runtime.Gosched()
		atomic.AddInt32(&cur, -1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent runs, cap is %d", peak, workers)
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	if err := ForEach(4, 100, func(i int) error {
		atomic.AddInt64(&sum, int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
}
