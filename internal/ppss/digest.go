package ppss

import (
	"sort"

	"whisper/internal/identity"
	"whisper/internal/pss"
)

// SubDigest is an opaque, versioned application digest (in practice a
// pub/sub subscription bloom filter) gossiped piggyback on shuffles.
// The PPSS treats the blob as application-defined bytes: it ships the
// digest of every entry it trades, merges received digests by highest
// version, and remembers the owner's last-shipped coordinates so an
// application can route to a digest owner that has rotated out of the
// private view.
type SubDigest struct {
	// Owner is the member the digest describes.
	Owner identity.NodeID
	// Version orders updates; higher wins during merge.
	Version uint32
	// Blob is the application-encoded digest (opaque to the PPSS).
	Blob []byte
	// Entry is the owner's last coordinates seen alongside the digest
	// (not on the wire with the digest itself — it rides the same
	// shuffle's entry list).
	Entry Entry
}

// maxDigestBlob bounds one digest on the wire (hostile input).
const maxDigestBlob = 1024

// maxDigestsPerMsg bounds the piggybacked digest list: the sender's
// own digest plus one per shipped entry.
const maxDigestsPerMsg = 16

// digestCap bounds the per-instance digest table.
func (in *Instance) digestCap() int { return 4*in.cfg.ViewSize + 8 }

// SetSelfDigest installs this member's own digest for piggybacking on
// every subsequent shuffle. The zero-behavior contract holds until the
// first call: no digest bytes ever ship for members that never set one.
func (in *Instance) SetSelfDigest(version uint32, blob []byte) {
	in.selfDigest = &SubDigest{Owner: in.r.id(), Version: version, Blob: blob}
}

// SelfDigest returns this member's own digest, if set.
func (in *Instance) SelfDigest() (SubDigest, bool) {
	if in.selfDigest == nil {
		return SubDigest{}, false
	}
	return *in.selfDigest, true
}

// Digests returns the known digests of other members, sorted by owner
// for deterministic iteration.
func (in *Instance) Digests() []SubDigest {
	out := make([]SubDigest, 0, len(in.digests))
	for _, d := range in.digests {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}

// DigestOf returns the known digest of one member.
func (in *Instance) DigestOf(id identity.NodeID) (SubDigest, bool) {
	d, ok := in.digests[id]
	return d, ok
}

// digestsFor assembles the digest list for an outgoing shuffle: the
// sender's own digest plus the digests known for the entries shipped
// in the same message, so a digest always travels with coordinates its
// receiver can route to.
func (in *Instance) digestsFor(shipped []pss.Entry[Entry]) []SubDigest {
	var out []SubDigest
	if in.selfDigest != nil {
		out = append(out, SubDigest{Owner: in.selfDigest.Owner, Version: in.selfDigest.Version, Blob: in.selfDigest.Blob})
	}
	for _, e := range shipped {
		if len(out) >= maxDigestsPerMsg {
			break
		}
		if e.Val.ID == in.r.id() {
			continue
		}
		if d, ok := in.digests[e.Val.ID]; ok {
			out = append(out, SubDigest{Owner: d.Owner, Version: d.Version, Blob: d.Blob})
		}
	}
	return out
}

// absorbDigests merges received digests, resolving each owner's
// coordinates from the same message (the sender itself or its shipped
// entries). Higher versions win; the table is bounded, so unknown
// owners are dropped once it is full.
func (in *Instance) absorbDigests(ds []SubDigest, from Entry, shipped []pss.Entry[Entry]) {
	if len(ds) == 0 {
		return
	}
	if in.digests == nil {
		in.digests = make(map[identity.NodeID]SubDigest)
	}
	for _, d := range ds {
		if d.Owner == in.r.id() || len(d.Blob) == 0 || len(d.Blob) > maxDigestBlob {
			continue
		}
		cur, known := in.digests[d.Owner]
		if known && cur.Version >= d.Version {
			// Stale (or same) version: still refresh coordinates.
			if e, ok := entryFor(d.Owner, from, shipped); ok {
				cur.Entry = e
				in.digests[d.Owner] = cur
			}
			continue
		}
		if !known && len(in.digests) >= in.digestCap() {
			continue
		}
		e, ok := entryFor(d.Owner, from, shipped)
		if !ok {
			if !known {
				continue // no coordinates to route to; wait for a better copy
			}
			e = cur.Entry
		}
		in.digests[d.Owner] = SubDigest{Owner: d.Owner, Version: d.Version, Blob: d.Blob, Entry: e}
	}
}

// entryFor finds the coordinates of a digest owner within one shuffle
// message.
func entryFor(id identity.NodeID, from Entry, shipped []pss.Entry[Entry]) (Entry, bool) {
	if from.ID == id {
		return from, true
	}
	for _, e := range shipped {
		if e.Val.ID == id {
			return e.Val, true
		}
	}
	return Entry{}, false
}
