package ppss

import (
	"bytes"
	"testing"

	"whisper/internal/identity"
	"whisper/internal/pss"
	"whisper/internal/wire"
)

func newBareInstance(t testing.TB) *Instance {
	t.Helper()
	r := newBareRouter(t)
	return newInstance(r, GroupIDFromName("digests"), "digests", nil, Passport{})
}

func shippedFor(ids ...identity.NodeID) []pss.Entry[Entry] {
	var out []pss.Entry[Entry]
	for _, id := range ids {
		out = append(out, pss.Entry[Entry]{Val: Entry{ID: id}})
	}
	return out
}

func TestDigestMergeHigherVersionWins(t *testing.T) {
	in := newBareInstance(t)
	from := Entry{ID: 9}

	in.absorbDigests([]SubDigest{{Owner: 9, Version: 2, Blob: []byte("v2")}}, from, nil)
	d, ok := in.DigestOf(9)
	if !ok || !bytes.Equal(d.Blob, []byte("v2")) || d.Entry.ID != 9 {
		t.Fatalf("digest not absorbed with coordinates: %+v ok=%v", d, ok)
	}

	// A stale copy must not replace the blob, but still refreshes the
	// owner's coordinates from the message it rode in on.
	stale := Entry{ID: 9, IsPub: true}
	in.absorbDigests([]SubDigest{{Owner: 9, Version: 1, Blob: []byte("v1")}}, stale, nil)
	d, _ = in.DigestOf(9)
	if !bytes.Equal(d.Blob, []byte("v2")) {
		t.Errorf("stale version overwrote fresher blob: %q", d.Blob)
	}
	if !d.Entry.IsPub {
		t.Error("stale digest did not refresh coordinates")
	}

	in.absorbDigests([]SubDigest{{Owner: 9, Version: 3, Blob: []byte("v3")}}, from, nil)
	if d, _ = in.DigestOf(9); !bytes.Equal(d.Blob, []byte("v3")) {
		t.Errorf("higher version did not win: %q", d.Blob)
	}
}

func TestDigestMergeDropsUnroutableAndHostile(t *testing.T) {
	in := newBareInstance(t)
	from := Entry{ID: 9}

	// An unknown owner whose coordinates are not in the message cannot
	// be routed to — the digest waits for a better copy.
	in.absorbDigests([]SubDigest{{Owner: 77, Version: 1, Blob: []byte("x")}}, from, nil)
	if _, ok := in.DigestOf(77); ok {
		t.Error("absorbed a digest with no routable coordinates")
	}
	// With the owner's entry shipped in the same shuffle it resolves.
	in.absorbDigests([]SubDigest{{Owner: 77, Version: 1, Blob: []byte("x")}}, from, shippedFor(77))
	if d, ok := in.DigestOf(77); !ok || d.Entry.ID != 77 {
		t.Error("digest with shipped coordinates not absorbed")
	}

	// The node's own digest, empty blobs, and oversize blobs are dropped.
	self := in.r.id()
	in.absorbDigests([]SubDigest{
		{Owner: self, Version: 9, Blob: []byte("self")},
		{Owner: 11, Version: 1},
		{Owner: 12, Version: 1, Blob: make([]byte, maxDigestBlob+1)},
	}, from, shippedFor(self, 11, 12))
	for _, id := range []identity.NodeID{self, 11, 12} {
		if _, ok := in.DigestOf(id); ok {
			t.Errorf("hostile/self digest of %d absorbed", id)
		}
	}
}

func TestDigestTableBounded(t *testing.T) {
	in := newBareInstance(t)
	from := Entry{ID: 9}
	cap := in.digestCap()
	for i := 0; i < cap+20; i++ {
		owner := identity.NodeID(100 + i)
		in.absorbDigests([]SubDigest{{Owner: owner, Version: 1, Blob: []byte("b")}}, from, shippedFor(owner))
	}
	if got := len(in.Digests()); got > cap {
		t.Errorf("digest table grew to %d, cap %d", got, cap)
	}
	// Known owners still update at capacity.
	in.absorbDigests([]SubDigest{{Owner: 100, Version: 5, Blob: []byte("fresh")}}, from, shippedFor(100))
	if d, _ := in.DigestOf(100); !bytes.Equal(d.Blob, []byte("fresh")) {
		t.Error("full table refused an update for a known owner")
	}
}

func TestDigestsForShipsSelfPlusShipped(t *testing.T) {
	in := newBareInstance(t)
	from := Entry{ID: 9}
	if got := in.digestsFor(shippedFor(9)); len(got) != 0 {
		t.Errorf("digestsFor shipped %d digests before SetSelfDigest (zero-behavior)", len(got))
	}
	in.absorbDigests([]SubDigest{{Owner: 9, Version: 1, Blob: []byte("peer")}}, from, nil)
	in.SetSelfDigest(3, []byte("mine"))
	got := in.digestsFor(shippedFor(9, 10))
	if len(got) != 2 {
		t.Fatalf("digestsFor returned %d digests, want self + shipped peer", len(got))
	}
	if got[0].Owner != in.r.id() || !bytes.Equal(got[0].Blob, []byte("mine")) {
		t.Errorf("first digest is not self: %+v", got[0])
	}
	if got[1].Owner != 9 || !bytes.Equal(got[1].Blob, []byte("peer")) {
		t.Errorf("second digest is not the shipped peer: %+v", got[1])
	}
}

func TestExtrasDigestRoundtrip(t *testing.T) {
	x := extras{
		Digests: []SubDigest{
			{Owner: 5, Version: 2, Blob: []byte{1, 2, 3}},
			{Owner: 6, Version: 9, Blob: []byte{4}},
		},
	}
	w := wire.NewWriter(64)
	x.encode(w, 256)
	r := wire.NewReader(w.Bytes())
	got := decodeExtras(r, 256)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got.Digests) != 2 {
		t.Fatalf("roundtrip lost digests: %+v", got.Digests)
	}
	for i := range x.Digests {
		g, w := got.Digests[i], x.Digests[i]
		if g.Owner != w.Owner || g.Version != w.Version || !bytes.Equal(g.Blob, w.Blob) {
			t.Errorf("digest %d mismatch: got %+v want %+v", i, g, w)
		}
	}
	// No digests set: the extras block costs one zero count byte and
	// decodes to none (the wire-level zero-behavior contract).
	w2 := wire.NewWriter(32)
	extras{}.encode(w2, 256)
	r2 := wire.NewReader(w2.Bytes())
	empty := decodeExtras(r2, 256)
	if err := r2.Err(); err != nil {
		t.Fatal(err)
	}
	if len(empty.Digests) != 0 {
		t.Error("empty extras decoded digests")
	}
}
