package ppss

import (
	"crypto/sha256"
	"encoding/binary"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/pss"
	"whisper/internal/wire"
)

// Leader election (§IV-A): when leader heartbeats stop arriving, each
// member proposes a value derived from its identifier; a gossip-based
// aggregation of the maximum (Jelasity et al., the paper's [8])
// converges in a few cycles, after which the winner generates and
// announces a new group key, signed by its identity, that members
// append to their key history.

// proposalValue derives the election value for a member. Hashing makes
// the winner effectively random rather than the numerically largest ID.
func proposalValue(g GroupID, id identity.NodeID) uint64 {
	w := wire.NewWriter(24)
	w.String("whisper-election")
	w.U64(uint64(g))
	w.U64(uint64(id))
	h := sha256.Sum256(w.Bytes())
	v := binary.BigEndian.Uint64(h[:8])
	if v == 0 {
		v = 1 // zero means "no election" on the wire
	}
	return v
}

// extras assembles the piggybacked liveness/election state for an
// outgoing shuffle, plus the application digests travelling with the
// shipped entries.
func (in *Instance) extras(shipped []pss.Entry[Entry]) extras {
	x := extras{Epoch: in.history.Epoch(), Digests: in.digestsFor(shipped)}
	if in.IsLeader() {
		in.lastHB = in.rt.Now()
		x.HBAge = 0
	} else {
		x.HBAge = in.rt.Now() - in.lastHB
	}
	if in.election != nil {
		x.Proposal = in.election.proposal
		p := in.election.proposer
		x.Proposer = &p
	}
	if in.announce != nil && in.rt.Now()-in.announced < in.cfg.AnnounceFor {
		x.Announce = in.announce
	}
	return x
}

// absorbExtras merges a peer's liveness/election state.
func (in *Instance) absorbExtras(x extras) {
	// Key announcements advance the epoch.
	if x.Announce != nil {
		in.acceptAnnounce(x.Announce)
	}
	// Heartbeat freshness propagates epidemically: the peer heard from
	// the leader x.HBAge ago.
	theirHB := in.rt.Now() - x.HBAge
	if theirHB > in.lastHB {
		in.lastHB = theirHB
		// Fresh leader signal cancels a pending election.
		if in.election != nil && in.rt.Now()-in.lastHB < in.cfg.HeartbeatTimeout/2 {
			in.election = nil
		}
	}
	// Aggregation of the maximum proposal.
	if x.Proposal != 0 && x.Proposer != nil {
		if in.election == nil {
			// Join an election already in progress.
			if in.rt.Now()-in.lastHB > in.cfg.HeartbeatTimeout/2 {
				in.election = &electionState{
					started:    in.rt.Now(),
					lastChange: in.rt.Now(),
					proposal:   proposalValue(in.grp, in.r.id()),
					proposer:   in.r.SelfEntry(),
				}
				in.met.electionsStarted.Inc()
			}
		}
		if in.election != nil && x.Proposal > in.election.proposal {
			in.election.proposal = x.Proposal
			in.election.proposer = *x.Proposer
			in.election.lastChange = in.rt.Now()
		}
	}
}

// tickElection runs once per PPSS cycle: start an election when the
// leader went silent, resolve it after the aggregation window.
func (in *Instance) tickElection() {
	now := in.rt.Now()
	if in.IsLeader() {
		in.lastHB = now
		return
	}
	if in.election == nil {
		if now-in.lastHB > in.cfg.HeartbeatTimeout {
			in.election = &electionState{
				started:    now,
				lastChange: now,
				proposal:   proposalValue(in.grp, in.r.id()),
				proposer:   in.r.SelfEntry(),
			}
			in.met.electionsStarted.Inc()
		}
		return
	}
	// Resolve only once the aggregation window has passed AND the
	// maximum has been stable for the second half of the window —
	// otherwise a node that has not yet heard the true maximum would
	// elect itself.
	if now-in.election.started < in.cfg.ElectionDuration ||
		now-in.election.lastChange < in.cfg.ElectionDuration/2 {
		return
	}
	won := in.election.proposer.ID == in.r.id()
	in.election = nil
	if !won {
		// Wait for the winner's announcement; if it never comes, the
		// heartbeat stays stale and a new election will trigger.
		in.lastHB = now - in.cfg.HeartbeatTimeout/2
		return
	}
	in.becomeLeader()
}

// becomeLeader generates the next-epoch group key, self-issues a
// passport and starts announcing the new key.
func (in *Instance) becomeLeader() {
	newKey, err := NewGroupKey(in.cfg.Suite, in.cfg.GroupKeyBits)
	if err != nil {
		return
	}
	newEpoch := in.history.Epoch() + 1
	sig, err := crypt.Sign(in.r.cpu(), in.r.w.Node().Identity().Key,
		announceBody(in.grp, newEpoch, newKey.Public()))
	if err != nil {
		return
	}
	ann := &keyAnnounce{
		Epoch:     newEpoch,
		NewKey:    newKey.Public(),
		Leader:    in.passport, // old-epoch passport proves membership
		LeaderKey: in.r.w.Node().Identity().Public(),
		Sig:       sig,
	}
	in.history.Append(newKey.Public())
	in.groupPriv = newKey
	in.leaderID = in.r.id()
	in.lastHB = in.rt.Now()
	in.announce = ann
	in.announced = in.rt.Now()
	in.met.becameLeader.Inc()
	// Re-issue own passport under the new epoch.
	if p, err := IssuePassport(in.r.cpu(), newKey, in.grp, in.r.id(), newEpoch); err == nil {
		in.passport = p
	}
}

// acceptAnnounce verifies and installs a new group key: the announcer
// must hold a valid passport for a known epoch and the announcement
// must be signed by the key it claims as its identity. (Within the
// paper's honest-but-curious threat model members do not forge
// announcements; Byzantine resistance would require the complementary
// mechanisms surveyed in §VI.)
func (in *Instance) acceptAnnounce(a *keyAnnounce) {
	if a.Epoch != in.history.Epoch()+1 || a.NewKey == nil || a.LeaderKey == nil {
		return
	}
	if a.Leader.Verify(in.r.cpu(), in.grp, in.history) != nil {
		in.met.badPassports.Inc()
		return
	}
	if crypt.Verify(in.r.cpu(), a.LeaderKey, announceBody(in.grp, a.Epoch, a.NewKey), a.Sig) != nil {
		in.met.badPassports.Inc()
		return
	}
	in.history.Append(a.NewKey)
	in.leaderID = a.Leader.Member
	in.lastHB = in.rt.Now()
	in.election = nil
	in.announce = a // keep spreading it
	in.announced = in.rt.Now()
	in.met.announcesAccepted.Inc()
}
