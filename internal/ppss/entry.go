package ppss

import (
	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/keyss"
	"whisper/internal/transport"
	"whisper/internal/wcl"
	"whisper/internal/wire"
)

// Entry is one element of a private view (§IV-B): besides the member's
// identity and age (held by the enclosing pss.Entry), it carries
// everything a source needs to open a WCL route to the member — its
// public key and, for N-nodes, Π helper P-nodes (identities, endpoints
// and public keys) able to act as the next-to-last mix.
type Entry struct {
	ID      identity.NodeID
	IsPub   bool
	Contact transport.Endpoint // meaningful for P-node members
	PubKey  crypt.PublicKey
	Helpers []wcl.Helper
}

// Key implements pss.Item.
func (e Entry) Key() identity.NodeID { return e.ID }

// IsPublic implements pss.Item.
func (e Entry) IsPublic() bool { return e.IsPub }

// Dest converts the entry to the WCL destination description. P-node
// members are addressable by endpoint; N-nodes need their helper set.
func (e Entry) Dest() wcl.Dest {
	d := wcl.Dest{ID: e.ID, Key: e.PubKey, Helpers: e.Helpers}
	if e.IsPub {
		d.Endpoint = e.Contact
	}
	return d
}

func (e Entry) encode(w *wire.Writer, keyBlob int) {
	w.U64(uint64(e.ID))
	w.Bool(e.IsPub)
	w.U32(uint32(e.Contact.IP))
	w.U16(e.Contact.Port)
	keyss.EncodeKey(w, e.PubKey, keyBlob)
	w.U8(uint8(len(e.Helpers)))
	for _, h := range e.Helpers {
		w.U64(uint64(h.ID))
		w.U32(uint32(h.Endpoint.IP))
		w.U16(h.Endpoint.Port)
		keyss.EncodeKey(w, h.Key, keyBlob)
	}
}

func decodeEntry(r *wire.Reader, keyBlob int) Entry {
	var e Entry
	e.ID = identity.NodeID(r.U64())
	e.IsPub = r.Bool()
	e.Contact = transport.Endpoint{IP: transport.IP(r.U32()), Port: r.U16()}
	e.PubKey = keyss.DecodeKey(r, keyBlob)
	n := int(r.U8())
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		var h wcl.Helper
		h.ID = identity.NodeID(r.U64())
		h.Endpoint = transport.Endpoint{IP: transport.IP(r.U32()), Port: r.U16()}
		h.Key = keyss.DecodeKey(r, keyBlob)
		e.Helpers = append(e.Helpers, h)
	}
	return e
}

// Encode serializes the entry for applications that ship entries in
// their own payloads (e.g. T-Chord queries carrying the origin's
// coordinates, §V-G).
func (e Entry) Encode(w *wire.Writer, keyBlobSize int) { e.encode(w, keyBlobSize) }

// DecodeEntry parses an entry written by Encode.
func DecodeEntry(r *wire.Reader, keyBlobSize int) Entry { return decodeEntry(r, keyBlobSize) }
