package ppss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/simnet"
	simtr "whisper/internal/transport/simnet"
	"whisper/internal/wcl"
)

func newBareRouter(t testing.TB) *Router {
	t.Helper()
	s := simnet.New(1)
	nw := netem.New(s, netem.Fixed{})
	ident := &identity.Identity{ID: 1, Key: identity.TestKeys(1)[0]}
	node := nylon.NewNode(simtr.New(s, nw), ident, 0, netem.Endpoint{IP: 5, Port: 1}, nil,
		nylon.Config{KeySampling: true, KeyBlobSize: 256})
	w, err := wcl.New(node, wcl.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return NewRouter(w, Config{KeyBlobSize: 256})
}

// TestRouterNeverPanicsOnGarbage drives arbitrary decrypted payloads
// through the PPSS demultiplexer. A node must silently drop anything it
// cannot parse or is not a member for — without even an error reply,
// which would leak that it runs WHISPER groups at all.
func TestRouterNeverPanicsOnGarbage(t *testing.T) {
	r := newBareRouter(t)
	f := func(payload []byte) bool {
		r.handle(payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(46))}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	for _, tag := range []uint8{msgShuffleReq, msgShuffleResp, msgJoinReq, msgJoinResp,
		msgApp, msgPCPPing, msgPCPPong, 0, 0xEE} {
		for i := 0; i < 300; i++ {
			body := make([]byte, rng.Intn(400))
			rng.Read(body)
			r.handle(append([]byte{tag}, body...))
		}
	}
	if len(r.Instances()) != 0 {
		t.Fatal("garbage created an instance")
	}
}

// TestUnknownGroupSilentDrop checks membership privacy at the router: a
// well-formed message for a group this node does not belong to is
// dropped with no side effects.
func TestUnknownGroupSilentDrop(t *testing.T) {
	r := newBareRouter(t)
	gk := identity.TestKeys(1)[0]
	g := GroupIDFromName("not-ours")
	passport, err := IssuePassport(nil, gk, g, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := shuffleMsg{Group: g, Passport: passport, Seq: 1, From: Entry{ID: 42}}
	r.handle(m.encode(msgShuffleReq, r.cfg.KeyBlobSize))
	if r.Stats().UnknownGroupDrops != 1 {
		t.Fatalf("UnknownGroupDrops = %d, want 1", r.Stats().UnknownGroupDrops)
	}
	if len(r.Instances()) != 0 {
		t.Fatal("foreign group message created state")
	}
}

// TestWrongGroupPassportRejected verifies a member ignores messages
// whose passport was minted for a different group, even with a valid
// signature.
func TestWrongGroupPassportRejected(t *testing.T) {
	r := newBareRouter(t)
	inst, err := r.CreateGroup("ours")
	if err != nil {
		t.Fatal(err)
	}
	otherKey := identity.TestKeys(2)[1]
	otherG := GroupIDFromName("theirs")
	badPassport, err := IssuePassport(nil, otherKey, otherG, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := shuffleMsg{Group: inst.Group(), Passport: badPassport, Seq: 1, From: Entry{ID: 42}}
	r.handle(m.encode(msgShuffleReq, r.cfg.KeyBlobSize))
	if inst.Stats().BadPassports != 1 {
		t.Fatalf("BadPassports = %d, want 1", inst.Stats().BadPassports)
	}
	if inst.Stats().ExchangesServed != 0 {
		t.Fatal("exchange served despite invalid passport")
	}
	if len(inst.ViewIDs()) != 0 {
		t.Fatal("invalid sender entered the private view")
	}
}

// TestPassportMemberMismatchRejected verifies the binding between the
// passport and the claimed sender identity.
func TestPassportMemberMismatchRejected(t *testing.T) {
	r := newBareRouter(t)
	inst, err := r.CreateGroup("ours")
	if err != nil {
		t.Fatal(err)
	}
	// A valid passport for member 42, but the message claims to be from
	// member 43 (a stolen passport).
	stolen, err := IssuePassport(nil, inst.groupPriv, inst.Group(), 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := shuffleMsg{Group: inst.Group(), Passport: stolen, Seq: 1, From: Entry{ID: 43}}
	r.handle(m.encode(msgShuffleReq, r.cfg.KeyBlobSize))
	if inst.Stats().BadPassports != 1 {
		t.Fatalf("BadPassports = %d, want 1 (stolen passport accepted)", inst.Stats().BadPassports)
	}
}

// TestPCPDropsDeadMembers verifies §IV-C failure handling: a pooled
// member that stops answering refresh pings is eventually evicted.
func TestPCPDropsDeadMembers(t *testing.T) {
	r := newBareRouter(t)
	inst, err := r.CreateGroup("pool")
	if err != nil {
		t.Fatal(err)
	}
	dead := Entry{ID: 77, PubKey: identity.TestKeys(1)[0].Public()}
	inst.MakePersistent(dead)
	if len(inst.PersistentIDs()) != 1 {
		t.Fatal("member not pooled")
	}
	// No pong will ever arrive; advance past the eviction horizon.
	r.rt.(*simtr.Transport).Sim().RunUntil(5 * inst.Config().PCPRefresh * 2)
	if len(inst.PersistentIDs()) != 0 {
		t.Fatal("dead member never evicted from the pool")
	}
	if inst.Stats().PCPDropped != 1 {
		t.Fatalf("PCPDropped = %d", inst.Stats().PCPDropped)
	}
}
