// Package ppss implements the Private Peer Sampling Service (§IV): a
// per-group gossip peer-sampling protocol whose every exchange travels
// over a WCL onion route, so that neither the content of the exchanges
// nor the membership of the group is visible to any third party —
// including the relays and mixes that carry the traffic.
//
// The package covers the full §IV feature set: group creation and
// invitation with signed accreditations, passport issuance and
// verification against a group-key history, private view maintenance
// (entries carry the member's public key and Π helper P-nodes, the
// information a source needs to open a WCL route), leader heartbeats
// with gossip-aggregation-based re-election, and persistent paths (the
// private connection pool) for applications such as T-Chord.
package ppss

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/wire"
)

// GroupID identifies a private group. It is derived from the group
// name, but knowing an ID does not help an outsider: every message of
// the group is onion-encrypted and passport-guarded.
type GroupID uint64

// GroupIDFromName derives the canonical GroupID for a name.
func GroupIDFromName(name string) GroupID {
	h := sha256.Sum256([]byte("whisper-group:" + name))
	return GroupID(binary.BigEndian.Uint64(h[:8]))
}

func (g GroupID) String() string { return fmt.Sprintf("G%x", uint64(g)) }

// Errors returned by credential verification.
var (
	ErrBadPassport      = errors.New("ppss: invalid passport")
	ErrBadAccreditation = errors.New("ppss: invalid accreditation")
)

// KeyHistory is the ordered list of group public keys, one per epoch.
// Verification accepts signatures from any epoch so that passports
// survive leader re-election (§IV-A).
type KeyHistory struct {
	keys []crypt.PublicKey
}

// NewKeyHistory starts a history at epoch 0 with the initial group key.
func NewKeyHistory(initial crypt.PublicKey) *KeyHistory {
	return &KeyHistory{keys: []crypt.PublicKey{initial}}
}

// Epoch returns the current (latest) epoch number.
func (h *KeyHistory) Epoch() uint32 { return uint32(len(h.keys) - 1) }

// Current returns the latest group public key.
func (h *KeyHistory) Current() crypt.PublicKey { return h.keys[len(h.keys)-1] }

// At returns the key for an epoch, or nil if unknown.
func (h *KeyHistory) At(epoch uint32) crypt.PublicKey {
	if int(epoch) >= len(h.keys) {
		return nil
	}
	return h.keys[epoch]
}

// Append installs the key for the next epoch.
func (h *KeyHistory) Append(pub crypt.PublicKey) { h.keys = append(h.keys, pub) }

// Len returns the number of epochs.
func (h *KeyHistory) Len() int { return len(h.keys) }

// Passport proves group membership: the member's identifier signed with
// the group's private key of some epoch. Nodes ship their passport with
// every intra-group communication; messages with invalid passports are
// silently ignored, which keeps memberships invisible to outsiders.
type Passport struct {
	Member identity.NodeID
	Epoch  uint32
	Sig    []byte
}

func passportBody(group GroupID, member identity.NodeID, epoch uint32) []byte {
	w := wire.NewWriter(32)
	w.String("whisper-passport")
	w.U64(uint64(group))
	w.U64(uint64(member))
	w.U32(epoch)
	return w.Bytes()
}

// IssuePassport signs a passport for member with the group private key
// at the given epoch. Only leaders hold that key.
func IssuePassport(m *crypt.CPUMeter, groupPriv crypt.PrivateKey, group GroupID, member identity.NodeID, epoch uint32) (Passport, error) {
	sig, err := crypt.Sign(m, groupPriv, passportBody(group, member, epoch))
	if err != nil {
		return Passport{}, fmt.Errorf("ppss: issuing passport: %w", err)
	}
	return Passport{Member: member, Epoch: epoch, Sig: sig}, nil
}

// Verify checks the passport against the group key history.
func (p Passport) Verify(m *crypt.CPUMeter, group GroupID, history *KeyHistory) error {
	pub := history.At(p.Epoch)
	if pub == nil {
		return ErrBadPassport
	}
	if crypt.Verify(m, pub, passportBody(group, p.Member, p.Epoch), p.Sig) != nil {
		return ErrBadPassport
	}
	return nil
}

// IsZero reports whether the passport is unset.
func (p Passport) IsZero() bool { return p.Sig == nil }

func (p Passport) encode(w *wire.Writer) {
	w.U64(uint64(p.Member))
	w.U32(p.Epoch)
	w.Bytes16(p.Sig)
}

func decodePassport(r *wire.Reader) Passport {
	var p Passport
	p.Member = identity.NodeID(r.U64())
	p.Epoch = r.U32()
	p.Sig = r.Bytes16()
	return p
}

// Accreditation is the temporary signed invitation a node presents to a
// leader when joining (§IV-A). It is signed with the group key (the
// "invitation manager" variant would use a separate key pair).
type Accreditation struct {
	Group   GroupID
	Invitee identity.NodeID
	Epoch   uint32
	Sig     []byte
}

func accreditationBody(group GroupID, invitee identity.NodeID, epoch uint32) []byte {
	w := wire.NewWriter(32)
	w.String("whisper-accreditation")
	w.U64(uint64(group))
	w.U64(uint64(invitee))
	w.U32(epoch)
	return w.Bytes()
}

// IssueAccreditation signs an invitation for invitee.
func IssueAccreditation(m *crypt.CPUMeter, groupPriv crypt.PrivateKey, group GroupID, invitee identity.NodeID, epoch uint32) (Accreditation, error) {
	sig, err := crypt.Sign(m, groupPriv, accreditationBody(group, invitee, epoch))
	if err != nil {
		return Accreditation{}, fmt.Errorf("ppss: issuing accreditation: %w", err)
	}
	return Accreditation{Group: group, Invitee: invitee, Epoch: epoch, Sig: sig}, nil
}

// Verify checks the accreditation against the key history.
func (a Accreditation) Verify(m *crypt.CPUMeter, history *KeyHistory) error {
	pub := history.At(a.Epoch)
	if pub == nil {
		return ErrBadAccreditation
	}
	if crypt.Verify(m, pub, accreditationBody(a.Group, a.Invitee, a.Epoch), a.Sig) != nil {
		return ErrBadAccreditation
	}
	return nil
}

func (a Accreditation) encode(w *wire.Writer) {
	w.U64(uint64(a.Group))
	w.U64(uint64(a.Invitee))
	w.U32(a.Epoch)
	w.Bytes16(a.Sig)
}

func decodeAccreditation(r *wire.Reader) Accreditation {
	var a Accreditation
	a.Group = GroupID(r.U64())
	a.Invitee = identity.NodeID(r.U64())
	a.Epoch = r.U32()
	a.Sig = r.Bytes16()
	return a
}

// NewGroupKey generates a group key pair (held by leaders) on the
// given crypto suite. bits sizes RSA moduli (identity.DefaultKeyBits
// if zero) and is ignored by fixed-size suites.
func NewGroupKey(suite crypt.SuiteID, bits int) (crypt.PrivateKey, error) {
	if bits == 0 {
		bits = identity.DefaultKeyBits
	}
	key, err := crypt.GenerateKey(suite, bits)
	if err != nil {
		return nil, fmt.Errorf("ppss: generating group key: %w", err)
	}
	return key, nil
}
