package ppss

import (
	"errors"
	"testing"

	"whisper/internal/identity"
)

func TestGroupIDStable(t *testing.T) {
	a := GroupIDFromName("ops-room")
	b := GroupIDFromName("ops-room")
	c := GroupIDFromName("ops-room2")
	if a != b {
		t.Fatal("GroupID not deterministic")
	}
	if a == c {
		t.Fatal("distinct names collide")
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestPassportIssueVerify(t *testing.T) {
	gk := identity.TestKeys(1)[0]
	g := GroupIDFromName("g")
	hist := NewKeyHistory(gk.Public())

	p, err := IssuePassport(nil, gk, g, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsZero() {
		t.Fatal("issued passport is zero")
	}
	if err := p.Verify(nil, g, hist); err != nil {
		t.Fatal(err)
	}
	// Wrong group.
	if err := p.Verify(nil, GroupIDFromName("other"), hist); !errors.Is(err, ErrBadPassport) {
		t.Fatalf("wrong group accepted: %v", err)
	}
	// Tampered member.
	p2 := p
	p2.Member = 43
	if err := p2.Verify(nil, g, hist); !errors.Is(err, ErrBadPassport) {
		t.Fatal("tampered member accepted")
	}
	// Unknown epoch.
	p3 := p
	p3.Epoch = 9
	if err := p3.Verify(nil, g, hist); !errors.Is(err, ErrBadPassport) {
		t.Fatal("unknown epoch accepted")
	}
}

func TestPassportSurvivesKeyRotation(t *testing.T) {
	keys := identity.TestKeys(2)
	g := GroupIDFromName("g")
	hist := NewKeyHistory(keys[0].Public())
	p, _ := IssuePassport(nil, keys[0], g, 7, 0)

	// Leader re-election installs a new key; old passports stay valid
	// through the history.
	hist.Append(keys[1].Public())
	if hist.Epoch() != 1 || hist.Current() != keys[1].Public() {
		t.Fatal("history bookkeeping wrong")
	}
	if err := p.Verify(nil, g, hist); err != nil {
		t.Fatalf("old passport rejected after rotation: %v", err)
	}
	// New-epoch passports verify too.
	p1, _ := IssuePassport(nil, keys[1], g, 7, 1)
	if err := p1.Verify(nil, g, hist); err != nil {
		t.Fatal(err)
	}
	// A new-epoch passport signed with the OLD key fails.
	bad, _ := IssuePassport(nil, keys[0], g, 7, 1)
	if err := bad.Verify(nil, g, hist); !errors.Is(err, ErrBadPassport) {
		t.Fatal("epoch/key mismatch accepted")
	}
}

func TestAccreditation(t *testing.T) {
	gk := identity.TestKeys(1)[0]
	g := GroupIDFromName("g")
	hist := NewKeyHistory(gk.Public())
	a, err := IssueAccreditation(nil, gk, g, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(nil, hist); err != nil {
		t.Fatal(err)
	}
	a2 := a
	a2.Invitee = 10
	if err := a2.Verify(nil, hist); !errors.Is(err, ErrBadAccreditation) {
		t.Fatal("tampered accreditation accepted")
	}
}

func TestPassportWireRoundTrip(t *testing.T) {
	gk := identity.TestKeys(1)[0]
	g := GroupIDFromName("g")
	p, _ := IssuePassport(nil, gk, g, 11, 3)
	// encode → decode through the wire helpers used in messages.
	hist := NewKeyHistory(gk.Public())
	hist.Append(gk.Public())
	hist.Append(gk.Public())
	hist.Append(gk.Public())
	if err := p.Verify(nil, g, hist); err != nil {
		t.Fatal(err)
	}
}

func TestProposalValueProperties(t *testing.T) {
	g := GroupIDFromName("g")
	seen := map[uint64]bool{}
	for i := identity.NodeID(1); i <= 100; i++ {
		v := proposalValue(g, i)
		if v == 0 {
			t.Fatal("zero proposal value")
		}
		if v != proposalValue(g, i) {
			t.Fatal("proposal not deterministic")
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("proposal collisions: %d unique of 100", len(seen))
	}
}
