package ppss

import (
	"errors"
	"fmt"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/dedup"
	"whisper/internal/identity"
	"whisper/internal/keyss"
	"whisper/internal/obs"
	"whisper/internal/pss"
	"whisper/internal/transport"
	"whisper/internal/wcl"
)

// Config parameterizes PPSS instances (shared by all groups of a node).
type Config struct {
	// ViewSize bounds the private view (default 10).
	ViewSize int
	// ExchangeSize is the number of entries per shuffle (paper: 5).
	ExchangeSize int
	// Cycle is the PPSS gossip period (paper: 1 minute).
	Cycle time.Duration
	// Jitter desynchronizes cycles (default Cycle/2).
	Jitter time.Duration
	// MinHelpers is Π, the helper P-nodes shipped per N-node entry.
	MinHelpers int
	// KeyBlobSize is the on-wire size of one public key (default 1 KB).
	KeyBlobSize int
	// RespTimeout bounds the wait for a shuffle response.
	RespTimeout time.Duration
	// JoinTimeout bounds the whole join handshake.
	JoinTimeout time.Duration
	// PCPRefresh is the persistent-path refresh period (§IV-C; lower
	// frequency than gossip, bounded by the NAT lease).
	PCPRefresh time.Duration
	// PoolCircuits routes traffic to persistent-pool members over WCL
	// circuits: the pool is exactly the set of partners a node
	// re-contacts indefinitely, so the one-time circuit setup amortizes
	// and the periodic PCP ping doubles as the circuit's keepalive.
	// Gossip shuffles take the same route when the partner is pooled
	// (or a circuit already exists), so steady-state shuffling with
	// persistent partners pays symmetric cells instead of fresh onions.
	// Defaults to on (set to a false pointer to disable); one-shot
	// remains the path for everything outside the pool.
	PoolCircuits *bool
	// HeartbeatTimeout is how stale the leader heartbeat may grow
	// before an election starts (§IV-A).
	HeartbeatTimeout time.Duration
	// ElectionDuration is the aggregation convergence window.
	ElectionDuration time.Duration
	// Suite selects the crypto suite for group key pairs (default
	// rsa2048, matching the node identity default).
	Suite crypt.SuiteID
	// GroupKeyBits sizes RSA group key pairs (default
	// identity.DefaultKeyBits); ignored by fixed-size suites.
	GroupKeyBits int
	// AnnounceFor is how long a new leader keeps piggybacking its key
	// announcement on shuffles.
	AnnounceFor time.Duration
	// Obs is the observability scope the router and its group instances
	// register instruments under. Nil runs unobserved (counters still
	// count).
	Obs *obs.Scope
}

func (c Config) withDefaults() Config {
	if c.ViewSize == 0 {
		c.ViewSize = 10
	}
	if c.ExchangeSize == 0 {
		c.ExchangeSize = 5
	}
	if c.Cycle == 0 {
		c.Cycle = time.Minute
	}
	if c.Jitter == 0 {
		c.Jitter = c.Cycle / 2
	}
	if c.MinHelpers == 0 {
		c.MinHelpers = 3
	}
	if c.KeyBlobSize == 0 {
		c.KeyBlobSize = keyss.DefaultKeyBlobSize
	}
	if c.RespTimeout == 0 {
		c.RespTimeout = 20 * time.Second
	}
	if c.JoinTimeout == 0 {
		c.JoinTimeout = 30 * time.Second
	}
	if c.PCPRefresh == 0 {
		c.PCPRefresh = 2 * time.Minute
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 8 * c.Cycle
	}
	if c.ElectionDuration == 0 {
		c.ElectionDuration = 4 * c.Cycle
	}
	if c.AnnounceFor == 0 {
		c.AnnounceFor = 10 * c.Cycle
	}
	if c.PoolCircuits == nil {
		on := true
		c.PoolCircuits = &on
	}
	return c
}

// InstanceStats is a snapshot of per-group protocol events, read
// through Instance.Stats.
type InstanceStats struct {
	ExchangesInitiated uint64
	ExchangesCompleted uint64
	ExchangesTimedOut  uint64
	ExchangesServed    uint64
	BadPassports       uint64
	SendFailures       uint64
	JoinsServed        uint64
	ElectionsStarted   uint64
	BecameLeader       uint64
	AnnouncesAccepted  uint64
	AppDelivered       uint64
	PCPRefreshes       uint64
	PCPDropped         uint64
	// DupExchangesDropped counts shuffle requests whose (sender, seq)
	// was already served — a duplicated or replayed exchange that, if
	// processed again, would double-apply its view entries.
	DupExchangesDropped uint64
}

// instMet holds an instance's metric instruments.
type instMet struct {
	exchangesInitiated  *obs.Counter
	exchangesCompleted  *obs.Counter
	exchangesTimedOut   *obs.Counter
	exchangesServed     *obs.Counter
	badPassports        *obs.Counter
	sendFailures        *obs.Counter
	joinsServed         *obs.Counter
	electionsStarted    *obs.Counter
	becameLeader        *obs.Counter
	announcesAccepted   *obs.Counter
	appDelivered        *obs.Counter
	pcpRefreshes        *obs.Counter
	pcpDropped          *obs.Counter
	dupExchangesDropped *obs.Counter
	exchangeRTT         *obs.Histogram
}

func newInstMet(sc *obs.Scope) instMet {
	return instMet{
		exchangesInitiated:  sc.Counter("ppss_exchanges_initiated_total"),
		exchangesCompleted:  sc.Counter("ppss_exchanges_completed_total"),
		exchangesTimedOut:   sc.Counter("ppss_exchanges_timed_out_total"),
		exchangesServed:     sc.Counter("ppss_exchanges_served_total"),
		badPassports:        sc.Counter("ppss_bad_passports_total"),
		sendFailures:        sc.Counter("ppss_send_failures_total"),
		joinsServed:         sc.Counter("ppss_joins_served_total"),
		electionsStarted:    sc.Counter("ppss_elections_started_total"),
		becameLeader:        sc.Counter("ppss_became_leader_total"),
		announcesAccepted:   sc.Counter("ppss_announces_accepted_total"),
		appDelivered:        sc.Counter("ppss_app_delivered_total"),
		pcpRefreshes:        sc.Counter("ppss_pcp_refreshes_total"),
		pcpDropped:          sc.Counter("ppss_pcp_dropped_total"),
		dupExchangesDropped: sc.Counter("ppss_dup_exchanges_dropped_total"),
		exchangeRTT:         sc.Histogram("ppss_exchange_rtt_ms"),
	}
}

// exchangeKey identifies one shuffle request for replay suppression.
type exchangeKey struct {
	from identity.NodeID
	seq  uint32
}

type pendingExchange struct {
	partner Entry
	sent    []pss.Entry[Entry]
	started time.Duration
	timer   transport.Timer
}

type electionState struct {
	started time.Duration
	// lastChange is when the max proposal last changed; resolution
	// requires the maximum to have been stable for a while, so the
	// aggregation has actually converged before anyone self-elects.
	lastChange time.Duration
	proposal   uint64
	proposer   Entry
}

type pcpState struct {
	entry  Entry
	since  time.Duration
	lastOK time.Duration
}

// Instance is one node's membership in one private group.
type Instance struct {
	r    *Router
	cfg  Config
	rt   transport.Transport
	grp  GroupID
	name string

	passport Passport
	history  *KeyHistory

	groupPriv crypt.PrivateKey // non-nil iff this node is a leader
	leaderID  identity.NodeID
	lastHB    time.Duration
	election  *electionState
	announce  *keyAnnounce
	announced time.Duration

	view    *pss.View[Entry]
	pending map[uint32]*pendingExchange
	seq     uint32
	pcp     map[identity.NodeID]*pcpState
	// scratch is the reusable sample buffer for gossip hot paths:
	// shuffle-serving samples are consumed synchronously (encoded and
	// merged before the handler returns), so one per-instance slice
	// replaces a per-shuffle allocation.
	scratch []pss.Entry[Entry]
	// selfDigest and digests implement the application digest
	// piggyback (pub/sub subscription filters): own digest to ship,
	// and the bounded table of digests learned from shuffles.
	selfDigest *SubDigest
	digests    map[identity.NodeID]SubDigest
	// served remembers recently answered shuffle requests by (sender,
	// seq), making the serving side idempotent: a duplicated request is
	// not merged into the view a second time. The response side is
	// already idempotent through the pending map.
	served *dedup.Seen[exchangeKey]

	ticker    transport.Ticker
	pcpTicker transport.Ticker
	stopped   bool

	// OnMessage delivers application payloads with the sender's entry,
	// so the application can answer through a single WCL path (§V-G).
	// Payloads whose first byte matches a Subscribe tag are routed to
	// that subscriber instead.
	OnMessage func(from Entry, payload []byte)
	handlers  map[uint8]func(from Entry, payload []byte)
	// AuthorizeJoin, if set on a leader, vetoes admissions (the
	// authorizeJoin(id, public key) hook of Fig 1).
	AuthorizeJoin func(id identity.NodeID, key crypt.PublicKey) bool
	// OnExchangeRTT, if set, observes the round-trip time of each
	// completed view exchange (the quantity Fig 7 plots).
	OnExchangeRTT func(rtt time.Duration)

	met instMet
	obs *obs.Scope
}

func newInstance(r *Router, g GroupID, name string, history *KeyHistory, passport Passport) *Instance {
	// Metric labels must not leak what relays cannot see anyway, but a
	// node's own group memberships are local knowledge; the short group
	// tag (not the name, which may be absent on joiners) scopes the
	// instruments.
	sc := r.cfg.Obs.With("group", g.String())
	return &Instance{
		r:        r,
		cfg:      r.cfg,
		rt:       r.rt,
		grp:      g,
		name:     name,
		history:  history,
		passport: passport,
		view:     pss.NewView[Entry](r.cfg.ViewSize),
		pending:  make(map[uint32]*pendingExchange),
		pcp:      make(map[identity.NodeID]*pcpState),
		served:   dedup.New[exchangeKey](512),
		met:      newInstMet(sc),
		obs:      sc,
	}
}

// Obs returns the instance's observability scope (node + group labels);
// group applications (T-Chord, broadcast) hang their instruments off
// it. Nil when the stack runs unobserved.
func (in *Instance) Obs() *obs.Scope { return in.obs }

// Stats returns a snapshot of the instance's counters.
func (in *Instance) Stats() InstanceStats {
	return InstanceStats{
		ExchangesInitiated:  in.met.exchangesInitiated.Value(),
		ExchangesCompleted:  in.met.exchangesCompleted.Value(),
		ExchangesTimedOut:   in.met.exchangesTimedOut.Value(),
		ExchangesServed:     in.met.exchangesServed.Value(),
		BadPassports:        in.met.badPassports.Value(),
		SendFailures:        in.met.sendFailures.Value(),
		JoinsServed:         in.met.joinsServed.Value(),
		ElectionsStarted:    in.met.electionsStarted.Value(),
		BecameLeader:        in.met.becameLeader.Value(),
		AnnouncesAccepted:   in.met.announcesAccepted.Value(),
		AppDelivered:        in.met.appDelivered.Value(),
		PCPRefreshes:        in.met.pcpRefreshes.Value(),
		PCPDropped:          in.met.pcpDropped.Value(),
		DupExchangesDropped: in.met.dupExchangesDropped.Value(),
	}
}

// Group returns the group identifier.
func (in *Instance) Group() GroupID { return in.grp }

// IsLeader reports whether this node holds the group private key.
func (in *Instance) IsLeader() bool { return in.groupPriv != nil }

// LeaderID returns the best-known leader.
func (in *Instance) LeaderID() identity.NodeID { return in.leaderID }

// Epoch returns the current group key epoch.
func (in *Instance) Epoch() uint32 { return in.history.Epoch() }

// Passport returns this member's passport.
func (in *Instance) Passport() Passport { return in.passport }

// View returns the private view entries.
func (in *Instance) View() []pss.Entry[Entry] { return in.view.Entries() }

// ViewIDs returns the member IDs currently in the private view.
func (in *Instance) ViewIDs() []identity.NodeID { return in.view.IDs() }

// GetPeer returns a uniformly random private-view entry — the getPeer()
// of the PPSS API (Fig 1).
func (in *Instance) GetPeer() (Entry, bool) {
	e, ok := in.view.Random(in.rt.Rand())
	return e.Val, ok
}

// Lookup returns the freshest coordinates known for a member: the
// persistent pool first, then the private view.
func (in *Instance) Lookup(id identity.NodeID) (Entry, bool) {
	if st, ok := in.pcp[id]; ok {
		return st.entry, true
	}
	if e, ok := in.view.Get(id); ok {
		return e.Val, true
	}
	return Entry{}, false
}

func (in *Instance) start() {
	in.ticker = in.rt.EveryJitter(in.cfg.Cycle, in.cfg.Jitter, in.cycle)
	in.pcpTicker = in.rt.EveryJitter(in.cfg.PCPRefresh, in.cfg.PCPRefresh/4, in.refreshPCP)
}

func (in *Instance) stop() {
	if in.stopped {
		return
	}
	in.stopped = true
	in.ticker.Stop()
	in.pcpTicker.Stop()
	for _, p := range in.pending {
		p.timer.Cancel()
	}
}

func (in *Instance) selectOpts() pss.SelectOpts {
	return pss.SelectOpts{Capacity: in.cfg.ViewSize, Self: in.r.id()}
}

// cycle runs one private gossip round over a WCL route (§IV-B, Fig 4).
func (in *Instance) cycle() {
	if in.stopped {
		return
	}
	in.tickElection()
	in.view.AgeAll()
	partner, ok := in.view.Oldest()
	if !ok {
		return
	}
	in.view.Remove(partner.Val.ID)
	sent := in.buffer(partner.Val.ID)
	in.seq++
	seq := in.seq
	m := shuffleMsg{
		Group:    in.grp,
		Passport: in.passport,
		Seq:      seq,
		From:     in.r.SelfEntry(),
		Entries:  sent,
		Extras:   in.extras(sent),
	}
	in.met.exchangesInitiated.Inc()
	p := &pendingExchange{partner: partner.Val, sent: sent, started: in.rt.Now()}
	p.timer = in.rt.After(in.cfg.RespTimeout, func() {
		if in.pending[seq] == p {
			delete(in.pending, seq)
			in.met.exchangesTimedOut.Inc()
		}
	})
	in.pending[seq] = p
	in.wclSend(partner.Val, m.encode(msgShuffleReq, in.cfg.KeyBlobSize), func(res wcl.Result) {
		if res.Outcome == wcl.Failed {
			// The WCL exhausted its alternatives: the partner is
			// considered failed and stays out of the private view
			// (footnote 3 of the paper).
			in.met.sendFailures.Inc()
		}
	})
}

// buffer assembles the shuffle buffer: self (age 0) plus a sample. The
// sample lands in the instance scratch slice; the returned buffer is a
// fresh copy because the initiator retains it until the response.
func (in *Instance) buffer(exclude identity.NodeID) []pss.Entry[Entry] {
	in.scratch = in.view.SampleInto(in.scratch, in.rt.Rand(), in.cfg.ExchangeSize-1, exclude)
	buf := make([]pss.Entry[Entry], 0, len(in.scratch)+1)
	buf = append(buf, pss.Entry[Entry]{Val: in.r.SelfEntry()})
	buf = append(buf, in.scratch...)
	return buf
}

// checkPassport validates a message's passport and its binding to the
// claimed sender.
func (in *Instance) checkPassport(p Passport, from identity.NodeID) bool {
	if p.Member != from || p.Verify(in.r.cpu(), in.grp, in.history) != nil {
		in.met.badPassports.Inc()
		return false
	}
	return true
}

func (in *Instance) handleShuffleReq(m *shuffleMsg) {
	if in.stopped {
		return
	}
	// Key announcements are authenticated on their own (old-epoch
	// passport + signature) and must be absorbed before the passport
	// check: right after an election the new leader's passport is only
	// verifiable once its announced key is installed.
	if m.Extras.Announce != nil {
		in.acceptAnnounce(m.Extras.Announce)
	}
	if !in.checkPassport(m.Passport, m.From.ID) {
		return
	}
	// A replayed or duplicated request must not be merged twice: the
	// second merge would re-insert entries the first exchange already
	// traded away, skewing the view towards the replayed sample.
	if in.served.Add(exchangeKey{from: m.From.ID, seq: m.Seq}) {
		in.met.dupExchangesDropped.Inc()
		return
	}
	in.absorbExtras(m.Extras)
	in.absorbDigests(m.Extras.Digests, m.From, m.Entries)
	// Serving-side sample: consumed synchronously (encoded below,
	// merged right after), so it reuses the instance scratch slice
	// instead of allocating per shuffle.
	in.scratch = in.view.SampleInto(in.scratch, in.rt.Rand(), in.cfg.ExchangeSize, m.From.ID)
	sent := in.scratch
	resp := shuffleMsg{
		Group:    in.grp,
		Passport: in.passport,
		Seq:      m.Seq,
		From:     in.r.SelfEntry(),
		Entries:  sent,
		Extras:   in.extras(sent),
	}
	in.wclSend(m.From, resp.encode(msgShuffleResp, in.cfg.KeyBlobSize), nil)
	pss.MergeCyclon(in.view, sent, m.Entries, in.selectOpts())
	in.met.exchangesServed.Inc()
}

func (in *Instance) handleShuffleResp(m *shuffleMsg) {
	if in.stopped {
		return
	}
	if m.Extras.Announce != nil {
		in.acceptAnnounce(m.Extras.Announce)
	}
	if !in.checkPassport(m.Passport, m.From.ID) {
		return
	}
	p, ok := in.pending[m.Seq]
	if !ok || p.partner.ID != m.From.ID {
		return
	}
	delete(in.pending, m.Seq)
	p.timer.Cancel()
	in.absorbExtras(m.Extras)
	in.absorbDigests(m.Extras.Digests, m.From, m.Entries)
	pss.MergeCyclon(in.view, p.sent, m.Entries, in.selectOpts())
	in.met.exchangesCompleted.Inc()
	in.met.exchangeRTT.ObserveDuration(in.rt.Now() - p.started)
	if in.OnExchangeRTT != nil {
		in.OnExchangeRTT(in.rt.Now() - p.started)
	}
}

// handleJoinReq admits a new member (leaders only).
func (in *Instance) handleJoinReq(m *joinReq) {
	if in.stopped || !in.IsLeader() {
		return
	}
	if m.Accr.Invitee != m.From.ID || m.Accr.Verify(in.r.cpu(), in.history) != nil {
		in.met.badPassports.Inc()
		return
	}
	if in.AuthorizeJoin != nil && !in.AuthorizeJoin(m.From.ID, m.From.PubKey) {
		return
	}
	passport, err := IssuePassport(in.r.cpu(), in.groupPriv, in.grp, m.From.ID, in.history.Epoch())
	if err != nil {
		return
	}
	resp := joinResp{
		Group:    in.grp,
		Passport: passport,
		History:  in.historyKeys(),
		Leader:   in.r.SelfEntry(),
		Entries:  in.view.Sample(in.rt.Rand(), in.cfg.ExchangeSize, m.From.ID),
	}
	in.r.w.Send(m.From.Dest(), resp.encode(in.cfg.KeyBlobSize), nil)
	in.view.Insert(m.From, 0)
	in.met.joinsServed.Inc()
}

func (in *Instance) historyKeys() []crypt.PublicKey {
	out := make([]crypt.PublicKey, in.history.Len())
	for i := range out {
		out[i] = in.history.At(uint32(i))
	}
	return out
}

// Invite issues an accreditation for invitee (leaders only) and returns
// it with this leader's entry-point coordinates, to be delivered
// out-of-band (e-mail, IM, another application — §IV-A).
func (in *Instance) Invite(invitee identity.NodeID) (Accreditation, Entry, error) {
	if !in.IsLeader() {
		return Accreditation{}, Entry{}, errors.New("ppss: only leaders can invite")
	}
	accr, err := IssueAccreditation(in.r.cpu(), in.groupPriv, in.grp, invitee, in.history.Epoch())
	if err != nil {
		return Accreditation{}, Entry{}, err
	}
	return accr, in.r.SelfEntry(), nil
}

// wclSend routes one encoded message to a member. Persistent-pool
// members — and any destination that already has an established
// circuit — ride the WCL circuit layer when PoolCircuits is on (the
// circuit transparently falls back to one-shot sends when it breaks);
// everything else pays the ordinary one-shot onion path.
func (in *Instance) wclSend(e Entry, encoded []byte, done func(wcl.Result)) {
	if *in.cfg.PoolCircuits {
		if _, pooled := in.pcp[e.ID]; pooled || in.r.w.HasCircuit(e.ID) {
			in.r.w.SendCircuit(e.Dest(), encoded, done)
			return
		}
	}
	in.r.w.Send(e.Dest(), encoded, done)
}

// Send delivers an application payload to a group member over a WCL
// route, shipping this node's passport and entry. done is optional.
// Pooled members (MakePersistent) are reached over a circuit.
func (in *Instance) Send(to Entry, payload []byte, done func(wcl.Result)) {
	m := appMsg{Group: in.grp, Passport: in.passport, From: in.r.SelfEntry(), Payload: payload}
	in.wclSend(to, m.encode(in.cfg.KeyBlobSize), func(res wcl.Result) {
		if res.Outcome == wcl.Failed {
			in.met.sendFailures.Inc()
		}
		if done != nil {
			done(res)
		}
	})
}

// SendCircuit delivers an application payload to a group member over a
// pooled WCL circuit regardless of pool membership: the first send
// establishes the circuit, subsequent ones ride symmetric cells. This
// is the fan-out path of the pub/sub layer, whose repeated envelope
// traffic toward the same matched subscribers is exactly the workload
// circuits amortize. The circuit layer transparently falls back to a
// one-shot onion when establishment fails.
func (in *Instance) SendCircuit(to Entry, payload []byte, done func(wcl.Result)) {
	m := appMsg{Group: in.grp, Passport: in.passport, From: in.r.SelfEntry(), Payload: payload}
	in.r.w.SendCircuit(to.Dest(), m.encode(in.cfg.KeyBlobSize), func(res wcl.Result) {
		if res.Outcome == wcl.Failed {
			in.met.sendFailures.Inc()
		}
		if done != nil {
			done(res)
		}
	})
}

// SendTo is Send to a member looked up by ID (persistent pool first).
func (in *Instance) SendTo(id identity.NodeID, payload []byte, done func(wcl.Result)) error {
	e, ok := in.Lookup(id)
	if !ok {
		return fmt.Errorf("ppss: member %v not known", id)
	}
	in.Send(e, payload, done)
	return nil
}

func (in *Instance) handleApp(m *appMsg) {
	if in.stopped || !in.checkPassport(m.Passport, m.From.ID) {
		return
	}
	in.met.appDelivered.Inc()
	if len(m.Payload) > 0 {
		if h := in.handlers[m.Payload[0]]; h != nil {
			h(m.From, m.Payload)
			return
		}
	}
	if in.OnMessage != nil {
		in.OnMessage(m.From, m.Payload)
	}
}

// Subscribe routes application payloads whose first byte equals tag to
// fn, letting several gossip protocols (a DHT, a broadcast layer, an
// aggregation service — the "Applications and Gossip-based protocols"
// box of Fig 1) share one group instance. Passing a nil fn removes the
// subscription.
func (in *Instance) Subscribe(tag uint8, fn func(from Entry, payload []byte)) {
	if in.handlers == nil {
		in.handlers = make(map[uint8]func(Entry, []byte))
	}
	if fn == nil {
		delete(in.handlers, tag)
		return
	}
	in.handlers[tag] = fn
}

// MakePersistent pins a member in the private connection pool: the
// instance refreshes its helper set periodically so the application can
// keep communicating with it even after it rotates out of the view
// (§IV-C, the makePersistent(id) of Fig 1).
func (in *Instance) MakePersistent(e Entry) {
	if e.ID == in.r.id() {
		return
	}
	if st, ok := in.pcp[e.ID]; ok {
		st.entry = e
		return
	}
	in.pcp[e.ID] = &pcpState{entry: e, since: in.rt.Now(), lastOK: in.rt.Now()}
}

// DropPersistent removes a member from the pool.
func (in *Instance) DropPersistent(id identity.NodeID) { delete(in.pcp, id) }

// PersistentIDs lists the pooled members.
func (in *Instance) PersistentIDs() []identity.NodeID {
	out := make([]identity.NodeID, 0, len(in.pcp))
	for id := range in.pcp {
		out = append(out, id)
	}
	return out
}

// refreshPCP pings every pooled member so both sides refresh helper
// sets and keep NAT routes warm. A member that has not answered for
// several refresh periods is considered failed and dropped from the
// pool (the application observes it via PersistentIDs).
func (in *Instance) refreshPCP() {
	if in.stopped {
		return
	}
	now := in.rt.Now()
	for id, st := range in.pcp {
		if now-st.lastOK > 4*in.cfg.PCPRefresh {
			delete(in.pcp, id)
			in.met.pcpDropped.Inc()
			continue
		}
		in.seq++
		m := pcpMsg{Group: in.grp, Passport: in.passport, Seq: in.seq, From: in.r.SelfEntry()}
		in.wclSend(st.entry, m.encode(msgPCPPing, in.cfg.KeyBlobSize), nil)
		in.met.pcpRefreshes.Inc()
	}
}

func (in *Instance) handlePCP(kind uint8, m *pcpMsg) {
	if in.stopped || !in.checkPassport(m.Passport, m.From.ID) {
		return
	}
	if kind == msgPCPPing {
		resp := pcpMsg{Group: in.grp, Passport: in.passport, Seq: m.Seq, From: in.r.SelfEntry()}
		in.wclSend(m.From, resp.encode(msgPCPPong, in.cfg.KeyBlobSize), nil)
		// A ping from a pooled member refreshes our copy of its entry.
		if st, ok := in.pcp[m.From.ID]; ok {
			st.entry = m.From
			st.lastOK = in.rt.Now()
		}
		return
	}
	if st, ok := in.pcp[m.From.ID]; ok {
		st.entry = m.From
		st.lastOK = in.rt.Now()
	}
}

// SelfEntry returns this member's current private-view entry (fresh
// helper set included), for applications that ship their own
// coordinates in queries (§V-G).
func (in *Instance) SelfEntry() Entry { return in.r.SelfEntry() }

// GroupRootKey returns the epoch-0 group public key: stable
// group-internal key material that survives leader re-election, from
// which applications derive content keys (the pub/sub topic keys).
func (in *Instance) GroupRootKey() crypt.PublicKey { return in.history.At(0) }

// CPU returns the node's crypto CPU meter, so group applications
// charge their symmetric work like every protocol layer.
func (in *Instance) CPU() *crypt.CPUMeter { return in.r.cpu() }

// Config returns the instance's effective configuration.
func (in *Instance) Config() Config { return in.cfg }

// Sim returns the simulator driving this instance's node.
func (in *Instance) Runtime() transport.Transport { return in.rt }
