package ppss

import (
	"fmt"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/keyss"
	"whisper/internal/pss"
	"whisper/internal/wire"
)

// PPSS message kinds (first byte of every WCL payload the PPSS sends).
const (
	msgShuffleReq uint8 = 0x50 + iota // 'P' range, distinct from WCL tags
	msgShuffleResp
	msgJoinReq
	msgJoinResp
	msgApp
	msgPCPPing
	msgPCPPong
)

// extras piggybacks leader-liveness and election state on every
// shuffle, implementing §IV-A's heartbeat dissemination and the
// gossip aggregation of the maximum proposed value.
type extras struct {
	// HBAge is the sender's estimate of the time since the last leader
	// heartbeat.
	HBAge time.Duration
	// Epoch is the sender's current key epoch.
	Epoch uint32
	// Proposal is the highest election proposal seen (0 = no election).
	Proposal uint64
	// Proposer is the private-view entry of the proposal's originator.
	Proposer *Entry
	// Announce carries a new group key after an election.
	Announce *keyAnnounce
	// Digests piggybacks application subscription digests (§ pub/sub):
	// the sender's own plus those of the entries shipped in the same
	// shuffle. Empty unless an application installed a digest, so the
	// feature is zero-cost (one count byte) when unused.
	Digests []SubDigest
}

// keyAnnounce propagates a new group public key, signed by the new
// leader's identity key and accompanied by its (old-epoch) passport.
type keyAnnounce struct {
	Epoch     uint32 // the new epoch
	NewKey    crypt.PublicKey
	Leader    Passport
	LeaderKey crypt.PublicKey
	Sig       []byte
}

func announceBody(group GroupID, epoch uint32, newKey crypt.PublicKey) []byte {
	w := wire.NewWriter(64)
	w.String("whisper-key-announce")
	w.U64(uint64(group))
	w.U32(epoch)
	w.Bytes32(keyDER(newKey))
	return w.Bytes()
}

func keyDER(k crypt.PublicKey) []byte {
	if k == nil {
		return nil
	}
	return crypt.MarshalPublicKey(k)
}

func (x extras) encode(w *wire.Writer, keyBlob int) {
	w.U64(uint64(x.HBAge))
	w.U32(x.Epoch)
	w.U64(x.Proposal)
	if x.Proposer != nil {
		w.Bool(true)
		x.Proposer.encode(w, keyBlob)
	} else {
		w.Bool(false)
	}
	if x.Announce != nil {
		w.Bool(true)
		w.U32(x.Announce.Epoch)
		keyss.EncodeKey(w, x.Announce.NewKey, keyBlob)
		x.Announce.Leader.encode(w)
		keyss.EncodeKey(w, x.Announce.LeaderKey, keyBlob)
		w.Bytes16(x.Announce.Sig)
	} else {
		w.Bool(false)
	}
	w.U8(uint8(len(x.Digests)))
	for _, d := range x.Digests {
		w.U64(uint64(d.Owner))
		w.U32(d.Version)
		w.Bytes16(d.Blob)
	}
}

func decodeExtras(r *wire.Reader, keyBlob int) extras {
	var x extras
	x.HBAge = time.Duration(r.U64())
	x.Epoch = r.U32()
	x.Proposal = r.U64()
	if r.Bool() {
		e := decodeEntry(r, keyBlob)
		x.Proposer = &e
	}
	if r.Bool() {
		a := &keyAnnounce{}
		a.Epoch = r.U32()
		a.NewKey = keyss.DecodeKey(r, keyBlob)
		a.Leader = decodePassport(r)
		a.LeaderKey = keyss.DecodeKey(r, keyBlob)
		a.Sig = r.Bytes16()
		x.Announce = a
	}
	nd := int(r.U8())
	if nd > maxDigestsPerMsg {
		nd = maxDigestsPerMsg
	}
	for i := 0; i < nd; i++ {
		var d SubDigest
		d.Owner = identity.NodeID(r.U64())
		d.Version = r.U32()
		d.Blob = r.Bytes16()
		if r.Err() != nil {
			break
		}
		if len(d.Blob) > maxDigestBlob {
			continue
		}
		x.Digests = append(x.Digests, d)
	}
	return x
}

// shuffleMsg is a PPSS view exchange (request or response).
type shuffleMsg struct {
	Group    GroupID
	Passport Passport
	Seq      uint32
	From     Entry
	Entries  []pss.Entry[Entry]
	Extras   extras
}

func (m *shuffleMsg) encode(kind uint8, keyBlob int) []byte {
	w := wire.NewWriter(256 + len(m.Entries)*(keyBlob*4+64))
	w.U8(kind)
	w.U64(uint64(m.Group))
	m.Passport.encode(w)
	w.U32(m.Seq)
	m.From.encode(w, keyBlob)
	w.U8(uint8(len(m.Entries)))
	for _, e := range m.Entries {
		e.Val.encode(w, keyBlob)
		w.U16(e.Age)
	}
	m.Extras.encode(w, keyBlob)
	return w.Bytes()
}

func decodeShuffleMsg(r *wire.Reader, keyBlob int) (*shuffleMsg, error) {
	m := &shuffleMsg{}
	m.Group = GroupID(r.U64())
	m.Passport = decodePassport(r)
	m.Seq = r.U32()
	m.From = decodeEntry(r, keyBlob)
	n := int(r.U8())
	if n > 32 {
		n = 32
	}
	for i := 0; i < n; i++ {
		e := decodeEntry(r, keyBlob)
		age := r.U16()
		if r.Err() != nil {
			break
		}
		m.Entries = append(m.Entries, pss.Entry[Entry]{Val: e, Age: age})
	}
	m.Extras = decodeExtras(r, keyBlob)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ppss: decoding shuffle: %w", err)
	}
	return m, nil
}

// joinReq asks a leader for admission (§IV-A).
type joinReq struct {
	Group GroupID
	Accr  Accreditation
	From  Entry
}

func (m *joinReq) encode(keyBlob int) []byte {
	w := wire.NewWriter(256 + keyBlob*4)
	w.U8(msgJoinReq)
	m.Accr.encode(w)
	m.From.encode(w, keyBlob)
	return w.Bytes()
}

func decodeJoinReq(r *wire.Reader, keyBlob int) (*joinReq, error) {
	m := &joinReq{}
	m.Accr = decodeAccreditation(r)
	m.Group = m.Accr.Group
	m.From = decodeEntry(r, keyBlob)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ppss: decoding join request: %w", err)
	}
	return m, nil
}

// joinResp grants admission: the new member's passport, the group key
// history, and a bootstrap sample of the leader's private view.
type joinResp struct {
	Group    GroupID
	Passport Passport
	History  []crypt.PublicKey
	Leader   Entry
	Entries  []pss.Entry[Entry]
}

func (m *joinResp) encode(keyBlob int) []byte {
	w := wire.NewWriter(512 + keyBlob*(len(m.History)+len(m.Entries)*4))
	w.U8(msgJoinResp)
	w.U64(uint64(m.Group))
	m.Passport.encode(w)
	w.U8(uint8(len(m.History)))
	for _, k := range m.History {
		keyss.EncodeKey(w, k, keyBlob)
	}
	m.Leader.encode(w, keyBlob)
	w.U8(uint8(len(m.Entries)))
	for _, e := range m.Entries {
		e.Val.encode(w, keyBlob)
		w.U16(e.Age)
	}
	return w.Bytes()
}

func decodeJoinResp(r *wire.Reader, keyBlob int) (*joinResp, error) {
	m := &joinResp{}
	m.Group = GroupID(r.U64())
	m.Passport = decodePassport(r)
	nh := int(r.U8())
	if nh > 64 {
		nh = 64
	}
	for i := 0; i < nh; i++ {
		m.History = append(m.History, keyss.DecodeKey(r, keyBlob))
	}
	m.Leader = decodeEntry(r, keyBlob)
	n := int(r.U8())
	if n > 32 {
		n = 32
	}
	for i := 0; i < n; i++ {
		e := decodeEntry(r, keyBlob)
		age := r.U16()
		if r.Err() != nil {
			break
		}
		m.Entries = append(m.Entries, pss.Entry[Entry]{Val: e, Age: age})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ppss: decoding join response: %w", err)
	}
	return m, nil
}

// appMsg carries application payloads between group members, shipping
// the sender's entry so the destination can reply with a single WCL
// path (as the T-Chord queries of §V-G do).
type appMsg struct {
	Group    GroupID
	Passport Passport
	From     Entry
	Payload  []byte
}

func (m *appMsg) encode(keyBlob int) []byte {
	w := wire.NewWriter(256 + keyBlob*4 + len(m.Payload))
	w.U8(msgApp)
	w.U64(uint64(m.Group))
	m.Passport.encode(w)
	m.From.encode(w, keyBlob)
	w.Bytes32(m.Payload)
	return w.Bytes()
}

func decodeAppMsg(r *wire.Reader, keyBlob int) (*appMsg, error) {
	m := &appMsg{}
	m.Group = GroupID(r.U64())
	m.Passport = decodePassport(r)
	m.From = decodeEntry(r, keyBlob)
	m.Payload = r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ppss: decoding app message: %w", err)
	}
	return m, nil
}

// pcpMsg refreshes a persistent path (§IV-C): ping carries the sender's
// fresh entry; pong answers with the target's fresh entry (updated
// helper set), keeping the route warm transparently to the application.
type pcpMsg struct {
	Group    GroupID
	Passport Passport
	Seq      uint32
	From     Entry
}

func (m *pcpMsg) encode(kind uint8, keyBlob int) []byte {
	w := wire.NewWriter(128 + keyBlob*4)
	w.U8(kind)
	w.U64(uint64(m.Group))
	m.Passport.encode(w)
	w.U32(m.Seq)
	m.From.encode(w, keyBlob)
	return w.Bytes()
}

func decodePCPMsg(r *wire.Reader, keyBlob int) (*pcpMsg, error) {
	m := &pcpMsg{}
	m.Group = GroupID(r.U64())
	m.Passport = decodePassport(r)
	m.Seq = r.U32()
	m.From = decodeEntry(r, keyBlob)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ppss: decoding pcp message: %w", err)
	}
	return m, nil
}

// groupOf extracts the group ID of any PPSS message without decoding
// the rest, for router dispatch.
func groupOf(kind uint8, r *wire.Reader) (GroupID, bool) {
	switch kind {
	case msgShuffleReq, msgShuffleResp, msgJoinResp, msgApp, msgPCPPing, msgPCPPong:
		return GroupID(r.U64()), r.Err() == nil
	case msgJoinReq:
		// joinReq starts with the accreditation, whose first field is
		// the group.
		return GroupID(r.U64()), r.Err() == nil
	default:
		return 0, false
	}
}
