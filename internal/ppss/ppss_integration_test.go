package ppss_test

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/wcl"
)

// fastPPSS shortens the paper's 1-minute PPSS cycle so integration
// tests converge quickly in virtual time.
func fastPPSS() *ppss.Config {
	return &ppss.Config{
		Cycle:            30 * time.Second,
		RespTimeout:      15 * time.Second,
		JoinTimeout:      20 * time.Second,
		PCPRefresh:       time.Minute,
		HeartbeatTimeout: 3 * time.Minute,
		ElectionDuration: 4 * time.Minute, // ≥ 8 gossip cycles for the max to spread

		KeyBlobSize: 256,
	}
}

func buildPPSSWorld(t testing.TB, seed int64, n int) *sim.World {
	t.Helper()
	w, err := sim.NewWorld(sim.Options{
		Seed:     seed,
		N:        n,
		NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		PPSS:     fastPPSS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute) // converge the public underlay
	return w
}

// formGroup creates a group at members[0] and joins the rest through
// invitations, returning when all joins completed.
func formGroup(t testing.TB, w *sim.World, name string, members []*sim.Node) *ppss.Instance {
	t.Helper()
	leaderInst, err := members[0].PPSS.CreateGroup(name)
	if err != nil {
		t.Fatal(err)
	}
	joined := map[identity.NodeID]bool{members[0].ID(): true}
	var tryJoin func(m *sim.Node, attempt int)
	tryJoin = func(m *sim.Node, attempt int) {
		accr, entry, err := leaderInst.Invite(m.ID())
		if err != nil {
			t.Fatal(err)
		}
		m.PPSS.Join(name, accr, entry, func(inst *ppss.Instance, err error) {
			if err != nil {
				if attempt < 3 {
					tryJoin(m, attempt+1) // re-invite, as a user would
					return
				}
				t.Errorf("join of %v failed after retries: %v", m.ID(), err)
				return
			}
			joined[m.ID()] = true
		})
	}
	for _, m := range members[1:] {
		tryJoin(m, 1)
		w.Sim.RunFor(5 * time.Second) // stagger joins
	}
	w.Sim.RunFor(3 * time.Minute)
	if len(joined) != len(members) {
		t.Fatalf("only %d/%d members joined", len(joined), len(members))
	}
	return leaderInst
}

func groupInstances(members []*sim.Node, g ppss.GroupID) []*ppss.Instance {
	var out []*ppss.Instance
	for _, m := range members {
		if inst := m.PPSS.Instance(g); inst != nil {
			out = append(out, inst)
		}
	}
	return out
}

func TestPrivateGroupLifecycle(t *testing.T) {
	w := buildPPSSWorld(t, 31, 120)
	live := w.Live()
	members := live[:24]
	memberIDs := map[identity.NodeID]bool{}
	for _, m := range members {
		memberIDs[m.ID()] = true
	}

	// The attacker taps every link looking for the group identifier and
	// passports in the clear.
	g := ppss.GroupIDFromName("ops-room")
	gidBytes := make([]byte, 8)
	binary.BigEndian.PutUint64(gidBytes, uint64(g))
	leakedGroupID := false
	w.Net.SetTap(func(dg netem.Datagram) {
		if bytes.Contains(dg.Payload, gidBytes) {
			leakedGroupID = true
		}
	})

	formGroup(t, w, "ops-room", members)
	w.Sim.RunFor(12 * time.Minute) // ~24 PPSS cycles

	insts := groupInstances(members, g)
	if len(insts) != len(members) {
		t.Fatalf("only %d/%d members have instances", len(insts), len(members))
	}

	populated, exchanges := 0, uint64(0)
	for _, inst := range insts {
		view := inst.ViewIDs()
		if len(view) >= 3 {
			populated++
		}
		for _, id := range view {
			if !memberIDs[id] {
				t.Fatalf("non-member %v leaked into a private view", id)
			}
		}
		exchanges += inst.Stats().ExchangesCompleted
		if inst.Stats().BadPassports != 0 {
			t.Fatalf("valid member saw %d bad passports", inst.Stats().BadPassports)
		}
	}
	if populated < len(insts)*8/10 {
		t.Fatalf("only %d/%d private views populated", populated, len(insts))
	}
	if exchanges == 0 {
		t.Fatal("no private exchange ever completed")
	}
	if leakedGroupID {
		t.Fatal("group identifier appeared in clear on a link")
	}

	// Non-members must have no instance and silently drop group traffic.
	for _, n := range live[30:40] {
		if len(n.PPSS.Instances()) != 0 {
			t.Fatal("non-member has a PPSS instance")
		}
	}
}

func TestAppMessagingInsideGroup(t *testing.T) {
	w := buildPPSSWorld(t, 32, 100)
	members := w.Live()[:16]
	g := ppss.GroupIDFromName("chat")
	formGroup(t, w, "chat", members)
	w.Sim.RunFor(8 * time.Minute)

	insts := groupInstances(members, g)
	sender := insts[1]
	peer, ok := sender.GetPeer()
	if !ok {
		t.Fatal("sender has an empty private view")
	}
	var rcvInst *ppss.Instance
	for _, m := range members {
		if m.ID() == peer.ID {
			rcvInst = m.PPSS.Instance(g)
		}
	}
	if rcvInst == nil {
		t.Fatalf("peer %v not found among members", peer.ID)
	}
	var gotFrom identity.NodeID
	var gotPayload []byte
	rcvInst.OnMessage = func(from ppss.Entry, payload []byte) {
		gotFrom = from.ID
		gotPayload = payload
	}
	var res *wcl.Result
	sender.Send(peer, []byte("hello private world"), func(r wcl.Result) { res = &r })
	w.Sim.RunFor(time.Minute)
	if res == nil || res.Outcome == wcl.Failed {
		t.Fatalf("app send failed: %+v", res)
	}
	if string(gotPayload) != "hello private world" {
		t.Fatalf("payload = %q", gotPayload)
	}
	if gotFrom == identity.Nil {
		t.Fatal("sender entry missing")
	}
	// Reply using the shipped entry (the §V-G pattern).
	senderNode := findMember(members, gotFrom)
	replied := false
	senderNode.PPSS.Instance(g).OnMessage = func(from ppss.Entry, payload []byte) {
		replied = string(payload) == "ack"
	}
	var fromEntry ppss.Entry
	fromEntry, ok = rcvInst.Lookup(gotFrom)
	if !ok {
		// Not in view: the reply uses the entry shipped with the message
		// itself — emulate by reconstructing from the OnMessage capture.
		t.Skip("sender rotated out of view; reply path exercised elsewhere")
	}
	rcvInst.Send(fromEntry, []byte("ack"), nil)
	w.Sim.RunFor(time.Minute)
	if !replied {
		t.Fatal("reply never arrived")
	}
}

func contains(ids []identity.NodeID, id identity.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func findMember(members []*sim.Node, id identity.NodeID) *sim.Node {
	for _, m := range members {
		if m.ID() == id {
			return m
		}
	}
	return nil
}

func TestForgedAccreditationRejected(t *testing.T) {
	w := buildPPSSWorld(t, 33, 80)
	members := w.Live()[:8]
	g := ppss.GroupIDFromName("sealed")
	leader := formGroup(t, w, "sealed", members)

	// An outsider forges an accreditation with its own key.
	outsider := w.Live()[20]
	forgedKey := outsider.Nylon.Identity().Key
	accr, err := ppss.IssueAccreditation(nil, forgedKey, g, outsider.ID(), 0)
	if err != nil {
		t.Fatal(err)
	}
	entry := leaderEntryOf(t, w, members[0], g)
	var joinErr error
	done := false
	outsider.PPSS.Join("sealed", accr, entry, func(inst *ppss.Instance, err error) {
		joinErr = err
		done = true
	})
	w.Sim.RunFor(time.Minute)
	if !done {
		t.Fatal("join callback never fired")
	}
	if joinErr == nil {
		t.Fatal("forged accreditation was accepted")
	}
	if leader.Stats().BadPassports == 0 {
		t.Fatal("leader did not record the forged credential")
	}
	if outsider.PPSS.Instance(g) != nil {
		t.Fatal("outsider obtained an instance")
	}
}

func leaderEntryOf(t *testing.T, w *sim.World, leader *sim.Node, g ppss.GroupID) ppss.Entry {
	t.Helper()
	inst := leader.PPSS.Instance(g)
	if inst == nil {
		t.Fatal("no leader instance")
	}
	// Ask the leader to mint a throwaway invitation to obtain its
	// current entry-point coordinates.
	_, entry, err := inst.Invite(12345)
	if err != nil {
		t.Fatal(err)
	}
	return entry
}

func TestPersistentPaths(t *testing.T) {
	w := buildPPSSWorld(t, 34, 100)
	members := w.Live()[:16]
	g := ppss.GroupIDFromName("pcp")
	formGroup(t, w, "pcp", members)
	w.Sim.RunFor(8 * time.Minute)

	a := members[1].PPSS.Instance(g)
	peer, ok := a.GetPeer()
	if !ok {
		t.Fatal("empty private view")
	}
	a.MakePersistent(peer)
	if len(a.PersistentIDs()) != 1 {
		t.Fatal("MakePersistent did not record the member")
	}
	// Long after the peer may have rotated out of the view, the pooled
	// entry must still be usable.
	w.Sim.RunFor(10 * time.Minute)
	if a.Stats().PCPRefreshes == 0 {
		t.Fatal("no PCP refresh ever sent")
	}
	target := findMember(members, peer.ID)
	got := false
	target.PPSS.Instance(g).OnMessage = func(_ ppss.Entry, p []byte) { got = string(p) == "via-pcp" }
	if err := a.SendTo(peer.ID, []byte("via-pcp"), nil); err != nil {
		t.Fatal(err)
	}
	w.Sim.RunFor(time.Minute)
	if !got {
		t.Fatal("message over persistent path not delivered")
	}
	a.DropPersistent(peer.ID)
	if len(a.PersistentIDs()) != 0 {
		t.Fatal("DropPersistent failed")
	}
}

// TestPersistentPoolRidesCircuits: pooled members are reached over WCL
// circuits (PoolCircuits defaults to on) — the periodic PCP ping
// establishes the circuit and then doubles as its keepalive, so pooled
// application sends travel as RSA-free data cells.
func TestPersistentPoolRidesCircuits(t *testing.T) {
	w := buildPPSSWorld(t, 38, 100)
	members := w.Live()[:16]
	g := ppss.GroupIDFromName("pcp-circ")
	formGroup(t, w, "pcp-circ", members)
	w.Sim.RunFor(6 * time.Minute)

	src := members[1]
	a := src.PPSS.Instance(g)
	peer, ok := a.GetPeer()
	if !ok {
		t.Fatal("empty private view")
	}
	a.MakePersistent(peer)
	// Let a few refresh periods pass: the pings establish the circuit.
	w.Sim.RunFor(5 * time.Minute)

	st := src.WCL.Stats()
	if st.CircuitsEstablished == 0 {
		t.Fatalf("pooled member never got a circuit: %+v", st)
	}
	if !src.WCL.HasCircuit(peer.ID) {
		t.Fatal("no established circuit to the pooled member")
	}

	// A pooled application send rides the circuit as a data cell and is
	// acknowledged hop-free. (The precise zero-RSA steady-state property
	// is pinned in the wcl package, where no background gossip muddies
	// the meters; shuffles to non-pooled partners still pay onions.)
	target := findMember(members, peer.ID)
	got := false
	target.PPSS.Instance(g).OnMessage = func(_ ppss.Entry, p []byte) { got = string(p) == "cell" }
	before := src.WCL.Stats()
	if err := a.SendTo(peer.ID, []byte("cell"), nil); err != nil {
		t.Fatal(err)
	}
	w.Sim.RunFor(30 * time.Second)
	if !got {
		t.Fatal("pooled send not delivered")
	}
	after := src.WCL.Stats()
	if after.CellsSent == before.CellsSent {
		t.Fatal("pooled send did not travel as a circuit cell")
	}
	if after.CellsAcked == before.CellsAcked {
		t.Fatal("pooled cell never acknowledged")
	}
}

// TestShufflesRideCircuits: gossip shuffles to a pooled partner travel
// as circuit cells, not fresh onions. One pair of members pools each
// other; a PCP refresh period longer than the run keeps pings out of
// the cell counters, so every cell on the wire is a shuffle request or
// response. Members outside the pair must stay cell-free: their
// shuffles keep paying one-shot onions.
func TestShufflesRideCircuits(t *testing.T) {
	cfg := fastPPSS()
	cfg.PCPRefresh = 2 * time.Hour
	w, err := sim.NewWorld(sim.Options{
		Seed:     41,
		N:        80,
		NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		PPSS:     cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)

	members := w.Live()[:6]
	g := ppss.GroupIDFromName("shuffle-circ")
	formGroup(t, w, "shuffle-circ", members)
	w.Sim.RunFor(3 * time.Minute)

	a, b := members[1].PPSS.Instance(g), members[2].PPSS.Instance(g)
	var pa, pb ppss.Entry
	for deadline := w.Sim.Now() + 10*time.Minute; ; w.Sim.RunFor(30 * time.Second) {
		var okA, okB bool
		pa, okA = a.Lookup(members[2].ID())
		pb, okB = b.Lookup(members[1].ID())
		if okA && okB {
			break
		}
		if w.Sim.Now() >= deadline {
			t.Fatal("the pooled pair never learned each other's entries")
		}
	}
	a.MakePersistent(pa)
	b.MakePersistent(pb)
	baseline := a.Stats().ExchangesCompleted

	w.Sim.RunFor(15 * time.Minute) // ~30 gossip cycles
	if cells := members[1].WCL.Stats().CellsSent + members[2].WCL.Stats().CellsSent; cells == 0 {
		t.Fatal("pooled pair sent no cells — shuffles did not ride the circuit")
	}
	for _, i := range []int{0, 3, 4, 5} {
		if st := members[i].WCL.Stats(); st.CellsSent != 0 {
			t.Fatalf("non-pooled member %d sent %d cells", i, st.CellsSent)
		}
	}
	if a.Stats().ExchangesCompleted == baseline {
		t.Fatal("no shuffle exchange completed after pooling")
	}
}

// TestPoolCircuitsDisabled: with PoolCircuits explicitly off, the pool
// behaves exactly as before — one-shot paths only, no circuit state.
func TestPoolCircuitsDisabled(t *testing.T) {
	off := false
	cfg := fastPPSS()
	cfg.PoolCircuits = &off
	w, err := sim.NewWorld(sim.Options{
		Seed:     39,
		N:        80,
		NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		PPSS:     cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)

	members := w.Live()[:12]
	g := ppss.GroupIDFromName("no-circ")
	formGroup(t, w, "no-circ", members)
	w.Sim.RunFor(6 * time.Minute)

	a := members[1].PPSS.Instance(g)
	peer, ok := a.GetPeer()
	if !ok {
		t.Fatal("empty private view")
	}
	a.MakePersistent(peer)
	w.Sim.RunFor(5 * time.Minute)

	if a.Stats().PCPRefreshes == 0 {
		t.Fatal("no PCP refresh ever sent")
	}
	for _, m := range members {
		st := m.WCL.Stats()
		if st.CircuitsOpened != 0 || st.CellsSent != 0 {
			t.Fatalf("node %d used circuits with PoolCircuits disabled: %+v", m.ID(), st)
		}
	}
}

func TestLeaderElectionAfterLeaderDeath(t *testing.T) {
	w := buildPPSSWorld(t, 35, 100)
	members := w.Live()[:14]
	g := ppss.GroupIDFromName("vote")
	formGroup(t, w, "vote", members)
	w.Sim.RunFor(6 * time.Minute)

	// Kill the founding leader.
	w.Kill(members[0])
	survivors := members[1:]

	// Heartbeats go stale (3 min) + election window (4 min, plus the
	// stability margin) + announce spread: give it 30 minutes.
	w.Sim.RunFor(30 * time.Minute)

	leaders, epoch1 := 0, 0
	for _, m := range survivors {
		inst := m.PPSS.Instance(g)
		if inst.IsLeader() {
			leaders++
		}
		if inst.Epoch() >= 1 {
			epoch1++
		}
	}
	if leaders == 0 {
		t.Fatal("no new leader emerged")
	}
	if leaders > 2 {
		t.Fatalf("%d concurrent leaders (aggregation failed to converge)", leaders)
	}
	if epoch1 < len(survivors)*7/10 {
		t.Fatalf("only %d/%d members learned the new epoch", epoch1, len(survivors))
	}

	// The group remains functional: a new node can join via a new leader.
	var newLeaderInst *ppss.Instance
	var newLeaderNode *sim.Node
	for _, m := range survivors {
		if inst := m.PPSS.Instance(g); inst.IsLeader() {
			newLeaderInst = inst
			newLeaderNode = m
			break
		}
	}
	_ = newLeaderNode
	newcomer := w.Live()[40]
	accr, entry, err := newLeaderInst.Invite(newcomer.ID())
	if err != nil {
		t.Fatal(err)
	}
	joinedOK := false
	newcomer.PPSS.Join("vote", accr, entry, func(inst *ppss.Instance, err error) {
		joinedOK = err == nil
	})
	w.Sim.RunFor(2 * time.Minute)
	if !joinedOK {
		t.Fatal("join via re-elected leader failed")
	}
}

func TestMultiGroupIsolation(t *testing.T) {
	w := buildPPSSWorld(t, 36, 100)
	live := w.Live()
	ga := ppss.GroupIDFromName("alpha")
	gb := ppss.GroupIDFromName("beta")
	membersA := live[0:12]
	membersB := live[8:20] // nodes 8..11 are in both groups
	formGroup(t, w, "alpha", membersA)
	formGroup(t, w, "beta", membersB)
	w.Sim.RunFor(10 * time.Minute)

	idsA := map[identity.NodeID]bool{}
	for _, m := range membersA {
		idsA[m.ID()] = true
	}
	idsB := map[identity.NodeID]bool{}
	for _, m := range membersB {
		idsB[m.ID()] = true
	}
	for _, m := range membersA {
		if inst := m.PPSS.Instance(ga); inst != nil {
			for _, id := range inst.ViewIDs() {
				if !idsA[id] {
					t.Fatalf("beta-only member %v leaked into an alpha view", id)
				}
			}
		}
	}
	for _, m := range membersB {
		if inst := m.PPSS.Instance(gb); inst != nil {
			for _, id := range inst.ViewIDs() {
				if !idsB[id] {
					t.Fatalf("alpha-only member %v leaked into a beta view", id)
				}
			}
		}
	}
	// Dual members run two isolated instances.
	dual := live[9]
	if len(dual.PPSS.Instances()) != 2 {
		t.Fatalf("dual member has %d instances, want 2", len(dual.PPSS.Instances()))
	}
}
