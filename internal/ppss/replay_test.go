package ppss

import (
	"fmt"
	"testing"

	"whisper/internal/identity"
	"whisper/internal/pss"
)

// TestReplayedShuffleReqNotDoubleApplied: a shuffle request carries a
// valid passport, so a replayed (or network-duplicated) copy passes
// every authentication check — but serving it again would merge the
// replayed sample into the view a second time. The instance must treat
// (sender, seq) as served-once.
func TestReplayedShuffleReqNotDoubleApplied(t *testing.T) {
	r := newBareRouter(t)
	inst, err := r.CreateGroup("replay-me")
	if err != nil {
		t.Fatal(err)
	}
	passport, err := IssuePassport(nil, inst.groupPriv, inst.Group(), 42, inst.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	keys := identity.TestKeys(3)
	var entries []pss.Entry[Entry]
	for i, k := range keys {
		entries = append(entries, pss.Entry[Entry]{Val: Entry{
			ID:     identity.NodeID(100 + i),
			IsPub:  true,
			PubKey: k.Public(),
		}})
	}
	m := shuffleMsg{
		Group:    inst.Group(),
		Passport: passport,
		Seq:      9,
		From:     Entry{ID: 42, IsPub: true, PubKey: identity.TestKeys(1)[0].Public()},
		Entries:  entries,
	}
	wire := m.encode(msgShuffleReq, r.cfg.KeyBlobSize)

	r.handle(wire)
	if inst.Stats().ExchangesServed != 1 {
		t.Fatalf("ExchangesServed = %d after first request", inst.Stats().ExchangesServed)
	}
	snapshot := fmt.Sprint(inst.View())

	r.handle(wire) // exact replay
	if inst.Stats().ExchangesServed != 1 {
		t.Fatalf("replay was served: ExchangesServed = %d", inst.Stats().ExchangesServed)
	}
	if inst.Stats().DupExchangesDropped != 1 {
		t.Fatalf("DupExchangesDropped = %d, want 1", inst.Stats().DupExchangesDropped)
	}
	if got := fmt.Sprint(inst.View()); got != snapshot {
		t.Fatalf("replay changed the private view:\n before: %s\n after:  %s", snapshot, got)
	}

	// A genuinely new exchange from the same member still goes through.
	m.Seq = 10
	r.handle(m.encode(msgShuffleReq, r.cfg.KeyBlobSize))
	if inst.Stats().ExchangesServed != 2 {
		t.Fatalf("fresh seq blocked: ExchangesServed = %d", inst.Stats().ExchangesServed)
	}
}
