package ppss

import (
	"errors"
	"fmt"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/obs"
	"whisper/internal/transport"
	"whisper/internal/wcl"
	"whisper/internal/wire"
)

// RouterStats is a snapshot of node-level PPSS events, read through
// Router.Stats.
type RouterStats struct {
	UnknownGroupDrops uint64
	MalformedDrops    uint64
	JoinsSent         uint64
	JoinsSucceeded    uint64
	JoinsFailed       uint64
}

// routerMet holds the router's metric instruments.
type routerMet struct {
	unknownGroupDrops *obs.Counter
	malformedDrops    *obs.Counter
	joinsSent         *obs.Counter
	joinsSucceeded    *obs.Counter
	joinsFailed       *obs.Counter
}

func newRouterMet(sc *obs.Scope) routerMet {
	return routerMet{
		unknownGroupDrops: sc.Counter("ppss_unknown_group_drops_total"),
		malformedDrops:    sc.Counter("ppss_malformed_drops_total"),
		joinsSent:         sc.Counter("ppss_joins_sent_total"),
		joinsSucceeded:    sc.Counter("ppss_joins_succeeded_total"),
		joinsFailed:       sc.Counter("ppss_joins_failed_total"),
	}
}

// Router owns a node's PPSS state: one Instance per private group the
// node belongs to, demultiplexed from the single WCL receive hook.
// Messages for groups the node is not a member of are dropped silently
// — a node never reveals, even by an error reply, whether it knows a
// group (§IV-A).
type Router struct {
	w   *wcl.WCL
	rt  transport.Transport
	cfg Config

	instances map[GroupID]*Instance
	joins     map[GroupID]*joinWaiter

	met routerMet
}

type joinWaiter struct {
	done  func(*Instance, error)
	timer transport.Timer
}

// NewRouter attaches PPSS routing to a WCL, taking over its OnReceive
// hook. cfg provides the defaults for all instances on this node.
func NewRouter(w *wcl.WCL, cfg Config) *Router {
	cfg = cfg.withDefaults()
	r := &Router{
		w:         w,
		rt:        w.Node().Runtime(),
		cfg:       cfg,
		instances: make(map[GroupID]*Instance),
		joins:     make(map[GroupID]*joinWaiter),
		met:       newRouterMet(cfg.Obs),
	}
	w.OnReceive = r.handle
	return r
}

// WCL returns the underlying communication layer.
func (r *Router) WCL() *wcl.WCL { return r.w }

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		UnknownGroupDrops: r.met.unknownGroupDrops.Value(),
		MalformedDrops:    r.met.malformedDrops.Value(),
		JoinsSent:         r.met.joinsSent.Value(),
		JoinsSucceeded:    r.met.joinsSucceeded.Value(),
		JoinsFailed:       r.met.joinsFailed.Value(),
	}
}

// Node ID shorthand.
func (r *Router) id() identity.NodeID { return r.w.Node().ID() }

// cpu returns the node's crypto meter (shared with the WCL, as Table II
// accounts both together).
func (r *Router) cpu() *crypt.CPUMeter { return r.w.CPU() }

// Instances returns the groups this node currently belongs to.
func (r *Router) Instances() []*Instance {
	out := make([]*Instance, 0, len(r.instances))
	for _, inst := range r.instances {
		out = append(out, inst)
	}
	return out
}

// Instance returns the instance for a group, or nil.
func (r *Router) Instance(g GroupID) *Instance { return r.instances[g] }

// SelfEntry builds the node's current private-view entry: identity,
// public key, and Π helper P-nodes drawn from the connection backlog
// with their sampled keys (§IV-B).
func (r *Router) SelfEntry() Entry {
	node := r.w.Node()
	d := node.SelfDescriptor()
	e := Entry{
		ID:      d.ID,
		IsPub:   d.Public,
		Contact: d.Contact,
		PubKey:  node.Identity().Public(),
	}
	if !d.Public {
		for _, be := range r.w.Backlog().Publics() {
			key := node.Keys().Get(be.Desc.ID)
			if key == nil {
				continue
			}
			e.Helpers = append(e.Helpers, wcl.Helper{ID: be.Desc.ID, Endpoint: be.Desc.Contact, Key: key})
			if len(e.Helpers) >= r.cfg.MinHelpers {
				break
			}
		}
	}
	return e
}

// CreateGroup makes this node the founding leader of a new group: it
// generates the group key pair and issues itself a passport.
func (r *Router) CreateGroup(name string) (*Instance, error) {
	g := GroupIDFromName(name)
	if r.instances[g] != nil {
		return nil, fmt.Errorf("ppss: already a member of group %q", name)
	}
	groupKey, err := NewGroupKey(r.cfg.Suite, r.cfg.GroupKeyBits)
	if err != nil {
		return nil, err
	}
	history := NewKeyHistory(groupKey.Public())
	passport, err := IssuePassport(r.cpu(), groupKey, g, r.id(), 0)
	if err != nil {
		return nil, err
	}
	inst := newInstance(r, g, name, history, passport)
	inst.groupPriv = groupKey
	inst.leaderID = r.id()
	inst.lastHB = r.rt.Now()
	r.instances[g] = inst
	inst.start()
	return inst, nil
}

// Join requests admission to a group through entryPoint (a leader whose
// coordinates arrived with the invitation), presenting accr. done is
// invoked with the live instance or an error.
func (r *Router) Join(name string, accr Accreditation, entryPoint Entry, done func(*Instance, error)) {
	g := GroupIDFromName(name)
	if g != accr.Group {
		done(nil, fmt.Errorf("ppss: accreditation is for %v, not %q", accr.Group, name))
		return
	}
	if r.instances[g] != nil {
		done(nil, fmt.Errorf("ppss: already a member of %q", name))
		return
	}
	if r.joins[g] != nil {
		done(nil, fmt.Errorf("ppss: join to %q already in progress", name))
		return
	}
	r.met.joinsSent.Inc()
	m := joinReq{Group: g, Accr: accr, From: r.SelfEntry()}
	waiter := &joinWaiter{done: done}
	waiter.timer = r.rt.After(r.cfg.JoinTimeout, func() {
		if r.joins[g] == waiter {
			delete(r.joins, g)
			r.met.joinsFailed.Inc()
			done(nil, errors.New("ppss: join timed out"))
		}
	})
	r.joins[g] = waiter
	r.w.Send(entryPoint.Dest(), m.encode(r.cfg.KeyBlobSize), func(res wcl.Result) {
		if res.Outcome == wcl.Failed {
			if r.joins[g] == waiter {
				delete(r.joins, g)
				waiter.timer.Cancel()
				r.met.joinsFailed.Inc()
				done(nil, fmt.Errorf("ppss: cannot reach entry point: %w", wcl.ErrNoPath))
			}
		}
	})
}

// Leave stops the group instance and forgets its state.
func (r *Router) Leave(g GroupID) {
	if inst := r.instances[g]; inst != nil {
		inst.stop()
		delete(r.instances, g)
	}
}

// Close stops all instances (node shutdown).
func (r *Router) Close() {
	for g := range r.instances {
		r.Leave(g)
	}
	for g, wtr := range r.joins {
		wtr.timer.Cancel()
		delete(r.joins, g)
	}
}

// handle is the WCL receive hook: dispatch by kind and group.
func (r *Router) handle(payload []byte) {
	if len(payload) == 0 {
		return
	}
	rd := wire.NewReader(payload)
	kind := rd.U8()
	switch kind {
	case msgJoinReq:
		m, err := decodeJoinReq(rd, r.cfg.KeyBlobSize)
		if err != nil {
			r.met.malformedDrops.Inc()
			return
		}
		if inst := r.instances[m.Group]; inst != nil {
			inst.handleJoinReq(m)
		} else {
			r.met.unknownGroupDrops.Inc()
		}
	case msgJoinResp:
		m, err := decodeJoinResp(rd, r.cfg.KeyBlobSize)
		if err != nil {
			r.met.malformedDrops.Inc()
			return
		}
		r.completeJoin(m)
	case msgShuffleReq, msgShuffleResp:
		m, err := decodeShuffleMsg(rd, r.cfg.KeyBlobSize)
		if err != nil {
			r.met.malformedDrops.Inc()
			return
		}
		inst := r.instances[m.Group]
		if inst == nil {
			r.met.unknownGroupDrops.Inc()
			return
		}
		if kind == msgShuffleReq {
			inst.handleShuffleReq(m)
		} else {
			inst.handleShuffleResp(m)
		}
	case msgApp:
		m, err := decodeAppMsg(rd, r.cfg.KeyBlobSize)
		if err != nil {
			r.met.malformedDrops.Inc()
			return
		}
		if inst := r.instances[m.Group]; inst != nil {
			inst.handleApp(m)
		} else {
			r.met.unknownGroupDrops.Inc()
		}
	case msgPCPPing, msgPCPPong:
		m, err := decodePCPMsg(rd, r.cfg.KeyBlobSize)
		if err != nil {
			r.met.malformedDrops.Inc()
			return
		}
		if inst := r.instances[m.Group]; inst != nil {
			inst.handlePCP(kind, m)
		} else {
			r.met.unknownGroupDrops.Inc()
		}
	default:
		r.met.malformedDrops.Inc()
	}
}

// completeJoin finalizes a pending join with the leader's response.
func (r *Router) completeJoin(m *joinResp) {
	waiter := r.joins[m.Group]
	if waiter == nil {
		return
	}
	delete(r.joins, m.Group)
	waiter.timer.Cancel()
	if m.Passport.IsZero() || len(m.History) == 0 || m.History[0] == nil {
		r.met.joinsFailed.Inc()
		waiter.done(nil, errors.New("ppss: malformed join response"))
		return
	}
	history := NewKeyHistory(m.History[0])
	for _, k := range m.History[1:] {
		if k != nil {
			history.Append(k)
		}
	}
	if err := m.Passport.Verify(r.cpu(), m.Group, history); err != nil || m.Passport.Member != r.id() {
		r.met.joinsFailed.Inc()
		waiter.done(nil, ErrBadPassport)
		return
	}
	inst := newInstance(r, m.Group, "", history, m.Passport)
	inst.leaderID = m.Leader.ID
	inst.lastHB = r.rt.Now()
	inst.view.Insert(m.Leader, 0)
	for _, e := range m.Entries {
		if e.Val.ID != r.id() {
			inst.view.Insert(e.Val, e.Age)
		}
	}
	r.instances[m.Group] = inst
	inst.start()
	r.met.joinsSucceeded.Inc()
	waiter.done(inst, nil)
}
