package pss

import (
	"math/rand"
	"reflect"
	"testing"

	"whisper/internal/identity"
)

// boxedView is the pre-packing reference implementation of View: a
// plain []Entry[T] grown by append, with each method transcribed from
// the historical code. TestViewPackedMatchesBoxed drives it and the
// packed View through identical operation and RNG streams and requires
// bit-identical observable state after every step — the packed layout
// must be a pure representation change.
type boxedView[T Item] struct {
	capacity int
	entries  []Entry[T]
}

func (v *boxedView[T]) Len() int { return len(v.entries) }

func (v *boxedView[T]) Entries() []Entry[T] { return append([]Entry[T](nil), v.entries...) }

func (v *boxedView[T]) index(id identity.NodeID) int {
	for i, e := range v.entries {
		if e.Val.Key() == id {
			return i
		}
	}
	return -1
}

func (v *boxedView[T]) oldestIndex() int {
	if len(v.entries) == 0 {
		return -1
	}
	best := 0
	for i, e := range v.entries {
		if e.Age > v.entries[best].Age {
			best = i
		}
	}
	return best
}

func (v *boxedView[T]) Contains(id identity.NodeID) bool { return v.index(id) >= 0 }

func (v *boxedView[T]) Insert(val T, age uint16) {
	for i := range v.entries {
		if v.entries[i].Val.Key() == val.Key() {
			if age <= v.entries[i].Age {
				v.entries[i] = Entry[T]{Val: val, Age: age}
			}
			return
		}
	}
	if len(v.entries) >= v.capacity {
		oldest := v.oldestIndex()
		v.entries = append(v.entries[:oldest], v.entries[oldest+1:]...)
	}
	v.entries = append(v.entries, Entry[T]{Val: val, Age: age})
}

func (v *boxedView[T]) Remove(id identity.NodeID) bool {
	if i := v.index(id); i >= 0 {
		v.entries = append(v.entries[:i], v.entries[i+1:]...)
		return true
	}
	return false
}

func (v *boxedView[T]) AgeAll() {
	for i := range v.entries {
		if v.entries[i].Age < MaxAge {
			v.entries[i].Age++
		}
	}
}

func (v *boxedView[T]) Oldest() (Entry[T], bool) {
	if len(v.entries) == 0 {
		return Entry[T]{}, false
	}
	return v.entries[v.oldestIndex()], true
}

func (v *boxedView[T]) Sample(rng *rand.Rand, n int, exclude ...identity.NodeID) []Entry[T] {
	candidates := make([]Entry[T], 0, len(v.entries))
	for _, e := range v.entries {
		skip := false
		for _, id := range exclude {
			if e.Val.Key() == id {
				skip = true
				break
			}
		}
		if !skip {
			candidates = append(candidates, e)
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > n {
		candidates = candidates[:n]
	}
	return candidates
}

func (v *boxedView[T]) Random(rng *rand.Rand) (Entry[T], bool) {
	if len(v.entries) == 0 {
		return Entry[T]{}, false
	}
	return v.entries[rng.Intn(len(v.entries))], true
}

func (v *boxedView[T]) PublicCount() int {
	n := 0
	for _, e := range v.entries {
		if e.Val.IsPublic() {
			n++
		}
	}
	return n
}

// mergeCyclonBoxed is the historical MergeCyclon transcribed onto the
// boxed layout.
func mergeCyclonBoxed[T Item](view *boxedView[T], sent, received []Entry[T], o SelectOpts) {
	replaceable := make([]identity.NodeID, 0, len(sent))
	for _, s := range sent {
		id := s.Val.Key()
		if id != o.Self && view.Contains(id) {
			replaceable = append(replaceable, id)
		}
	}
	var evicted []Entry[T]
	for _, r := range received {
		id := r.Val.Key()
		if id == o.Self {
			continue
		}
		if i := view.index(id); i >= 0 {
			if r.Age < view.entries[i].Age {
				view.entries[i] = r
			}
			continue
		}
		if view.Len() < o.Capacity {
			view.entries = append(view.entries, r)
			continue
		}
		if len(replaceable) > 0 {
			victim := replaceable[0]
			replaceable = replaceable[1:]
			if i := view.index(victim); i >= 0 {
				evicted = append(evicted, view.entries[i])
				view.entries[i] = r
				continue
			}
		}
		oi := view.oldestIndex()
		if oi >= 0 && view.entries[oi].Age > r.Age {
			evicted = append(evicted, view.entries[oi])
			view.entries[oi] = r
		}
	}
	if o.MinPublic <= 0 {
		return
	}
	var candidates []Entry[T]
	for _, e := range received {
		if e.Val.IsPublic() && e.Val.Key() != o.Self && !view.Contains(e.Val.Key()) {
			candidates = append(candidates, e)
		}
	}
	for _, e := range evicted {
		if e.Val.IsPublic() && !view.Contains(e.Val.Key()) {
			candidates = append(candidates, e)
		}
	}
	sortEntries(candidates)
	for view.PublicCount() < o.MinPublic && len(candidates) > 0 {
		c := candidates[0]
		candidates = candidates[1:]
		if view.Contains(c.Val.Key()) {
			continue
		}
		if view.Len() < o.Capacity {
			view.entries = append(view.entries, c)
			continue
		}
		ni, age := -1, -1
		for i, e := range view.entries {
			if !e.Val.IsPublic() && int(e.Age) > age {
				ni, age = i, int(e.Age)
			}
		}
		if ni < 0 {
			break
		}
		view.entries[ni] = c
	}
}

// TestViewPackedMatchesBoxed drives the packed View and the boxed
// reference through the same randomized operation script with
// independent but identically seeded RNG streams, comparing the full
// entry sequence (values, ages, and slot order) after every operation.
func TestViewPackedMatchesBoxed(t *testing.T) {
	const capacity = 10
	for seed := int64(1); seed <= 20; seed++ {
		script := rand.New(rand.NewSource(seed))
		packedRNG := rand.New(rand.NewSource(seed * 7919))
		boxedRNG := rand.New(rand.NewSource(seed * 7919))
		packed := NewView[item](capacity)
		boxed := &boxedView[item]{capacity: capacity}
		self := identity.NodeID(0)
		opts := SelectOpts{Capacity: capacity, Self: self, MinPublic: 3}

		mkItem := func() item {
			id := identity.NodeID(script.Intn(40) + 1)
			return item{id: id, pub: id%3 == 0}
		}
		entries := func(n int) []Entry[item] {
			out := make([]Entry[item], n)
			for i := range out {
				out[i] = Entry[item]{Val: mkItem(), Age: uint16(script.Intn(8))}
			}
			return out
		}

		for step := 0; step < 500; step++ {
			switch op := script.Intn(10); op {
			case 0, 1, 2:
				it := mkItem()
				age := uint16(script.Intn(8))
				packed.Insert(it, age)
				boxed.Insert(it, age)
			case 3:
				id := identity.NodeID(script.Intn(40) + 1)
				if packed.Remove(id) != boxed.Remove(id) {
					t.Fatalf("seed %d step %d: Remove(%d) disagreement", seed, step, id)
				}
			case 4:
				packed.AgeAll()
				boxed.AgeAll()
			case 5:
				pe, pok := packed.Oldest()
				be, bok := boxed.Oldest()
				if pok != bok || pe != be {
					t.Fatalf("seed %d step %d: Oldest %v/%v vs %v/%v", seed, step, pe, pok, be, bok)
				}
			case 6:
				n := script.Intn(6)
				var exclude []identity.NodeID
				if script.Intn(2) == 0 {
					exclude = append(exclude, identity.NodeID(script.Intn(40)+1))
				}
				ps := packed.Sample(packedRNG, n, exclude...)
				bs := boxed.Sample(boxedRNG, n, exclude...)
				if !reflect.DeepEqual(ps, bs) {
					t.Fatalf("seed %d step %d: Sample mismatch\npacked: %v\nboxed:  %v", seed, step, ps, bs)
				}
			case 7:
				pe, pok := packed.Random(packedRNG)
				be, bok := boxed.Random(boxedRNG)
				if pok != bok || pe != be {
					t.Fatalf("seed %d step %d: Random %v/%v vs %v/%v", seed, step, pe, pok, be, bok)
				}
			case 8, 9:
				// A full Cyclon exchange: both sides sample a sent
				// buffer with the same RNG draw, then merge the same
				// received buffer.
				sent := packed.Sample(packedRNG, 5)
				bsent := boxed.Sample(boxedRNG, 5)
				if !reflect.DeepEqual(sent, bsent) {
					t.Fatalf("seed %d step %d: sent buffer mismatch", seed, step)
				}
				received := entries(script.Intn(7))
				MergeCyclon(packed, sent, received, opts)
				mergeCyclonBoxed(boxed, bsent, received, opts)
			}
			pe, be := packed.Entries(), boxed.Entries()
			if !reflect.DeepEqual(pe, be) {
				t.Fatalf("seed %d step %d: entries diverged\npacked: %v\nboxed:  %v", seed, step, pe, be)
			}
			if packed.Len() != boxed.Len() || packed.PublicCount() != boxed.PublicCount() {
				t.Fatalf("seed %d step %d: len/publics diverged", seed, step)
			}
		}
	}
}
