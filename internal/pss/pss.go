// Package pss implements the data structures and policies of a
// gossip-based peer sampling service (Jelasity et al., "Gossip-based
// peer sampling"): aged partial views, the healer exchange strategy
// used by the paper (partner = oldest entry, retention = freshest
// entries), and the Π-biased truncation of WHISPER §III-B that keeps a
// minimum number of public nodes in every view.
//
// The package is transport-agnostic and generic over the entry payload:
// the Nylon layer instantiates it with NAT-aware descriptors, and the
// PPSS instantiates it with private-group entries carrying public keys
// and helper sets. All functions are pure or operate on local state, so
// the protocol logic is exhaustively unit-testable without a network.
//
// # Memory layout
//
// A View stores its entries in dense, exact-capacity, structure-of-
// arrays form: one value array and one age array, both allocated once
// at construction and indexed by slot. Views are the dominant per-node
// heap consumer of large simulated worlds (one view per node, held for
// the node's whole life), and the historical []Entry[T] form paid both
// the interleaved-age padding and append's capacity doubling — a
// 10-entry view ended up with room for 16 boxed entries. The packed
// layout is behavior-identical: every operation below preserves the
// exact slot order (and therefore the exact gossip output) of the boxed
// implementation, which TestViewPackedMatchesBoxed pins differentially
// and the fig5 golden pins end to end.
package pss

import (
	"math/rand"
	"sort"

	"whisper/internal/identity"
)

// Item is the payload of a view entry.
type Item interface {
	// Key returns the node identifier this entry points to.
	Key() identity.NodeID
	// IsPublic reports whether the node is a P-node (directly
	// reachable, no NAT).
	IsPublic() bool
}

// MaxAge saturates entry ages, preventing wrap-around in very long runs.
const MaxAge = 1<<16 - 1

// Entry is one aged element of a view. Views no longer store entries in
// this boxed form — it remains the exchange currency of the package API
// (buffers, samples, Select).
type Entry[T Item] struct {
	Val T
	Age uint16
}

// View is a bounded partial view of the network, stored packed: vals
// and ages are parallel arrays of length capacity, of which the first n
// slots are live. Slot order carries protocol meaning (eviction scans,
// stable ties), so all mutations preserve it exactly as the boxed
// append/delete idioms did.
type View[T Item] struct {
	n    int
	vals []T
	ages []uint16
}

// NewView creates an empty view bounded to capacity entries. The full
// backing storage is allocated here, once; no later operation grows it.
func NewView[T Item](capacity int) *View[T] {
	if capacity <= 0 {
		panic("pss: view capacity must be positive")
	}
	return &View[T]{
		vals: make([]T, capacity),
		ages: make([]uint16, capacity),
	}
}

// Capacity returns the view bound.
func (v *View[T]) Capacity() int { return len(v.vals) }

// Len returns the current number of entries.
func (v *View[T]) Len() int { return v.n }

// entry materializes slot i in boxed form.
func (v *View[T]) entry(i int) Entry[T] { return Entry[T]{Val: v.vals[i], Age: v.ages[i]} }

// Entries returns a copy of the view content (nil when empty).
func (v *View[T]) Entries() []Entry[T] {
	if v.n == 0 {
		return nil
	}
	out := make([]Entry[T], v.n)
	for i := 0; i < v.n; i++ {
		out[i] = v.entry(i)
	}
	return out
}

// Values returns the payloads of all entries.
func (v *View[T]) Values() []T {
	return append([]T(nil), v.vals[:v.n]...)
}

// IDs returns the identifiers of all entries.
func (v *View[T]) IDs() []identity.NodeID {
	out := make([]identity.NodeID, v.n)
	for i := 0; i < v.n; i++ {
		out[i] = v.vals[i].Key()
	}
	return out
}

// IDsInto is IDs appending into dst[:0]; with a reusable dst of
// sufficient capacity it allocates nothing. The returned slice aliases
// dst. Report paths that walk every node's view each sampling interval
// (the overlay graph stream) use it to avoid one slice per node per
// walk.
func (v *View[T]) IDsInto(dst []identity.NodeID) []identity.NodeID {
	dst = dst[:0]
	for i := 0; i < v.n; i++ {
		dst = append(dst, v.vals[i].Key())
	}
	return dst
}

// Contains reports whether id is in the view.
func (v *View[T]) Contains(id identity.NodeID) bool {
	return v.index(id) >= 0
}

// Get returns the entry for id.
func (v *View[T]) Get(id identity.NodeID) (Entry[T], bool) {
	if i := v.index(id); i >= 0 {
		return v.entry(i), true
	}
	return Entry[T]{}, false
}

// removeAt deletes slot i, shifting later slots down (order-preserving,
// exactly like the boxed append(entries[:i], entries[i+1:]...)).
func (v *View[T]) removeAt(i int) {
	copy(v.vals[i:v.n-1], v.vals[i+1:v.n])
	copy(v.ages[i:v.n-1], v.ages[i+1:v.n])
	v.n--
	var zero T
	v.vals[v.n] = zero // drop references held by the vacated slot
}

// append adds an entry at the end. The caller guarantees n < capacity.
func (v *View[T]) append(val T, age uint16) {
	v.vals[v.n] = val
	v.ages[v.n] = age
	v.n++
}

// Remove deletes id from the view, reporting whether it was present.
// Used when a peer is detected as failed (§II-B membership management).
func (v *View[T]) Remove(id identity.NodeID) bool {
	if i := v.index(id); i >= 0 {
		v.removeAt(i)
		return true
	}
	return false
}

// Insert adds or refreshes an entry, keeping the lower age if the node
// is already present. If the view is full and id is new, the oldest
// entry is evicted. Used at bootstrap and when learning peers outside a
// shuffle.
func (v *View[T]) Insert(val T, age uint16) {
	if i := v.index(val.Key()); i >= 0 {
		if age <= v.ages[i] {
			v.vals[i] = val
			v.ages[i] = age
		}
		return
	}
	if v.n >= len(v.vals) {
		v.removeAt(v.oldestIndex())
	}
	v.append(val, age)
}

// AgeAll increments every entry's age (start of a gossip cycle).
func (v *View[T]) AgeAll() {
	for i := 0; i < v.n; i++ {
		if v.ages[i] < MaxAge {
			v.ages[i]++
		}
	}
}

// Oldest returns the entry with the highest age — the exchange partner
// under the healer strategy. ok is false for an empty view.
func (v *View[T]) Oldest() (Entry[T], bool) {
	if v.n == 0 {
		return Entry[T]{}, false
	}
	return v.entry(v.oldestIndex()), true
}

// Sample returns up to n distinct random entries, excluding any entry
// whose key is in exclude.
func (v *View[T]) Sample(rng *rand.Rand, n int, exclude ...identity.NodeID) []Entry[T] {
	return v.SampleInto(make([]Entry[T], 0, v.n), rng, n, exclude...)
}

// SampleInto is Sample appending into dst[:0], for gossip hot paths
// that draw one sample per shuffle: with a reusable dst of sufficient
// capacity the draw allocates nothing. The returned slice aliases dst
// (possibly grown), so callers that retain samples across events must
// copy. The exclude list is scanned linearly — it is one or two IDs in
// every protocol path.
func (v *View[T]) SampleInto(dst []Entry[T], rng *rand.Rand, n int, exclude ...identity.NodeID) []Entry[T] {
	candidates := dst[:0]
	for i := 0; i < v.n; i++ {
		skip := false
		for _, id := range exclude {
			if v.vals[i].Key() == id {
				skip = true
				break
			}
		}
		if !skip {
			candidates = append(candidates, v.entry(i))
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > n {
		candidates = candidates[:n]
	}
	return candidates
}

// Random returns one uniformly random entry (the getPeer() of the PSS
// API). ok is false for an empty view.
func (v *View[T]) Random(rng *rand.Rand) (Entry[T], bool) {
	if v.n == 0 {
		return Entry[T]{}, false
	}
	return v.entry(rng.Intn(v.n)), true
}

// PublicCount returns the number of P-node entries.
func (v *View[T]) PublicCount() int {
	n := 0
	for i := 0; i < v.n; i++ {
		if v.vals[i].IsPublic() {
			n++
		}
	}
	return n
}

// Publics returns the P-node entries.
func (v *View[T]) Publics() []Entry[T] {
	var out []Entry[T]
	for i := 0; i < v.n; i++ {
		if v.vals[i].IsPublic() {
			out = append(out, v.entry(i))
		}
	}
	return out
}

// Replace overwrites the view with entries, truncating to capacity.
func (v *View[T]) Replace(entries []Entry[T]) {
	if len(entries) > len(v.vals) {
		entries = entries[:len(v.vals)]
	}
	for i, e := range entries {
		v.vals[i] = e.Val
		v.ages[i] = e.Age
	}
	var zero T
	for i := len(entries); i < v.n; i++ {
		v.vals[i] = zero
	}
	v.n = len(entries)
}

// SelectOpts parameterizes the post-exchange truncation policy.
type SelectOpts struct {
	// Capacity is the view size c.
	Capacity int
	// Self is the local node's ID; entries pointing to it are dropped.
	Self identity.NodeID
	// MinPublic is Π: the minimum number of P-node entries to retain,
	// overriding the age-based policy if necessary (§III-B-1). Zero
	// disables the bias (the paper's unmodified baseline).
	MinPublic int
	// CapExcessPublic additionally discards the oldest P-nodes above
	// the Π threshold in favour of fresher coverage of N-nodes. The
	// paper describes this second bias for settings where Π exceeds the
	// network's P-node share; it is off by default and exercised by the
	// ablation benchmarks.
	CapExcessPublic bool
}

// Select implements the healer truncation: merge current and received
// entries, drop self-references, deduplicate keeping the freshest copy
// of each node, keep the Capacity entries with the lowest ages, then
// apply the Π bias. The input order breaks age ties (stable), so pass
// the local view first for the conventional behaviour.
func Select[T Item](merged []Entry[T], o SelectOpts) []Entry[T] {
	if o.Capacity <= 0 {
		panic("pss: Select with non-positive capacity")
	}
	// Deduplicate, keeping the freshest entry per node.
	best := make(map[identity.NodeID]int, len(merged))
	var uniq []Entry[T]
	for _, e := range merged {
		id := e.Val.Key()
		if id == o.Self {
			continue
		}
		if i, ok := best[id]; ok {
			if e.Age < uniq[i].Age {
				uniq[i] = e
			}
			continue
		}
		best[id] = len(uniq)
		uniq = append(uniq, e)
	}
	// Freshest first; stable keeps input precedence on ties.
	sort.SliceStable(uniq, func(i, j int) bool { return uniq[i].Age < uniq[j].Age })
	kept := uniq
	var excluded []Entry[T]
	if len(uniq) > o.Capacity {
		kept = uniq[:o.Capacity]
		excluded = uniq[o.Capacity:]
	}
	kept = append([]Entry[T](nil), kept...)
	if o.MinPublic <= 0 {
		return kept
	}

	// Bias 1: enforce at least Π P-nodes, swapping in the freshest
	// excluded P-nodes for the oldest kept N-nodes.
	pubs := countPublic(kept)
	for pubs < o.MinPublic {
		pi := -1
		for i, e := range excluded {
			if e.Val.IsPublic() {
				pi = i
				break // excluded is age-sorted: first P is freshest
			}
		}
		if pi < 0 {
			break // no P-nodes available at all
		}
		ni := -1
		for i := len(kept) - 1; i >= 0; i-- {
			if !kept[i].Val.IsPublic() {
				ni = i
				break // oldest N-node
			}
		}
		if ni < 0 {
			if len(kept) < o.Capacity {
				kept = append(kept, excluded[pi])
				excluded = append(excluded[:pi], excluded[pi+1:]...)
				pubs++
				continue
			}
			break
		}
		kept[ni], excluded[pi] = excluded[pi], kept[ni]
		sortEntries(kept)
		sortEntries(excluded)
		pubs++
	}

	// Bias 2 (optional): discard the oldest P-nodes above the quota in
	// favour of the freshest excluded N-nodes.
	if o.CapExcessPublic {
		for countPublic(kept) > o.MinPublic {
			ni := -1
			for i, e := range excluded {
				if !e.Val.IsPublic() {
					ni = i
					break
				}
			}
			if ni < 0 {
				break
			}
			pi := -1
			for i := len(kept) - 1; i >= 0; i-- {
				if kept[i].Val.IsPublic() {
					pi = i
					break
				}
			}
			if pi < 0 {
				break
			}
			kept[pi], excluded[ni] = excluded[ni], kept[pi]
			sortEntries(kept)
			sortEntries(excluded)
		}
	}
	return kept
}

// MergeCyclon applies a received shuffle buffer to the view using
// Cyclon-style swapping (Voulgaris et al., the protocol Nylon builds
// on): received entries first fill empty slots, then replace the
// entries that were sent in the same exchange, and are dropped
// otherwise — except that, following the healer leaning of the paper, a
// received entry may also replace a strictly older entry when no sent
// slot remains. Duplicates keep the fresher copy. Finally the Π bias of
// SelectOpts is enforced exactly as in Select, considering the P-nodes
// of both the previous view and the received buffer.
//
// sent must be the buffer this node shipped in the exchange (its own
// descriptor may be included; it is ignored since it never sits in the
// view). Swapping — rather than union-and-keep-freshest — is what keeps
// the overlay's clustering coefficient in the random-graph regime
// (Fig 5's baseline).
func MergeCyclon[T Item](view *View[T], sent, received []Entry[T], o SelectOpts) {
	if o.Capacity <= 0 {
		panic("pss: MergeCyclon with non-positive capacity")
	}
	// Entries we may overwrite: the ones we sent that are still present.
	replaceable := make([]identity.NodeID, 0, len(sent))
	for _, s := range sent {
		id := s.Val.Key()
		if id != o.Self && view.Contains(id) {
			replaceable = append(replaceable, id)
		}
	}
	evicted := make([]Entry[T], 0, 4)
	for _, r := range received {
		id := r.Val.Key()
		if id == o.Self {
			continue
		}
		if i := view.index(id); i >= 0 {
			if r.Age < view.ages[i] {
				view.vals[i] = r.Val
				view.ages[i] = r.Age
			}
			continue
		}
		if view.n < o.Capacity {
			view.append(r.Val, r.Age)
			continue
		}
		if len(replaceable) > 0 {
			victim := replaceable[0]
			replaceable = replaceable[1:]
			if i := view.index(victim); i >= 0 {
				evicted = append(evicted, view.entry(i))
				view.vals[i] = r.Val
				view.ages[i] = r.Age
				continue
			}
		}
		// Healer fallback: replace the oldest entry if strictly older.
		oi := view.oldestIndex()
		if oi >= 0 && view.ages[oi] > r.Age {
			evicted = append(evicted, view.entry(oi))
			view.vals[oi] = r.Val
			view.ages[oi] = r.Age
		}
		// Otherwise the received entry is dropped.
	}
	if o.MinPublic <= 0 {
		return
	}
	// Π bias: candidates are P-nodes from the received buffer and the
	// entries this merge evicted, freshest first.
	var candidates []Entry[T]
	for _, e := range received {
		if e.Val.IsPublic() && e.Val.Key() != o.Self && !view.Contains(e.Val.Key()) {
			candidates = append(candidates, e)
		}
	}
	for _, e := range evicted {
		if e.Val.IsPublic() && !view.Contains(e.Val.Key()) {
			candidates = append(candidates, e)
		}
	}
	sortEntries(candidates)
	for view.PublicCount() < o.MinPublic && len(candidates) > 0 {
		c := candidates[0]
		candidates = candidates[1:]
		if view.Contains(c.Val.Key()) {
			continue
		}
		if view.n < o.Capacity {
			view.append(c.Val, c.Age)
			continue
		}
		// Replace the oldest N-node.
		ni, age := -1, -1
		for i := 0; i < view.n; i++ {
			if !view.vals[i].IsPublic() && int(view.ages[i]) > age {
				ni, age = i, int(view.ages[i])
			}
		}
		if ni < 0 {
			break
		}
		view.vals[ni] = c.Val
		view.ages[ni] = c.Age
	}
}

func (v *View[T]) index(id identity.NodeID) int {
	for i := 0; i < v.n; i++ {
		if v.vals[i].Key() == id {
			return i
		}
	}
	return -1
}

// oldestIndex returns the slot with the highest age (first among ties,
// matching the historical forward scan with strict >). -1 when empty.
func (v *View[T]) oldestIndex() int {
	if v.n == 0 {
		return -1
	}
	best := 0
	for i := 1; i < v.n; i++ {
		if v.ages[i] > v.ages[best] {
			best = i
		}
	}
	return best
}

func countPublic[T Item](entries []Entry[T]) int {
	n := 0
	for _, e := range entries {
		if e.Val.IsPublic() {
			n++
		}
	}
	return n
}

func sortEntries[T Item](entries []Entry[T]) {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Age < entries[j].Age })
}
