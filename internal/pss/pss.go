// Package pss implements the data structures and policies of a
// gossip-based peer sampling service (Jelasity et al., "Gossip-based
// peer sampling"): aged partial views, the healer exchange strategy
// used by the paper (partner = oldest entry, retention = freshest
// entries), and the Π-biased truncation of WHISPER §III-B that keeps a
// minimum number of public nodes in every view.
//
// The package is transport-agnostic and generic over the entry payload:
// the Nylon layer instantiates it with NAT-aware descriptors, and the
// PPSS instantiates it with private-group entries carrying public keys
// and helper sets. All functions are pure or operate on local state, so
// the protocol logic is exhaustively unit-testable without a network.
package pss

import (
	"math/rand"
	"sort"

	"whisper/internal/identity"
)

// Item is the payload of a view entry.
type Item interface {
	// Key returns the node identifier this entry points to.
	Key() identity.NodeID
	// IsPublic reports whether the node is a P-node (directly
	// reachable, no NAT).
	IsPublic() bool
}

// MaxAge saturates entry ages, preventing wrap-around in very long runs.
const MaxAge = 1<<16 - 1

// Entry is one aged element of a view.
type Entry[T Item] struct {
	Val T
	Age uint16
}

// View is a bounded partial view of the network.
type View[T Item] struct {
	capacity int
	entries  []Entry[T]
}

// NewView creates an empty view bounded to capacity entries.
func NewView[T Item](capacity int) *View[T] {
	if capacity <= 0 {
		panic("pss: view capacity must be positive")
	}
	return &View[T]{capacity: capacity}
}

// Capacity returns the view bound.
func (v *View[T]) Capacity() int { return v.capacity }

// Len returns the current number of entries.
func (v *View[T]) Len() int { return len(v.entries) }

// Entries returns a copy of the view content.
func (v *View[T]) Entries() []Entry[T] {
	return append([]Entry[T](nil), v.entries...)
}

// Values returns the payloads of all entries.
func (v *View[T]) Values() []T {
	out := make([]T, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.Val
	}
	return out
}

// IDs returns the identifiers of all entries.
func (v *View[T]) IDs() []identity.NodeID {
	out := make([]identity.NodeID, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.Val.Key()
	}
	return out
}

// Contains reports whether id is in the view.
func (v *View[T]) Contains(id identity.NodeID) bool {
	_, ok := v.Get(id)
	return ok
}

// Get returns the entry for id.
func (v *View[T]) Get(id identity.NodeID) (Entry[T], bool) {
	for _, e := range v.entries {
		if e.Val.Key() == id {
			return e, true
		}
	}
	return Entry[T]{}, false
}

// Remove deletes id from the view, reporting whether it was present.
// Used when a peer is detected as failed (§II-B membership management).
func (v *View[T]) Remove(id identity.NodeID) bool {
	for i, e := range v.entries {
		if e.Val.Key() == id {
			v.entries = append(v.entries[:i], v.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Insert adds or refreshes an entry, keeping the lower age if the node
// is already present. If the view is full and id is new, the oldest
// entry is evicted. Used at bootstrap and when learning peers outside a
// shuffle.
func (v *View[T]) Insert(val T, age uint16) {
	for i := range v.entries {
		if v.entries[i].Val.Key() == val.Key() {
			if age <= v.entries[i].Age {
				v.entries[i] = Entry[T]{Val: val, Age: age}
			}
			return
		}
	}
	if len(v.entries) >= v.capacity {
		oldest := 0
		for i, e := range v.entries {
			if e.Age > v.entries[oldest].Age {
				oldest = i
			}
			_ = e
		}
		v.entries = append(v.entries[:oldest], v.entries[oldest+1:]...)
	}
	v.entries = append(v.entries, Entry[T]{Val: val, Age: age})
}

// AgeAll increments every entry's age (start of a gossip cycle).
func (v *View[T]) AgeAll() {
	for i := range v.entries {
		if v.entries[i].Age < MaxAge {
			v.entries[i].Age++
		}
	}
}

// Oldest returns the entry with the highest age — the exchange partner
// under the healer strategy. ok is false for an empty view.
func (v *View[T]) Oldest() (Entry[T], bool) {
	if len(v.entries) == 0 {
		return Entry[T]{}, false
	}
	best := 0
	for i, e := range v.entries {
		if e.Age > v.entries[best].Age {
			best = i
		}
	}
	return v.entries[best], true
}

// Sample returns up to n distinct random entries, excluding any entry
// whose key is in exclude.
func (v *View[T]) Sample(rng *rand.Rand, n int, exclude ...identity.NodeID) []Entry[T] {
	return v.SampleInto(make([]Entry[T], 0, len(v.entries)), rng, n, exclude...)
}

// SampleInto is Sample appending into dst[:0], for gossip hot paths
// that draw one sample per shuffle: with a reusable dst of sufficient
// capacity the draw allocates nothing. The returned slice aliases dst
// (possibly grown), so callers that retain samples across events must
// copy. The exclude list is scanned linearly — it is one or two IDs in
// every protocol path.
func (v *View[T]) SampleInto(dst []Entry[T], rng *rand.Rand, n int, exclude ...identity.NodeID) []Entry[T] {
	candidates := dst[:0]
	for _, e := range v.entries {
		skip := false
		for _, id := range exclude {
			if e.Val.Key() == id {
				skip = true
				break
			}
		}
		if !skip {
			candidates = append(candidates, e)
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > n {
		candidates = candidates[:n]
	}
	return candidates
}

// Random returns one uniformly random entry (the getPeer() of the PSS
// API). ok is false for an empty view.
func (v *View[T]) Random(rng *rand.Rand) (Entry[T], bool) {
	if len(v.entries) == 0 {
		return Entry[T]{}, false
	}
	return v.entries[rng.Intn(len(v.entries))], true
}

// PublicCount returns the number of P-node entries.
func (v *View[T]) PublicCount() int {
	n := 0
	for _, e := range v.entries {
		if e.Val.IsPublic() {
			n++
		}
	}
	return n
}

// Publics returns the P-node entries.
func (v *View[T]) Publics() []Entry[T] {
	var out []Entry[T]
	for _, e := range v.entries {
		if e.Val.IsPublic() {
			out = append(out, e)
		}
	}
	return out
}

// Replace overwrites the view with entries, truncating to capacity.
func (v *View[T]) Replace(entries []Entry[T]) {
	if len(entries) > v.capacity {
		entries = entries[:v.capacity]
	}
	v.entries = append(v.entries[:0], entries...)
}

// SelectOpts parameterizes the post-exchange truncation policy.
type SelectOpts struct {
	// Capacity is the view size c.
	Capacity int
	// Self is the local node's ID; entries pointing to it are dropped.
	Self identity.NodeID
	// MinPublic is Π: the minimum number of P-node entries to retain,
	// overriding the age-based policy if necessary (§III-B-1). Zero
	// disables the bias (the paper's unmodified baseline).
	MinPublic int
	// CapExcessPublic additionally discards the oldest P-nodes above
	// the Π threshold in favour of fresher coverage of N-nodes. The
	// paper describes this second bias for settings where Π exceeds the
	// network's P-node share; it is off by default and exercised by the
	// ablation benchmarks.
	CapExcessPublic bool
}

// Select implements the healer truncation: merge current and received
// entries, drop self-references, deduplicate keeping the freshest copy
// of each node, keep the Capacity entries with the lowest ages, then
// apply the Π bias. The input order breaks age ties (stable), so pass
// the local view first for the conventional behaviour.
func Select[T Item](merged []Entry[T], o SelectOpts) []Entry[T] {
	if o.Capacity <= 0 {
		panic("pss: Select with non-positive capacity")
	}
	// Deduplicate, keeping the freshest entry per node.
	best := make(map[identity.NodeID]int, len(merged))
	var uniq []Entry[T]
	for _, e := range merged {
		id := e.Val.Key()
		if id == o.Self {
			continue
		}
		if i, ok := best[id]; ok {
			if e.Age < uniq[i].Age {
				uniq[i] = e
			}
			continue
		}
		best[id] = len(uniq)
		uniq = append(uniq, e)
	}
	// Freshest first; stable keeps input precedence on ties.
	sort.SliceStable(uniq, func(i, j int) bool { return uniq[i].Age < uniq[j].Age })
	kept := uniq
	var excluded []Entry[T]
	if len(uniq) > o.Capacity {
		kept = uniq[:o.Capacity]
		excluded = uniq[o.Capacity:]
	}
	kept = append([]Entry[T](nil), kept...)
	if o.MinPublic <= 0 {
		return kept
	}

	// Bias 1: enforce at least Π P-nodes, swapping in the freshest
	// excluded P-nodes for the oldest kept N-nodes.
	pubs := countPublic(kept)
	for pubs < o.MinPublic {
		pi := -1
		for i, e := range excluded {
			if e.Val.IsPublic() {
				pi = i
				break // excluded is age-sorted: first P is freshest
			}
		}
		if pi < 0 {
			break // no P-nodes available at all
		}
		ni := -1
		for i := len(kept) - 1; i >= 0; i-- {
			if !kept[i].Val.IsPublic() {
				ni = i
				break // oldest N-node
			}
		}
		if ni < 0 {
			if len(kept) < o.Capacity {
				kept = append(kept, excluded[pi])
				excluded = append(excluded[:pi], excluded[pi+1:]...)
				pubs++
				continue
			}
			break
		}
		kept[ni], excluded[pi] = excluded[pi], kept[ni]
		sortEntries(kept)
		sortEntries(excluded)
		pubs++
	}

	// Bias 2 (optional): discard the oldest P-nodes above the quota in
	// favour of the freshest excluded N-nodes.
	if o.CapExcessPublic {
		for countPublic(kept) > o.MinPublic {
			ni := -1
			for i, e := range excluded {
				if !e.Val.IsPublic() {
					ni = i
					break
				}
			}
			if ni < 0 {
				break
			}
			pi := -1
			for i := len(kept) - 1; i >= 0; i-- {
				if kept[i].Val.IsPublic() {
					pi = i
					break
				}
			}
			if pi < 0 {
				break
			}
			kept[pi], excluded[ni] = excluded[ni], kept[pi]
			sortEntries(kept)
			sortEntries(excluded)
		}
	}
	return kept
}

// MergeCyclon applies a received shuffle buffer to the view using
// Cyclon-style swapping (Voulgaris et al., the protocol Nylon builds
// on): received entries first fill empty slots, then replace the
// entries that were sent in the same exchange, and are dropped
// otherwise — except that, following the healer leaning of the paper, a
// received entry may also replace a strictly older entry when no sent
// slot remains. Duplicates keep the fresher copy. Finally the Π bias of
// SelectOpts is enforced exactly as in Select, considering the P-nodes
// of both the previous view and the received buffer.
//
// sent must be the buffer this node shipped in the exchange (its own
// descriptor may be included; it is ignored since it never sits in the
// view). Swapping — rather than union-and-keep-freshest — is what keeps
// the overlay's clustering coefficient in the random-graph regime
// (Fig 5's baseline).
func MergeCyclon[T Item](view *View[T], sent, received []Entry[T], o SelectOpts) {
	if o.Capacity <= 0 {
		panic("pss: MergeCyclon with non-positive capacity")
	}
	// Entries we may overwrite: the ones we sent that are still present.
	replaceable := make([]identity.NodeID, 0, len(sent))
	for _, s := range sent {
		id := s.Val.Key()
		if id != o.Self && view.Contains(id) {
			replaceable = append(replaceable, id)
		}
	}
	evicted := make([]Entry[T], 0, 4)
	for _, r := range received {
		id := r.Val.Key()
		if id == o.Self {
			continue
		}
		if i := view.index(id); i >= 0 {
			if r.Age < view.entries[i].Age {
				view.entries[i] = r
			}
			continue
		}
		if view.Len() < o.Capacity {
			view.entries = append(view.entries, r)
			continue
		}
		if len(replaceable) > 0 {
			victim := replaceable[0]
			replaceable = replaceable[1:]
			if i := view.index(victim); i >= 0 {
				evicted = append(evicted, view.entries[i])
				view.entries[i] = r
				continue
			}
		}
		// Healer fallback: replace the oldest entry if strictly older.
		oi := view.oldestIndex()
		if oi >= 0 && view.entries[oi].Age > r.Age {
			evicted = append(evicted, view.entries[oi])
			view.entries[oi] = r
		}
		// Otherwise the received entry is dropped.
	}
	if o.MinPublic <= 0 {
		return
	}
	// Π bias: candidates are P-nodes from the received buffer and the
	// entries this merge evicted, freshest first.
	var candidates []Entry[T]
	for _, e := range received {
		if e.Val.IsPublic() && e.Val.Key() != o.Self && !view.Contains(e.Val.Key()) {
			candidates = append(candidates, e)
		}
	}
	for _, e := range evicted {
		if e.Val.IsPublic() && !view.Contains(e.Val.Key()) {
			candidates = append(candidates, e)
		}
	}
	sortEntries(candidates)
	for view.PublicCount() < o.MinPublic && len(candidates) > 0 {
		c := candidates[0]
		candidates = candidates[1:]
		if view.Contains(c.Val.Key()) {
			continue
		}
		if view.Len() < o.Capacity {
			view.entries = append(view.entries, c)
			continue
		}
		// Replace the oldest N-node.
		ni, age := -1, -1
		for i, e := range view.entries {
			if !e.Val.IsPublic() && int(e.Age) > age {
				ni, age = i, int(e.Age)
			}
		}
		if ni < 0 {
			break
		}
		view.entries[ni] = c
	}
}

func (v *View[T]) index(id identity.NodeID) int {
	for i, e := range v.entries {
		if e.Val.Key() == id {
			return i
		}
	}
	return -1
}

func (v *View[T]) oldestIndex() int {
	if len(v.entries) == 0 {
		return -1
	}
	best := 0
	for i, e := range v.entries {
		if e.Age > v.entries[best].Age {
			best = i
		}
	}
	return best
}

func countPublic[T Item](entries []Entry[T]) int {
	n := 0
	for _, e := range entries {
		if e.Val.IsPublic() {
			n++
		}
	}
	return n
}

func sortEntries[T Item](entries []Entry[T]) {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Age < entries[j].Age })
}
