package pss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whisper/internal/graph"
	"whisper/internal/identity"
)

type item struct {
	id  identity.NodeID
	pub bool
}

func (i item) Key() identity.NodeID { return i.id }
func (i item) IsPublic() bool       { return i.pub }

func e(id identity.NodeID, pub bool, age uint16) Entry[item] {
	return Entry[item]{Val: item{id: id, pub: pub}, Age: age}
}

func TestViewInsertAndDedup(t *testing.T) {
	v := NewView[item](3)
	v.Insert(item{id: 1}, 5)
	v.Insert(item{id: 2}, 1)
	v.Insert(item{id: 1}, 2) // fresher copy replaces
	if v.Len() != 2 {
		t.Fatalf("len = %d", v.Len())
	}
	got, _ := v.Get(1)
	if got.Age != 2 {
		t.Fatalf("age = %d, want 2 (fresher kept)", got.Age)
	}
	v.Insert(item{id: 1}, 9) // staler copy ignored
	got, _ = v.Get(1)
	if got.Age != 2 {
		t.Fatalf("stale insert overwrote: age = %d", got.Age)
	}
}

func TestViewInsertEvictsOldest(t *testing.T) {
	v := NewView[item](2)
	v.Insert(item{id: 1}, 9)
	v.Insert(item{id: 2}, 1)
	v.Insert(item{id: 3}, 0)
	if v.Len() != 2 || v.Contains(1) {
		t.Fatalf("oldest not evicted: %v", v.IDs())
	}
	if !v.Contains(2) || !v.Contains(3) {
		t.Fatalf("wrong eviction: %v", v.IDs())
	}
}

func TestViewAgeAllSaturates(t *testing.T) {
	v := NewView[item](2)
	v.Insert(item{id: 1}, MaxAge-1)
	v.AgeAll()
	v.AgeAll()
	got, _ := v.Get(1)
	if got.Age != MaxAge {
		t.Fatalf("age = %d, want saturation at %d", got.Age, MaxAge)
	}
}

func TestViewOldestIsPartner(t *testing.T) {
	v := NewView[item](5)
	if _, ok := v.Oldest(); ok {
		t.Fatal("empty view returned a partner")
	}
	v.Insert(item{id: 1}, 3)
	v.Insert(item{id: 2}, 7)
	v.Insert(item{id: 3}, 5)
	got, ok := v.Oldest()
	if !ok || got.Val.Key() != 2 {
		t.Fatalf("oldest = %v", got.Val.Key())
	}
}

func TestViewRemove(t *testing.T) {
	v := NewView[item](5)
	v.Insert(item{id: 1}, 0)
	if !v.Remove(1) || v.Remove(1) {
		t.Fatal("Remove semantics wrong")
	}
	if v.Len() != 0 {
		t.Fatal("entry not removed")
	}
}

func TestViewSampleExcludes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewView[item](10)
	for i := 1; i <= 10; i++ {
		v.Insert(item{id: identity.NodeID(i)}, 0)
	}
	s := v.Sample(rng, 5, 3, 7)
	if len(s) != 5 {
		t.Fatalf("sample size = %d", len(s))
	}
	seen := map[identity.NodeID]bool{}
	for _, entry := range s {
		id := entry.Val.Key()
		if id == 3 || id == 7 {
			t.Fatal("excluded node sampled")
		}
		if seen[id] {
			t.Fatal("duplicate in sample")
		}
		seen[id] = true
	}
	// Request more than available.
	all := v.Sample(rng, 100)
	if len(all) != 10 {
		t.Fatalf("oversample = %d", len(all))
	}
}

func TestViewRandomAndPublics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := NewView[item](4)
	if _, ok := v.Random(rng); ok {
		t.Fatal("empty Random returned an entry")
	}
	v.Insert(item{id: 1, pub: true}, 0)
	v.Insert(item{id: 2}, 0)
	v.Insert(item{id: 3, pub: true}, 0)
	if v.PublicCount() != 2 || len(v.Publics()) != 2 {
		t.Fatalf("public count = %d", v.PublicCount())
	}
	if _, ok := v.Random(rng); !ok {
		t.Fatal("Random failed")
	}
}

func TestSelectKeepsFreshest(t *testing.T) {
	merged := []Entry[item]{e(1, false, 5), e(2, false, 1), e(3, false, 3), e(4, false, 2)}
	out := Select(merged, SelectOpts{Capacity: 2, Self: 99})
	if len(out) != 2 || out[0].Val.Key() != 2 || out[1].Val.Key() != 4 {
		t.Fatalf("kept %v", out)
	}
}

func TestSelectDropsSelfAndDedups(t *testing.T) {
	merged := []Entry[item]{e(7, false, 4), e(1, false, 9), e(1, false, 2), e(7, false, 1)}
	out := Select(merged, SelectOpts{Capacity: 10, Self: 7})
	if len(out) != 1 || out[0].Val.Key() != 1 || out[0].Age != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestSelectQuotaForcesPublics(t *testing.T) {
	// Unbiased selection would keep the four freshest N-nodes; quota 2
	// must pull the freshest P-nodes in, evicting the oldest N-nodes.
	merged := []Entry[item]{
		e(1, false, 0), e(2, false, 1), e(3, false, 2), e(4, false, 3),
		e(10, true, 5), e(11, true, 7), e(12, true, 9),
	}
	out := Select(merged, SelectOpts{Capacity: 4, Self: 99, MinPublic: 2})
	pubs := 0
	ids := map[identity.NodeID]bool{}
	for _, entry := range out {
		ids[entry.Val.Key()] = true
		if entry.Val.IsPublic() {
			pubs++
		}
	}
	if pubs != 2 {
		t.Fatalf("pubs = %d, want 2; out = %v", pubs, out)
	}
	if !ids[10] || !ids[11] {
		t.Fatalf("freshest P-nodes not selected: %v", out)
	}
	if !ids[1] || !ids[2] {
		t.Fatalf("freshest N-nodes evicted: %v", out)
	}
}

func TestSelectQuotaUnsatisfiable(t *testing.T) {
	merged := []Entry[item]{e(1, false, 0), e(2, false, 1)}
	out := Select(merged, SelectOpts{Capacity: 2, Self: 99, MinPublic: 3})
	if len(out) != 2 {
		t.Fatalf("unsatisfiable quota broke selection: %v", out)
	}
}

func TestSelectQuotaFillsUnderCapacity(t *testing.T) {
	// View smaller than capacity: quota should append the P-node, not
	// swap anything out.
	merged := []Entry[item]{e(1, true, 9)}
	out := Select(merged, SelectOpts{Capacity: 4, Self: 99, MinPublic: 1})
	if len(out) != 1 || !out[0].Val.IsPublic() {
		t.Fatalf("out = %v", out)
	}
}

func TestSelectCapExcessPublic(t *testing.T) {
	merged := []Entry[item]{
		e(10, true, 0), e(11, true, 1), e(12, true, 2), e(13, true, 3),
		e(1, false, 4), e(2, false, 5),
	}
	out := Select(merged, SelectOpts{Capacity: 4, Self: 99, MinPublic: 1, CapExcessPublic: true})
	pubs := 0
	for _, entry := range out {
		if entry.Val.IsPublic() {
			pubs++
		}
	}
	// Only two N-nodes exist, so the cap can reduce P-nodes to 2 at best.
	if pubs != 2 {
		t.Fatalf("cap bias kept %d P-nodes, want 2 (limited by N supply): %v", pubs, out)
	}
	// Without the cap, all four P-nodes (freshest) stay.
	out2 := Select(merged, SelectOpts{Capacity: 4, Self: 99, MinPublic: 1})
	pubs = 0
	for _, entry := range out2 {
		if entry.Val.IsPublic() {
			pubs++
		}
	}
	if pubs != 4 {
		t.Fatalf("uncapped selection altered: %v", out2)
	}
}

// Property: Select never exceeds capacity, never emits duplicates or
// self, and satisfies the quota whenever enough P-nodes exist in the
// merged input.
func TestPropertySelectInvariants(t *testing.T) {
	f := func(seed int64, capacity8, quota8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := int(capacity8%10) + 1
		quota := int(quota8 % 5)
		n := rng.Intn(40)
		merged := make([]Entry[item], 0, n)
		pubsIn := 0
		for i := 0; i < n; i++ {
			pub := rng.Intn(3) == 0
			if pub {
				pubsIn++
			}
			merged = append(merged, e(identity.NodeID(rng.Intn(20)+1), pub, uint16(rng.Intn(50))))
		}
		out := Select(merged, SelectOpts{Capacity: capacity, Self: 5, MinPublic: quota})
		if len(out) > capacity {
			return false
		}
		seen := map[identity.NodeID]bool{}
		pubsOut := 0
		for _, entry := range out {
			id := entry.Val.Key()
			if id == 5 || seen[id] {
				return false
			}
			seen[id] = true
			if entry.Val.IsPublic() {
				pubsOut++
			}
		}
		// Quota check: count distinct non-self P-node IDs available.
		distinctP := map[identity.NodeID]bool{}
		distinct := map[identity.NodeID]bool{}
		for _, entry := range merged {
			if entry.Val.Key() == 5 {
				continue
			}
			distinct[entry.Val.Key()] = true
			if entry.Val.IsPublic() {
				distinctP[entry.Val.Key()] = true
			}
		}
		// An ID may appear both as P and N copies in hostile input; skip
		// the quota assertion in that case (undefined publicness).
		ambiguous := false
		kinds := map[identity.NodeID]map[bool]bool{}
		for _, entry := range merged {
			id := entry.Val.Key()
			if kinds[id] == nil {
				kinds[id] = map[bool]bool{}
			}
			kinds[id][entry.Val.IsPublic()] = true
			if len(kinds[id]) > 1 {
				ambiguous = true
			}
		}
		if !ambiguous {
			want := quota
			if len(distinctP) < want {
				want = len(distinctP)
			}
			if space := capacity; space < want {
				want = space
			}
			if pubsOut < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCyclonFillsEmptySlots(t *testing.T) {
	v := NewView[item](4)
	v.Insert(item{id: 1}, 2)
	MergeCyclon(v, nil, []Entry[item]{e(2, false, 0), e(3, false, 1)}, SelectOpts{Capacity: 4, Self: 9})
	if v.Len() != 3 || !v.Contains(2) || !v.Contains(3) {
		t.Fatalf("view = %v", v.IDs())
	}
}

func TestMergeCyclonSwapsSentEntries(t *testing.T) {
	v := NewView[item](2)
	v.Insert(item{id: 1}, 2)
	v.Insert(item{id: 2}, 3)
	sent := []Entry[item]{e(1, false, 2)}
	MergeCyclon(v, sent, []Entry[item]{e(5, false, 9)}, SelectOpts{Capacity: 2, Self: 9})
	if !v.Contains(5) || v.Contains(1) {
		t.Fatalf("sent entry not swapped: %v", v.IDs())
	}
	if !v.Contains(2) {
		t.Fatal("unsent entry was evicted")
	}
}

func TestMergeCyclonHealerFallback(t *testing.T) {
	// Full view, nothing sent: a received entry only replaces a
	// strictly older one.
	v := NewView[item](2)
	v.Insert(item{id: 1}, 10)
	v.Insert(item{id: 2}, 1)
	MergeCyclon(v, nil, []Entry[item]{e(5, false, 3)}, SelectOpts{Capacity: 2, Self: 9})
	if !v.Contains(5) || v.Contains(1) {
		t.Fatalf("oldest not replaced: %v", v.IDs())
	}
	// A received entry older than everything is dropped.
	MergeCyclon(v, nil, []Entry[item]{e(6, false, 50)}, SelectOpts{Capacity: 2, Self: 9})
	if v.Contains(6) {
		t.Fatal("stale received entry inserted")
	}
}

func TestMergeCyclonDuplicateKeepsFresher(t *testing.T) {
	v := NewView[item](2)
	v.Insert(item{id: 1}, 5)
	MergeCyclon(v, nil, []Entry[item]{e(1, false, 2)}, SelectOpts{Capacity: 2, Self: 9})
	got, _ := v.Get(1)
	if got.Age != 2 {
		t.Fatalf("age = %d, want 2", got.Age)
	}
	MergeCyclon(v, nil, []Entry[item]{e(1, false, 7)}, SelectOpts{Capacity: 2, Self: 9})
	got, _ = v.Get(1)
	if got.Age != 2 {
		t.Fatalf("stale duplicate won: age = %d", got.Age)
	}
}

func TestMergeCyclonIgnoresSelf(t *testing.T) {
	v := NewView[item](2)
	MergeCyclon(v, nil, []Entry[item]{e(9, false, 0)}, SelectOpts{Capacity: 2, Self: 9})
	if v.Len() != 0 {
		t.Fatal("self inserted into own view")
	}
}

func TestMergeCyclonQuota(t *testing.T) {
	// Full view of N-nodes; received P-node beyond swap capacity must
	// still enter via the Π bias, replacing the oldest N-node.
	v := NewView[item](3)
	v.Insert(item{id: 1}, 4)
	v.Insert(item{id: 2}, 1)
	v.Insert(item{id: 3}, 8)
	MergeCyclon(v, nil, []Entry[item]{e(10, true, 30)}, SelectOpts{Capacity: 3, Self: 9, MinPublic: 1})
	if !v.Contains(10) {
		t.Fatalf("quota did not force P-node in: %v", v.IDs())
	}
	if v.Contains(3) {
		t.Fatal("quota should have replaced the oldest N-node (3)")
	}
	if v.PublicCount() != 1 {
		t.Fatalf("public count = %d", v.PublicCount())
	}
}

// gossipNet drives a transport-less PSS network: each round, every node
// performs one healer push-pull exchange by direct function calls. This
// validates the protocol policies independently of NAT and messaging.
type gossipNet struct {
	rng   *rand.Rand
	nodes map[identity.NodeID]*gossipNode
	order []identity.NodeID
	opts  SelectOpts
}

type gossipNode struct {
	self item
	view *View[item]
}

func newGossipNet(n int, c int, pubFrac float64, minPublic int, seed int64) *gossipNet {
	g := &gossipNet{
		rng:   rand.New(rand.NewSource(seed)),
		nodes: make(map[identity.NodeID]*gossipNode, n),
	}
	g.opts = SelectOpts{Capacity: c, MinPublic: minPublic}
	ids := make([]identity.NodeID, n)
	for i := 0; i < n; i++ {
		id := identity.NodeID(i + 1)
		ids[i] = id
		g.nodes[id] = &gossipNode{
			self: item{id: id, pub: g.rng.Float64() < pubFrac},
			view: NewView[item](c),
		}
		g.order = append(g.order, id)
	}
	// Bootstrap: ring + a random link, like a tracker handing out peers.
	for i, id := range ids {
		nd := g.nodes[id]
		nd.view.Insert(g.nodes[ids[(i+1)%n]].self, 0)
		nd.view.Insert(g.nodes[ids[g.rng.Intn(n)]].self, 0)
	}
	return g
}

const exchangeSize = 5

// round performs one Cyclon-with-ages cycle: each node (in random
// order) contacts its oldest entry, swaps buffers, and both sides merge
// with MergeCyclon under the configured Π bias.
func (g *gossipNet) round() {
	g.rng.Shuffle(len(g.order), func(i, j int) { g.order[i], g.order[j] = g.order[j], g.order[i] })
	for _, id := range g.order {
		a := g.nodes[id]
		a.view.AgeAll()
		partner, ok := a.view.Oldest()
		if !ok {
			continue
		}
		b, alive := g.nodes[partner.Val.Key()]
		if !alive {
			a.view.Remove(partner.Val.Key())
			continue
		}
		// Active side removes the partner (its slot is refilled by the
		// response) and ships self (age 0) plus a sample.
		a.view.Remove(partner.Val.Key())
		req := append([]Entry[item]{{Val: a.self}}, a.view.Sample(g.rng, exchangeSize-1)...)
		// Passive side replies with a sample excluding the requester.
		resp := b.view.Sample(g.rng, exchangeSize, id)
		bo := g.opts
		bo.Self = b.self.id
		MergeCyclon(b.view, resp, req, bo)
		ao := g.opts
		ao.Self = a.self.id
		MergeCyclon(a.view, req, resp, ao)
	}
}

func (g *gossipNet) graph() graph.Directed {
	out := make(graph.Directed, len(g.nodes))
	for id, nd := range g.nodes {
		out[id] = nd.view.IDs()
	}
	return out
}

func TestGossipConvergesToRandomGraph(t *testing.T) {
	g := newGossipNet(300, 10, 0.3, 0, 10)
	for i := 0; i < 40; i++ {
		g.round()
	}
	gr := g.graph()
	if !gr.WeaklyConnected() {
		t.Fatal("overlay disconnected")
	}
	cc := gr.ClusteringCoefficients()
	var sum float64
	for _, v := range cc {
		sum += v
	}
	if avg := sum / float64(len(cc)); avg > 0.15 {
		t.Fatalf("avg clustering %.3f, want < 0.15 (random-graph regime)", avg)
	}
	// In-degree balance: no node should dominate.
	in := gr.InDegrees()
	maxIn := 0
	for _, d := range in {
		if d > maxIn {
			maxIn = d
		}
	}
	if maxIn > 45 {
		t.Fatalf("max in-degree %d, want bounded (c=10)", maxIn)
	}
}

func TestGossipBiasMaintainsQuota(t *testing.T) {
	const quota = 3
	g := newGossipNet(300, 10, 0.3, quota, 11)
	for i := 0; i < 40; i++ {
		g.round()
	}
	violations := 0
	for _, nd := range g.nodes {
		if nd.view.PublicCount() < quota {
			violations++
		}
	}
	// Transient dips are possible right after an exchange, but with 30%
	// P-nodes the quota should essentially always hold.
	if violations > len(g.nodes)/100 {
		t.Fatalf("%d/%d views below Π=%d", violations, len(g.nodes), quota)
	}
}

func TestGossipUnbiasedViolatesQuotaSometimes(t *testing.T) {
	// Sanity check that the biased result above is not vacuous: without
	// the bias, a noticeable share of views has < 3 P-nodes.
	g := newGossipNet(300, 10, 0.3, 0, 11)
	for i := 0; i < 40; i++ {
		g.round()
	}
	below := 0
	for _, nd := range g.nodes {
		if nd.view.PublicCount() < 3 {
			below++
		}
	}
	if below == 0 {
		t.Fatal("unbiased PSS never dips below 3 P-nodes; bias test proves nothing")
	}
}

func TestGossipHealsDeadNodes(t *testing.T) {
	g := newGossipNet(200, 10, 0.3, 0, 12)
	for i := 0; i < 20; i++ {
		g.round()
	}
	// Kill 20 nodes: entries pointing to them must disappear from all
	// live views within a bounded number of cycles (healer property).
	dead := map[identity.NodeID]bool{}
	for id := identity.NodeID(1); id <= 20; id++ {
		dead[id] = true
		delete(g.nodes, id)
	}
	g.order = g.order[:0]
	for id := range g.nodes {
		g.order = append(g.order, id)
	}
	for i := 0; i < 30; i++ {
		g.round()
	}
	for id, nd := range g.nodes {
		for _, ref := range nd.view.IDs() {
			if dead[ref] {
				t.Fatalf("node %v still references dead node %v after 30 cycles", id, ref)
			}
		}
	}
	if !g.graph().WeaklyConnected() {
		t.Fatal("overlay disconnected after churn")
	}
}

func BenchmarkSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	merged := make([]Entry[item], 20)
	for i := range merged {
		merged[i] = e(identity.NodeID(i+1), rng.Intn(3) == 0, uint16(rng.Intn(30)))
	}
	opts := SelectOpts{Capacity: 10, Self: 99, MinPublic: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Select(merged, opts)
	}
}

func BenchmarkGossipRound300Nodes(b *testing.B) {
	g := newGossipNet(300, 10, 0.3, 3, 13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.round()
	}
}

// Property: MergeCyclon never exceeds capacity, never duplicates, never
// inserts self, and (given enough P-node candidates) satisfies the
// quota — for arbitrary view states, sent buffers and received buffers.
func TestPropertyMergeCyclonInvariants(t *testing.T) {
	f := func(seed int64, cap8, quota8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := int(cap8%8) + 2
		quota := int(quota8 % 4)
		v := NewView[item](capacity)
		// publicness must be a stable function of the ID for the quota
		// invariant to be well-defined.
		isPub := func(id identity.NodeID) bool { return id%3 == 0 }
		mk := func() Entry[item] {
			id := identity.NodeID(rng.Intn(25) + 1)
			return Entry[item]{Val: item{id: id, pub: isPub(id)}, Age: uint16(rng.Intn(40))}
		}
		for i := 0; i < rng.Intn(capacity+1); i++ {
			e := mk()
			if e.Val.Key() == 5 {
				continue // Insert is a bootstrap API; callers filter self
			}
			v.Insert(e.Val, e.Age)
		}
		opts := SelectOpts{Capacity: capacity, Self: 5, MinPublic: quota}
		for round := 0; round < 6; round++ {
			var sent, received []Entry[item]
			for i := 0; i < rng.Intn(6); i++ {
				sent = append(sent, mk())
			}
			for i := 0; i < rng.Intn(6); i++ {
				received = append(received, mk())
			}
			before := map[identity.NodeID]bool{}
			for _, id := range v.IDs() {
				before[id] = true
			}
			MergeCyclon(v, sent, received, opts)
			if v.Len() > capacity {
				return false
			}
			seen := map[identity.NodeID]bool{}
			for _, id := range v.IDs() {
				if id == 5 || seen[id] {
					return false
				}
				seen[id] = true
			}
			// Quota: if enough distinct P-nodes existed among the prior
			// view and the received buffer, it must be satisfied.
			distinctP := map[identity.NodeID]bool{}
			for id := range before {
				if isPub(id) {
					distinctP[id] = true
				}
			}
			for _, e := range received {
				if e.Val.IsPublic() && e.Val.Key() != 5 {
					distinctP[e.Val.Key()] = true
				}
			}
			want := quota
			if len(distinctP) < want {
				want = len(distinctP)
			}
			if capacity < want {
				want = capacity
			}
			if v.PublicCount() < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(14))}); err != nil {
		t.Fatal(err)
	}
}
