package pss

import (
	"math/rand"
	"testing"

	"whisper/internal/identity"
)

// TestSampleIntoMatchesSample pins the scratch-reuse path to the
// allocating path draw for draw: with identical rng state the two must
// return the same entries in the same order, since the gossip hot path
// swapped one for the other.
func TestSampleIntoMatchesSample(t *testing.T) {
	v := NewView[item](20)
	for i := 1; i <= 20; i++ {
		v.Insert(item{id: identity.NodeID(i), pub: i%3 == 0}, uint16(i))
	}
	var scratch []Entry[item]
	for round := 0; round < 50; round++ {
		r1 := rand.New(rand.NewSource(int64(round)))
		r2 := rand.New(rand.NewSource(int64(round)))
		want := v.Sample(r1, 5, 3, 7)
		scratch = v.SampleInto(scratch, r2, 5, 3, 7)
		if len(want) != len(scratch) {
			t.Fatalf("round %d: lengths differ: %d vs %d", round, len(want), len(scratch))
		}
		for i := range want {
			if want[i] != scratch[i] {
				t.Fatalf("round %d entry %d: SampleInto diverged from Sample: %+v vs %+v", round, i, scratch[i], want[i])
			}
		}
	}
}

// TestSampleIntoZeroAllocs pins the gossip hot-path optimization: once
// the scratch slice has grown to capacity, serving a shuffle sample
// allocates nothing.
func TestSampleIntoZeroAllocs(t *testing.T) {
	v := NewView[item](20)
	for i := 1; i <= 20; i++ {
		v.Insert(item{id: identity.NodeID(i)}, 0)
	}
	rng := rand.New(rand.NewSource(9))
	scratch := make([]Entry[item], 0, v.Len())
	allocs := testing.AllocsPerRun(100, func() {
		scratch = v.SampleInto(scratch, rng, 5, 3)
	})
	if allocs != 0 {
		t.Errorf("SampleInto allocates %.1f per run with warm scratch, want 0", allocs)
	}
}
