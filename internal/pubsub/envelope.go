package pubsub

import (
	"crypto/hkdf"
	"crypto/sha256"

	"whisper/internal/crypt"
	"whisper/internal/wire"
)

// Tag is the PPSS payload tag of pub/sub envelopes (first byte of the
// app payload; broadcast owns 0x60).
const Tag uint8 = 0x70

// TopicTag is the on-wire identifier of a topic: the first four bytes
// of a domain-separated SHA-256 of the topic string. Relays and
// collectors see only this tag; inverting it back to the topic string
// is a preimage problem, and the 32-bit truncation means distinct
// topics may even collide — deliberately, since a collision only costs
// a little extra forwarding while deepening deniability.
type TopicTag [4]byte

// HashTopic derives the canonical tag for a topic string.
func HashTopic(topic string) TopicTag {
	h := sha256.Sum256([]byte("whisper-pubsub-topic:" + topic))
	var t TopicTag
	copy(t[:], h[:4])
	return t
}

// TopicKey derives the per-topic content key from the group's root
// public key and the topic string. Both inputs are group-internal
// knowledge (the root key ships only inside join responses, the topic
// string never leaves the application), so only members who know the
// topic can decrypt its envelopes — a member subscribed to nothing
// relays ciphertext it cannot read. Deriving from the epoch-0 key
// keeps the key stable across leader re-elections.
func TopicKey(groupRoot crypt.PublicKey, topic string) ([]byte, error) {
	secret := crypt.MarshalPublicKey(groupRoot)
	return hkdf.Key(sha256.New, secret, []byte("whisper/pubsub/v1"), topic, crypt.SymKeySize)
}

// Envelope is one published message in flight: the topic tag in the
// clear (routing needs it) and the payload sealed under the topic key.
type Envelope struct {
	// ID is the publisher-drawn random identifier used for duplicate
	// suppression.
	ID uint64
	// Topic is the 4-byte topic tag.
	Topic TopicTag
	// Hops is the remaining relay budget; each forwarder decrements it
	// and drops the envelope at zero, bounding the flood.
	Hops uint8
	// Ct is the AES-256-GCM ciphertext of the application payload under
	// the topic key.
	Ct []byte
}

// MaxEnvelopeCt bounds decoded ciphertexts (hostile input).
const MaxEnvelopeCt = 1 << 20

// Encode serializes the envelope as a PPSS app payload (leading Tag
// byte included).
func (e Envelope) Encode() []byte {
	w := wire.NewWriter(20 + len(e.Ct))
	w.U8(Tag)
	w.U64(e.ID)
	w.Raw(e.Topic[:])
	w.U8(e.Hops)
	w.Bytes32(e.Ct)
	return w.Bytes()
}

// sealTopic and openTopic wrap the symmetric AEAD, charging the
// node's crypto CPU meter like every other layer.
func sealTopic(p *PubSub, key, plaintext []byte) ([]byte, error) {
	return crypt.SealSym(p.inst.CPU(), key, plaintext)
}

func openTopic(p *PubSub, key, ct []byte) ([]byte, error) {
	return crypt.OpenSym(p.inst.CPU(), key, ct)
}

// DecodeEnvelope parses a PPSS app payload carrying an envelope.
func DecodeEnvelope(payload []byte) (Envelope, bool) {
	r := wire.NewReader(payload)
	if r.U8() != Tag {
		return Envelope{}, false
	}
	var e Envelope
	e.ID = r.U64()
	copy(e.Topic[:], r.Raw(4))
	e.Hops = r.U8()
	e.Ct = r.Bytes32()
	if r.Err() != nil || len(e.Ct) > MaxEnvelopeCt {
		return Envelope{}, false
	}
	return e, true
}
