package pubsub

import (
	"bytes"
	"testing"

	"whisper/internal/crypt"
)

func TestHashTopicPrivacy(t *testing.T) {
	a, b := HashTopic("politics"), HashTopic("weather")
	if a == b {
		t.Error("distinct topics hashed to the same tag")
	}
	if bytes.Contains(a[:], []byte("poli")) || bytes.Equal(a[:], []byte("poli")) {
		t.Error("tag leaks topic string bytes")
	}
	if HashTopic("politics") != a {
		t.Error("tag not deterministic")
	}
}

func TestTopicKeySeparation(t *testing.T) {
	root, err := crypt.GenerateKey(crypt.SuiteECC, 0)
	if err != nil {
		t.Fatal(err)
	}
	ka, err := TopicKey(root.Public(), "a")
	if err != nil {
		t.Fatal(err)
	}
	kb, err := TopicKey(root.Public(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ka, kb) {
		t.Fatal("different topics derived the same key")
	}
	if len(ka) != crypt.SymKeySize {
		t.Fatalf("topic key is %d bytes, want %d", len(ka), crypt.SymKeySize)
	}
	// A ciphertext sealed for topic a must not open under topic b's key:
	// a relay that knows the group but not the topic reads nothing.
	ct, err := crypt.SealSym(nil, ka, []byte("confidential"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crypt.OpenSym(nil, kb, ct); err == nil {
		t.Error("topic-b key opened a topic-a ciphertext")
	}
	pt, err := crypt.OpenSym(nil, ka, ct)
	if err != nil || string(pt) != "confidential" {
		t.Errorf("right key failed to open: %v", err)
	}
}

func TestEnvelopeRoundtrip(t *testing.T) {
	e := Envelope{ID: 0xdeadbeef, Topic: HashTopic("t"), Hops: 3, Ct: []byte{1, 2, 3}}
	enc := e.Encode()
	if enc[0] != Tag {
		t.Fatalf("encoded envelope starts with %#x, want Tag %#x", enc[0], Tag)
	}
	got, ok := DecodeEnvelope(enc)
	if !ok {
		t.Fatal("decode failed")
	}
	if got.ID != e.ID || got.Topic != e.Topic || got.Hops != e.Hops || !bytes.Equal(got.Ct, e.Ct) {
		t.Errorf("roundtrip mismatch: got %+v want %+v", got, e)
	}
}

func TestDecodeEnvelopeRejectsGarbage(t *testing.T) {
	if _, ok := DecodeEnvelope(nil); ok {
		t.Error("accepted empty payload")
	}
	if _, ok := DecodeEnvelope([]byte{0x60, 1, 2, 3}); ok {
		t.Error("accepted wrong tag")
	}
	e := Envelope{ID: 1, Topic: HashTopic("t"), Hops: 1, Ct: []byte{9}}
	if _, ok := DecodeEnvelope(e.Encode()[:8]); ok {
		t.Error("accepted truncated envelope")
	}
}

func FuzzDecodeEnvelope(f *testing.F) {
	f.Add(Envelope{ID: 1, Topic: HashTopic("seed"), Hops: 4, Ct: []byte("ct")}.Encode())
	f.Add([]byte{Tag})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		e, ok := DecodeEnvelope(payload)
		if !ok {
			return
		}
		if len(e.Ct) > MaxEnvelopeCt {
			t.Fatal("decoded ciphertext beyond bound")
		}
		again, ok := DecodeEnvelope(e.Encode())
		if !ok {
			t.Fatal("re-decode of valid envelope failed")
		}
		if again.ID != e.ID || again.Topic != e.Topic || again.Hops != e.Hops || !bytes.Equal(again.Ct, e.Ct) {
			t.Fatal("decode/encode not canonical")
		}
	})
}
