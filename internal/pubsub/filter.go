// Package pubsub implements topic-based publish/subscribe inside a
// private group: the fan-out-heavy application layer the ROADMAP names
// beside T-Chord and broadcast. Envelopes carry a short hash of the
// topic (never the topic string) plus a payload encrypted under a
// per-topic key derived from group-internal knowledge; subscriptions
// are expressed as per-member bloom filters piggybacked on PPSS gossip
// shuffles, so relays route envelopes toward probable subscribers
// without ever learning who subscribes to what — a filter bit proves
// nothing, because false positives are part of the design (the
// plausible-deniability argument of Talek-style private pub/sub).
package pubsub

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"whisper/internal/wire"
)

// Filter defaults: m = 256 bits keeps the whole digest smaller than a
// single view entry, k = 4 puts the false-positive rate for a handful
// of subscriptions well under 1%.
const (
	DefaultFilterBits   = 256
	DefaultFilterHashes = 4

	// MaxFilterBytes bounds decoded filters (hostile input).
	MaxFilterBytes = 4096
	// MaxFilterHashes bounds k on decode.
	MaxFilterHashes = 16
)

// Filter is one member's subscription digest: a bloom filter over the
// topic tags the member subscribes to. Filters are versioned so stale
// gossip copies lose to fresher ones, and tunable in both size (m =
// 8*len(Bits)) and hash count (k).
type Filter struct {
	// Version orders digest updates; higher wins during gossip merge.
	Version uint32
	// K is the number of hash probes per tag.
	K uint8
	// Bits is the filter bit array (m = 8*len(Bits) bits).
	Bits []byte
}

// NewFilter returns an empty filter with m bits (rounded up to a whole
// byte, minimum 8) and k hash probes.
func NewFilter(m, k int) *Filter {
	if m <= 0 {
		m = DefaultFilterBits
	}
	if k <= 0 {
		k = DefaultFilterHashes
	}
	if k > MaxFilterHashes {
		k = MaxFilterHashes
	}
	bytes := (m + 7) / 8
	return &Filter{K: uint8(k), Bits: make([]byte, bytes)}
}

// M returns the filter size in bits.
func (f *Filter) M() int { return 8 * len(f.Bits) }

// positions derives the k bit positions for a tag by double hashing
// (Kirsch–Mitzenmacher): the tag is itself a hash, but the probe
// stream is re-derived under a distinct domain so filter bits are
// independent of the on-wire tag bits.
func (f *Filter) position(t TopicTag, i int) int {
	var buf [len(bitDomain) + 4]byte
	copy(buf[:], bitDomain)
	copy(buf[len(bitDomain):], t[:])
	h := sha256.Sum256(buf[:])
	h1 := binary.BigEndian.Uint32(h[0:4])
	h2 := binary.BigEndian.Uint32(h[4:8]) | 1 // odd, so probes cycle through all positions
	return int((h1 + uint32(i)*h2) % uint32(f.M()))
}

const bitDomain = "whisper-pubsub-bit:"

// Add sets the tag's bits.
func (f *Filter) Add(t TopicTag) {
	for i := 0; i < int(f.K); i++ {
		p := f.position(t, i)
		f.Bits[p/8] |= 1 << (p % 8)
	}
}

// Test reports whether the tag may be in the filter. False positives
// occur with the usual bloom probability; false negatives never.
func (f *Filter) Test(t TopicTag) bool {
	if len(f.Bits) == 0 {
		return false
	}
	for i := 0; i < int(f.K); i++ {
		p := f.position(t, i)
		if f.Bits[p/8]&(1<<(p%8)) == 0 {
			return false
		}
	}
	return true
}

// Or merges another filter of identical geometry into f (bitwise OR),
// the operation a relay uses to aggregate the interests it routes for.
func (f *Filter) Or(o *Filter) error {
	if len(o.Bits) != len(f.Bits) || o.K != f.K {
		return errors.New("pubsub: filter geometry mismatch")
	}
	for i, b := range o.Bits {
		f.Bits[i] |= b
	}
	return nil
}

// FillRatio returns the fraction of set bits — the load factor that
// governs the false-positive rate.
func (f *Filter) FillRatio() float64 {
	if len(f.Bits) == 0 {
		return 0
	}
	set := 0
	for _, b := range f.Bits {
		for ; b != 0; b &= b - 1 {
			set++
		}
	}
	return float64(set) / float64(f.M())
}

// Encode serializes the filter for the PPSS digest piggyback.
func (f *Filter) Encode() []byte {
	w := wire.NewWriter(8 + len(f.Bits))
	w.U32(f.Version)
	w.U8(f.K)
	w.Bytes16(f.Bits)
	return w.Bytes()
}

// DecodeFilter parses an encoded filter, rejecting hostile sizes.
func DecodeFilter(blob []byte) (*Filter, error) {
	r := wire.NewReader(blob)
	f := &Filter{}
	f.Version = r.U32()
	f.K = r.U8()
	f.Bits = r.Bytes16()
	if err := r.Close(); err != nil {
		return nil, err
	}
	if len(f.Bits) == 0 || len(f.Bits) > MaxFilterBytes {
		return nil, errors.New("pubsub: filter size out of range")
	}
	if f.K == 0 || f.K > MaxFilterHashes {
		return nil, errors.New("pubsub: filter hash count out of range")
	}
	return f, nil
}
