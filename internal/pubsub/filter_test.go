package pubsub

import (
	"bytes"
	"fmt"
	"testing"
)

func TestFilterAddTest(t *testing.T) {
	f := NewFilter(256, 4)
	tags := make([]TopicTag, 16)
	for i := range tags {
		tags[i] = HashTopic(fmt.Sprintf("topic-%d", i))
		f.Add(tags[i])
	}
	for i, tag := range tags {
		if !f.Test(tag) {
			t.Errorf("tag %d not found after Add (bloom filters have no false negatives)", i)
		}
	}
	if f.FillRatio() <= 0 || f.FillRatio() > 1 {
		t.Errorf("fill ratio %f out of range", f.FillRatio())
	}
}

func TestFilterFalsePositiveRateFallsWithSize(t *testing.T) {
	subscribed := []TopicTag{HashTopic("a"), HashTopic("b")}
	rate := func(m int) float64 {
		f := NewFilter(m, 4)
		for _, tag := range subscribed {
			f.Add(tag)
		}
		hits := 0
		const probes = 4096
		for i := 0; i < probes; i++ {
			if f.Test(HashTopic(fmt.Sprintf("probe-%d", i))) {
				hits++
			}
		}
		return float64(hits) / probes
	}
	small, large := rate(16), rate(1024)
	if small == 0 {
		t.Error("m=16 with 2 tags should show measurable false positives")
	}
	if large >= small {
		t.Errorf("false-positive rate did not fall with filter size: m=16 %.4f, m=1024 %.4f", small, large)
	}
}

func TestFilterEncodeDecodeRoundtrip(t *testing.T) {
	f := NewFilter(128, 3)
	f.Version = 7
	f.Add(HashTopic("x"))
	f.Add(HashTopic("y"))
	got, err := DecodeFilter(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != f.Version || got.K != f.K || !bytes.Equal(got.Bits, f.Bits) {
		t.Errorf("roundtrip mismatch: got %+v want %+v", got, f)
	}
}

func TestDecodeFilterRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"truncated": NewFilter(256, 4).Encode()[:3],
		"zero-k":    {0, 0, 0, 1, 0, 0, 1, 0xff},                   // k = 0
		"many-k":    {0, 0, 0, 1, MaxFilterHashes + 1, 0, 1, 0xff}, // k beyond bound
		"trailing":  append(NewFilter(64, 4).Encode(), 0xde, 0xad), // junk after the blob
	}
	for name, blob := range cases {
		if _, err := DecodeFilter(blob); err == nil {
			t.Errorf("%s: DecodeFilter accepted invalid input", name)
		}
	}
	// Oversize bit arrays must be rejected too (hostile gossip input).
	big := NewFilter(MaxFilterBytes*8+8, 4)
	if _, err := DecodeFilter(big.Encode()); err == nil {
		t.Error("oversize filter accepted")
	}
}

func TestFilterOrMergesGeometry(t *testing.T) {
	a, b := NewFilter(64, 4), NewFilter(64, 4)
	a.Add(HashTopic("left"))
	b.Add(HashTopic("right"))
	if err := a.Or(b); err != nil {
		t.Fatalf("Or rejected same-geometry filter: %v", err)
	}
	if !a.Test(HashTopic("left")) || !a.Test(HashTopic("right")) {
		t.Error("Or lost bits")
	}
	c := NewFilter(128, 4)
	if a.Or(c) == nil {
		t.Error("Or accepted mismatched geometry")
	}
}

func FuzzDecodeFilter(f *testing.F) {
	f.Add(NewFilter(256, 4).Encode())
	seeded := NewFilter(64, 2)
	seeded.Add(HashTopic("seed"))
	f.Add(seeded.Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 4, 0, 0, 0, 1, 0xab})
	f.Fuzz(func(t *testing.T, blob []byte) {
		flt, err := DecodeFilter(blob)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to a blob that decodes to the
		// same filter (canonical form), and must be probe-safe.
		flt.Test(HashTopic("probe"))
		again, err := DecodeFilter(flt.Encode())
		if err != nil {
			t.Fatalf("re-decode of valid filter failed: %v", err)
		}
		if again.Version != flt.Version || again.K != flt.K || !bytes.Equal(again.Bits, flt.Bits) {
			t.Fatal("decode/encode not canonical")
		}
	})
}
