package pubsub

import (
	"fmt"
	"sort"
	"time"

	"whisper/internal/dedup"
	"whisper/internal/identity"
	"whisper/internal/obs"
	"whisper/internal/ppss"
	"whisper/internal/transport"
)

// Config parameterizes one group's pub/sub endpoint.
type Config struct {
	// FilterBits is m, the subscription filter size in bits (default 256).
	FilterBits int
	// FilterHashes is k, the probes per tag (default 4).
	FilterHashes int
	// Hops bounds the relay depth of one envelope (default 4).
	Hops int
	// MatchFanout caps the digest-matched forwards per envelope per
	// relay (default 8).
	MatchFanout int
	// Spray is the number of extra random view peers the publisher
	// seeds an envelope to, covering subscribers whose digest has not
	// reached it yet. Relays never spray — they forward only toward
	// matching filters — so the flood stays bounded.
	Spray int
	// CacheSize bounds the per-topic duplicate-suppression LRU
	// (default 2048 envelopes).
	CacheSize int
	// Obs is the scope pub/sub instruments register under. Nil defaults
	// to the instance's group scope.
	Obs *obs.Scope
}

func (c Config) withDefaults() Config {
	if c.FilterBits == 0 {
		c.FilterBits = DefaultFilterBits
	}
	if c.FilterHashes == 0 {
		c.FilterHashes = DefaultFilterHashes
	}
	if c.Hops == 0 {
		c.Hops = 4
	}
	if c.MatchFanout == 0 {
		c.MatchFanout = 8
	}
	if c.Spray == 0 {
		c.Spray = 2
	}
	if c.CacheSize == 0 {
		c.CacheSize = 2048
	}
	return c
}

// Stats is a snapshot of pub/sub events, read through PubSub.Stats.
type Stats struct {
	Published      uint64
	Delivered      uint64
	Duplicates     uint64
	Matched        uint64
	Forwards       uint64
	BytesForwarded uint64
	FalsePositives uint64
	Expired        uint64
	Undecryptable  uint64
}

type met struct {
	published      *obs.Counter
	delivered      *obs.Counter
	duplicates     *obs.Counter
	matched        *obs.Counter
	forwards       *obs.Counter
	bytesForwarded *obs.Counter
	falsePositives *obs.Counter
	expired        *obs.Counter
	undecryptable  *obs.Counter
	matchLatency   *obs.Histogram
}

func newMet(sc *obs.Scope) met {
	return met{
		published:      sc.Counter("pubsub_published_total"),
		delivered:      sc.Counter("pubsub_delivered_total"),
		duplicates:     sc.Counter("pubsub_duplicates_total"),
		matched:        sc.Counter("pubsub_matched_total"),
		forwards:       sc.Counter("pubsub_forwards_total"),
		bytesForwarded: sc.Counter("pubsub_forward_bytes_total"),
		falsePositives: sc.Counter("pubsub_false_positives_total"),
		expired:        sc.Counter("pubsub_expired_total"),
		undecryptable:  sc.Counter("pubsub_undecryptable_total"),
		matchLatency:   sc.Histogram("pubsub_match_ms"),
	}
}

// envKey identifies one envelope in the dedup LRU: the topic tag keeps
// the suppression per-topic, the publisher-drawn ID disambiguates
// within it.
type envKey struct {
	topic TopicTag
	id    uint64
}

// topicState is one local subscription.
type topicState struct {
	name string
	key  []byte
}

// cachedFilter memoizes a decoded peer digest by version, so matching
// an envelope against the digest table costs bit probes, not parses.
type cachedFilter struct {
	version uint32
	filter  *Filter
}

// PubSub is one member's topic pub/sub endpoint on one private group.
// It is not safe for concurrent use; like every protocol object in
// this repository it lives on its node's single dispatch goroutine.
type PubSub struct {
	inst *ppss.Instance
	rt   transport.Transport
	cfg  Config

	topics  map[TopicTag]*topicState
	filter  *Filter
	version uint32

	seen    *dedup.Seen[envKey]
	decoded map[identity.NodeID]cachedFilter

	// OnDeliver receives each subscribed message exactly once,
	// including the member's own publications to subscribed topics.
	OnDeliver func(topic string, payload []byte)

	met met
}

// New attaches a pub/sub endpoint to a group instance. Until the first
// Subscribe or Publish the endpoint is passive: no digest is gossiped
// and no envelope is sent, so an attached-but-unused endpoint is
// indistinguishable from no endpoint at all (the zero-behavior
// contract the disabled-path test pins).
func New(inst *ppss.Instance, cfg Config) *PubSub {
	cfg = cfg.withDefaults()
	if cfg.Obs == nil {
		cfg.Obs = inst.Obs()
	}
	p := &PubSub{
		inst:    inst,
		rt:      inst.Runtime(),
		cfg:     cfg,
		topics:  make(map[TopicTag]*topicState),
		filter:  NewFilter(cfg.FilterBits, cfg.FilterHashes),
		seen:    dedup.New[envKey](cfg.CacheSize),
		decoded: make(map[identity.NodeID]cachedFilter),
		met:     newMet(cfg.Obs),
	}
	inst.Subscribe(Tag, p.handle)
	return p
}

// Close detaches the endpoint from its instance.
func (p *PubSub) Close() { p.inst.Subscribe(Tag, nil) }

// Stats returns a snapshot of the endpoint's counters.
func (p *PubSub) Stats() Stats {
	return Stats{
		Published:      p.met.published.Value(),
		Delivered:      p.met.delivered.Value(),
		Duplicates:     p.met.duplicates.Value(),
		Matched:        p.met.matched.Value(),
		Forwards:       p.met.forwards.Value(),
		BytesForwarded: p.met.bytesForwarded.Value(),
		FalsePositives: p.met.falsePositives.Value(),
		Expired:        p.met.expired.Value(),
		Undecryptable:  p.met.undecryptable.Value(),
	}
}

// Topics returns the subscribed topic names, sorted.
func (p *PubSub) Topics() []string {
	out := make([]string, 0, len(p.topics))
	for _, ts := range p.topics {
		out = append(out, ts.name)
	}
	sort.Strings(out)
	return out
}

// Filter returns the member's own subscription filter (live, not a
// copy).
func (p *PubSub) Filter() *Filter { return p.filter }

// Subscribe registers interest in a topic: the topic key is derived,
// the tag enters the local filter, and the refreshed digest is handed
// to the PPSS for gossip piggybacking.
func (p *PubSub) Subscribe(topic string) error {
	tag := HashTopic(topic)
	if _, ok := p.topics[tag]; ok {
		return nil
	}
	key, err := TopicKey(p.inst.GroupRootKey(), topic)
	if err != nil {
		return fmt.Errorf("pubsub: deriving topic key: %w", err)
	}
	p.topics[tag] = &topicState{name: topic, key: key}
	p.filter.Add(tag)
	p.pushDigest()
	return nil
}

// Unsubscribe drops a topic. Bloom filters cannot unset bits, so the
// filter is rebuilt from the remaining subscriptions.
func (p *PubSub) Unsubscribe(topic string) {
	tag := HashTopic(topic)
	if _, ok := p.topics[tag]; !ok {
		return
	}
	delete(p.topics, tag)
	p.filter = NewFilter(p.cfg.FilterBits, p.cfg.FilterHashes)
	for t := range p.topics {
		p.filter.Add(t)
	}
	p.pushDigest()
}

// pushDigest versions the filter and hands it to the PPSS instance for
// shuffle piggybacking.
func (p *PubSub) pushDigest() {
	p.version++
	p.filter.Version = p.version
	p.inst.SetSelfDigest(p.version, p.filter.Encode())
}

// Publish seals payload under the topic key and seeds the envelope
// toward matching subscribers (plus a small random spray, covering
// members whose digest has not gossiped here yet). The publisher need
// not be subscribed to the topic; if it is, it delivers to itself.
func (p *PubSub) Publish(topic string, payload []byte) error {
	tag := HashTopic(topic)
	key, err := TopicKey(p.inst.GroupRootKey(), topic)
	if err != nil {
		return fmt.Errorf("pubsub: deriving topic key: %w", err)
	}
	ct, err := sealTopic(p, key, payload)
	if err != nil {
		return fmt.Errorf("pubsub: sealing payload: %w", err)
	}
	env := Envelope{
		ID:    p.rt.Rand().Uint64(),
		Topic: tag,
		Hops:  uint8(p.cfg.Hops),
		Ct:    ct,
	}
	p.seen.Add(envKey{topic: tag, id: env.ID})
	p.met.published.Inc()
	if ts := p.topics[tag]; ts != nil {
		p.met.delivered.Inc()
		if p.OnDeliver != nil {
			p.OnDeliver(ts.name, payload)
		}
	}
	p.forward(env, p.inst.SelfEntry().ID, p.cfg.Spray)
	return nil
}

// handle processes one received envelope: dedup, local delivery when
// subscribed, and filter-matched relaying while the hop budget lasts.
func (p *PubSub) handle(from ppss.Entry, payload []byte) {
	env, ok := DecodeEnvelope(payload)
	if !ok {
		return
	}
	start := time.Now()
	if p.seen.Add(envKey{topic: env.Topic, id: env.ID}) {
		p.met.duplicates.Inc()
		return
	}
	if ts := p.topics[env.Topic]; ts != nil {
		pt, err := openTopic(p, ts.key, env.Ct)
		if err != nil {
			p.met.undecryptable.Inc()
		} else {
			p.met.delivered.Inc()
			if p.OnDeliver != nil {
				p.OnDeliver(ts.name, pt)
			}
		}
	} else if p.filter.Test(env.Topic) {
		// Our own filter matched a topic we do not subscribe to: a
		// real-traffic measurement of the bloom false-positive rate.
		p.met.falsePositives.Inc()
	}
	if env.Hops == 0 {
		p.met.expired.Inc()
	} else {
		env.Hops--
		p.forward(env, from.ID, 0)
	}
	p.met.matchLatency.Observe(float64(time.Since(start).Microseconds()) / 1000)
}

// peerFilter returns the decoded filter of one gossip digest, cached
// by version.
func (p *PubSub) peerFilter(d ppss.SubDigest) *Filter {
	if c, ok := p.decoded[d.Owner]; ok && c.version == d.Version {
		return c.filter
	}
	f, err := DecodeFilter(d.Blob)
	if err != nil {
		return nil
	}
	p.decoded[d.Owner] = cachedFilter{version: d.Version, filter: f}
	return f
}

// forward relays an envelope toward every digest whose filter matches
// the topic (bounded by MatchFanout), over pooled WCL circuits — the
// repeated envelope traffic toward a stable subscriber set is exactly
// the workload circuits amortize. spray > 0 additionally seeds random
// view peers over one-shot routes (publisher only).
func (p *PubSub) forward(env Envelope, exclude identity.NodeID, spray int) {
	enc := env.Encode()
	self := p.inst.SelfEntry().ID
	sent := map[identity.NodeID]bool{self: true, exclude: true}
	matched := 0
	for _, d := range p.inst.Digests() {
		if matched >= p.cfg.MatchFanout {
			break
		}
		if sent[d.Owner] {
			continue
		}
		f := p.peerFilter(d)
		if f == nil || !f.Test(env.Topic) {
			continue
		}
		p.met.matched.Inc()
		e, ok := p.inst.Lookup(d.Owner)
		if !ok {
			e = d.Entry
		}
		sent[d.Owner] = true
		matched++
		p.met.forwards.Inc()
		p.met.bytesForwarded.Add(uint64(len(enc)))
		p.inst.SendCircuit(e, enc, nil)
	}
	sprayed := 0
	for tries := 0; tries < spray*4 && sprayed < spray; tries++ {
		e, ok := p.inst.GetPeer()
		if !ok {
			break
		}
		if sent[e.ID] {
			continue
		}
		sent[e.ID] = true
		sprayed++
		p.met.forwards.Inc()
		p.met.bytesForwarded.Add(uint64(len(enc)))
		p.inst.Send(e, enc, nil)
	}
}
