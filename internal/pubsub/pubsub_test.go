package pubsub_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/ppss"
	"whisper/internal/pubsub"
	"whisper/internal/sim"
)

// fastPPSS mirrors the PPSS integration tests: short cycles so groups
// converge quickly in virtual time.
func fastPPSS() *ppss.Config {
	return &ppss.Config{
		Cycle:            30 * time.Second,
		RespTimeout:      15 * time.Second,
		JoinTimeout:      20 * time.Second,
		PCPRefresh:       time.Minute,
		HeartbeatTimeout: 3 * time.Minute,
		ElectionDuration: 4 * time.Minute,
		KeyBlobSize:      256,
	}
}

func buildWorld(t testing.TB, seed int64, n int, faults *netem.FaultModel) *sim.World {
	t.Helper()
	w, err := sim.NewWorld(sim.Options{
		Seed:     seed,
		N:        n,
		NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		PPSS:     fastPPSS(),
		Faults:   faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)
	return w
}

// formGroup creates a group at members[0] and joins the rest through
// invitations, returning the per-member instances.
func formGroup(t testing.TB, w *sim.World, name string, members []*sim.Node) []*ppss.Instance {
	t.Helper()
	leader, err := members[0].PPSS.CreateGroup(name)
	if err != nil {
		t.Fatal(err)
	}
	var tryJoin func(m *sim.Node, attempt int)
	tryJoin = func(m *sim.Node, attempt int) {
		accr, entry, err := leader.Invite(m.ID())
		if err != nil {
			t.Fatal(err)
		}
		m.PPSS.Join(name, accr, entry, func(_ *ppss.Instance, err error) {
			if err != nil && attempt < 3 {
				tryJoin(m, attempt+1)
			}
		})
	}
	for _, m := range members[1:] {
		tryJoin(m, 1)
		w.Sim.RunFor(5 * time.Second)
	}
	w.Sim.RunFor(3 * time.Minute)
	g := leader.Group()
	var insts []*ppss.Instance
	for _, m := range members {
		if inst := m.PPSS.Instance(g); inst != nil {
			insts = append(insts, inst)
		}
	}
	if len(insts) != len(members) {
		t.Fatalf("only %d/%d members joined", len(insts), len(members))
	}
	return insts
}

// TestPubSubDeliveryAndRelayPrivacy drives the full path on one world:
// subscribers across overlapping topics receive every publication
// exactly once, non-subscribers receive nothing readable, and a
// network-wide tap never sees topic strings or plaintext payloads — a
// traffic collector learns only ciphertext (the topic tag and filter
// bits themselves travel inside encrypted shuffles and envelopes).
func TestPubSubDeliveryAndRelayPrivacy(t *testing.T) {
	const secret = "MARKER-the-plaintext-that-must-never-surface"
	w := buildWorld(t, 43, 90, nil)

	leaked := ""
	w.Net.SetTap(func(dg netem.Datagram) {
		for _, probe := range []string{"politics", "weather", "sports", "finance", secret} {
			if bytes.Contains(dg.Payload, []byte(probe)) {
				leaked = probe
			}
		}
	})

	live := w.Live()
	members := live[:16]
	insts := formGroup(t, w, "pubsub-main", members)

	topics := []string{"politics", "weather", "sports", "finance"}
	endpoints := make([]*pubsub.PubSub, len(insts))
	// deliveries[i][topic] counts OnDeliver calls per member and topic.
	deliveries := make([]map[string]int, len(insts))
	subs := make([]map[string]bool, len(insts))
	subscribers := map[string]int{}
	for i, inst := range insts {
		i := i
		endpoints[i] = pubsub.New(inst, pubsub.Config{})
		deliveries[i] = map[string]int{}
		subs[i] = map[string]bool{}
		endpoints[i].OnDeliver = func(topic string, payload []byte) {
			if string(payload) != secret {
				t.Errorf("member %d topic %q: corrupted payload %q", i, topic, payload)
			}
			deliveries[i][topic]++
		}
		for j := 0; j < 2; j++ {
			topic := topics[(2*i+j)%len(topics)]
			if subs[i][topic] {
				continue
			}
			subs[i][topic] = true
			if err := endpoints[i].Subscribe(topic); err != nil {
				t.Fatal(err)
			}
			subscribers[topic]++
		}
	}
	// Let the subscription digests ride the shuffles through the group.
	w.Sim.RunFor(6 * time.Minute)

	for ti, topic := range topics {
		if err := endpoints[ti%len(endpoints)].Publish(topic, []byte(secret)); err != nil {
			t.Fatal(err)
		}
		w.Sim.RunFor(30 * time.Second)
	}
	w.Sim.RunFor(2 * time.Minute)
	w.Net.SetTap(nil)

	for i := range insts {
		for _, topic := range topics {
			got := deliveries[i][topic]
			switch {
			case subs[i][topic] && got != 1:
				t.Errorf("member %d subscribed to %q: delivered %d times, want exactly 1", i, topic, got)
			case !subs[i][topic] && got != 0:
				t.Errorf("member %d NOT subscribed to %q: delivered %d times", i, topic, got)
			}
		}
	}
	if leaked != "" {
		t.Errorf("collector tap saw %q in the clear on the wire", leaked)
	}

	// What a relaying member (or a collector of gossip digests) holds is
	// only topic hashes and filter bits: no digest blob contains a topic
	// string, and every stored tag differs from the raw topic bytes.
	for _, inst := range insts {
		for _, d := range inst.Digests() {
			for _, topic := range topics {
				if bytes.Contains(d.Blob, []byte(topic)) {
					t.Fatalf("subscription digest of %v contains topic string %q", d.Owner, topic)
				}
			}
		}
	}
	for _, topic := range topics {
		tag := pubsub.HashTopic(topic)
		if bytes.Equal(tag[:], []byte(topic)[:4]) {
			t.Errorf("tag of %q equals its leading topic bytes", topic)
		}
	}

	// The cost of deniability: sum the false-positive counter (own
	// filter matched an unsubscribed topic). It may be zero at m=256,
	// but must never exceed deliveries (sanity of accounting).
	var fp, delivered uint64
	for _, ep := range endpoints {
		s := ep.Stats()
		fp += s.FalsePositives
		delivered += s.Delivered
		if s.Undecryptable != 0 {
			t.Errorf("subscriber failed to decrypt %d envelopes", s.Undecryptable)
		}
	}
	var want uint64
	for _, topic := range topics {
		want += uint64(subscribers[topic])
	}
	if delivered != want {
		t.Errorf("delivered %d, want %d", delivered, want)
	}
	_ = fp
}

// TestPubSubDisabledIsZeroBehavior pins the zero-behavior contract: a
// group whose members never Subscribe or Publish generates no pub/sub
// traffic at all — no envelope (Tag 0x70) reaches any member, no
// subscription digest circulates, and every counter stays zero. Half
// the members have an endpoint attached (passive), the other half run a
// bare probe handler, so an envelope arriving anywhere would be caught.
func TestPubSubDisabledIsZeroBehavior(t *testing.T) {
	w := buildWorld(t, 47, 80, nil)
	members := w.Live()[:12]
	insts := formGroup(t, w, "quiet", members)

	var endpoints []*pubsub.PubSub
	envelopes := 0
	for i, inst := range insts {
		if i%2 == 0 {
			ep := pubsub.New(inst, pubsub.Config{})
			ep.OnDeliver = func(string, []byte) { envelopes++ }
			endpoints = append(endpoints, ep)
		} else {
			inst.Subscribe(pubsub.Tag, func(_ ppss.Entry, payload []byte) {
				if len(payload) > 0 && payload[0] == pubsub.Tag {
					envelopes++
				}
			})
		}
	}
	// Plenty of gossip cycles for any spurious traffic to surface.
	w.Sim.RunFor(10 * time.Minute)

	if envelopes != 0 {
		t.Errorf("%d pub/sub envelopes observed in a group that never subscribed or published", envelopes)
	}
	for i, inst := range insts {
		if ds := inst.Digests(); len(ds) != 0 {
			t.Errorf("member %d holds %d subscription digests, want 0", i, len(ds))
		}
		if _, ok := inst.SelfDigest(); ok {
			t.Errorf("member %d gossips a self digest without subscribing", i)
		}
	}
	for i, ep := range endpoints {
		if s := ep.Stats(); s != (pubsub.Stats{}) {
			t.Errorf("endpoint %d has non-zero stats %+v in a silent group", i, s)
		}
	}
}

// TestPubSubUnderFaults drives publications through duplication,
// reordering, and burst-loss fault models: the dedup cache must keep
// deliveries exactly-once, re-forwarding must stay within the
// MatchFanout+Spray budget, and lossless fault modes must still
// deliver.
func TestPubSubUnderFaults(t *testing.T) {
	cases := []struct {
		name     string
		faults   *netem.FaultModel
		minRatio float64 // delivery floor (loss-free modes stay high)
	}{
		{"duplication", &netem.FaultModel{DupProb: 0.3}, 0.9},
		{"reordering", &netem.FaultModel{ReorderProb: 0.5, ReorderJitter: 200 * time.Millisecond}, 0.9},
		{"burst-loss", &netem.FaultModel{Burst: &netem.GilbertElliott{PGoodBad: 0.01, PBadGood: 0.3, LossBad: 0.8}}, 0},
	}
	for ci, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w := buildWorld(t, 53+int64(ci), 70, tc.faults)
			members := w.Live()[:10]
			insts := formGroup(t, w, "faulty-"+tc.name, members)

			const topic = "updates"
			cfg := pubsub.Config{}
			endpoints := make([]*pubsub.PubSub, len(insts))
			// delivered[member][payload] must never exceed 1.
			delivered := make([]map[string]int, len(insts))
			for i, inst := range insts {
				i := i
				endpoints[i] = pubsub.New(inst, cfg)
				delivered[i] = map[string]int{}
				endpoints[i].OnDeliver = func(_ string, payload []byte) {
					delivered[i][string(payload)]++
				}
				if err := endpoints[i].Subscribe(topic); err != nil {
					t.Fatal(err)
				}
			}
			w.Sim.RunFor(5 * time.Minute)

			const publishes = 6
			for p := 0; p < publishes; p++ {
				payload := []byte(fmt.Sprintf("update-%d", p))
				if err := endpoints[p%len(endpoints)].Publish(topic, payload); err != nil {
					t.Fatal(err)
				}
				w.Sim.RunFor(30 * time.Second)
			}
			w.Sim.RunFor(2 * time.Minute)

			got := 0
			for i := range insts {
				for payload, n := range delivered[i] {
					if n > 1 {
						t.Errorf("member %d delivered %q %d times under %s, want exactly once", i, payload, n, tc.name)
					}
					got += n
				}
			}
			want := publishes * len(insts)
			if ratio := float64(got) / float64(want); ratio < tc.minRatio {
				t.Errorf("delivery ratio %.2f under %s, want >= %.2f", ratio, tc.name, tc.minRatio)
			}

			// Re-forwarding stays bounded: each member forwards one
			// envelope at most once, to at most MatchFanout matches (plus
			// the publisher's spray), however many duplicate copies the
			// network injects.
			var forwards uint64
			for _, ep := range endpoints {
				forwards += ep.Stats().Forwards
			}
			limit := uint64(publishes * (len(insts)*8 + 2)) // defaults: MatchFanout 8, Spray 2
			if forwards > limit {
				t.Errorf("%d forwards under %s exceeds the %d budget — relays are re-forwarding duplicates", forwards, tc.name, limit)
			}
		})
	}
}
