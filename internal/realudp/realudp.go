// Package realudp runs WHISPER's confidential-forwarding core — the
// wire encoding of package wire and the onion construction/peeling of
// package crypt — over real UDP sockets. It provides exactly what a
// mix needs: receive a datagram, peel one onion layer, forward to the
// next hop's real address, or deliver at the exit; and what a source
// needs: build an onion over a path of real endpoints and launch it.
//
// The socket and dispatch machinery lives in transport/udp — the same
// transport the full stack (Nylon, WCL, PPSS) runs over outside the
// emulator; see cmd/whisper-node. This package is a thin peer-level
// surface over that transport's raw-datagram path, kept for callers
// that want onion forwarding between explicit socket addresses without
// the overlay addressing layer. The packet format mirrors the WCL's
// forward framing with string addresses in the hop blobs.
package realudp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"whisper/internal/crypt"
	"whisper/internal/transport/udp"
	"whisper/internal/wire"
)

const (
	tagForward uint8 = 1
)

// Peer is one UDP endpoint participating in onion forwarding.
type Peer struct {
	tr  *udp.Transport
	key crypt.PrivateKey

	// OnDeliver receives exit payloads (set before Run).
	OnDeliver func(payload []byte)

	mu      sync.Mutex
	peels   int
	deliver int
}

// Listen binds a peer to addr ("127.0.0.1:0" for an ephemeral port).
func Listen(addr string, key crypt.PrivateKey) (*Peer, error) {
	tr, err := udp.New(addr, 0)
	if err != nil {
		return nil, fmt.Errorf("realudp: %w", err)
	}
	p := &Peer{tr: tr, key: key}
	tr.SetRawHandler(func(payload []byte, from *net.UDPAddr) {
		p.handle(payload)
	})
	return p, nil
}

// Addr returns the bound address (with the resolved port).
func (p *Peer) Addr() string { return p.tr.LocalAddr().String() }

// Public returns the peer's public key.
func (p *Peer) Public() crypt.PublicKey { return p.key.Public() }

// Stats reports how many layers this peer peeled and payloads it
// delivered.
func (p *Peer) Stats() (peels, delivered int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peels, p.deliver
}

// Run processes datagrams until ctx is cancelled. It blocks; run it in
// a goroutine and cancel the context to stop. The socket is closed on
// return.
func (p *Peer) Run(ctx context.Context) error {
	p.tr.Start()
	<-ctx.Done()
	p.tr.Close()
	return nil
}

// handle processes one datagram on the transport's dispatch goroutine:
// peel, then forward or deliver.
func (p *Peer) handle(payload []byte) {
	r := wire.NewReader(payload)
	if r.U8() != tagForward {
		return
	}
	onion := r.Bytes32()
	content := r.Bytes32()
	if r.Err() != nil {
		return
	}
	next, inner, exit, err := crypt.Peel(nil, p.key, onion)
	if err != nil {
		return // not addressed to us, or corrupted: drop silently
	}
	p.mu.Lock()
	p.peels++
	p.mu.Unlock()
	if exit {
		// inner is the content key.
		pt, err := crypt.OpenSym(nil, inner, content)
		if err != nil {
			return
		}
		p.mu.Lock()
		p.deliver++
		cb := p.OnDeliver
		p.mu.Unlock()
		if cb != nil {
			cb(pt)
		}
		return
	}
	// next is the successor's "host:port" address.
	addr, err := net.ResolveUDPAddr("udp", string(next))
	if err != nil {
		return
	}
	_ = p.tr.SendRaw(addr, encodeForward(inner, content))
}

func encodeForward(onion, content []byte) []byte {
	w := wire.NewWriter(16 + len(onion) + len(content))
	w.U8(tagForward)
	w.Bytes32(onion)
	w.Bytes32(content)
	return w.Bytes()
}

// Hop names one node of a real onion path.
type Hop struct {
	Addr string
	Pub  crypt.PublicKey
}

// SendOnion builds the layered message for the path (first mix first,
// destination last) and launches it from this peer: the content is
// sealed under a fresh key, each layer addresses its successor by UDP
// address, and the first datagram goes to path[0].
func (p *Peer) SendOnion(path []Hop, payload []byte) error {
	if len(path) < 2 {
		return errors.New("realudp: a confidential path needs at least one mix and a destination")
	}
	k, err := crypt.NewSymKey()
	if err != nil {
		return err
	}
	content, err := crypt.SealSym(nil, k, payload)
	if err != nil {
		return err
	}
	hops := make([]crypt.Hop, len(path))
	for i, h := range path {
		hops[i] = crypt.Hop{Pub: h.Pub, Addr: []byte(h.Addr)}
	}
	onion, err := crypt.BuildOnion(nil, hops, k)
	if err != nil {
		return err
	}
	addr, err := net.ResolveUDPAddr("udp", path[0].Addr)
	if err != nil {
		return err
	}
	if err := p.tr.SendRaw(addr, encodeForward(onion, content)); err != nil {
		return fmt.Errorf("realudp: send: %w", err)
	}
	return nil
}
