package realudp

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"whisper/internal/identity"
)

// startPeers brings up n peers on loopback with real sockets and
// goroutine read loops, returning them and a shutdown function.
func startPeers(t *testing.T, n int) ([]*Peer, func()) {
	t.Helper()
	keys := identity.TestKeys(n)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	peers := make([]*Peer, n)
	for i := range peers {
		p, err := Listen("127.0.0.1:0", keys[i])
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		peers[i] = p
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Run(ctx)
		}()
	}
	return peers, func() {
		cancel()
		wg.Wait()
	}
}

// TestOnionOverRealSockets runs the paper's S → A → B → D path over
// actual UDP on loopback: real packets, real goroutines, real peeling.
func TestOnionOverRealSockets(t *testing.T) {
	peers, shutdown := startPeers(t, 4)
	defer shutdown()
	s, a, b, d := peers[0], peers[1], peers[2], peers[3]

	delivered := make(chan []byte, 1)
	d.OnDeliver = func(p []byte) {
		select {
		case delivered <- append([]byte(nil), p...):
		default:
		}
	}

	secret := []byte("meeting moved to pier 7")
	err := s.SendOnion([]Hop{
		{Addr: a.Addr(), Pub: a.Public()},
		{Addr: b.Addr(), Pub: b.Public()},
		{Addr: d.Addr(), Pub: d.Public()},
	}, secret)
	if err != nil {
		t.Fatal(err)
	}

	select {
	case got := <-delivered:
		if !bytes.Equal(got, secret) {
			t.Fatalf("delivered %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onion never reached the destination over real UDP")
	}

	// Each mix peeled exactly one layer and delivered nothing.
	for name, p := range map[string]*Peer{"A": a, "B": b} {
		peels, del := p.Stats()
		if peels != 1 || del != 0 {
			t.Fatalf("mix %s: peels=%d delivered=%d", name, peels, del)
		}
	}
	if peels, del := d.Stats(); peels != 1 || del != 1 {
		t.Fatalf("destination: peels=%d delivered=%d", peels, del)
	}
	if peels, _ := s.Stats(); peels != 0 {
		t.Fatal("source peeled its own onion")
	}
}

func TestWrongKeyMixDropsSilently(t *testing.T) {
	peers, shutdown := startPeers(t, 3)
	defer shutdown()
	s, a, d := peers[0], peers[1], peers[2]
	got := make(chan []byte, 1)
	d.OnDeliver = func(p []byte) { got <- p }

	// The layer for "A" is encrypted to a key A does not hold.
	stranger := identity.TestKeys(4)[3]
	err := s.SendOnion([]Hop{
		{Addr: a.Addr(), Pub: stranger.Public()},
		{Addr: d.Addr(), Pub: d.Public()},
	}, []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("message delivered despite an undecryptable layer")
	case <-time.After(500 * time.Millisecond):
	}
	if peels, _ := a.Stats(); peels != 0 {
		t.Fatal("mix peeled a foreign layer")
	}
}

func TestManyMessagesConcurrently(t *testing.T) {
	peers, shutdown := startPeers(t, 4)
	defer shutdown()
	s, a, b, d := peers[0], peers[1], peers[2], peers[3]

	const n = 20
	var mu sync.Mutex
	seen := map[string]bool{}
	doneCh := make(chan struct{}, n)
	d.OnDeliver = func(p []byte) {
		mu.Lock()
		seen[string(p)] = true
		mu.Unlock()
		doneCh <- struct{}{}
	}
	path := []Hop{
		{Addr: a.Addr(), Pub: a.Public()},
		{Addr: b.Addr(), Pub: b.Public()},
		{Addr: d.Addr(), Pub: d.Public()},
	}
	for i := 0; i < n; i++ {
		if err := s.SendOnion(path, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(10 * time.Second)
	for received := 0; received < n; received++ {
		select {
		case <-doneCh:
		case <-deadline:
			t.Fatalf("only %d/%d messages arrived (UDP loss on loopback should be nil)", received, n)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("distinct payloads = %d, want %d", len(seen), n)
	}
}

func TestSendOnionValidation(t *testing.T) {
	peers, shutdown := startPeers(t, 1)
	defer shutdown()
	if err := peers[0].SendOnion([]Hop{{Addr: peers[0].Addr(), Pub: peers[0].Public()}}, nil); err == nil {
		t.Fatal("single-hop path accepted: no mix means no relationship anonymity")
	}
}
