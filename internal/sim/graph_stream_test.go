package sim_test

import (
	"reflect"
	"testing"
	"time"

	"whisper/internal/graph"
	"whisper/internal/identity"
	"whisper/internal/sim"
)

// TestGraphStreamMatchesLiveViews pins the lazy report path on a real
// converged overlay: the stream must hand out exactly the live nodes'
// current view snapshots (the fig5 golden depends on it), and the
// metrics computed from it must match those of an eagerly materialized
// snapshot of the same views.
func TestGraphStreamMatchesLiveViews(t *testing.T) {
	w, err := sim.NewWorld(sim.Options{Seed: 21, N: 150, NATRatio: 0.7, KeyPool: identity.TestPool(16)})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)

	// Kill a few nodes so the live set differs from the full node list —
	// the stream must reflect exactly the live overlay.
	for i := 0; i < 10; i++ {
		w.Kill(w.Live()[i*3])
	}
	w.Sim.RunFor(30 * time.Second)

	// Eager reference snapshot built directly from the live views.
	eager := make(graph.Directed)
	for _, n := range w.Live() {
		eager[n.ID()] = n.Nylon.ViewIDs()
	}
	stream := w.GraphStream()

	if got, want := stream.Collect(), eager; !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Fatal("stream adjacency differs from the live view snapshot")
	}
	if got, want := stream.InDegrees(), eager.InDegrees(); !reflect.DeepEqual(got, want) {
		t.Fatal("InDegrees diverged between stream and eager snapshot")
	}
	if got, want := stream.OutDegrees(), eager.OutDegrees(); !reflect.DeepEqual(got, want) {
		t.Fatal("OutDegrees diverged between stream and eager snapshot")
	}
	if got, want := stream.ClusteringCoefficients(), eager.ClusteringCoefficients(); !reflect.DeepEqual(got, want) {
		t.Fatal("ClusteringCoefficients diverged between stream and eager snapshot")
	}
	if got, want := stream.WeaklyConnected(), eager.WeaklyConnected(); got != want {
		t.Fatalf("WeaklyConnected diverged: stream %v, eager %v", got, want)
	}
}

// normalize maps empty and nil adjacency slices together for DeepEqual.
func normalize(g map[identity.NodeID][]identity.NodeID) map[identity.NodeID][]identity.NodeID {
	out := make(map[identity.NodeID][]identity.NodeID, len(g))
	for id, outs := range g {
		if len(outs) == 0 {
			out[id] = nil
			continue
		}
		out[id] = outs
	}
	return out
}
