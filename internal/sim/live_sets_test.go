package sim_test

import (
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/sim"
)

// TestLiveSetsMatchScan pins the incremental live sets to the scan-based
// definition they replaced: after any interleaving of spawns and kills,
// Live()/LivePublics()/LiveNatted() must equal a fresh filter over
// w.Nodes in creation order.
func TestLiveSetsMatchScan(t *testing.T) {
	w, err := sim.NewWorld(sim.Options{Seed: 3, N: 120, NATRatio: 0.7, KeyPool: identity.TestPool(16)})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()

	scan := func() (all, pub, nat []*sim.Node) {
		for _, n := range w.Nodes {
			if n.Nylon.Stopped() {
				continue
			}
			all = append(all, n)
			if n.Public() {
				pub = append(pub, n)
			} else {
				nat = append(nat, n)
			}
		}
		return
	}
	check := func(stage string) {
		t.Helper()
		all, pub, nat := scan()
		for _, c := range []struct {
			name      string
			got, want []*sim.Node
		}{
			{"Live", w.Live(), all},
			{"LivePublics", w.LivePublics(), pub},
			{"LiveNatted", w.LiveNatted(), nat},
		} {
			if len(c.got) != len(c.want) {
				t.Fatalf("%s after %s: %d nodes, scan says %d", c.name, stage, len(c.got), len(c.want))
			}
			for i := range c.got {
				if c.got[i] != c.want[i] {
					t.Fatalf("%s after %s: index %d differs from scan order", c.name, stage, i)
				}
			}
		}
		if w.LiveCount() != len(all) {
			t.Fatalf("LiveCount after %s = %d, scan says %d", stage, w.LiveCount(), len(all))
		}
	}

	check("creation")
	w.KillRandom(30)
	check("KillRandom(30)")
	for i := 0; i < 25; i++ {
		w.Spawn()
	}
	check("25 spawns")
	// Kill a specific node twice: Kill is idempotent and must not
	// corrupt the sets on the second call.
	victim := w.Live()[10]
	w.Kill(victim)
	w.Kill(victim)
	check("double kill")
	w.Sim.RunFor(30 * time.Second)
	w.KillRandom(40)
	for i := 0; i < 10; i++ {
		w.Spawn()
	}
	check("mid-run churn")

	// The returned slices are copies: mutating one must not corrupt the
	// world's bookkeeping.
	live := w.Live()
	for i := range live {
		live[i] = nil
	}
	check("caller mutation")
}
