package sim

import (
	"testing"

	"whisper/internal/nat"
)

// TestNATRatioPrefixAccuracyAt10M: the integer dealing arithmetic keeps
// any prefix of the population at the configured NAT ratio — exactly
// floor(i·r) NATted nodes among the first i, checked at i = 10M where
// naive float math would be trusted on faith.
func TestNATRatioPrefixAccuracyAt10M(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-index sweep")
	}
	w := &World{Opts: Options{NATRatio: 0.7}}
	w.natNum, w.natShift = ratioParts(0.7)

	const M = 10_000_000
	natted := uint64(0)
	perType := map[nat.Type]uint64{}
	for i := uint64(0); i < M; i++ {
		typ := w.natTypeFor(i)
		if typ != nat.None {
			natted++
			perType[typ]++
		}
	}
	// floor(10M · r) for the stored float64 r (slightly above 0.7) is
	// exactly 7,000,000; the dealing must hit it on the nose, not merely
	// within float tolerance.
	if want := floorRatio(M, w.natNum, w.natShift); natted != want {
		t.Fatalf("NATted in 10M prefix = %d, want exactly %d", natted, want)
	}
	if natted != 7_000_000 {
		t.Fatalf("NATted in 10M prefix = %d, want 7,000,000", natted)
	}
	// The four device types stay evenly dealt at scale too.
	for typ, c := range perType {
		if c != 1_750_000 {
			t.Fatalf("%v count = %d, want exactly 1,750,000", typ, c)
		}
	}
}

// TestFloorRatioMatchesFloatPath: the integer restatement is bit-for-bit
// the historical uint64(float64(i)*r) everywhere float64(i) is exact —
// the property that keeps every golden run valid.
func TestFloorRatioMatchesFloatPath(t *testing.T) {
	ratios := []float64{0.7, 0.5, 0.3, 0.9, 0.25, 0.1, 0.999, 1.0}
	// Dense low range plus probes around power-of-two boundaries.
	var idx []uint64
	for i := uint64(0); i < 100_000; i++ {
		idx = append(idx, i)
	}
	for _, p := range []uint64{1 << 20, 1 << 26, 1 << 32, 1 << 40, 1 << 52} {
		for d := uint64(0); d < 64; d++ {
			idx = append(idx, p-32+d)
		}
	}
	for _, r := range ratios {
		num, shift := ratioParts(r)
		for _, i := range idx {
			want := uint64(float64(i) * r)
			if got := floorRatio(i, num, shift); got != want {
				t.Fatalf("r=%v i=%d: floorRatio=%d, float path=%d", r, i, got, want)
			}
		}
	}
}

// TestFloorRatioLargeIndexNoDrift: past 2^53 the float path loses the
// low bits of i itself; the integer path keeps consecutive indices
// distinct so the dealt prefix count still advances with every ~1/r
// indices instead of stalling in runs.
func TestFloorRatioLargeIndexNoDrift(t *testing.T) {
	num, shift := ratioParts(0.7)
	base := uint64(1) << 56
	prev := floorRatio(base, num, shift)
	advances := 0
	for i := base + 1; i <= base+1000; i++ {
		cur := floorRatio(i, num, shift)
		if cur < prev {
			t.Fatalf("dealing not monotone at i=%d", i)
		}
		if cur > prev {
			advances++
		}
		prev = cur
	}
	// 1000 indices at r=0.7 must advance ~700 times; float64(i) at 2^56
	// is quantized to multiples of 8, which caps advances near 125.
	if advances < 650 || advances > 750 {
		t.Fatalf("advances in 1000 indices past 2^56 = %d, want ~700", advances)
	}
}
