package sim_test

import (
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/obs"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/wcl"
)

// fingerprint is everything a run's outcome can be compared on:
// protocol counters, bandwidth, and the total number of simulator
// events executed (which shifts if observability perturbs even one
// random draw or timer).
type fingerprint struct {
	events    uint64
	shuffles  uint64
	relays    uint64
	wclSent   uint64
	delivered uint64
	upBytes   uint64
}

func runWorld(t *testing.T, sc *obs.Scope) fingerprint {
	t.Helper()
	w, err := sim.NewWorld(sim.Options{
		Seed: 21, N: 60, NATRatio: 0.7,
		KeyPool: identity.TestPool(16),
		WCL:     &wcl.Config{MinPublic: 2},
		PPSS:    &ppss.Config{KeyBlobSize: 256},
		Obs:     sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)
	fp := fingerprint{events: w.Sim.Executed()}
	for _, n := range w.Live() {
		st := n.Nylon.Stats()
		fp.shuffles += st.ShufflesCompleted
		fp.relays += st.RelaysForwarded
		fp.upBytes += n.Nylon.Meter().Snapshot().UpBytes
		if n.WCL != nil {
			ws := n.WCL.Stats()
			fp.wclSent += ws.Sent
			fp.delivered += ws.Delivered
		}
	}
	return fp
}

// TestObsDisabledIsZeroBehavior locks the subsystem's core contract:
// attaching a metrics registry to every node of a world must not change
// a single protocol event relative to the unobserved world. Metrics
// read the simulation; they never touch its RNG, clock or transport.
// (The fig5 golden test pins the complementary direction: the
// unobserved world is byte-identical to the pre-obs codebase.)
func TestObsDisabledIsZeroBehavior(t *testing.T) {
	off := runWorld(t, nil)
	reg := obs.NewRegistry()
	on := runWorld(t, reg.Scope("world", "sim"))

	if off != on {
		t.Fatalf("observability changed behavior:\n off: %+v\n  on: %+v", off, on)
	}
	if off.shuffles == 0 || off.events == 0 {
		t.Fatal("degenerate run: nothing happened, zero-behavior check is vacuous")
	}

	// The observed run must actually have recorded something — a nil
	// scope silently threaded everywhere would also "change nothing".
	var total float64
	for _, p := range reg.Export() {
		if p.Name == "nylon_shuffles_completed_total" && p.Value != nil {
			total += *p.Value
		}
	}
	if uint64(total) != on.shuffles {
		t.Fatalf("registry saw %v completed shuffles, stats saw %d", total, on.shuffles)
	}
}
