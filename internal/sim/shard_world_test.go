package sim_test

import (
	"math/rand"
	"testing"
	"time"

	"whisper/internal/churn"
	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/sim"
)

// TestShardedWorldGossips: a sharded world assembles, spreads nodes
// round-robin across shards, and the PSS converges across shard
// boundaries — cross-shard descriptors must show up in views, which
// only happens if the barrier exchange delivers datagrams.
func TestShardedWorldGossips(t *testing.T) {
	w, err := sim.NewWorld(sim.Options{
		Seed: 11, N: 48, Shards: 4, NATRatio: 0.5,
		Model:   netem.Cluster{},
		KeyPool: identity.TestPool(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Sharded() || w.Sim != nil {
		t.Fatal("world did not come up sharded")
	}
	perShard := make([]int, 4)
	for _, n := range w.Nodes {
		perShard[n.Shard]++
	}
	for s, c := range perShard {
		if c != 12 {
			t.Fatalf("shard %d has %d nodes, want 12 (round-robin)", s, c)
		}
	}
	w.StartAll()
	w.RunUntil(2 * time.Minute)
	if w.Now() != 2*time.Minute {
		t.Fatalf("Now = %v, want 2m", w.Now())
	}

	crossEdges := 0
	for _, n := range w.Live() {
		shuffles := n.Nylon.Stats().ShufflesCompleted
		if shuffles == 0 {
			t.Fatalf("node %v on shard %d completed no shuffles", n.ID(), n.Shard)
		}
		for _, id := range n.Nylon.ViewIDs() {
			if p := w.Get(id); p != nil && p.Shard != n.Shard {
				crossEdges++
			}
		}
	}
	if crossEdges == 0 {
		t.Fatal("no cross-shard view edges: barrier exchange is not delivering")
	}
	if sent, _ := w.NetStats(); sent == 0 {
		t.Fatal("no datagrams sent")
	}
}

// TestShardedWorldDeterminism: a (seed, config, shards) triple fully
// determines the run, including under churn driven through the control
// plane; a different shard count gives a different (valid) run.
func TestShardedWorldDeterminism(t *testing.T) {
	run := func(shards int) (uint64, uint64, uint64, int) {
		w, err := sim.NewWorld(sim.Options{
			Seed: 23, N: 40, Shards: shards, NATRatio: 0.7,
			Model:   netem.Cluster{},
			KeyPool: identity.TestPool(16),
		})
		if err != nil {
			t.Fatal(err)
		}
		w.StartAll()
		plan := churn.Plan{Steps: []churn.Step{
			churn.JoinBurst{From: 20 * time.Second, To: 40 * time.Second, Count: 10},
			churn.ConstChurn{From: 30 * time.Second, To: 90 * time.Second, RatePct: 60, Interval: 15 * time.Second},
		}}
		plan.RunOn(w, churn.Actions{
			Join: func(c int) {
				for i := 0; i < c; i++ {
					w.Spawn().Nylon.Start()
				}
			},
			Leave:      func(c int) { w.KillRandom(c) },
			Population: func() int { return w.LiveCount() },
		})
		w.RunUntil(2 * time.Minute)
		var shuffles uint64
		for _, n := range w.Live() {
			shuffles += n.Nylon.Stats().ShufflesCompleted
		}
		sent, dropped := w.NetStats()
		return shuffles, sent, dropped, w.LiveCount()
	}
	s1, sent1, drop1, live1 := run(3)
	s2, sent2, drop2, live2 := run(3)
	if s1 != s2 || sent1 != sent2 || drop1 != drop2 || live1 != live2 {
		t.Fatalf("same (seed, shards) diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			s1, sent1, drop1, live1, s2, sent2, drop2, live2)
	}
	s3, sent3, _, _ := run(2)
	if s1 == s3 && sent1 == sent3 {
		t.Fatal("different shard counts produced identical runs (suspicious)")
	}
}

// TestShardedWorldRequiresLatencyBound: models without a MinDelay bound
// are rejected up front rather than running non-causally.
func TestShardedWorldRequiresLatencyBound(t *testing.T) {
	_, err := sim.NewWorld(sim.Options{
		Seed: 1, N: 4, Shards: 2,
		Model:   boundlessModel{},
		KeyPool: identity.TestPool(4),
	})
	if err == nil {
		t.Fatal("sharded world accepted a model with no latency lower bound")
	}
}

// boundlessModel implements LatencyModel but not MinDelayModel.
type boundlessModel struct{}

func (boundlessModel) Delay(_ *rand.Rand, _, _ netem.IP, _ int) time.Duration { return 0 }
func (boundlessModel) LossProb(_, _ netem.IP) float64                         { return 0 }
