// Package sim assembles complete WHISPER networks on the emulated
// substrate: it creates nodes with the paper's NAT distribution (70%
// behind NATs, evenly split across the four device types), wires the
// protocol stack, and provides the churn and measurement plumbing the
// experiment harness and the integration tests share.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"strconv"
	"time"

	"whisper/internal/core"
	"whisper/internal/crypt"
	"whisper/internal/graph"
	"whisper/internal/identity"
	"whisper/internal/nat"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/ppss"
	"whisper/internal/simnet"
	simtr "whisper/internal/transport/simnet"
	"whisper/internal/wcl"
)

// Options configures a World.
type Options struct {
	// Seed drives all randomness of the run.
	Seed int64
	// N is the initial node count.
	N int
	// NATRatio is the fraction of N-nodes (paper: 0.7). NAT types are
	// split evenly among the four emulated kinds.
	NATRatio float64
	// Model is the latency/loss model (default netem.Cluster{}).
	Model netem.LatencyModel
	// Faults, when non-nil, composes duplication, reordering, burst
	// loss and partitions on top of Model (see netem.FaultModel). Nil
	// keeps the network byte-identical to the pre-fault-layer world.
	Faults *netem.FaultModel
	// Nylon configures the PSS layer of every node.
	Nylon nylon.Config
	// Suite selects the crypto suite every node keys under (default
	// rsa2048). When KeyPool is provided its suite wins; otherwise the
	// generated pool uses this suite.
	Suite crypt.SuiteID
	// KeyPool provides identity keys; nil generates a fresh pool of
	// PoolSize keys at identity.DefaultKeyBits on Suite.
	KeyPool *identity.Pool
	// PoolSize is the size of the generated pool when KeyPool is nil
	// (default 64; sims share keys round-robin, see identity.Pool).
	PoolSize int
	// BootstrapPublics is how many random P-node descriptors seed each
	// node's view, emulating a tracker (default 3).
	BootstrapPublics int
	// NATLease overrides the NAT association lease (default
	// nat.DefaultLease).
	NATLease time.Duration
	// WCL, when non-nil, attaches a Whisper communication layer to
	// every node (forces Nylon key sampling on).
	WCL *wcl.Config
	// PPSS, when non-nil, attaches a private peer sampling router to
	// every node (requires WCL; a default WCL config is used if WCL is
	// nil).
	PPSS *ppss.Config
	// Obs, when non-nil, registers every node's instruments under it.
	// Single-shard worlds scope each node by a "node" label; sharded
	// worlds share one "shard"-labelled scope per shard, so instruments
	// roll up at write time instead of holding one scope per node. Nil
	// (the default) runs fully unobserved: the fig5 golden test pins
	// that this costs nothing.
	Obs *obs.Scope
	// Shards selects the engine: 1 (the default) runs the classic
	// single-threaded simulator, byte-identical to every previous
	// release at a fixed seed; >1 runs the sharded engine, partitioning
	// nodes round-robin across shards with conservative window
	// synchronization (see simnet.Sharded). Sharded worlds require a
	// latency model with a positive MinDelay bound and produce
	// different (but reproducible) event orders per shard count.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 100
	}
	if o.Model == nil {
		o.Model = netem.Cluster{}
	}
	if o.PoolSize == 0 {
		o.PoolSize = 64
	}
	if o.BootstrapPublics == 0 {
		o.BootstrapPublics = 3
	}
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.PPSS != nil && o.WCL == nil {
		o.WCL = &wcl.Config{}
	}
	if o.WCL != nil {
		o.Nylon.KeySampling = true
	}
	return o
}

// Node bundles one simulated node's stack and bookkeeping.
type Node struct {
	Nylon *nylon.Node
	WCL   *wcl.WCL     // nil unless Options.WCL is set
	PPSS  *ppss.Router // nil unless Options.PPSS is set
	Dev   *nat.Device  // nil for P-nodes
	Type  nat.Type
	// Shard is the engine shard the node lives on (0 on single-shard
	// worlds).
	Shard int
	// Ext carries application state attached by StackBuilder users.
	Ext map[string]any
}

// ID returns the node's identifier.
func (n *Node) ID() identity.NodeID { return n.Nylon.ID() }

// Public reports whether the node is a P-node.
func (n *Node) Public() bool { return n.Type == nat.None }

// World is a running simulated network.
type World struct {
	Opts Options
	// Sim, Net and Rt are the single-shard engine, network and
	// transport. They are nil on sharded worlds (Opts.Shards > 1) —
	// use the World engine methods (Now, RunUntil, Schedule, …) or
	// Engine()/Fabric() instead.
	Sim *simnet.Sim
	Net *netem.Network
	// Rt is the transport adapter the stacks are wired through.
	Rt    *simtr.Transport
	Nodes []*Node

	eng    *simnet.Sharded // non-nil iff Opts.Shards > 1
	fabric *simtr.Fabric   // non-nil iff Opts.Shards > 1

	// rng drives world-plane randomness (bootstrap sampling,
	// KillRandom). On single-shard worlds it IS the simulator's stream,
	// preserving the historical draw sequence byte for byte; sharded
	// worlds give the world plane its own stream so shard streams stay
	// private to their shards.
	rng *rand.Rand

	byID   map[identity.NodeID]*Node
	pool   *identity.Pool
	nextID uint64
	nextIP uint32

	// Incremental live sets in creation order, maintained by create and
	// Kill; they make Live()/LivePublics()/LiveNatted() O(live) copies
	// instead of O(all-ever-created) scans, and bootstrap O(1)-ish
	// instead of the O(N) scan that made world creation O(N²). Every
	// node death must go through Kill for these to stay exact (a test
	// pins equivalence with the scan-based definition).
	liveAll []*Node
	livePub []*Node
	liveNat []*Node
	// scratch is bootstrap's reusable shuffle buffer.
	scratch []*Node

	// shardObs caches the per-shard metric scopes of a sharded world.
	shardObs []*obs.Scope

	// natNum/natShift represent NATRatio exactly as natNum/2^natShift
	// (every float64 is such a dyadic rational), so NAT-type dealing
	// uses exact integer arithmetic at any index.
	natNum   uint64
	natShift uint

	// StackBuilder, when set, augments a freshly created node with the
	// upper layers (WCL, PPSS); used by the full-stack harness.
	StackBuilder func(n *Node)
}

// NewWorld builds the network but does not start gossip; call StartAll
// (or Start on individual nodes) from time zero of the simulation.
func NewWorld(opts Options) (*World, error) {
	opts = opts.withDefaults()
	w := &World{
		Opts:   opts,
		byID:   make(map[identity.NodeID]*Node, opts.N),
		pool:   opts.KeyPool,
		nextIP: 100, // leave room for infrastructure addresses
	}
	if r := opts.NATRatio; r > 0 {
		if r > 1 {
			r = 1
		}
		w.natNum, w.natShift = ratioParts(r)
	}
	if opts.Shards == 1 {
		s := simnet.New(opts.Seed)
		nw := netem.New(s, opts.Model)
		if opts.Faults != nil {
			nw.SetFaults(opts.Faults)
		}
		w.Sim, w.Net, w.Rt = s, nw, simtr.New(s, nw)
		w.rng = s.Rand()
	} else {
		la := netem.MinDelay(opts.Model)
		if la <= 0 {
			return nil, fmt.Errorf("sim: model %T states no positive latency lower bound; sharded worlds need one for the window synchronizer", opts.Model)
		}
		w.eng = simnet.NewSharded(opts.Seed, opts.Shards, la)
		w.fabric = simtr.NewFabric(w.eng, opts.Model)
		if opts.Faults != nil {
			for i := 0; i < opts.Shards; i++ {
				w.fabric.Net(i).SetFaults(opts.Faults)
			}
		}
		w.rng = rand.New(rand.NewSource(opts.Seed))
		if opts.Obs != nil {
			w.shardObs = make([]*obs.Scope, opts.Shards)
			for i := range w.shardObs {
				w.shardObs[i] = opts.Obs.With("shard", strconv.Itoa(i))
			}
		}
	}
	if w.pool == nil {
		pool, err := identity.NewSuitePool(opts.PoolSize, opts.Suite, identity.DefaultKeyBits)
		if err != nil {
			return nil, fmt.Errorf("sim: building key pool: %w", err)
		}
		w.pool = pool
	}
	// Create the whole initial population first, then bootstrap: the
	// tracker can only hand out P-nodes that exist.
	for i := 0; i < opts.N; i++ {
		w.create()
	}
	for _, n := range w.Nodes {
		w.bootstrap(n)
	}
	return w, nil
}

// ratioParts decomposes r ∈ (0, 1] into num/2^shift exactly: a float64
// is mant × 2^exp with mant ∈ [0.5, 1) holding 53 significant bits, so
// num = mant × 2^53 is an exact integer.
func ratioParts(r float64) (num uint64, shift uint) {
	mant, exp := math.Frexp(r)
	return uint64(mant * (1 << 53)), uint(53 - exp)
}

// floorRatio computes floor(i·r) for r = num/2^shift the way the
// shipped dealing sequence defines it, in pure integer arithmetic.
//
// Historically this was uint64(float64(i) * r). Every golden run and
// every seeded experiment pins that sequence, so for every index where
// it was well-defined — i < 2^53, float64(i) exact — the integer form
// reproduces it bit for bit: the exact 128-bit product i·num is rounded
// to 53 significant bits half-to-even (the one rounding the float64
// multiply performed) before the floor. Past 2^53 the float form
// degraded — float64(i) quantizes, so consecutive indices collapsed and
// the dealt pattern advanced in coarse jumps — and there the integer
// form uses the exact rational floor instead, keeping the dealing
// precise at any index. No FPU is involved at runtime either way, which
// removes any cross-platform rounding hazard from world assembly.
func floorRatio(i, num uint64, shift uint) uint64 {
	hi, lo := bits.Mul64(i, num)
	if i >= 1<<53 {
		// Exact rational floor: floor(i·num / 2^shift).
		switch {
		case shift >= 128:
			return 0
		case shift >= 64:
			return hi >> (shift - 64)
		default:
			return hi<<(64-shift) | lo>>shift
		}
	}
	// Compatibility regime: round the product to 53 significant bits,
	// half to even, exactly as the float64 multiply did.
	n := bits.Len64(lo)
	if hi != 0 {
		n = 64 + bits.Len64(hi)
	}
	if n > 53 {
		drop := uint(n - 53) // ∈ [1, 53]: the product is under 2^106 here
		kept := hi<<(64-drop) | lo>>drop
		rem := lo & (1<<drop - 1)
		half := uint64(1) << (drop - 1)
		if rem > half || (rem == half && kept&1 == 1) {
			kept++ // may carry to 2^53: still exact below
		}
		// Value is kept·2^drop; floor-divide by 2^shift.
		if drop >= shift {
			return kept << (drop - shift)
		}
		if s := shift - drop; s < 64 {
			return kept >> s
		}
		return 0
	}
	// Product fits in 53 bits: no rounding ever happened.
	if shift >= 64 {
		return 0
	}
	return hi<<(64-shift) | lo>>shift
}

// natTypeFor deals NAT types, interleaving P- and N-nodes so that any
// prefix of the population approximates NATRatio, with the four device
// types split evenly among N-nodes (§V-A).
func (w *World) natTypeFor(i uint64) nat.Type {
	if w.natNum == 0 {
		return nat.None
	}
	// Node i is NATted iff the integer part of (i+1)*r advances. The <=
	// guard absorbs the one-off dip possible exactly at the 2^53
	// regime boundary inside floorRatio.
	before := floorRatio(i, w.natNum, w.natShift)
	after := floorRatio(i+1, w.natNum, w.natShift)
	if after <= before {
		return nat.None
	}
	return nat.EmulatedTypes[after%uint64(len(nat.EmulatedTypes))]
}

// Spawn creates and bootstraps a new node, returning it. Used for churn
// arrivals; the caller starts it (or StartAll does).
func (w *World) Spawn() *Node {
	n := w.create()
	w.bootstrap(n)
	return n
}

// create instantiates a node without bootstrapping it. On sharded
// worlds it must only run between windows (world assembly, or control
// events at barriers — churn joins qualify): it mutates the routing
// table and attaches handlers.
func (w *World) create() *Node {
	w.nextID++
	id := identity.NodeID(w.nextID)
	typ := w.natTypeFor(w.nextID - 1)
	ident := w.pool.Identity(id)

	shard := 0
	nw, rt := w.Net, w.Rt
	var sc *obs.Scope
	if w.eng != nil {
		// Round-robin partitioning: NAT mix and churn exposure spread
		// evenly, and (seed, shards) fixes every node's placement.
		shard = int((w.nextID - 1) % uint64(w.eng.Shards()))
		nw, rt = w.fabric.Net(shard), w.fabric.Transport(shard)
		if w.shardObs != nil {
			sc = w.shardObs[shard]
		}
	} else {
		sc = w.Opts.Obs.With("node", id.String())
	}

	cfg := core.Config{Nylon: w.Opts.Nylon, WCL: w.Opts.WCL, PPSS: w.Opts.PPSS, Obs: sc}
	var addr netem.Endpoint
	var dev *nat.Device
	w.nextIP++
	if typ == nat.None {
		addr = netem.Endpoint{IP: netem.IP(w.nextIP), Port: 1}
	} else {
		// The device lives on its node's shard network: relaying is
		// synchronous inside the device, so both must share an event
		// plane. Only the external IP is globally routable.
		dev = nat.NewDevice(nw, typ, netem.IP(w.nextIP), w.Opts.NATLease)
		addr = netem.Endpoint{IP: netem.PrivateBase + netem.IP(w.nextID), Port: 1}
	}
	if w.fabric != nil {
		w.fabric.Assign(netem.IP(w.nextIP), shard)
	}
	st, err := core.NewStack(rt, ident, typ, addr, dev, cfg)
	if err != nil {
		// Key sampling is forced on by the stack; any error here is a
		// programming bug, not an environmental condition.
		panic(fmt.Sprintf("sim: building stack: %v", err))
	}
	node := &Node{Nylon: st.Nylon, WCL: st.WCL, PPSS: st.PPSS, Dev: dev, Type: typ, Shard: shard}
	w.Nodes = append(w.Nodes, node)
	w.liveAll = append(w.liveAll, node)
	if node.Public() {
		w.livePub = append(w.livePub, node)
	} else {
		w.liveNat = append(w.liveNat, node)
	}
	w.byID[id] = node
	if w.StackBuilder != nil {
		w.StackBuilder(node)
	}
	return node
}

// bootstrap seeds the node's view with random live P-nodes (tracker
// model: only publicly reachable nodes are useful before any route
// exists).
func (w *World) bootstrap(node *Node) {
	want := w.Opts.BootstrapPublics
	var ds []nylon.Descriptor
	if w.eng == nil {
		// Classic path, draw-for-draw identical to every previous
		// release: copy the public set (into a reused buffer — the copy
		// itself draws nothing) and fully shuffle it.
		pubs := append(w.scratch[:0], w.livePub...)
		w.scratch = pubs
		w.rng.Shuffle(len(pubs), func(i, j int) { pubs[i], pubs[j] = pubs[j], pubs[i] })
		for _, p := range pubs {
			if p == node {
				continue
			}
			ds = append(ds, p.Nylon.SelfDescriptor())
			if len(ds) >= want {
				break
			}
		}
	} else {
		// Sharded worlds draw O(want) samples instead of shuffling the
		// whole public set — at 100k nodes the full shuffle would put
		// world assembly back at O(N²).
		pubs := w.livePub
		if want > len(pubs) {
			want = len(pubs)
		}
		seen := make(map[int]bool, want+1)
		for tries := 0; len(ds) < want && tries < 20*(want+1); tries++ {
			idx := w.rng.Intn(len(pubs))
			if seen[idx] {
				continue
			}
			seen[idx] = true
			if p := pubs[idx]; p != node {
				ds = append(ds, p.Nylon.SelfDescriptor())
			}
		}
	}
	node.Nylon.Bootstrap(ds)
}

// StartAll starts gossip on every live node.
func (w *World) StartAll() {
	for _, n := range w.liveAll {
		n.Nylon.Start()
	}
}

// Get returns the node with the given ID, or nil.
func (w *World) Get(id identity.NodeID) *Node {
	n := w.byID[id]
	if n == nil || n.Nylon.Stopped() {
		return nil
	}
	return n
}

// Live returns all running nodes in creation order. The returned slice
// is the caller's to mutate.
func (w *World) Live() []*Node { return append([]*Node(nil), w.liveAll...) }

// LiveCount returns the number of running nodes without copying.
func (w *World) LiveCount() int { return len(w.liveAll) }

// LivePublics returns all running P-nodes in creation order.
func (w *World) LivePublics() []*Node { return append([]*Node(nil), w.livePub...) }

// LiveNatted returns all running N-nodes in creation order.
func (w *World) LiveNatted() []*Node { return append([]*Node(nil), w.liveNat...) }

// removeNode deletes n from s preserving order (the live sets are
// creation-ordered, and bootstrap's shuffle draws depend on that
// order). O(live) per kill — the same cost one Live() scan used to be.
func removeNode(s []*Node, n *Node) []*Node {
	for i, x := range s {
		if x == n {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Kill stops a node abruptly (churn departure). Idempotent. On sharded
// worlds it must only run from the control plane (barriers).
func (w *World) Kill(n *Node) {
	if n.Nylon.Stopped() {
		return
	}
	if n.PPSS != nil {
		n.PPSS.Close()
	}
	n.Nylon.Stop()
	w.liveAll = removeNode(w.liveAll, n)
	if n.Public() {
		w.livePub = removeNode(w.livePub, n)
	} else {
		w.liveNat = removeNode(w.liveNat, n)
	}
}

// KillRandom stops count random live nodes.
func (w *World) KillRandom(count int) []*Node {
	live := w.Live()
	w.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	if count > len(live) {
		count = len(live)
	}
	killed := live[:count]
	for _, n := range killed {
		w.Kill(n)
	}
	return killed
}

// GraphStream exposes the live overlay as a lazy adjacency stream:
// each consumption walks the live nodes and hands out fresh view
// snapshots, building adjacency on demand instead of up front — the
// road-to-1M path for overlay reports, where the eager map dominated
// report-time memory.
func (w *World) GraphStream() graph.Stream {
	return func(yield func(identity.NodeID, []identity.NodeID) bool) {
		for _, n := range w.liveAll {
			if !yield(n.ID(), n.Nylon.ViewIDs()) {
				return
			}
		}
	}
}

// ResetMeters zeroes all bandwidth meters (per-cycle measurements).
func (w *World) ResetMeters() {
	for _, n := range w.liveAll {
		n.Nylon.Meter().Reset()
	}
}

// CPUTotal merges the crypto CPU meters of every node ever created in
// this world (dead nodes included — their work happened). The parallel
// experiment harness merges these per-run totals after joining its
// workers, so concurrent runs account CPU exactly like sequential ones.
func (w *World) CPUTotal() crypt.CPUMeter {
	var total crypt.CPUMeter
	for _, n := range w.Nodes {
		if n.WCL != nil {
			total.Add(*n.WCL.CPU())
		}
	}
	return total
}

// ----- Engine facade -----
//
// The methods below drive the run regardless of engine flavor, so the
// harness (whisper-sim, whisper-exp, churn scripts) is written once.
// Single-shard worlds delegate to the classic simulator; sharded worlds
// to the window-synchronized coordinator.

// Sharded reports whether this world runs on the sharded engine.
func (w *World) Sharded() bool { return w.eng != nil }

// Engine returns the sharded coordinator, or nil on single-shard
// worlds.
func (w *World) Engine() *simnet.Sharded { return w.eng }

// Fabric returns the sharded transport fabric, or nil on single-shard
// worlds.
func (w *World) Fabric() *simtr.Fabric { return w.fabric }

// Now returns the current virtual time (the barrier time on sharded
// worlds).
func (w *World) Now() time.Duration {
	if w.eng != nil {
		return w.eng.Now()
	}
	return w.Sim.Now()
}

// Run executes events until the world goes quiet or StopRun is called.
func (w *World) Run() {
	if w.eng != nil {
		w.eng.Run()
		return
	}
	w.Sim.Run()
}

// RunUntil executes events up to virtual time t.
func (w *World) RunUntil(t time.Duration) {
	if w.eng != nil {
		w.eng.RunUntil(t)
		return
	}
	w.Sim.RunUntil(t)
}

// RunFor executes events for d of virtual time.
func (w *World) RunFor(d time.Duration) {
	if w.eng != nil {
		w.eng.RunFor(d)
		return
	}
	w.Sim.RunFor(d)
}

// StopRun makes the current Run/RunUntil return; the world may be
// resumed afterwards.
func (w *World) StopRun() {
	if w.eng != nil {
		w.eng.Stop()
		return
	}
	w.Sim.Stop()
}

// Schedule runs fn at absolute virtual time at on the control plane —
// the simulator itself on single-shard worlds, the barrier-synchronized
// control queue on sharded ones. It implements churn.Scheduler, so
// Plan.RunOn(w, actions) scripts churn over either engine; world
// surgery (Spawn, Kill) is safe from these callbacks on both.
func (w *World) Schedule(at time.Duration, fn func()) {
	if w.eng != nil {
		w.eng.Schedule(at, fn)
		return
	}
	w.Sim.Schedule(at, fn)
}

// Rand returns the world-plane random stream (see the rng field note).
func (w *World) Rand() *rand.Rand { return w.rng }

// Executed reports the total events dispatched across all shards.
func (w *World) Executed() uint64 {
	if w.eng != nil {
		return w.eng.Executed()
	}
	return w.Sim.Executed()
}

// NetStats sums datagrams sent and dropped across all shard networks.
func (w *World) NetStats() (sent, dropped uint64) {
	if w.fabric != nil {
		return w.fabric.Stats()
	}
	return w.Net.Stats()
}

// NetFaultStats sums fault-injection totals across all shard networks.
func (w *World) NetFaultStats() netem.FaultStats {
	if w.fabric != nil {
		return w.fabric.FaultStats()
	}
	return w.Net.FaultStats()
}
