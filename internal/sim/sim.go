// Package sim assembles complete WHISPER networks on the emulated
// substrate: it creates nodes with the paper's NAT distribution (70%
// behind NATs, evenly split across the four device types), wires the
// protocol stack, and provides the churn and measurement plumbing the
// experiment harness and the integration tests share.
package sim

import (
	"fmt"
	"time"

	"whisper/internal/core"
	"whisper/internal/crypt"
	"whisper/internal/graph"
	"whisper/internal/identity"
	"whisper/internal/nat"
	"whisper/internal/netem"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/ppss"
	"whisper/internal/simnet"
	simtr "whisper/internal/transport/simnet"
	"whisper/internal/wcl"
)

// Options configures a World.
type Options struct {
	// Seed drives all randomness of the run.
	Seed int64
	// N is the initial node count.
	N int
	// NATRatio is the fraction of N-nodes (paper: 0.7). NAT types are
	// split evenly among the four emulated kinds.
	NATRatio float64
	// Model is the latency/loss model (default netem.Cluster{}).
	Model netem.LatencyModel
	// Faults, when non-nil, composes duplication, reordering, burst
	// loss and partitions on top of Model (see netem.FaultModel). Nil
	// keeps the network byte-identical to the pre-fault-layer world.
	Faults *netem.FaultModel
	// Nylon configures the PSS layer of every node.
	Nylon nylon.Config
	// Suite selects the crypto suite every node keys under (default
	// rsa2048). When KeyPool is provided its suite wins; otherwise the
	// generated pool uses this suite.
	Suite crypt.SuiteID
	// KeyPool provides identity keys; nil generates a fresh pool of
	// PoolSize keys at identity.DefaultKeyBits on Suite.
	KeyPool *identity.Pool
	// PoolSize is the size of the generated pool when KeyPool is nil
	// (default 64; sims share keys round-robin, see identity.Pool).
	PoolSize int
	// BootstrapPublics is how many random P-node descriptors seed each
	// node's view, emulating a tracker (default 3).
	BootstrapPublics int
	// NATLease overrides the NAT association lease (default
	// nat.DefaultLease).
	NATLease time.Duration
	// WCL, when non-nil, attaches a Whisper communication layer to
	// every node (forces Nylon key sampling on).
	WCL *wcl.Config
	// PPSS, when non-nil, attaches a private peer sampling router to
	// every node (requires WCL; a default WCL config is used if WCL is
	// nil).
	PPSS *ppss.Config
	// Obs, when non-nil, registers every node's instruments under it,
	// each node scoped by a "node" label. Nil (the default) runs fully
	// unobserved: the fig5 golden test pins that this costs nothing.
	Obs *obs.Scope
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 100
	}
	if o.Model == nil {
		o.Model = netem.Cluster{}
	}
	if o.PoolSize == 0 {
		o.PoolSize = 64
	}
	if o.BootstrapPublics == 0 {
		o.BootstrapPublics = 3
	}
	if o.PPSS != nil && o.WCL == nil {
		o.WCL = &wcl.Config{}
	}
	if o.WCL != nil {
		o.Nylon.KeySampling = true
	}
	return o
}

// Node bundles one simulated node's stack and bookkeeping.
type Node struct {
	Nylon *nylon.Node
	WCL   *wcl.WCL     // nil unless Options.WCL is set
	PPSS  *ppss.Router // nil unless Options.PPSS is set
	Dev   *nat.Device  // nil for P-nodes
	Type  nat.Type
	// Ext carries application state attached by StackBuilder users.
	Ext map[string]any
}

// ID returns the node's identifier.
func (n *Node) ID() identity.NodeID { return n.Nylon.ID() }

// Public reports whether the node is a P-node.
func (n *Node) Public() bool { return n.Type == nat.None }

// World is a running simulated network.
type World struct {
	Opts Options
	Sim  *simnet.Sim
	Net  *netem.Network
	// Rt is the transport adapter the stacks are wired through.
	Rt    *simtr.Transport
	Nodes []*Node

	byID   map[identity.NodeID]*Node
	pool   *identity.Pool
	nextID uint64
	nextIP uint32
	// StackBuilder, when set, augments a freshly created node with the
	// upper layers (WCL, PPSS); used by the full-stack harness.
	StackBuilder func(n *Node)
}

// NewWorld builds the network but does not start gossip; call StartAll
// (or Start on individual nodes) from time zero of the simulation.
func NewWorld(opts Options) (*World, error) {
	opts = opts.withDefaults()
	s := simnet.New(opts.Seed)
	nw := netem.New(s, opts.Model)
	if opts.Faults != nil {
		nw.SetFaults(opts.Faults)
	}
	w := &World{
		Opts:   opts,
		Sim:    s,
		Net:    nw,
		Rt:     simtr.New(s, nw),
		byID:   make(map[identity.NodeID]*Node, opts.N),
		pool:   opts.KeyPool,
		nextIP: 100, // leave room for infrastructure addresses
	}
	if w.pool == nil {
		pool, err := identity.NewSuitePool(opts.PoolSize, opts.Suite, identity.DefaultKeyBits)
		if err != nil {
			return nil, fmt.Errorf("sim: building key pool: %w", err)
		}
		w.pool = pool
	}
	// Create the whole initial population first, then bootstrap: the
	// tracker can only hand out P-nodes that exist.
	for i := 0; i < opts.N; i++ {
		w.create()
	}
	for _, n := range w.Nodes {
		w.bootstrap(n)
	}
	return w, nil
}

// natTypeFor deals NAT types, interleaving P- and N-nodes so that any
// prefix of the population approximates NATRatio, with the four device
// types split evenly among N-nodes (§V-A).
func (w *World) natTypeFor(i uint64) nat.Type {
	r := w.Opts.NATRatio
	if r <= 0 {
		return nat.None
	}
	// Node i is NATted iff the integer part of (i+1)*r advances.
	before := uint64(float64(i) * r)
	after := uint64(float64(i+1) * r)
	if after == before {
		return nat.None
	}
	return nat.EmulatedTypes[after%uint64(len(nat.EmulatedTypes))]
}

// Spawn creates and bootstraps a new node, returning it. Used for churn
// arrivals; the caller starts it (or StartAll does).
func (w *World) Spawn() *Node {
	n := w.create()
	w.bootstrap(n)
	return n
}

// create instantiates a node without bootstrapping it.
func (w *World) create() *Node {
	w.nextID++
	id := identity.NodeID(w.nextID)
	typ := w.natTypeFor(w.nextID - 1)
	ident := w.pool.Identity(id)

	cfg := core.Config{Nylon: w.Opts.Nylon, WCL: w.Opts.WCL, PPSS: w.Opts.PPSS,
		Obs: w.Opts.Obs.With("node", id.String())}
	var addr netem.Endpoint
	var dev *nat.Device
	w.nextIP++
	if typ == nat.None {
		addr = netem.Endpoint{IP: netem.IP(w.nextIP), Port: 1}
	} else {
		dev = nat.NewDevice(w.Net, typ, netem.IP(w.nextIP), w.Opts.NATLease)
		addr = netem.Endpoint{IP: netem.PrivateBase + netem.IP(w.nextID), Port: 1}
	}
	st, err := core.NewStack(w.Rt, ident, typ, addr, dev, cfg)
	if err != nil {
		// Key sampling is forced on by the stack; any error here is a
		// programming bug, not an environmental condition.
		panic(fmt.Sprintf("sim: building stack: %v", err))
	}
	node := &Node{Nylon: st.Nylon, WCL: st.WCL, PPSS: st.PPSS, Dev: dev, Type: typ}
	w.Nodes = append(w.Nodes, node)
	w.byID[id] = node
	if w.StackBuilder != nil {
		w.StackBuilder(node)
	}
	return node
}

// bootstrap seeds the node's view with random live P-nodes (tracker
// model: only publicly reachable nodes are useful before any route
// exists).
func (w *World) bootstrap(node *Node) {
	pubs := w.LivePublics()
	rng := w.Sim.Rand()
	rng.Shuffle(len(pubs), func(i, j int) { pubs[i], pubs[j] = pubs[j], pubs[i] })
	var ds []nylon.Descriptor
	for _, p := range pubs {
		if p == node {
			continue
		}
		ds = append(ds, p.Nylon.SelfDescriptor())
		if len(ds) >= w.Opts.BootstrapPublics {
			break
		}
	}
	node.Nylon.Bootstrap(ds)
}

// StartAll starts gossip on every live node.
func (w *World) StartAll() {
	for _, n := range w.Nodes {
		if !n.Nylon.Stopped() {
			n.Nylon.Start()
		}
	}
}

// Get returns the node with the given ID, or nil.
func (w *World) Get(id identity.NodeID) *Node {
	n := w.byID[id]
	if n == nil || n.Nylon.Stopped() {
		return nil
	}
	return n
}

// Live returns all running nodes.
func (w *World) Live() []*Node {
	var out []*Node
	for _, n := range w.Nodes {
		if !n.Nylon.Stopped() {
			out = append(out, n)
		}
	}
	return out
}

// LivePublics returns all running P-nodes.
func (w *World) LivePublics() []*Node {
	var out []*Node
	for _, n := range w.Live() {
		if n.Public() {
			out = append(out, n)
		}
	}
	return out
}

// LiveNatted returns all running N-nodes.
func (w *World) LiveNatted() []*Node {
	var out []*Node
	for _, n := range w.Live() {
		if !n.Public() {
			out = append(out, n)
		}
	}
	return out
}

// Kill stops a node abruptly (churn departure).
func (w *World) Kill(n *Node) {
	if n.PPSS != nil {
		n.PPSS.Close()
	}
	n.Nylon.Stop()
}

// KillRandom stops count random live nodes.
func (w *World) KillRandom(count int) []*Node {
	live := w.Live()
	rng := w.Sim.Rand()
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	if count > len(live) {
		count = len(live)
	}
	killed := live[:count]
	for _, n := range killed {
		w.Kill(n)
	}
	return killed
}

// Graph snapshots the PSS overlay of all live nodes.
func (w *World) Graph() graph.Directed {
	g := make(graph.Directed)
	for _, n := range w.Live() {
		g[n.ID()] = n.Nylon.ViewIDs()
	}
	return g
}

// ResetMeters zeroes all bandwidth meters (per-cycle measurements).
func (w *World) ResetMeters() {
	for _, n := range w.Live() {
		n.Nylon.Meter().Reset()
	}
}

// CPUTotal merges the crypto CPU meters of every node ever created in
// this world (dead nodes included — their work happened). The parallel
// experiment harness merges these per-run totals after joining its
// workers, so concurrent runs account CPU exactly like sequential ones.
func (w *World) CPUTotal() crypt.CPUMeter {
	var total crypt.CPUMeter
	for _, n := range w.Nodes {
		if n.WCL != nil {
			total.Add(*n.WCL.CPU())
		}
	}
	return total
}
