package sim_test

import (
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/nat"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/wcl"
)

func TestNATDistribution(t *testing.T) {
	w, err := sim.NewWorld(sim.Options{Seed: 1, N: 400, NATRatio: 0.7, KeyPool: identity.TestPool(16)})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[nat.Type]int{}
	for _, n := range w.Nodes {
		counts[n.Type]++
	}
	pubs := counts[nat.None]
	if pubs < 100 || pubs > 140 {
		t.Fatalf("public nodes = %d, want ~120 (30%% of 400)", pubs)
	}
	// The four NAT types are split evenly.
	for _, typ := range nat.EmulatedTypes {
		if c := counts[typ]; c < 50 || c > 90 {
			t.Fatalf("%v count = %d, want ~70", typ, c)
		}
	}
	// Any prefix approximates the ratio (interleaving, not blocks).
	prefixPubs := 0
	for _, n := range w.Nodes[:40] {
		if n.Public() {
			prefixPubs++
		}
	}
	if prefixPubs < 6 || prefixPubs > 20 {
		t.Fatalf("prefix publics = %d/40, distribution not interleaved", prefixPubs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		w, err := sim.NewWorld(sim.Options{Seed: 7, N: 80, NATRatio: 0.7, KeyPool: identity.TestPool(16)})
		if err != nil {
			t.Fatal(err)
		}
		w.StartAll()
		w.Sim.RunUntil(3 * time.Minute)
		var shuffles, relays uint64
		for _, n := range w.Live() {
			shuffles += n.Nylon.Stats().ShufflesCompleted
			relays += n.Nylon.Stats().RelaysForwarded
		}
		return shuffles, relays
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 || r1 != r2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", s1, r1, s2, r2)
	}
	if s1 == 0 {
		t.Fatal("no shuffles at all")
	}
}

func TestStackAssembly(t *testing.T) {
	w, err := sim.NewWorld(sim.Options{
		Seed: 2, N: 30, NATRatio: 0.5,
		KeyPool: identity.TestPool(16),
		WCL:     &wcl.Config{MinPublic: 2},
		PPSS:    &ppss.Config{KeyBlobSize: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range w.Nodes {
		if n.WCL == nil || n.PPSS == nil {
			t.Fatal("stack layers missing")
		}
		if !n.Nylon.Config().KeySampling {
			t.Fatal("WCL requires key sampling but it is off")
		}
	}
}

func TestSpawnAndKill(t *testing.T) {
	w, err := sim.NewWorld(sim.Options{Seed: 3, N: 40, NATRatio: 0.7, KeyPool: identity.TestPool(16)})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(time.Minute)

	n := w.Spawn()
	if w.Get(n.ID()) != n {
		t.Fatal("spawned node not registered")
	}
	if len(w.Live()) != 41 {
		t.Fatalf("live = %d", len(w.Live()))
	}
	killed := w.KillRandom(5)
	if len(killed) != 5 || len(w.Live()) != 36 {
		t.Fatalf("kill accounting wrong: %d live", len(w.Live()))
	}
	for _, k := range killed {
		if w.Get(k.ID()) != nil {
			t.Fatal("killed node still returned by Get")
		}
	}
	// Meters reset works on the survivors.
	w.Sim.RunFor(time.Minute)
	w.ResetMeters()
	for _, node := range w.Live() {
		if node.Nylon.Meter().Snapshot().UpBytes != 0 {
			t.Fatal("ResetMeters incomplete")
		}
	}
}

func TestGraphSnapshot(t *testing.T) {
	w, err := sim.NewWorld(sim.Options{Seed: 4, N: 60, NATRatio: 0.7, KeyPool: identity.TestPool(16)})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)
	g := w.GraphStream().Collect()
	if len(g) != 60 {
		t.Fatalf("graph nodes = %d", len(g))
	}
	if !g.WeaklyConnected() {
		t.Fatal("converged world disconnected")
	}
}
