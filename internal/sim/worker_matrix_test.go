package sim_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/sim"
)

// TestShardedWorkerDeterminismMatrix pins the tentpole invariant of the
// parallel window pool: for a fixed (seed, config, shards) the run's
// fingerprint must not depend on how many workers execute the windows,
// nor on GOMAXPROCS. Worker counts change only scheduling; shard state
// is private and the barrier exchange merges cross-shard events in a
// fixed (time, src, seq) order.
func TestShardedWorkerDeterminismMatrix(t *testing.T) {
	run := func(workers int) string {
		w, err := sim.NewWorld(sim.Options{
			Seed: 42, N: 64, Shards: 8, NATRatio: 0.7,
			Model:   netem.Cluster{},
			KeyPool: identity.TestPool(16),
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Engine().SetWorkers(workers)
		w.StartAll()
		w.RunUntil(2 * time.Minute)
		var shuffles uint64
		for _, n := range w.Live() {
			shuffles += n.Nylon.Stats().ShufflesCompleted
		}
		sent, dropped := w.NetStats()
		return fmt.Sprintf("shuffles=%d sent=%d dropped=%d live=%d events=%d windows=%d",
			shuffles, sent, dropped, w.LiveCount(), w.Executed(), w.Engine().Windows())
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var want string
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{0, 1, 2, 8} {
			got := run(workers)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("fingerprint diverged at GOMAXPROCS=%d workers=%d:\n got %s\nwant %s",
					procs, workers, got, want)
			}
		}
	}
}
