package simnet

import (
	"testing"
	"time"
)

// Edge cases the sharded refactor must preserve in the plain engine.

// TestCompactionMidRun: cancelling a large batch of timers from inside
// an executing event triggers heap compaction while Run is draining
// the heap; live events scheduled around the compaction still fire, in
// order, exactly once.
func TestCompactionMidRun(t *testing.T) {
	s := New(1)
	var doomed []*Timer
	for i := 0; i < 500; i++ {
		doomed = append(doomed, s.After(time.Hour, func() { t.Error("cancelled timer fired") }))
	}
	var fired []time.Duration
	for i := 1; i <= 5; i++ {
		i := i
		s.After(time.Duration(i)*time.Second, func() { fired = append(fired, s.Now()) })
	}
	s.After(2500*time.Millisecond, func() {
		// Mass-cancel mid-run: compaction rebuilds the heap under Run's
		// feet (the pop loop re-reads the heap each iteration).
		for _, tm := range doomed {
			tm.Cancel()
		}
		if s.Cancelled()*2 > s.Pending() && s.Pending() >= 64 {
			t.Errorf("compaction did not run: %d cancelled of %d pending", s.Cancelled(), s.Pending())
		}
		fired = append(fired, s.Now())
	})
	s.Run()
	want := []time.Duration{
		time.Second, 2 * time.Second, 2500 * time.Millisecond,
		3 * time.Second, 4 * time.Second, 5 * time.Second,
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d: %v", len(fired), len(want), fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("event %d at %v, want %v", i, fired[i], want[i])
		}
	}
	if s.Pending() != 0 || s.Cancelled() != 0 {
		t.Fatalf("after Run: pending=%d cancelled=%d, want 0/0", s.Pending(), s.Cancelled())
	}
}

// TestRunUntilExactlyOnEventTimestamp: an event scheduled exactly at
// the RunUntil horizon runs (the bound is inclusive), the clock ends
// exactly there, and re-running until the same instant is a no-op.
func TestRunUntilExactlyOnEventTimestamp(t *testing.T) {
	s := New(1)
	var at []time.Duration
	s.After(time.Second, func() { at = append(at, s.Now()) })
	s.After(time.Second, func() { at = append(at, s.Now()) }) // FIFO twin at the bound
	s.After(time.Second+time.Nanosecond, func() { at = append(at, s.Now()) })
	s.RunUntil(time.Second)
	if len(at) != 2 || at[0] != time.Second || at[1] != time.Second {
		t.Fatalf("events at horizon: %v, want two at exactly 1s", at)
	}
	if s.Now() != time.Second {
		t.Fatalf("Now = %v, want exactly 1s", s.Now())
	}
	s.RunUntil(time.Second) // idempotent: nothing new ≤ 1s
	if len(at) != 2 {
		t.Fatalf("re-running until the same instant fired %d extra events", len(at)-2)
	}
	s.RunUntil(time.Second + time.Nanosecond)
	if len(at) != 3 || at[2] != time.Second+time.Nanosecond {
		t.Fatalf("1ns-later event: %v", at)
	}
}

// TestTickerStopInsideOwnCallbackThenReschedule: stopping a ticker
// from its own callback must not only halt it (covered elsewhere) but
// also leave the engine clean enough to host a replacement ticker with
// the same period — the restart pattern route maintenance uses.
func TestTickerStopInsideOwnCallbackThenReschedule(t *testing.T) {
	s := New(1)
	firstTicks, secondTicks := 0, 0
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		firstTicks++
		if firstTicks == 2 {
			tk.Stop()
			tk.Stop() // idempotent from inside the callback too
			s.Every(time.Second, func() { secondTicks++ })
		}
	})
	s.RunUntil(6 * time.Second)
	if firstTicks != 2 {
		t.Fatalf("first ticker ticked %d times, want 2", firstTicks)
	}
	// Replacement starts at t=2s, first fire 3s, then 4s, 5s, 6s.
	if secondTicks != 4 {
		t.Fatalf("replacement ticker ticked %d times, want 4", secondTicks)
	}
}

// TestTimerCancelAfterGenerationRecycling: a stale handle must stay
// inert across MANY recycles of its event slot, and Stopped must keep
// reporting true even while the slot hosts a live timer of a newer
// generation.
func TestTimerCancelAfterGenerationRecycling(t *testing.T) {
	s := New(1)
	stale := s.After(time.Second, func() {})
	s.Run()
	fired := 0
	for round := 0; round < 100; round++ {
		// Each round likely reuses the recycled slot; the stale handle
		// must never cancel the current occupant.
		cur := s.After(time.Second, func() { fired++ })
		stale.Cancel()
		if !stale.Stopped() {
			t.Fatalf("round %d: stale handle reports live", round)
		}
		if cur.Stopped() {
			t.Fatalf("round %d: stale Cancel stopped a recycled-slot timer", round)
		}
		s.Run()
	}
	if fired != 100 {
		t.Fatalf("fired = %d, want 100", fired)
	}
}
