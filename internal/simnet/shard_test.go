package simnet

import (
	"fmt"
	"testing"
	"time"
)

// TestShardedLocalOrdering: events within one shard fire in (time,
// seq) order exactly like the plain engine.
func TestShardedLocalOrdering(t *testing.T) {
	d := NewSharded(1, 3, 10*time.Millisecond)
	var got []int
	d.Shard(0).After(30*time.Millisecond, func() { got = append(got, 3) })
	d.Shard(0).After(10*time.Millisecond, func() { got = append(got, 1) })
	d.Shard(0).After(20*time.Millisecond, func() { got = append(got, 2) })
	d.Run()
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("order = %v", got)
	}
	// Run drains through whole windows, so the final barrier is the last
	// window's edge: last event (30ms) + lookahead (10ms).
	if d.Now() != 40*time.Millisecond {
		t.Fatalf("barrier = %v, want 40ms", d.Now())
	}
}

// TestShardedCrossDeterministicOrder: cross-shard events exchanged at
// a barrier land in (time, source shard, per-source seq) order, no
// matter which order their source shards executed in.
func TestShardedCrossDeterministicOrder(t *testing.T) {
	run := func() []string {
		d := NewSharded(7, 4, 10*time.Millisecond)
		var got []string
		// Every shard sends two events to shard 0, all delivered at the
		// same instant: order must be (src, seq).
		for s := 1; s < 4; s++ {
			s := s
			d.Shard(s).After(time.Millisecond, func() {
				for k := 0; k < 2; k++ {
					s, k := s, k
					d.Inject(s, 0, 50*time.Millisecond, func() {
						got = append(got, fmt.Sprintf("s%dk%d@%v", s, k, d.Shard(0).Now()))
					})
				}
			})
		}
		d.Run()
		return got
	}
	want := []string{"s1k0@50ms", "s1k1@50ms", "s2k0@50ms", "s2k1@50ms", "s3k0@50ms", "s3k1@50ms"}
	for trial := 0; trial < 10; trial++ {
		got := run()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: cross order = %v, want %v", trial, got, want)
		}
	}
}

// TestShardedPingPong: two shards exchanging messages with the
// minimum latency make progress and keep causal time.
func TestShardedPingPong(t *testing.T) {
	const lat = 5 * time.Millisecond
	d := NewSharded(3, 2, lat)
	hops := 0
	var send func(from, to int)
	send = func(from, to int) {
		now := d.Shard(from).Now()
		d.Inject(from, to, now+lat, func() {
			if got := d.Shard(to).Now(); got != now+lat {
				t.Errorf("hop %d delivered at %v, want %v", hops, got, now+lat)
			}
			hops++
			if hops < 20 {
				send(to, from)
			}
		})
	}
	d.Shard(0).After(time.Millisecond, func() { send(0, 1) })
	d.Run()
	if hops != 20 {
		t.Fatalf("hops = %d, want 20", hops)
	}
	if want := time.Millisecond + 20*lat; d.Now() < want {
		t.Fatalf("barrier = %v, want ≥ %v", d.Now(), want)
	}
}

// TestShardedRunUntilAdvancesAllClocks: after RunUntil every shard
// clock and the barrier sit exactly at the horizon.
func TestShardedRunUntilAdvancesAllClocks(t *testing.T) {
	d := NewSharded(1, 3, time.Millisecond)
	fired := 0
	d.Shard(1).After(time.Second, func() { fired++ })
	d.Shard(2).After(3*time.Second, func() { fired++ })
	d.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if d.Now() != 2*time.Second {
		t.Fatalf("barrier = %v, want 2s", d.Now())
	}
	for i := 0; i < 3; i++ {
		if got := d.Shard(i).Now(); got != 2*time.Second {
			t.Fatalf("shard %d clock = %v, want 2s", i, got)
		}
	}
	d.RunFor(2 * time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// TestShardedControlPlane: control events run at exact instants, in
// (time, seq) order, with all shards parked at the barrier.
func TestShardedControlPlane(t *testing.T) {
	d := NewSharded(1, 2, 10*time.Millisecond)
	var got []string
	d.Shard(0).Every(7*time.Millisecond, func() {})
	d.Schedule(25*time.Millisecond, func() {
		got = append(got, fmt.Sprintf("a@%v/%v/%v", d.Now(), d.Shard(0).Now(), d.Shard(1).Now()))
		// Nested control work at the same instant runs before windows resume.
		d.Schedule(25*time.Millisecond, func() { got = append(got, "b") })
	})
	d.Schedule(25*time.Millisecond, func() { got = append(got, "c") })
	d.RunUntil(40 * time.Millisecond)
	want := "[a@25ms/25ms/25ms c b]"
	if fmt.Sprint(got) != want {
		t.Fatalf("control trace = %v, want %v", got, want)
	}
}

// TestShardedStopAndResume mirrors the plain engine's Stop contract.
func TestShardedStopAndResume(t *testing.T) {
	d := NewSharded(1, 2, time.Millisecond)
	n := 0
	d.Shard(0).Every(time.Second, func() { n++ })
	d.Schedule(5*time.Second, func() { d.Stop() })
	d.Run()
	if n != 5 {
		t.Fatalf("events before Stop = %d, want 5", n)
	}
	d.RunUntil(d.Now() + 2*time.Second)
	if n != 7 {
		t.Fatalf("resume failed: n = %d, want 7", n)
	}
}

// TestShardedDeterminism: identical (seed, shards) runs produce
// identical event counts and traces; a different shard count produces
// a (deterministically) different run.
func TestShardedDeterminism(t *testing.T) {
	trace := func(seed int64, k int) (string, uint64) {
		d := NewSharded(seed, k, 2*time.Millisecond)
		// One trace buffer per shard: windows execute shards on separate
		// goroutines, so a shared slice would race.
		out := make([][]string, k)
		for i := 0; i < k; i++ {
			i := i
			var cycle func()
			cycle = func() {
				s := d.Shard(i)
				out[i] = append(out[i], fmt.Sprintf("%d@%v", i, s.Now()))
				if s.Now() < 50*time.Millisecond {
					// Random local hop plus a cross-shard hop.
					s.After(time.Duration(s.Rand().Intn(5)+1)*time.Millisecond, cycle)
					dst := (i + 1) % k
					d.Inject(i, dst, s.Now()+2*time.Millisecond, func() {})
				}
			}
			d.Shard(i).After(time.Millisecond, cycle)
		}
		d.Run()
		return fmt.Sprint(out), d.Executed()
	}
	t1, e1 := trace(11, 4)
	t2, e2 := trace(11, 4)
	if t1 != t2 || e1 != e2 {
		t.Fatalf("same (seed, shards) diverged: %d vs %d events", e1, e2)
	}
	t3, _ := trace(11, 2)
	if t1 == t3 {
		t.Fatal("different shard counts produced identical traces (suspicious)")
	}
}

// TestShardedFastForward: long empty stretches are skipped without
// degenerating into one window per lookahead.
func TestShardedFastForward(t *testing.T) {
	d := NewSharded(1, 2, time.Millisecond)
	fired := false
	d.Shard(1).After(time.Hour, func() { fired = true })
	d.Run()
	if !fired {
		t.Fatal("event never fired")
	}
	if d.Windows() > 4 {
		t.Fatalf("windows = %d for a single far-future event, want ≤ 4", d.Windows())
	}
}

// TestShardedWindowHook: the hook observes contiguous windows.
func TestShardedWindowHook(t *testing.T) {
	d := NewSharded(1, 2, time.Millisecond)
	d.Shard(0).Every(500*time.Microsecond, func() {})
	var last time.Duration
	calls := 0
	d.SetWindowHook(func(start, end time.Duration) {
		if start != last {
			t.Errorf("window start %v, want %v (contiguous)", start, last)
		}
		if end <= start {
			t.Errorf("empty window [%v, %v]", start, end)
		}
		last = end
		calls++
	})
	d.RunUntil(10 * time.Millisecond)
	if calls == 0 || uint64(calls) != d.Windows() {
		t.Fatalf("hook calls = %d, windows = %d", calls, d.Windows())
	}
}

// TestShardedSeedStreamsDiffer: shard random streams are decorrelated.
func TestShardedSeedStreamsDiffer(t *testing.T) {
	d := NewSharded(5, 4, time.Millisecond)
	seen := map[int64]bool{}
	for i := 0; i < 4; i++ {
		v := d.Shard(i).Rand().Int63()
		if seen[v] {
			t.Fatalf("shard %d repeats another shard's first draw", i)
		}
		seen[v] = true
	}
}

// TestShardedReentrantRunPanics mirrors the plain engine's guard.
func TestShardedReentrantRunPanics(t *testing.T) {
	d := NewSharded(1, 2, time.Millisecond)
	d.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant sharded Run did not panic")
			}
		}()
		d.Run()
	})
	d.Run()
}

func BenchmarkShardedWindowOverhead(b *testing.B) {
	d := NewSharded(1, 8, time.Millisecond)
	for i := 0; i < 8; i++ {
		d.Shard(i).Every(100*time.Microsecond, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.RunFor(time.Millisecond)
	}
}
