// Package simnet provides a deterministic discrete-event simulation
// engine: a virtual clock, an event scheduler, timers and tickers, and a
// seeded random source. All WHISPER protocol experiments run on top of
// this engine so that a (seed, configuration) pair fully determines the
// outcome of a run.
//
// The engine is single-threaded by design: events execute sequentially
// in (time, insertion) order. Protocol handlers therefore never need
// locks, which mirrors the actor-per-node execution model of the SPLAY
// framework used in the paper.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Sim is a discrete-event simulator with a virtual clock.
//
// The zero value is not usable; create instances with New.
type Sim struct {
	now     time.Duration
	epoch   time.Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	running bool

	// Executed counts events dispatched so far (diagnostic).
	executed uint64

	// cancelled counts dead events still sitting in the heap; when they
	// outnumber the live ones the heap is compacted (retry- and
	// route-maintenance-heavy runs otherwise drag a long tail of dead
	// timers through every sift).
	cancelled int
	// free recycles event structs. The simulator is single-threaded, so
	// a plain stack beats sync.Pool; generation tags on events keep
	// stale Timer handles from touching a recycled slot.
	free []*event
}

// New returns a simulator whose random source is seeded with seed and
// whose virtual clock starts at a fixed epoch (2011-01-01 UTC, the year
// of the paper) plus zero.
func New(seed int64) *Sim {
	return &Sim{
		epoch: time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time as an offset from the start of
// the simulation.
func (s *Sim) Now() time.Duration { return s.now }

// Time returns the current virtual time as an absolute instant.
func (s *Sim) Time() time.Time { return s.epoch.Add(s.now) }

// Rand returns the simulation's deterministic random source. It must
// only be used from within event callbacks (or before Run), never from
// other goroutines.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Executed reports how many events have been dispatched so far.
func (s *Sim) Executed() uint64 { return s.executed }

// Timer is a handle to a scheduled event. Cancel prevents the callback
// from running if it has not run yet.
type Timer struct {
	s   *Sim
	ev  *event
	gen uint64
}

// Cancel stops the timer. It is safe to call on an already-fired or
// already-cancelled timer, and safe to call on a nil Timer.
func (t *Timer) Cancel() {
	if t == nil || t.ev == nil {
		return
	}
	if t.ev.gen == t.gen && t.ev.fn != nil {
		t.ev.fn = nil
		t.s.cancelled++
		t.s.maybeCompact()
	}
	t.ev = nil
}

// Stopped reports whether the timer was cancelled or has fired.
func (t *Timer) Stopped() bool {
	return t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.fn == nil
}

// alloc takes an event from the free stack or allocates a fresh one.
func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// release recycles an event that left the heap. Bumping the generation
// invalidates every Timer handle still pointing at it.
func (s *Sim) release(ev *event) {
	ev.fn = nil
	ev.gen++
	s.free = append(s.free, ev)
}

// maybeCompact drops cancelled events once they outnumber the live
// ones, rebuilding the heap in one O(n) pass.
func (s *Sim) maybeCompact() {
	if len(s.events) < 64 || s.cancelled*2 <= len(s.events) {
		return
	}
	live := s.events[:0]
	for _, ev := range s.events {
		if ev.fn != nil {
			live = append(live, ev)
		} else {
			s.release(ev)
		}
	}
	for i := len(live); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = live
	heap.Init(&s.events)
	s.cancelled = 0
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (or present) runs the callback at the current time but strictly
// after the currently-executing event returns.
func (s *Sim) At(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("simnet: nil callback")
	}
	if at < s.now {
		at = s.now
	}
	ev := s.alloc()
	ev.at, ev.seq, ev.fn = at, s.seq, fn
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{s: s, ev: ev, gen: ev.gen}
}

// After schedules fn to run d from the current virtual time.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Ticker repeatedly invokes a callback with a fixed period, optionally
// jittered. Cancel it with Stop.
type Ticker struct {
	s        *Sim
	period   time.Duration
	jitter   time.Duration
	fn       func()
	t        *Timer
	stopped  bool
	lastFire time.Duration
}

// Every schedules fn to run every period of virtual time. The first
// firing happens after one period. A ticker holds only one outstanding
// timer at a time.
func (s *Sim) Every(period time.Duration, fn func()) *Ticker {
	return s.EveryJitter(period, 0, fn)
}

// EveryJitter is Every with a uniform jitter in [0, jitter) added to
// each period, which desynchronises node cycles like real deployments.
func (s *Sim) EveryJitter(period, jitter time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simnet: non-positive ticker period %v", period))
	}
	tk := &Ticker{s: s, period: period, jitter: jitter, fn: fn}
	tk.schedule()
	return tk
}

func (tk *Ticker) schedule() {
	d := tk.period
	if tk.jitter > 0 {
		d += time.Duration(tk.s.rng.Int63n(int64(tk.jitter)))
	}
	tk.t = tk.s.After(d, func() {
		if tk.stopped {
			return
		}
		tk.lastFire = tk.s.now
		tk.fn()
		if !tk.stopped {
			tk.schedule()
		}
	})
}

// Stop cancels the ticker. Safe to call multiple times and on nil.
func (tk *Ticker) Stop() {
	if tk == nil || tk.stopped {
		return
	}
	tk.stopped = true
	tk.t.Cancel()
}

// Run executes events until the queue is empty or Stop is called.
func (s *Sim) Run() {
	s.run(-1)
}

// RunUntil executes events with timestamps <= t and then advances the
// clock to exactly t.
func (s *Sim) RunUntil(t time.Duration) {
	s.run(t)
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// RunFor executes events for d of virtual time from the current clock.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Stop makes the current Run/RunUntil call return after the current
// event completes. The simulation may be resumed afterwards.
func (s *Sim) Stop() { s.stopped = true }

func (s *Sim) run(until time.Duration) {
	if s.running {
		panic("simnet: re-entrant Run")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.events) > 0 && !s.stopped {
		ev := s.events[0]
		if until >= 0 && ev.at > until {
			return
		}
		heap.Pop(&s.events)
		if ev.fn == nil { // cancelled: drop and recycle
			s.cancelled--
			s.release(ev)
			continue
		}
		if ev.at > s.now {
			s.now = ev.at
		}
		fn := ev.fn
		s.release(ev)
		s.executed++
		fn()
	}
}

// NextLiveAt reports the timestamp of the earliest pending live event.
// Cancelled events sitting on top of the heap are dropped and recycled
// on the way, so the answer is exact. The sharded coordinator uses it
// between windows to pick the next horizon.
func (s *Sim) NextLiveAt() (time.Duration, bool) {
	for len(s.events) > 0 {
		ev := s.events[0]
		if ev.fn != nil {
			return ev.at, true
		}
		heap.Pop(&s.events)
		s.cancelled--
		s.release(ev)
	}
	return 0, false
}

// Schedule runs fn at absolute virtual time at, discarding the timer
// handle. It adapts the simulator to scheduler interfaces (see
// churn.Scheduler) that the sharded engine's control plane also
// implements.
func (s *Sim) Schedule(at time.Duration, fn func()) { s.At(at, fn) }

// Pending reports the number of events currently queued, including
// cancelled ones not yet compacted away.
func (s *Sim) Pending() int { return len(s.events) }

// Cancelled reports how many dead events are still in the heap
// (diagnostic; compaction keeps this below half of Pending).
func (s *Sim) Cancelled() int { return s.cancelled }

type event struct {
	at  time.Duration
	seq uint64
	gen uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
