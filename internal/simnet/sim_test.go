package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulingInPast(t *testing.T) {
	s := New(1)
	ran := false
	s.After(time.Second, func() {
		// Schedule at an absolute time in the past: must run "now".
		s.At(0, func() {
			ran = true
			if s.Now() != time.Second {
				t.Errorf("past event ran at %v, want 1s", s.Now())
			}
		})
	})
	s.Run()
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
}

func TestTimerCancel(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.After(time.Second, func() { ran = true })
	tm.Cancel()
	if !tm.Stopped() {
		t.Fatal("cancelled timer not Stopped")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled timer fired")
	}
	// Cancel is idempotent and nil-safe.
	tm.Cancel()
	var nilT *Timer
	nilT.Cancel()
	if !nilT.Stopped() {
		t.Fatal("nil timer should report Stopped")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(time.Second, func() { fired++ })
	s.After(3*time.Second, func() { fired++ })
	s.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
	s.RunFor(2 * time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	n := 0
	tk := s.Every(10*time.Second, func() { n++ })
	s.RunUntil(45 * time.Second)
	if n != 4 {
		t.Fatalf("ticks = %d, want 4", n)
	}
	tk.Stop()
	s.RunUntil(2 * time.Minute)
	if n != 4 {
		t.Fatalf("ticks after Stop = %d, want 4", n)
	}
	tk.Stop() // idempotent
	var nilTk *Ticker
	nilTk.Stop() // nil-safe
}

func TestTickerStopFromCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.RunUntil(time.Minute)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestTickerJitterWithinBounds(t *testing.T) {
	s := New(42)
	var gaps []time.Duration
	last := time.Duration(0)
	s.EveryJitter(10*time.Second, 2*time.Second, func() {
		gaps = append(gaps, s.Now()-last)
		last = s.Now()
	})
	s.RunUntil(5 * time.Minute)
	if len(gaps) < 10 {
		t.Fatalf("too few ticks: %d", len(gaps))
	}
	for _, g := range gaps {
		if g < 10*time.Second || g >= 12*time.Second {
			t.Fatalf("gap %v outside [10s,12s)", g)
		}
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	n := 0
	s.Every(time.Second, func() {
		n++
		if n == 5 {
			s.Stop()
		}
	})
	s.Run()
	if n != 5 {
		t.Fatalf("events after Stop: n = %d, want 5", n)
	}
	// Resumable after Stop.
	s.RunUntil(s.Now() + 2*time.Second)
	if n != 7 {
		t.Fatalf("resume failed: n = %d, want 7", n)
	}
}

func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []time.Duration {
		s := New(seed)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			s.After(time.Duration(s.Rand().Intn(1000))*time.Millisecond, func() {
				out = append(out, s.Now())
				if s.Rand().Intn(2) == 0 {
					s.After(time.Duration(s.Rand().Intn(100))*time.Millisecond, func() {
						out = append(out, s.Now())
					})
				}
			})
		}
		s.Run()
		return out
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

// Property: for any batch of schedule offsets, events fire in
// non-decreasing time order and the clock ends at the max offset.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		s := New(3)
		var fired []time.Duration
		var max time.Duration
		for _, o := range offsets {
			d := time.Duration(o) * time.Millisecond
			if d > max {
				max = d
			}
			s.After(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochTime(t *testing.T) {
	s := New(1)
	base := s.Time()
	s.After(time.Hour, func() {})
	s.Run()
	if got := s.Time().Sub(base); got != time.Hour {
		t.Fatalf("Time advanced %v, want 1h", got)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	s := New(1)
	s.After(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		s.Run()
	})
	s.Run()
}

func TestCancelledTimersAreCompacted(t *testing.T) {
	s := New(1)
	// Many cancel/reschedule cycles, the pattern of retry and
	// route-maintenance timers: schedule far-future work, cancel it,
	// replace it. Dead events must not accumulate in the heap.
	var live []*Timer
	for cycle := 0; cycle < 100; cycle++ {
		for i := 0; i < 100; i++ {
			live = append(live, s.After(time.Hour, func() {}))
		}
		for _, tm := range live {
			tm.Cancel()
		}
		live = live[:0]
	}
	if s.Pending() > 10000/2+100 {
		t.Fatalf("heap holds %d events after cancelling all 10000", s.Pending())
	}
	if s.Cancelled()*2 > s.Pending() && s.Pending() >= 64 {
		t.Fatalf("cancelled events (%d) exceed half the heap (%d)", s.Cancelled(), s.Pending())
	}
	fired := 0
	s.After(time.Minute, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("live timer fired %d times, want 1", fired)
	}
	if s.Pending() != 0 || s.Cancelled() != 0 {
		t.Fatalf("after Run: pending=%d cancelled=%d, want 0/0", s.Pending(), s.Cancelled())
	}
}

func TestCancelledTimersDroppedOnPop(t *testing.T) {
	s := New(1)
	var tms []*Timer
	for i := 0; i < 10; i++ {
		tms = append(tms, s.After(time.Duration(i)*time.Second, func() {}))
	}
	for _, tm := range tms[:5] {
		tm.Cancel()
	}
	if got := s.Cancelled(); got != 5 {
		t.Fatalf("Cancelled = %d, want 5", got)
	}
	s.Run()
	if s.Cancelled() != 0 {
		t.Fatalf("Cancelled = %d after Run, want 0", s.Cancelled())
	}
}

func TestRecycledEventNotCancellableViaStaleHandle(t *testing.T) {
	s := New(1)
	// Fire a timer, then schedule another one: the second may reuse the
	// first one's recycled event. The stale handle must neither cancel
	// nor report on the new event.
	t1 := s.After(time.Second, func() {})
	s.Run()
	if !t1.Stopped() {
		t.Fatal("fired timer not Stopped")
	}
	ran := false
	t2 := s.After(time.Second, func() { ran = true })
	t1.Cancel() // must be a no-op on t2's (possibly recycled) event
	if t2.Stopped() {
		t.Fatal("stale Cancel stopped the new timer")
	}
	s.Run()
	if !ran {
		t.Fatal("new timer did not fire after stale Cancel")
	}
}

func TestCancelRescheduleCycleKeepsStateBounded(t *testing.T) {
	s := New(1)
	// A single logical retry timer rescheduled 50,000 times must not
	// grow the heap or the free list without bound.
	var tm *Timer
	for i := 0; i < 50000; i++ {
		tm.Cancel()
		tm = s.After(time.Hour, func() {})
	}
	if s.Pending() > 1000 {
		t.Fatalf("heap grew to %d events for one logical timer", s.Pending())
	}
	if len(s.free) > 100000 {
		t.Fatalf("free list grew to %d", len(s.free))
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if s.Pending() > 10000 {
			s.Run()
		}
	}
	s.Run()
}
