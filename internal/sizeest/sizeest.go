// Package sizeest estimates the size of a private group from within,
// without any roster: the gossip-based counting protocol of §II-B's
// citations ([8], [11]) run over confidential WCL routes. The group
// leader seeds each epoch with value 1 and every other member with 0;
// pairwise averaging over the private views converges every member's
// value to 1/n, so 1/value estimates the membership size — a quantity
// that remains invisible to anyone outside the group.
package sizeest

import (
	"math"
	"time"

	"whisper/internal/aggregate"
	"whisper/internal/ppss"
	"whisper/internal/transport"
	"whisper/internal/wire"
)

// Tag is the PPSS payload tag of aggregation messages.
const Tag uint8 = 0x68

// Config parameterizes the estimator.
type Config struct {
	// Cycle is the exchange period (default 30 s).
	Cycle time.Duration
	// Epoch is the restart period; estimates refresh once per epoch and
	// track membership changes (default 20×Cycle).
	Epoch time.Duration
}

func (c Config) withDefaults() Config {
	if c.Cycle == 0 {
		c.Cycle = 30 * time.Second
	}
	if c.Epoch == 0 {
		c.Epoch = 20 * c.Cycle
	}
	return c
}

// Estimator runs the counting protocol for one group member.
type Estimator struct {
	inst *ppss.Instance
	rt   transport.Transport
	cfg  Config

	state    *aggregate.State
	epoch    uint64
	lastGood float64
	ticker   transport.Ticker
	stopped  bool

	// Exchanges counts completed pairwise averaging steps.
	Exchanges uint64
}

// New attaches an estimator to a group instance (subscribing to Tag)
// and starts it.
func New(inst *ppss.Instance, cfg Config) *Estimator {
	e := &Estimator{
		inst: inst,
		rt:   inst.Runtime(),
		cfg:  cfg.withDefaults(),
	}
	e.restart()
	inst.Subscribe(Tag, e.handle)
	e.ticker = e.rt.EveryJitter(e.cfg.Cycle, e.cfg.Cycle/2, e.cycle)
	return e
}

// Stop halts the estimator.
func (e *Estimator) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	e.ticker.Stop()
	e.inst.Subscribe(Tag, nil)
}

// Estimate returns the current group-size estimate. ok is false until
// the first epoch has made progress.
func (e *Estimator) Estimate() (float64, bool) {
	if cur := e.currentEstimate(); cur > 0 && !math.IsInf(cur, 0) {
		return cur, true
	}
	if e.lastGood > 0 {
		return e.lastGood, true
	}
	return 0, false
}

func (e *Estimator) currentEstimate() float64 {
	v := e.state.Value()
	if v <= 0 {
		return 0
	}
	return aggregate.SizeEstimate(v)
}

// epochOf derives the global epoch number from virtual time, so all
// members restart in loose synchrony without coordination.
func (e *Estimator) epochOf() uint64 {
	return uint64(e.rt.Now() / e.cfg.Epoch)
}

// restart begins a new epoch: the leader seeds 1, everyone else 0.
func (e *Estimator) restart() {
	v := 0.0
	if e.inst.IsLeader() {
		v = 1.0
	}
	e.state = aggregate.New(aggregate.Average, v)
	e.epoch = e.epochOf()
}

func (e *Estimator) cycle() {
	if e.stopped {
		return
	}
	if now := e.epochOf(); now != e.epoch {
		if cur := e.currentEstimate(); cur > 0 && !math.IsInf(cur, 0) {
			e.lastGood = cur
		}
		e.restart()
	}
	peer, ok := e.inst.GetPeer()
	if !ok {
		return
	}
	e.inst.Send(peer, e.encodeMsg(false), nil)
}

func (e *Estimator) encodeMsg(isReply bool) []byte {
	w := wire.NewWriter(19)
	w.U8(Tag)
	w.Bool(isReply)
	w.U64(e.epoch)
	w.U64(math.Float64bits(e.state.Value()))
	return w.Bytes()
}

// handle performs the push-pull averaging step: both sides end up with
// the pairwise mean, preserving the global sum (the invariant that
// makes 1/value converge to the group size).
func (e *Estimator) handle(from ppss.Entry, payload []byte) {
	if e.stopped {
		return
	}
	r := wire.NewReader(payload)
	if r.U8() != Tag {
		return
	}
	isReply := r.Bool()
	epoch := r.U64()
	val := math.Float64frombits(r.U64())
	if r.Err() != nil || math.IsNaN(val) || math.IsInf(val, 0) || val < 0 {
		return
	}
	if now := e.epochOf(); now != e.epoch {
		e.restart()
	}
	if epoch != e.epoch {
		return // stale or early epoch; ignore to preserve mass
	}
	if !isReply {
		// Reply with our pre-merge value so both sides converge to the
		// same mean.
		e.inst.Send(from, e.encodeMsg(true), nil)
	}
	e.state.Absorb(val)
	e.Exchanges++
}
