// Package stats provides the summary statistics used by the evaluation
// harness: empirical CDFs (Figs 5, 7, 9), percentile stacks (Fig 8) and
// mean/err summaries (Fig 6, Tables I/II), plus fixed-width table
// rendering for terminal output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the moments of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max, Sum float64
}

// Summarize computes a Summary of values. An empty input yields a zero
// Summary.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of values using
// linear interpolation. values need not be sorted.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles computes several percentiles in one sort.
func Percentiles(values []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(values) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // fraction of samples <= Value, in (0,1]
}

// CDF returns the empirical distribution of values as sorted points.
// Duplicate values are merged into a single step.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i, v := range sorted {
		if len(out) > 0 && out[len(out)-1].Value == v {
			out[len(out)-1].Fraction = float64(i+1) / n
			continue
		}
		out = append(out, CDFPoint{Value: v, Fraction: float64(i+1) / n})
	}
	return out
}

// CDFAt returns the fraction of samples <= x for a CDF produced by CDF.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	frac := 0.0
	for _, p := range cdf {
		if p.Value > x {
			break
		}
		frac = p.Fraction
	}
	return frac
}

// SampleCDF reduces a CDF to at most n evenly spaced points for
// printing, always keeping the last point.
func SampleCDF(cdf []CDFPoint, n int) []CDFPoint {
	if len(cdf) <= n || n < 2 {
		return cdf
	}
	out := make([]CDFPoint, 0, n)
	step := float64(len(cdf)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, cdf[int(math.Round(float64(i)*step))])
	}
	return out
}

// Stack is a stacked-percentile snapshot, the representation used by
// Fig 8 ("stacked percentiles with shades of grey").
type Stack struct {
	P5, P25, P50, P75, P90 float64
}

// StackOf computes the five standard percentiles of values.
func StackOf(values []float64) Stack {
	ps := Percentiles(values, 5, 25, 50, 75, 90)
	return Stack{P5: ps[0], P25: ps[1], P50: ps[2], P75: ps[3], P90: ps[4]}
}

func (s Stack) String() string {
	return fmt.Sprintf("p5=%.2f p25=%.2f p50=%.2f p75=%.2f p90=%.2f", s.P5, s.P25, s.P50, s.P75, s.P90)
}

// Table renders aligned columns for terminal output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
