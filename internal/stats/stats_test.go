package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Fatalf("summary: %+v", s)
	}
	// Sample std of this classic dataset is ~2.138.
	if math.Abs(s.Std-2.1380899) > 1e-6 {
		t.Fatalf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary: %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{10, 20}, 50); got != 15 {
		t.Errorf("interpolated median = %v, want 15", got)
	}
}

func TestPercentilesMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	got := Percentiles(vals, 5, 50, 95)
	for i, p := range []float64{5, 50, 95} {
		if got[i] != Percentile(vals, p) {
			t.Fatalf("Percentiles[%d] diverges from Percentile", i)
		}
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{3, 1, 2, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(cdf) != len(want) {
		t.Fatalf("cdf = %v", cdf)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if CDFAt(cdf, 1.5) != 0.25 || CDFAt(cdf, 2) != 0.75 || CDFAt(cdf, 99) != 1 || CDFAt(cdf, 0) != 0 {
		t.Fatal("CDFAt lookup wrong")
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestSampleCDF(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	cdf := CDF(vals)
	s := SampleCDF(cdf, 10)
	if len(s) != 10 {
		t.Fatalf("sampled to %d points, want 10", len(s))
	}
	if s[len(s)-1] != cdf[len(cdf)-1] {
		t.Fatal("last point not preserved")
	}
	if got := SampleCDF(cdf, 5000); len(got) != len(cdf) {
		t.Fatal("oversampling should return input")
	}
}

// Property: the CDF is monotone in both coordinates and ends at 1.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		cdf := CDF(vals)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Value <= cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
				return false
			}
		}
		return cdf[len(cdf)-1].Fraction == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(vals, pa), Percentile(vals, pb)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return va <= vb && va >= sorted[0] && vb <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestStackOf(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	s := StackOf(vals)
	if s.P50 != 50.5 {
		t.Fatalf("median = %v", s.P50)
	}
	if !(s.P5 < s.P25 && s.P25 < s.P50 && s.P50 < s.P75 && s.P75 < s.P90) {
		t.Fatalf("stack not ordered: %+v", s)
	}
	if !strings.Contains(s.String(), "p50=50.50") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 3.14159)
	tb.Row("b", 10)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "3.14") {
		t.Fatalf("table content:\n%s", out)
	}
	// Columns aligned: all lines same prefix width up to separator.
	if len(lines[1]) < len("name") {
		t.Fatal("separator too short")
	}
}
