package tchord

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whisper/internal/identity"
	"whisper/internal/ppss"
	"whisper/internal/tman"
)

func TestBetween(t *testing.T) {
	cases := []struct {
		x, a, b ChordID
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false}, // exclusive at a
		{10, 1, 10, true}, // inclusive at b
		{15, 1, 10, false},
		{0, 250, 10, true}, // wrap-around
		{251, 250, 10, true},
		{249, 250, 10, false},
		{7, 7, 7, true}, // a == b is the full circle: a single node owns everything
		{9, 7, 7, true},
	}
	for _, c := range cases {
		if got := between(c.x, c.a, c.b); got != c.want {
			t.Errorf("between(%d, %d, %d) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

// Property: exactly one of "x in (a,b]" and "x in (b,a]" holds for
// distinct a, b, x (the ring is partitioned).
func TestPropertyBetweenPartitions(t *testing.T) {
	f := func(x, a, b uint64) bool {
		X, A, B := ChordID(x), ChordID(a), ChordID(b)
		if A == B || X == A || X == B {
			return true
		}
		return between(X, A, B) != between(X, B, A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

// Property: clockwise distances around a triangle compose: d(a,b) +
// d(b,c) ≡ d(a,c) (mod 2^64) — the metric is consistent.
func TestPropertyDistComposition(t *testing.T) {
	f := func(a, b, c uint64) bool {
		A, B, C := ChordID(a), ChordID(b), ChordID(c)
		return distCW(A, B)+distCW(B, C) == distCW(A, C)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRankers(t *testing.T) {
	base := peer{CID: 100}
	near := peer{CID: 110, E: ppss.Entry{ID: 1}}
	far := peer{CID: 300, E: ppss.Entry{ID: 2}}
	behind := peer{CID: 90, E: ppss.Entry{ID: 3}} // almost a full lap clockwise

	var sr succRanker
	if !sr.Less(base, near, far) || sr.Less(base, behind, near) {
		t.Fatal("succRanker ordering wrong")
	}
	var pr predRanker
	if !pr.Less(base, behind, near) {
		t.Fatal("predRanker should prefer counter-clockwise proximity")
	}
	if !sr.Equal(near, peer{CID: 999, E: ppss.Entry{ID: 1}}) {
		t.Fatal("ranker equality must be by member ID")
	}
}

func TestMergeFingerLevels(t *testing.T) {
	n := &Node{cid: 0, fingers: map[int]peer{}}
	// A node at distance 2^10+1 belongs to level 10.
	p1 := peer{CID: ChordID(1<<10 + 1), E: ppss.Entry{ID: 1}}
	n.mergeFinger(p1)
	if _, ok := n.fingers[10]; !ok {
		t.Fatalf("fingers = %v, want level 10", n.fingers)
	}
	// A closer node at the same level replaces it.
	p2 := peer{CID: ChordID(1 << 10), E: ppss.Entry{ID: 2}}
	n.mergeFinger(p2)
	if n.fingers[10].E.ID != 2 {
		t.Fatal("closer finger did not replace")
	}
	// A farther node at the same level does not.
	n.mergeFinger(p1)
	if n.fingers[10].E.ID != 2 {
		t.Fatal("farther finger replaced a closer one")
	}
	// Distance zero (self) is ignored.
	n.mergeFinger(peer{CID: 0})
	if len(n.fingers) != 1 {
		t.Fatal("self entered the finger table")
	}
}

func TestClosestPrecedingPureMath(t *testing.T) {
	n := &Node{cid: 0, fingers: map[int]peer{}}
	n.succ = tman.New(peer{CID: 0}, 4, succRanker{})
	n.pred = tman.New(peer{CID: 0}, 4, predRanker{})
	for _, cid := range []ChordID{100, 1000, 60000} {
		n.merge0(peer{CID: cid, E: ppss.Entry{ID: identity.NodeID(cid)}})
	}
	// For key 1500 the best next hop is 1000 (closest preceding).
	next, ok := n.closestPreceding(1500)
	if !ok || next.CID != 1000 {
		t.Fatalf("closestPreceding(1500) = %v, %v", next.CID, ok)
	}
	// For key 50 nothing precedes it except... 60000? No: hops must lie
	// in (0, 50); none do, so the best successor is used.
	next, ok = n.closestPreceding(50)
	if !ok || next.CID != 100 {
		t.Fatalf("closestPreceding(50) fallback = %v, %v", next.CID, ok)
	}
}

// merge0 is a test-only merge that avoids the PPSS instance.
func (n *Node) merge0(p peer) {
	n.succ.Merge(p)
	n.pred.Merge(p)
	n.mergeFinger(p)
}
