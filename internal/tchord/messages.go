package tchord

import (
	"fmt"

	"whisper/internal/ppss"
	"whisper/internal/wire"
)

// T-Chord message tags (inside PPSS app payloads).
const (
	tagTManReq uint8 = 0x70 + iota
	tagTManResp
	tagLookupReq
	tagLookupResp
)

// Lookup operations.
const (
	opLookup uint8 = iota + 1
	opPut
	opGet
)

// lookupMsg is a greedy-routed query. It ships the origin's entry so
// the owner can answer with a single WCL path (§V-G).
type lookupMsg struct {
	QID    uint64
	Key    ChordID
	Op     uint8
	SKey   string
	Value  []byte
	Origin ppss.Entry
	Hops   int
}

func (m lookupMsg) encode(keyBlob int) []byte {
	w := wire.NewWriter(64 + len(m.Value) + keyBlob*4)
	w.U8(tagLookupReq)
	w.U64(m.QID)
	w.U64(uint64(m.Key))
	w.U8(m.Op)
	w.String(m.SKey)
	w.Bytes32(m.Value)
	w.U8(uint8(m.Hops))
	m.Origin.Encode(w, keyBlob)
	return w.Bytes()
}

func decodeLookup(r *wire.Reader, keyBlob int) (lookupMsg, error) {
	var m lookupMsg
	m.QID = r.U64()
	m.Key = ChordID(r.U64())
	m.Op = r.U8()
	m.SKey = r.String()
	m.Value = r.Bytes32()
	m.Hops = int(r.U8())
	m.Origin = ppss.DecodeEntry(r, keyBlob)
	if err := r.Err(); err != nil {
		return m, fmt.Errorf("tchord: decoding lookup: %w", err)
	}
	return m, nil
}

// lookupRespMsg answers a query directly to the origin.
type lookupRespMsg struct {
	QID   uint64
	Key   ChordID
	Owner ppss.Entry
	Hops  int
	Value []byte
	Found bool
}

func (m lookupRespMsg) encode(keyBlob int) []byte {
	w := wire.NewWriter(64 + len(m.Value) + keyBlob*4)
	w.U8(tagLookupResp)
	w.U64(m.QID)
	w.U64(uint64(m.Key))
	w.U8(uint8(m.Hops))
	w.Bytes32(m.Value)
	w.Bool(m.Found)
	m.Owner.Encode(w, keyBlob)
	return w.Bytes()
}

func decodeLookupResp(r *wire.Reader, keyBlob int) (lookupRespMsg, error) {
	var m lookupRespMsg
	m.QID = r.U64()
	m.Key = ChordID(r.U64())
	m.Hops = int(r.U8())
	m.Value = r.Bytes32()
	m.Found = r.Bool()
	m.Owner = ppss.DecodeEntry(r, keyBlob)
	if err := r.Err(); err != nil {
		return m, fmt.Errorf("tchord: decoding lookup response: %w", err)
	}
	return m, nil
}
