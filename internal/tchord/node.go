package tchord

import (
	"errors"
	"time"

	"whisper/internal/obs"
	"whisper/internal/ppss"
	"whisper/internal/tman"
	"whisper/internal/transport"
	"whisper/internal/wcl"
	"whisper/internal/wire"
)

// Config parameterizes a T-Chord node.
type Config struct {
	// Cycle is the T-Man exchange period (default 30 s — T-Chord
	// converges in a few cycles).
	Cycle time.Duration
	// Jitter desynchronizes cycles (default Cycle/2).
	Jitter time.Duration
	// Successors is the ring neighbour list size per direction.
	Successors int
	// Psi is T-Man's partner-selection parameter.
	Psi int
	// LookupTimeout bounds one end-to-end query.
	LookupTimeout time.Duration
	// MaxHops caps greedy routing (loop protection during convergence).
	MaxHops int
	// PinRing keeps ring neighbours in the PPSS persistent connection
	// pool, as §V-G describes (persistent WCL paths for Chord links).
	PinRing bool
	// Obs is the scope T-Chord instruments register under. Nil defaults
	// to the instance's group scope.
	Obs *obs.Scope
}

func (c Config) withDefaults() Config {
	if c.Cycle == 0 {
		c.Cycle = 30 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = c.Cycle / 2
	}
	if c.Successors == 0 {
		c.Successors = 4
	}
	if c.Psi == 0 {
		c.Psi = 3
	}
	if c.LookupTimeout == 0 {
		c.LookupTimeout = 30 * time.Second
	}
	if c.MaxHops == 0 {
		c.MaxHops = 32
	}
	return c
}

// Node is one T-Chord participant inside a private group.
type Node struct {
	inst *ppss.Instance
	rt   transport.Transport
	cfg  Config
	cid  ChordID

	succ    *tman.View[peer]
	pred    *tman.View[peer]
	fingers map[int]peer
	store   map[ChordID]storeEntry

	pending map[uint64]*pendingLookup
	qid     uint64
	ticker  transport.Ticker
	stopped bool

	met met
}

// met holds the node's metric instruments.
type met struct {
	exchangesSent     *obs.Counter
	exchangesReceived *obs.Counter
	lookupsStarted    *obs.Counter
	lookupsOwned      *obs.Counter
	lookupsForwarded  *obs.Counter
	lookupsAnswered   *obs.Counter
	lookupsCompleted  *obs.Counter
	lookupsFailed     *obs.Counter
	storesHeld        *obs.Gauge
	lookupMS          *obs.Histogram
}

func newMet(sc *obs.Scope) met {
	return met{
		exchangesSent:     sc.Counter("tchord_exchanges_sent_total"),
		exchangesReceived: sc.Counter("tchord_exchanges_received_total"),
		lookupsStarted:    sc.Counter("tchord_lookups_started_total"),
		lookupsOwned:      sc.Counter("tchord_lookups_owned_total"),
		lookupsForwarded:  sc.Counter("tchord_lookups_forwarded_total"),
		lookupsAnswered:   sc.Counter("tchord_lookups_answered_total"),
		lookupsCompleted:  sc.Counter("tchord_lookups_completed_total"),
		lookupsFailed:     sc.Counter("tchord_lookups_failed_total"),
		storesHeld:        sc.Gauge("tchord_stores_held"),
		lookupMS:          sc.Histogram("tchord_lookup_ms"),
	}
}

type storeEntry struct {
	key   string
	value []byte
}

type pendingLookup struct {
	key      ChordID
	qid      uint64
	start    time.Duration
	timer    transport.Timer
	done     func(LookupResult)
	attempts int
	op       uint8
	skey     string
	value    []byte
}

// New attaches a T-Chord node to a PPSS instance. It subscribes to its
// own message tags, so other gossip protocols (broadcast, aggregation)
// can share the same group.
func New(inst *ppss.Instance, cfg Config) *Node {
	cfg = cfg.withDefaults()
	self := peerOf(inst.SelfEntry())
	if cfg.Obs == nil {
		cfg.Obs = inst.Obs()
	}
	n := &Node{
		inst:    inst,
		rt:      instRuntime(inst),
		cfg:     cfg,
		met:     newMet(cfg.Obs),
		cid:     self.CID,
		succ:    tman.New(self, cfg.Successors, succRanker{}),
		pred:    tman.New(self, cfg.Successors, predRanker{}),
		fingers: make(map[int]peer),
		store:   make(map[ChordID]storeEntry),
		pending: make(map[uint64]*pendingLookup),
	}
	for _, tag := range []uint8{tagTManReq, tagTManResp, tagLookupReq, tagLookupResp} {
		inst.Subscribe(tag, n.handle)
	}
	return n
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	return Stats{
		ExchangesSent:     n.met.exchangesSent.Value(),
		ExchangesReceived: n.met.exchangesReceived.Value(),
		LookupsStarted:    n.met.lookupsStarted.Value(),
		LookupsOwned:      n.met.lookupsOwned.Value(),
		LookupsForwarded:  n.met.lookupsForwarded.Value(),
		LookupsAnswered:   n.met.lookupsAnswered.Value(),
		LookupsCompleted:  n.met.lookupsCompleted.Value(),
		LookupsFailed:     n.met.lookupsFailed.Value(),
		StoresHeld:        uint64(n.met.storesHeld.Value()),
	}
}

// instSim extracts the simulator driving the instance's node.
func instRuntime(inst *ppss.Instance) transport.Transport { return inst.Runtime() }

// ID returns the node's ring position.
func (n *Node) ID() ChordID { return n.cid }

// Instance returns the underlying PPSS instance.
func (n *Node) Instance() *ppss.Instance { return n.inst }

// Successor returns the current best successor.
func (n *Node) Successor() (ppss.Entry, bool) {
	p, ok := n.succ.Best()
	return p.E, ok
}

// Predecessor returns the current best predecessor.
func (n *Node) Predecessor() (ppss.Entry, bool) {
	p, ok := n.pred.Best()
	return p.E, ok
}

// Neighbors returns the successor list (best first).
func (n *Node) Neighbors() []ppss.Entry {
	var out []ppss.Entry
	for _, p := range n.succ.Entries() {
		out = append(out, p.E)
	}
	return out
}

// StoreSize returns the number of keys this node holds.
func (n *Node) StoreSize() int { return len(n.store) }

// Start begins periodic T-Man exchanges.
func (n *Node) Start() {
	if n.ticker != nil || n.stopped {
		return
	}
	n.ticker = n.rt.EveryJitter(n.cfg.Cycle, n.cfg.Jitter, n.cycle)
}

// Stop halts the node.
func (n *Node) Stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	if n.ticker != nil {
		n.ticker.Stop()
	}
	for _, p := range n.pending {
		p.timer.Cancel()
	}
}

// cycle runs one T-Man round: fold in a random PPSS peer (escape local
// optima), exchange buffers with a ring neighbour, refresh fingers and
// pins.
func (n *Node) cycle() {
	if n.stopped {
		return
	}
	n.succ.SetSelf(peerOf(n.inst.SelfEntry()))
	n.pred.SetSelf(n.succ.Self())
	if e, ok := n.inst.GetPeer(); ok {
		n.merge(peerOf(e))
	}
	partner, ok := n.succ.SelectPartner(n.rt.Rand(), n.cfg.Psi)
	if !ok {
		if partner, ok = n.pred.SelectPartner(n.rt.Rand(), n.cfg.Psi); !ok {
			return
		}
	}
	n.met.exchangesSent.Inc()
	n.inst.Send(partner.E, n.encodeExchange(tagTManReq), nil)
	if n.cfg.PinRing {
		n.pinNeighbors()
	}
}

// merge folds a candidate into both directional views and the fingers.
func (n *Node) merge(p peer) {
	if p.E.ID == n.inst.SelfEntry().ID {
		return
	}
	n.succ.Merge(p)
	n.pred.Merge(p)
	n.mergeFinger(p)
}

// mergeFinger updates the finger table: level i holds the best-known
// node at clockwise distance ≥ 2^i (closest to the ideal position).
func (n *Node) mergeFinger(p peer) {
	d := distCW(n.cid, p.CID)
	if d == 0 {
		return
	}
	level := 63
	for ; level >= 0; level-- {
		if d >= 1<<uint(level) {
			break
		}
	}
	cur, ok := n.fingers[level]
	if !ok || distCW(n.cid, p.CID) < distCW(n.cid, cur.CID) {
		n.fingers[level] = p
	}
}

// pinNeighbors keeps the ring links in the PPSS persistent pool.
func (n *Node) pinNeighbors() {
	for _, p := range n.succ.Entries() {
		n.inst.MakePersistent(p.E)
	}
	if p, ok := n.pred.Best(); ok {
		n.inst.MakePersistent(p.E)
	}
}

// owner reports whether this node owns key: key ∈ (predecessor, self].
func (n *Node) owner(key ChordID) bool {
	p, ok := n.pred.Best()
	if !ok {
		return true // alone on the ring
	}
	return between(key, p.CID, n.cid)
}

// closestPreceding picks the best next hop for key: the known node
// whose ID most closely precedes key (classic Chord greedy step),
// falling back to the best successor.
func (n *Node) closestPreceding(key ChordID) (peer, bool) {
	var best peer
	found := false
	consider := func(p peer) {
		if p.CID == n.cid {
			return
		}
		// p must lie strictly between us and the key.
		if !between(p.CID, n.cid, key) {
			return
		}
		if !found || distCW(p.CID, key) < distCW(best.CID, key) {
			best, found = p, true
		}
	}
	for _, p := range n.fingers {
		consider(p)
	}
	for _, p := range n.succ.Entries() {
		consider(p)
	}
	if found {
		return best, true
	}
	if p, ok := n.succ.Best(); ok {
		return p, true
	}
	return peer{}, false
}

// Lookup resolves the owner of key, reporting the result (owner entry
// and hop count) to done. The reply travels back to this node through a
// single WCL path using the coordinates shipped with the query.
func (n *Node) Lookup(key ChordID, done func(LookupResult)) {
	n.lookup(key, opLookup, "", nil, done)
}

// Put stores value under key on the ring node owning it.
func (n *Node) Put(key string, value []byte, done func(LookupResult)) {
	n.lookup(KeyID(key), opPut, key, value, done)
}

// Get fetches the value stored under key.
func (n *Node) Get(key string, done func(LookupResult)) {
	n.lookup(KeyID(key), opGet, key, nil, done)
}

func (n *Node) lookup(key ChordID, op uint8, skey string, value []byte, done func(LookupResult)) {
	n.met.lookupsStarted.Inc()
	n.startAttempt(&pendingLookup{key: key, start: n.rt.Now(), done: done,
		op: op, skey: skey, value: value})
}

// startAttempt launches (or re-launches after a timeout) one routed
// attempt of a lookup. Applications see a single result; internally a
// query is retried a couple of times because individual WCL paths or
// ring links can be stale.
func (n *Node) startAttempt(pl *pendingLookup) {
	if n.owner(pl.key) {
		n.met.lookupsOwned.Inc()
		res := n.applyLocal(pl.key, pl.op, pl.skey, pl.value)
		if pl.done != nil {
			pl.done(res)
		}
		return
	}
	pl.attempts++
	if pl.qid == 0 {
		n.qid++
		pl.qid = n.qid
	}
	qid := pl.qid
	pl.timer = n.rt.After(n.cfg.LookupTimeout, func() {
		if n.pending[qid] != pl {
			return
		}
		if pl.attempts < 3 {
			// Same query ID: a late answer to an earlier attempt still
			// completes the lookup.
			n.startAttempt(pl)
			return
		}
		delete(n.pending, qid)
		n.met.lookupsFailed.Inc()
		if pl.done != nil {
			pl.done(LookupResult{Key: pl.key, Err: errors.New("tchord: lookup timed out")})
		}
	})
	n.pending[qid] = pl
	n.forward(lookupMsg{QID: qid, Key: pl.key, Op: pl.op, SKey: pl.skey, Value: pl.value,
		Origin: n.inst.SelfEntry(), Hops: 0})
}

// applyLocal executes the operation on the local store.
func (n *Node) applyLocal(key ChordID, op uint8, skey string, value []byte) LookupResult {
	res := LookupResult{Key: key, Owner: n.inst.SelfEntry()}
	switch op {
	case opPut:
		n.store[key] = storeEntry{key: skey, value: value}
		n.met.storesHeld.Set(int64(len(n.store)))
	case opGet:
		if se, ok := n.store[key]; ok {
			res.Value = se.value
			res.Found = true
		}
	}
	return res
}

// forward sends the query to the next hop. An unreachable hop (the WCL
// exhausted its alternatives) is treated as failed: it is dropped from
// the ring views and the query is re-routed through the next best hop.
func (n *Node) forward(m lookupMsg) {
	next, ok := n.closestPreceding(m.Key)
	if !ok {
		return // isolated node; origin times out
	}
	m.Hops++
	if m.Hops > n.cfg.MaxHops {
		return
	}
	n.met.lookupsForwarded.Inc()
	n.inst.Send(next.E, m.encode(n.keyBlob()), func(res wcl.Result) {
		if res.Outcome == wcl.Failed {
			n.removePeer(next)
			n.forward(m)
		}
	})
}

// removePeer drops a failed member from all ring structures.
func (n *Node) removePeer(p peer) {
	n.succ.Remove(p)
	n.pred.Remove(p)
	for lvl, f := range n.fingers {
		if f.E.ID == p.E.ID {
			delete(n.fingers, lvl)
		}
	}
	n.inst.DropPersistent(p.E.ID)
}

func (n *Node) keyBlob() int { return n.inst.Config().KeyBlobSize }

// handle dispatches T-Chord messages arriving through the PPSS.
func (n *Node) handle(from ppss.Entry, payload []byte) {
	if n.stopped || len(payload) == 0 {
		return
	}
	n.merge(peerOf(from))
	r := wire.NewReader(payload)
	switch r.U8() {
	case tagTManReq:
		peers, err := decodeExchange(r, n.keyBlob())
		if err != nil {
			return
		}
		n.met.exchangesReceived.Inc()
		n.inst.Send(from, n.encodeExchange(tagTManResp), nil)
		for _, p := range peers {
			n.merge(p)
		}
	case tagTManResp:
		peers, err := decodeExchange(r, n.keyBlob())
		if err != nil {
			return
		}
		for _, p := range peers {
			n.merge(p)
		}
	case tagLookupReq:
		m, err := decodeLookup(r, n.keyBlob())
		if err != nil {
			return
		}
		n.handleLookup(m)
	case tagLookupResp:
		m, err := decodeLookupResp(r, n.keyBlob())
		if err != nil {
			return
		}
		n.handleLookupResp(m)
	}
}

func (n *Node) handleLookup(m lookupMsg) {
	if !n.owner(m.Key) {
		n.forward(m)
		return
	}
	n.met.lookupsAnswered.Inc()
	res := n.applyLocal(m.Key, m.Op, m.SKey, m.Value)
	resp := lookupRespMsg{QID: m.QID, Key: m.Key, Owner: n.inst.SelfEntry(),
		Hops: m.Hops, Value: res.Value, Found: res.Found}
	// Reply with a single WCL path straight to the origin (§V-G).
	n.inst.Send(m.Origin, resp.encode(n.keyBlob()), nil)
}

func (n *Node) handleLookupResp(m lookupRespMsg) {
	pl, ok := n.pending[m.QID]
	if !ok {
		return
	}
	delete(n.pending, m.QID)
	pl.timer.Cancel()
	n.met.lookupsCompleted.Inc()
	n.met.lookupMS.ObserveDuration(n.rt.Now() - pl.start)
	if pl.done != nil {
		pl.done(LookupResult{Key: m.Key, Owner: m.Owner, Hops: m.Hops,
			Value: m.Value, Found: m.Found})
	}
}

// encodeExchange ships the node's current ring knowledge: self,
// successors, predecessors and fingers.
func (n *Node) encodeExchange(tag uint8) []byte {
	seen := map[ChordID]bool{}
	var peers []peer
	add := func(p peer) {
		if !seen[p.CID] {
			seen[p.CID] = true
			peers = append(peers, p)
		}
	}
	add(n.succ.Self())
	for _, p := range n.succ.Entries() {
		add(p)
	}
	for _, p := range n.pred.Entries() {
		add(p)
	}
	for _, p := range n.fingers {
		add(p)
	}
	if len(peers) > 32 {
		peers = peers[:32]
	}
	w := wire.NewWriter(64 + len(peers)*256)
	w.U8(tag)
	w.U8(uint8(len(peers)))
	for _, p := range peers {
		p.E.Encode(w, n.keyBlob())
	}
	return w.Bytes()
}

func decodeExchange(r *wire.Reader, keyBlob int) ([]peer, error) {
	cnt := int(r.U8())
	if cnt > 64 {
		cnt = 64
	}
	out := make([]peer, 0, cnt)
	for i := 0; i < cnt; i++ {
		e := ppss.DecodeEntry(r, keyBlob)
		if r.Err() != nil {
			return nil, r.Err()
		}
		out = append(out, peerOf(e))
	}
	return out, nil
}
