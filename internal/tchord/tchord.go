// Package tchord implements T-Chord (Montresor, Jelasity and Babaoglu,
// the paper's [15]): a Chord DHT ring constructed in a self-organizing
// way with the T-Man framework, using view exchanges with peers from a
// peer sampling service and with current ring neighbours. In WHISPER it
// runs inside a private group on top of the PPSS (§V-G): every exchange
// and every query travels over a confidential WCL route, and query
// replies come back through a single WCL path using the origin's
// coordinates shipped with the query.
//
// Besides ring construction and greedy lookup routing, the package
// offers the "private index" the paper motivates: a Put/Get key-value
// store whose keys are owned by ring position.
package tchord

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"whisper/internal/identity"
	"whisper/internal/ppss"
)

// ChordID is a position on the 2^64 identifier ring.
type ChordID uint64

// IDOf maps a node identity to its ring position.
func IDOf(n identity.NodeID) ChordID {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(n))
	h := sha256.Sum256(append([]byte("whisper-chord-node:"), b[:]...))
	return ChordID(binary.BigEndian.Uint64(h[:8]))
}

// KeyID maps an application key to its ring position.
func KeyID(key string) ChordID {
	h := sha256.Sum256([]byte("whisper-chord-key:" + key))
	return ChordID(binary.BigEndian.Uint64(h[:8]))
}

// distCW is the clockwise distance from a to b on the ring.
func distCW(a, b ChordID) uint64 { return uint64(b - a) }

// between reports whether x ∈ (a, b] clockwise.
func between(x, a, b ChordID) bool {
	if a == b {
		return true // full circle: a single node owns everything
	}
	return distCW(a, x) <= distCW(a, b) && x != a
}

// peer couples a PPSS entry with its ring position.
type peer struct {
	E   ppss.Entry
	CID ChordID
}

func peerOf(e ppss.Entry) peer { return peer{E: e, CID: IDOf(e.ID)} }

// succRanker ranks by clockwise distance from the base (successor
// candidates); predRanker by counter-clockwise distance.
type succRanker struct{}

func (succRanker) Less(base, x, y peer) bool {
	return distCW(base.CID, x.CID) < distCW(base.CID, y.CID)
}
func (succRanker) Equal(x, y peer) bool { return x.E.ID == y.E.ID }

type predRanker struct{}

func (predRanker) Less(base, x, y peer) bool {
	return distCW(x.CID, base.CID) < distCW(y.CID, base.CID)
}
func (predRanker) Equal(x, y peer) bool { return x.E.ID == y.E.ID }

// fingerLevels is the number of finger-table levels maintained.
const fingerLevels = 64

// Stats counts protocol events.
type Stats struct {
	ExchangesSent     uint64
	ExchangesReceived uint64
	LookupsStarted    uint64
	LookupsOwned      uint64 // answered locally
	LookupsForwarded  uint64
	LookupsAnswered   uint64 // answered as owner for a remote origin
	LookupsCompleted  uint64
	LookupsFailed     uint64
	StoresHeld        uint64
}

// LookupResult reports a completed lookup.
type LookupResult struct {
	Key   ChordID
	Owner ppss.Entry
	Hops  int
	Value []byte // set for Get lookups when the owner held the key
	Found bool   // for Get: whether the key existed
	Err   error
}

func (r LookupResult) String() string {
	if r.Err != nil {
		return fmt.Sprintf("lookup %x failed: %v", uint64(r.Key), r.Err)
	}
	return fmt.Sprintf("lookup %x → %v in %d hops", uint64(r.Key), r.Owner.ID, r.Hops)
}
