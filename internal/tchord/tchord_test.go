package tchord_test

import (
	"sort"
	"testing"
	"time"

	"whisper/internal/identity"
	"whisper/internal/ppss"
	"whisper/internal/sim"
	"whisper/internal/tchord"
)

func TestIDsDeterministicAndSpread(t *testing.T) {
	seen := map[tchord.ChordID]bool{}
	for i := identity.NodeID(1); i <= 200; i++ {
		id := tchord.IDOf(i)
		if id != tchord.IDOf(i) {
			t.Fatal("IDOf not deterministic")
		}
		seen[id] = true
	}
	if len(seen) != 200 {
		t.Fatalf("chord ID collisions: %d unique", len(seen))
	}
	if tchord.KeyID("a") == tchord.KeyID("b") {
		t.Fatal("key hash collision")
	}
}

// buildRing creates a converged private group running T-Chord.
func buildRing(t testing.TB, seed int64, worldN, groupN int) (*sim.World, []*tchord.Node) {
	t.Helper()
	w, err := sim.NewWorld(sim.Options{
		Seed:     seed,
		N:        worldN,
		NATRatio: 0.7,
		KeyPool:  identity.TestPool(64),
		PPSS: &ppss.Config{
			Cycle:       30 * time.Second,
			RespTimeout: 15 * time.Second,
			JoinTimeout: 20 * time.Second,
			KeyBlobSize: 256,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sim.RunUntil(4 * time.Minute)

	members := w.Live()[:groupN]
	leaderInst, err := members[0].PPSS.CreateGroup("index")
	if err != nil {
		t.Fatal(err)
	}
	g := ppss.GroupIDFromName("index")
	joined := 1
	for _, m := range members[1:] {
		var tryJoin func(attempt int)
		m := m
		tryJoin = func(attempt int) {
			accr, entry, err := leaderInst.Invite(m.ID())
			if err != nil {
				t.Fatal(err)
			}
			m.PPSS.Join("index", accr, entry, func(_ *ppss.Instance, err error) {
				if err != nil {
					if attempt < 3 {
						tryJoin(attempt + 1)
						return
					}
					t.Errorf("join failed: %v", err)
					return
				}
				joined++
			})
		}
		tryJoin(1)
		w.Sim.RunFor(5 * time.Second)
	}
	w.Sim.RunFor(2 * time.Minute)
	if joined != groupN {
		t.Fatalf("only %d/%d joined", joined, groupN)
	}
	// Let private views populate before bootstrapping the ring.
	w.Sim.RunFor(5 * time.Minute)

	var ring []*tchord.Node
	for _, m := range members {
		inst := m.PPSS.Instance(g)
		node := tchord.New(inst, tchord.Config{Cycle: 30 * time.Second, PinRing: true})
		node.Start()
		ring = append(ring, node)
	}
	// T-Chord converges in a few cycles (§V-G).
	w.Sim.RunFor(12 * time.Minute)
	return w, ring
}

func TestRingConverges(t *testing.T) {
	_, ring := buildRing(t, 41, 80, 20)

	// Expected ring: members sorted by ChordID.
	sorted := append([]*tchord.Node(nil), ring...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	next := map[tchord.ChordID]tchord.ChordID{}
	for i, n := range sorted {
		next[n.ID()] = sorted[(i+1)%len(sorted)].ID()
	}
	correct := 0
	for _, n := range ring {
		succ, ok := n.Successor()
		if !ok {
			continue
		}
		if tchord.IDOf(succ.ID) == next[n.ID()] {
			correct++
		}
	}
	if correct < len(ring)*9/10 {
		t.Fatalf("only %d/%d nodes have the correct successor", correct, len(ring))
	}
}

func TestLookupsResolveToOwners(t *testing.T) {
	w, ring := buildRing(t, 42, 80, 20)

	sorted := append([]*tchord.Node(nil), ring...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	ownerOf := func(key tchord.ChordID) tchord.ChordID {
		// The owner is the first node clockwise from the key.
		for _, n := range sorted {
			if n.ID() >= key {
				return n.ID()
			}
		}
		return sorted[0].ID() // wrap around
	}

	const queries = 40
	completed, correct := 0, 0
	maxHops := 0
	for i := 0; i < queries; i++ {
		src := ring[i%len(ring)]
		key := tchord.KeyID(string(rune('a'+i)) + "-key")
		want := ownerOf(key)
		src.Lookup(key, func(res tchord.LookupResult) {
			if res.Err != nil {
				return
			}
			completed++
			if tchord.IDOf(res.Owner.ID) == want {
				correct++
			}
			if res.Hops > maxHops {
				maxHops = res.Hops
			}
		})
		w.Sim.RunFor(5 * time.Second)
	}
	w.Sim.RunFor(2 * time.Minute)

	if completed < queries*85/100 {
		t.Fatalf("only %d/%d lookups completed", completed, queries)
	}
	if correct < completed*9/10 {
		t.Fatalf("only %d/%d completed lookups found the true owner", correct, completed)
	}
	if maxHops > 10 {
		t.Fatalf("max hops %d for a 20-node ring (greedy routing broken?)", maxHops)
	}
}

func TestPrivateIndexPutGet(t *testing.T) {
	w, ring := buildRing(t, 43, 80, 16)

	putDone := false
	ring[0].Put("sensitive-location", []byte("shelf 42, row 7"), func(res tchord.LookupResult) {
		putDone = res.Err == nil
	})
	w.Sim.RunFor(3 * time.Minute)
	if !putDone {
		t.Fatal("Put did not complete")
	}
	// Any other member can retrieve it.
	var got []byte
	found := false
	ring[7].Get("sensitive-location", func(res tchord.LookupResult) {
		got, found = res.Value, res.Found
	})
	w.Sim.RunFor(3 * time.Minute)
	if !found || string(got) != "shelf 42, row 7" {
		t.Fatalf("Get = %q found=%v", got, found)
	}
	// Missing keys report not-found.
	missOK := false
	ring[3].Get("never-stored", func(res tchord.LookupResult) {
		missOK = res.Err == nil && !res.Found
	})
	w.Sim.RunFor(3 * time.Minute)
	if !missOK {
		t.Fatal("missing key did not report clean not-found")
	}
}

func TestRingPinsPersistentPaths(t *testing.T) {
	_, ring := buildRing(t, 44, 80, 16)
	pinned := 0
	for _, n := range ring {
		if len(n.Instance().PersistentIDs()) > 0 {
			pinned++
		}
	}
	if pinned < len(ring)*8/10 {
		t.Fatalf("only %d/%d nodes pinned ring links in the PCP", pinned, len(ring))
	}
}
