// Package tman implements the T-Man gossip-based overlay construction
// framework (Jelasity, Montresor and Babaoglu, the paper's [12]): nodes
// converge to a target topology defined purely by a ranking function,
// by repeatedly exchanging views with neighbours and keeping the
// best-ranked descriptors. T-Chord (package tchord) instantiates it
// with ring-distance ranking to build a Chord overlay inside a private
// group, the application of §V-G.
//
// The package is transport-agnostic: the embedding protocol moves the
// buffers (over the PPSS in WHISPER), tman only maintains the ranked
// view. All operations are deterministic given the inputs, which makes
// the convergence properties directly testable.
package tman

import (
	"math/rand"
	"sort"
)

// Ranker orders candidate descriptors by desirability relative to a
// base node: Less(base, x, y) reports whether x is a strictly better
// neighbour of base than y.
type Ranker[D any] interface {
	Less(base, x, y D) bool
	// Equal identifies descriptors for deduplication.
	Equal(x, y D) bool
}

// View is the ranked neighbour set of one node. Neighbours live in a
// dense array allocated once at the view bound — T-Man views exist for
// every private-group member of a world, so per-view append growth
// multiplies across the population. Merge's transient overflow (the
// candidates above the bound that ranking discards) goes through a
// reusable scratch buffer instead of growing the neighbour array.
type View[D any] struct {
	self    D
	ranker  Ranker[D]
	size    int
	n       int
	entries []D // len size, first n live, best first
	scratch []D // merge workspace, reused across exchanges
}

// New creates a T-Man view for self, bounded to size entries, ranked by
// ranker.
func New[D any](self D, size int, ranker Ranker[D]) *View[D] {
	if size <= 0 {
		panic("tman: view size must be positive")
	}
	return &View[D]{self: self, ranker: ranker, size: size, entries: make([]D, size)}
}

// Self returns the view's own descriptor.
func (v *View[D]) Self() D { return v.self }

// SetSelf updates the own descriptor (e.g. refreshed helper sets).
func (v *View[D]) SetSelf(self D) { v.self = self }

// Entries returns the current neighbours, best first.
func (v *View[D]) Entries() []D { return append([]D(nil), v.entries[:v.n]...) }

// Len returns the number of neighbours.
func (v *View[D]) Len() int { return v.n }

// Merge folds candidate descriptors into the view, keeping the
// best-ranked size entries. Self and duplicates are dropped (duplicates
// keep the most recently merged copy, so refreshed coordinates win).
// It reports whether the view changed.
func (v *View[D]) Merge(candidates ...D) bool {
	merged := append(v.scratch[:0], v.entries[:v.n]...)
	changed := false
	for _, c := range candidates {
		if v.ranker.Equal(c, v.self) {
			continue
		}
		dup := false
		for i := range merged {
			if v.ranker.Equal(merged[i], c) {
				merged[i] = c // refresh coordinates
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		merged = append(merged, c)
		changed = true
	}
	sort.SliceStable(merged, func(i, j int) bool {
		return v.ranker.Less(v.self, merged[i], merged[j])
	})
	v.n = copy(v.entries, merged)
	// Retain the workspace but not the descriptors it references.
	var zero D
	for i := range merged {
		merged[i] = zero
	}
	v.scratch = merged[:0]
	return changed
}

// Remove drops a descriptor (failed neighbour), reporting presence.
func (v *View[D]) Remove(d D) bool {
	if i := v.index(d); i >= 0 {
		copy(v.entries[i:v.n-1], v.entries[i+1:v.n])
		v.n--
		var zero D
		v.entries[v.n] = zero
		return true
	}
	return false
}

func (v *View[D]) index(d D) int {
	for i := 0; i < v.n; i++ {
		if v.ranker.Equal(v.entries[i], d) {
			return i
		}
	}
	return -1
}

// Buffer returns the gossip buffer for an exchange: self plus the
// current neighbours (T-Man ships its whole small view).
func (v *View[D]) Buffer() []D {
	out := make([]D, 0, v.n+1)
	out = append(out, v.self)
	out = append(out, v.entries[:v.n]...)
	return out
}

// SelectPartner picks the exchange partner: a random entry among the
// psi best-ranked neighbours (T-Man's parameter ψ balances convergence
// speed against load). ok is false for an empty view.
func (v *View[D]) SelectPartner(rng *rand.Rand, psi int) (D, bool) {
	var zero D
	if v.n == 0 {
		return zero, false
	}
	if psi <= 0 || psi > v.n {
		psi = v.n
	}
	return v.entries[rng.Intn(psi)], true
}

// Best returns the top-ranked neighbour.
func (v *View[D]) Best() (D, bool) {
	var zero D
	if v.n == 0 {
		return zero, false
	}
	return v.entries[0], true
}
