package tman

import (
	"math/rand"
	"sort"
	"testing"
)

// lineRanker builds a "sorted line" topology: prefer numerically closer
// values — the classic T-Man example.
type lineRanker struct{}

func (lineRanker) Less(base, x, y int) bool {
	dx, dy := abs(x-base), abs(y-base)
	return dx < dy
}
func (lineRanker) Equal(x, y int) bool { return x == y }

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func TestMergeKeepsBestRanked(t *testing.T) {
	v := New(50, 3, lineRanker{})
	v.Merge(10, 49, 90, 52, 51)
	got := v.Entries()
	want := []int{49, 51, 52} // distances 1,1,2 — order among ties stable
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	sort.Ints(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entries = %v, want %v", got, want)
		}
	}
}

func TestMergeDropsSelfAndDuplicates(t *testing.T) {
	v := New(5, 4, lineRanker{})
	v.Merge(5, 6, 6, 7)
	if v.Len() != 2 {
		t.Fatalf("len = %d, want 2 (self and dup dropped)", v.Len())
	}
}

func TestRemove(t *testing.T) {
	v := New(0, 4, lineRanker{})
	v.Merge(1, 2)
	if !v.Remove(1) || v.Remove(1) {
		t.Fatal("Remove semantics")
	}
	if v.Len() != 1 {
		t.Fatal("entry not removed")
	}
}

func TestBufferIncludesSelf(t *testing.T) {
	v := New(9, 4, lineRanker{})
	v.Merge(1, 2)
	buf := v.Buffer()
	if len(buf) != 3 || buf[0] != 9 {
		t.Fatalf("buffer = %v", buf)
	}
}

func TestSelectPartnerPsi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := New(0, 10, lineRanker{})
	v.Merge(1, 2, 3, 4, 5, 6, 7, 8)
	for i := 0; i < 50; i++ {
		p, ok := v.SelectPartner(rng, 2)
		if !ok || p > 2 {
			t.Fatalf("partner %d outside ψ=2 best", p)
		}
	}
	if _, ok := New(0, 3, lineRanker{}).SelectPartner(rng, 1); ok {
		t.Fatal("empty view yielded a partner")
	}
}

// Convergence test: n nodes on a ring of integers converge to knowing
// their true nearest neighbours after O(log n) exchange rounds — the
// core T-Man claim.
func TestLineTopologyConverges(t *testing.T) {
	const n, k = 128, 4
	rng := rand.New(rand.NewSource(2))
	views := make([]*View[int], n)
	for i := range views {
		views[i] = New(i, k, lineRanker{})
	}
	// Random initial graph.
	for i := range views {
		for j := 0; j < k; j++ {
			views[i].Merge(rng.Intn(n))
		}
	}
	for round := 0; round < 20; round++ {
		for i := range views {
			// T-Man also folds in a random peer from the PSS each cycle,
			// which is what prevents the ranking from getting stuck in a
			// local optimum (the PPSS plays this role in WHISPER).
			views[i].Merge(rng.Intn(n))
			p, ok := views[i].SelectPartner(rng, 3)
			if !ok {
				continue
			}
			// Push-pull buffer exchange.
			bi, bp := views[i].Buffer(), views[p].Buffer()
			views[i].Merge(bp...)
			views[p].Merge(bi...)
		}
	}
	// Every node must know its immediate neighbours.
	bad := 0
	for i, v := range views {
		has := map[int]bool{}
		for _, e := range v.Entries() {
			has[e] = true
		}
		for _, want := range []int{i - 1, i + 1} {
			if want < 0 || want >= n {
				continue
			}
			if !has[want] {
				bad++
			}
		}
	}
	if bad > n/20 {
		t.Fatalf("%d missing immediate-neighbour links after 20 rounds", bad)
	}
}

func TestBest(t *testing.T) {
	v := New(10, 3, lineRanker{})
	if _, ok := v.Best(); ok {
		t.Fatal("empty Best")
	}
	v.Merge(15, 11, 20)
	best, ok := v.Best()
	if !ok || best != 11 {
		t.Fatalf("Best = %d", best)
	}
}
