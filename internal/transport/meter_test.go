package transport

import (
	"sync"
	"testing"
)

// TestMeterConcurrentSnapshot reproduces the original data race: under
// the UDP transport the dispatch goroutine meters traffic while a stats
// reporter snapshots from outside. Run under -race in CI.
func TestMeterConcurrentSnapshot(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	const writers, perWriter = 4, 10000
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				m.AddUp(10)
				m.AddDown(20)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			// Fields may tear relative to each other (documented), but
			// each read must be atomic and race-free.
			s := m.Snapshot()
			if s.UpBytes%10 != 0 || s.DownBytes%20 != 0 {
				t.Errorf("torn counter read: %+v", s)
				return
			}
			_ = m.UpKB()
			_ = m.DownKB()
		}
	}()
	wg.Wait()
	s := m.Snapshot()
	if s.UpBytes != writers*perWriter*10 || s.UpMsgs != writers*perWriter {
		t.Fatalf("lost updates: %+v", s)
	}
	if s.DownBytes != writers*perWriter*20 || s.DownMsgs != writers*perWriter {
		t.Fatalf("lost updates: %+v", s)
	}
	if s.UpKB() != float64(s.UpBytes)/1024 {
		t.Fatalf("snapshot UpKB = %v", s.UpKB())
	}
	m.Reset()
	if s := m.Snapshot(); s != (MeterSnapshot{}) {
		t.Fatalf("Reset incomplete: %+v", s)
	}

	var nilMeter *Meter
	nilMeter.AddUp(1)
	nilMeter.AddDown(1)
	nilMeter.Reset()
	if nilMeter.Snapshot() != (MeterSnapshot{}) {
		t.Fatal("nil meter must snapshot to zero")
	}
}
