package transport

import (
	"sync/atomic"
	"time"
)

// Meter accumulates bandwidth usage at a node's network boundary.
// Experiments snapshot and reset meters once per protocol cycle to
// obtain per-cycle figures (the unit used throughout the paper's
// evaluation).
//
// The counters are atomic: under the UDP transport the dispatch
// goroutine updates them while stats reporters and metrics scrapes read
// concurrently, so Snapshot must be safe without routing through the
// transport's Do(). The zero value is ready to use.
type Meter struct {
	upBytes   atomic.Uint64
	downBytes atomic.Uint64
	upMsgs    atomic.Uint64
	downMsgs  atomic.Uint64
}

// AddUp records an outbound datagram of the given wire size.
func (m *Meter) AddUp(size int) {
	if m == nil {
		return
	}
	m.upBytes.Add(uint64(size))
	m.upMsgs.Add(1)
}

// AddDown records an inbound datagram of the given wire size.
func (m *Meter) AddDown(size int) {
	if m == nil {
		return
	}
	m.downBytes.Add(uint64(size))
	m.downMsgs.Add(1)
}

// Snapshot returns the current counters as a plain value. Each field is
// read atomically; a concurrent AddUp may land between field reads,
// which is harmless for bandwidth accounting.
func (m *Meter) Snapshot() MeterSnapshot {
	if m == nil {
		return MeterSnapshot{}
	}
	return MeterSnapshot{
		UpBytes:   m.upBytes.Load(),
		DownBytes: m.downBytes.Load(),
		UpMsgs:    m.upMsgs.Load(),
		DownMsgs:  m.downMsgs.Load(),
	}
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.upBytes.Store(0)
	m.downBytes.Store(0)
	m.upMsgs.Store(0)
	m.downMsgs.Store(0)
}

// UpBytes returns the upload volume in bytes.
func (m *Meter) UpBytes() uint64 { return m.upBytes.Load() }

// DownBytes returns the download volume in bytes.
func (m *Meter) DownBytes() uint64 { return m.downBytes.Load() }

// UpKB returns the upload volume in kilobytes (1 KB = 1024 B).
func (m *Meter) UpKB() float64 { return float64(m.upBytes.Load()) / 1024 }

// DownKB returns the download volume in kilobytes.
func (m *Meter) DownKB() float64 { return float64(m.downBytes.Load()) / 1024 }

// MeterSnapshot is a point-in-time copy of a Meter.
type MeterSnapshot struct {
	UpBytes   uint64
	DownBytes uint64
	UpMsgs    uint64
	DownMsgs  uint64
}

// UpKB returns the snapshot's upload volume in kilobytes.
func (s MeterSnapshot) UpKB() float64 { return float64(s.UpBytes) / 1024 }

// DownKB returns the snapshot's download volume in kilobytes.
func (s MeterSnapshot) DownKB() float64 { return float64(s.DownBytes) / 1024 }

// Uplink is the sending side of a node's attachment to the network:
// either the transport itself (public interface) or an intermediary
// such as an emulated NAT device's inside interface.
type Uplink interface {
	// Send transmits a datagram whose Src must be the node's own
	// endpoint.
	Send(dg Datagram)
}

// Port is the datagram socket a protocol stack uses. It wires together
// the node's local endpoint, its uplink, inbound dispatch, and the
// bandwidth meter. It implements Handler for the inbound direction.
type Port struct {
	local   Endpoint
	uplink  Uplink
	meter   *Meter
	handler func(Datagram)
	closed  bool

	// CPU accumulates virtual processing cost if the experiment charges
	// explicit per-message CPU time; unused by default.
	CPU time.Duration
}

// NewPort creates a port bound to local, sending through uplink. The
// meter may be nil to disable accounting.
func NewPort(local Endpoint, uplink Uplink, meter *Meter) *Port {
	if uplink == nil {
		panic("transport: NewPort with nil uplink")
	}
	return &Port{local: local, uplink: uplink, meter: meter}
}

// Local returns the port's bound endpoint (private for N-nodes).
func (p *Port) Local() Endpoint { return p.local }

// Meter returns the port's bandwidth meter (may be nil).
func (p *Port) Meter() *Meter { return p.meter }

// SetHandler installs the inbound datagram callback.
func (p *Port) SetHandler(fn func(Datagram)) { p.handler = fn }

// Close makes the port drop all further traffic in both directions,
// emulating a crashed or departed node.
func (p *Port) Close() { p.closed = true }

// Closed reports whether the port was closed.
func (p *Port) Closed() bool { return p.closed }

// Send transmits payload to dst and meters the upload.
func (p *Port) Send(dst Endpoint, payload []byte) {
	if p.closed {
		return
	}
	if dst.IsZero() {
		// A zero destination indicates a stale or malformed address
		// (possibly from hostile input); drop rather than panic.
		return
	}
	dg := Datagram{Src: p.local, Dst: dst, Payload: payload}
	p.meter.AddUp(dg.WireSize())
	p.uplink.Send(dg)
}

// HandleDatagram implements Handler: meters the download and dispatches
// to the installed handler.
func (p *Port) HandleDatagram(dg Datagram) {
	if p.closed {
		return
	}
	p.meter.AddDown(dg.WireSize())
	if p.handler != nil {
		p.handler(dg)
	}
}
