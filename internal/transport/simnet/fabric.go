package simnet

import (
	"fmt"
	"time"

	"whisper/internal/netem"
	"whisper/internal/simnet"
	"whisper/internal/transport"
)

// Fabric is the sharded substrate: one emulated Network and Transport
// per shard of a simnet.Sharded engine, stitched together by an
// IP→shard routing table. A datagram whose destination lives on the
// sending shard follows the ordinary local path; one bound for another
// shard is buffered by the coordinator and injected into the target
// network at the next window barrier, its latency already applied on
// the sending side. The engine's lookahead must come from the latency
// model's MinDelay bound (NewFabric enforces this) so every such
// datagram lands in a strictly later window.
type Fabric struct {
	eng  *simnet.Sharded
	nets []*netem.Network
	trs  []*Transport

	// shardOf routes public IPs (node public addresses and NAT external
	// addresses). Private IPs never appear: they exist only behind a NAT
	// device, which is co-located on its node's shard.
	shardOf map[transport.IP]int
}

// NewFabric builds per-shard networks over eng, all using the same
// latency model. The model must state a positive MinDelay no smaller
// than the engine's lookahead, otherwise the conservative window
// synchronizer would not be sound.
func NewFabric(eng *simnet.Sharded, model netem.LatencyModel) *Fabric {
	lb := netem.MinDelay(model)
	if lb <= 0 {
		panic("transport/simnet: latency model has no positive MinDelay bound; sharded execution unsafe")
	}
	if lb < eng.Lookahead() {
		panic(fmt.Sprintf("transport/simnet: model MinDelay %v below engine lookahead %v", lb, eng.Lookahead()))
	}
	f := &Fabric{
		eng:     eng,
		nets:    make([]*netem.Network, eng.Shards()),
		trs:     make([]*Transport, eng.Shards()),
		shardOf: make(map[transport.IP]int),
	}
	for i := range f.nets {
		i := i
		n := netem.New(eng.Shard(i), model)
		n.SetShardPlane(i, f.routeIP, func(dst int, at time.Duration, dg netem.Datagram) {
			// Runs on shard i's goroutine during a window; Inject buffers
			// into shard i's private slot, so no lock is needed. At the
			// barrier the coordinator replays these in deterministic order.
			eng.Inject(i, dst, at, func() { f.nets[dst].Inject(dg) })
		})
		f.nets[i] = n
		f.trs[i] = New(eng.Shard(i), n)
	}
	return f
}

func (f *Fabric) routeIP(ip transport.IP) (int, bool) {
	s, ok := f.shardOf[ip]
	return s, ok
}

// Engine returns the sharded engine underneath.
func (f *Fabric) Engine() *simnet.Sharded { return f.eng }

// Net returns shard i's emulated network.
func (f *Fabric) Net(i int) *netem.Network { return f.nets[i] }

// Transport returns shard i's transport.
func (f *Fabric) Transport(i int) *Transport { return f.trs[i] }

// Assign records that public IP ip lives on shard s. Must be called
// before traffic addressed to ip flows (world assembly does this at
// create time) and only between windows — the routing map is read
// concurrently during windows.
func (f *Fabric) Assign(ip transport.IP, s int) {
	if s < 0 || s >= len(f.nets) {
		panic(fmt.Sprintf("transport/simnet: assign %v to shard %d of %d", ip, s, len(f.nets)))
	}
	f.shardOf[ip] = s
}

// Unassign removes ip from the routing table (node death). Only between
// windows, like Assign.
func (f *Fabric) Unassign(ip transport.IP) { delete(f.shardOf, ip) }

// Stats sums sent/dropped datagram totals across all shard networks.
func (f *Fabric) Stats() (sent, dropped uint64) {
	for _, n := range f.nets {
		s, d := n.Stats()
		sent += s
		dropped += d
	}
	return
}

// FaultStats sums fault-injection totals across all shard networks.
func (f *Fabric) FaultStats() netem.FaultStats {
	var total netem.FaultStats
	for _, n := range f.nets {
		fs := n.FaultStats()
		total.Duplicated += fs.Duplicated
		total.Reordered += fs.Reordered
		total.BurstDropped += fs.BurstDropped
		total.Partitioned += fs.Partitioned
	}
	return total
}
