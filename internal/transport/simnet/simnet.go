// Package simnet adapts the deterministic discrete-event substrate —
// the virtual clock and scheduler of internal/simnet plus the emulated
// network of internal/netem — to the transport.Transport interface.
//
// The adapter is a zero-behavior shim: every method forwards directly
// to the underlying engine, so a protocol stack assembled over it is
// event-for-event (and therefore byte-for-byte, at a fixed seed)
// identical to one wired to the engine types directly. The golden-file
// regression test in internal/exp holds this property in place.
package simnet

import (
	"math/rand"
	"time"

	"whisper/internal/netem"
	"whisper/internal/simnet"
	"whisper/internal/transport"
)

// Transport drives protocol stacks on the emulated substrate.
type Transport struct {
	sim *simnet.Sim
	net *netem.Network
}

// New wraps an existing simulator and emulated network. Both must share
// the same virtual clock (netem.New enforces this by construction).
func New(sim *simnet.Sim, net *netem.Network) *Transport {
	if sim == nil || net == nil {
		panic("transport/simnet: nil engine")
	}
	if net.Sim() != sim {
		panic("transport/simnet: network driven by a different simulator")
	}
	return &Transport{sim: sim, net: net}
}

// Sim exposes the underlying simulator (experiment harness use: Run,
// RunUntil, churn scripting).
func (t *Transport) Sim() *simnet.Sim { return t.sim }

// Net exposes the underlying emulated network (NAT devices, taps).
func (t *Transport) Net() *netem.Network { return t.net }

// SetFaults installs (or removes, with nil) a fault-injection model on
// the underlying network. A nil model keeps the adapter zero-behavior.
func (t *Transport) SetFaults(fm *netem.FaultModel) { t.net.SetFaults(fm) }

// FaultStats reports the underlying network's fault-injection totals.
func (t *Transport) FaultStats() netem.FaultStats { return t.net.FaultStats() }

// Now implements transport.Transport.
func (t *Transport) Now() time.Duration { return t.sim.Now() }

// After implements transport.Transport.
func (t *Transport) After(d time.Duration, fn func()) transport.Timer {
	return t.sim.After(d, fn)
}

// EveryJitter implements transport.Transport.
func (t *Transport) EveryJitter(period, jitter time.Duration, fn func()) transport.Ticker {
	return t.sim.EveryJitter(period, jitter, fn)
}

// Rand implements transport.Transport.
func (t *Transport) Rand() *rand.Rand { return t.sim.Rand() }

// Send implements transport.Transport.
func (t *Transport) Send(dg transport.Datagram) { t.net.Send(dg) }

// Attach implements transport.Transport.
func (t *Transport) Attach(ip transport.IP, h transport.Handler) { t.net.Attach(ip, h) }

// Detach implements transport.Transport.
func (t *Transport) Detach(ip transport.IP) { t.net.Detach(ip) }

var _ transport.Transport = (*Transport)(nil)
