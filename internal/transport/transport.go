// Package transport defines the runtime abstraction every WHISPER
// protocol layer programs against: a datagram plane (addressed
// endpoints, send, per-address receive handlers) and a scheduling plane
// (a clock, one-shot timers, jittered tickers, and a random source).
//
// Two implementations exist. transport/simnet adapts the deterministic
// discrete-event emulator (packages simnet + netem), which is how the
// paper's entire evaluation runs; transport/udp drives the same
// unchanged protocol code over real net.UDPConn sockets. The protocol
// layers (nylon, wcl, ppss and the in-group services on top) never name
// a concrete substrate — simulation is just one backend.
//
// The execution contract both backends honor is the actor-per-node
// model inherited from the paper's SPLAY deployment: for a given node,
// all datagram handlers and timer callbacks run serialized (the
// emulator is globally single-threaded; the UDP transport runs one
// dispatch loop per transport instance). Protocol code therefore needs
// no locks. The Rand source is part of the same contract: it must only
// be used from handler/timer context, or before the transport starts
// delivering events.
package transport

import (
	"fmt"
	"math/rand"
	"time"
)

// IP is a compact overlay network address. Addresses below PrivateBase
// are public; addresses at or above it are private (behind a NAT).
//
// Under the emulated substrate these are the (only) addresses datagrams
// travel between. Under the UDP substrate they are overlay addresses: a
// resolver inside the transport maps them to real socket addresses, the
// way a virtual private overlay decouples its address space from the
// underlay.
type IP uint32

// PrivateBase is the first private IP. The split lets assertions and
// debug output distinguish P-node interfaces from N-node interfaces.
const PrivateBase IP = 1 << 24

// Public reports whether the address is publicly routable.
func (ip IP) Public() bool { return ip < PrivateBase }

func (ip IP) String() string {
	if ip.Public() {
		return fmt.Sprintf("P%d", uint32(ip))
	}
	return fmt.Sprintf("n%d", uint32(ip-PrivateBase))
}

// Endpoint is an (IP, port) pair, the address of a datagram socket.
type Endpoint struct {
	IP   IP
	Port uint16
}

func (e Endpoint) String() string { return fmt.Sprintf("%v:%d", e.IP, e.Port) }

// IsZero reports whether the endpoint is unset.
func (e Endpoint) IsZero() bool { return e == Endpoint{} }

// Datagram is a single unreliable message.
type Datagram struct {
	Src     Endpoint
	Dst     Endpoint
	Payload []byte
}

// WireSize returns the bytes the datagram occupies on the wire,
// including the emulated IP+UDP header overhead.
func (d Datagram) WireSize() int { return len(d.Payload) + HeaderOverhead }

// HeaderOverhead is the per-datagram header cost (IPv4 20 + UDP 8).
const HeaderOverhead = 28

// Handler receives datagrams addressed to an attached IP.
type Handler interface {
	HandleDatagram(dg Datagram)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(Datagram)

// HandleDatagram calls f(dg).
func (f HandlerFunc) HandleDatagram(dg Datagram) { f(dg) }

// Timer is a handle to a scheduled one-shot callback. Cancel prevents
// the callback from running if it has not run yet; both methods are
// safe on handles whose event already fired.
type Timer interface {
	Cancel()
	Stopped() bool
}

// Ticker is a handle to a periodic callback. Stop is idempotent.
type Ticker interface {
	Stop()
}

// Transport is the complete runtime a protocol stack programs against.
//
// Datagram plane: Send routes a datagram towards dg.Dst (ownership of
// the payload passes to the transport); Attach/Detach bind a Handler to
// an overlay IP. Scheduling plane: Now is the time since the transport
// started (virtual for the emulator, monotonic wall clock for UDP);
// After and EveryJitter schedule callbacks on the node's serialized
// dispatch context; Rand is the run's random source, subject to the
// serialization contract in the package comment.
type Transport interface {
	// Now returns the current time as an offset from the transport
	// epoch.
	Now() time.Duration
	// After schedules fn to run d from now. A non-positive d runs fn as
	// a separate event as soon as possible, never inline.
	After(d time.Duration, fn func()) Timer
	// EveryJitter schedules fn every period plus a uniform jitter in
	// [0, jitter). The first firing happens after one (jittered)
	// period. period must be positive.
	EveryJitter(period, jitter time.Duration, fn func()) Ticker
	// Rand returns the random source protocol code draws from.
	Rand() *rand.Rand
	// Send transmits dg towards dg.Dst. Delivery is best-effort and
	// asynchronous; the payload must not be mutated after the call.
	Send(dg Datagram)
	// Attach registers h to receive datagrams addressed to ip,
	// replacing any previous handler.
	Attach(ip IP, h Handler)
	// Detach removes the handler for ip; in-flight datagrams to it are
	// dropped at delivery time.
	Detach(ip IP)
}
