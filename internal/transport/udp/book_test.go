package udp

import (
	"encoding/binary"
	"net"
	"testing"

	"whisper/internal/transport"
)

// encap builds an encapsulated packet as a remote peer would send it.
func encap(src, dst transport.Endpoint, payload []byte) []byte {
	buf := make([]byte, encapLen+len(payload))
	buf[0] = encapMagic
	buf[1] = encapVersion
	binary.BigEndian.PutUint32(buf[2:], uint32(src.IP))
	binary.BigEndian.PutUint16(buf[6:], src.Port)
	binary.BigEndian.PutUint32(buf[8:], uint32(dst.IP))
	binary.BigEndian.PutUint16(buf[12:], dst.Port)
	copy(buf[encapLen:], payload)
	return buf
}

func addrN(n int) *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 10000 + n}
}

func TestLearnedBookBounded(t *testing.T) {
	tr := newT(t)
	tr.SetMaxLearned(8)
	dst := transport.Endpoint{IP: 1, Port: 1}
	for i := 0; i < 100; i++ {
		src := transport.Endpoint{IP: transport.IP(100 + i), Port: 1}
		tr.dispatch(encap(src, dst, nil), addrN(i))
	}
	seeded, learned := tr.BookSize()
	if seeded != 0 || learned != 8 {
		t.Fatalf("BookSize = (%d seeded, %d learned), want (0, 8)", seeded, learned)
	}
	// The survivors are the 8 most recently heard-from peers.
	for i := 92; i < 100; i++ {
		if tr.book[transport.Endpoint{IP: transport.IP(100 + i), Port: 1}] == nil {
			t.Fatalf("recently learned peer %d was evicted", i)
		}
	}
	if tr.book[transport.Endpoint{IP: 100, Port: 1}] != nil {
		t.Fatal("oldest learned peer survived past the bound")
	}
}

func TestSeededEntriesNeverEvicted(t *testing.T) {
	tr := newT(t)
	tr.SetMaxLearned(4)
	seededEP := transport.Endpoint{IP: 7, Port: 7}
	if err := tr.AddPeer(seededEP, "127.0.0.1:9999"); err != nil {
		t.Fatal(err)
	}
	dst := transport.Endpoint{IP: 1, Port: 1}
	for i := 0; i < 50; i++ {
		src := transport.Endpoint{IP: transport.IP(100 + i), Port: 1}
		tr.dispatch(encap(src, dst, nil), addrN(i))
	}
	seeded, learned := tr.BookSize()
	if seeded != 1 || learned != 4 {
		t.Fatalf("BookSize = (%d seeded, %d learned), want (1, 4)", seeded, learned)
	}
	e := tr.book[seededEP]
	if e == nil || !e.seeded || e.addr.Port != 9999 {
		t.Fatal("seeded entry lost or corrupted by learned-entry churn")
	}
}

func TestLearnRefreshesRecencyAndAddress(t *testing.T) {
	tr := newT(t)
	tr.SetMaxLearned(2)
	dst := transport.Endpoint{IP: 1, Port: 1}
	epA := transport.Endpoint{IP: 100, Port: 1}
	epB := transport.Endpoint{IP: 101, Port: 1}
	epC := transport.Endpoint{IP: 102, Port: 1}
	tr.dispatch(encap(epA, dst, nil), addrN(0))
	tr.dispatch(encap(epB, dst, nil), addrN(1))
	tr.dispatch(encap(epA, dst, nil), addrN(5)) // refresh A, new real address
	tr.dispatch(encap(epC, dst, nil), addrN(2)) // evicts B, the LRU
	if tr.book[epB] != nil {
		t.Fatal("refreshed entry was evicted instead of the LRU")
	}
	if e := tr.book[epA]; e == nil || e.addr.Port != 10005 {
		t.Fatal("re-learning did not update the real address")
	}
}

func TestSeededPromotionLeavesLRU(t *testing.T) {
	tr := newT(t)
	tr.SetMaxLearned(2)
	dst := transport.Endpoint{IP: 1, Port: 1}
	ep := transport.Endpoint{IP: 100, Port: 1}
	tr.dispatch(encap(ep, dst, nil), addrN(0))
	if err := tr.AddPeer(ep, "127.0.0.1:9999"); err != nil {
		t.Fatal(err)
	}
	// Fill the learned side; the promoted entry must not be displaced.
	for i := 1; i <= 5; i++ {
		tr.dispatch(encap(transport.Endpoint{IP: transport.IP(100 + i), Port: 1}, dst, nil), addrN(i))
	}
	seeded, learned := tr.BookSize()
	if seeded != 1 || learned != 2 {
		t.Fatalf("BookSize = (%d seeded, %d learned), want (1, 2)", seeded, learned)
	}
	if e := tr.book[ep]; e == nil || !e.seeded {
		t.Fatal("promoted entry evicted with the learned pool")
	}
	// Packets from a seeded peer must not re-enter it into the LRU.
	tr.dispatch(encap(ep, dst, nil), addrN(9))
	if e := tr.book[ep]; e.elem != nil || e.addr.Port != 9999 {
		t.Fatal("seeded entry demoted by an incoming packet")
	}
}
