package udp_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whisper/internal/core"
	"whisper/internal/identity"
	"whisper/internal/nat"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/transport"
	"whisper/internal/transport/udp"
)

// TestObsEndpointsOverLoopback is the runtime-exposure acceptance test:
// two real-UDP nodes gossip with a metrics registry attached, and the
// exact handler whisper-node serves on -obs-addr answers all three
// endpoint families — Prometheus /metrics, expvar /debug/vars, and
// net/http/pprof.
func TestObsEndpointsOverLoopback(t *testing.T) {
	const n = 2
	pool := identity.TestPool(n)
	reg := obs.NewRegistry()

	type node struct {
		tr *udp.Transport
		st *core.Stack
		ep transport.Endpoint
	}
	nodes := make([]*node, n)
	for i := range nodes {
		tr, err := udp.New("127.0.0.1:0", int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		ep := transport.Endpoint{IP: transport.IP(i + 1), Port: 1}
		st, err := core.NewStack(tr, pool.Identity(identity.NodeID(i+1)), nat.None, ep, nil, core.Config{
			Nylon: nylon.Config{
				Cycle:          50 * time.Millisecond,
				ViewSize:       4,
				ExchangeSize:   2,
				ShuffleTimeout: time.Second,
			},
			Obs: reg.Scope("node", identity.NodeID(i+1).String()),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &node{tr: tr, st: st, ep: ep}
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i == j {
				continue
			}
			if err := a.tr.AddPeer(b.ep, b.tr.LocalAddr().String()); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, a := range nodes {
		a.st.Nylon.Bootstrap([]nylon.Descriptor{nodes[(i+1)%n].st.Nylon.SelfDescriptor()})
		a.st.Start()
		a.tr.Start()
	}
	waitFor(t, 15*time.Second, "a completed shuffle", func() bool {
		for _, a := range nodes {
			done := false
			a.tr.Do(func() { done = a.st.Nylon.Stats().ShufflesCompleted > 0 })
			if done {
				return true
			}
		}
		return false
	})

	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Pillar 1: Prometheus text exposition with live protocol counters
	// and the transport gauges reading the atomic meter.
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{"nylon_shuffles_initiated_total", "transport_up_bytes", `node="N1"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Pillar 2: expvar, with the registry published as whisper_metrics.
	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["whisper_metrics"]; !ok {
		t.Fatal("/debug/vars has no whisper_metrics")
	}

	// Pillar 3: pprof.
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: status %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d", code)
	}
}
