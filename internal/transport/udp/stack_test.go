package udp_test

import (
	"testing"
	"time"

	"whisper/internal/core"
	"whisper/internal/identity"
	"whisper/internal/nat"
	"whisper/internal/nylon"
	"whisper/internal/ppss"
	"whisper/internal/transport"
	"whisper/internal/transport/udp"
	"whisper/internal/wcl"
)

// stackNode is one full WHISPER stack over its own real UDP socket.
type stackNode struct {
	tr *udp.Transport
	st *core.Stack
	ep transport.Endpoint
}

// TestFullStackOverLoopback is the acceptance test of the transport
// abstraction: eight nodes on loopback sockets run Nylon gossip, form
// a private group over PPSS, and exchange a confidential message
// through WCL onion routes — the same code paths the emulator drives,
// now over real packets and real goroutines.
func TestFullStackOverLoopback(t *testing.T) {
	const n = 8
	pool := identity.TestPool(n)
	nodes := make([]*stackNode, n)
	for i := range nodes {
		tr, err := udp.New("127.0.0.1:0", int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		ep := transport.Endpoint{IP: transport.IP(i + 1), Port: 1}
		st, err := core.NewStack(tr, pool.Identity(identity.NodeID(i+1)), nat.None, ep, nil, core.Config{
			Nylon: nylon.Config{
				Cycle:          100 * time.Millisecond,
				ViewSize:       6,
				ExchangeSize:   3,
				ShuffleTimeout: time.Second,
			},
			WCL: &wcl.Config{PathTimeout: 2 * time.Second},
			PPSS: &ppss.Config{
				Cycle:       150 * time.Millisecond,
				RespTimeout: time.Second,
				JoinTimeout: 5 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &stackNode{tr: tr, st: st, ep: ep}
	}
	// Full-mesh address book: every overlay endpoint resolves to its
	// real socket (the tracker/bootstrap role of a deployment).
	for i, a := range nodes {
		for j, b := range nodes {
			if i == j {
				continue
			}
			if err := a.tr.AddPeer(b.ep, b.tr.LocalAddr().String()); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Seed each view with three ring neighbours and start gossip. All
	// of this happens pre-Start, so no dispatch loop is running yet.
	for i, a := range nodes {
		var ds []nylon.Descriptor
		for k := 1; k <= 3; k++ {
			ds = append(ds, nodes[(i+k)%n].st.Nylon.SelfDescriptor())
		}
		a.st.Nylon.Bootstrap(ds)
		a.st.Start()
		a.tr.Start()
	}

	// Wait until gossip fills every view and every connection backlog
	// holds enough P-nodes (with sampled keys) to build onion paths.
	waitFor(t, 30*time.Second, "gossip convergence", func() bool {
		for _, a := range nodes {
			ready := false
			a.tr.Do(func() {
				ready = len(a.st.Nylon.ViewIDs()) >= 4 &&
					len(a.st.WCL.Backlog().Publics()) >= 3
			})
			if !ready {
				return false
			}
		}
		return true
	})

	// The founder creates the private group and invites two members.
	founder := nodes[0]
	var room *ppss.Instance
	var roomErr error
	founder.tr.Do(func() { room, roomErr = founder.st.PPSS.CreateGroup("ops") })
	if roomErr != nil {
		t.Fatal(roomErr)
	}
	delivered := make(chan string, 16)
	founder.tr.Do(func() {
		room.OnMessage = func(from ppss.Entry, payload []byte) {
			delivered <- string(payload)
		}
	})

	members := make([]*ppss.Instance, 0, 2)
	for _, m := range nodes[1:3] {
		members = append(members, joinGroup(t, founder, room, m))
	}

	// A member sends a confidential message to the founder over a WCL
	// onion path; retry on path failure (real UDP may drop or time
	// out) until the payload arrives.
	const secret = "meeting moved to pier 7"
	sender, senderInst := nodes[1], members[0]
	deadline := time.Now().Add(45 * time.Second)
	for {
		var sendErr error
		sender.tr.Do(func() {
			sendErr = senderInst.SendTo(founder.st.ID(), []byte(secret), nil)
		})
		if sendErr != nil {
			t.Logf("send not yet possible: %v", sendErr)
		}
		select {
		case got := <-delivered:
			if got != secret {
				t.Fatalf("delivered %q, want %q", got, secret)
			}
			return
		case <-time.After(2 * time.Second):
			if time.Now().After(deadline) {
				t.Fatal("confidential message never reached the founder over real UDP")
			}
		}
	}
}

// joinGroup invites m into room and completes the join handshake,
// retrying the whole exchange on timeout.
func joinGroup(t *testing.T, founder *stackNode, room *ppss.Instance, m *stackNode) *ppss.Instance {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for attempt := 1; ; attempt++ {
		var accr ppss.Accreditation
		var entry ppss.Entry
		var invErr error
		founder.tr.Do(func() { accr, entry, invErr = room.Invite(m.st.ID()) })
		if invErr != nil {
			t.Fatal(invErr)
		}
		type joinRes struct {
			inst *ppss.Instance
			err  error
		}
		ch := make(chan joinRes, 1)
		m.tr.Do(func() {
			m.st.PPSS.Join("ops", accr, entry, func(inst *ppss.Instance, err error) {
				ch <- joinRes{inst, err}
			})
		})
		select {
		case res := <-ch:
			if res.err == nil {
				return res.inst
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %v could not join after %d attempts: %v", m.st.ID(), attempt, res.err)
			}
			t.Logf("join attempt %d for %v: %v (retrying)", attempt, m.st.ID(), res.err)
		case <-time.After(30 * time.Second):
			t.Fatalf("join handshake for %v stalled", m.st.ID())
		}
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
