// Package udp runs the transport.Transport contract over real UDP
// sockets, letting the full WHISPER stack — Nylon, the WCL, PPSS —
// execute unchanged outside the emulator.
//
// Addressing. Protocol layers speak overlay endpoints (transport.IP,
// port); the wire speaks real socket addresses. The transport bridges
// the two with an address book: static entries are seeded with AddPeer
// (the bootstrap/tracker role), and dynamic entries are learned from
// the encapsulation header of every arriving packet, so any peer that
// talks to us becomes reachable by its overlay address. Each datagram
// is prefixed with a 14-byte header naming the overlay source and
// destination; datagrams for overlay endpoints with no known real
// address are dropped, like any unroutable packet.
//
// Concurrency. The simulated substrate executes all protocol code of
// all nodes on one goroutine; protocol layers therefore hold no locks.
// This transport preserves that contract per instance: a single
// dispatch goroutine runs every handler invocation and timer callback,
// so the stacks above never see concurrency. A separate reader
// goroutine only parses packets and enqueues closures. External
// goroutines (tests, daemon control planes) interact with the stack
// through Do, which runs a closure on the dispatch goroutine. Now,
// Send, and SendRaw are safe from any goroutine; After, EveryJitter,
// Rand, Attach, and Detach must only be used from dispatch context
// (handler/timer callbacks or Do) or before Start — the same rule the
// simulator imposes.
package udp

import (
	"container/heap"
	"container/list"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"whisper/internal/transport"
)

// maxDatagram bounds reads; onion-routed WCL payloads over a few hops
// fit comfortably.
const maxDatagram = 64 * 1024

// Encapsulation header: magic 'W', version, src IP u32, src port u16,
// dst IP u32, dst port u16.
const (
	encapMagic   = 'W'
	encapVersion = 1
	encapLen     = 14
)

// defaultMaxLearned bounds the learned side of the address book. Seeded
// entries (AddPeer) are pinned and do not count against the bound.
// Without a bound, any host that can reach the socket could grow the
// book without limit by spraying packets with fabricated overlay
// source endpoints.
const defaultMaxLearned = 4096

// bookEntry is one address-book binding. Seeded entries are permanent;
// learned entries sit in an LRU list and are evicted oldest-first when
// the book exceeds its bound.
type bookEntry struct {
	addr   *net.UDPAddr
	seeded bool
	elem   *list.Element // position in learned; nil for seeded entries
}

// Transport drives a protocol stack over one real UDP socket.
type Transport struct {
	conn  *net.UDPConn
	start time.Time

	mu         sync.Mutex
	handlers   map[transport.IP]transport.Handler
	book       map[transport.Endpoint]*bookEntry
	learned    *list.List // learned book keys, most recently used first
	maxLearned int
	timers     timerHeap
	rng        *rand.Rand
	raw        func(payload []byte, from *net.UDPAddr)
	started    bool
	closed     bool
	unrouted   uint64

	tasks      chan func()
	wake       chan struct{}
	stopc      chan struct{}
	loopDone   chan struct{}
	readerDone chan struct{}
}

// New binds a transport to addr ("127.0.0.1:0" for an ephemeral port).
// The seed feeds the transport's deterministic Rand; wall-clock timing
// still makes real runs non-reproducible, so the seed only decouples
// protocol randomness from the global source.
func New(addr string, seed int64) (*Transport, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport/udp: %w", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport/udp: %w", err)
	}
	return &Transport{
		conn:       conn,
		start:      time.Now(),
		handlers:   make(map[transport.IP]transport.Handler),
		book:       make(map[transport.Endpoint]*bookEntry),
		learned:    list.New(),
		maxLearned: defaultMaxLearned,
		rng:        rand.New(rand.NewSource(seed)),
		tasks:      make(chan func(), 1024),
		wake:       make(chan struct{}, 1),
		stopc:      make(chan struct{}),
		loopDone:   make(chan struct{}),
		readerDone: make(chan struct{}),
	}, nil
}

// LocalAddr returns the bound socket address (with the resolved port).
func (t *Transport) LocalAddr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// AddPeer seeds the address book: overlay endpoint ep is reachable at
// the real address addr. Safe from any goroutine.
func (t *Transport) AddPeer(ep transport.Endpoint, addr string) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport/udp: peer %v: %w", ep, err)
	}
	t.mu.Lock()
	if e := t.book[ep]; e != nil {
		// Promote: a seeded binding is authoritative and pinned.
		e.addr = udpAddr
		e.seeded = true
		if e.elem != nil {
			t.learned.Remove(e.elem)
			e.elem = nil
		}
	} else {
		t.book[ep] = &bookEntry{addr: udpAddr, seeded: true}
	}
	t.mu.Unlock()
	return nil
}

// SetMaxLearned adjusts the learned-entry bound (tests; default 4096),
// evicting immediately if the book already exceeds it. Safe from any
// goroutine.
func (t *Transport) SetMaxLearned(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.maxLearned = n
	t.evictLearnedLocked()
	t.mu.Unlock()
}

// BookSize reports the address book's composition. Safe from any
// goroutine.
func (t *Transport) BookSize() (seeded, learned int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	learned = t.learned.Len()
	return len(t.book) - learned, learned
}

// evictLearnedLocked drops least-recently-used learned entries until
// the bound holds. Caller holds t.mu.
func (t *Transport) evictLearnedLocked() {
	for t.learned.Len() > t.maxLearned {
		oldest := t.learned.Back()
		t.learned.Remove(oldest)
		delete(t.book, oldest.Value.(transport.Endpoint))
	}
}

// Unrouted reports how many datagrams were dropped because the address
// book had no entry for their destination.
func (t *Transport) Unrouted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.unrouted
}

// SetRawHandler installs a callback for non-overlay datagrams (those
// whose first byte is not the encapsulation magic). It runs on the
// dispatch goroutine like any other handler. Set before Start.
func (t *Transport) SetRawHandler(fn func(payload []byte, from *net.UDPAddr)) {
	t.mu.Lock()
	t.raw = fn
	t.mu.Unlock()
}

// SendRaw transmits a bare payload (no encapsulation header) to a real
// address. Safe from any goroutine.
func (t *Transport) SendRaw(addr *net.UDPAddr, payload []byte) error {
	_, err := t.conn.WriteToUDP(payload, addr)
	return err
}

// Start launches the reader and dispatch goroutines.
func (t *Transport) Start() {
	t.mu.Lock()
	if t.started || t.closed {
		t.mu.Unlock()
		return
	}
	t.started = true
	t.mu.Unlock()
	go t.reader()
	go t.loop()
}

// Close stops dispatch, closes the socket, and waits for both
// goroutines to exit. Timers never fire after Close returns. Safe to
// call more than once; must not be called from dispatch context.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	started := t.started
	t.mu.Unlock()
	close(t.stopc)
	t.conn.Close()
	if started {
		<-t.loopDone
		<-t.readerDone
	}
}

// Do runs fn on the dispatch goroutine and waits for it to return.
// This is the only safe way for an external goroutine to touch the
// protocol stack. Must not be called from dispatch context (it would
// deadlock), nor before Start.
func (t *Transport) Do(fn func()) {
	done := make(chan struct{})
	select {
	case t.tasks <- func() { fn(); close(done) }:
	case <-t.stopc:
		return
	}
	select {
	case <-done:
	case <-t.stopc:
	}
}

// Now implements transport.Transport: monotonic time since New.
func (t *Transport) Now() time.Duration { return time.Since(t.start) }

// Rand implements transport.Transport. Dispatch context only.
func (t *Transport) Rand() *rand.Rand { return t.rng }

// Attach implements transport.Transport.
func (t *Transport) Attach(ip transport.IP, h transport.Handler) {
	if h == nil {
		panic("transport/udp: attach nil handler")
	}
	t.mu.Lock()
	t.handlers[ip] = h
	t.mu.Unlock()
}

// Detach implements transport.Transport.
func (t *Transport) Detach(ip transport.IP) {
	t.mu.Lock()
	delete(t.handlers, ip)
	t.mu.Unlock()
}

// Send implements transport.Transport: encapsulate and transmit to the
// real address of dg.Dst. Unroutable datagrams are dropped silently —
// UDP semantics, and exactly what the emulator does for dead hosts.
func (t *Transport) Send(dg transport.Datagram) {
	t.mu.Lock()
	var addr *net.UDPAddr
	if e := t.book[dg.Dst]; e != nil {
		addr = e.addr
		if e.elem != nil {
			// Destinations we still talk to stay out of eviction's way.
			t.learned.MoveToFront(e.elem)
		}
	} else {
		t.unrouted++
	}
	t.mu.Unlock()
	if addr == nil {
		return
	}
	buf := make([]byte, encapLen+len(dg.Payload))
	buf[0] = encapMagic
	buf[1] = encapVersion
	binary.BigEndian.PutUint32(buf[2:], uint32(dg.Src.IP))
	binary.BigEndian.PutUint16(buf[6:], dg.Src.Port)
	binary.BigEndian.PutUint32(buf[8:], uint32(dg.Dst.IP))
	binary.BigEndian.PutUint16(buf[12:], dg.Dst.Port)
	copy(buf[encapLen:], dg.Payload)
	_, _ = t.conn.WriteToUDP(buf, addr)
}

// reader pulls packets off the socket, decodes the encapsulation
// header, and enqueues dispatch closures. If the dispatch queue is
// full the packet is dropped — UDP already promises no more than
// best-effort delivery.
func (t *Transport) reader() {
	defer close(t.readerDone)
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed by Close
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		t.dispatch(payload, from)
	}
}

// dispatch routes one received packet to the dispatch goroutine.
func (t *Transport) dispatch(payload []byte, from *net.UDPAddr) {
	if len(payload) < 1 || payload[0] != encapMagic {
		t.mu.Lock()
		raw := t.raw
		t.mu.Unlock()
		if raw == nil {
			return
		}
		t.enqueue(func() { raw(payload, from) })
		return
	}
	if len(payload) < encapLen || payload[1] != encapVersion {
		return
	}
	src := transport.Endpoint{
		IP:   transport.IP(binary.BigEndian.Uint32(payload[2:])),
		Port: binary.BigEndian.Uint16(payload[6:]),
	}
	dst := transport.Endpoint{
		IP:   transport.IP(binary.BigEndian.Uint32(payload[8:])),
		Port: binary.BigEndian.Uint16(payload[12:]),
	}
	dg := transport.Datagram{Src: src, Dst: dst, Payload: payload[encapLen:]}
	t.mu.Lock()
	// Learn the sender's real address; later replies to src route
	// without static seeding. Learned entries live in a bounded LRU so a
	// packet-spraying peer cannot grow the book without limit; seeded
	// entries are never displaced.
	if e := t.book[src]; e != nil {
		if !e.seeded {
			e.addr = from
			t.learned.MoveToFront(e.elem)
		}
	} else {
		e := &bookEntry{addr: from}
		e.elem = t.learned.PushFront(src)
		t.book[src] = e
		t.evictLearnedLocked()
	}
	h := t.handlers[dst.IP]
	t.mu.Unlock()
	if h == nil {
		return
	}
	t.enqueue(func() { h.HandleDatagram(dg) })
}

// enqueue offers fn to the dispatch loop without blocking the reader.
func (t *Transport) enqueue(fn func()) {
	select {
	case t.tasks <- fn:
	case <-t.stopc:
	default:
		// Queue full: drop, like a saturated socket buffer.
	}
}

// loop is the dispatch goroutine: it serializes timer callbacks and
// packet handlers, waking for whichever comes first.
func (t *Transport) loop() {
	defer close(t.loopDone)
	idle := time.NewTimer(time.Hour)
	defer idle.Stop()
	for {
		fire, wait := t.nextTimer()
		if fire != nil {
			fire()
			continue
		}
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(wait)
		select {
		case <-t.stopc:
			return
		case fn := <-t.tasks:
			fn()
		case <-t.wake:
		case <-idle.C:
		}
	}
}

// nextTimer pops one due timer callback, or returns how long dispatch
// may sleep before the earliest pending timer.
func (t *Transport) nextTimer() (fire func(), wait time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Since(t.start)
	for t.timers.Len() > 0 {
		tm := t.timers[0]
		if tm.fn == nil { // cancelled
			heap.Pop(&t.timers)
			continue
		}
		if tm.at > now {
			return nil, tm.at - now
		}
		heap.Pop(&t.timers)
		fn := tm.fn
		tm.fn = nil
		return fn, 0
	}
	return nil, time.Hour
}

// After implements transport.Transport. Dispatch context (or
// pre-Start) only.
func (t *Transport) After(d time.Duration, fn func()) transport.Timer {
	if fn == nil {
		panic("transport/udp: nil callback")
	}
	if d < 0 {
		d = 0
	}
	tm := &timer{at: time.Since(t.start) + d, fn: fn}
	t.mu.Lock()
	heap.Push(&t.timers, tm)
	t.mu.Unlock()
	select {
	case t.wake <- struct{}{}:
	default:
	}
	return tm
}

// EveryJitter implements transport.Transport, mirroring the simulator:
// the callback runs every period plus a uniform draw from [0, jitter).
// Dispatch context (or pre-Start) only.
func (t *Transport) EveryJitter(period, jitter time.Duration, fn func()) transport.Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("transport/udp: non-positive ticker period %v", period))
	}
	tk := &ticker{t: t, period: period, jitter: jitter, fn: fn}
	tk.schedule()
	return tk
}

// timer is one pending callback in the heap.
type timer struct {
	at  time.Duration
	fn  func()
	idx int
}

// Cancel implements transport.Timer. The heap entry stays until the
// dispatch loop reaps it; the callback will not run. Dispatch context
// only (protocol code cancels its own timers from handlers).
func (tm *timer) Cancel() {
	if tm == nil {
		return
	}
	tm.fn = nil
}

// Stopped implements transport.Timer: cancelled or already fired.
func (tm *timer) Stopped() bool { return tm == nil || tm.fn == nil }

// ticker reschedules itself after every firing, like simnet.Ticker.
type ticker struct {
	t       *Transport
	period  time.Duration
	jitter  time.Duration
	fn      func()
	tm      transport.Timer
	stopped bool
}

func (tk *ticker) schedule() {
	d := tk.period
	if tk.jitter > 0 {
		d += time.Duration(tk.t.rng.Int63n(int64(tk.jitter)))
	}
	tk.tm = tk.t.After(d, func() {
		if tk.stopped {
			return
		}
		tk.fn()
		if !tk.stopped {
			tk.schedule()
		}
	})
}

// Stop implements transport.Ticker. Safe on nil; dispatch context only.
func (tk *ticker) Stop() {
	if tk == nil || tk.stopped {
		return
	}
	tk.stopped = true
	tk.tm.Cancel()
}

// timerHeap orders timers by deadline; insertion order breaks ties via
// heap stability not being required (UDP timing is non-deterministic
// anyway).
type timerHeap []*timer

func (h timerHeap) Len() int            { return len(h) }
func (h timerHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *timerHeap) Push(x interface{}) { tm := x.(*timer); tm.idx = len(*h); *h = append(*h, tm) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	tm.idx = -1
	return tm
}

var _ transport.Transport = (*Transport)(nil)
