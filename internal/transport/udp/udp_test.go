package udp

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/transport"
)

func newT(t *testing.T) *Transport {
	t.Helper()
	tr, err := New("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

func TestTimerOrderingAndCancel(t *testing.T) {
	tr := newT(t)
	tr.Start()
	fired := make(chan int, 3)
	tr.Do(func() {
		tr.After(30*time.Millisecond, func() { fired <- 3 })
		tr.After(10*time.Millisecond, func() { fired <- 1 })
		tm := tr.After(20*time.Millisecond, func() { fired <- 2 })
		tm.Cancel()
		if !tm.Stopped() {
			t.Error("cancelled timer not Stopped")
		}
	})
	if got := <-fired; got != 1 {
		t.Fatalf("first firing = %d, want 1", got)
	}
	if got := <-fired; got != 3 {
		t.Fatalf("second firing = %d, want 3 (2 was cancelled)", got)
	}
	select {
	case got := <-fired:
		t.Fatalf("unexpected extra firing %d", got)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestTickerFiresAndStops(t *testing.T) {
	tr := newT(t)
	tr.Start()
	var ticks atomic.Int32
	var tk transport.Ticker
	tr.Do(func() {
		tk = tr.EveryJitter(5*time.Millisecond, 2*time.Millisecond, func() {
			ticks.Add(1)
		})
	})
	deadline := time.Now().Add(2 * time.Second)
	for ticks.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ticks.Load() < 3 {
		t.Fatalf("ticker fired %d times, want >= 3", ticks.Load())
	}
	tr.Do(func() { tk.Stop() })
	n := ticks.Load()
	time.Sleep(30 * time.Millisecond)
	if got := ticks.Load(); got != n {
		t.Fatalf("ticker fired after Stop (%d -> %d)", n, got)
	}
}

// TestOverlayRoundTrip sends a datagram a->b via a static address-book
// entry, and the reply b->a rides the dynamically learned mapping.
func TestOverlayRoundTrip(t *testing.T) {
	a, b := newT(t), newT(t)
	epA := transport.Endpoint{IP: 1, Port: 1}
	epB := transport.Endpoint{IP: 2, Port: 1}
	if err := a.AddPeer(epB, b.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	// b has no static entry for a: the reply must use the learned one.
	reply := make(chan transport.Datagram, 1)
	a.Attach(epA.IP, transport.HandlerFunc(func(dg transport.Datagram) {
		reply <- dg
	}))
	b.Attach(epB.IP, transport.HandlerFunc(func(dg transport.Datagram) {
		b.Send(transport.Datagram{Src: epB, Dst: dg.Src, Payload: append([]byte("re:"), dg.Payload...)})
	}))
	a.Start()
	b.Start()
	a.Do(func() {
		a.Send(transport.Datagram{Src: epA, Dst: epB, Payload: []byte("ping")})
	})
	select {
	case dg := <-reply:
		if string(dg.Payload) != "re:ping" || dg.Src != epB {
			t.Fatalf("reply = %q from %v", dg.Payload, dg.Src)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reply within deadline")
	}
	if a.Unrouted() != 0 {
		t.Fatalf("unrouted = %d", a.Unrouted())
	}
}

func TestUnroutedDropped(t *testing.T) {
	a := newT(t)
	a.Start()
	a.Do(func() {
		a.Send(transport.Datagram{
			Src:     transport.Endpoint{IP: 1, Port: 1},
			Dst:     transport.Endpoint{IP: 99, Port: 1},
			Payload: []byte("void"),
		})
	})
	if got := a.Unrouted(); got != 1 {
		t.Fatalf("unrouted = %d, want 1", got)
	}
}

// TestRawPath checks that datagrams without the encapsulation magic
// reach the raw handler (the realudp compatibility surface).
func TestRawPath(t *testing.T) {
	a, b := newT(t), newT(t)
	got := make(chan []byte, 1)
	b.SetRawHandler(func(payload []byte, from *net.UDPAddr) {
		got <- payload
	})
	a.Start()
	b.Start()
	if err := a.SendRaw(b.LocalAddr(), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if len(p) != 3 || p[0] != 1 {
			t.Fatalf("raw payload = %v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("raw datagram not delivered")
	}
}

// TestPortOverTransport wires a transport.Port (the metered socket the
// protocol stacks use) directly over the UDP transport.
func TestPortOverTransport(t *testing.T) {
	a, b := newT(t), newT(t)
	epA := transport.Endpoint{IP: 10, Port: 1}
	epB := transport.Endpoint{IP: 20, Port: 1}
	if err := a.AddPeer(epB, b.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	var meter transport.Meter
	port := transport.NewPort(epA, a, &meter)
	a.Attach(epA.IP, port)
	seen := make(chan struct{})
	b.Attach(epB.IP, transport.HandlerFunc(func(dg transport.Datagram) { close(seen) }))
	a.Start()
	b.Start()
	a.Do(func() { port.Send(epB, []byte("metered")) })
	select {
	case <-seen:
	case <-time.After(2 * time.Second):
		t.Fatal("datagram not delivered")
	}
	if s := meter.Snapshot(); s.UpMsgs != 1 || s.UpBytes == 0 {
		t.Fatalf("meter = %+v", s)
	}
}
