package wcl

import (
	"time"

	"whisper/internal/identity"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/transport"
)

// Backward acknowledgements: every hop of a one-shot path remembers,
// for a bounded time, how to route an acknowledgement back to the
// previous hop; the source resolves it against its pending sends.

type ackEntry struct {
	fromID  identity.NodeID
	via     []identity.NodeID // reverse relay chain ([] = direct)
	direct  transport.Endpoint
	expires time.Duration
}

// handleAck resolves a pending send or forwards the acknowledgement one
// hop backwards.
func (w *WCL) handleAck(pathID uint64) {
	if st, ok := w.pending[pathID]; ok {
		outcome := Success
		if st.attempts > 1 {
			outcome = AltSuccess
		}
		w.finishResult(st, outcome, false)
		return
	}
	w.sendAckBack(pathID)
}

func (w *WCL) sendAckBack(pathID uint64) {
	st, ok := w.ackState[pathID]
	if !ok || w.rt.Now() > st.expires {
		return
	}
	w.met.acksForwarded.Inc()
	w.Trace.Emit(obs.KindAck, w.rt.Now(), 0, 0, pathID)
	ack := encodeAck(pathID)
	if len(st.via) == 0 {
		w.node.SendAppDirect(st.direct, ack)
		return
	}
	w.node.SendAppVia(nylon.Descriptor{ID: st.fromID}, st.via, ack)
}

// pruneAckState drops expired backward-routing entries; called on
// insertion so the map stays bounded without a dedicated timer.
func (w *WCL) pruneAckState() {
	if len(w.ackState) < 512 {
		return
	}
	now := w.rt.Now()
	for id, e := range w.ackState {
		if now > e.expires {
			delete(w.ackState, id)
		}
	}
}
