// Package wcl implements the WHISPER Communication Layer (§III): the
// connection backlog of recently usable NAT-traversal routes, onion
// path construction over four-node paths S → A → B → D, forwarding with
// per-hop peeling, end-to-end acknowledgements, and the retry policy
// whose outcomes Table I reports.
package wcl

import (
	"math/rand"
	"time"

	"whisper/internal/identity"
	"whisper/internal/nylon"
)

// Backlog is the connection backlog (CB) of §III-A: a FIFO queue of the
// nodes with which a successful (hence bidirectional) gossip exchange
// recently happened, i.e. the nodes towards which a NAT-traversal route
// is currently warm. Its size is bounded to twice the PSS view size, so
// entries rotate out well inside the NAT association lease.
type Backlog struct {
	cap     int
	entries []BacklogEntry // newest first
}

// BacklogEntry is one warm route.
type BacklogEntry struct {
	Desc nylon.Descriptor
	At   time.Duration // virtual insertion time
}

// NewBacklog creates a backlog bounded to cap entries (the paper uses
// 2×c).
func NewBacklog(cap int) *Backlog {
	if cap <= 0 {
		panic("wcl: backlog capacity must be positive")
	}
	return &Backlog{cap: cap}
}

// Cap returns the backlog bound.
func (b *Backlog) Cap() int { return b.cap }

// Len returns the current number of entries.
func (b *Backlog) Len() int { return len(b.entries) }

// Insert records a fresh exchange with desc at virtual time now. An
// existing entry for the same node moves to the front with the new
// route; otherwise the entry is pushed at the head and the tail is
// trimmed to capacity. It returns the entries evicted by the trim.
func (b *Backlog) Insert(desc nylon.Descriptor, now time.Duration) []BacklogEntry {
	for i, e := range b.entries {
		if e.Desc.ID == desc.ID {
			copy(b.entries[1:i+1], b.entries[:i])
			b.entries[0] = BacklogEntry{Desc: desc, At: now}
			return nil
		}
	}
	b.entries = append([]BacklogEntry{{Desc: desc, At: now}}, b.entries...)
	if len(b.entries) > b.cap {
		evicted := append([]BacklogEntry(nil), b.entries[b.cap:]...)
		b.entries = b.entries[:b.cap]
		return evicted
	}
	return nil
}

// Remove drops the entry for id, reporting whether it was present.
func (b *Backlog) Remove(id identity.NodeID) bool {
	for i, e := range b.entries {
		if e.Desc.ID == id {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Contains reports whether id is in the backlog.
func (b *Backlog) Contains(id identity.NodeID) bool {
	for _, e := range b.entries {
		if e.Desc.ID == id {
			return true
		}
	}
	return false
}

// Entries returns a copy of the backlog content, newest first.
func (b *Backlog) Entries() []BacklogEntry {
	return append([]BacklogEntry(nil), b.entries...)
}

// PublicCount returns the number of P-node entries.
func (b *Backlog) PublicCount() int {
	n := 0
	for _, e := range b.entries {
		if e.Desc.Public {
			n++
		}
	}
	return n
}

// Publics returns the P-node entries, newest first.
func (b *Backlog) Publics() []BacklogEntry {
	var out []BacklogEntry
	for _, e := range b.entries {
		if e.Desc.Public {
			out = append(out, e)
		}
	}
	return out
}

// Pick returns a uniformly random entry whose ID is not in exclude.
func (b *Backlog) Pick(rng *rand.Rand, exclude map[identity.NodeID]bool) (BacklogEntry, bool) {
	var candidates []BacklogEntry
	for _, e := range b.entries {
		if !exclude[e.Desc.ID] {
			candidates = append(candidates, e)
		}
	}
	if len(candidates) == 0 {
		return BacklogEntry{}, false
	}
	return candidates[rng.Intn(len(candidates))], true
}

// PickPublic returns a random P-node entry not in exclude.
func (b *Backlog) PickPublic(rng *rand.Rand, exclude map[identity.NodeID]bool) (BacklogEntry, bool) {
	var candidates []BacklogEntry
	for _, e := range b.entries {
		if e.Desc.Public && !exclude[e.Desc.ID] {
			candidates = append(candidates, e)
		}
	}
	if len(candidates) == 0 {
		return BacklogEntry{}, false
	}
	return candidates[rng.Intn(len(candidates))], true
}
