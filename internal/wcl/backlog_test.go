package wcl

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"whisper/internal/identity"
	"whisper/internal/nylon"
)

func desc(id identity.NodeID, pub bool) nylon.Descriptor {
	return nylon.Descriptor{ID: id, Public: pub}
}

func TestBacklogFIFOAndDedup(t *testing.T) {
	b := NewBacklog(3)
	b.Insert(desc(1, false), 1)
	b.Insert(desc(2, false), 2)
	b.Insert(desc(3, false), 3)
	es := b.Entries()
	if es[0].Desc.ID != 3 || es[2].Desc.ID != 1 {
		t.Fatalf("order: %v", es)
	}
	// Re-inserting an existing node moves it to the front.
	b.Insert(desc(1, false), 4)
	es = b.Entries()
	if es[0].Desc.ID != 1 || es[0].At != 4 || b.Len() != 3 {
		t.Fatalf("dedup move-to-front failed: %v", es)
	}
	// Overflow trims the tail and reports the eviction.
	evicted := b.Insert(desc(9, true), 5)
	if b.Len() != 3 || len(evicted) != 1 || evicted[0].Desc.ID != 2 {
		t.Fatalf("eviction: len=%d evicted=%v", b.Len(), evicted)
	}
}

func TestBacklogPublics(t *testing.T) {
	b := NewBacklog(5)
	b.Insert(desc(1, true), 1)
	b.Insert(desc(2, false), 2)
	b.Insert(desc(3, true), 3)
	if b.PublicCount() != 2 || len(b.Publics()) != 2 {
		t.Fatalf("public count = %d", b.PublicCount())
	}
	rng := rand.New(rand.NewSource(1))
	e, ok := b.PickPublic(rng, map[identity.NodeID]bool{3: true})
	if !ok || e.Desc.ID != 1 {
		t.Fatalf("PickPublic = %v, %v", e.Desc.ID, ok)
	}
	if _, ok := b.PickPublic(rng, map[identity.NodeID]bool{1: true, 3: true}); ok {
		t.Fatal("PickPublic ignored exclusions")
	}
}

func TestBacklogPickExcludes(t *testing.T) {
	b := NewBacklog(5)
	b.Insert(desc(1, false), 1)
	b.Insert(desc(2, false), 2)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		e, ok := b.Pick(rng, map[identity.NodeID]bool{2: true})
		if !ok || e.Desc.ID != 2 {
			if e.Desc.ID == 2 {
				t.Fatal("excluded entry picked")
			}
		}
	}
	if _, ok := b.Pick(rng, map[identity.NodeID]bool{1: true, 2: true}); ok {
		t.Fatal("Pick returned from empty candidate set")
	}
}

func TestBacklogRemoveContains(t *testing.T) {
	b := NewBacklog(3)
	b.Insert(desc(7, false), 1)
	if !b.Contains(7) || b.Contains(8) {
		t.Fatal("Contains wrong")
	}
	if !b.Remove(7) || b.Remove(7) {
		t.Fatal("Remove semantics wrong")
	}
}

// Property: after any insertion sequence, the backlog holds at most cap
// entries, all distinct, newest first.
func TestPropertyBacklogInvariants(t *testing.T) {
	f := func(ids []uint8, cap8 uint8) bool {
		cap := int(cap8%10) + 1
		b := NewBacklog(cap)
		for i, raw := range ids {
			b.Insert(desc(identity.NodeID(raw%20+1), raw%3 == 0), time.Duration(i))
		}
		if b.Len() > cap {
			return false
		}
		seen := map[identity.NodeID]bool{}
		last := time.Duration(1 << 62)
		for _, e := range b.Entries() {
			if seen[e.Desc.ID] {
				return false
			}
			seen[e.Desc.ID] = true
			if e.At > last {
				return false
			}
			last = e.At
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestOutcomeStrings(t *testing.T) {
	if Success.String() != "success" || AltSuccess.String() != "alt-success" || Failed.String() != "failed" {
		t.Fatal("outcome strings wrong")
	}
	if Outcome(9).String() == "" {
		t.Fatal("unknown outcome must still stringify")
	}
}

func TestConfigMixesClamp(t *testing.T) {
	c := Config{Mixes: 1}.withDefaults()
	if c.Mixes != 2 {
		t.Fatalf("Mixes=1 not clamped to 2 (got %d): one mix cannot hide both endpoints", c.Mixes)
	}
	if d := (Config{}).withDefaults(); d.Mixes != 2 || d.MaxAttempts != 1+d.MinPublic {
		t.Fatalf("defaults wrong: %+v", d)
	}
}
