package wcl

import (
	"container/list"
	"fmt"
	"time"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/nylon"
	"whisper/internal/obs"
	"whisper/internal/transport"
)

// The circuit layer. A Circuit amortizes the onion cost of §III-A over
// a stream of messages to one destination: establishment runs once
// over the one-shot machinery (path selection, RSA per hop) and
// distributes HKDF-derived per-hop symmetric keys via the setup onion;
// after that every Circuit.Send is a data cell — one AEAD layer per
// hop, zero RSA anywhere on the path.
//
// Source-side state machine, per underlying path:
//
//	opening ──ack──▶ established ──rotation/idle/Close──▶ closed
//	   │                  │
//	   └─attempts──▶ failed (queued cells fall back to one-shot)
//	                      └─cell timeout──▶ broken (in-flight cells
//	                                         fall back to one-shot)
//
// A Circuit outlives its paths: rotation (max age or max cells) opens
// a replacement path while the old one keeps carrying traffic, then
// retires it once its in-flight cells drain. Keepalive pings keep the
// relay tables of quiet circuits warm; a circuit idle for longer than
// CircuitIdle is torn down entirely.
//
// Relay-side state is a bounded LRU table keyed by circuit ID: the
// hop's cell key plus forward/backward routing captured at setup.
// Entries expire CircuitTTL after last use and the oldest entry is
// evicted beyond CircuitTableMax — a lost entry only degrades the
// source to one-shot fallback.

// CircuitState labels the observable state of a Circuit.
type CircuitState uint8

const (
	// CircuitOpening: setup in flight, no established path yet.
	CircuitOpening CircuitState = iota
	// CircuitEstablished: a path is live; sends travel as data cells.
	CircuitEstablished
	// CircuitRotating: a replacement path is being established while
	// the current one still carries traffic.
	CircuitRotating
	// CircuitClosed: torn down; the next Send to this destination
	// starts over.
	CircuitClosed
)

func (s CircuitState) String() string {
	switch s {
	case CircuitOpening:
		return "opening"
	case CircuitEstablished:
		return "established"
	case CircuitRotating:
		return "rotating"
	case CircuitClosed:
		return "closed"
	default:
		return fmt.Sprintf("CircuitState(%d)", uint8(s))
	}
}

// circuitQueueMax bounds cells buffered while a circuit establishes;
// overflow falls back to one-shot sends.
const circuitQueueMax = 128

// pendingCell is one unacknowledged data or keepalive cell.
type pendingCell struct {
	payload []byte
	ping    bool
	start   time.Duration
	timer   transport.Timer
	done    func(Result)
}

// circPath is one established (or establishing) onion path of a
// circuit: its wire identifier, the per-hop cell keys, and the
// in-flight cell window.
type circPath struct {
	c *Circuit

	id    uint64
	keys  [][]byte
	first nylon.Descriptor // first mix A

	established   bool
	closing       bool // retired by rotation, draining in-flight cells
	closed        bool
	createdAt     time.Duration
	establishedAt time.Duration

	cells        int    // data cells sent (rotation budget)
	seq          uint64 // last cell sequence number issued
	pendingCells map[uint64]*pendingCell
	stream       *streamSend // active stream message pinned to this path

	// setup state (shares the one-shot attempt budget semantics)
	attempts int
	triedA   map[identity.NodeID]bool
	triedB   map[identity.NodeID]bool
	timer    transport.Timer
}

// Circuit is a reusable confidential session to one destination. It is
// obtained from OpenCircuit (or transparently through Send when
// Config.Circuits is set) and must only be used from the node's
// dispatch context, like every other WCL entry point.
type Circuit struct {
	w    *WCL
	dest Dest

	cur     *circPath // established path carrying traffic
	old     *circPath // retired path draining in-flight cells
	opening *circPath // replacement or initial path being set up

	queue    []*pendingCell // cells awaiting establishment
	streamQ  []*streamSend  // stream messages behind the active one
	lastUsed time.Duration  // last application send
	lastSent time.Duration  // last cell of any kind (keepalive decision)
	keep     transport.Timer
	closed   bool
}

// OpenCircuit returns the circuit to dest, creating it (idle, not yet
// establishing) if none exists. An existing circuit's destination info
// is refreshed, so callers can pass ever-fresher helper sets.
func (w *WCL) OpenCircuit(dest Dest) *Circuit {
	if c, ok := w.circuits[dest.ID]; ok && !c.closed {
		if dest.Key != nil {
			c.dest = dest
		}
		return c
	}
	c := &Circuit{w: w, dest: dest, lastUsed: w.rt.Now()}
	w.circuits[dest.ID] = c
	return c
}

// SendCircuit sends payload over the circuit to dest, establishing one
// on first use. It works regardless of Config.Circuits (receivers
// always understand circuit messages); destinations without a known
// key fail through the one-shot path for identical accounting.
func (w *WCL) SendCircuit(dest Dest, payload []byte, done func(Result)) {
	if dest.Key == nil {
		w.sendOneShot(dest, payload, done)
		return
	}
	w.OpenCircuit(dest).Send(payload, done)
}

// HasCircuit reports whether an established circuit to id exists —
// what the PPSS checks to transparently prefer a circuit.
func (w *WCL) HasCircuit(id identity.NodeID) bool {
	c, ok := w.circuits[id]
	return ok && !c.closed && c.cur != nil
}

// State reports the circuit's current lifecycle state.
func (c *Circuit) State() CircuitState {
	switch {
	case c.closed:
		return CircuitClosed
	case c.cur != nil && c.opening != nil:
		return CircuitRotating
	case c.cur != nil:
		return CircuitEstablished
	default:
		return CircuitOpening
	}
}

// Dest returns the destination this circuit serves.
func (c *Circuit) Dest() Dest { return c.dest }

// Send delivers payload over the circuit: as a data cell when a path
// is established, queued during establishment, and through the
// one-shot engine when the circuit cannot serve it (closed, setup
// failed, queue full). done (optional) receives the final Result
// exactly once in every case.
func (c *Circuit) Send(payload []byte, done func(Result)) {
	w := c.w
	if c.closed {
		w.sendOneShot(c.dest, payload, done)
		return
	}
	now := w.rt.Now()
	c.lastUsed = now
	if p := c.cur; p != nil {
		if c.opening == nil && w.needsRotation(p, now) {
			w.met.circuitsRotated.Inc()
			w.openPath(c)
		}
		w.sendCell(c, p, &pendingCell{payload: payload, done: done, start: now})
		return
	}
	if c.opening == nil {
		w.openPath(c)
	}
	if c.closed || c.opening == nil {
		// Setup failed synchronously (no usable mixes at all).
		w.sendOneShot(c.dest, payload, done)
		return
	}
	if len(c.queue) >= circuitQueueMax {
		w.sendOneShot(c.dest, payload, done)
		return
	}
	c.queue = append(c.queue, &pendingCell{payload: payload, done: done, start: now})
}

// Close tears the circuit down: in-flight cells fall back to one-shot
// sends, relays are told to drop their entries, and the handle is
// forgotten so a later Send starts fresh.
func (c *Circuit) Close() {
	w := c.w
	if c.closed {
		return
	}
	if c.opening != nil {
		w.closePath(c.opening, false)
	}
	if c.old != nil {
		w.closePath(c.old, true)
	}
	if c.cur != nil {
		w.closePath(c.cur, true)
	}
	q := c.queue
	c.queue = nil
	for _, cell := range q {
		w.sendOneShot(c.dest, cell.payload, cell.done)
	}
	sq := c.streamQ
	c.streamQ = nil
	for _, s := range sq {
		w.streamFallback(s)
	}
	w.dropCircuit(c)
}

func (w *WCL) needsRotation(p *circPath, now time.Duration) bool {
	return p.cells >= w.cfg.CircuitMaxCells || now-p.establishedAt >= w.cfg.CircuitMaxAge
}

// openPath starts establishing a (new or replacement) path for c.
func (w *WCL) openPath(c *Circuit) {
	p := &circPath{
		c:            c,
		createdAt:    w.rt.Now(),
		triedA:       make(map[identity.NodeID]bool),
		triedB:       make(map[identity.NodeID]bool),
		pendingCells: make(map[uint64]*pendingCell),
	}
	c.opening = p
	w.met.circuitsOpened.Inc()
	w.attemptSetup(p)
}

// attemptSetup launches one setup onion for p. Every attempt draws a
// fresh circuit ID and session secret: the keys are bound to the
// onion, so a late acknowledgement of an earlier attempt must not be
// confused with the current one (stale attempts' relay entries simply
// expire).
func (w *WCL) attemptSetup(p *circPath) {
	c := p.c
	a, middles, b, ok := w.pickMixes(c.dest, p.triedA, p.triedB)
	if !ok {
		w.failSetup(p)
		return
	}
	p.attempts++
	p.triedA[a.ID] = true
	p.triedB[b.ID] = true

	secret, err := crypt.NewCircuitSecret()
	if err != nil {
		w.failSetup(p)
		return
	}
	keys, err := crypt.DeriveCircuitKeys(secret, w.cfg.Mixes+1)
	if err != nil {
		w.failSetup(p)
		return
	}

	aKey := w.node.Keys().Get(a.ID)
	dAddr := encodeAddrID(c.dest.ID)
	if !c.dest.Endpoint.IsZero() {
		dAddr = encodeAddrEndpoint(c.dest.Endpoint, c.dest.ID)
	}
	hops := make([]crypt.CircuitHop, 0, w.cfg.Mixes+1)
	hops = append(hops, crypt.CircuitHop{Pub: aKey, Key: keys[0]})
	for i, m := range middles {
		hops = append(hops, crypt.CircuitHop{Pub: m.Key, Addr: encodeAddrEndpoint(m.Endpoint, m.ID), Key: keys[i+1]})
	}
	hops = append(hops, crypt.CircuitHop{Pub: b.Key, Addr: encodeAddrEndpoint(b.Endpoint, b.ID), Key: keys[len(middles)+1]})
	hops = append(hops, crypt.CircuitHop{Pub: c.dest.Key, Addr: dAddr, Key: keys[len(keys)-1]})

	delete(w.circByID, p.id)
	p.id = w.newCircID()
	p.keys = keys
	p.first = a
	w.circByID[p.id] = p

	start := time.Now()
	onion, err := crypt.BuildCircuitOnion(w.cpu, hops, nil)
	buildTime := time.Since(start)
	w.met.buildMS.ObserveDuration(buildTime)
	w.Trace.Emit(obs.KindSend, w.rt.Now(), buildTime, len(onion), p.id)
	if err != nil {
		w.retrySetup(p)
		return
	}
	via, routable := w.node.RouteTo(a)
	if !routable {
		w.retrySetup(p)
		return
	}
	msg := circSetupMsg{CircID: p.id, From: w.node.ID(), ViaPath: via, Onion: onion}
	w.node.SendAppVia(a, via, msg.encode())
	p.timer = w.rt.After(w.cfg.PathTimeout, func() {
		if w.circByID[p.id] == p && !p.established {
			w.retrySetup(p)
		}
	})
}

// newCircID draws a fresh circuit identifier (zero reserved, in-flight
// identifiers skipped).
func (w *WCL) newCircID() uint64 {
	for {
		id := w.rt.Rand().Uint64()
		if id == 0 {
			continue
		}
		if _, used := w.circByID[id]; used {
			continue
		}
		return id
	}
}

// retrySetup tries the next setup alternative or gives up.
func (w *WCL) retrySetup(p *circPath) {
	if p.timer != nil {
		p.timer.Cancel()
		p.timer = nil
	}
	if p.attempts >= w.cfg.MaxAttempts {
		w.failSetup(p)
		return
	}
	w.Trace.Emit(obs.KindRetry, w.rt.Now(), 0, 0, p.id)
	w.attemptSetup(p)
}

// failSetup abandons establishment: queued cells fall back to the
// one-shot engine, and the circuit handle is dropped unless another
// path still serves it (a failed rotation keeps the old path working).
func (w *WCL) failSetup(p *circPath) {
	w.met.circuitsFailed.Inc()
	c := p.c
	w.closePath(p, false)
	q := c.queue
	c.queue = nil
	for _, cell := range q {
		w.sendOneShot(c.dest, cell.payload, cell.done)
	}
	sq := c.streamQ
	c.streamQ = nil
	for _, s := range sq {
		w.streamFallback(s)
	}
	if c.cur == nil && c.old == nil && c.opening == nil {
		w.dropCircuit(c)
	}
}

// establish completes the handshake for p after the exit's
// acknowledgement made it back.
func (w *WCL) establish(p *circPath) {
	if p.established || p.closed {
		return
	}
	c := p.c
	if c.closed {
		return
	}
	p.established = true
	p.establishedAt = w.rt.Now()
	if p.timer != nil {
		p.timer.Cancel()
		p.timer = nil
	}
	w.met.circuitsEstablished.Inc()
	w.met.establishMS.ObserveDuration(p.establishedAt - p.createdAt)
	w.met.circuitsOpen.Add(1)
	if c.opening == p {
		c.opening = nil
	}
	if old := c.cur; old != nil && old != p {
		// Rotation complete: retire the old path once it drains —
		// in-flight cells acked AND any pinned stream message finished
		// (immediately when neither remains). A fragmented message must
		// never split across circuits: the exit's (circID, seq) dedup
		// only covers one circuit.
		if w.pathDrained(old) {
			w.closePath(old, true)
		} else {
			old.closing = true
			c.old = old
		}
	}
	c.cur = p
	q := c.queue
	c.queue = nil
	for _, cell := range q {
		if c.cur != p {
			// The path broke while flushing; the remaining cells take
			// the one-shot road.
			w.sendOneShot(c.dest, cell.payload, cell.done)
			continue
		}
		w.sendCell(c, p, cell)
	}
	w.startStreams(c)
	if c.keep == nil {
		c.armKeepalive()
	}
}

// sendCell seals and launches one cell on p.
func (w *WCL) sendCell(c *Circuit, p *circPath, cell *pendingCell) {
	typ := cellData
	if cell.ping {
		typ = cellPing
	}
	start := time.Now()
	sealed, err := crypt.SealCell(w.cpu, p.keys, encodeCellPayload(typ, cell.payload))
	sealDur := time.Since(start)
	if err != nil {
		if !cell.ping {
			w.met.cellFallbacks.Inc()
			w.sendOneShot(c.dest, cell.payload, cell.done)
		}
		return
	}
	via, ok := w.node.RouteTo(p.first)
	if !ok {
		// The first hop went cold: the path is unusable.
		if !cell.ping {
			w.met.cellFallbacks.Inc()
			w.sendOneShot(c.dest, cell.payload, cell.done)
		}
		w.closePath(p, false)
		return
	}
	p.seq++
	seq := p.seq
	if !cell.ping {
		p.cells++
	}
	w.met.cellsSent.Inc()
	w.Trace.Emit(obs.KindCellSend, w.rt.Now(), sealDur, len(sealed), p.id)
	msg := circDataMsg{CircID: p.id, Seq: seq, Cell: sealed}
	w.node.SendAppVia(p.first, via, msg.encode())
	c.lastSent = w.rt.Now()
	p.pendingCells[seq] = cell
	cell.timer = w.rt.After(w.cfg.PathTimeout, func() {
		if w.circByID[p.id] == p && p.pendingCells[seq] == cell {
			w.cellTimeout(p, seq)
		}
	})
}

// cellTimeout handles a cell that was never acknowledged: the payload
// falls back to a one-shot send and the path — evidently broken — is
// torn down (its other in-flight cells fall back too).
func (w *WCL) cellTimeout(p *circPath, seq uint64) {
	cell := p.pendingCells[seq]
	if cell == nil {
		return
	}
	delete(p.pendingCells, seq)
	if !cell.ping {
		w.met.cellFallbacks.Inc()
		w.sendOneShot(p.c.dest, cell.payload, cell.done)
	}
	w.closePath(p, false)
}

// closePath tears one path down. sendClose announces the teardown
// forward so relays drop their entries early (skipped for broken paths
// — the entries expire on their own). Idempotent.
func (w *WCL) closePath(p *circPath, sendClose bool) {
	if p.closed {
		return
	}
	p.closed = true
	if w.circByID[p.id] == p {
		delete(w.circByID, p.id)
	}
	if p.timer != nil {
		p.timer.Cancel()
		p.timer = nil
	}
	// In-flight cells fall back in ascending seq order — the order the
	// application sent them. Iterating the map directly would re-send
	// in runtime hash order, nondeterministic under a fixed seed.
	for _, seq := range sortedSeqs(p.pendingCells) {
		cell := p.pendingCells[seq]
		delete(p.pendingCells, seq)
		if cell.timer != nil {
			cell.timer.Cancel()
		}
		if !cell.ping {
			w.met.cellFallbacks.Inc()
			w.sendOneShot(p.c.dest, cell.payload, cell.done)
		}
	}
	if s := p.stream; s != nil {
		p.stream = nil
		w.streamFallback(s)
	}
	if p.established {
		w.met.circuitsOpen.Add(-1)
		w.met.circuitsClosed.Inc()
		if sendClose {
			if via, ok := w.node.RouteTo(p.first); ok {
				w.node.SendAppVia(p.first, via, encodeCircClose(p.id))
			}
		}
	}
	c := p.c
	if c.cur == p {
		c.cur = nil
	}
	if c.old == p {
		c.old = nil
	}
	if c.opening == p {
		c.opening = nil
	}
}

// dropCircuit forgets the circuit handle entirely.
func (w *WCL) dropCircuit(c *Circuit) {
	if c.closed {
		return
	}
	c.closed = true
	if c.keep != nil {
		c.keep.Cancel()
		c.keep = nil
	}
	if w.circuits[c.dest.ID] == c {
		delete(w.circuits, c.dest.ID)
	}
}

// armKeepalive schedules the circuit's periodic self-check: tear down
// when idle, ping when quiet, otherwise just stay armed.
func (c *Circuit) armKeepalive() {
	w := c.w
	c.keep = w.rt.After(w.cfg.CircuitKeepalive, func() {
		c.keep = nil
		if c.closed {
			return
		}
		now := w.rt.Now()
		if now-c.lastUsed >= w.cfg.CircuitIdle {
			c.Close()
			return
		}
		if p := c.cur; p != nil && now-c.lastSent >= w.cfg.CircuitKeepalive {
			w.met.keepalives.Inc()
			w.sendCell(c, p, &pendingCell{ping: true, start: now})
		}
		c.armKeepalive()
	})
}

// ─── Message handlers (source and relay roles share the node) ───

// handleCircAck completes establishment at the source, or relays the
// acknowledgement backward along the stored reverse routing.
func (w *WCL) handleCircAck(circID uint64) {
	if p := w.circByID[circID]; p != nil {
		w.establish(p)
		return
	}
	if e := w.relayCirc.get(circID, w.rt.Now()); e != nil {
		w.sendCircBack(e, encodeCircAck(circID))
	}
}

// handleCircCellAck resolves an in-flight cell at the source, or
// relays the acknowledgement backward.
func (w *WCL) handleCircCellAck(circID, seq uint64) {
	if p := w.circByID[circID]; p != nil {
		cell := p.pendingCells[seq]
		if cell == nil {
			return
		}
		delete(p.pendingCells, seq)
		if cell.timer != nil {
			cell.timer.Cancel()
		}
		w.met.cellsAcked.Inc()
		if !cell.ping {
			r := Result{Outcome: Success, Attempts: 1, Elapsed: w.rt.Now() - cell.start}
			w.met.cellMS.ObserveDuration(r.Elapsed)
			if w.OnResult != nil {
				w.OnResult(p.c.dest.ID, r)
			}
			if cell.done != nil {
				cell.done(r)
			}
		}
		if p.closing && w.pathDrained(p) {
			w.closePath(p, true)
		}
		return
	}
	if e := w.relayCirc.get(circID, w.rt.Now()); e != nil {
		w.sendCircBack(e, encodeCircCellAck(circID, seq))
	}
}

// handleCircSetup installs a relay (or exit) circuit entry from a
// setup onion and passes the rest of the onion along.
func (w *WCL) handleCircSetup(src transport.Endpoint, m *circSetupMsg) {
	if m.CircID == 0 {
		return
	}
	// An entry already installed under this ID means a duplicate (or
	// replay): the exit re-acknowledges — its ack may have been lost —
	// everyone else stays silent rather than re-forwarding setup state.
	if e := w.relayCirc.get(m.CircID, w.rt.Now()); e != nil {
		w.met.dupForwards.Inc()
		if e.exit {
			w.sendCircBack(e, encodeCircAck(m.CircID))
		}
		return
	}
	if w.seenForwards.Add(m.CircID ^ fnvSum(m.Onion)) {
		w.met.dupForwards.Inc()
		return
	}
	start := time.Now()
	key, next, inner, exit, err := crypt.PeelCircuit(w.cpu, w.node.Identity().Key, m.Onion)
	peelTime := time.Since(start)
	w.met.peelMS.ObserveDuration(peelTime)
	w.Trace.Emit(obs.KindPeel, w.rt.Now(), peelTime, len(m.Onion), m.CircID)
	if err != nil {
		w.met.peelErrors.Inc()
		return
	}
	w.met.forwardsPeeled.Inc()
	e := &relayCircuit{
		id:         m.CircID,
		key:        key,
		prevFrom:   m.From,
		prevVia:    reverseIDs(m.ViaPath),
		prevDirect: src,
		exit:       exit,
	}
	if exit {
		w.relayCirc.put(e, w.rt.Now())
		w.sendCircBack(e, encodeCircAck(m.CircID))
		return
	}
	addr, err := decodeHopAddr(next)
	if err != nil {
		w.met.peelErrors.Inc()
		return
	}
	fwd := circSetupMsg{CircID: m.CircID, From: w.node.ID(), Onion: inner}
	switch addr.kind {
	case addrByEndpoint:
		e.nextKind = addrByEndpoint
		e.nextEp = addr.ep
		w.relayCirc.put(e, w.rt.Now())
		w.node.SendAppDirect(addr.ep, fwd.encode())
		w.Trace.Emit(obs.KindForward, w.rt.Now(), 0, len(inner), m.CircID)
	case addrByID:
		d, via, ok := w.routeToID(addr.id)
		if !ok {
			w.met.dropNoContact.Inc()
			return
		}
		e.nextKind = addrByID
		e.nextID = addr.id
		w.relayCirc.put(e, w.rt.Now())
		fwd.ViaPath = via
		w.node.SendAppVia(d, via, fwd.encode())
		w.Trace.Emit(obs.KindForward, w.rt.Now(), 0, len(inner), m.CircID)
	}
}

// sendCircBack routes a backward circuit message (ack, cell ack) along
// the reverse routing captured at setup.
func (w *WCL) sendCircBack(e *relayCircuit, payload []byte) {
	w.Trace.Emit(obs.KindAck, w.rt.Now(), 0, 0, e.id)
	if len(e.prevVia) == 0 {
		w.node.SendAppDirect(e.prevDirect, payload)
		return
	}
	w.node.SendAppVia(nylon.Descriptor{ID: e.prevFrom}, e.prevVia, payload)
}

// handleCircData opens one cell layer: relays pass the cell along,
// the exit deduplicates, delivers data cells, and acknowledges.
func (w *WCL) handleCircData(m *circDataMsg) {
	e := w.relayCirc.get(m.CircID, w.rt.Now())
	if e == nil {
		w.met.cellDrops.Inc()
		return
	}
	start := time.Now()
	pt, err := crypt.OpenSym(w.cpu, e.key, m.Cell)
	dur := time.Since(start)
	if err != nil {
		w.met.peelErrors.Inc()
		return
	}
	if e.exit {
		typ, payload, ok := decodeCellPayload(pt)
		if !ok {
			w.met.peelErrors.Inc()
			return
		}
		// Exactly-once under duplication: a repeated cell is only
		// re-acknowledged (the first ack may have been lost). For
		// duplicated stream fragments the acknowledgement repeats at
		// the stream level — the sender tracks fragments, not seqs.
		if w.deliveredCells.Add(cellKey{m.CircID, m.Seq}) {
			w.met.dupCells.Inc()
			if typ == cellStream {
				if f, err := decodeStreamFrag(payload); err == nil {
					w.streamReAck(e, f.StreamID)
				}
				return
			}
			w.sendCircBack(e, encodeCircCellAck(m.CircID, m.Seq))
			return
		}
		if typ == cellStream {
			f, err := decodeStreamFrag(payload)
			if err != nil {
				w.met.peelErrors.Inc()
				return
			}
			// The stream ack (cumulative + selective) carries this
			// fragment's reliability; no per-cell ack travels for it.
			w.handleStreamFrag(e, f)
			return
		}
		if typ == cellData {
			w.met.cellsDelivered.Inc()
			w.Trace.Emit(obs.KindCellDeliver, w.rt.Now(), dur, len(payload), m.CircID)
			if w.OnReceive != nil {
				w.OnReceive(payload)
			}
		}
		w.sendCircBack(e, encodeCircCellAck(m.CircID, m.Seq))
		return
	}
	fwd := circDataMsg{CircID: m.CircID, Seq: m.Seq, Cell: pt}
	switch e.nextKind {
	case addrByEndpoint:
		w.node.SendAppDirect(e.nextEp, fwd.encode())
	case addrByID:
		d, via, ok := w.routeToID(e.nextID)
		if !ok {
			w.met.dropNoContact.Inc()
			return
		}
		w.node.SendAppVia(d, via, fwd.encode())
	default:
		return
	}
	w.met.cellsForwarded.Inc()
	w.Trace.Emit(obs.KindCellForward, w.rt.Now(), dur, len(pt), m.CircID)
}

// handleCircClose drops the relay entry and passes the teardown
// forward. Unauthenticated like every WCL datagram: a forged close
// only degrades the source to one-shot fallback.
func (w *WCL) handleCircClose(circID uint64) {
	e := w.relayCirc.remove(circID)
	if e == nil {
		return
	}
	if e.exit {
		w.dropStreamRecv(circID)
		return
	}
	switch e.nextKind {
	case addrByEndpoint:
		w.node.SendAppDirect(e.nextEp, encodeCircClose(circID))
	case addrByID:
		if d, via, ok := w.routeToID(e.nextID); ok {
			w.node.SendAppVia(d, via, encodeCircClose(circID))
		}
	}
}

// ─── Relay-side circuit table ───

// cellKey identifies one cell for exit-hop deduplication.
type cellKey struct{ circ, seq uint64 }

// relayCircuit is one hop's state for a circuit passing through it.
type relayCircuit struct {
	id  uint64
	key []byte // this hop's cell key

	// backward routing (towards the source), captured at setup
	prevFrom   identity.NodeID
	prevVia    []identity.NodeID
	prevDirect transport.Endpoint

	// forward routing (towards the exit)
	exit     bool
	nextKind uint8
	nextEp   transport.Endpoint
	nextID   identity.NodeID

	lastUsed time.Duration
	elem     *list.Element
}

// circTable is the bounded relay-side circuit table: LRU-evicted past
// cap, TTL-expired past ttl since last use. The gauge tracks its size.
type circTable struct {
	cap   int
	ttl   time.Duration
	ll    *list.List // front = most recently used
	m     map[uint64]*relayCircuit
	gauge *obs.Gauge
}

func newCircTable(cap int, ttl time.Duration, gauge *obs.Gauge) *circTable {
	return &circTable{cap: cap, ttl: ttl, ll: list.New(), m: make(map[uint64]*relayCircuit), gauge: gauge}
}

// get returns the live entry for id, refreshing its recency; expired
// entries are dropped on access.
func (t *circTable) get(id uint64, now time.Duration) *relayCircuit {
	e := t.m[id]
	if e == nil {
		return nil
	}
	if now-e.lastUsed > t.ttl {
		t.drop(e)
		return nil
	}
	e.lastUsed = now
	t.ll.MoveToFront(e.elem)
	return e
}

// put installs an entry, pruning expired tail entries and evicting the
// least recently used one past the bound.
func (t *circTable) put(e *relayCircuit, now time.Duration) {
	if old := t.m[e.id]; old != nil {
		t.drop(old)
	}
	for back := t.ll.Back(); back != nil; back = t.ll.Back() {
		oldest := back.Value.(*relayCircuit)
		if now-oldest.lastUsed <= t.ttl {
			break
		}
		t.drop(oldest)
	}
	e.lastUsed = now
	e.elem = t.ll.PushFront(e)
	t.m[e.id] = e
	if len(t.m) > t.cap {
		t.drop(t.ll.Back().Value.(*relayCircuit))
	}
	t.gauge.Set(int64(len(t.m)))
}

// remove deletes and returns the entry for id, if present.
func (t *circTable) remove(id uint64) *relayCircuit {
	e := t.m[id]
	if e != nil {
		t.drop(e)
	}
	return e
}

func (t *circTable) drop(e *relayCircuit) {
	delete(t.m, e.id)
	t.ll.Remove(e.elem)
	t.gauge.Set(int64(len(t.m)))
}

func (t *circTable) size() int { return len(t.m) }
