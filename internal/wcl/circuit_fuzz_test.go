package wcl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"whisper/internal/crypt"
	"whisper/internal/identity"
	"whisper/internal/netem"
	"whisper/internal/wire"
)

// TestCircuitHandleAppNeverPanics floods the dispatcher with tagged
// garbage aimed at the circuit codecs: truncated setups, bogus cells,
// stray acks and closes.
func TestCircuitHandleAppNeverPanics(t *testing.T) {
	w := newBareWCL(t)
	src := netem.Endpoint{IP: 9, Port: 9}
	rng := rand.New(rand.NewSource(46))
	for _, tag := range []uint8{msgCircSetup, msgCircAck, msgCircData, msgCircCellAck, msgCircClose, msgCircStreamAck} {
		for i := 0; i < 500; i++ {
			body := make([]byte, rng.Intn(300))
			rng.Read(body)
			w.handleApp(src, append([]byte{tag}, body...))
		}
	}
	// Whole-payload fuzz across every tag at once.
	f := func(payload []byte) bool {
		w.handleApp(src, payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Fatal(err)
	}
}

// TestCircSetupCodecRoundTrip: encode → decode is the identity for the
// circuit setup message, including empty and capped via paths.
func TestCircSetupCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for i := 0; i < 500; i++ {
		m := &circSetupMsg{
			CircID: rng.Uint64(),
			From:   identity.NodeID(rng.Uint64()),
			Onion:  make([]byte, rng.Intn(200)),
		}
		rng.Read(m.Onion)
		for j := rng.Intn(5); j > 0; j-- {
			m.ViaPath = append(m.ViaPath, identity.NodeID(rng.Uint64()))
		}
		r := wire.NewReader(m.encode())
		if got := r.U8(); got != msgCircSetup {
			t.Fatalf("tag = %d", got)
		}
		dec, err := decodeCircSetup(r)
		if err != nil {
			t.Fatal(err)
		}
		if dec.CircID != m.CircID || dec.From != m.From ||
			!reflect.DeepEqual(dec.ViaPath, m.ViaPath) ||
			string(dec.Onion) != string(m.Onion) {
			t.Fatalf("round trip mismatch: %+v != %+v", dec, m)
		}
	}
}

// TestCircDataCodecRoundTrip: encode → decode is the identity for data
// cells, and the cell payload framing round-trips its type byte.
func TestCircDataCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for i := 0; i < 500; i++ {
		m := &circDataMsg{CircID: rng.Uint64(), Seq: rng.Uint64(), Cell: make([]byte, rng.Intn(300))}
		rng.Read(m.Cell)
		r := wire.NewReader(m.encode())
		if got := r.U8(); got != msgCircData {
			t.Fatalf("tag = %d", got)
		}
		dec, err := decodeCircData(r)
		if err != nil {
			t.Fatal(err)
		}
		if dec.CircID != m.CircID || dec.Seq != m.Seq || string(dec.Cell) != string(m.Cell) {
			t.Fatalf("round trip mismatch: %+v != %+v", dec, m)
		}
	}
	for _, typ := range []uint8{cellData, cellPing} {
		payload := []byte("payload-bytes")
		gotTyp, gotPayload, ok := decodeCellPayload(encodeCellPayload(typ, payload))
		if !ok || gotTyp != typ || string(gotPayload) != string(payload) {
			t.Fatalf("cell framing round trip failed for type %d", typ)
		}
	}
	if _, _, ok := decodeCellPayload(nil); ok {
		t.Fatal("empty cell payload decoded")
	}
}

// TestCircControlCodecs: the fixed-size control messages (ack, cell
// ack, close) carry exactly their identifiers.
func TestCircControlCodecs(t *testing.T) {
	r := wire.NewReader(encodeCircAck(7))
	if r.U8() != msgCircAck || r.U64() != 7 || r.Err() != nil {
		t.Fatal("circuit ack codec broken")
	}
	r = wire.NewReader(encodeCircCellAck(7, 9))
	if r.U8() != msgCircCellAck || r.U64() != 7 || r.U64() != 9 || r.Err() != nil {
		t.Fatal("cell ack codec broken")
	}
	r = wire.NewReader(encodeCircClose(7))
	if r.U8() != msgCircClose || r.U64() != 7 || r.Err() != nil {
		t.Fatal("close codec broken")
	}
}

// TestCircuitSetupWithForeignOnion: a well-formed setup whose onion
// targets someone else's key is dropped with a peel error — no table
// entry, no acknowledgement.
func TestCircuitSetupWithForeignOnion(t *testing.T) {
	w := newBareWCL(t)
	foreign := identity.TestKeys(2)[1]
	secret, err := crypt.NewCircuitSecret()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := crypt.DeriveCircuitKeys(secret, 1)
	if err != nil {
		t.Fatal(err)
	}
	onion, err := crypt.BuildCircuitOnion(nil, []crypt.CircuitHop{{Pub: foreign.Public(), Key: keys[0]}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := &circSetupMsg{CircID: 7, From: 99, Onion: onion}
	w.handleApp(netem.Endpoint{IP: 9, Port: 9}, m.encode())
	if w.Stats().PeelErrors != 1 {
		t.Fatalf("peel errors = %d, want 1", w.Stats().PeelErrors)
	}
	if w.relayCirc.size() != 0 {
		t.Fatal("foreign setup installed a table entry")
	}
}

// TestCircuitDataWithoutEntry: a data cell for an unknown circuit is
// dropped and counted, never delivered.
func TestCircuitDataWithoutEntry(t *testing.T) {
	w := newBareWCL(t)
	delivered := false
	w.OnReceive = func([]byte) { delivered = true }
	m := &circDataMsg{CircID: 12345, Seq: 1, Cell: []byte("garbage")}
	w.handleApp(netem.Endpoint{IP: 9, Port: 9}, m.encode())
	if w.Stats().CellDrops != 1 {
		t.Fatalf("cell drops = %d, want 1", w.Stats().CellDrops)
	}
	if delivered {
		t.Fatal("unknown-circuit cell delivered")
	}
}
